package fmeter

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// The typed-error contract (machine-checked by fmeter-vet/typederr):
// every snapshot or config failure surfaced through the facade must be
// reachable with errors.As as a *SnapshotError / *ConfigError, so
// operators can branch on the failure domain without string matching.

func TestConfigErrorAsFromFacade(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"NewDB bad dimension", func() error {
			_, err := NewDB(0)
			return err
		}},
		{"NewCorpus bad dimension", func() error {
			_, err := NewCorpus(-1)
			return err
		}},
		{"Fit empty corpus", func() error {
			c, err := NewCorpus(4)
			if err != nil {
				return err
			}
			_, err = c.Fit()
			return err
		}},
		{"TopTerms bad k", func() error {
			_, err := TopTerms(Signature{}, 0, nil)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("errors.As(*ConfigError) = false for %v (%T)", err, err)
			}
		})
	}
}

func TestSnapshotErrorAsFromFacade(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"ReadDBSnapshot bad magic", func() error {
			_, err := ReadDBSnapshot(strings.NewReader("not a snapshot"), 1)
			return err
		}},
		{"ReadDBSnapshot truncated", func() error {
			_, err := ReadDBSnapshot(strings.NewReader(""), 1)
			return err
		}},
		{"ReadModelSnapshot bad magic", func() error {
			_, err := ReadModelSnapshot(strings.NewReader("junk data here"))
			return err
		}},
		{"ReadModel bad JSON", func() error {
			_, err := ReadModel(strings.NewReader("{"))
			return err
		}},
		{"OpenDB missing directory", func() error {
			_, err := OpenDB(t.TempDir() + "/nonexistent")
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("errors.As(*SnapshotError) = false for %v (%T)", err, err)
			}
		})
	}
}

// A snapshot failure wrapped by intermediate fmt.Errorf layers must still
// unwrap to the typed error, and ConfigError's cause chain (Unwrap) must
// be visible through errors.Is.
func TestTypedErrorUnwrapChain(t *testing.T) {
	_, err := ReadDBSnapshot(bytes.NewReader(nil), 1)
	if err == nil {
		t.Fatal("want error, got nil")
	}
	var se *SnapshotError
	if !errors.As(err, &se) {
		t.Fatalf("errors.As(*SnapshotError) = false for %v", err)
	}
	if se.Err == nil {
		t.Fatal("SnapshotError carries no cause")
	}
	if !errors.Is(err, se.Err) {
		t.Fatal("errors.Is does not reach the SnapshotError cause")
	}

	sentinel := errors.New("root cause")
	ce := &ConfigError{Param: "document", Msg: "wrapping test", Err: sentinel}
	if !errors.Is(ce, sentinel) {
		t.Fatal("ConfigError.Unwrap does not expose the cause")
	}
	var ce2 *ConfigError
	if wrapped := error(ce); !errors.As(wrapped, &ce2) {
		t.Fatal("errors.As(*ConfigError) failed on a direct value")
	}
}
