// Command fmeter-serve runs the fmeter signature database as a network
// service: it boots a simulated kernel, collects a warmup corpus to fit
// the tf-idf model, seeds a live DB, and serves HTTP/JSON queries over
// it — POST /v1/topk, /v1/classify, /v1/ingest plus GET /healthz and
// /metrics — with adaptive micro-batch coalescing into the 0-alloc
// batched kernels, bounded-queue backpressure (429 + Retry-After), and
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	fmeter-serve -addr :8080 -workload dbench -warmup 20
//	fmeter-serve -addr :8080 -db /var/lib/fmeter/db       # serve + snapshot
//	fmeter-serve -smoke                                   # self-test and exit
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	fmeter "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fmeter-serve:", err)
		os.Exit(1)
	}
}

//fmeter:nondeterministic-ok serving daemon: listener lifecycle, shutdown deadlines, and self-test pacing are wall-clock by design
func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("fmeter-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workloadName = fs.String("workload", "dbench", "warmup workload: scp|kcompile|dbench|apachebench|netperf")
		warmup       = fs.Int("warmup", 20, "warmup intervals collected to fit the model and seed the DB")
		interval     = fs.Duration("interval", 10*time.Second, "warmup collection interval (virtual time)")
		seed         = fs.Int64("seed", 1, "random seed")
		shards       = fs.Int("shards", 2, "DB shard count")
		segmentSize  = fs.Int("segment-size", 0, "DB segment size (0 = default)")
		maxBatch     = fs.Int("max-batch", 64, "coalescer: max queries per batched kernel call (1 disables coalescing)")
		maxWait      = fs.Duration("max-wait", 500*time.Microsecond, "coalescer: max fill wait once a batch has company")
		maxQueue     = fs.Int("max-queue", 1024, "bounded request queue; overflow answers 429 + Retry-After")
		dbDir        = fs.String("db", "", "snapshot directory: load the DB from it when present, periodically save into it")
		snapEvery    = fs.Duration("snapshot-every", 2*time.Second, "with -db: poll the seal watermark this often for incremental saves")
		smoke        = fs.Bool("smoke", false, "self-test: serve on a loopback port, run one query/ingest/metrics round-trip, shut down")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *warmup < 2 {
		return fmt.Errorf("-warmup must be >= 2, have %d", *warmup)
	}

	var spec fmeter.WorkloadSpec
	switch *workloadName {
	case "scp":
		spec = fmeter.ScpWorkload()
	case "kcompile":
		spec = fmeter.KcompileWorkload()
	case "dbench":
		spec = fmeter.DbenchWorkload()
	case "apachebench":
		spec = fmeter.ApachebenchWorkload()
	case "netperf":
		spec = fmeter.NetperfWorkload()
	default:
		return fmt.Errorf("unknown workload %q", *workloadName)
	}

	sys, err := fmeter.New(fmeter.Config{Seed: *seed})
	if err != nil {
		return err
	}

	// Warmup: fit the vector space and seed the store.
	warmDocs, err := sys.Collect(spec, *warmup, *interval, nil)
	if err != nil {
		return fmt.Errorf("warmup collection: %w", err)
	}
	sigs, model, err := fmeter.BuildSignatures(warmDocs, sys.Dim())
	if err != nil {
		return fmt.Errorf("fitting warmup model: %w", err)
	}

	opts := []fmeter.Option{fmeter.WithShards(*shards)}
	if *segmentSize > 0 {
		opts = append(opts, fmeter.WithSegmentSize(*segmentSize))
	}
	var db *fmeter.DB
	if *dbDir != "" {
		if _, statErr := os.Stat(*dbDir); statErr == nil {
			db, err = fmeter.OpenDB(*dbDir, opts...)
			if err != nil {
				return fmt.Errorf("opening db %s: %w", *dbDir, err)
			}
			if db.Dim() != sys.Dim() {
				db.Close()
				return fmt.Errorf("db %s has dimension %d, system has %d", *dbDir, db.Dim(), sys.Dim())
			}
			fmt.Fprintf(stderr, "[fmeter-serve] loaded %d signatures from %s\n", db.Len(), *dbDir)
		}
	}
	if db == nil {
		db, err = fmeter.NewDB(sys.Dim(), opts...)
		if err != nil {
			return err
		}
		if err := db.AddAll(sigs); err != nil {
			db.Close()
			return err
		}
	}

	srv, err := fmeter.NewServer(db, model, fmeter.ServeConfig{
		MaxBatch:      *maxBatch,
		MaxWait:       *maxWait,
		MaxQueue:      *maxQueue,
		SnapshotDir:   *dbDir,
		SnapshotEvery: *snapEvery,
		Warnf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "[fmeter-serve] "+format+"\n", a...)
		},
	})
	if err != nil {
		db.Close()
		return err
	}

	listenAddr := *addr
	if *smoke {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		shutdownServer(srv, stderr)
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "[fmeter-serve] serving %s (dim %d, %d signatures, max-batch %d, queue %d)\n",
		ln.Addr(), sys.Dim(), db.Len(), *maxBatch, *maxQueue)

	if *smoke {
		if err := smokeTest(ln.Addr().String(), sigs[0], warmDocs[0]); err != nil {
			httpSrv.Close()
			shutdownServer(srv, stderr)
			return fmt.Errorf("smoke test: %w", err)
		}
		fmt.Fprintln(stderr, "[fmeter-serve] smoke OK")
		return drain(httpSrv, srv, serveErr, stderr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(stderr, "[fmeter-serve] %v: draining\n", s)
	case err := <-serveErr:
		shutdownServer(srv, stderr)
		return fmt.Errorf("http server: %w", err)
	}
	return drain(httpSrv, srv, serveErr, stderr)
}

// drain stops the listener (letting in-flight HTTP requests finish),
// then drains the coalescer and closes the DB.
//
//fmeter:nondeterministic-ok serving daemon: shutdown deadlines are wall-clock by design
func drain(httpSrv *http.Server, srv *fmeter.Server, serveErr chan error, stderr io.Writer) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "[fmeter-serve] http shutdown: %v\n", err)
	}
	<-serveErr // always http.ErrServerClosed after Shutdown
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("server shutdown: %w", err)
	}
	m := srv.Metrics()
	fmt.Fprintf(stderr, "[fmeter-serve] done: %d queries in %d batches (mean %.2f), %d rejected, %d docs ingested\n",
		m.Queries, m.Batches, m.MeanBatchSize, m.Rejected, m.DocsIngested)
	return nil
}

//fmeter:nondeterministic-ok serving daemon: shutdown deadlines are wall-clock by design
func shutdownServer(srv *fmeter.Server, stderr io.Writer) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "[fmeter-serve] shutdown: %v\n", err)
	}
}

// smokeTest drives one round trip through every endpoint against the
// live listener: healthz, a topk query built from a warmup signature, a
// classify, an ingest of a warmup document, and a metrics scrape that
// must reflect all of it.
func smokeTest(addr string, sig fmeter.Signature, doc *fmeter.Document) error {
	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}

	get := func(path string) (map[string]any, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			return nil, fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		var m map[string]any
		return m, json.NewDecoder(resp.Body).Decode(&m)
	}
	post := func(path string, body any, out any) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, b)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	if _, err := get("/healthz"); err != nil {
		return err
	}

	// Render the signature's sparse vector in the wire's parallel-array
	// form.
	var idx []int32
	var val []float64
	sig.W.ForEach(func(i int, x float64) {
		idx = append(idx, int32(i))
		val = append(val, x)
	})
	query := map[string]any{"queries": []map[string]any{{"idx": idx, "val": val}}, "k": 3}

	var topk struct {
		Results [][]struct {
			DocID string  `json:"doc_id"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if err := post("/v1/topk", query, &topk); err != nil {
		return err
	}
	if len(topk.Results) != 1 || len(topk.Results[0]) == 0 {
		return fmt.Errorf("topk returned no hits: %+v", topk)
	}

	var classify struct {
		Labels []string `json:"labels"`
	}
	if err := post("/v1/classify", query, &classify); err != nil {
		return err
	}
	if len(classify.Labels) != 1 || classify.Labels[0] == "" {
		return fmt.Errorf("classify returned no label: %+v", classify)
	}

	var ingest struct {
		Added int `json:"added"`
	}
	if err := post("/v1/ingest", map[string]any{"documents": []*fmeter.Document{doc}}, &ingest); err != nil {
		return err
	}
	if ingest.Added != 1 {
		return fmt.Errorf("ingest added %d, want 1", ingest.Added)
	}

	m, err := get("/metrics")
	if err != nil {
		return err
	}
	for _, key := range []string{"queries", "batches", "latency_p50_us", "docs_ingested"} {
		if _, ok := m[key]; !ok {
			return fmt.Errorf("metrics missing %q: %v", key, m)
		}
	}
	if q, _ := m["queries"].(float64); q < 2 {
		return fmt.Errorf("metrics count %v queries, want >= 2", m["queries"])
	}
	return nil
}
