package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmokeEndToEnd boots the whole service on a loopback port, runs
// the self-test round trip (healthz, topk, classify, ingest, metrics),
// and drains — the same path the CI serve-smoke step exercises.
func TestSmokeEndToEnd(t *testing.T) {
	var stderr bytes.Buffer
	err := run([]string{"-smoke", "-warmup", "6", "-interval", "2s"}, &stderr)
	if err != nil {
		t.Fatalf("smoke run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "smoke OK") {
		t.Fatalf("stderr missing smoke OK:\n%s", stderr.String())
	}
}

// TestSmokeUncoalescedBaseline runs the same smoke with coalescing
// disabled (-max-batch 1, the direct path) — both modes must serve
// identical traffic shapes.
func TestSmokeUncoalescedBaseline(t *testing.T) {
	var stderr bytes.Buffer
	err := run([]string{"-smoke", "-warmup", "6", "-interval", "2s", "-max-batch", "1"}, &stderr)
	if err != nil {
		t.Fatalf("smoke run (max-batch 1): %v\nstderr:\n%s", err, stderr.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-warmup", "1"}, &stderr); err == nil {
		t.Fatal("warmup 1 accepted, want error")
	}
	if err := run([]string{"-workload", "nope"}, &stderr); err == nil {
		t.Fatal("unknown workload accepted, want error")
	}
}
