// fmeter-vet is the repo's contract checker: a multichecker over the
// custom analyzers in internal/lint that machine-check the determinism,
// view-pinning, typed-error, and no-alloc contracts DESIGN-PERF.md
// states. `make lint` runs it over ./...; any finding is a contract
// violation and fails the build with file:line and the contract name.
//
// Usage:
//
//	fmeter-vet [-run regexp] [-list] [packages...]
//
// Packages default to ./... relative to the current directory. Only
// the non-test compilation of each package is analyzed.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/lint"
)

func main() {
	runPat := flag.String("run", "", "only run analyzers matching this regexp")
	list := flag.Bool("list", false, "list analyzers and their contracts, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fmeter-vet [-run regexp] [-list] [packages...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Checks the fmeter contract suite (see internal/lint):\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s contract\n", a.Name, a.Contract)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: checks the %s contract\n%s\n\n", a.Name, a.Contract, a.Doc)
		}
		return
	}
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fmeter-vet: bad -run pattern: %v\n", err)
			os.Exit(2)
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmeter-vet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPatterns(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmeter-vet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fmeter-vet: %d contract violation(s)\n", len(diags))
		os.Exit(1)
	}
}
