package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "fig1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "power-law fit") {
		t.Errorf("fig1 report missing: %q", out.String())
	}
	if !strings.Contains(errBuf.String(), "fig1 done in") {
		t.Errorf("progress line missing: %q", errBuf.String())
	}
}

func TestRunWritesReportsToDir(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "table2,table3", "-out", dir}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table2.txt", "table3.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestRunMLAtSmallScale(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "table4,fig4", "-perclass", "12"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table 4") || !strings.Contains(s, "dbench(+1), kcompile(-1)") {
		t.Errorf("table4 report missing: %q", s)
	}
	if !strings.Contains(s, "Figure 4") {
		t.Errorf("fig4 report missing")
	}
	// The shared corpus is collected once for both experiments.
	if strings.Count(errBuf.String(), "collecting 12 signatures per workload class") != 1 {
		t.Errorf("corpus should be collected exactly once: %q", errBuf.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "table9"}, &out, &errBuf); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunRejectsBadIndexMode(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "fig1", "-index", "maybe"}, &out, &errBuf); err == nil {
		t.Error("-index=maybe should fail")
	}
}

func TestCapSizes(t *testing.T) {
	p := experiments.DefaultFig5Params()
	capSizes(&p, 80)
	for _, n := range p.SampleSizes {
		if n > 80 {
			t.Errorf("size %d exceeds corpus", n)
		}
	}
	if len(p.SampleSizes) == 0 {
		t.Error("capSizes emptied the sweep")
	}
	q := experiments.ClusterParams{SampleSizes: []int{500}}
	capSizes(&q, 40)
	if len(q.SampleSizes) != 1 || q.SampleSizes[0] != 40 {
		t.Errorf("fallback size = %v", q.SampleSizes)
	}
}
