package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/vecmath"
)

// serveRecord is the BENCH_serve.json artifact: p50/p99 latency and
// achieved throughput versus offered QPS, with the adaptive micro-batch
// coalescer on (max-batch 64) and off (max-batch 1, the direct
// baseline). The engine ladder drives the coalescer through the
// programmatic Server.TopK entry — isolating what batching into the
// 0-alloc kernels buys without connection overhead — and the http
// ladder replays two rungs through a real loopback listener as an
// end-to-end sanity check.
type serveRecord struct {
	Timestamp  string      `json:"timestamp"`
	GoMaxProcs int         `json:"gomaxprocs"`
	N          int         `json:"n_signatures"`
	Shards     int         `json:"shards"`
	K          int         `json:"k"`
	MaxWaitUS  int         `json:"max_wait_us"`
	MaxQueue   int         `json:"max_queue"`
	Inflight   int         `json:"client_inflight_cap"`
	Engine     []serveRung `json:"engine"`
	HTTP       []serveRung `json:"http"`
}

// serveRung is one (offered QPS, max-batch) measurement.
type serveRung struct {
	OfferedQPS  int     `json:"offered_qps"`
	MaxBatch    int     `json:"max_batch"`
	Seconds     float64 `json:"seconds"`
	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`
	Rejected    int64   `json:"rejected_429"`
	Dropped     int64   `json:"dropped_client"` // offered past the in-flight cap, never sent
	AchievedQPS float64 `json:"achieved_qps"`
	MeanBatch   float64 `json:"mean_batch_size"`
	MeanMicros  float64 `json:"mean_us"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
}

// The corpus uses small-nnz documents (12 nonzeros) so the per-query
// kernel cost lands in the microsecond regime where per-request
// overhead (goroutine wakes, scratch checkout, view pinning) is a
// measurable fraction of service time — that is what coalescing
// amortizes. Kernel-bound large-nnz regimes are covered by the mixed
// and pruned benches; there batching cannot help and this bench would
// only measure the kernel.
const (
	serveBenchN        = 2000
	serveBenchShards   = 2
	serveBenchSegment  = 512
	serveBenchK        = 10
	serveBenchNNZ      = 12
	serveBenchMaxWait  = 500 * time.Microsecond
	serveBenchQueue    = 1024
	serveBenchInflight = 256
	serveBenchPhase    = 700 * time.Millisecond
)

// paceLoad offers requests at the target rate for the phase duration,
// bounded by the in-flight cap (beyond it, offered requests are counted
// as client drops — never unbounded goroutines), and records per-request
// latency for every accepted request. issue runs one request and
// reports whether the server accepted it.
//
//fmeter:nondeterministic-ok bench harness: offered-QPS pacing and latency measurement are wall-clock by definition
func paceLoad(qps int, phase time.Duration, issue func(qi int64) (accepted bool)) (rung serveRung) {
	var mu sync.Mutex
	lats := make([]float64, 0, 1<<15)
	var sum float64
	var wg sync.WaitGroup
	sem := make(chan struct{}, serveBenchInflight)

	start := time.Now()
	deadline := start.Add(phase)
	var offered int64
	for now := start; now.Before(deadline); now = time.Now() {
		due := int64(now.Sub(start).Seconds() * float64(qps))
		for offered < due {
			offered++
			select {
			case sem <- struct{}{}:
			default:
				rung.Dropped++
				continue
			}
			rung.Sent++
			wg.Add(1)
			go func(qi int64) {
				defer wg.Done()
				t0 := time.Now()
				ok := issue(qi)
				us := time.Since(t0).Seconds() * 1e6
				<-sem
				mu.Lock()
				if ok {
					rung.OK++
					lats = append(lats, us)
					sum += us
				} else {
					rung.Rejected++
				}
				mu.Unlock()
			}(offered)
		}
		time.Sleep(100 * time.Microsecond)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rung.OfferedQPS = qps
	rung.Seconds = elapsed
	rung.AchievedQPS = float64(rung.OK) / elapsed
	if len(lats) > 0 {
		sort.Float64s(lats)
		rung.MeanMicros = sum / float64(len(lats))
		rung.P50Micros = percentile(lats, 0.50)
		rung.P99Micros = percentile(lats, 0.99)
	}
	return rung
}

// newServeBenchServer builds a fresh DB (each rung's Shutdown closes
// its DB) preloaded with sigs and a server with the given batch arm.
func newServeBenchServer(sigs []core.Signature, maxBatch int) (*serve.Server, error) {
	db, err := core.NewShardedDB(sigs[0].Dim(), serveBenchShards)
	if err != nil {
		return nil, err
	}
	db.SetSegmentSize(serveBenchSegment)
	if err := db.AddAll(sigs); err != nil {
		db.Close()
		return nil, err
	}
	// Seal so queries ride the indexed sealed-segment path: the bench
	// measures the serving layer over the fast kernels, not the active
	// segment's scan.
	db.Seal()
	srv, err := serve.New(db, nil, serve.Config{
		MaxBatch: maxBatch,
		MaxWait:  serveBenchMaxWait,
		MaxQueue: serveBenchQueue,
	})
	if err != nil {
		db.Close()
		return nil, err
	}
	return srv, nil
}

// runServeBench measures the offered-QPS ladder across both batch arms
// and writes the JSON record.
//
//fmeter:nondeterministic-ok bench harness: wall-clock load generation and run timestamps are the product
func runServeBench(path string, stderr io.Writer) error {
	c, err := microCorpus(serveBenchN, serveBenchNNZ)
	if err != nil {
		return err
	}
	sigs, _, err := c.Signatures()
	if err != nil {
		return err
	}
	queries := make([]*vecmath.Sparse, 64)
	for i := range queries {
		queries[i] = sigs[i*7].W
	}

	rec := serveRecord{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		N:          serveBenchN,
		Shards:     serveBenchShards,
		K:          serveBenchK,
		MaxWaitUS:  int(serveBenchMaxWait.Microseconds()),
		MaxQueue:   serveBenchQueue,
		Inflight:   serveBenchInflight,
	}

	// Engine ladder: the coalescer driven directly, no HTTP. The top
	// rung offers far past single-core kernel capacity, so it measures
	// saturation throughput; the bottom rung measures the unloaded
	// latency floor (where a lone request must not pay the batch wait).
	engineQPS := []int{2_000, 20_000, 60_000, 150_000}
	for _, maxBatch := range []int{1, 64} {
		for _, qps := range engineQPS {
			srv, err := newServeBenchServer(sigs, maxBatch)
			if err != nil {
				return err
			}
			rung := paceLoad(qps, serveBenchPhase, func(qi int64) bool {
				_, err := srv.TopK([]*vecmath.Sparse{queries[qi%int64(len(queries))]}, serveBenchK, core.CosineMetric())
				return err == nil
			})
			rung.MaxBatch = maxBatch
			rung.MeanBatch = srv.Metrics().MeanBatchSize
			if err := shutdownBenchServer(srv); err != nil {
				return err
			}
			rec.Engine = append(rec.Engine, rung)
			fmt.Fprintf(stderr, "engine batch=%-2d offered %7d/s: achieved %8.0f/s  p50 %7.1f us  p99 %8.1f us  (%d ok, %d rejected, %d dropped, mean batch %.1f)\n",
				maxBatch, qps, rung.AchievedQPS, rung.P50Micros, rung.P99Micros, rung.OK, rung.Rejected, rung.Dropped, rung.MeanBatch)
		}
	}

	// HTTP ladder: two rungs end-to-end through a loopback listener —
	// the connection stack dominates per-request cost on one core, so
	// this is a sanity check that the coalescer behaves under real HTTP,
	// not the headline number.
	httpQPS := []int{1_000, 8_000}
	for _, maxBatch := range []int{1, 64} {
		for _, qps := range httpQPS {
			rung, err := runHTTPRung(sigs, queries, maxBatch, qps)
			if err != nil {
				return err
			}
			rec.HTTP = append(rec.HTTP, rung)
			fmt.Fprintf(stderr, "http   batch=%-2d offered %7d/s: achieved %8.0f/s  p50 %7.1f us  p99 %8.1f us  (%d ok, %d rejected)\n",
				maxBatch, qps, rung.AchievedQPS, rung.P50Micros, rung.P99Micros, rung.OK, rung.Rejected)
		}
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "serve record written to %s\n", path)
	return nil
}

//fmeter:nondeterministic-ok bench harness: shutdown deadlines are wall-clock
func shutdownBenchServer(srv *serve.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// runHTTPRung replays one rung through a real HTTP listener.
//
//fmeter:nondeterministic-ok bench harness: client timeouts and load pacing are wall-clock
func runHTTPRung(sigs []core.Signature, queries []*vecmath.Sparse, maxBatch, qps int) (serveRung, error) {
	srv, err := newServeBenchServer(sigs, maxBatch)
	if err != nil {
		return serveRung{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = shutdownBenchServer(srv)
		return serveRung{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpSrv.Serve(ln) }()

	// Pre-encode one request body per query so the client loop measures
	// the server, not the encoder.
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		var req struct {
			Queries []struct {
				Idx []int32   `json:"idx"`
				Val []float64 `json:"val"`
			} `json:"queries"`
			K int `json:"k"`
		}
		req.Queries = make([]struct {
			Idx []int32   `json:"idx"`
			Val []float64 `json:"val"`
		}, 1)
		q.ForEach(func(ix int, v float64) {
			req.Queries[0].Idx = append(req.Queries[0].Idx, int32(ix))
			req.Queries[0].Val = append(req.Queries[0].Val, v)
		})
		req.K = serveBenchK
		bodies[i], err = json.Marshal(req)
		if err != nil {
			_ = shutdownBenchServer(srv)
			return serveRung{}, err
		}
	}

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        serveBenchInflight,
			MaxIdleConnsPerHost: serveBenchInflight,
		},
	}
	url := "http://" + ln.Addr().String() + "/v1/topk"
	rung := paceLoad(qps, serveBenchPhase, func(qi int64) bool {
		resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[qi%int64(len(bodies))]))
		if err != nil {
			return false
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	rung.MaxBatch = maxBatch
	rung.MeanBatch = srv.Metrics().MeanBatchSize

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return serveRung{}, err
	}
	<-serveDone
	if err := srv.Shutdown(ctx); err != nil {
		return serveRung{}, err
	}
	return rung, nil
}
