package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
)

// segRecord is the BENCH_segments.json artifact: the incremental-save
// headline of the segmented-store PR. It measures, on the micro-corpus
// shape, a full v2 directory save after ingesting N signatures, an
// incremental save after adding M << N more (the O(new data) claim: the
// sealed segments stay on disk untouched), and the v1 single-file
// snapshot as the rewrite-the-world baseline.
type segRecord struct {
	Timestamp   string `json:"timestamp"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	N           int    `json:"n_initial"`
	M           int    `json:"m_appended"`
	Shards      int    `json:"shards"`
	SegmentSize int    `json:"segment_size"`
	Segments    int    `json:"segments_after_ingest"`
	// IndexBytes is the resident posting-structure footprint after the
	// ingest batch seals (block-compressed segments); IndexPostings the
	// entry count. BENCH_postings.json carries the flat-vs-compressed
	// comparison.
	IndexBytes    int64   `json:"index_bytes"`
	IndexPostings int64   `json:"index_postings"`
	FullSave      segSave `json:"full_save"`
	Incremental   segSave `json:"incremental_save"`
	V1Snapshot    segSave `json:"v1_snapshot_full_rewrite"`
}

// segSave is one save's cost.
type segSave struct {
	Seconds      float64 `json:"seconds"`
	FilesWritten int     `json:"files_written"`
	BytesWritten int64   `json:"bytes_written"`
}

// dirSizes maps each file in dir to its size.
func dirSizes(dir string) (map[string]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64)
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			return nil, err
		}
		out[e.Name()] = fi.Size()
	}
	return out, nil
}

// fullSave runs one SaveDir into an empty directory, where every file
// on disk afterwards was just written: files = dirty segments +
// manifest, bytes = the whole directory.
//
//fmeter:nondeterministic-ok bench harness: times the save it measures
func fullSave(db *core.DB, dir string) (segSave, error) {
	dirty := db.DirtySegments()
	start := time.Now()
	if err := db.SaveDir(dir); err != nil {
		return segSave{}, err
	}
	elapsed := time.Since(start).Seconds()
	sizes, err := dirSizes(dir)
	if err != nil {
		return segSave{}, err
	}
	var bytes int64
	for _, sz := range sizes {
		bytes += sz
	}
	return segSave{Seconds: elapsed, FilesWritten: dirty + 1, BytesWritten: bytes}, nil
}

// runSegBench measures the segmented-store persistence trajectory and
// writes the JSON record.
//
//fmeter:nondeterministic-ok bench harness: persistence timing and run timestamps
func runSegBench(path string, stderr io.Writer) error {
	const (
		n        = 2000
		m        = 50
		shards   = 4
		segSize  = 128
		nnzPerDo = 250
	)
	c, err := microCorpus(n+m, nnzPerDo)
	if err != nil {
		return err
	}
	sigs, _, err := c.Signatures()
	if err != nil {
		return err
	}
	db, err := core.NewShardedDB(sigs[0].Dim(), shards)
	if err != nil {
		return err
	}
	db.SetSegmentSize(segSize)
	if err := db.AddAll(sigs[:n]); err != nil {
		return err
	}
	// Seal the ingest batch: the active segments freeze, so the
	// incremental save below touches none of the N-signature bulk —
	// only the fresh segments holding the M appends.
	db.Seal()

	tmp, err := os.MkdirTemp("", "fmeter-segbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	dir := filepath.Join(tmp, "db")

	rec := segRecord{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		N:             n,
		M:             m,
		Shards:        shards,
		SegmentSize:   segSize,
		Segments:      db.Segments(),
		IndexBytes:    db.IndexBytes(),
		IndexPostings: db.IndexPostings(),
	}

	// Full save: every segment is dirty.
	full, err := fullSave(db, dir)
	if err != nil {
		return err
	}
	rec.FullSave = full

	// Incremental save: only the active segments (at most one per
	// shard) are dirty after M appends.
	if err := db.AddAll(sigs[n:]); err != nil {
		return err
	}
	dirty := db.DirtySegments()
	beforeSizes, err := dirSizes(dir)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := db.SaveDir(dir); err != nil {
		return err
	}
	incSeconds := time.Since(start).Seconds()
	afterSizes, err := dirSizes(dir)
	if err != nil {
		return err
	}
	var incBytes int64
	incFiles := 0
	for name, sz := range afterSizes {
		if prev, ok := beforeSizes[name]; !ok || prev != sz || name == "MANIFEST.json" {
			incBytes += sz
			incFiles++
		}
	}
	rec.Incremental = segSave{Seconds: incSeconds, FilesWritten: incFiles, BytesWritten: incBytes}
	if dirty+1 < incFiles {
		// More files changed size than were dirty — should not happen;
		// surface it rather than publish a bogus record.
		return fmt.Errorf("segbench: %d files changed but only %d segments were dirty", incFiles, dirty)
	}

	// v1 baseline: the whole store, rewritten.
	v1Path := filepath.Join(tmp, "db.fmdb")
	start = time.Now()
	f, err := os.Create(v1Path)
	if err != nil {
		return err
	}
	if err := db.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	v1Seconds := time.Since(start).Seconds()
	fi, err := os.Stat(v1Path)
	if err != nil {
		return err
	}
	rec.V1Snapshot = segSave{Seconds: v1Seconds, FilesWritten: 1, BytesWritten: fi.Size()}

	fmt.Fprintf(stderr, "segmented store: %d sigs, %d segments, shards=%d segsize=%d\n", n, rec.Segments, shards, segSize)
	fmt.Fprintf(stderr, "  full save        %8.1f ms  %3d files  %9d bytes\n", rec.FullSave.Seconds*1e3, rec.FullSave.FilesWritten, rec.FullSave.BytesWritten)
	fmt.Fprintf(stderr, "  incremental(+%d) %8.1f ms  %3d files  %9d bytes\n", m, rec.Incremental.Seconds*1e3, rec.Incremental.FilesWritten, rec.Incremental.BytesWritten)
	fmt.Fprintf(stderr, "  v1 full rewrite  %8.1f ms  %3d files  %9d bytes\n", rec.V1Snapshot.Seconds*1e3, rec.V1Snapshot.FilesWritten, rec.V1Snapshot.BytesWritten)

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "segment-save record written to %s\n", path)
	return nil
}
