// Command fmeter-bench regenerates the paper's tables and figures at
// paper scale and writes the rendered reports.
//
// Usage:
//
//	fmeter-bench -run all
//	fmeter-bench -run table1,table4 -out reports/
//	fmeter-bench -run table4 -perclass 250
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fmeter-bench:", err)
		os.Exit(1)
	}
}

// experimentNames in canonical order.
var experimentNames = []string{
	"fig1", "table1", "table2", "table3", "table4", "table5",
	"fig4", "fig5", "fig6", "ablations",
}

//fmeter:nondeterministic-ok bench harness: wall-clock timing and run timestamps are the product
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fmeter-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList    = fs.String("run", "all", "comma-separated experiments: "+strings.Join(experimentNames, ",")+" or all")
		outDir     = fs.String("out", "", "also write each report to <out>/<name>.txt")
		perClass   = fs.Int("perclass", 250, "signatures per class for the learning experiments (paper: ~250)")
		seed       = fs.Int64("seed", 1, "random seed")
		workers    = fs.Int("workers", 0, "worker-pool bound for parallel sweeps (0 = one per CPU, <0 = sequential; results are identical at any setting)")
		sparse     = fs.Bool("sparse", false, "use the O(nnz) norm-cached K-means assignment step in the clustering experiments")
		benchJSON  = fs.String("benchjson", "", "write per-experiment wall-clock seconds to this JSON file (perf trajectory for future PRs)")
		microJSON  = fs.String("microjson", "", "run the retrieval micro-benchmarks (Transform, scan vs indexed TopK, batched TopK) and write them to this JSON file, then exit")
		segJSON    = fs.String("segjson", "", "run the segmented-store persistence benchmark (full vs incremental SaveDir vs v1 rewrite) and write it to this JSON file, then exit")
		postJSON   = fs.String("postjson", "", "run the posting-compression benchmark (index bytes flat vs block-compressed, TopK over both, cold-load mapped vs rebuild vs v1) and write it to this JSON file, then exit")
		indexMode  = fs.String("index", "off", "route the BenchmarkDBTopKSharded micro-benchmark DBs through the inverted index (on) or the exhaustive scan (off) — the CLI knob for reproducing the scan/index comparison; BenchmarkDBTopKIndexed and BenchmarkDBTopKBatch are always indexed")
		pruneMode  = fs.String("prune", "on", "route the BenchmarkDBTopKSealed micro-benchmark DBs through the threshold-pruned walk (on) or the plain sealed walk (off) — the CLI knob for A/B-ing pruning, like -index A/Bs the scan")
		pruneJSON  = fs.String("prunejson", "", "run the threshold-pruning scale benchmark (synthetic signature ladder up to -scale, pruned vs unpruned vs approximate TopK, sealed-segment trajectory under the tier compaction policy; both pruning arms are always measured regardless of -prune) and write it to this JSON file, then exit")
		mixedJSON  = fs.String("mixedjson", "", "run the concurrent-query benchmark (TopK p50/p99 read-only vs under a fixed-rate concurrent writer with live seals and tier compactions) and write it to this JSON file, then exit")
		serveJSON  = fs.String("servejson", "", "run the serving-layer load benchmark (p50/p99/throughput vs offered QPS with the micro-batch coalescer on vs off, plus an end-to-end HTTP rung) and write it to this JSON file, then exit")
		scale      = fs.Int("scale", 1_000_000, "corpus ceiling for -prunejson: the ladder measures at 10k and 100k signatures, then at this count")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(stderr, "fmeter-bench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "fmeter-bench: -memprofile:", err)
			}
		}()
	}
	var indexOn bool
	switch *indexMode {
	case "on":
		indexOn = true
	case "off":
		indexOn = false
	default:
		return fmt.Errorf("-index must be on or off, got %q", *indexMode)
	}
	var pruneOn bool
	switch *pruneMode {
	case "on":
		pruneOn = true
	case "off":
		pruneOn = false
	default:
		return fmt.Errorf("-prune must be on or off, got %q", *pruneMode)
	}
	if *microJSON != "" {
		return runMicroBench(*microJSON, indexOn, pruneOn, stderr)
	}
	if *pruneJSON != "" {
		return runPruneBench(*pruneJSON, *scale, stderr)
	}
	if *segJSON != "" {
		return runSegBench(*segJSON, stderr)
	}
	if *postJSON != "" {
		return runPostBench(*postJSON, stderr)
	}
	if *mixedJSON != "" {
		return runMixedBench(*mixedJSON, stderr)
	}
	if *serveJSON != "" {
		return runServeBench(*serveJSON, stderr)
	}

	selected := make(map[string]bool)
	if *runList == "all" {
		for _, n := range experimentNames {
			selected[n] = true
		}
	} else {
		for _, n := range strings.Split(*runList, ",") {
			n = strings.TrimSpace(n)
			found := false
			for _, known := range experimentNames {
				if n == known {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q", n)
			}
			selected[n] = true
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	emit := func(name, report string) error {
		fmt.Fprintln(stdout, report)
		if *outDir == "" {
			return nil
		}
		path := filepath.Join(*outDir, name+".txt")
		return os.WriteFile(path, []byte(report), 0o644)
	}

	mlp := experiments.DefaultMLParams()
	mlp.PerClass = *perClass
	mlp.Seed = *seed
	mlp.Workers = *workers

	// The learning experiments share the workload corpus; collect lazily.
	var data *experiments.WorkloadData
	getData := func() (*experiments.WorkloadData, error) {
		if data == nil {
			fmt.Fprintf(stderr, "collecting %d signatures per workload class...\n", mlp.PerClass)
			d, err := experiments.CollectWorkloadData(mlp)
			if err != nil {
				return nil, err
			}
			data = d
		}
		return data, nil
	}

	type step struct {
		name string
		fn   func() (string, error)
	}
	steps := []step{
		{"fig1", func() (string, error) {
			r, err := experiments.RunFig1(*seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"table1", func() (string, error) {
			r, err := experiments.RunTable1(*seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"table2", func() (string, error) {
			r, err := experiments.RunTable2(*seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"table3", func() (string, error) {
			r, err := experiments.RunTable3(*seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"table4", func() (string, error) {
			d, err := getData()
			if err != nil {
				return "", err
			}
			r, err := experiments.RunTable4(d.Set, mlp)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"table5", func() (string, error) {
			fmt.Fprintf(stderr, "collecting %d signatures per driver variant...\n", mlp.PerClass)
			set, err := experiments.CollectDriverSignatures(mlp)
			if err != nil {
				return "", err
			}
			p := mlp
			p.Folds = 8 // the paper's eight-fold protocol for Table 5
			r, err := experiments.RunTable5(set, p)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig4", func() (string, error) {
			d, err := getData()
			if err != nil {
				return "", err
			}
			r, err := experiments.RunFig4(d.Set, "scp", "kcompile", *seed)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig5", func() (string, error) {
			d, err := getData()
			if err != nil {
				return "", err
			}
			p := experiments.DefaultFig5Params()
			p.Seed = *seed
			p.Workers = *workers
			p.Sparse = *sparse
			capSizes(&p, mlp.PerClass)
			r, err := experiments.RunFig5(d.Set, p)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig6", func() (string, error) {
			d, err := getData()
			if err != nil {
				return "", err
			}
			p := experiments.DefaultFig6Params()
			p.Seed = *seed
			p.Workers = *workers
			p.Sparse = *sparse
			capSizes(&p, mlp.PerClass)
			r, err := experiments.RunFig6(d.Set, p)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"ablations", func() (string, error) {
			var b strings.Builder
			a1, err := experiments.RunAblationCounters(*seed)
			if err != nil {
				return "", err
			}
			b.WriteString(a1.Render())
			b.WriteByte('\n')
			a2, err := experiments.RunAblationHotCache(*seed, nil)
			if err != nil {
				return "", err
			}
			b.WriteString(a2.Render())
			b.WriteByte('\n')
			d, err := getData()
			if err != nil {
				return "", err
			}
			a3, err := experiments.RunAblationWeighting(d, mlp)
			if err != nil {
				return "", err
			}
			b.WriteString(a3.Render())
			b.WriteByte('\n')
			a4, err := experiments.RunAblationRings(200000, 1<<12, 1<<14)
			if err != nil {
				return "", err
			}
			b.WriteString(a4.Render())
			b.WriteByte('\n')
			a5, err := experiments.RunAblationInterval(min(mlp.PerClass, 60), mlp.Folds, *seed, nil)
			if err != nil {
				return "", err
			}
			b.WriteString(a5.Render())
			return b.String(), nil
		}},
	}

	elapsed := make(map[string]float64)
	for _, s := range steps {
		if !selected[s.name] {
			continue
		}
		start := time.Now()
		fmt.Fprintf(stderr, "== %s ==\n", s.name)
		report, err := s.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		if err := emit(s.name, report); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		d := time.Since(start)
		elapsed[s.name] = d.Seconds()
		fmt.Fprintf(stderr, "%s done in %v\n", s.name, d.Round(time.Millisecond))
	}
	if *benchJSON != "" {
		rec := benchRecord{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Workers:    *workers,
			Sparse:     *sparse,
			PerClass:   *perClass,
			Seed:       *seed,
			Seconds:    elapsed,
		}
		// Carry the perf-trajectory history across regenerations.
		if old, err := os.ReadFile(*benchJSON); err == nil {
			var prev benchRecord
			if json.Unmarshal(old, &prev) == nil {
				rec.History = prev.History
			}
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wall-clock record written to %s\n", *benchJSON)
	}
	return nil
}

// benchRecord is the perf-trajectory artifact emitted by -benchjson (and
// `make bench-smoke`): per-experiment wall-clock seconds plus the knobs
// that produced them, so future PRs can compare like against like.
type benchRecord struct {
	Timestamp  string             `json:"timestamp"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Sparse     bool               `json:"sparse"`
	PerClass   int                `json:"perclass"`
	Seed       int64              `json:"seed"`
	Seconds    map[string]float64 `json:"seconds"`
	// History holds hand-recorded before/after milestones (e.g. the
	// headline benchmark of a perf PR); it is preserved verbatim when
	// the record is regenerated.
	History []map[string]any `json:"history,omitempty"`
}

// capSizes bounds sample sizes by the collected per-class corpus size.
func capSizes(p *experiments.ClusterParams, perClass int) {
	var sizes []int
	for _, n := range p.SampleSizes {
		if n <= perClass {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 {
		sizes = []int{perClass}
	}
	p.SampleSizes = sizes
}
