package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vecmath"
)

// pruneRecord is the BENCH_pruned.json artifact: TopK latency over a
// synthetic corpus ladder (10k → -scale signatures in the paper's
// 3815-dim space) with threshold pruning on, off, and in approximate
// mode, plus the sealed-segment trajectory under the tier compaction
// policy. The headline numbers are the growth factors at the bottom: a
// 100× corpus must grow pruned TopK latency by well under 100× (the
// sub-linear claim), while the policy keeps the sealed-segment count
// inside the tier budget throughout ingestion.
type pruneRecord struct {
	Timestamp   string `json:"timestamp"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Dim         int    `json:"dim"`
	NNZ         int    `json:"nnz"`
	Shards      int    `json:"shards"`
	SegmentSize int    `json:"segment_size"`
	TierFanout  int    `json:"tier_fanout"`
	K           int    `json:"k"`

	Scales []pruneScale `json:"scales"`

	// Growth factors between the smallest and largest rung.
	GrowthCorpus         float64 `json:"growth_corpus_factor"`
	GrowthPrunedCosine   float64 `json:"growth_pruned_cosine_latency_factor"`
	GrowthUnprunedCosine float64 `json:"growth_unpruned_cosine_latency_factor"`
}

// pruneScale is one rung of the corpus ladder.
type pruneScale struct {
	Docs          int     `json:"docs"`
	IngestSeconds float64 `json:"ingest_seconds"`
	IndexBytes    int64   `json:"index_bytes"`
	// HeapInuseBytes is runtime.MemStats.HeapInuse after a GC at this
	// rung — the whole process's live heap (signatures + postings +
	// scratch), the footprint a mapped-mode deployment avoids growing.
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`

	// Segment trajectory under the compaction policy: the sealed count
	// observed while ingesting up to this rung never exceeded
	// SealedMaxDuringIngest, which must stay within TierBudget (the
	// policy's O(F·log_F) bound, summed over shards) — without the
	// policy the sealed count would be docs/segment_size.
	Segments              int `json:"segments"`
	SealedSegments        int `json:"sealed_segments"`
	SealedMaxDuringIngest int `json:"sealed_max_during_ingest"`
	TierBudget            int `json:"tier_budget"`

	// TopK latency per arm: "<metric>/pruned", "<metric>/unpruned",
	// "<metric>/theta=0.5".
	TopK map[string]microBench `json:"topk"`

	// ThetaRecall is approximate mode's recall@k against the exact
	// result over the probe queries.
	ThetaRecall map[string]float64 `json:"theta_recall"`

	// PruneStats are one exact-mode cosine query's counters at this
	// rung — what fraction of the corpus the walk actually touched.
	PruneStats core.PruneStats `json:"prune_stats"`
}

// pruneGen generates the synthetic corpus in the shape tf-idf gives
// real fmeter signatures: every trace hits the same common kernel
// functions (a shared pool of dims whose tf-idf weight is crushed by
// their ubiquity), while the workload's identity lives in its own small
// set of class dims carrying nearly all the L2 mass. Signatures arrive
// in per-workload batches (classSize consecutive docs per class — the
// collection pattern of running one workload at a time), and the class
// population grows with the corpus: a bigger deployment means more
// distinct workloads, not fatter classes. This is the regime threshold
// pruning is designed for — a query's class dims are the only
// high-impact postings in the store, and the crushed commons prune as
// the skippable tail. Deterministic for a given seed.
type pruneGen struct {
	r         *rand.Rand
	dim       int
	seed      int64
	shared    []int32 // the common-function pool: perm[:sharedPool]
	perm      []int   // fixed permutation partitioning shared vs class dim space
	class     int     // class whose support is cached in classDims
	classDims []int32
}

const (
	pruneClassSize  = 2000 // signatures per workload class (collection batch)
	pruneClassDims  = 50   // dims carrying a class's identity mass
	pruneSharedPool = 200  // ubiquitous common-function dims (low weight)
)

func newPruneGen(seed int64, dim int) *pruneGen {
	// The permutation (fixed across seeds) splits the dim space: the
	// first sharedPool entries are the commons, classes draw from the
	// rest (collisions between classes are allowed and realistic).
	perm := rand.New(rand.NewSource(7)).Perm(dim)
	g := &pruneGen{r: rand.New(rand.NewSource(seed)), dim: dim, seed: seed, perm: perm, class: -1}
	g.shared = make([]int32, pruneSharedPool)
	for i := range g.shared {
		g.shared[i] = int32(perm[i])
	}
	return g
}

// support caches the class's dim set: pruneClassDims draws (without
// replacement) from the non-shared dim space, seeded by the class id so
// every generator agrees on each class's identity.
func (g *pruneGen) support(class int) []int32 {
	if class == g.class {
		return g.classDims
	}
	cr := rand.New(rand.NewSource(1_000_003 * int64(class+1)))
	seen := make(map[int]bool, pruneClassDims)
	dims := make([]int32, 0, pruneClassDims)
	for len(dims) < pruneClassDims {
		p := pruneSharedPool + cr.Intn(g.dim-pruneSharedPool)
		if seen[p] {
			continue
		}
		seen[p] = true
		dims = append(dims, int32(g.perm[p]))
	}
	g.class, g.classDims = class, dims
	return dims
}

// next builds one normalized sparse signature of the given class.
func (g *pruneGen) next(id, class int) core.Signature {
	dims := g.support(class)
	idx := make([]int32, 0, pruneClassDims+pruneSharedPool)
	val := make([]float64, 0, pruneClassDims+pruneSharedPool)
	for _, d := range dims {
		idx = append(idx, d)
		val = append(val, 0.5+0.5*g.r.Float64())
	}
	for _, d := range g.shared {
		if g.r.Float64() < 0.75 {
			idx = append(idx, d)
			val = append(val, 0.01+0.04*g.r.Float64())
		}
	}
	// SparseFromSorted wants ascending indices; sort the parallel pair.
	sort.Sort(&idxValSorter{idx: idx, val: val})
	w, err := vecmath.SparseFromSorted(g.dim, idx, val)
	if err != nil {
		panic(err) // generator invariant: distinct in-range dims, non-zero vals
	}
	w.Normalize()
	return core.Signature{DocID: fmt.Sprintf("s%d", id), Label: fmt.Sprintf("c%d", class), W: w}
}

type idxValSorter struct {
	idx []int32
	val []float64
}

func (s *idxValSorter) Len() int           { return len(s.idx) }
func (s *idxValSorter) Less(a, b int) bool { return s.idx[a] < s.idx[b] }
func (s *idxValSorter) Swap(a, b int) {
	s.idx[a], s.idx[b] = s.idx[b], s.idx[a]
	s.val[a], s.val[b] = s.val[b], s.val[a]
}

// tierBudget is the policy's sealed-count bound for perShard records:
// fewer than F adjacent same-tier segments per tier, summed over the
// tiers a store of that size can populate (plus slack for the
// in-flight cascade), times the shard count.
func tierBudget(perShard, segSize, fanout, shards int) int {
	tiers := 2
	for bound := segSize * fanout; bound <= perShard; bound *= fanout {
		tiers++
	}
	return (fanout - 1) * tiers * shards
}

// runPruneBench builds the ladder corpus once (each rung extends the
// previous), measuring ingestion, the segment trajectory, and the TopK
// arms at every rung, then writes the JSON record.
//
//fmeter:nondeterministic-ok bench harness: ladder timing and run timestamps
func runPruneBench(path string, scale int, stderr io.Writer) error {
	const (
		dim     = 3815
		shards  = 4
		segSize = 4096
		fanout  = 4
		k       = 10
		nProbe  = 8
	)
	if scale < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", scale)
	}
	var rungs []int
	for _, n := range []int{10_000, 100_000} {
		if n < scale {
			rungs = append(rungs, n)
		}
	}
	rungs = append(rungs, scale)

	db, err := core.NewShardedDB(dim, shards)
	if err != nil {
		return err
	}
	db.SetSegmentSize(segSize)
	if err := db.SetCompactionPolicy(core.CompactionPolicy{TierFanout: fanout}); err != nil {
		return err
	}

	gen := newPruneGen(42, dim)
	probeGen := newPruneGen(43, dim)
	// Probe queries are fresh members of classes present from the first
	// rung on, so every rung answers the same workload-recognition task.
	probeClasses := rungs[0] / pruneClassSize
	if probeClasses < 1 {
		probeClasses = 1
	}
	queries := make([]*vecmath.Sparse, nProbe)
	for i := range queries {
		queries[i] = probeGen.next(i, i%probeClasses).W
	}

	rec := pruneRecord{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dim:         dim,
		NNZ:         pruneClassDims + pruneSharedPool*3/4,
		Shards:      shards,
		SegmentSize: segSize,
		TierFanout:  fanout,
		K:           k,
	}

	metrics := []core.Metric{core.CosineMetric(), core.EuclideanMetric()}
	added := 0
	sealedMax := 0
	for _, docs := range rungs {
		start := time.Now()
		for added < docs {
			if err := db.Add(gen.next(added, added/pruneClassSize)); err != nil {
				return err
			}
			added++
			if added%1024 == 0 {
				if s := db.SealedSegments(); s > sealedMax {
					sealedMax = s
				}
			}
			if added%100_000 == 0 {
				fmt.Fprintf(stderr, "ingested %d signatures (%d segments)...\n", added, db.Segments())
			}
		}
		db.Seal()
		if s := db.SealedSegments(); s > sealedMax {
			sealedMax = s
		}
		ingest := time.Since(start).Seconds()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)

		sc := pruneScale{
			Docs:                  docs,
			IngestSeconds:         ingest,
			IndexBytes:            db.IndexBytes(),
			HeapInuseBytes:        ms.HeapInuse,
			Segments:              db.Segments(),
			SealedSegments:        db.SealedSegments(),
			SealedMaxDuringIngest: sealedMax,
			TierBudget:            tierBudget((docs+shards-1)/shards, segSize, fanout, shards),
			TopK:                  make(map[string]microBench),
			ThetaRecall:           make(map[string]float64),
		}
		fmt.Fprintf(stderr, "== %d signatures: %d segments (%d sealed, budget %d), %.1f MiB postings, %.1f MiB heap in use ==\n",
			docs, sc.Segments, sc.SealedSegments, sc.TierBudget,
			float64(sc.IndexBytes)/(1<<20), float64(sc.HeapInuseBytes)/(1<<20))

		for _, metric := range metrics {
			exact := make([][]core.SearchResult, nProbe)
			for qi, q := range queries {
				if exact[qi], err = db.TopKSparse(q, k, metric); err != nil {
					return err
				}
			}
			arms := []struct {
				name  string
				prune bool
				theta float64
			}{
				{"pruned", true, 1},
				{"unpruned", false, 1},
				{"theta=0.5", true, 0.5},
			}
			for _, arm := range arms {
				db.SetPruned(arm.prune)
				db.SetPruneTheta(arm.theta)
				name := metric.Name + "/" + arm.name
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := db.TopKSparse(queries[i%nProbe], k, metric); err != nil {
							b.Fatal(err)
						}
					}
				})
				sc.TopK[name] = toMicroBench(res)
				fmt.Fprintf(stderr, "%-28s %14.0f ns/op %8d B/op %6d allocs/op\n",
					name, sc.TopK[name].NsPerOp, sc.TopK[name].BytesPerOp, sc.TopK[name].AllocsPerOp)
			}
			// Approximate-mode recall against the exact result.
			db.SetPruned(true)
			db.SetPruneTheta(0.5)
			overlap, total := 0, 0
			for qi, q := range queries {
				approx, err := db.TopKSparse(q, k, metric)
				if err != nil {
					return err
				}
				got := make(map[string]bool, len(approx))
				for _, h := range approx {
					got[h.Signature.DocID] = true
				}
				for _, h := range exact[qi] {
					total++
					if got[h.Signature.DocID] {
						overlap++
					}
				}
			}
			sc.ThetaRecall[metric.Name] = float64(overlap) / float64(total)
			db.SetPruneTheta(1)
			if metric.Name == "cosine" {
				if _, st, err := db.TopKSparseStats(queries[0], k, metric); err != nil {
					return err
				} else {
					sc.PruneStats = st
				}
			}
		}
		db.SetPruned(true)
		db.SetPruneTheta(1)
		rec.Scales = append(rec.Scales, sc)
	}

	if len(rec.Scales) > 1 {
		first, last := rec.Scales[0], rec.Scales[len(rec.Scales)-1]
		rec.GrowthCorpus = float64(last.Docs) / float64(first.Docs)
		rec.GrowthPrunedCosine = last.TopK["cosine/pruned"].NsPerOp / first.TopK["cosine/pruned"].NsPerOp
		rec.GrowthUnprunedCosine = last.TopK["cosine/unpruned"].NsPerOp / first.TopK["cosine/unpruned"].NsPerOp
		fmt.Fprintf(stderr, "corpus x%.0f: pruned cosine TopK x%.1f, unpruned x%.1f\n",
			rec.GrowthCorpus, rec.GrowthPrunedCosine, rec.GrowthUnprunedCosine)
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "pruning scale record written to %s\n", path)
	return nil
}
