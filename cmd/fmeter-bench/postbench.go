package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

// postRecord is the BENCH_postings.json artifact: the block-compressed
// posting-list headline of the postings PR. It reports, on the
// micro-corpus shapes, the resident index bytes of the flat
// (active-segment) layout against the sealed block-compressed layout,
// TopK latency over both plus the mmap-served layout (comparable with
// BenchmarkDBTopKIndexed in BENCH_indexed.json — same corpus, same
// query, same k), and the cold snapshot-load cost of the v2.1 path —
// mmap-served and heap-resident — against the rebuild path and the v1
// single-file rewrite.
type postRecord struct {
	Timestamp  string     `json:"timestamp"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Corpus     postCorpus `json:"corpus"`
	// Index bytes measured on the same store before and after Seal():
	// identical signatures, identical query results, one resident
	// representation swap.
	IndexBytesFlat        int64   `json:"index_bytes_flat"`
	IndexBytesCompressed  int64   `json:"index_bytes_compressed"`
	IndexCompressionRatio float64 `json:"index_compression_ratio"`
	Postings              int64   `json:"postings"`
	// Benchmarks holds TopK on the 100-doc BENCH_indexed micro shape,
	// flat vs compressed.
	Benchmarks map[string]microBench `json:"benchmarks"`
	ColdLoad   postColdLoad          `json:"cold_load"`
}

// postCorpus pins the corpus shape the index-bytes and cold-load
// numbers were measured on.
type postCorpus struct {
	Docs        int `json:"docs"`
	NNZ         int `json:"nnz"`
	Dim         int `json:"dim"`
	Shards      int `json:"shards"`
	SegmentSize int `json:"segment_size"`
}

// postColdLoad compares cold-open costs for the same signatures:
// LoadDirMapped over sealed v2.1 records (postings served off the file
// mapping), resident LoadDir over the same directory (postings copied
// onto the heap), LoadDir over unsealed records (no postings section —
// the rebuild path every load used to take), and the v1 single-file
// ReadSnapshot baseline. The residency fields split the posting
// footprint of each open mode into heap and page-cache bytes.
type postColdLoad struct {
	MmapNs       float64 `json:"v21_mmap_ns"`
	ResidentNs   float64 `json:"v21_resident_ns"`
	SealedBytes  int64   `json:"v21_sealed_dir_bytes"`
	RebuildNs    float64 `json:"v21_rebuild_ns"`
	RebuildBytes int64   `json:"v21_rebuild_dir_bytes"`
	V1Ns         float64 `json:"v1_snapshot_ns"`
	V1Bytes      int64   `json:"v1_snapshot_bytes"`
	// Posting-structure residency after opening the sealed directory.
	ResidentIndexBytes int64 `json:"resident_index_bytes"`
	MmapHeapBytes      int64 `json:"mmap_heap_index_bytes"`
	MmapMappedBytes    int64 `json:"mmap_mapped_bytes"`
	// First TopK immediately after a cold mapped open — open plus the
	// query that faults the needed posting pages in.
	MmapFirstQueryNs float64 `json:"mmap_first_query_ns"`
}

// runPostBench measures the posting-compression trajectory and writes
// the JSON record.
//
//fmeter:nondeterministic-ok bench harness: cold-load timing and run timestamps
func runPostBench(path string, stderr io.Writer) error {
	rec := postRecord{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]microBench),
	}

	// TopK on the exact BenchmarkDBTopKIndexed shape from
	// BENCH_indexed.json (100 docs, ~250 nnz, one shard), flat vs
	// compressed vs mapped: neither the compression nor serving blobs
	// off the page cache may buy its memory with query latency.
	{
		c, err := microCorpus(100, 250)
		if err != nil {
			return err
		}
		sigs, _, err := c.Signatures()
		if err != nil {
			return err
		}
		query := sigs[0].W
		benchTopK := func(db *core.DB, layout string) {
			for _, metric := range []core.Metric{core.EuclideanMetric(), core.CosineMetric()} {
				name := fmt.Sprintf("BenchmarkDBTopKPostings/%s/%s", layout, metric.Name)
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := db.TopKSparse(query, 10, metric); err != nil {
							b.Fatal(err)
						}
					}
				})
				rec.Benchmarks[name] = toMicroBench(res)
				fmt.Fprintf(stderr, "%-48s %12.0f ns/op %8d B/op %6d allocs/op\n",
					name, rec.Benchmarks[name].NsPerOp, rec.Benchmarks[name].BytesPerOp, rec.Benchmarks[name].AllocsPerOp)
			}
		}
		var sealedDB *core.DB
		for _, sealed := range []bool{false, true} {
			db, err := core.NewDB(sigs[0].Dim())
			if err != nil {
				return err
			}
			if err := db.AddAll(sigs); err != nil {
				return err
			}
			layout := "flat"
			if sealed {
				db.Seal()
				layout = "compressed"
				sealedDB = db
			}
			benchTopK(db, layout)
		}
		// Mapped layout: the sealed store round-tripped through SaveDir
		// and reopened with postings served off the file mapping.
		microTmp, err := os.MkdirTemp("", "fmeter-postbench-micro-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(microTmp)
		if err := sealedDB.SaveDir(microTmp); err != nil {
			return err
		}
		mdb, err := core.LoadDirMapped(microTmp)
		if err != nil {
			return err
		}
		benchTopK(mdb, "mapped")
		if err := mdb.Close(); err != nil {
			return err
		}
	}

	// Index bytes and cold load on the segbench shape (2000 docs over 4
	// shards).
	const (
		n      = 2000
		nnz    = 250
		shards = 4
	)
	c, err := microCorpus(n, nnz)
	if err != nil {
		return err
	}
	sigs, _, err := c.Signatures()
	if err != nil {
		return err
	}
	build := func() (*core.DB, error) {
		db, err := core.NewShardedDB(sigs[0].Dim(), shards)
		if err != nil {
			return nil, err
		}
		if err := db.AddAll(sigs); err != nil {
			return nil, err
		}
		return db, nil
	}
	db, err := build()
	if err != nil {
		return err
	}
	rec.Corpus = postCorpus{Docs: n, NNZ: nnz, Dim: sigs[0].Dim(), Shards: shards, SegmentSize: db.SegmentSize()}
	rec.Postings = db.IndexPostings()
	rec.IndexBytesFlat = db.IndexBytes()
	db.Seal()
	rec.IndexBytesCompressed = db.IndexBytes()
	rec.IndexCompressionRatio = float64(rec.IndexBytesFlat) / float64(rec.IndexBytesCompressed)
	fmt.Fprintf(stderr, "index bytes: flat %d -> compressed %d (%.2fx smaller, %d postings)\n",
		rec.IndexBytesFlat, rec.IndexBytesCompressed, rec.IndexCompressionRatio, rec.Postings)

	tmp, err := os.MkdirTemp("", "fmeter-postbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Cold load over sealed segments: the persisted compressed blocks
	// are validated and either copied onto the heap (resident LoadDir)
	// or served in place off a read-only file mapping (LoadDirMapped).
	sealedDir := filepath.Join(tmp, "sealed")
	if err := db.SaveDir(sealedDir); err != nil {
		return err
	}
	rec.ColdLoad.SealedBytes = dirBytes(sealedDir)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rdb, err := core.LoadDir(sealedDir)
			if err != nil {
				b.Fatal(err)
			}
			rdb.Close()
		}
	})
	rec.ColdLoad.ResidentNs = float64(res.T.Nanoseconds()) / float64(res.N)

	res = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mdb, err := core.LoadDirMapped(sealedDir)
			if err != nil {
				b.Fatal(err)
			}
			if err := mdb.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	rec.ColdLoad.MmapNs = float64(res.T.Nanoseconds()) / float64(res.N)

	// Residency split and cold first query: after a mapped open the
	// posting blobs live in the page cache, not the heap.
	{
		rdb, err := core.LoadDir(sealedDir)
		if err != nil {
			return err
		}
		rec.ColdLoad.ResidentIndexBytes = rdb.IndexBytes()
		rdb.Close()
		query := sigs[0].W
		res = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mdb, err := core.LoadDirMapped(sealedDir)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mdb.TopKSparse(query, 10, core.EuclideanMetric()); err != nil {
					b.Fatal(err)
				}
				if err := mdb.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
		rec.ColdLoad.MmapFirstQueryNs = float64(res.T.Nanoseconds()) / float64(res.N)
		mdb, err := core.LoadDirMapped(sealedDir)
		if err != nil {
			return err
		}
		rec.ColdLoad.MmapHeapBytes = mdb.IndexBytes()
		rec.ColdLoad.MmapMappedBytes = mdb.MappedBytes()
		if err := mdb.Close(); err != nil {
			return err
		}
	}

	// Cold load, rebuild: the same signatures saved from unsealed
	// (active) segments carry no postings section, so LoadDir takes the
	// posting-by-posting rebuild — what every cold open cost before the
	// v2.1 record.
	db2, err := build()
	if err != nil {
		return err
	}
	rebuildDir := filepath.Join(tmp, "rebuild")
	if err := db2.SaveDir(rebuildDir); err != nil {
		return err
	}
	rec.ColdLoad.RebuildBytes = dirBytes(rebuildDir)
	res = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rdb, err := core.LoadDir(rebuildDir)
			if err != nil {
				b.Fatal(err)
			}
			rdb.Close()
		}
	})
	rec.ColdLoad.RebuildNs = float64(res.T.Nanoseconds()) / float64(res.N)

	// v1 baseline: single-file snapshot, full re-shard and rebuild.
	v1Path := filepath.Join(tmp, "db.fmdb")
	f, err := os.Create(v1Path)
	if err != nil {
		return err
	}
	if err := db.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fi, err := os.Stat(v1Path)
	if err != nil {
		return err
	}
	rec.ColdLoad.V1Bytes = fi.Size()
	res = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raw, err := os.Open(v1Path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.ReadSnapshot(raw, shards); err != nil {
				b.Fatal(err)
			}
			raw.Close()
		}
	})
	rec.ColdLoad.V1Ns = float64(res.T.Nanoseconds()) / float64(res.N)

	fmt.Fprintf(stderr, "cold load: v2.1 mmap %.2f ms (first query %.2f ms), resident %.1f ms (%d B on disk), rebuild %.1f ms (%d B), v1 %.1f ms (%d B)\n",
		rec.ColdLoad.MmapNs/1e6, rec.ColdLoad.MmapFirstQueryNs/1e6,
		rec.ColdLoad.ResidentNs/1e6, rec.ColdLoad.SealedBytes,
		rec.ColdLoad.RebuildNs/1e6, rec.ColdLoad.RebuildBytes,
		rec.ColdLoad.V1Ns/1e6, rec.ColdLoad.V1Bytes)
	fmt.Fprintf(stderr, "residency: resident index %d B heap vs mapped %d B heap + %d B page cache\n",
		rec.ColdLoad.ResidentIndexBytes, rec.ColdLoad.MmapHeapBytes, rec.ColdLoad.MmapMappedBytes)

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "posting-compression record written to %s\n", path)
	return nil
}

// dirBytes sums the sizes of every file in dir (0 on error — the bench
// record is advisory).
func dirBytes(dir string) int64 {
	sizes, err := dirSizes(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, sz := range sizes {
		total += sz
	}
	return total
}
