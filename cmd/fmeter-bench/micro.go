package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vecmath"
)

// microRecord is the BENCH_indexed.json artifact (formerly
// BENCH_sparse_first.json): the retrieval micro-benchmarks — tf-idf
// embedding, scan vs inverted-index TopK, batched TopK — measured via
// testing.Benchmark, so the perf trajectory of the signature store is
// recorded next to the wall-clock table records.
type microRecord struct {
	Timestamp  string                `json:"timestamp"`
	GoMaxProcs int                   `json:"gomaxprocs"`
	Benchmarks map[string]microBench `json:"benchmarks"`
}

// microBench is one benchmark's headline numbers.
type microBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// toMicroBench converts a testing.BenchmarkResult.
func toMicroBench(r testing.BenchmarkResult) microBench {
	return microBench{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// microCorpus builds the benchmark corpus: ~250 nnz documents in the
// paper's 3815-dim space.
func microCorpus(docs, nnz int) (*core.Corpus, error) {
	const dim = 3815
	r := rand.New(rand.NewSource(1))
	c, err := core.NewCorpus(dim)
	if err != nil {
		return nil, err
	}
	for i := 0; i < docs; i++ {
		counts := make(map[int]uint64)
		for j := 0; j < nnz; j++ {
			counts[r.Intn(dim)] = uint64(1 + r.Intn(100000))
		}
		doc := &core.Document{ID: fmt.Sprintf("d%d", i), Label: fmt.Sprintf("l%d", i%3), Duration: 10 * time.Second, Counts: counts}
		if err := c.Add(doc); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// runMicroBench measures the retrieval micro-benchmarks and writes the
// JSON record. The benchmark set mirrors the go-test benchmarks of the
// same names (internal/core): BenchmarkTransform3815 sparse vs the
// dense view, BenchmarkDBTopKSharded at 1 and 4 shards (scan by
// default; -index=on flips it for CLI A/B runs), the always-indexed
// BenchmarkDBTopKIndexed, the sealed-store BenchmarkDBTopKSealed
// (threshold-pruned by default; -prune=off flips it for A/B runs), and
// the batched BenchmarkDBTopKBatch with reused result buffers (the
// 0 allocs/op record).
//
//fmeter:nondeterministic-ok bench harness: run timestamps for the perf record
func runMicroBench(path string, indexOn, pruneOn bool, stderr io.Writer) error {
	c, err := microCorpus(100, 250)
	if err != nil {
		return err
	}
	m, err := c.Fit()
	if err != nil {
		return err
	}
	target := c.Docs()[0]

	rec := microRecord{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]microBench),
	}
	bench := func(name string, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		rec.Benchmarks[name] = toMicroBench(res)
		fmt.Fprintf(stderr, "%-40s %12.0f ns/op %8d B/op %6d allocs/op\n",
			name, rec.Benchmarks[name].NsPerOp, rec.Benchmarks[name].BytesPerOp, rec.Benchmarks[name].AllocsPerOp)
	}

	bench("BenchmarkTransform3815/sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Transform(target); err != nil {
				b.Fatal(err)
			}
		}
	})
	bench("BenchmarkTransform3815/dense-view", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sig, err := m.Transform(target)
			if err != nil {
				b.Fatal(err)
			}
			_ = sig.Dense()
		}
	})

	sigs, _, err := c.Signatures()
	if err != nil {
		return err
	}
	query := sigs[0].W
	for _, shards := range []int{1, 4} {
		db, err := core.NewShardedDB(sigs[0].Dim(), shards)
		if err != nil {
			return err
		}
		db.SetIndexed(indexOn)
		if err := db.AddAll(sigs); err != nil {
			return err
		}
		for _, metric := range []core.Metric{core.EuclideanMetric(), core.CosineMetric()} {
			name := fmt.Sprintf("BenchmarkDBTopKSharded/shards=%d/%s", shards, metric.Name)
			bench(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := db.TopKSparse(query, 10, metric); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// Indexed retrieval on the same corpus shape: posting-list
	// accumulation over the query support instead of the exhaustive
	// merge-walk scan (the BenchmarkDBTopKSharded family above).
	for _, shards := range []int{1, 4} {
		db, err := core.NewShardedDB(sigs[0].Dim(), shards)
		if err != nil {
			return err
		}
		if err := db.AddAll(sigs); err != nil {
			return err
		}
		for _, metric := range []core.Metric{core.EuclideanMetric(), core.CosineMetric()} {
			name := fmt.Sprintf("BenchmarkDBTopKIndexed/shards=%d/%s", shards, metric.Name)
			bench(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := db.TopKSparse(query, 10, metric); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// Sealed-store retrieval on the same corpus shape: block-compressed
	// posting lists with the threshold-pruned walk (-prune=off falls
	// back to the plain sealed walk — the pruning A/B knob). Note this
	// corpus sits under the pruned walk's shard-size floor, so both
	// arms measure the plain sealed walk here and should read ~equal;
	// BENCH_pruned.json is where the A/B separates (the floor exists
	// precisely because seeding costs more than a tiny shard's walk).
	for _, shards := range []int{1, 4} {
		db, err := core.NewShardedDB(sigs[0].Dim(), shards)
		if err != nil {
			return err
		}
		if err := db.AddAll(sigs); err != nil {
			return err
		}
		db.Seal()
		db.SetPruned(pruneOn)
		for _, metric := range []core.Metric{core.EuclideanMetric(), core.CosineMetric()} {
			name := fmt.Sprintf("BenchmarkDBTopKSealed/shards=%d/%s", shards, metric.Name)
			bench(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := db.TopKSparse(query, 10, metric); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// Batched queries with reused result buffers: sequential workers pin
	// the steady-state 0 allocs/op contract, the worker-pool run shows
	// the fan-out. On a 1-CPU host (see the record's gomaxprocs field)
	// workers=all resolves to one worker and both rows run the identical
	// sequential path — equal numbers there are expected, not a fan-out
	// defect (DESIGN-PERF.md, Layer 6).
	{
		db, err := core.NewShardedDB(sigs[0].Dim(), 4)
		if err != nil {
			return err
		}
		if err := db.AddAll(sigs); err != nil {
			return err
		}
		queries := make([]*vecmath.Sparse, 0, 64)
		for len(queries) < 64 {
			queries = append(queries, sigs[len(queries)%len(sigs)].W)
		}
		metric := core.EuclideanMetric()
		for _, workers := range []int{-1, 0} {
			name := "BenchmarkDBTopKBatch/workers=seq"
			if workers == 0 {
				name = "BenchmarkDBTopKBatch/workers=all"
			}
			db.SetWorkers(workers)
			out := make([][]core.SearchResult, len(queries))
			if err := db.TopKBatchInto(queries, 10, metric, out); err != nil {
				return err
			}
			bench(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := db.TopKBatchInto(queries, 10, metric, out); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// Batched k-NN labeling: hits and vote counts live in pooled
	// scratch, the label slice is caller-owned — the ClassifyBatch
	// 0 allocs/op record.
	{
		db, err := core.NewShardedDB(sigs[0].Dim(), 4)
		if err != nil {
			return err
		}
		if err := db.AddAll(sigs); err != nil {
			return err
		}
		db.SetWorkers(-1)
		queries := make([]*vecmath.Sparse, 0, 64)
		for len(queries) < 64 {
			queries = append(queries, sigs[len(queries)%len(sigs)].W)
		}
		metric := core.EuclideanMetric()
		labels := make([]string, len(queries))
		if err := db.ClassifyBatchInto(queries, 10, metric, labels); err != nil {
			return err
		}
		bench("BenchmarkDBClassifyBatch/workers=seq", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := db.ClassifyBatchInto(queries, 10, metric, labels); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Pin the kernel the scans ride on (sparse dot at ~250 nnz).
	x, y := sigs[0].W, sigs[1].W
	bench("BenchmarkSparseDot250", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.Dot(y)
		}
	})

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "micro-benchmark record written to %s\n", path)
	return nil
}
