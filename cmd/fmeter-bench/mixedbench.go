package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/vecmath"
)

// mixedRecord is the BENCH_concurrent.json artifact: query latency
// under concurrent ingestion. The epoch-view DB promises that writers
// never block readers; this benchmark prices the promise by measuring
// TopK p50/p99 twice over the same store — first read-only, then while
// a writer ingests at a fixed rate (with seals and tier compactions
// firing as segments roll) — so the two latency columns are directly
// comparable.
type mixedRecord struct {
	Timestamp   string `json:"timestamp"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	N           int    `json:"n_preloaded"`
	Shards      int    `json:"shards"`
	SegmentSize int    `json:"segment_size"`
	TierFanout  int    `json:"tier_fanout"`
	K           int    `json:"k"`
	// WriterTargetPerSec is the configured ingest rate; AchievedPerSec
	// what the paced writer actually sustained (they diverge only if the
	// machine cannot keep up).
	WriterTargetPerSec   int      `json:"writer_target_per_sec"`
	WriterAchievedPerSec float64  `json:"writer_achieved_per_sec"`
	WritesDuringMixed    int64    `json:"writes_during_mixed"`
	SegmentsAfter        int      `json:"segments_after"`
	ReadOnly             mixedLat `json:"read_only"`
	Mixed                mixedLat `json:"mixed"`
}

// mixedLat is one measurement phase's query-latency summary.
type mixedLat struct {
	Queries    int     `json:"queries"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
}

// percentile returns the p-quantile of sorted latencies.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// measureQueries runs single-threaded TopK queries against db for d,
// timing each one. Single-threaded on purpose: per-query latency, not
// throughput, is what writer interference would show up in.
//
//fmeter:nondeterministic-ok bench harness: measures wall-clock per-query latency
func measureQueries(db *core.DB, queries []*vecmath.Sparse, k int, d time.Duration) (mixedLat, error) {
	lats := make([]float64, 0, 1<<14)
	var sum float64
	deadline := time.Now().Add(d)
	for qi := 0; time.Now().Before(deadline); qi++ {
		t0 := time.Now()
		if _, err := db.TopKSparse(queries[qi%len(queries)], k, core.CosineMetric()); err != nil {
			return mixedLat{}, err
		}
		us := time.Since(t0).Seconds() * 1e6
		lats = append(lats, us)
		sum += us
	}
	sort.Float64s(lats)
	return mixedLat{
		Queries:    len(lats),
		MeanMicros: sum / float64(len(lats)),
		P50Micros:  percentile(lats, 0.50),
		P99Micros:  percentile(lats, 0.99),
	}, nil
}

// runMixedBench measures query latency with and without a fixed-rate
// concurrent writer and writes the JSON record.
//
//fmeter:nondeterministic-ok bench harness: wall-clock pacing for the fixed-rate writer and run timestamps
func runMixedBench(path string, stderr io.Writer) error {
	const (
		n         = 3000 // preloaded store
		pool      = 2500 // signatures reserved for the writer (never wraps)
		shards    = 4
		segSize   = 256
		fanout    = 4
		k         = 10
		rate      = 1000 // writer target, signatures/second
		phase     = 1500 * time.Millisecond
		nnzPerDoc = 250
	)
	c, err := microCorpus(n+pool, nnzPerDoc)
	if err != nil {
		return err
	}
	sigs, _, err := c.Signatures()
	if err != nil {
		return err
	}
	db, err := core.NewShardedDB(sigs[0].Dim(), shards)
	if err != nil {
		return err
	}
	defer db.Close()
	db.SetSegmentSize(segSize)
	if err := db.SetCompactionPolicy(core.CompactionPolicy{TierFanout: fanout}); err != nil {
		return err
	}
	if err := db.AddAll(sigs[:n]); err != nil {
		return err
	}
	db.Seal()

	queries := make([]*vecmath.Sparse, 64)
	for i := range queries {
		queries[i] = sigs[i].W
	}

	rec := mixedRecord{
		Timestamp:          time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		N:                  n,
		Shards:             shards,
		SegmentSize:        segSize,
		TierFanout:         fanout,
		K:                  k,
		WriterTargetPerSec: rate,
	}

	// Phase 1: the read-only baseline.
	if rec.ReadOnly, err = measureQueries(db, queries, k, phase); err != nil {
		return err
	}

	// Phase 2: same queries while a paced writer ingests behind the
	// epoch views (seals and tier compactions fire as segments roll).
	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	var writes atomic.Int64
	writerStart := time.Now()
	go func() {
		period := time.Second / time.Duration(rate)
		for i := 0; i < pool; i++ {
			select {
			case <-stop:
				writerDone <- nil
				return
			default:
			}
			if err := db.Add(sigs[n+i]); err != nil {
				writerDone <- err
				return
			}
			writes.Add(1)
			if d := time.Until(writerStart.Add(time.Duration(i+1) * period)); d > 0 {
				time.Sleep(d)
			}
		}
		writerDone <- nil
	}()
	mixed, qerr := measureQueries(db, queries, k, phase)
	close(stop)
	writerElapsed := time.Since(writerStart).Seconds()
	if werr := <-writerDone; werr != nil {
		return fmt.Errorf("mixedbench: writer: %w", werr)
	}
	if qerr != nil {
		return qerr
	}
	rec.Mixed = mixed
	rec.WritesDuringMixed = writes.Load()
	rec.WriterAchievedPerSec = float64(rec.WritesDuringMixed) / writerElapsed
	rec.SegmentsAfter = db.Segments()

	fmt.Fprintf(stderr, "mixed workload: %d sigs preloaded, shards=%d segsize=%d fanout=%d, writer %d/s\n",
		n, shards, segSize, fanout, rate)
	fmt.Fprintf(stderr, "  read-only  %6d queries  p50 %7.1f us  p99 %7.1f us\n",
		rec.ReadOnly.Queries, rec.ReadOnly.P50Micros, rec.ReadOnly.P99Micros)
	fmt.Fprintf(stderr, "  mixed      %6d queries  p50 %7.1f us  p99 %7.1f us  (%d writes @ %.0f/s)\n",
		rec.Mixed.Queries, rec.Mixed.P50Micros, rec.Mixed.P99Micros, rec.WritesDuringMixed, rec.WriterAchievedPerSec)

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "concurrent-query record written to %s\n", path)
	return nil
}
