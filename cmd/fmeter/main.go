// Command fmeter collects low-level system signatures from a simulated
// monitored machine: it runs a workload under the Fmeter tracer, reads the
// kernel function counters through debugfs every interval, and writes the
// raw-count documents as JSON Lines.
//
// Usage:
//
//	fmeter -workload scp -n 50 -interval 10s -out scp.jsonl
//	fmeter -workload netperf -driver 1.5.1-nolro -n 20 -out nolro.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	fmeter "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fmeter:", err)
		os.Exit(1)
	}
}

// workloadByName maps CLI names to workload constructors.
func workloadByName(name string) (fmeter.WorkloadSpec, error) {
	switch name {
	case "scp":
		return fmeter.ScpWorkload(), nil
	case "kcompile":
		return fmeter.KcompileWorkload(), nil
	case "dbench":
		return fmeter.DbenchWorkload(), nil
	case "apachebench":
		return fmeter.ApachebenchWorkload(), nil
	case "netperf":
		return fmeter.NetperfWorkload(), nil
	case "boot":
		return fmeter.BootWorkload(), nil
	default:
		return fmeter.WorkloadSpec{}, fmt.Errorf("unknown workload %q (scp|kcompile|dbench|apachebench|netperf|boot)", name)
	}
}

// driverByName maps CLI names to myri10ge variants.
func driverByName(name string) (fmeter.DriverVariant, error) {
	switch name {
	case "1.5.1":
		return fmeter.Driver151, nil
	case "1.4.3":
		return fmeter.Driver143, nil
	case "1.5.1-nolro":
		return fmeter.Driver151NoLRO, nil
	default:
		return 0, fmt.Errorf("unknown driver %q (1.5.1|1.4.3|1.5.1-nolro)", name)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fmeter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloadName = fs.String("workload", "scp", "workload to run: scp|kcompile|dbench|apachebench|netperf|boot")
		driverName   = fs.String("driver", "", "myri10ge variant for netperf: 1.5.1|1.4.3|1.5.1-nolro")
		n            = fs.Int("n", 30, "number of monitoring intervals to collect")
		interval     = fs.Duration("interval", 10*time.Second, "collection interval (virtual time; paper uses 2-10s)")
		seed         = fs.Int64("seed", 1, "random seed (runs are reproducible)")
		outPath      = fs.String("out", "-", "output JSONL file, - for stdout")
		quiet        = fs.Bool("quiet", false, "suppress the per-run summary on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := workloadByName(*workloadName)
	if err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("-n must be >= 1")
	}

	sys, err := fmeter.New(fmeter.Config{Seed: *seed})
	if err != nil {
		return err
	}
	if *driverName != "" {
		v, err := driverByName(*driverName)
		if err != nil {
			return err
		}
		if err := sys.LoadDriver(v); err != nil {
			return err
		}
	} else if *workloadName == "netperf" {
		// netperf needs a NIC driver; default to the paper's baseline.
		if err := sys.LoadDriver(fmeter.Driver151); err != nil {
			return err
		}
	}

	out := stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		out = f
	}

	docs, err := sys.Collect(spec, *n, *interval, out)
	if err != nil {
		return err
	}
	if !*quiet {
		var total uint64
		for _, d := range docs {
			total += d.Total()
		}
		fmt.Fprintf(stderr, "collected %d signatures (%s, interval %v, %d kernel function calls total)\n",
			len(docs), spec.Name, *interval, total)
	}
	return nil
}
