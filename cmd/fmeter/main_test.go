package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	fmeter "repro"
)

func TestRunCollectsToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-workload", "scp", "-n", "3", "-interval", "5s"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := fmeter.ReadDocuments(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("docs = %d", len(docs))
	}
	if docs[0].Label != "scp" {
		t.Errorf("label = %q", docs[0].Label)
	}
	if !strings.Contains(errBuf.String(), "collected 3 signatures") {
		t.Errorf("summary missing: %q", errBuf.String())
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	var out, errBuf bytes.Buffer
	err := run([]string{"-workload", "dbench", "-n", "2", "-out", path, "-quiet"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("stdout should be empty with -out file")
	}
	if errBuf.Len() != 0 {
		t.Error("-quiet should silence the summary")
	}
}

func TestRunNetperfDefaultsDriver(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-workload", "netperf", "-n", "1", "-quiet"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := run([]string{"-workload", "netperf", "-driver", "1.4.3", "-n", "1", "-quiet"}, &out2, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 || out2.Len() == 0 {
		t.Error("netperf collection produced no documents")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-driver", "nope", "-workload", "netperf"},
		{"-n", "0"},
	} {
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestWorkloadByNameCoversAll(t *testing.T) {
	for _, name := range []string{"scp", "kcompile", "dbench", "apachebench", "netperf", "boot"} {
		if _, err := workloadByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := workloadByName("x"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestDriverByName(t *testing.T) {
	for name, want := range map[string]fmeter.DriverVariant{
		"1.5.1": fmeter.Driver151, "1.4.3": fmeter.Driver143, "1.5.1-nolro": fmeter.Driver151NoLRO,
	} {
		got, err := driverByName(name)
		if err != nil || got != want {
			t.Errorf("driverByName(%s) = %v, %v", name, got, err)
		}
	}
}
