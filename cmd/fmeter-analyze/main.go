// Command fmeter-analyze performs offline analysis of signature logs
// collected by fmeter/fmeterd: it builds a shared tf-idf corpus over one
// or more JSONL files (labels come from the documents), then classifies
// unlabeled documents against the labeled ones, clusters the corpus, or
// explains what distinguishes two labels.
//
// Usage:
//
//	fmeter-analyze -mode classify -in scp.jsonl,dbench.jsonl,unknown.jsonl
//	fmeter-analyze -mode cluster -k 3 -in all.jsonl
//	fmeter-analyze -mode contrast -labels scp,dbench -in all.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	fmeter "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fmeter-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fmeter-analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode   = fs.String("mode", "classify", "analysis mode: classify|cluster|contrast")
		inList = fs.String("in", "", "comma-separated JSONL signature logs")
		k      = fs.Int("k", 2, "cluster count (cluster mode) / neighbours (classify mode)")
		labels = fs.String("labels", "", "two labels to contrast, comma-separated (contrast mode)")
		topN   = fs.Int("top", 10, "terms to print in contrast mode")
		dim    = fs.Int("dim", 3815, "signature dimension (core-kernel function count)")
		saveDB = fs.String("savedb", "", "classify mode: also persist the labeled signature DB as a snapshot directory at this path (incremental + crash-safe; reload with fmeter.OpenDB)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inList == "" {
		return fmt.Errorf("-in is required")
	}

	var docs []*fmeter.Document
	for _, path := range strings.Split(*inList, ",") {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		batch, err := fmeter.ReadDocuments(f)
		cerr := f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if cerr != nil {
			return cerr
		}
		docs = append(docs, batch...)
	}
	if len(docs) == 0 {
		return fmt.Errorf("no documents in input")
	}
	sigs, _, err := fmeter.BuildSignatures(docs, *dim)
	if err != nil {
		return err
	}

	switch *mode {
	case "classify":
		return classify(stdout, sigs, *k, *dim, *saveDB)
	case "cluster":
		return clusterMode(stdout, sigs, *k)
	case "contrast":
		parts := strings.Split(*labels, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-labels needs exactly two comma-separated labels")
		}
		return contrast(stdout, sigs, parts[0], parts[1], *topN)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// classify labels every unlabeled signature by k-NN against the labeled
// ones, optionally persisting the labeled DB via the facade's atomic
// snapshot-directory save (no hand-rolled os.Create: a crash mid-write
// never leaves a torn store behind).
func classify(w io.Writer, sigs []fmeter.Signature, k, dim int, saveDB string) error {
	db, err := fmeter.NewDB(dim)
	if err != nil {
		return err
	}
	defer db.Close()
	var unlabeled []fmeter.Signature
	for _, s := range sigs {
		if s.Label == "" {
			unlabeled = append(unlabeled, s)
		} else if err := db.Add(s); err != nil {
			return err
		}
	}
	if db.Len() == 0 {
		return fmt.Errorf("classify mode needs labeled documents")
	}
	if len(unlabeled) == 0 {
		return fmt.Errorf("classify mode needs unlabeled documents (empty label field)")
	}
	fmt.Fprintf(w, "classifying %d unlabeled signatures against %d labeled (k=%d):\n",
		len(unlabeled), db.Len(), k)
	// One batched pass: the queries fan out over the worker pool and each
	// rides the DB's inverted index, instead of a scan per signature.
	queries := make([]*fmeter.Sparse, len(unlabeled))
	for i, s := range unlabeled {
		queries[i] = s.W
	}
	labels, err := fmeter.ClassifyBatch(db, queries, k, fmeter.EuclideanMetric())
	if err != nil {
		return err
	}
	for i, s := range unlabeled {
		fmt.Fprintf(w, "  %-24s -> %s\n", s.DocID, labels[i])
	}
	if saveDB != "" {
		if err := fmeter.SaveDB(saveDB, db); err != nil {
			return err
		}
		fmt.Fprintf(w, "labeled DB (%d signatures) saved to %s\n", db.Len(), saveDB)
	}
	return nil
}

// clusterMode K-means-clusters the corpus and reports purity when labels
// exist.
func clusterMode(w io.Writer, sigs []fmeter.Signature, k int) error {
	res, err := fmeter.ClusterSignatures(sigs, k, 1)
	if err != nil {
		return err
	}
	counts := make(map[int]map[string]int)
	for i, s := range sigs {
		c := res.Assign[i]
		if counts[c] == nil {
			counts[c] = map[string]int{}
		}
		key := s.Label
		if key == "" {
			key = "(unlabeled)"
		}
		counts[c][key]++
	}
	fmt.Fprintf(w, "K-means K=%d over %d signatures (purity %.3f):\n", k, len(sigs), res.Purity)
	for c := 0; c < k; c++ {
		fmt.Fprintf(w, "  cluster %d: %v\n", c, counts[c])
	}
	return nil
}

// contrast prints the kernel functions that most distinguish two labels'
// mean signatures. Function names are resolved against the simulated
// kernel's symbol table.
func contrast(w io.Writer, sigs []fmeter.Signature, labelA, labelB string, topN int) error {
	mean := func(label string) (fmeter.Signature, error) {
		var acc fmeter.Vector
		n := 0
		for _, s := range sigs {
			if s.Label != label {
				continue
			}
			if acc == nil {
				acc = make(fmeter.Vector, s.Dim())
			}
			s.W.Axpy(1, acc)
			n++
		}
		if n == 0 {
			return fmeter.Signature{}, fmt.Errorf("no documents labeled %q", label)
		}
		acc.Scale(1 / float64(n))
		return fmeter.SignatureFromDense(label, label, acc), nil
	}
	a, err := mean(labelA)
	if err != nil {
		return err
	}
	b, err := mean(labelB)
	if err != nil {
		return err
	}
	sys, err := fmeter.New(fmeter.Config{Seed: 1})
	if err != nil {
		return err
	}
	names := sys.FunctionNames()
	if len(names) < a.Dim() {
		names = nil // foreign dimension; print indices only
	}
	terms, err := fmeter.Contrast(a, b, topN, names)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "kernel functions separating %q (positive) from %q (negative):\n", labelA, labelB)
	for _, t := range terms {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("term-%d", t.Term)
		}
		fmt.Fprintf(w, "  %-32s %+.5f\n", name, t.Weight)
	}
	return nil
}
