package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	fmeter "repro"
)

// writeLog collects n intervals of a workload and writes them as JSONL,
// optionally stripping labels.
func writeLog(t *testing.T, path string, spec fmeter.WorkloadSpec, n int, seed int64, stripLabel bool) {
	t.Helper()
	sys, err := fmeter.New(fmeter.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(spec, n, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stripLabel {
		for _, d := range docs {
			d.Label = ""
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fmeter.WriteDocuments(f, docs); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyMode(t *testing.T) {
	dir := t.TempDir()
	scp := filepath.Join(dir, "scp.jsonl")
	db := filepath.Join(dir, "dbench.jsonl")
	unk := filepath.Join(dir, "unknown.jsonl")
	writeLog(t, scp, fmeter.ScpWorkload(), 8, 1, false)
	writeLog(t, db, fmeter.DbenchWorkload(), 8, 2, false)
	writeLog(t, unk, fmeter.ScpWorkload(), 4, 3, true)

	var out, errBuf bytes.Buffer
	err := run([]string{"-mode", "classify", "-k", "3", "-in", scp + "," + db + "," + unk}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "classifying 4 unlabeled") {
		t.Errorf("header missing: %q", s)
	}
	// All four unknown scp intervals should classify as scp.
	if got := strings.Count(s, "-> scp"); got != 4 {
		t.Errorf("scp classifications = %d of 4:\n%s", got, s)
	}
}

// TestClassifySaveDB checks the -savedb flag: the labeled DB lands as a
// v2 snapshot directory via the facade's atomic save, and reopens with
// every labeled signature intact.
func TestClassifySaveDB(t *testing.T) {
	dir := t.TempDir()
	scp := filepath.Join(dir, "scp.jsonl")
	db := filepath.Join(dir, "dbench.jsonl")
	unk := filepath.Join(dir, "unknown.jsonl")
	writeLog(t, scp, fmeter.ScpWorkload(), 6, 1, false)
	writeLog(t, db, fmeter.DbenchWorkload(), 6, 2, false)
	writeLog(t, unk, fmeter.ScpWorkload(), 2, 3, true)

	store := filepath.Join(dir, "labeled.fmdbdir")
	var out, errBuf bytes.Buffer
	err := run([]string{"-mode", "classify", "-k", "3", "-in", scp + "," + db + "," + unk, "-savedb", store}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved to "+store) {
		t.Errorf("save confirmation missing: %q", out.String())
	}
	reopened, err := fmeter.OpenDB(store)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 12 { // the 12 labeled signatures, not the 2 unlabeled
		t.Errorf("reopened DB holds %d signatures, want 12", reopened.Len())
	}
}

func TestClusterMode(t *testing.T) {
	dir := t.TempDir()
	all := filepath.Join(dir, "all.jsonl")
	writeLog(t, all, fmeter.ScpWorkload(), 8, 4, false)
	second := filepath.Join(dir, "kc.jsonl")
	writeLog(t, second, fmeter.KcompileWorkload(), 8, 5, false)

	var out, errBuf bytes.Buffer
	err := run([]string{"-mode", "cluster", "-k", "2", "-in", all + "," + second}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "K-means K=2 over 16 signatures") {
		t.Errorf("cluster header missing: %q", s)
	}
	if !strings.Contains(s, "purity 1.000") && !strings.Contains(s, "purity 0.9") {
		t.Errorf("expected high purity: %q", s)
	}
}

func TestContrastMode(t *testing.T) {
	dir := t.TempDir()
	scp := filepath.Join(dir, "scp.jsonl")
	db := filepath.Join(dir, "dbench.jsonl")
	writeLog(t, scp, fmeter.ScpWorkload(), 6, 6, false)
	writeLog(t, db, fmeter.DbenchWorkload(), 6, 7, false)

	var out, errBuf bytes.Buffer
	err := run([]string{"-mode", "contrast", "-labels", "scp,dbench", "-top", "8", "-in", scp + "," + db}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `separating "scp"`) {
		t.Errorf("contrast header missing: %q", s)
	}
	// The crypto path should surface as an scp-positive discriminator.
	if !strings.Contains(s, "crypto") && !strings.Contains(s, "journal") && !strings.Contains(s, "ext3") {
		t.Errorf("expected recognizable discriminating functions:\n%s", s)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-mode", "classify"}, &out, &errBuf); err == nil {
		t.Error("missing -in should fail")
	}
	dir := t.TempDir()
	lbl := filepath.Join(dir, "l.jsonl")
	writeLog(t, lbl, fmeter.ScpWorkload(), 3, 8, false)
	if err := run([]string{"-mode", "classify", "-in", lbl}, &out, &errBuf); err == nil {
		t.Error("classify without unlabeled docs should fail")
	}
	if err := run([]string{"-mode", "bogus", "-in", lbl}, &out, &errBuf); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := run([]string{"-mode", "contrast", "-labels", "onlyone", "-in", lbl}, &out, &errBuf); err == nil {
		t.Error("contrast with one label should fail")
	}
	if err := run([]string{"-mode", "contrast", "-labels", "scp,ghost", "-in", lbl}, &out, &errBuf); err == nil {
		t.Error("contrast with unknown label should fail")
	}
	if err := run([]string{"-in", filepath.Join(dir, "missing.jsonl")}, &out, &errBuf); err == nil {
		t.Error("missing file should fail")
	}
}
