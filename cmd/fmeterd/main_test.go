package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	fmeter "repro"
)

func TestDaemonStreamsIntervals(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-workload", "dbench", "-intervals", "4", "-interval", "5s", "-status-every", "2",
	}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := fmeter.ReadDocuments(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 4 {
		t.Fatalf("docs = %d", len(docs))
	}
	status := errBuf.String()
	if strings.Count(status, "[fmeterd]") < 3 {
		t.Errorf("expected periodic status lines, got %q", status)
	}
	if !strings.Contains(status, "done: 4 intervals") {
		t.Errorf("final summary missing: %q", status)
	}
}

func TestDaemonAppendsToLogFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sig.jsonl")
	var out, errBuf bytes.Buffer
	for i := 0; i < 2; i++ {
		if err := run([]string{
			"-workload", "scp", "-intervals", "2", "-log", path, "-status-every", "0",
		}, &out, &errBuf); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	docs, err := fmeter.ReadDocuments(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 4 {
		t.Errorf("appended log has %d docs, want 4", len(docs))
	}
}

func TestDaemonNetperfDriverSelection(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-workload", "netperf", "-driver", "1.5.1-nolro", "-intervals", "1", "-status-every", "0",
	}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("no document logged")
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-intervals", "0"},
		{"-workload", "netperf", "-driver", "bogus"},
	} {
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestDaemonLiveDBStreaming(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-workload", "scp", "-intervals", "6", "-interval", "5s",
		"-db", dir, "-warmup", "2", "-save-every", "2", "-status-every", "0",
	}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	// Every interval, warmup and streamed alike, hits the JSONL log.
	docs, err := fmeter.ReadDocuments(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 6 {
		t.Fatalf("logged docs = %d, want 6", len(docs))
	}
	// The snapshot directory holds the full live DB: warmup + streamed.
	db, err := fmeter.OpenDB(dir)
	if err != nil {
		t.Fatalf("opening live DB snapshot: %v", err)
	}
	defer db.Close()
	if db.Len() != 6 {
		t.Fatalf("db.Len() = %d, want 6 (2 warmup + 4 streamed)", db.Len())
	}
	if !strings.Contains(errBuf.String(), "db "+dir) {
		t.Errorf("missing db summary line: %q", errBuf.String())
	}
}

func TestDaemonRejectsBadWarmup(t *testing.T) {
	var out, errBuf bytes.Buffer
	for _, args := range [][]string{
		{"-db", "x", "-intervals", "5", "-warmup", "1"},
		{"-db", "x", "-intervals", "5", "-warmup", "5"},
	} {
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

// TestDaemonServeAndBatchedIngest: -serve fronts the live DB with the
// HTTP layer while -ingest-batch streams intervals in chunks published
// by one AddAll each; the daemon must drain the server cleanly and the
// snapshot must hold every interval.
func TestDaemonServeAndBatchedIngest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-workload", "scp", "-intervals", "8", "-interval", "5s",
		"-db", dir, "-warmup", "2", "-status-every", "0",
		"-serve", "127.0.0.1:0", "-ingest-batch", "3",
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("%v\nstderr:\n%s", err, errBuf.String())
	}
	for _, want := range []string{"serving live DB on", "served ", "db " + dir} {
		if !strings.Contains(errBuf.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errBuf.String())
		}
	}
	db, err := fmeter.OpenDB(dir)
	if err != nil {
		t.Fatalf("opening live DB snapshot: %v", err)
	}
	defer db.Close()
	if db.Len() != 8 {
		t.Fatalf("db.Len() = %d, want 8 (2 warmup + 6 streamed)", db.Len())
	}
	if err := run([]string{"-serve", ":0", "-intervals", "4"}, &out, &errBuf); err == nil {
		t.Error("-serve without -db should fail")
	}
	if err := run([]string{"-ingest-batch", "0", "-intervals", "4"}, &out, &errBuf); err == nil {
		t.Error("-ingest-batch 0 should fail")
	}
}
