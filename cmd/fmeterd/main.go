// Command fmeterd is the long-running logging-daemon simulation: it
// collects signatures continuously over many intervals (the deployment
// mode §1 argues for — "signature generation can be turned on at
// production time for long continuous periods of time"), streaming each
// interval document to the log as soon as it is collected and printing a
// status line periodically.
//
// Usage:
//
//	fmeterd -workload dbench -intervals 360 -interval 10s -log run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	fmeter "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fmeterd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fmeterd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloadName = fs.String("workload", "dbench", "workload to monitor: scp|kcompile|dbench|apachebench|netperf")
		driverName   = fs.String("driver", "", "myri10ge variant when monitoring netperf")
		intervals    = fs.Int("intervals", 360, "number of monitoring intervals before exiting")
		interval     = fs.Duration("interval", 10*time.Second, "collection interval (virtual time)")
		seed         = fs.Int64("seed", 1, "random seed")
		logPath      = fs.String("log", "-", "JSONL signature log, - for stdout")
		statusEvery  = fs.Int("status-every", 30, "print a status line every N intervals (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *intervals < 1 {
		return fmt.Errorf("-intervals must be >= 1")
	}

	var spec fmeter.WorkloadSpec
	switch *workloadName {
	case "scp":
		spec = fmeter.ScpWorkload()
	case "kcompile":
		spec = fmeter.KcompileWorkload()
	case "dbench":
		spec = fmeter.DbenchWorkload()
	case "apachebench":
		spec = fmeter.ApachebenchWorkload()
	case "netperf":
		spec = fmeter.NetperfWorkload()
	default:
		return fmt.Errorf("unknown workload %q", *workloadName)
	}

	sys, err := fmeter.New(fmeter.Config{Seed: *seed})
	if err != nil {
		return err
	}
	if *workloadName == "netperf" {
		v := fmeter.Driver151
		switch *driverName {
		case "", "1.5.1":
		case "1.4.3":
			v = fmeter.Driver143
		case "1.5.1-nolro":
			v = fmeter.Driver151NoLRO
		default:
			return fmt.Errorf("unknown driver %q", *driverName)
		}
		if err := sys.LoadDriver(v); err != nil {
			return err
		}
	}

	out := stdout
	if *logPath != "-" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		out = f
	}

	start := time.Now()
	var totalCalls uint64
	// Collect one interval at a time so each document hits the log as
	// soon as it exists — the daemon's whole point is continuous,
	// crash-surviving logging (§1: post-mortem analysis).
	for i := 0; i < *intervals; i++ {
		docs, err := sys.Collect(spec, 1, *interval, out)
		if err != nil {
			return fmt.Errorf("interval %d: %w", i, err)
		}
		totalCalls += docs[0].Total()
		if *statusEvery > 0 && (i+1)%*statusEvery == 0 {
			fmt.Fprintf(stderr, "[fmeterd] %d/%d intervals, %d calls counted, wall %v\n",
				i+1, *intervals, totalCalls, time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Fprintf(stderr, "[fmeterd] done: %d intervals of %v (%s), %d kernel function calls\n",
		*intervals, *interval, spec.Name, totalCalls)
	return nil
}
