// Command fmeterd is the long-running logging-daemon simulation: it
// collects signatures continuously over many intervals (the deployment
// mode §1 argues for — "signature generation can be turned on at
// production time for long continuous periods of time"), streaming each
// interval document to the log as soon as it is collected and printing a
// status line periodically.
//
// Usage:
//
//	fmeterd -workload dbench -intervals 360 -interval 10s -log run.jsonl
//
// With -db the daemon additionally maintains a live signature database:
// the first -warmup intervals fit the tf-idf model, then every further
// interval is embedded and ingested into the DB while it stays fully
// queryable (the epoch-view concurrency contract), with periodic
// crash-safe snapshots to the -db directory:
//
//	fmeterd -workload dbench -intervals 360 -db /var/lib/fmeter/db -warmup 20 -save-every 60
//
// With -serve the live DB is additionally fronted by the HTTP/JSON
// serving layer (internal/serve) for the duration of the stream, and
// -ingest-batch N streams intervals in chunks of N so each chunk lands
// with a single RCU publish:
//
//	fmeterd -workload dbench -intervals 360 -db /var/lib/fmeter/db -serve :8080 -ingest-batch 8
//
// Transient debugfs read failures are retried with jittered backoff
// (-read-retries/-read-backoff) and an interval that stays unreadable is
// skipped with a counted warning instead of killing the daemon.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	fmeter "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fmeterd:", err)
		os.Exit(1)
	}
}

//fmeter:nondeterministic-ok daemon loop: interval timestamps and collection pacing are wall-clock by design
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fmeterd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloadName = fs.String("workload", "dbench", "workload to monitor: scp|kcompile|dbench|apachebench|netperf")
		driverName   = fs.String("driver", "", "myri10ge variant when monitoring netperf")
		intervals    = fs.Int("intervals", 360, "number of monitoring intervals before exiting")
		interval     = fs.Duration("interval", 10*time.Second, "collection interval (virtual time)")
		seed         = fs.Int64("seed", 1, "random seed")
		logPath      = fs.String("log", "-", "JSONL signature log, - for stdout")
		statusEvery  = fs.Int("status-every", 30, "print a status line every N intervals (0 disables)")
		dbDir        = fs.String("db", "", "maintain a live signature DB in this snapshot directory (ingests every post-warmup interval)")
		warmup       = fs.Int("warmup", 20, "with -db: intervals collected to fit the tf-idf model before live ingestion")
		saveEvery    = fs.Int("save-every", 60, "with -db: snapshot the DB every N ingested intervals (0 = only at exit)")
		readRetries  = fs.Int("read-retries", 3, "retries per failed debugfs counter read before skipping the interval")
		readBackoff  = fs.Duration("read-backoff", 10*time.Millisecond, "base backoff before a counter-read retry (jittered, doubles per attempt)")
		serveAddr    = fs.String("serve", "", "with -db: serve the live DB over HTTP/JSON on this address while streaming")
		ingestBatch  = fs.Int("ingest-batch", 1, "with -db: stream intervals in chunks of N, publishing each chunk with one AddAll")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *intervals < 1 {
		return fmt.Errorf("-intervals must be >= 1")
	}
	if *dbDir != "" && (*warmup < 2 || *warmup >= *intervals) {
		return fmt.Errorf("-warmup must be in [2, intervals) when -db is set, have %d of %d", *warmup, *intervals)
	}
	if *serveAddr != "" && *dbDir == "" {
		return fmt.Errorf("-serve requires -db (the server fronts the live DB)")
	}
	if *ingestBatch < 1 {
		return fmt.Errorf("-ingest-batch must be >= 1, have %d", *ingestBatch)
	}

	var spec fmeter.WorkloadSpec
	switch *workloadName {
	case "scp":
		spec = fmeter.ScpWorkload()
	case "kcompile":
		spec = fmeter.KcompileWorkload()
	case "dbench":
		spec = fmeter.DbenchWorkload()
	case "apachebench":
		spec = fmeter.ApachebenchWorkload()
	case "netperf":
		spec = fmeter.NetperfWorkload()
	default:
		return fmt.Errorf("unknown workload %q", *workloadName)
	}

	sys, err := fmeter.New(fmeter.Config{Seed: *seed})
	if err != nil {
		return err
	}
	if *workloadName == "netperf" {
		v := fmeter.Driver151
		switch *driverName {
		case "", "1.5.1":
		case "1.4.3":
			v = fmeter.Driver143
		case "1.5.1-nolro":
			v = fmeter.Driver151NoLRO
		default:
			return fmt.Errorf("unknown driver %q", *driverName)
		}
		if err := sys.LoadDriver(v); err != nil {
			return err
		}
	}

	out := stdout
	if *logPath != "-" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		out = f
	}

	sys.SetRetryPolicy(fmeter.RetryPolicy{Retries: *readRetries, Backoff: *readBackoff, Jitter: 0.5})
	sys.SetCollectorWarnf(func(format string, a ...any) {
		fmt.Fprintf(stderr, "[fmeterd] "+format+"\n", a...)
	})

	start := time.Now()
	var totalCalls uint64
	status := func(i int) {
		if *statusEvery > 0 && (i+1)%*statusEvery == 0 {
			fmt.Fprintf(stderr, "[fmeterd] %d/%d intervals, %d calls counted, wall %v\n",
				i+1, *intervals, totalCalls, time.Since(start).Round(time.Millisecond))
		}
	}

	// Collect one interval at a time so each document hits the log as
	// soon as it exists — the daemon's whole point is continuous,
	// crash-surviving logging (§1: post-mortem analysis).
	warm := *intervals
	if *dbDir != "" {
		warm = *warmup
	}
	var warmDocs []*fmeter.Document
	for i := 0; i < warm; i++ {
		docs, err := sys.Collect(spec, 1, *interval, out)
		if err != nil {
			return fmt.Errorf("interval %d: %w", i, err)
		}
		if len(docs) == 1 { // an unreadable interval is skipped, not fatal
			totalCalls += docs[0].Total()
			if *dbDir != "" {
				warmDocs = append(warmDocs, docs[0])
			}
		}
		status(i)
	}

	if *dbDir != "" {
		// Fit the vector space on the warmup corpus, seed the live DB with
		// it, then stream every further interval into the DB while it
		// remains queryable (and periodically snapshot it crash-safely).
		sigs, model, err := fmeter.BuildSignatures(warmDocs, sys.Dim())
		if err != nil {
			return fmt.Errorf("fitting warmup model: %w", err)
		}
		db, err := fmeter.NewDB(sys.Dim(), fmeter.WithShards(2))
		if err != nil {
			return err
		}
		defer db.Close()
		if err := db.AddAll(sigs); err != nil {
			return err
		}

		// With -serve, front the live DB with the HTTP serving layer
		// while the stream below keeps ingesting into it — queries ride
		// epoch-pinned views, so serving and ingestion never block each
		// other. The server owns the graceful drain (the deferred Close
		// above then finds an already-closed DB, which is harmless).
		var srv *fmeter.Server
		var httpSrv *http.Server
		var serveDone chan error
		if *serveAddr != "" {
			srv, err = fmeter.NewServer(db, model, fmeter.ServeConfig{
				SnapshotDir: *dbDir,
				Warnf: func(format string, a ...any) {
					fmt.Fprintf(stderr, "[fmeterd] "+format+"\n", a...)
				},
			})
			if err != nil {
				return err
			}
			ln, lerr := net.Listen("tcp", *serveAddr)
			if lerr != nil {
				return lerr
			}
			httpSrv = &http.Server{Handler: srv.Handler()}
			serveDone = make(chan error, 1)
			go func() { serveDone <- httpSrv.Serve(ln) }()
			fmt.Fprintf(stderr, "[fmeterd] serving live DB on %s\n", ln.Addr())
		}

		sys.SetIngestBatch(*ingestBatch)
		ingested := 0
		for i := warm; i < *intervals; {
			chunk := *ingestBatch
			if rem := *intervals - i; chunk > rem {
				chunk = rem
			}
			added, err := sys.CollectStream(spec, chunk, *interval, model, db, out)
			if err != nil {
				return fmt.Errorf("interval %d: %w", i, err)
			}
			ingested += added
			if *saveEvery > 0 && ingested > 0 && ingested/(*saveEvery) > (ingested-added)/(*saveEvery) {
				if err := fmeter.SaveDB(*dbDir, db); err != nil {
					return fmt.Errorf("snapshotting db: %w", err)
				}
			}
			i += chunk
			status(i - 1)
		}
		dbLen := db.Len()
		if srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := httpSrv.Shutdown(ctx); err != nil {
				fmt.Fprintf(stderr, "[fmeterd] http shutdown: %v\n", err)
			}
			<-serveDone
			m := srv.Metrics()
			fmt.Fprintf(stderr, "[fmeterd] served %d queries in %d batches (%d rejected)\n",
				m.Queries, m.Batches, m.Rejected)
			if err := srv.Shutdown(ctx); err != nil {
				cancel()
				return fmt.Errorf("server shutdown: %w", err)
			}
			cancel()
		} else if err := fmeter.SaveDB(*dbDir, db); err != nil {
			return fmt.Errorf("snapshotting db: %w", err)
		}
		fmt.Fprintf(stderr, "[fmeterd] db %s: %d signatures (%d warmup + %d streamed)\n",
			*dbDir, dbLen, len(sigs), ingested)
	}

	st := sys.CollectorStats()
	fmt.Fprintf(stderr, "[fmeterd] done: %d intervals of %v (%s), %d kernel function calls, %d read retries, %d intervals skipped\n",
		*intervals, *interval, spec.Name, totalCalls, st.Retries, st.SkippedIntervals)
	return nil
}
