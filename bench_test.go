package fmeter

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each benchmark
// executes one full experiment per iteration and reports the experiment's
// headline quantity as a custom metric, so a bench run doubles as a
// reproduction check:
//
//	BenchmarkFigure1Boot          — Fig 1  (power-law exponent)
//	BenchmarkTable1Lmbench        — Table 1 (avg Fmeter/Ftrace slowdowns)
//	BenchmarkTable2Apachebench    — Table 2 (throughput slowdowns)
//	BenchmarkTable3Kcompile       — Table 3 (sys-time slowdowns)
//	BenchmarkTable4SVMWorkloads   — Table 4 (mean accuracy)
//	BenchmarkTable5SVMDriver      — Table 5 (mean accuracy)
//	BenchmarkFigure4Dendrogram    — Fig 4  (perfect root split)
//	BenchmarkFigure5KmeansPurity  — Fig 5  (mean purity)
//	BenchmarkFigure6KmeansK       — Fig 6  (purity at max K)
//	BenchmarkAblation*            — A1-A4 of DESIGN.md
//
// The corpora are collected once and shared across iterations; collection
// itself is benchmarked separately (BenchmarkSignatureCollection).

import (
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// benchML sizes the learning experiments for the bench harness: paper
// protocol (10-/8-fold, full C grid) at a corpus size that keeps a full
// bench sweep in CPU-minutes. cmd/fmeter-bench runs the paper-scale 250.
func benchML() experiments.MLParams {
	p := experiments.DefaultMLParams()
	p.PerClass = 120
	return p
}

var (
	wlOnce sync.Once
	wlData *experiments.WorkloadData
	wlErr  error

	drvOnce sync.Once
	drvSet  *experiments.SignatureSet
	drvErr  error
)

func workloadData(b *testing.B) *experiments.WorkloadData {
	b.Helper()
	wlOnce.Do(func() {
		wlData, wlErr = experiments.CollectWorkloadData(benchML())
	})
	if wlErr != nil {
		b.Fatal(wlErr)
	}
	return wlData
}

func driverSet(b *testing.B) *experiments.SignatureSet {
	b.Helper()
	drvOnce.Do(func() {
		drvSet, drvErr = experiments.CollectDriverSignatures(benchML())
	})
	if drvErr != nil {
		b.Fatal(drvErr)
	}
	return drvSet
}

func BenchmarkFigure1Boot(b *testing.B) {
	b.ReportAllocs()
	var alpha float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		alpha = res.Fit.Alpha
	}
	b.ReportMetric(alpha, "powerlaw-alpha")
}

func BenchmarkTable1Lmbench(b *testing.B) {
	b.ReportAllocs()
	var fm, ft float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		fm, ft = res.AvgFmeterSlowdown, res.AvgFtraceSlowdown
	}
	b.ReportMetric(fm, "fmeter-slowdown")
	b.ReportMetric(ft, "ftrace-slowdown")
}

func BenchmarkTable2Apachebench(b *testing.B) {
	b.ReportAllocs()
	var fmSlow, ftSlow float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Config {
			case experiments.Fmeter:
				fmSlow = row.SlowdownPct
			case experiments.Ftrace:
				ftSlow = row.SlowdownPct
			}
		}
	}
	b.ReportMetric(fmSlow, "fmeter-slowdown-%")
	b.ReportMetric(ftSlow, "ftrace-slowdown-%")
}

func BenchmarkTable3Kcompile(b *testing.B) {
	b.ReportAllocs()
	var fm, ft float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		fm, ft = res.SysSlowdownFmeter, res.SysSlowdownFtrace
	}
	b.ReportMetric(100*fm, "fmeter-sys-slowdown-%")
	b.ReportMetric(100*ft, "ftrace-sys-slowdown-%")
}

func BenchmarkSignatureCollection(b *testing.B) {
	// The daemon's end-to-end cost: one 10-second interval of the scp
	// workload, counters read through debugfs before and after.
	sys, err := New(Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Collect(ScpWorkload(), 1, 10*time.Second, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4SVMWorkloads(b *testing.B) {
	data := workloadData(b)
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(data.Set, benchML())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range res.Rows {
			sum += row.CV.MeanAccuracy
		}
		acc = sum / float64(len(res.Rows))
	}
	b.ReportMetric(100*acc, "mean-accuracy-%")
}

func BenchmarkTable5SVMDriver(b *testing.B) {
	set := driverSet(b)
	p := benchML()
	p.Folds = 8 // the paper uses eight-fold cross validation here
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(set, p)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range res.Rows {
			sum += row.CV.MeanAccuracy
		}
		acc = sum / float64(len(res.Rows))
	}
	b.ReportMetric(100*acc, "mean-accuracy-%")
}

func BenchmarkFigure4Dendrogram(b *testing.B) {
	data := workloadData(b)
	b.ReportAllocs()
	b.ResetTimer()
	perfect := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(data.Set, "scp", "kcompile", int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if res.PerfectRootSplit {
			perfect = 1
		} else {
			perfect = 0
		}
	}
	b.ReportMetric(perfect, "perfect-root-split")
}

func BenchmarkFigure5KmeansPurity(b *testing.B) {
	data := workloadData(b)
	p := experiments.DefaultFig5Params()
	// Cap the per-class sample sizes at the bench corpus size.
	p.SampleSizes = []int{20, 60, 100}
	b.ReportAllocs()
	b.ResetTimer()
	var purity float64
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i) + 1
		res, err := experiments.RunFig5(data.Set, p)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var n int
		for _, s := range res.Series {
			for _, pt := range s.Points {
				sum += pt.Purity
				n++
			}
		}
		purity = sum / float64(n)
	}
	b.ReportMetric(purity, "mean-purity")
}

func BenchmarkFigure6KmeansK(b *testing.B) {
	data := workloadData(b)
	p := experiments.DefaultFig6Params()
	p.SampleSizes = []int{60, 100}
	b.ReportAllocs()
	b.ResetTimer()
	var lastPurity float64
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i) + 1
		res, err := experiments.RunFig6(data.Set, p)
		if err != nil {
			b.Fatal(err)
		}
		s := res.Series[len(res.Series)-1]
		lastPurity = s.Points[len(s.Points)-1].Purity
	}
	b.ReportMetric(lastPurity, "purity-at-K20")
}

func BenchmarkAblationCounterDesigns(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationCounters(int64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHotCache(b *testing.B) {
	b.ReportAllocs()
	var bestSpeedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationHotCache(int64(i)+1, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Speedup > bestSpeedup {
				bestSpeedup = row.Speedup
			}
		}
	}
	b.ReportMetric(bestSpeedup, "best-speedup")
}

func BenchmarkAblationWeighting(b *testing.B) {
	data := workloadData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationWeighting(data, benchML()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRingBuffer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationRings(200000, 1<<12, 1<<14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInterval(b *testing.B) {
	b.ReportAllocs()
	var transfer float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationInterval(40, 8, int64(i)+1, nil)
		if err != nil {
			b.Fatal(err)
		}
		transfer = res.TransferAccuracy
	}
	b.ReportMetric(100*transfer, "transfer-accuracy-%")
}
