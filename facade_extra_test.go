package fmeter

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTracerStrings(t *testing.T) {
	if TracerVanilla.String() != "vanilla" || TracerFtrace.String() != "ftrace" || TracerFmeter.String() != "fmeter" {
		t.Error("tracer names wrong")
	}
	if !strings.Contains(Tracer(42).String(), "42") {
		t.Error("unknown tracer should render its value")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	for _, spec := range []WorkloadSpec{
		ScpWorkload(), KcompileWorkload(), DbenchWorkload(),
		ApachebenchWorkload(), NetperfWorkload(), BootWorkload(),
	} {
		if spec.Name == "" || len(spec.Ops) == 0 {
			t.Errorf("constructor produced empty spec: %+v", spec)
		}
	}
}

func TestTimeAccessors(t *testing.T) {
	sys, err := New(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if sys.KernelTime() != 0 || sys.UserTime() != 0 {
		t.Error("fresh system should have zero clocks")
	}
	if _, err := sys.RunOp("simple_write", 1000); err != nil {
		t.Fatal(err)
	}
	if sys.KernelTime() <= 0 {
		t.Error("RunOp should advance the kernel clock")
	}
	if _, err := sys.RunOp("no_such_op", 1); err == nil {
		t.Error("unknown op should fail")
	}
}

func TestTopTermsAndContrastFacade(t *testing.T) {
	sys, err := New(Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	scpDocs, err := sys.Collect(ScpWorkload(), 6, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := New(Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dbDocs, err := sys2.Collect(DbenchWorkload(), 6, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs, _, err := BuildSignatures(append(scpDocs, dbDocs...), sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	names := sys.FunctionNames()

	top, err := TopTerms(sigs[0], 10, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("top terms = %d", len(top))
	}
	// An scp signature's dominant terms should include the crypto path.
	foundCrypto := false
	for _, tw := range top {
		if strings.Contains(tw.Name, "crypto") || strings.Contains(tw.Name, "sha1") {
			foundCrypto = true
		}
	}
	if !foundCrypto {
		t.Errorf("scp top terms lack crypto functions: %+v", top)
	}

	diff, err := Contrast(sigs[0], sigs[len(sigs)-1], 10, names)
	if err != nil {
		t.Fatal(err)
	}
	// scp-vs-dbench contrast should surface ext3/journal on the negative
	// side or crypto on the positive side.
	recognizable := false
	for _, tw := range diff {
		n := tw.Name
		if (strings.Contains(n, "crypto") && tw.Weight > 0) ||
			((strings.Contains(n, "ext3") || strings.Contains(n, "journal")) && tw.Weight < 0) {
			recognizable = true
		}
	}
	if !recognizable {
		t.Errorf("contrast lacks recognizable discriminators: %+v", diff)
	}
}

func TestModelPersistenceFacade(t *testing.T) {
	sys, err := New(Config{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(ScpWorkload(), 4, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs, model, err := BuildSignatures(docs, sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	var mBuf, sBuf bytes.Buffer
	if err := WriteModel(&mBuf, model); err != nil {
		t.Fatal(err)
	}
	if err := WriteSignatures(&sBuf, sigs); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadModel(&mBuf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Dim() != model.Dim() {
		t.Error("model round trip lost dimension")
	}
	s2, err := ReadSignatures(&sBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) != len(sigs) {
		t.Error("signature round trip lost entries")
	}
}

func TestMinkowskiMetricFacade(t *testing.T) {
	m := MinkowskiMetric(3)
	d, err := m.Score(Vector{0, 0}, Vector{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || m.HigherIsCloser {
		t.Errorf("minkowski metric misconfigured: %v %v", d, m.HigherIsCloser)
	}
}

// TestShardedDBFacade drives the sharded store through the facade:
// WithShards/WithWorkers construction, identical TopK across shard
// counts, and a snapshot round trip with re-sharding.
func TestShardedDBFacade(t *testing.T) {
	sys, err := New(Config{Seed: 5, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(ScpWorkload(), 12, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	more, err := sys.Collect(DbenchWorkload(), 12, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs, _, err := BuildSignatures(append(docs, more...), sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	query, rest := sigs[0], sigs[1:]

	single, err := NewDB(sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if single.Shards() != 1 {
		t.Fatalf("default shards = %d", single.Shards())
	}
	if err := single.AddAll(rest); err != nil {
		t.Fatal(err)
	}
	want, err := single.TopKSparse(query.W, 5, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}

	sharded, err := NewDB(sys.Dim(), WithShards(4), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() != 4 {
		t.Fatalf("shards = %d", sharded.Shards())
	}
	if err := sharded.AddAll(rest); err != nil {
		t.Fatal(err)
	}
	got, err := sharded.TopKSparse(query.W, 5, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Signature.DocID != want[i].Signature.DocID || got[i].Score != want[i].Score {
			t.Fatalf("hit %d differs across shard counts: (%s, %v) vs (%s, %v)",
				i, got[i].Signature.DocID, got[i].Score, want[i].Signature.DocID, want[i].Score)
		}
	}

	var snap bytes.Buffer
	if err := WriteDBSnapshot(&snap, sharded); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadDBSnapshot(&snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Shards() != 2 || restored.Len() != sharded.Len() {
		t.Fatalf("restored shards/len = %d/%d", restored.Shards(), restored.Len())
	}
	back, err := restored.TopKSparse(query.W, 5, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if back[i].Signature.DocID != want[i].Signature.DocID || back[i].Score != want[i].Score {
			t.Fatalf("hit %d differs after snapshot reload", i)
		}
	}
}

// TestBatchFacade drives the batched retrieval facade: TopKBatch and
// ClassifyBatch are bit-identical to their per-query counterparts, and
// WithIndex(false) forces the scan without changing any result.
func TestBatchFacade(t *testing.T) {
	sys, err := New(Config{Seed: 9, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(ScpWorkload(), 10, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	more, err := sys.Collect(DbenchWorkload(), 10, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs, _, err := BuildSignatures(append(docs, more...), sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	store, probes := sigs[4:], sigs[:4]
	queries := make([]*Sparse, len(probes))
	for i, s := range probes {
		queries[i] = s.W
	}

	indexed, err := NewDB(sys.Dim(), WithShards(3), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := NewDB(sys.Dim(), WithShards(3), WithIndex(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := indexed.AddAll(store); err != nil {
		t.Fatal(err)
	}
	if err := scanned.AddAll(store); err != nil {
		t.Fatal(err)
	}

	metric := EuclideanMetric()
	batch, err := TopKBatch(indexed, queries, 5, metric)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ClassifyBatch(indexed, queries, 5, metric)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		single, err := scanned.TopKSparse(q, 5, metric)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[qi]) != len(single) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(batch[qi]), len(single))
		}
		for i := range single {
			if batch[qi][i].Signature.DocID != single[i].Signature.DocID || batch[qi][i].Score != single[i].Score {
				t.Fatalf("query %d hit %d: indexed batch (%s, %v) vs scan (%s, %v)", qi, i,
					batch[qi][i].Signature.DocID, batch[qi][i].Score, single[i].Signature.DocID, single[i].Score)
			}
		}
		label, err := scanned.ClassifySparse(q, 5, metric)
		if err != nil {
			t.Fatal(err)
		}
		if labels[qi] != label {
			t.Fatalf("query %d: ClassifyBatch %q vs scan ClassifySparse %q", qi, labels[qi], label)
		}
	}
}

// TestScoreBatchMatchesMatches: the facade's batched scorer equals
// per-signature Matches at any worker count.
func TestScoreBatchMatchesMatches(t *testing.T) {
	sys, err := New(Config{Seed: 6, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(ScpWorkload(), 10, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	more, err := sys.Collect(KcompileWorkload(), 10, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs, _, err := BuildSignatures(append(docs, more...), sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainClassifier(sigs, "scp", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 0, 3} {
		scores := clf.ScoreBatch(sigs, WithWorkers(workers))
		for i, s := range sigs {
			_, want := clf.Matches(s)
			if scores[i] != want {
				t.Fatalf("workers=%d: score %d = %v, want %v", workers, i, scores[i], want)
			}
		}
	}
}

// TestSaveOpenDBFacade drives the path-based persistence facade: SaveDB
// writes the v2 snapshot directory, OpenDB loads both that and a v1
// single-file snapshot, repeated saves are incremental, and a corrupted
// segment surfaces the typed *SnapshotError naming the file.
func TestSaveOpenDBFacade(t *testing.T) {
	sys, err := New(Config{Seed: 11, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(ScpWorkload(), 10, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs, _, err := BuildSignatures(docs, sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	query, rest := sigs[0], sigs[1:]
	db, err := NewDB(sys.Dim(), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	db.SetSegmentSize(4)
	if err := db.AddAll(rest); err != nil {
		t.Fatal(err)
	}
	db.Seal()
	want, err := db.TopKSparse(query.W, 3, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "store")
	if err := SaveDB(dir, db); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.TopKSparse(query.W, 3, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Signature.DocID != want[i].Signature.DocID || got[i].Score != want[i].Score {
			t.Fatalf("hit %d differs after SaveDB/OpenDB", i)
		}
	}
	// Incremental: a reloaded store re-saves without dirty segments.
	if n := back.DirtySegments(); n != 0 {
		t.Fatalf("freshly opened store has %d dirty segments", n)
	}
	if err := SaveDB(dir, back); err != nil {
		t.Fatal(err)
	}

	// WithMapped serves the directory's postings off file mappings —
	// same hits, blob bytes off-heap, and Close retires the store.
	mdb, err := OpenDB(dir, WithMapped(true))
	if err != nil {
		t.Fatal(err)
	}
	if mdb.MappedBytes() <= 0 {
		t.Fatalf("mapped open reports %d mapped bytes", mdb.MappedBytes())
	}
	gotM, err := mdb.TopKSparse(query.W, 3, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if gotM[i].Signature.DocID != want[i].Signature.DocID || gotM[i].Score != want[i].Score {
			t.Fatalf("mapped hit %d differs from resident", i)
		}
	}
	if err := mdb.Close(); err != nil {
		t.Fatal(err)
	}
	var cfgErr *ConfigError
	if _, err := mdb.TopKSparse(query.W, 3, EuclideanMetric()); !errors.As(err, &cfgErr) {
		t.Fatalf("query after Close = %v, want *ConfigError", err)
	}

	// OpenDB also reads single-file v1 snapshots.
	v1 := filepath.Join(t.TempDir(), "store.fmdb")
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDBSnapshot(f, db); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fromV1, err := OpenDB(v1)
	if err != nil {
		t.Fatal(err)
	}
	if fromV1.Len() != db.Len() {
		t.Fatalf("v1 OpenDB len = %d, want %d", fromV1.Len(), db.Len())
	}

	// Corruption is typed and names the file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segFile string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			segFile = e.Name()
			break
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, segFile))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x04
	if err := os.WriteFile(filepath.Join(dir, segFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDB(dir)
	var snapErr *SnapshotError
	if !errors.As(err, &snapErr) {
		t.Fatalf("corrupt segment error = %v, want *SnapshotError", err)
	}
	if filepath.Base(snapErr.Path) != segFile {
		t.Fatalf("error names %s, want %s", snapErr.Path, segFile)
	}
}

func TestSegmentSizeAndSealFacade(t *testing.T) {
	sys, err := New(Config{Seed: 7, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(ScpWorkload(), 14, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs, _, err := BuildSignatures(docs, sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	query, rest := sigs[0], sigs[1:]

	db, err := NewDB(sys.Dim(), WithSegmentSize(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.SegmentSize(); got != 4 {
		t.Fatalf("SegmentSize = %d, want 4", got)
	}
	if err := db.AddAll(rest); err != nil {
		t.Fatal(err)
	}
	want, err := db.TopKSparse(query.W, 5, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	// Sealing compresses the remaining active segments: the resident
	// index shrinks, queries are unchanged, and a save/open round trip
	// persists the compressed form.
	flatBytes := db.IndexBytes()
	db.Seal()
	if got := db.IndexBytes(); got >= flatBytes {
		t.Fatalf("IndexBytes after Seal = %d, want < %d", got, flatBytes)
	}
	got, err := db.TopKSparse(query.W, 5, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sealed TopK returned %d hits, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Score != want[i].Score || got[i].Signature.DocID != want[i].Signature.DocID {
			t.Fatalf("sealed TopK[%d] = (%s, %v), want (%s, %v)",
				i, got[i].Signature.DocID, got[i].Score, want[i].Signature.DocID, want[i].Score)
		}
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := SaveDB(dir, db); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := back.TopKSparse(query.W, 5, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	for i := range reloaded {
		if reloaded[i].Score != want[i].Score || reloaded[i].Signature.DocID != want[i].Signature.DocID {
			t.Fatalf("reloaded TopK[%d] differs from the pre-seal results", i)
		}
	}
}

// TestPruningFacade wires the new retrieval knobs through the facade:
// WithPruning/WithPruneTheta/WithCompactionPolicy reach the DB, pruned
// results stay bit-identical to the forced scan, the pruning counters
// are visible, and a bad tier fan-out surfaces as a typed ConfigError.
func TestPruningFacade(t *testing.T) {
	sys, err := New(Config{Seed: 17, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := sys.Collect(ScpWorkload(), 30, 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs, _, err := BuildSignatures(docs, sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	query, rest := sigs[0], sigs[1:]

	pruned, err := NewDB(sys.Dim(), WithShards(2), WithSegmentSize(8),
		WithPruning(true), WithCompactionPolicy(2))
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Pruned() {
		t.Fatal("WithPruning(true) did not stick")
	}
	if pruned.CompactionPolicy().TierFanout != 2 {
		t.Fatalf("tier fan-out = %d, want 2", pruned.CompactionPolicy().TierFanout)
	}
	scan, err := NewDB(sys.Dim(), WithPruning(false), WithIndex(false))
	if err != nil {
		t.Fatal(err)
	}
	if scan.Pruned() {
		t.Fatal("WithPruning(false) did not stick")
	}
	if err := pruned.AddAll(rest); err != nil {
		t.Fatal(err)
	}
	pruned.Seal()
	if err := scan.AddAll(rest); err != nil {
		t.Fatal(err)
	}
	got, st, err := pruned.TopKSparseStats(query.W, 5, CosineMetric())
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments == 0 {
		t.Fatalf("stats saw no segments: %+v", st)
	}
	want, err := scan.TopKSparse(query.W, 5, CosineMetric())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Signature.DocID != want[i].Signature.DocID || got[i].Score != want[i].Score {
			t.Fatalf("pruned hit %d = (%s, %v), scan says (%s, %v)",
				i, got[i].Signature.DocID, got[i].Score, want[i].Signature.DocID, want[i].Score)
		}
	}

	approx, err := NewDB(sys.Dim(), WithPruneTheta(0.75))
	if err != nil {
		t.Fatal(err)
	}
	if got := approx.PruneTheta(); got != 0.75 {
		t.Fatalf("PruneTheta = %v, want 0.75", got)
	}

	var ce *ConfigError
	if _, err := NewDB(sys.Dim(), WithCompactionPolicy(1)); !errors.As(err, &ce) {
		t.Fatalf("WithCompactionPolicy(1) = %v, want ConfigError", err)
	}
}

func TestCollectStreamFacade(t *testing.T) {
	sys, err := New(Config{Seed: 71, NumCPU: 8})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sys.Collect(DbenchWorkload(), 5, 5*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs, model, err := BuildSignatures(warm, sys.Dim())
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(sys.Dim(), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	sys.SetRetryPolicy(RetryPolicy{Retries: 2, Backoff: time.Millisecond, Jitter: 0.5})
	var log bytes.Buffer
	added, err := sys.CollectStream(DbenchWorkload(), 3, 5*time.Second, model, db, &log)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 {
		t.Fatalf("added = %d, want 3", added)
	}
	if db.Len() != len(sigs)+3 {
		t.Fatalf("db.Len() = %d, want %d", db.Len(), len(sigs)+3)
	}
	docs, err := ReadDocuments(&log)
	if err != nil || len(docs) != 3 {
		t.Fatalf("stream log holds %d docs (%v), want 3", len(docs), err)
	}
	if st := sys.CollectorStats(); st.Retries != 0 || st.SkippedIntervals != 0 {
		t.Fatalf("clean stream reported degradation: %+v", st)
	}
	// Vanilla tracer has no collector: streaming fails cleanly and the
	// policy/stat helpers are no-ops.
	vsys, err := New(Config{Seed: 1, Tracer: TracerVanilla})
	if err != nil {
		t.Fatal(err)
	}
	vsys.SetRetryPolicy(RetryPolicy{})
	vsys.SetCollectorWarnf(nil)
	if _, err := vsys.CollectStream(ScpWorkload(), 1, time.Second, model, db, nil); err == nil {
		t.Fatal("CollectStream without the Fmeter tracer should fail")
	}
	if st := vsys.CollectorStats(); st != (CollectorStats{}) {
		t.Fatalf("vanilla stats = %+v", st)
	}
}
