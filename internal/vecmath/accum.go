package vecmath

// Accumulator is the score-accumulation scratch of inverted-index
// retrieval: a dense per-candidate sum array with epoch-stamped lazy
// clearing, so resetting between queries costs O(1) instead of O(n).
// A candidate's sum is valid only when its stamp matches the current
// epoch; untouched candidates read as an exact zero.
//
// The kernel contract that makes indexed retrieval bit-identical to a
// merge-walk Dot: callers feed posting lists in ascending dimension
// order, so each candidate's partial sums accumulate over its support
// intersection in ascending index order — exactly the order Sparse.Dot
// visits the same terms.
//
// An Accumulator is not safe for concurrent use; each worker owns one.
type Accumulator struct {
	acc   []float64
	stamp []uint32
	epoch uint32
}

// Reset prepares the accumulator for n candidates. Amortized O(1): the
// backing arrays are reused and only the epoch advances; clearing work
// happens when the arrays grow or the 32-bit epoch wraps.
func (a *Accumulator) Reset(n int) {
	if cap(a.acc) < n {
		a.acc = make([]float64, n)
		a.stamp = make([]uint32, n)
		a.epoch = 0
	}
	a.acc = a.acc[:n]
	a.stamp = a.stamp[:n]
	a.epoch++
	if a.epoch == 0 {
		// The epoch wrapped: stale stamps from 2^32 queries ago could
		// alias the fresh epoch, so clear them all once — the full
		// capacity, not just [:n], or a later regrowth within capacity
		// would re-expose pre-wrap stamps.
		full := a.stamp[:cap(a.stamp)]
		for i := range full {
			full[i] = 0
		}
		a.epoch = 1
	}
}

// ScatterMulAdd accumulates q*ws[k] into candidate ids[k] for every
// posting — acc[ids[k]] += q*ws[k] — stamping first-touched candidates
// into the current epoch. This is the posting-list kernel: one call per
// query dimension, with ids the candidates whose support contains that
// dimension and ws their stored weights there.
func (a *Accumulator) ScatterMulAdd(q float64, ids []int32, ws []float64) {
	if len(ids) != len(ws) {
		panic("vecmath: posting id/weight lengths differ")
	}
	for k, id := range ids {
		if a.stamp[id] != a.epoch {
			a.stamp[id] = a.epoch
			a.acc[id] = q * ws[k]
		} else {
			a.acc[id] += q * ws[k]
		}
	}
}

// Get returns candidate id's accumulated sum, an exact zero when the
// candidate was not touched since the last Reset.
func (a *Accumulator) Get(id int) float64 {
	if a.stamp[id] != a.epoch {
		return 0
	}
	return a.acc[id]
}

// Len returns the candidate count of the last Reset.
func (a *Accumulator) Len() int { return len(a.acc) }
