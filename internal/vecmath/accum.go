package vecmath

// Accumulator is the score-accumulation scratch of inverted-index
// retrieval: a dense per-candidate sum array, reset between queries
// either by a bulk clear (small candidate counts — segments are capped
// at the segment size, so this is the common mode) or by epoch-stamped
// lazy clearing (large counts, where an O(n) clear would dominate a
// sparse walk). Untouched candidates read as an exact zero in both
// modes.
//
// The kernel contract that makes indexed retrieval bit-identical to a
// merge-walk Dot: callers feed posting lists in ascending dimension
// order, so each candidate's partial sums accumulate over its support
// intersection in ascending index order — exactly the order Sparse.Dot
// visits the same terms. (The two reset modes agree to the bit for
// every product except an exact -0.0, where the cleared mode's 0 + -0.0
// yields +0.0; distances and similarities compare equal either way.)
//
// An Accumulator is not safe for concurrent use; each worker owns one.
type Accumulator struct {
	acc   []float64
	stamp []uint32
	epoch uint32
	dense bool
}

// denseResetMax bounds the bulk-clear mode: up to this many candidates
// the reset is a memclr (at most 32 KiB, cheaper than per-posting stamp
// maintenance for any non-trivial walk). The default segment size keeps
// every segmented store at or below it.
const denseResetMax = 4096

// Reset prepares the accumulator for n candidates. Small counts clear
// the sums outright; larger ones switch to epoch stamping, where only
// the epoch advances and clearing work happens when the arrays grow or
// the 32-bit epoch wraps.
func (a *Accumulator) Reset(n int) {
	if cap(a.acc) < n {
		a.acc = make([]float64, n)
		a.stamp = make([]uint32, n)
		a.epoch = 0
	}
	a.acc = a.acc[:n]
	a.dense = n <= denseResetMax
	if a.dense {
		clear(a.acc)
		return
	}
	a.stamp = a.stamp[:n]
	a.epoch++
	if a.epoch == 0 {
		// The epoch wrapped: stale stamps from 2^32 queries ago could
		// alias the fresh epoch, so clear them all once — the full
		// capacity, not just [:n], or a later regrowth within capacity
		// would re-expose pre-wrap stamps.
		full := a.stamp[:cap(a.stamp)]
		for i := range full {
			full[i] = 0
		}
		a.epoch = 1
	}
}

// Sums exposes the dense sum array when the accumulator is in
// bulk-clear mode (nil in stamped mode): fused posting kernels add into
// it directly, which is exactly what Add would do without the per-call
// mode dispatch.
func (a *Accumulator) Sums() []float64 {
	if a.dense {
		return a.acc
	}
	return nil
}

// Add accumulates x into candidate id — the fused single-posting kernel
// for callers that decode postings on the fly.
func (a *Accumulator) Add(id int32, x float64) {
	if a.dense {
		a.acc[id] += x
		return
	}
	if a.stamp[id] != a.epoch {
		a.stamp[id] = a.epoch
		a.acc[id] = x
	} else {
		a.acc[id] += x
	}
}

// ScatterMulAdd accumulates q*ws[k] into candidate ids[k] for every
// posting — acc[ids[k]] += q*ws[k]. This is the posting-list kernel:
// one call per query dimension, with ids the candidates whose support
// contains that dimension and ws their stored weights there.
func (a *Accumulator) ScatterMulAdd(q float64, ids []int32, ws []float64) {
	if len(ids) != len(ws) {
		panic("vecmath: posting id/weight lengths differ")
	}
	if a.dense {
		acc := a.acc
		for k, id := range ids {
			acc[id] += q * ws[k]
		}
		return
	}
	for k, id := range ids {
		if a.stamp[id] != a.epoch {
			a.stamp[id] = a.epoch
			a.acc[id] = q * ws[k]
		} else {
			a.acc[id] += q * ws[k]
		}
	}
}

// Get returns candidate id's accumulated sum, an exact zero when the
// candidate was not touched since the last Reset.
func (a *Accumulator) Get(id int) float64 {
	if a.dense {
		return a.acc[id]
	}
	if a.stamp[id] != a.epoch {
		return 0
	}
	return a.acc[id]
}

// Len returns the candidate count of the last Reset.
func (a *Accumulator) Len() int { return len(a.acc) }
