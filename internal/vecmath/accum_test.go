package vecmath

import (
	"math/rand"
	"testing"
)

// TestAccumulatorMatchesSparseDot drives the posting-kernel contract:
// feeding a query's support in ascending dimension order through
// ScatterMulAdd must reproduce Sparse.Dot bit-for-bit for every stored
// vector.
func TestAccumulatorMatchesSparseDot(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const dim, n = 200, 40
	vecs := make([]*Sparse, n)
	for i := range vecs {
		v := NewVector(dim)
		for j := 0; j < 30; j++ {
			v[r.Intn(dim)] = r.NormFloat64()
		}
		vecs[i] = DenseToSparse(v)
	}
	// Build posting lists per dimension, ids ascending by construction.
	ids := make([][]int32, dim)
	ws := make([][]float64, dim)
	for i, v := range vecs {
		v.ForEach(func(d int, x float64) {
			ids[d] = append(ids[d], int32(i))
			ws[d] = append(ws[d], x)
		})
	}
	var acc Accumulator
	for q := 0; q < 10; q++ {
		qv := NewVector(dim)
		for j := 0; j < 25; j++ {
			qv[r.Intn(dim)] = r.NormFloat64()
		}
		query := DenseToSparse(qv)
		acc.Reset(n)
		qi, qx := query.Support(), query.Values()
		for k := range qi {
			acc.ScatterMulAdd(qx[k], ids[qi[k]], ws[qi[k]])
		}
		for i, v := range vecs {
			if got, want := acc.Get(i), query.Dot(v); got != want {
				t.Fatalf("query %d vec %d: accumulated dot %v, Sparse.Dot %v", q, i, got, want)
			}
		}
	}
}

// TestAccumulatorReset checks the lazy-clear semantics: values from a
// previous epoch read as exact zero, shrink and regrow keep the
// invariant, and Len follows Reset.
func TestAccumulatorReset(t *testing.T) {
	var a Accumulator
	a.Reset(4)
	a.ScatterMulAdd(2, []int32{1, 3}, []float64{5, 7})
	if a.Get(1) != 10 || a.Get(3) != 14 || a.Get(0) != 0 {
		t.Fatalf("after scatter: %v %v %v", a.Get(1), a.Get(3), a.Get(0))
	}
	a.Reset(4)
	for i := 0; i < 4; i++ {
		if a.Get(i) != 0 {
			t.Fatalf("stale value at %d after Reset: %v", i, a.Get(i))
		}
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	a.Reset(2)
	if a.Len() != 2 {
		t.Fatalf("Len after shrink = %d", a.Len())
	}
	a.Reset(8) // grow reallocates and restarts epochs
	for i := 0; i < 8; i++ {
		if a.Get(i) != 0 {
			t.Fatalf("stale value at %d after grow: %v", i, a.Get(i))
		}
	}
}

// TestAccumulatorEpochWrap forces the 32-bit epoch to wrap and checks
// that stale stamps cannot alias the fresh epoch — including stamps
// parked in the capacity tail by a shrink, which a later regrow within
// capacity re-exposes. Counts above denseResetMax pin the stamped mode
// (small counts bulk-clear and never touch epochs).
func TestAccumulatorEpochWrap(t *testing.T) {
	const n = denseResetMax + 4
	var a Accumulator
	a.Reset(n)
	a.Reset(n) // epoch 2
	a.ScatterMulAdd(1, []int32{0, n - 1}, []float64{42, 7})
	a.Reset(n - 2)       // shrink: the tail's epoch-2 stamp stays parked
	a.epoch = ^uint32(0) // jump to the wrap point
	a.stamp[1] = 0       // will collide with the post-wrap epoch unless cleared
	a.Reset(n - 2)       // wraps: must clear the full capacity, not just the prefix
	if a.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", a.epoch)
	}
	if a.Get(0) != 0 || a.Get(1) != 0 {
		t.Fatalf("stale values after epoch wrap: %v %v", a.Get(0), a.Get(1))
	}
	a.Reset(n) // regrow within capacity: post-wrap epoch 2 again
	if a.Get(n-1) != 0 {
		t.Fatalf("pre-wrap tail stamp aliased the fresh epoch: Get(%d) = %v", n-1, a.Get(n-1))
	}
}

// TestAccumulatorModesAgree drives the same posting stream through a
// bulk-cleared (small) and an epoch-stamped (large) accumulator and
// checks the sums agree exactly, including transitions between the two
// modes on one accumulator across resets.
func TestAccumulatorModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const n = 64
	var small, big, mixed Accumulator
	big.Reset(denseResetMax + n) // force stamped mode once so mixed can flip
	for round := 0; round < 6; round++ {
		small.Reset(n)
		big.Reset(denseResetMax + n)
		if round%2 == 0 {
			mixed.Reset(n)
		} else {
			mixed.Reset(denseResetMax + n)
		}
		if small.dense == big.dense {
			t.Fatalf("modes did not diverge: small %v big %v", small.dense, big.dense)
		}
		for c := 0; c < 50; c++ {
			id := int32(r.Intn(n))
			x := r.NormFloat64()
			if c%2 == 0 {
				small.Add(id, x)
				big.Add(id, x)
				mixed.Add(id, x)
			} else {
				ids := []int32{id}
				ws := []float64{x}
				small.ScatterMulAdd(1, ids, ws)
				big.ScatterMulAdd(1, ids, ws)
				mixed.ScatterMulAdd(1, ids, ws)
			}
		}
		for i := 0; i < n; i++ {
			if small.Get(i) != big.Get(i) || small.Get(i) != mixed.Get(i) {
				t.Fatalf("round %d id %d: dense %v stamped %v mixed %v", round, i, small.Get(i), big.Get(i), mixed.Get(i))
			}
		}
	}
}

// TestAccumulatorMismatchedPostingsPanics pins the parallel-array guard.
func TestAccumulatorMismatchedPostingsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched posting lengths should panic")
		}
	}()
	var a Accumulator
	a.Reset(1)
	a.ScatterMulAdd(1, []int32{0}, []float64{1, 2})
}
