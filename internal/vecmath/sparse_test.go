package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// randSparseDense builds a dense vector of dimension dim with ~nnz
// non-zeros at random positions.
func randSparseDense(r *rand.Rand, dim, nnz int) Vector {
	v := NewVector(dim)
	for j := 0; j < nnz; j++ {
		v[r.Intn(dim)] = r.NormFloat64()
	}
	return v
}

func TestDenseToSparseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v := randSparseDense(r, 500, 40)
	s := DenseToSparse(v)
	if s.Dim() != 500 {
		t.Fatalf("dim = %d", s.Dim())
	}
	back := s.Dense()
	if !v.Equal(back, 0) {
		t.Fatal("round trip changed the vector")
	}
	nnz := 0
	for i, x := range v {
		if x != 0 {
			nnz++
		}
		if s.Get(i) != x {
			t.Fatalf("Get(%d) = %v, want %v", i, s.Get(i), x)
		}
	}
	if s.NNZ() != nnz {
		t.Fatalf("NNZ = %d, want %d", s.NNZ(), nnz)
	}
}

func TestMapToSparse(t *testing.T) {
	m := NewSparse()
	m.Set(3, 1.5)
	m.Set(7, -2)
	s, err := MapToSparse(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 2 || s.Get(3) != 1.5 || s.Get(7) != -2 {
		t.Fatalf("MapToSparse wrong: %+v", s)
	}
	m.Set(99, 1)
	if _, err := MapToSparse(m, 10); err == nil {
		t.Error("out-of-range support should fail")
	}
}

// The bit-identity contract the SVM gram build and DB cosine path rely on.
func TestSparseDotBitIdenticalToDense(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		x := randSparseDense(r, 700, 60)
		y := randSparseDense(r, 700, 60)
		sx, sy := DenseToSparse(x), DenseToSparse(y)
		if got, want := sx.Dot(sy), x.MustDot(y); got != want {
			t.Fatalf("trial %d: sparse dot %v != dense dot %v", trial, got, want)
		}
		if got, want := sx.DotDense(y), x.MustDot(y); got != want {
			t.Fatalf("trial %d: DotDense %v != dense dot %v", trial, got, want)
		}
		wantCos, err := Cosine(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := sx.Cosine(sy); got != wantCos {
			t.Fatalf("trial %d: sparse cosine %v != dense %v", trial, got, wantCos)
		}
		if got, want := sx.Norm2(), Norm2Of(x); got != want {
			t.Fatalf("trial %d: cached norm2 %v != %v", trial, got, want)
		}
	}
}

func TestSparseSquaredDistanceApproximatesDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		x := randSparseDense(r, 400, 30)
		y := randSparseDense(r, 400, 30)
		sx, sy := DenseToSparse(x), DenseToSparse(y)
		want, err := SquaredEuclidean(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := sx.SquaredDistance(sy); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: sparse d2 %v vs dense %v", trial, got, want)
		}
		if got := sx.SquaredDistanceDense(y, Norm2Of(y)); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: sparse-dense d2 %v vs dense %v", trial, got, want)
		}
		if got, want := sx.Euclidean(sy), MustEuclidean(x, y); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: sparse euclid %v vs dense %v", trial, got, want)
		}
	}
	// Identical vectors: clamped exactly to zero.
	v := randSparseDense(r, 100, 10)
	if d := DenseToSparse(v).SquaredDistance(DenseToSparse(v)); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

func TestSparseZeroVector(t *testing.T) {
	z := DenseToSparse(NewVector(10))
	if z.NNZ() != 0 || z.Norm2() != 0 || z.L2() != 0 {
		t.Error("zero vector sparse form wrong")
	}
	v := DenseToSparse(Vector{1, 0, 2, 0, 0, 0, 0, 0, 0, 0})
	if z.Dot(v) != 0 || z.Cosine(v) != 0 {
		t.Error("zero-vector products should be 0")
	}
}

func TestSparseDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot dimension mismatch should panic")
		}
	}()
	DenseToSparse(Vector{1}).Dot(DenseToSparse(Vector{1, 2}))
}

// BenchmarkVecmathSparseVsDense measures the O(nnz) vs O(dim) gap at the
// paper's scale: 3815-dim signatures with ~150 active kernel functions.
func BenchmarkVecmathSparseVsDense(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const dim, nnz = 3815, 150
	x := randSparseDense(r, dim, nnz)
	y := randSparseDense(r, dim, nnz)
	sx, sy := DenseToSparse(x), DenseToSparse(y)
	b.Run("dense-dot", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += x.MustDot(y)
		}
		_ = s
	})
	b.Run("sparse-dot", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += sx.Dot(sy)
		}
		_ = s
	})
	b.Run("dense-sqeuclidean", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			d, _ := SquaredEuclidean(x, y)
			s += d
		}
		_ = s
	})
	b.Run("sparse-sqeuclidean", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += sx.SquaredDistance(sy)
		}
		_ = s
	})
}

func TestSparseFromSorted(t *testing.T) {
	s, err := SparseFromSorted(10, []int32{1, 4, 9}, []float64{0.5, -2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 3 || s.Dim() != 10 {
		t.Fatalf("nnz=%d dim=%d", s.NNZ(), s.Dim())
	}
	want := DenseToSparse(s.Dense())
	if s.Norm2() != want.Norm2() {
		t.Errorf("norm2 = %v, want %v", s.Norm2(), want.Norm2())
	}
	for _, bad := range []struct {
		idx []int32
		val []float64
	}{
		{[]int32{1}, []float64{1, 2}},     // length mismatch
		{[]int32{4, 1}, []float64{1, 2}},  // not ascending
		{[]int32{1, 1}, []float64{1, 2}},  // duplicate
		{[]int32{1, 10}, []float64{1, 2}}, // out of range
		{[]int32{-1}, []float64{1}},       // negative
		{[]int32{3}, []float64{0}},        // explicit zero
	} {
		if _, err := SparseFromSorted(10, bad.idx, bad.val); err == nil {
			t.Errorf("SparseFromSorted(%v, %v) should fail", bad.idx, bad.val)
		}
	}
	empty, err := SparseFromSorted(5, nil, nil)
	if err != nil || empty.NNZ() != 0 || empty.Dim() != 5 {
		t.Fatalf("empty sparse: %v %d %d", err, empty.NNZ(), empty.Dim())
	}
}

// TestSparseScaleNormalizeMatchDense: mutating ops must leave the vector
// indistinguishable from extracting the equivalently mutated dense form,
// cached norm included.
func TestSparseScaleNormalizeMatchDense(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		v := randSparseDense(r, 300, 40)
		s := DenseToSparse(v).Scale(2.5)
		w := v.Clone().Scale(2.5)
		ref := DenseToSparse(w)
		if !s.Dense().Equal(w, 0) || s.Norm2() != ref.Norm2() {
			t.Fatal("Scale diverges from dense")
		}
		n := DenseToSparse(v).Normalize()
		dn := v.Clone().Normalize()
		refN := DenseToSparse(dn)
		if !n.Dense().Equal(dn, 0) || n.Norm2() != refN.Norm2() {
			t.Fatal("Normalize diverges from dense")
		}
	}
	zero := DenseToSparse(NewVector(5))
	if zero.Normalize().NNZ() != 0 {
		t.Error("zero vector should survive Normalize unchanged")
	}
}

func TestSparseAxpyMatchesDenseAdd(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		v := randSparseDense(r, 200, 30)
		dst := randSparseDense(r, 200, 30)
		want := dst.Clone()
		for i := range want {
			want[i] += 1.5 * v[i]
		}
		DenseToSparse(v).Axpy(1.5, dst)
		if !dst.Equal(want, 0) {
			t.Fatal("Axpy diverges from dense accumulate")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	DenseToSparse(NewVector(3)).Axpy(1, NewVector(4))
}

// TestSparseMinkowskiBitIdenticalToDense: the support-union merge must
// reproduce the dense loop exactly for every p, including the branches
// (1, 2, general, +Inf).
func TestSparseMinkowskiBitIdenticalToDense(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, p := range []float64{1, 2, 2.5, 3, math.Inf(1)} {
		for trial := 0; trial < 30; trial++ {
			x := randSparseDense(r, 400, 50)
			y := randSparseDense(r, 400, 50)
			sx, sy := DenseToSparse(x), DenseToSparse(y)
			want, err := Minkowski(x, y, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sx.Minkowski(sy, p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("p=%v: sparse %v != dense %v", p, got, want)
			}
		}
	}
	a := DenseToSparse(Vector{1, 0})
	b := DenseToSparse(Vector{0, 1})
	if _, err := a.Minkowski(b, 0.5); err == nil {
		t.Error("p<1 should fail")
	}
	if _, err := a.Minkowski(DenseToSparse(Vector{1}), 2); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestSparseCloneAndForEach(t *testing.T) {
	s, err := SparseFromSorted(6, []int32{0, 3, 5}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone().Scale(10)
	if s.Get(3) != 2 {
		t.Error("Clone should not alias the original")
	}
	if c.Get(3) != 20 {
		t.Error("Clone lost values")
	}
	var idxs []int
	var sum float64
	s.ForEach(func(i int, x float64) {
		idxs = append(idxs, i)
		sum += x
	})
	if len(idxs) != 3 || idxs[0] != 0 || idxs[1] != 3 || idxs[2] != 5 || sum != 6 {
		t.Errorf("ForEach visited %v (sum %v)", idxs, sum)
	}
}

func TestSparseDenseInto(t *testing.T) {
	s, err := SparseFromSorted(6, []int32{1, 4}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := Vector{9, 9, 9, 9, 9, 9}
	if got := s.DenseInto(buf); !got.Equal(s.Dense(), 0) {
		t.Errorf("DenseInto = %v, want %v", got, s.Dense())
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	s.DenseInto(NewVector(5))
}
