package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// randSparseDense builds a dense vector of dimension dim with ~nnz
// non-zeros at random positions.
func randSparseDense(r *rand.Rand, dim, nnz int) Vector {
	v := NewVector(dim)
	for j := 0; j < nnz; j++ {
		v[r.Intn(dim)] = r.NormFloat64()
	}
	return v
}

func TestDenseToSparseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v := randSparseDense(r, 500, 40)
	s := DenseToSparse(v)
	if s.Dim() != 500 {
		t.Fatalf("dim = %d", s.Dim())
	}
	back := s.Dense()
	if !v.Equal(back, 0) {
		t.Fatal("round trip changed the vector")
	}
	nnz := 0
	for i, x := range v {
		if x != 0 {
			nnz++
		}
		if s.Get(i) != x {
			t.Fatalf("Get(%d) = %v, want %v", i, s.Get(i), x)
		}
	}
	if s.NNZ() != nnz {
		t.Fatalf("NNZ = %d, want %d", s.NNZ(), nnz)
	}
}

func TestMapToSparse(t *testing.T) {
	m := NewSparse()
	m.Set(3, 1.5)
	m.Set(7, -2)
	s, err := MapToSparse(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 2 || s.Get(3) != 1.5 || s.Get(7) != -2 {
		t.Fatalf("MapToSparse wrong: %+v", s)
	}
	m.Set(99, 1)
	if _, err := MapToSparse(m, 10); err == nil {
		t.Error("out-of-range support should fail")
	}
}

// The bit-identity contract the SVM gram build and DB cosine path rely on.
func TestSparseDotBitIdenticalToDense(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		x := randSparseDense(r, 700, 60)
		y := randSparseDense(r, 700, 60)
		sx, sy := DenseToSparse(x), DenseToSparse(y)
		if got, want := sx.Dot(sy), x.MustDot(y); got != want {
			t.Fatalf("trial %d: sparse dot %v != dense dot %v", trial, got, want)
		}
		if got, want := sx.DotDense(y), x.MustDot(y); got != want {
			t.Fatalf("trial %d: DotDense %v != dense dot %v", trial, got, want)
		}
		wantCos, err := Cosine(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := sx.Cosine(sy); got != wantCos {
			t.Fatalf("trial %d: sparse cosine %v != dense %v", trial, got, wantCos)
		}
		if got, want := sx.Norm2(), Norm2Of(x); got != want {
			t.Fatalf("trial %d: cached norm2 %v != %v", trial, got, want)
		}
	}
}

func TestSparseSquaredDistanceApproximatesDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		x := randSparseDense(r, 400, 30)
		y := randSparseDense(r, 400, 30)
		sx, sy := DenseToSparse(x), DenseToSparse(y)
		want, err := SquaredEuclidean(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := sx.SquaredDistance(sy); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: sparse d2 %v vs dense %v", trial, got, want)
		}
		if got := sx.SquaredDistanceDense(y, Norm2Of(y)); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: sparse-dense d2 %v vs dense %v", trial, got, want)
		}
		if got, want := sx.Euclidean(sy), MustEuclidean(x, y); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: sparse euclid %v vs dense %v", trial, got, want)
		}
	}
	// Identical vectors: clamped exactly to zero.
	v := randSparseDense(r, 100, 10)
	if d := DenseToSparse(v).SquaredDistance(DenseToSparse(v)); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

func TestSparseZeroVector(t *testing.T) {
	z := DenseToSparse(NewVector(10))
	if z.NNZ() != 0 || z.Norm2() != 0 || z.L2() != 0 {
		t.Error("zero vector sparse form wrong")
	}
	v := DenseToSparse(Vector{1, 0, 2, 0, 0, 0, 0, 0, 0, 0})
	if z.Dot(v) != 0 || z.Cosine(v) != 0 {
		t.Error("zero-vector products should be 0")
	}
}

func TestSparseDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot dimension mismatch should panic")
		}
	}()
	DenseToSparse(Vector{1}).Dot(DenseToSparse(Vector{1, 2}))
}

// BenchmarkVecmathSparseVsDense measures the O(nnz) vs O(dim) gap at the
// paper's scale: 3815-dim signatures with ~150 active kernel functions.
func BenchmarkVecmathSparseVsDense(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const dim, nnz = 3815, 150
	x := randSparseDense(r, dim, nnz)
	y := randSparseDense(r, dim, nnz)
	sx, sy := DenseToSparse(x), DenseToSparse(y)
	b.Run("dense-dot", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += x.MustDot(y)
		}
		_ = s
	})
	b.Run("sparse-dot", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += sx.Dot(sy)
		}
		_ = s
	})
	b.Run("dense-sqeuclidean", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			d, _ := SquaredEuclidean(x, y)
			s += d
		}
		_ = s
	})
	b.Run("sparse-sqeuclidean", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += sx.SquaredDistance(sy)
		}
		_ = s
	})
}
