package vecmath

import (
	"fmt"
	"math"
	"sort"
)

// Sparse is the canonical signature representation: parallel sorted
// index/value arrays plus a cached squared L2 norm. Fmeter signatures
// live in a ~3815-dim space but any one monitoring interval touches only
// a few hundred kernel functions, so kernel evaluations, similarity
// scans, and K-means assignment steps cost O(nnz) instead of O(dim) in
// this form. Dense vectors are the derived view (Dense); the few callers
// that need per-component arithmetic materialize one explicitly.
//
// Mutating methods (Scale, Normalize) recompute the cached norm by
// re-accumulating in index order, so a mutated Sparse is
// indistinguishable from one freshly extracted from the equivalent dense
// vector. Sharing discipline: values flow through aliased *Sparse in
// read-mostly pipelines; mutate only vectors you own (Clone first when in
// doubt).
//
// The accumulation order of Dot and DotDense is ascending index order —
// exactly the order the dense loops visit the same non-zero terms — so
// sparse dot products are bit-identical to their dense counterparts
// (skipped terms contribute an exact +0 to the sum).
type Sparse struct {
	dim   int
	idx   []int32
	val   []float64
	norm2 float64
}

// DenseToSparse extracts the non-zero entries of v. The cached squared
// norm is accumulated in index order, matching the dense Norm(2) loop.
func DenseToSparse(v Vector) *Sparse {
	nnz := 0
	for _, x := range v {
		if x != 0 {
			nnz++
		}
	}
	s := &Sparse{dim: len(v), idx: make([]int32, 0, nnz), val: make([]float64, 0, nnz)}
	for i, x := range v {
		if x != 0 {
			s.idx = append(s.idx, int32(i))
			s.val = append(s.val, x)
			s.norm2 += x * x
		}
	}
	return s
}

// SparseFromSorted builds a Sparse directly from parallel index/value
// slices, taking ownership of both. Indices must be strictly ascending
// and inside [0, dim); values must be non-zero (zeros would bloat the
// support and break nnz-based reasoning). The cached norm accumulates in
// index order, exactly as DenseToSparse would for the equivalent dense
// vector. This is the allocation-free path for producers that already
// hold sorted non-zeros — tf-idf transformation, dimension compaction,
// snapshot loading.
func SparseFromSorted(dim int, idx []int32, val []float64) (*Sparse, error) {
	if len(idx) != len(val) {
		return nil, fmt.Errorf("vecmath: %d indices but %d values", len(idx), len(val))
	}
	s := &Sparse{dim: dim, idx: idx, val: val}
	prev := int32(-1)
	for k, i := range idx {
		if i <= prev || int(i) >= dim {
			return nil, fmt.Errorf("vecmath: sparse index %d at position %d not strictly ascending in [0, %d)", i, k, dim)
		}
		if val[k] == 0 {
			return nil, fmt.Errorf("vecmath: explicit zero at sparse index %d", i)
		}
		prev = i
		s.norm2 += val[k] * val[k]
	}
	return s, nil
}

// SparseFromSortedTrusted is SparseFromSorted for decoders that have
// already enforced the invariants inline — strictly ascending in-range
// indices, no explicit zeros — and accumulated the squared norm in
// index order (so the cached norm is bit-identical to SparseFromSorted
// computing it). It takes ownership of both slices and validates
// nothing; callers that cannot prove the invariants must use
// SparseFromSorted.
func SparseFromSortedTrusted(dim int, idx []int32, val []float64, norm2 float64) *Sparse {
	return &Sparse{dim: dim, idx: idx, val: val, norm2: norm2}
}

// MapToSparse converts a map-based SparseVector into the array form,
// dropping explicit zeros so the result honors the minimal-support
// invariant.
func MapToSparse(m SparseVector, dim int) (*Sparse, error) {
	support := m.Support()
	s := &Sparse{dim: dim, idx: make([]int32, 0, len(support)), val: make([]float64, 0, len(support))}
	for _, i := range support {
		if i < 0 || i >= dim {
			return nil, fmt.Errorf("vecmath: sparse index %d outside dimension %d", i, dim)
		}
		x := m[i]
		if x == 0 {
			continue
		}
		s.idx = append(s.idx, int32(i))
		s.val = append(s.val, x)
		s.norm2 += x * x
	}
	return s, nil
}

// Dim returns the ambient dimension.
func (s *Sparse) Dim() int { return s.dim }

// NNZ returns the number of stored non-zeros.
func (s *Sparse) NNZ() int { return len(s.idx) }

// Norm2 returns the cached squared Euclidean norm.
func (s *Sparse) Norm2() float64 { return s.norm2 }

// L2 returns the Euclidean norm.
func (s *Sparse) L2() float64 { return math.Sqrt(s.norm2) }

// Dense materializes s as a dense vector.
func (s *Sparse) Dense() Vector {
	out := NewVector(s.dim)
	for k, i := range s.idx {
		out[i] = s.val[k]
	}
	return out
}

// DenseInto writes the dense view of s into dst (zeroing it first) and
// returns dst — the allocation-free sibling of Dense for scan loops that
// reuse a scratch buffer.
func (s *Sparse) DenseInto(dst Vector) Vector {
	if s.dim != len(dst) {
		panic(fmt.Sprintf("vecmath: sparse DenseInto dimension mismatch %d vs %d", s.dim, len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for k, i := range s.idx {
		dst[i] = s.val[k]
	}
	return dst
}

// Get returns the value at dimension i (zero when absent), by binary
// search over the sorted support.
//
//fmeter:noalloc
func (s *Sparse) Get(i int) float64 {
	//fmeter:alloc-ok sort.Search never retains the predicate, so escape analysis keeps the closure on the stack
	k := sort.Search(len(s.idx), func(k int) bool { return s.idx[k] >= int32(i) })
	if k < len(s.idx) && s.idx[k] == int32(i) {
		return s.val[k]
	}
	return 0
}

// Dot returns s·t by a two-pointer merge over the sorted supports,
// accumulating in ascending index order. The result is bit-identical to
// the dense MustDot of the same vectors.
//
//fmeter:noalloc
func (s *Sparse) Dot(t *Sparse) float64 {
	if s.dim != t.dim {
		//fmeter:alloc-ok the panic path aborts the query; only misuse allocates
		panic(fmt.Sprintf("vecmath: sparse Dot dimension mismatch %d vs %d", s.dim, t.dim))
	}
	var sum float64
	a, b := 0, len(s.idx)
	c, d := 0, len(t.idx)
	for a < b && c < d {
		ia, ic := s.idx[a], t.idx[c]
		switch {
		case ia == ic:
			sum += s.val[a] * t.val[c]
			a++
			c++
		case ia < ic:
			a++
		default:
			c++
		}
	}
	return sum
}

// DotDense returns s·v by gathering v at s's support, accumulating in
// ascending index order; bit-identical to the dense dot.
//
//fmeter:noalloc
func (s *Sparse) DotDense(v Vector) float64 {
	if s.dim != len(v) {
		//fmeter:alloc-ok the panic path aborts the query; only misuse allocates
		panic(fmt.Sprintf("vecmath: sparse DotDense dimension mismatch %d vs %d", s.dim, len(v)))
	}
	var sum float64
	for k, i := range s.idx {
		sum += s.val[k] * v[i]
	}
	return sum
}

// SquaredDistance returns ||s - t||^2 via the cached norms:
// ||s||^2 - 2 s·t + ||t||^2, clamped at zero against cancellation noise.
// This costs O(nnz) but is NOT bit-identical to the dense subtract-square
// loop; callers that need exact dense agreement must use the dense path.
//
//fmeter:noalloc
func (s *Sparse) SquaredDistance(t *Sparse) float64 {
	d2 := s.norm2 - 2*s.Dot(t) + t.norm2
	if d2 < 0 {
		return 0
	}
	return d2
}

// SquaredDistanceDense returns ||s - v||^2 where v's squared norm vNorm2
// was precomputed by the caller (K-means recomputes centroid norms once
// per Lloyd iteration, then scores every point against them in O(nnz)).
//
//fmeter:noalloc
func (s *Sparse) SquaredDistanceDense(v Vector, vNorm2 float64) float64 {
	d2 := s.norm2 - 2*s.DotDense(v) + vNorm2
	if d2 < 0 {
		return 0
	}
	return d2
}

// Euclidean returns the L2 distance to t (via the norm identity).
func (s *Sparse) Euclidean(t *Sparse) float64 { return math.Sqrt(s.SquaredDistance(t)) }

// Cosine returns the cosine similarity with t, clamped into [-1, 1]. Both
// the dot product and the cached norms accumulate in ascending index
// order, so the result is bit-identical to the dense Cosine.
func (s *Sparse) Cosine(t *Sparse) float64 {
	if s.norm2 == 0 || t.norm2 == 0 {
		return 0
	}
	c := s.Dot(t) / (math.Sqrt(s.norm2) * math.Sqrt(t.norm2))
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Clone returns a deep copy of s.
func (s *Sparse) Clone() *Sparse {
	out := &Sparse{dim: s.dim, idx: make([]int32, len(s.idx)), val: make([]float64, len(s.val)), norm2: s.norm2}
	copy(out.idx, s.idx)
	copy(out.val, s.val)
	return out
}

// Support returns the sorted non-zero indices backing s. The slice is
// the canonical storage, not a copy — callers must treat it as
// read-only. It exists for closure-free hot loops (the inverted-index
// posting walk); everything else should prefer ForEach.
func (s *Sparse) Support() []int32 { return s.idx }

// Values returns the stored values parallel to Support, again aliasing
// the canonical storage; read-only for the same reason.
func (s *Sparse) Values() []float64 { return s.val }

// ForEach calls fn for every stored non-zero in ascending index order.
func (s *Sparse) ForEach(fn func(i int, x float64)) {
	for k, i := range s.idx {
		fn(int(i), s.val[k])
	}
}

// ForEachUnion calls fn for every index in the support union of s and t,
// in ascending index order, with both values at that index (zero when
// absent from one support). It panics on dimension mismatch, like the
// other pre-validated merge ops.
func (s *Sparse) ForEachUnion(t *Sparse, fn func(i int, x, y float64)) {
	if s.dim != t.dim {
		panic(fmt.Sprintf("vecmath: sparse ForEachUnion dimension mismatch %d vs %d", s.dim, t.dim))
	}
	a, b := 0, len(s.idx)
	c, d := 0, len(t.idx)
	for a < b || c < d {
		switch {
		case c >= d || (a < b && s.idx[a] < t.idx[c]):
			fn(int(s.idx[a]), s.val[a], 0)
			a++
		case a >= b || t.idx[c] < s.idx[a]:
			fn(int(t.idx[c]), 0, t.val[c])
			c++
		default: // equal indices
			fn(int(s.idx[a]), s.val[a], t.val[c])
			a++
			c++
		}
	}
}

// Scale multiplies every stored value by a in place and returns s. The
// cached norm is re-accumulated in index order so it stays bit-identical
// to a fresh extraction of the scaled dense vector. Scaling by zero
// leaves an all-zero support; callers that rely on minimal supports
// should avoid it (signatures never scale by zero).
func (s *Sparse) Scale(a float64) *Sparse {
	s.norm2 = 0
	for k := range s.val {
		s.val[k] *= a
		s.norm2 += s.val[k] * s.val[k]
	}
	return s
}

// Normalize scales s in place to unit L2 norm and returns s, exactly like
// the dense Vector.Normalize: every value is divided by the norm (the
// same operation the dense loop applies to the non-zero components; the
// zero components stay zero either way). The zero vector is unchanged.
func (s *Sparse) Normalize() *Sparse {
	n := math.Sqrt(s.norm2)
	if n == 0 {
		return s
	}
	s.norm2 = 0
	for k := range s.val {
		s.val[k] /= n
		s.norm2 += s.val[k] * s.val[k]
	}
	return s
}

// Axpy accumulates a*s into the dense vector dst (dst += a*s), the
// sparse-to-dense accumulate that centroid updates and mean signatures
// need. Only the support is touched, and since the skipped components
// would contribute an exact +0, the result is bit-identical to adding the
// materialized dense form.
func (s *Sparse) Axpy(a float64, dst Vector) {
	if s.dim != len(dst) {
		panic(fmt.Sprintf("vecmath: sparse Axpy dimension mismatch %d vs %d", s.dim, len(dst)))
	}
	for k, i := range s.idx {
		dst[i] += a * s.val[k]
	}
}

// Minkowski returns the Lp-induced distance to t computed over the
// support union, in O(nnz_s + nnz_t). The merge visits indices in
// ascending order — the order the dense Minkowski loop visits the same
// terms — and the indices where both vectors are zero contribute an exact
// +0 there, so the result is bit-identical to the dense computation for
// every p (including p=2; contrast Euclidean, which trades bit-identity
// for the cached-norm identity).
func (s *Sparse) Minkowski(t *Sparse, p float64) (float64, error) {
	if s.dim != t.dim {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, s.dim, t.dim)
	}
	if p < 1 && !math.IsInf(p, 1) {
		return 0, fmt.Errorf("vecmath: Minkowski order p=%v must be >= 1", p)
	}
	var acc float64
	s.ForEachUnion(t, func(_ int, x, y float64) {
		d := x - y
		switch {
		case math.IsInf(p, 1):
			if a := math.Abs(d); a > acc {
				acc = a
			}
		case p == 2:
			acc += d * d
		case p == 1:
			acc += math.Abs(d)
		default:
			acc += math.Pow(math.Abs(d), p)
		}
	})
	switch {
	case math.IsInf(p, 1), p == 1:
		return acc, nil
	case p == 2:
		return math.Sqrt(acc), nil
	default:
		return math.Pow(acc, 1/p), nil
	}
}

// Norm2Of returns the squared L2 norm of a dense vector, accumulated in
// index order (the shared helper for norm-cached distance computations).
func Norm2Of(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}
