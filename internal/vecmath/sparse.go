package vecmath

import (
	"fmt"
	"math"
	"sort"
)

// Sparse is a read-only sparse signature: parallel sorted index/value
// arrays plus a cached squared L2 norm. It is the hot-loop companion to
// the map-based SparseVector — Fmeter signatures live in a ~3815-dim space
// but any one monitoring interval touches only a few hundred kernel
// functions, so kernel evaluations, similarity scans, and K-means
// assignment steps cost O(nnz) instead of O(dim) in this form.
//
// The accumulation order of Dot and DotDense is ascending index order —
// exactly the order the dense loops visit the same non-zero terms — so
// sparse dot products are bit-identical to their dense counterparts
// (skipped terms contribute an exact +0 to the sum).
type Sparse struct {
	dim   int
	idx   []int32
	val   []float64
	norm2 float64
}

// DenseToSparse extracts the non-zero entries of v. The cached squared
// norm is accumulated in index order, matching the dense Norm(2) loop.
func DenseToSparse(v Vector) *Sparse {
	nnz := 0
	for _, x := range v {
		if x != 0 {
			nnz++
		}
	}
	s := &Sparse{dim: len(v), idx: make([]int32, 0, nnz), val: make([]float64, 0, nnz)}
	for i, x := range v {
		if x != 0 {
			s.idx = append(s.idx, int32(i))
			s.val = append(s.val, x)
			s.norm2 += x * x
		}
	}
	return s
}

// MapToSparse converts a map-based SparseVector into the array form.
func MapToSparse(m SparseVector, dim int) (*Sparse, error) {
	support := m.Support()
	s := &Sparse{dim: dim, idx: make([]int32, 0, len(support)), val: make([]float64, 0, len(support))}
	for _, i := range support {
		if i < 0 || i >= dim {
			return nil, fmt.Errorf("vecmath: sparse index %d outside dimension %d", i, dim)
		}
		x := m[i]
		s.idx = append(s.idx, int32(i))
		s.val = append(s.val, x)
		s.norm2 += x * x
	}
	return s, nil
}

// Dim returns the ambient dimension.
func (s *Sparse) Dim() int { return s.dim }

// NNZ returns the number of stored non-zeros.
func (s *Sparse) NNZ() int { return len(s.idx) }

// Norm2 returns the cached squared Euclidean norm.
func (s *Sparse) Norm2() float64 { return s.norm2 }

// L2 returns the Euclidean norm.
func (s *Sparse) L2() float64 { return math.Sqrt(s.norm2) }

// Dense materializes s as a dense vector.
func (s *Sparse) Dense() Vector {
	out := NewVector(s.dim)
	for k, i := range s.idx {
		out[i] = s.val[k]
	}
	return out
}

// Get returns the value at dimension i (zero when absent), by binary
// search over the sorted support.
func (s *Sparse) Get(i int) float64 {
	k := sort.Search(len(s.idx), func(k int) bool { return s.idx[k] >= int32(i) })
	if k < len(s.idx) && s.idx[k] == int32(i) {
		return s.val[k]
	}
	return 0
}

// Dot returns s·t by a two-pointer merge over the sorted supports,
// accumulating in ascending index order. The result is bit-identical to
// the dense MustDot of the same vectors.
func (s *Sparse) Dot(t *Sparse) float64 {
	if s.dim != t.dim {
		panic(fmt.Sprintf("vecmath: sparse Dot dimension mismatch %d vs %d", s.dim, t.dim))
	}
	var sum float64
	a, b := 0, len(s.idx)
	c, d := 0, len(t.idx)
	for a < b && c < d {
		ia, ic := s.idx[a], t.idx[c]
		switch {
		case ia == ic:
			sum += s.val[a] * t.val[c]
			a++
			c++
		case ia < ic:
			a++
		default:
			c++
		}
	}
	return sum
}

// DotDense returns s·v by gathering v at s's support, accumulating in
// ascending index order; bit-identical to the dense dot.
func (s *Sparse) DotDense(v Vector) float64 {
	if s.dim != len(v) {
		panic(fmt.Sprintf("vecmath: sparse DotDense dimension mismatch %d vs %d", s.dim, len(v)))
	}
	var sum float64
	for k, i := range s.idx {
		sum += s.val[k] * v[i]
	}
	return sum
}

// SquaredDistance returns ||s - t||^2 via the cached norms:
// ||s||^2 - 2 s·t + ||t||^2, clamped at zero against cancellation noise.
// This costs O(nnz) but is NOT bit-identical to the dense subtract-square
// loop; callers that need exact dense agreement must use the dense path.
func (s *Sparse) SquaredDistance(t *Sparse) float64 {
	d2 := s.norm2 - 2*s.Dot(t) + t.norm2
	if d2 < 0 {
		return 0
	}
	return d2
}

// SquaredDistanceDense returns ||s - v||^2 where v's squared norm vNorm2
// was precomputed by the caller (K-means recomputes centroid norms once
// per Lloyd iteration, then scores every point against them in O(nnz)).
func (s *Sparse) SquaredDistanceDense(v Vector, vNorm2 float64) float64 {
	d2 := s.norm2 - 2*s.DotDense(v) + vNorm2
	if d2 < 0 {
		return 0
	}
	return d2
}

// Euclidean returns the L2 distance to t (via the norm identity).
func (s *Sparse) Euclidean(t *Sparse) float64 { return math.Sqrt(s.SquaredDistance(t)) }

// Cosine returns the cosine similarity with t, clamped into [-1, 1]. Both
// the dot product and the cached norms accumulate in ascending index
// order, so the result is bit-identical to the dense Cosine.
func (s *Sparse) Cosine(t *Sparse) float64 {
	if s.norm2 == 0 || t.norm2 == 0 {
		return 0
	}
	c := s.Dot(t) / (math.Sqrt(s.norm2) * math.Sqrt(t.norm2))
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Norm2Of returns the squared L2 norm of a dense vector, accumulated in
// index order (the shared helper for norm-cached distance computations).
func Norm2Of(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}
