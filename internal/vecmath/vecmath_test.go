package vecmath

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		want float64
	}{
		{"orthogonal", Vector{1, 0}, Vector{0, 1}, 0},
		{"parallel", Vector{1, 2, 3}, Vector{2, 4, 6}, 28},
		{"negative", Vector{1, -1}, Vector{1, 1}, 0},
		{"empty", Vector{}, Vector{}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.v.Dot(tt.w)
			if err != nil {
				t.Fatalf("Dot: %v", err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dot = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDotDimensionMismatch(t *testing.T) {
	_, err := Vector{1}.Dot(Vector{1, 2})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("want ErrDimensionMismatch, got %v", err)
	}
}

func TestMustDotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDot did not panic on dimension mismatch")
		}
	}()
	Vector{1}.MustDot(Vector{1, 2})
}

func TestNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm(1); !almostEqual(got, 7, 1e-12) {
		t.Errorf("L1 = %v, want 7", got)
	}
	if got := v.Norm(2); !almostEqual(got, 5, 1e-12) {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := v.Norm(math.Inf(1)); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Linf = %v, want 4", got)
	}
	if got := v.Norm(3); !almostEqual(got, math.Pow(27+64, 1.0/3), 1e-12) {
		t.Errorf("L3 = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if !almostEqual(v.L2(), 1, 1e-12) {
		t.Errorf("normalized L2 = %v, want 1", v.L2())
	}
	if !v.Equal(Vector{0.6, 0.8}, 1e-12) {
		t.Errorf("normalized = %v", v)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	v := Vector{0, 0, 0}
	v.Normalize()
	if !v.IsZero() {
		t.Errorf("zero vector changed by Normalize: %v", v)
	}
}

func TestAddSubScale(t *testing.T) {
	v := Vector{1, 2}
	if err := v.Add(Vector{3, 4}); err != nil {
		t.Fatal(err)
	}
	if !v.Equal(Vector{4, 6}, 0) {
		t.Errorf("Add = %v", v)
	}
	if err := v.Sub(Vector{1, 1}); err != nil {
		t.Fatal(err)
	}
	if !v.Equal(Vector{3, 5}, 0) {
		t.Errorf("Sub = %v", v)
	}
	v.Scale(2)
	if !v.Equal(Vector{6, 10}, 0) {
		t.Errorf("Scale = %v", v)
	}
	if err := v.Add(Vector{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Add mismatch err = %v", err)
	}
	if err := v.Sub(Vector{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Sub mismatch err = %v", err)
	}
}

func TestMinkowski(t *testing.T) {
	x := Vector{0, 0}
	y := Vector{3, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{1, 7},
		{2, 5},
		{math.Inf(1), 4},
		{3, math.Pow(27+64, 1.0/3)},
	}
	for _, tt := range tests {
		got, err := Minkowski(x, y, tt.p)
		if err != nil {
			t.Fatalf("Minkowski(p=%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Minkowski(p=%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestMinkowskiInvalidOrder(t *testing.T) {
	if _, err := Minkowski(Vector{1}, Vector{2}, 0.5); err == nil {
		t.Fatal("want error for p < 1")
	}
}

func TestCosine(t *testing.T) {
	tests := []struct {
		name string
		x, y Vector
		want float64
	}{
		{"identical direction", Vector{1, 1}, Vector{2, 2}, 1},
		{"orthogonal", Vector{1, 0}, Vector{0, 1}, 0},
		{"opposite", Vector{1, 0}, Vector{-1, 0}, -1},
		{"zero vector", Vector{0, 0}, Vector{1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Cosine(tt.x, tt.y)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Cosine = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCosineDistance(t *testing.T) {
	d, err := CosineDistance(Vector{1, 0}, Vector{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1, 1e-12) {
		t.Errorf("CosineDistance = %v, want 1", d)
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(Vector{2, 3}, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("want error for empty mean")
	}
	if _, err := Mean([]Vector{{1}, {1, 2}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("mismatch err = %v", err)
	}
}

func TestSparseBasics(t *testing.T) {
	s := NewSparse()
	s.Set(3, 2.5)
	s.Add(3, 0.5)
	s.Set(7, 1)
	if got := s.Get(3); got != 3 {
		t.Errorf("Get(3) = %v", got)
	}
	if s.NNZ() != 2 {
		t.Errorf("NNZ = %d", s.NNZ())
	}
	if got := s.Sum(); got != 4 {
		t.Errorf("Sum = %v", got)
	}
	s.Set(7, 0) // zero deletes
	if s.NNZ() != 1 {
		t.Errorf("NNZ after zero-set = %d", s.NNZ())
	}
}

func TestSparseDot(t *testing.T) {
	a := SparseVector{0: 1, 2: 3}
	b := SparseVector{2: 2, 5: 10}
	if got := a.Dot(b); got != 6 {
		t.Errorf("sparse Dot = %v, want 6", got)
	}
	if got := b.Dot(a); got != 6 {
		t.Errorf("sparse Dot not symmetric: %v", got)
	}
}

func TestSparseDense(t *testing.T) {
	s := SparseVector{1: 5, 3: 7}
	d, err := s.Dense(4)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(Vector{0, 5, 0, 7}, 0) {
		t.Errorf("Dense = %v", d)
	}
	if _, err := s.Dense(2); err == nil {
		t.Error("want error when support exceeds dimension")
	}
}

func TestSparseSupportSorted(t *testing.T) {
	s := SparseVector{9: 1, 2: 1, 5: 1}
	got := s.Support()
	want := []int{2, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
}

func TestSparseClone(t *testing.T) {
	s := SparseVector{1: 2}
	c := s.Clone()
	c.Set(1, 99)
	if s.Get(1) != 2 {
		t.Error("Clone is not a deep copy")
	}
}

func randVector(r *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// Property: cosine similarity is always within [-1, 1].
func TestPropertyCosineBounded(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := randVector(rr, 1+rr.Intn(50))
		y := randVector(rr, len(x))
		c, err := Cosine(x, y)
		return err == nil && c >= -1 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

// Property: Minkowski distance satisfies the triangle inequality for p >= 1.
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(20)
		x, y, z := randVector(rr, n), randVector(rr, n), randVector(rr, n)
		for _, p := range []float64{1, 2, 3, math.Inf(1)} {
			dxz, _ := Minkowski(x, z, p)
			dxy, _ := Minkowski(x, y, p)
			dyz, _ := Minkowski(y, z, p)
			if dxz > dxy+dyz+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: distance is symmetric and d(x, x) = 0.
func TestPropertyDistanceAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(20)
		x, y := randVector(rr, n), randVector(rr, n)
		dxy, _ := Euclidean(x, y)
		dyx, _ := Euclidean(y, x)
		dxx, _ := Euclidean(x, x)
		return almostEqual(dxy, dyx, 1e-12) && dxx == 0 && dxy >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: normalization is idempotent and preserves direction.
func TestPropertyNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := randVector(rr, 1+rr.Intn(30))
		if v.IsZero() {
			return true
		}
		n1 := v.Normalized()
		n2 := n1.Normalized()
		c, _ := Cosine(v, n1)
		return n1.Equal(n2, 1e-12) && almostEqual(c, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |x.y| <= ||x|| ||y||.
func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(30)
		x, y := randVector(rr, n), randVector(rr, n)
		dot := x.MustDot(y)
		return math.Abs(dot) <= x.L2()*y.L2()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sparse Dot agrees with dense Dot on the materialized vectors.
func TestPropertySparseDenseDotAgree(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		dim := 10 + rr.Intn(40)
		a, b := NewSparse(), NewSparse()
		for i := 0; i < rr.Intn(20); i++ {
			a.Set(rr.Intn(dim), rr.NormFloat64())
			b.Set(rr.Intn(dim), rr.NormFloat64())
		}
		da, err1 := a.Dense(dim)
		db, err2 := b.Dense(dim)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(a.Dot(b), da.MustDot(db), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDenseDot(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randVector(r, 3800), randVector(r, 3800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.MustDot(y)
	}
}

func BenchmarkEuclidean3800(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randVector(r, 3800), randVector(r, 3800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MustEuclidean(x, y)
	}
}
