// Package vecmath provides dense and sparse vector primitives used to
// represent Fmeter signatures in the vector space model (Salton et al.).
//
// Signatures are points in an N-dimensional space whose orthonormal basis is
// induced by the set of distinct core-kernel functions. The package supplies
// the operations the paper relies on: dot products, Lp (Minkowski) norms and
// distances, cosine similarity, and L2 normalization into the unit ball.
package vecmath

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDimensionMismatch is returned when an operation is applied to two
// vectors of different dimensionality.
var ErrDimensionMismatch = errors.New("vecmath: dimension mismatch")

// Vector is a dense vector of float64 components.
type Vector []float64

// NewVector returns a zero vector of dimension n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s, nil
}

// MustDot is Dot for vectors known to share a dimension; it panics on
// mismatch and exists for hot inner loops (SMO, K-means) where the
// dimensions were validated at corpus construction time.
func (v Vector) MustDot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vecmath: MustDot dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Lp norm of v. p must be >= 1; p = math.Inf(1) yields the
// Chebyshev (max) norm.
func (v Vector) Norm(p float64) float64 {
	switch {
	case math.IsInf(p, 1):
		var m float64
		for _, x := range v {
			if a := math.Abs(x); a > m {
				m = a
			}
		}
		return m
	case p == 2:
		var s float64
		for _, x := range v {
			s += x * x
		}
		return math.Sqrt(s)
	case p == 1:
		var s float64
		for _, x := range v {
			s += math.Abs(x)
		}
		return s
	default:
		var s float64
		for _, x := range v {
			s += math.Pow(math.Abs(x), p)
		}
		return math.Pow(s, 1/p)
	}
}

// L2 returns the Euclidean norm of v.
func (v Vector) L2() float64 { return v.Norm(2) }

// Normalize scales v in place to unit L2 norm and returns v. The zero vector
// is left unchanged (there is no direction to preserve).
func (v Vector) Normalize() Vector {
	n := v.L2()
	if n == 0 {
		return v
	}
	for i := range v {
		v[i] /= n
	}
	return v
}

// Normalized returns a unit-L2-norm copy of v.
func (v Vector) Normalized() Vector { return v.Clone().Normalize() }

// Add accumulates w into v in place.
func (v Vector) Add(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] += w[i]
	}
	return nil
}

// Sub subtracts w from v in place.
func (v Vector) Sub(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] -= w[i]
	}
	return nil
}

// Scale multiplies every component of v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Equal reports whether v and w are component-wise equal within eps.
func (v Vector) Equal(w Vector, eps float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > eps {
			return false
		}
	}
	return true
}

// IsZero reports whether every component of v is exactly zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Minkowski returns the Lp-induced distance between x and y,
// d_p(x,y) = (sum |x_i - y_i|^p)^(1/p), as defined in §2.1 of the paper.
func Minkowski(x, y Vector, p float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(x), len(y))
	}
	switch {
	case math.IsInf(p, 1):
		var m float64
		for i := range x {
			if a := math.Abs(x[i] - y[i]); a > m {
				m = a
			}
		}
		return m, nil
	case p == 2:
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += d * d
		}
		return math.Sqrt(s), nil
	case p == 1:
		var s float64
		for i := range x {
			s += math.Abs(x[i] - y[i])
		}
		return s, nil
	case p < 1:
		return 0, fmt.Errorf("vecmath: Minkowski order p=%v must be >= 1", p)
	default:
		var s float64
		for i := range x {
			s += math.Pow(math.Abs(x[i]-y[i]), p)
		}
		return math.Pow(s, 1/p), nil
	}
}

// Euclidean returns the L2 distance between x and y. It is the default
// metric used throughout the paper's evaluation.
func Euclidean(x, y Vector) (float64, error) { return Minkowski(x, y, 2) }

// MustEuclidean is Euclidean for pre-validated dimensions (hot loops).
func MustEuclidean(x, y Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: MustEuclidean dimension mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// MustSquaredEuclidean is SquaredEuclidean for pre-validated dimensions
// (K-means assignment steps).
func MustSquaredEuclidean(x, y Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: MustSquaredEuclidean dimension mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// SquaredEuclidean returns the squared L2 distance, avoiding the sqrt for
// comparisons (K-means assignment steps).
func SquaredEuclidean(x, y Vector) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(x), len(y))
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s, nil
}

// Cosine returns the cosine similarity cos(theta) = x.y / (||x|| ||y||)
// between x and y. Identical directions yield 1, orthogonal vectors yield 0.
// If either vector is zero the similarity is defined as 0 (no direction).
func Cosine(x, y Vector) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(x), len(y))
	}
	var dot, nx, ny float64
	for i := range x {
		dot += x[i] * y[i]
		nx += x[i] * x[i]
		ny += y[i] * y[i]
	}
	if nx == 0 || ny == 0 {
		return 0, nil
	}
	c := dot / (math.Sqrt(nx) * math.Sqrt(ny))
	// Clamp numerical noise so downstream acos never sees |c| > 1.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c, nil
}

// CosineDistance returns 1 - Cosine(x, y), a dissimilarity in [0, 2].
func CosineDistance(x, y Vector) (float64, error) {
	c, err := Cosine(x, y)
	if err != nil {
		return 0, err
	}
	return 1 - c, nil
}

// Mean returns the component-wise mean of vs. All vectors must share a
// dimension; an empty input returns an error.
func Mean(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("vecmath: mean of empty vector set")
	}
	dim := len(vs[0])
	out := NewVector(dim)
	for _, v := range vs {
		if len(v) != dim {
			return nil, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), dim)
		}
		for i, x := range v {
			out[i] += x
		}
	}
	inv := 1 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// SparseVector is a map from dimension index to value, suited for raw
// function-count documents where most of the ~3800 dimensions are zero.
type SparseVector map[int]float64

// NewSparse returns an empty sparse vector.
func NewSparse() SparseVector { return make(SparseVector) }

// Set assigns value x to dimension i, deleting the entry when x is zero so
// the support stays minimal.
func (s SparseVector) Set(i int, x float64) {
	if x == 0 {
		delete(s, i)
		return
	}
	s[i] = x
}

// Get returns the value at dimension i (zero when absent).
func (s SparseVector) Get(i int) float64 { return s[i] }

// Add accumulates x into dimension i.
func (s SparseVector) Add(i int, x float64) { s.Set(i, s[i]+x) }

// NNZ returns the number of non-zero entries.
func (s SparseVector) NNZ() int { return len(s) }

// Sum returns the sum of all entries. Accumulation runs in sorted
// support order: float addition rounds differently under different
// orders, and map iteration order is randomized per run.
func (s SparseVector) Sum() float64 {
	var t float64
	for _, i := range s.Support() {
		t += s[i]
	}
	return t
}

// Clone returns a deep copy of s.
func (s SparseVector) Clone() SparseVector {
	out := make(SparseVector, len(s))
	for i, x := range s {
		out[i] = x
	}
	return out
}

// Dot returns the inner product of two sparse vectors, iterating the
// smaller support.
func (s SparseVector) Dot(t SparseVector) float64 {
	a, b := s, t
	if len(b) < len(a) {
		a, b = b, a
	}
	var sum float64
	for _, i := range a.Support() {
		if y, ok := b[i]; ok {
			sum += a[i] * y
		}
	}
	return sum
}

// L2 returns the Euclidean norm of s. Like Sum, the accumulation runs
// in sorted support order so the rounded result is reproducible.
func (s SparseVector) L2() float64 {
	var sum float64
	for _, i := range s.Support() {
		sum += s[i] * s[i]
	}
	return math.Sqrt(sum)
}

// Dense materializes s as a dense vector of dimension dim. Entries at or
// beyond dim are an error: the support must fit the requested space.
func (s SparseVector) Dense(dim int) (Vector, error) {
	out := NewVector(dim)
	for i, x := range s {
		if i < 0 || i >= dim {
			return nil, fmt.Errorf("vecmath: sparse index %d outside dimension %d", i, dim)
		}
		out[i] = x
	}
	return out, nil
}

// Support returns the sorted list of non-zero dimension indices.
func (s SparseVector) Support() []int {
	idx := make([]int, 0, len(s))
	for i := range s {
		//fmeter:map-order-ok the support is sorted right below
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}
