package experiments

import (
	"testing"
)

// The acceptance criterion of the perf overhaul: table and figure results
// are bit-identical between Workers=1 and Workers=N at the same seed.
// Render() output is compared because it is exactly what the paper-facing
// reports contain.
func TestTable4BitIdenticalAcrossWorkers(t *testing.T) {
	data := getQuickData(t)
	p := QuickMLParams()
	p.Workers = -1 // fully sequential
	seq, err := RunTable4(data.Set, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 8
	par, err := RunTable4(data.Set, p)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != par.Render() {
		t.Errorf("Table 4 differs across worker counts:\nsequential:\n%s\nparallel:\n%s", seq.Render(), par.Render())
	}
	for gi := range seq.Rows {
		a, b := seq.Rows[gi].CV, par.Rows[gi].CV
		if a.MeanAccuracy != b.MeanAccuracy || a.StdAccuracy != b.StdAccuracy {
			t.Errorf("grouping %d: accuracy %v±%v vs %v±%v", gi, a.MeanAccuracy, a.StdAccuracy, b.MeanAccuracy, b.StdAccuracy)
		}
		for fi := range a.Folds {
			if a.Folds[fi] != b.Folds[fi] {
				t.Errorf("grouping %d fold %d differs: %+v vs %+v", gi, fi, a.Folds[fi], b.Folds[fi])
			}
		}
	}
}

func TestFig5And6BitIdenticalAcrossWorkers(t *testing.T) {
	data := getQuickData(t)
	for _, sparse := range []bool{false, true} {
		p := QuickClusterParams()
		p.Sparse = sparse
		p.Workers = -1
		seq5, err := RunFig5(data.Set, p)
		if err != nil {
			t.Fatal(err)
		}
		seq6, err := RunFig6(data.Set, p)
		if err != nil {
			t.Fatal(err)
		}
		p.Workers = 8
		par5, err := RunFig5(data.Set, p)
		if err != nil {
			t.Fatal(err)
		}
		par6, err := RunFig6(data.Set, p)
		if err != nil {
			t.Fatal(err)
		}
		if seq5.Render() != par5.Render() {
			t.Errorf("sparse=%v: Figure 5 differs across worker counts", sparse)
		}
		if seq6.Render() != par6.Render() {
			t.Errorf("sparse=%v: Figure 6 differs across worker counts", sparse)
		}
		for si := range seq5.Series {
			for pi, pt := range seq5.Series[si].Points {
				if pt != par5.Series[si].Points[pi] {
					t.Errorf("sparse=%v: Fig5 series %d point %d: %+v vs %+v", sparse, si, pi, pt, par5.Series[si].Points[pi])
				}
			}
		}
	}
}

// Corpus collection fans out one simulated machine per workload; the
// concatenated corpus must not depend on the worker count.
func TestCollectCorpusBitIdenticalAcrossWorkers(t *testing.T) {
	p := QuickMLParams()
	p.PerClass = 5
	specs := CollectWorkloadSpecs()
	seq, dimSeq, err := CollectSignatureCorpusWorkers(specs, p.PerClass, p.Interval, p.Seed, -1)
	if err != nil {
		t.Fatal(err)
	}
	par, dimPar, err := CollectSignatureCorpusWorkers(specs, p.PerClass, p.Interval, p.Seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dimSeq != dimPar || len(seq) != len(par) {
		t.Fatalf("corpus shape differs: %d/%d vs %d/%d", len(seq), dimSeq, len(par), dimPar)
	}
	for i := range seq {
		if seq[i].ID != par[i].ID || seq[i].Label != par[i].Label || len(seq[i].Counts) != len(par[i].Counts) {
			t.Fatalf("document %d differs across worker counts", i)
		}
		for fn, c := range seq[i].Counts {
			if par[i].Counts[fn] != c {
				t.Fatalf("document %d count for fn %d differs", i, fn)
			}
		}
	}
}
