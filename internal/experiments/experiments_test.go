package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the paper's qualitative claims (who wins, by
// roughly what factor, where curves bend) at test-friendly scale; the
// bench harness runs the paper-scale versions.

func TestFig1PowerLaw(t *testing.T) {
	res, err := RunFig1(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Functions != 3815 {
		t.Errorf("functions = %d, want 3815", res.Functions)
	}
	if res.Fit.Alpha < 0.8 || res.Fit.Alpha > 1.4 {
		t.Errorf("power-law exponent = %v, want ~1.1", res.Fit.Alpha)
	}
	if res.Fit.R2 < 0.95 {
		t.Errorf("log-log fit R2 = %v, want > 0.95", res.Fit.R2)
	}
	// Monotone non-increasing by construction.
	for i := 1; i < len(res.Counts); i++ {
		if res.Counts[i] > res.Counts[i-1] {
			t.Fatal("rank/count curve not sorted")
		}
	}
	if !strings.Contains(res.Render(), "power-law fit") {
		t.Error("render missing fit")
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := RunTable1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 23 {
		t.Fatalf("rows = %d, want 23", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Ftrace.Mean <= row.Fmeter.Mean {
			t.Errorf("%s: ftrace (%v) should exceed fmeter (%v)", row.Test, row.Ftrace.Mean, row.Fmeter.Mean)
		}
		if row.Fmeter.Mean <= row.Baseline.Mean*0.95 {
			t.Errorf("%s: fmeter (%v) should not beat baseline (%v)", row.Test, row.Fmeter.Mean, row.Baseline.Mean)
		}
		if row.FtFmRatio < 1.5 {
			t.Errorf("%s: ftrace/fmeter ratio %v too small", row.Test, row.FtFmRatio)
		}
	}
	// The paper's prose: Fmeter ~1.4x on average, Ftrace ~6.69x.
	if res.AvgFmeterSlowdown < 1.1 || res.AvgFmeterSlowdown > 2.0 {
		t.Errorf("avg fmeter slowdown = %v, want ~1.4", res.AvgFmeterSlowdown)
	}
	if res.AvgFtraceSlowdown < 4 || res.AvgFtraceSlowdown > 10 {
		t.Errorf("avg ftrace slowdown = %v, want ~6.7", res.AvgFtraceSlowdown)
	}
	if !strings.Contains(res.Render(), "Simple syscall") {
		t.Error("render missing rows")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := RunTable2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byCfg := map[TracerKind]Table2Row{}
	for _, r := range res.Rows {
		byCfg[r.Config] = r
	}
	if !(byCfg[Vanilla].RPS.Mean > byCfg[Fmeter].RPS.Mean && byCfg[Fmeter].RPS.Mean > byCfg[Ftrace].RPS.Mean) {
		t.Error("throughput ordering broken: want vanilla > fmeter > ftrace")
	}
	if s := byCfg[Ftrace].SlowdownPct; s < 50 || s > 70 {
		t.Errorf("ftrace slowdown = %v%%, want ~61%%", s)
	}
	if s := byCfg[Fmeter].SlowdownPct; s < 5 || s > 30 {
		t.Errorf("fmeter slowdown = %v%%, want modest (paper 24%%)", s)
	}
	// Absolute vanilla throughput calibrated to the paper's 14215 req/s.
	if rps := byCfg[Vanilla].RPS.Mean; rps < 12000 || rps > 17000 {
		t.Errorf("vanilla rps = %v, want ~14215", rps)
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := RunTable3(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byCfg := map[TracerKind]Table3Row{}
	for _, r := range res.Rows {
		byCfg[r.Config] = r
	}
	// User time is uninstrumented: identical across configs.
	if byCfg[Vanilla].User != byCfg[Ftrace].User || byCfg[Vanilla].User != byCfg[Fmeter].User {
		t.Error("user time should be identical across configurations")
	}
	// Fmeter sys ~ +22%, Ftrace sys several-fold.
	if s := res.SysSlowdownFmeter; s < 0.1 || s > 0.45 {
		t.Errorf("fmeter sys slowdown = %v, want ~0.22", s)
	}
	if s := res.SysSlowdownFtrace; s < 2 {
		t.Errorf("ftrace sys slowdown = %v, want > 2x", s)
	}
	// Real time: ftrace run dominates, fmeter close to vanilla.
	if float64(byCfg[Ftrace].Real) < 1.3*float64(byCfg[Vanilla].Real) {
		t.Error("ftrace compile should be much slower in real time")
	}
	if float64(byCfg[Fmeter].Real) > 1.1*float64(byCfg[Vanilla].Real) {
		t.Error("fmeter compile should stay close to vanilla in real time")
	}
}

// quickData caches a small workload corpus across the ML tests.
var quickData *WorkloadData

func getQuickData(t *testing.T) *WorkloadData {
	t.Helper()
	if quickData == nil {
		data, err := CollectWorkloadData(QuickMLParams())
		if err != nil {
			t.Fatal(err)
		}
		quickData = data
	}
	return quickData
}

func TestTable4QuickAccuracy(t *testing.T) {
	data := getQuickData(t)
	res, err := RunTable4(data.Set, QuickMLParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("groupings = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		cv := row.CV
		if cv.MeanAccuracy < 0.93 {
			t.Errorf("%s: accuracy %v below the paper's regime", row.Grouping.Name, cv.MeanAccuracy)
		}
		if cv.MeanAccuracy <= cv.Baseline {
			t.Errorf("%s: accuracy %v does not beat baseline %v", row.Grouping.Name, cv.MeanAccuracy, cv.Baseline)
		}
	}
	// One-vs-rest groupings have ~2/3 baselines; pairwise ~1/2.
	if b := res.Rows[0].CV.Baseline; b < 0.45 || b > 0.55 {
		t.Errorf("pairwise baseline = %v", b)
	}
	if b := res.Rows[3].CV.Baseline; b < 0.6 || b > 0.72 {
		t.Errorf("one-vs-rest baseline = %v", b)
	}
	if !strings.Contains(res.Render(), "Baseline") {
		t.Error("render missing header")
	}
}

func TestTable5QuickAccuracy(t *testing.T) {
	p := QuickMLParams()
	set, err := CollectDriverSignatures(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTable5(set, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groupings = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.CV.MeanAccuracy < 0.9 {
			t.Errorf("%s: accuracy %v; driver variants should be separable", row.Grouping.Name, row.CV.MeanAccuracy)
		}
	}
}

func TestFig4PerfectRootSplit(t *testing.T) {
	data := getQuickData(t)
	res, err := RunFig4(data.Set, "scp", "kcompile", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Dendrogram.Leaves()); got != 20 {
		t.Fatalf("leaves = %d, want 20", got)
	}
	if !res.PerfectRootSplit {
		t.Error("root split should separate scp from kcompile")
	}
	s := res.Dendrogram.String()
	if !strings.Contains(s, "(") || !strings.Contains(s, "19") {
		t.Errorf("dendrogram render looks wrong: %s", s)
	}
}

func TestFig5PurityHigh(t *testing.T) {
	data := getQuickData(t)
	res, err := RunFig5(data.Set, QuickClusterParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4 permutations", len(res.Series))
	}
	for _, s := range res.Series {
		for _, pt := range s.Points {
			if pt.Purity < 0.75 || pt.Purity > 1.0+1e-9 {
				t.Errorf("%v n=%d: purity %v outside the paper's regime", s.Classes, pt.X, pt.Purity)
			}
		}
	}
	if res.Series[0].K != 3 || res.Series[1].K != 2 {
		t.Error("K must equal the true class count per permutation")
	}
}

func TestFig6PurityConvergesWithK(t *testing.T) {
	data := getQuickData(t)
	p := QuickClusterParams()
	p.Ks = []int{2, 4, 8, 12}
	res, err := RunFig6(data.Set, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		first := s.Points[0].Purity
		last := s.Points[len(s.Points)-1].Purity
		if last < first-1e-9 {
			t.Errorf("n=%d: purity fell from %v to %v as K grew", s.SampleSize, first, last)
		}
		if last < 0.97 {
			t.Errorf("n=%d: purity %v should converge toward 1.0 at high K", s.SampleSize, last)
		}
	}
	if _, err := RunFig6(data.Set, ClusterParams{Runs: 1, SampleSizes: []int{5}}); err == nil {
		t.Error("empty K sweep should fail")
	}
}

func TestAblationCounters(t *testing.T) {
	res, err := RunAblationCounters(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Ordering: vanilla <= fmeter < shared atomic < ring buffer < kprobes.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Elapsed <= res.Rows[i-1].Elapsed {
			t.Errorf("counter design ordering broken at %s: %+v", res.Rows[i].Backend, res.Rows)
		}
	}
	// Kprobes pays an order of magnitude over the Fmeter stub per call —
	// the §3 justification for building on mcount.
	if res.Rows[4].Slowdown < 3*res.Rows[1].Slowdown {
		t.Errorf("kprobes (%v) should dwarf fmeter (%v)", res.Rows[4].Slowdown, res.Rows[1].Slowdown)
	}
}

func TestAblationHotCache(t *testing.T) {
	res, err := RunAblationHotCache(1, []int{8, 64, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prevHit := -1.0
	for _, row := range res.Rows {
		if row.HitRate < prevHit {
			t.Errorf("hit rate should grow with N: %+v", res.Rows)
		}
		prevHit = row.HitRate
	}
	// A large-enough cache must beat the flat stub.
	last := res.Rows[len(res.Rows)-1]
	if last.Speedup <= 1 {
		t.Errorf("topN=%d speedup = %v, want > 1", last.TopN, last.Speedup)
	}
	if last.HitRate < 0.5 {
		t.Errorf("topN=%d hit rate = %v; power law should concentrate calls", last.TopN, last.HitRate)
	}
}

func TestAblationWeighting(t *testing.T) {
	data := getQuickData(t)
	res, err := RunAblationWeighting(data, QuickMLParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Accuracy < 0.9 {
			t.Errorf("%s: accuracy %v", row.Scheme, row.Accuracy)
		}
	}
}

func TestAblationRings(t *testing.T) {
	res, err := RunAblationRings(10000, 256, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	locked, cas := res.Rows[0], res.Rows[1]
	// The lagging consumer forces loss in both; the locked ring loses old
	// records (overwrite), the CAS ring rejects new ones (drop).
	if locked.Lost == 0 || cas.Lost == 0 {
		t.Error("lagging consumer should force record loss in both variants")
	}
	if locked.Writes != 10000 {
		t.Errorf("locked ring writes = %d; overwrite mode accepts everything", locked.Writes)
	}
	if cas.Writes >= 10000 {
		t.Error("cas ring should have rejected some writes")
	}
	if _, err := RunAblationRings(0, 1, 1); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(TracerKind(42), 1, -1, -1); err == nil {
		t.Error("unknown tracer should fail")
	}
	sys, err := NewSystem(Fmeter, 1, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Fm == nil || sys.Col == nil {
		t.Error("fmeter system should expose backend and collector")
	}
	vsys, err := NewSystem(Vanilla, 1, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if vsys.Fm != nil || vsys.Ft != nil {
		t.Error("vanilla system should not carry tracer backends")
	}
}

func TestCompactDimsPreservesDistances(t *testing.T) {
	data := getQuickData(t)
	sigs := data.Set.Sigs[:10]
	compact := CompactDims(sigs)
	if len(compact) != len(sigs) {
		t.Fatal("lost signatures")
	}
	if compact[0].Dim() >= sigs[0].Dim() {
		t.Error("compaction did not reduce dimensionality")
	}
	// Pairwise dot products preserved — bit-identical, since compaction
	// is a pure support remap.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			a := sigs[i].W.Dot(sigs[j].W)
			b := compact[i].W.Dot(compact[j].W)
			if a != b {
				t.Fatalf("dot product changed: %v vs %v", a, b)
			}
		}
	}
}
