package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig1Result is the boot-time rank/count curve of Figure 1: kernel
// function call counts during boot-up, sorted by rank, following a
// power law.
type Fig1Result struct {
	// Counts is the invocation count per rank (rank = index + 1),
	// descending.
	Counts []float64
	// Functions is the number of functions with non-zero counts.
	Functions int
	// TotalCalls is the total invocations during the boot phase.
	TotalCalls float64
	// Fit is the least-squares power-law fit in log-log space.
	Fit stats.PowerLawFit
}

// RunFig1 boots a simulated machine under the Fmeter tracer and collects
// the full-table invocation counts of the boot phase.
func RunFig1(seed int64) (*Fig1Result, error) {
	sys, err := NewSystem(Fmeter, seed, -1, -1)
	if err != nil {
		return nil, err
	}
	run, err := workload.NewRunner(sys.Eng, workload.Boot(), seed+1)
	if err != nil {
		return nil, err
	}
	if _, err := run.RunInterval(2 * time.Second); err != nil {
		return nil, err
	}
	snap := sys.Fm.Snapshot()
	counts := make([]float64, 0, len(snap))
	var total float64
	for _, c := range snap {
		if c > 0 {
			counts = append(counts, float64(c))
			total += float64(c)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
	fit, err := stats.FitPowerLaw(counts)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{
		Counts:     counts,
		Functions:  len(counts),
		TotalCalls: total,
		Fit:        fit,
	}, nil
}

// Render prints a log-log summary of the curve: counts at decade ranks,
// like reading points off Figure 1's axes.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: kernel function call count during boot-up\n")
	fmt.Fprintf(&b, "functions invoked: %d, total calls: %.0f\n", r.Functions, r.TotalCalls)
	fmt.Fprintf(&b, "power-law fit: count ~ rank^-%.3f (R^2 = %.4f)\n", r.Fit.Alpha, r.Fit.R2)
	fmt.Fprintf(&b, "%-12s %s\n", "rank", "call count")
	for _, rank := range []int{1, 10, 100, 1000, len(r.Counts)} {
		if rank <= len(r.Counts) {
			fmt.Fprintf(&b, "%-12d %.0f\n", rank, r.Counts[rank-1])
		}
	}
	return b.String()
}
