package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/crossval"
	"repro/internal/svm"
	"repro/internal/workload"
)

// AblationIntervalRow is one collection-interval length in the §5
// sensitivity ablation.
type AblationIntervalRow struct {
	Interval time.Duration
	Accuracy float64
	StdDev   float64
}

// AblationIntervalResult quantifies §5's claim that the tf normalization
// makes signatures insensitive to the collection interval ("the
// term-frequency factor is normalized to prevent bias towards longer
// runs"): per-interval classification accuracy plus a cross-interval
// transfer test (train on one interval length, classify another).
type AblationIntervalResult struct {
	Rows []AblationIntervalRow
	// TransferTrain/TransferTest are the interval lengths of the
	// transfer experiment.
	TransferTrain time.Duration
	TransferTest  time.Duration
	// TransferAccuracy is the accuracy of a classifier trained on
	// TransferTrain-length signatures applied to TransferTest-length
	// signatures embedded with the training corpus's model.
	TransferAccuracy float64
}

// collectTwoClass collects scp and kcompile documents at one interval
// length.
func collectTwoClass(n int, interval time.Duration, seed int64) ([]*core.Document, int, error) {
	specs := []workload.Spec{workload.Scp(NumCPU), workload.Kcompile(NumCPU)}
	return CollectSignatureCorpus(specs, n, interval, seed)
}

// evalTwoClass cross-validates scp-vs-kcompile over the documents.
func evalTwoClass(docs []*core.Document, dim, folds int, seed int64) (*crossval.Result, error) {
	sigs, err := SignaturesFromDocs(docs, dim)
	if err != nil {
		return nil, err
	}
	compact := CompactDims(sigs)
	x := SparseVecs(compact)
	var y []float64
	var pos, neg []int
	for i, s := range compact {
		if s.Label == "scp" {
			pos = append(pos, i)
			y = append(y, 1)
		} else {
			neg = append(neg, i)
			y = append(y, -1)
		}
	}
	kf, err := crossval.PaperKFold(pos, neg, folds, seed)
	if err != nil {
		return nil, err
	}
	return crossval.EvaluateSVM(x, y, kf, []float64{1, 10}, svm.DefaultPolynomial(), seed)
}

// RunAblationInterval sweeps the daemon's collection interval and runs the
// cross-interval transfer test.
func RunAblationInterval(perClass, folds int, seed int64, intervals []time.Duration) (*AblationIntervalResult, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second, 30 * time.Second}
	}
	if perClass < folds {
		return nil, fmt.Errorf("experiments: perClass %d < folds %d", perClass, folds)
	}
	res := &AblationIntervalResult{}
	for ii, interval := range intervals {
		docs, dim, err := collectTwoClass(perClass, interval, seed+int64(ii)*7777)
		if err != nil {
			return nil, err
		}
		cv, err := evalTwoClass(docs, dim, folds, seed+int64(ii))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationIntervalRow{
			Interval: interval,
			Accuracy: cv.MeanAccuracy,
			StdDev:   cv.StdAccuracy,
		})
	}

	// Transfer: train on the longest interval's corpus, classify the
	// shortest interval's documents through the training model. If tf
	// normalization works, run length cancels and the classifier carries
	// over.
	longest, shortest := intervals[0], intervals[0]
	for _, iv := range intervals {
		if iv > longest {
			longest = iv
		}
		if iv < shortest {
			shortest = iv
		}
	}
	res.TransferTrain, res.TransferTest = longest, shortest

	trainDocs, dim, err := collectTwoClass(perClass, longest, seed+111111)
	if err != nil {
		return nil, err
	}
	corpus, err := core.NewCorpus(dim)
	if err != nil {
		return nil, err
	}
	for _, d := range trainDocs {
		if err := corpus.Add(d); err != nil {
			return nil, err
		}
	}
	trainSigs, model, err := corpus.Signatures()
	if err != nil {
		return nil, err
	}
	core.Normalize(trainSigs)
	var y []float64
	for _, s := range trainSigs {
		if s.Label == "scp" {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	clf, err := svm.TrainSparse(SparseVecs(trainSigs), y, svm.Config{C: 10, Seed: seed})
	if err != nil {
		return nil, err
	}

	testDocs, _, err := collectTwoClass(perClass, shortest, seed+222222)
	if err != nil {
		return nil, err
	}
	// Embed the whole test corpus through the training model, then score
	// it in one batched prediction pass.
	testSigs, err := model.TransformAll(testDocs)
	if err != nil {
		return nil, err
	}
	core.Normalize(testSigs)
	preds := clf.PredictBatch(SparseVecs(testSigs), 0)
	correct := 0
	for i, d := range testDocs {
		want := -1.0
		if d.Label == "scp" {
			want = 1
		}
		if preds[i] == want {
			correct++
		}
	}
	res.TransferAccuracy = float64(correct) / float64(len(testDocs))
	return res, nil
}

// Render prints the interval sensitivity table.
func (r *AblationIntervalResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation A5: collection-interval sensitivity (scp vs kcompile, §5)\n")
	widths := []int{12, 18}
	renderRow(&b, widths, "Interval", "Accuracy (%)")
	for _, row := range r.Rows {
		renderRow(&b, widths, row.Interval.String(),
			fmt.Sprintf("%.2f±%.2f", 100*row.Accuracy, 100*row.StdDev))
	}
	fmt.Fprintf(&b, "transfer: trained on %v intervals, tested on %v intervals: %.2f%%\n",
		r.TransferTrain, r.TransferTest, 100*r.TransferAccuracy)
	return b.String()
}
