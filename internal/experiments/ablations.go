package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/crossval"
	"repro/internal/kernel"
	"repro/internal/ringbuf"
	"repro/internal/svm"
	"repro/internal/trace"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// AblationCounterRow is one backend in the counter-design ablation (A1):
// why Figure 3's per-CPU slots beat the alternatives.
type AblationCounterRow struct {
	Backend  string
	Elapsed  time.Duration
	Slowdown float64
}

// AblationCounterResult compares per-CPU slots, shared atomic counters,
// and the ring-buffer tracer on a call-dense workload.
type AblationCounterResult struct {
	Rows []AblationCounterRow
}

// RunAblationCounters drives the same op batch through each backend.
func RunAblationCounters(seed int64) (*AblationCounterResult, error) {
	st := kernel.NewSymbolTable()
	shared, err := trace.NewSharedAtomic(st, NumCPU)
	if err != nil {
		return nil, err
	}
	fm, err := trace.NewFmeter(st, NumCPU)
	if err != nil {
		return nil, err
	}
	ft, err := trace.NewFtrace(st, NumCPU, 0)
	if err != nil {
		return nil, err
	}
	kp, err := trace.NewKprobes(st, NumCPU)
	if err != nil {
		return nil, err
	}
	backends := []struct {
		name string
		b    kernel.Backend
	}{
		{"vanilla (no counting)", kernel.NopBackend()},
		{"fmeter per-CPU slots", fm},
		{"shared atomic counters", shared},
		{"ftrace ring buffer", ft},
		{"kprobes breakpoints", kp},
	}
	res := &AblationCounterResult{}
	var base time.Duration
	for _, be := range backends {
		cat, err := kernel.NewCatalog(st)
		if err != nil {
			return nil, err
		}
		eng, err := kernel.NewEngine(cat, kernel.EngineConfig{NumCPU: NumCPU, Backend: be.b, Seed: seed})
		if err != nil {
			return nil, err
		}
		elapsed, err := eng.ExecOpName(kernel.OpSimpleOpenClose, 20000)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = elapsed
		}
		res.Rows = append(res.Rows, AblationCounterRow{
			Backend:  be.name,
			Elapsed:  elapsed,
			Slowdown: float64(elapsed) / float64(base),
		})
	}
	return res, nil
}

// Render prints the counter-design comparison.
func (r *AblationCounterResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation A1: counter designs on a call-dense op (20000x open/close)\n")
	widths := []int{26, 16, 10}
	renderRow(&b, widths, "Backend", "Elapsed", "Slowdown")
	for _, row := range r.Rows {
		renderRow(&b, widths, row.Backend, row.Elapsed.String(), fmt.Sprintf("%.3f", row.Slowdown))
	}
	return b.String()
}

// AblationHotCacheRow is one hot-cache size in the §6 future-work
// ablation.
type AblationHotCacheRow struct {
	TopN    int
	HitRate float64
	Elapsed time.Duration
	Speedup float64 // vs the flat Fmeter stub
}

// AblationHotCacheResult sweeps the hot-cache size N.
type AblationHotCacheResult struct {
	FlatElapsed time.Duration
	Rows        []AblationHotCacheRow
}

// RunAblationHotCache profiles the target workload once to rank functions
// by heat ("the value of N can be experimentally chosen"), then replays
// the workload under hot-cache backends of increasing N. Because
// invocations are heavy-tailed, a small N already captures most calls.
func RunAblationHotCache(seed int64, topNs []int) (*AblationHotCacheResult, error) {
	if len(topNs) == 0 {
		topNs = []int{16, 64, 256, 1024}
	}
	st := kernel.NewSymbolTable()
	// Rank functions by a profiling run of the same workload.
	profiler, err := trace.NewFmeter(st, NumCPU)
	if err != nil {
		return nil, err
	}
	cat, err := kernel.NewCatalog(st)
	if err != nil {
		return nil, err
	}
	eng, err := kernel.NewEngine(cat, kernel.EngineConfig{NumCPU: NumCPU, Backend: profiler, Seed: seed})
	if err != nil {
		return nil, err
	}
	profRun, err := workload.NewRunner(eng, workload.Dbench(NumCPU), seed+5)
	if err != nil {
		return nil, err
	}
	if _, err := profRun.RunInterval(10 * time.Second); err != nil {
		return nil, err
	}
	counts := profiler.Snapshot()
	rank := make([]int, len(counts))
	for i := range rank {
		rank[i] = i
	}
	sort.Slice(rank, func(a, b int) bool { return counts[rank[a]] > counts[rank[b]] })

	runWith := func(b kernel.Backend) (time.Duration, error) {
		cat, err := kernel.NewCatalog(st)
		if err != nil {
			return 0, err
		}
		eng, err := kernel.NewEngine(cat, kernel.EngineConfig{NumCPU: NumCPU, Backend: b, Seed: seed + 1})
		if err != nil {
			return 0, err
		}
		run, err := workload.NewRunner(eng, workload.Dbench(NumCPU), seed+2)
		if err != nil {
			return 0, err
		}
		if _, err := run.RunInterval(10 * time.Second); err != nil {
			return 0, err
		}
		return eng.KernelTime(), nil
	}

	flat, err := trace.NewFmeter(st, NumCPU)
	if err != nil {
		return nil, err
	}
	flatElapsed, err := runWith(flat)
	if err != nil {
		return nil, err
	}
	res := &AblationHotCacheResult{FlatElapsed: flatElapsed}
	for _, n := range topNs {
		if n > len(rank) {
			n = len(rank)
		}
		hotSet := make([]kernel.FuncID, n)
		for i := 0; i < n; i++ {
			hotSet[i] = kernel.FuncID(rank[i])
		}
		hc, err := trace.NewHotCacheFmeter(st, NumCPU, hotSet)
		if err != nil {
			return nil, err
		}
		elapsed, err := runWith(hc)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationHotCacheRow{
			TopN:    n,
			HitRate: hc.HitRate(),
			Elapsed: elapsed,
			Speedup: float64(flatElapsed) / float64(elapsed),
		})
	}
	return res, nil
}

// Render prints the hot-cache sweep.
func (r *AblationHotCacheResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation A2: hot-function counter cache (§6 future work)\n")
	fmt.Fprintf(&b, "flat fmeter stub: %v\n", r.FlatElapsed)
	widths := []int{8, 10, 16, 10}
	renderRow(&b, widths, "TopN", "HitRate", "Elapsed", "Speedup")
	for _, row := range r.Rows {
		renderRow(&b, widths,
			fmt.Sprintf("%d", row.TopN),
			fmt.Sprintf("%.3f", row.HitRate),
			row.Elapsed.String(),
			fmt.Sprintf("%.3f", row.Speedup),
		)
	}
	return b.String()
}

// AblationWeightingRow is one signature weighting scheme in A3.
type AblationWeightingRow struct {
	Scheme   string
	Accuracy float64
	StdDev   float64
}

// AblationWeightingResult compares tf-idf against raw counts and tf-only
// weighting on the hardest Table 4 grouping.
type AblationWeightingResult struct {
	Grouping string
	Rows     []AblationWeightingRow
}

// RunAblationWeighting classifies scp vs kcompile signatures under three
// weighting schemes, quantifying what tf normalization and idf damping
// contribute.
func RunAblationWeighting(data *WorkloadData, p MLParams) (*AblationWeightingResult, error) {
	set := data.Set
	rawDocs := make([]vecmath.Vector, len(data.Docs))
	rawLabels := make([]string, len(data.Docs))
	for i, d := range data.Docs {
		v := vecmath.NewVector(data.Dim)
		for fn, c := range d.Counts {
			v[fn] = float64(c)
		}
		rawDocs[i] = v
		rawLabels[i] = d.Label
	}
	res := &AblationWeightingResult{Grouping: "scp(+1) vs kcompile(-1)"}

	eval := func(scheme string, x []*vecmath.Sparse, labels []string) error {
		var xs []*vecmath.Sparse
		var y []float64
		var pos, neg []int
		for i, l := range labels {
			switch l {
			case "scp":
				pos = append(pos, len(xs))
				xs = append(xs, x[i])
				y = append(y, 1)
			case "kcompile":
				neg = append(neg, len(xs))
				xs = append(xs, x[i])
				y = append(y, -1)
			}
		}
		folds, err := crossval.PaperKFold(pos, neg, p.Folds, p.Seed)
		if err != nil {
			return err
		}
		cv, err := crossval.EvaluateSVM(xs, y, folds, p.CGrid, svm.DefaultPolynomial(), p.Seed)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, AblationWeightingRow{
			Scheme: scheme, Accuracy: cv.MeanAccuracy, StdDev: cv.StdAccuracy,
		})
		return nil
	}

	// tf-idf (the paper's embedding).
	tfidf := CompactDims(set.Sigs)
	if err := eval("tf-idf (paper)", SparseVecs(tfidf), LabelsOf(tfidf)); err != nil {
		return nil, err
	}
	// Raw counts, L2-normalized.
	raw := make([]*vecmath.Sparse, len(rawDocs))
	for i, v := range rawDocs {
		raw[i] = vecmath.DenseToSparse(v.Normalized())
	}
	if err := eval("raw counts (L2)", raw, rawLabels); err != nil {
		return nil, err
	}
	// tf only: counts normalized by document length, then L2.
	tf := make([]*vecmath.Sparse, len(rawDocs))
	for i, v := range rawDocs {
		var total float64
		for _, c := range v {
			total += c
		}
		t := v.Clone()
		if total > 0 {
			t.Scale(1 / total)
		}
		tf[i] = vecmath.DenseToSparse(t.Normalize())
	}
	if err := eval("tf only (L2)", tf, rawLabels); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the weighting comparison.
func (r *AblationWeightingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A3: signature weighting schemes on %s\n", r.Grouping)
	widths := []int{20, 18}
	renderRow(&b, widths, "Scheme", "Accuracy (%)")
	for _, row := range r.Rows {
		renderRow(&b, widths, row.Scheme, fmt.Sprintf("%.2f±%.2f", 100*row.Accuracy, 100*row.StdDev))
	}
	return b.String()
}

// AblationRingRow is one ring-buffer variant in A4.
type AblationRingRow struct {
	Ring       string
	Writes     uint64
	Lost       uint64 // overwrites or drops
	DrainTotal int
}

// AblationRingResult compares the lock-based and CAS ring buffers under
// identical record streams (§3's wait-free debate).
type AblationRingResult struct {
	Rows []AblationRingRow
}

// RunAblationRings pushes the same synthetic record stream through both
// ring variants with a lagging consumer.
func RunAblationRings(records, capacity, drainEvery int) (*AblationRingResult, error) {
	if records < 1 || capacity < 1 || drainEvery < 1 {
		return nil, fmt.Errorf("experiments: ring ablation parameters must be positive")
	}
	locked, err := ringbuf.NewLocked(capacity)
	if err != nil {
		return nil, err
	}
	cas, err := ringbuf.NewCAS(capacity)
	if err != nil {
		return nil, err
	}
	res := &AblationRingResult{}
	for _, variant := range []struct {
		name string
		r    ringbuf.Ring
	}{{"locked (overwrite)", locked}, {"cas (drop-on-full)", cas}} {
		drained := 0
		for i := 0; i < records; i++ {
			variant.r.Write(ringbuf.Record{FnAddr: uint64(i), TimeNS: uint64(i)})
			if (i+1)%drainEvery == 0 {
				drained += variant.r.Drain(func(ringbuf.Record) {})
			}
		}
		drained += variant.r.Drain(func(ringbuf.Record) {})
		st := variant.r.Stats()
		res.Rows = append(res.Rows, AblationRingRow{
			Ring:       variant.name,
			Writes:     st.Writes,
			Lost:       st.Overwrites + st.Drops,
			DrainTotal: drained,
		})
	}
	return res, nil
}

// Render prints the ring comparison.
func (r *AblationRingResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation A4: ring buffer variants with a lagging consumer\n")
	widths := []int{20, 12, 12, 12}
	renderRow(&b, widths, "Ring", "Writes", "Lost", "Drained")
	for _, row := range r.Rows {
		renderRow(&b, widths, row.Ring,
			fmt.Sprintf("%d", row.Writes),
			fmt.Sprintf("%d", row.Lost),
			fmt.Sprintf("%d", row.DrainTotal),
		)
	}
	return b.String()
}
