package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Fig4Result is the hierarchical clustering demonstration of Figure 4:
// a single-linkage dendrogram over 20 randomly chosen signatures, 10 from
// scp (indices 0-9) and 10 from kcompile (indices 10-19). Because the
// sample is random (the paper shows one draw), the experiment repeats the
// draw and reports how often the ideal outcome appears; the rendered
// dendrogram is the first perfect draw (or the last draw if none).
type Fig4Result struct {
	// Dendrogram is the agglomeration tree of the rendered draw.
	Dendrogram *cluster.Dendrogram
	// PerfectRootSplit reports whether the rendered draw's two subtrees
	// under the root partition the classes exactly — "the ideal scenario
	// for two distinct classes".
	PerfectRootSplit bool
	// Labels maps leaf index to class label for the rendered draw.
	Labels []string
	// Attempts and PerfectCount summarize the repeated draws.
	Attempts     int
	PerfectCount int
}

// Fig4Attempts is how many random 10+10 draws RunFig4 performs.
const Fig4Attempts = 10

// fig4Once samples 10 signatures per class and clusters them once.
func fig4Once(set *SignatureSet, classA, classB string, rng *rand.Rand) (*cluster.Dendrogram, []string, bool, error) {
	const perClass = 10
	var sample []core.Signature
	var labels []string
	for _, cls := range []string{classA, classB} {
		sigs := set.ByLabel[cls]
		if len(sigs) < perClass {
			return nil, nil, false, fmt.Errorf("experiments: class %q has %d signatures, need %d", cls, len(sigs), perClass)
		}
		idx, err := stats.SampleWithoutReplacement(rng, len(sigs), perClass)
		if err != nil {
			return nil, nil, false, err
		}
		for _, i := range idx {
			sample = append(sample, sigs[i])
			labels = append(labels, cls)
		}
	}
	compactPts := Vectors(CompactDims(sample))
	root, err := cluster.Hierarchical(compactPts, cluster.SingleLinkage)
	if err != nil {
		return nil, nil, false, err
	}
	perfect := false
	if !root.IsLeaf() {
		left := root.Left.Leaves()
		aCount := 0
		for _, l := range left {
			if l < perClass {
				aCount++
			}
		}
		perfect = aCount == 0 || aCount == len(left)
	}
	return root, labels, perfect, nil
}

// RunFig4 repeats the Figure 4 draw Fig4Attempts times.
func RunFig4(set *SignatureSet, classA, classB string, seed int64) (*Fig4Result, error) {
	rng := rand.New(rand.NewSource(seed))
	res := &Fig4Result{Attempts: Fig4Attempts}
	for i := 0; i < Fig4Attempts; i++ {
		root, labels, perfect, err := fig4Once(set, classA, classB, rng)
		if err != nil {
			return nil, err
		}
		if perfect {
			res.PerfectCount++
		}
		// Render the first perfect draw; fall back to the last draw.
		if (perfect && !res.PerfectRootSplit) || res.Dendrogram == nil {
			res.Dendrogram = root
			res.Labels = labels
			res.PerfectRootSplit = perfect
		}
	}
	return res, nil
}

// Render prints the nested-parenthesis dendrogram of Figure 4.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: hierarchical single-linkage clustering of 20 signatures\n")
	b.WriteString("leaves 0-9: first class, 10-19: second class\n")
	fmt.Fprintf(&b, "%s\n", r.Dendrogram)
	fmt.Fprintf(&b, "perfect separation below root: %v (%d/%d random draws perfect)\n",
		r.PerfectRootSplit, r.PerfectCount, r.Attempts)
	return b.String()
}

// ClusterParams sizes the K-means experiments.
type ClusterParams struct {
	// Runs is the number of resampled repetitions averaged per point
	// (the paper uses 12, error bars SEM).
	Runs int
	// SampleSizes are the per-class sample counts (Figure 5 x-axis;
	// Figure 6 series).
	SampleSizes []int
	// Ks is the target-cluster sweep of Figure 6.
	Ks []int
	// Restarts/MaxIter bound each K-means invocation.
	Restarts int
	MaxIter  int
	Seed     int64
	// Workers bounds the fan-out across the resampled repetitions (0 =
	// one per CPU, <0 = sequential). Each (series, sample-size, run)
	// cell derives its own seed, so the figures are bit-identical at any
	// worker count.
	Workers int
	// Sparse enables the O(nnz) norm-cached K-means assignment step.
	Sparse bool
}

// DefaultFig5Params matches the paper's Figure 5 axes.
func DefaultFig5Params() ClusterParams {
	return ClusterParams{
		Runs:        12,
		SampleSizes: []int{20, 60, 100, 140, 180, 220},
		Restarts:    4,
		MaxIter:     60,
		Seed:        1,
	}
}

// DefaultFig6Params matches the paper's Figure 6 axes.
func DefaultFig6Params() ClusterParams {
	p := ClusterParams{
		Runs:        8,
		SampleSizes: []int{60, 140, 220},
		Restarts:    2,
		MaxIter:     40,
		Seed:        1,
	}
	for k := 2; k <= 20; k++ {
		p.Ks = append(p.Ks, k)
	}
	return p
}

// QuickClusterParams is a scaled-down variant for tests.
func QuickClusterParams() ClusterParams {
	return ClusterParams{
		Runs:        3,
		SampleSizes: []int{10, 20},
		Ks:          []int{2, 3, 4},
		Restarts:    2,
		MaxIter:     30,
		Seed:        1,
	}
}

// PurityPoint is one (x, purity) point with its uncertainty.
type PurityPoint struct {
	X      int // per-class sample count (Fig 5) or target K (Fig 6)
	Purity float64
	SEM    float64
}

// Fig5Series is the purity curve of one workload permutation.
type Fig5Series struct {
	Classes []string
	K       int
	Points  []PurityPoint
}

// Fig5Result holds all four permutations of Figure 5.
type Fig5Result struct {
	Series []Fig5Series
}

// purityOfSample draws n signatures per class, clusters with K-means into
// k clusters, and returns the purity. The seed fully determines the draw
// and the clustering, so one repetition is a pure function of its cell
// coordinates — the property the parallel sweeps rely on.
func purityOfSample(set *SignatureSet, classes []string, n, k int, cfg ClusterParams, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	var sigs []core.Signature
	for _, cls := range classes {
		pool := set.ByLabel[cls]
		if len(pool) < n {
			return 0, fmt.Errorf("experiments: class %q has %d signatures, need %d", cls, len(pool), n)
		}
		idx, err := stats.SampleWithoutReplacement(rng, len(pool), n)
		if err != nil {
			return 0, err
		}
		for _, i := range idx {
			sigs = append(sigs, pool[i])
		}
	}
	compact := CompactDims(sigs)
	kcfg := cluster.KMeansConfig{
		K: k, Restarts: cfg.Restarts, MaxIter: cfg.MaxIter, Seed: rng.Int63(),
		Workers: -1,
	}
	var res *cluster.KMeansResult
	var err error
	if cfg.Sparse {
		// Sparse-first: reuse the compacted signatures' canonical forms
		// instead of re-extracting them from a dense materialization.
		res, err = cluster.KMeansSparse(SparseVecs(compact), kcfg)
	} else {
		res, err = cluster.KMeans(Vectors(compact), kcfg)
	}
	if err != nil {
		return 0, err
	}
	return metrics.Purity(res.Assign, LabelsOf(compact))
}

// RunFig5 regenerates Figure 5: K-means purity as a function of the
// number of sampled vectors per class, for all four permutations of the
// three workloads (K set to the true class count). Every (permutation,
// sample-size, run) cell derives its own seed from its coordinates, so
// the full sweep flattens into one deterministic fan-out; means and SEMs
// reduce over runs in run order.
func RunFig5(set *SignatureSet, p ClusterParams) (*Fig5Result, error) {
	perms := [][]string{
		{"scp", "kcompile", "dbench"},
		{"scp", "kcompile"},
		{"scp", "dbench"},
		{"kcompile", "dbench"},
	}
	cells := len(perms) * len(p.SampleSizes) * p.Runs
	purities, err := parallel.Map(p.Workers, cells, func(t int) (float64, error) {
		run := t % p.Runs
		ni := (t / p.Runs) % len(p.SampleSizes)
		si := t / (p.Runs * len(p.SampleSizes))
		classes := perms[si]
		seed := parallel.SplitSeed(p.Seed, 5, int64(si), int64(ni), int64(run))
		return purityOfSample(set, classes, p.SampleSizes[ni], len(classes), p, seed)
	})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	for si, classes := range perms {
		series := Fig5Series{Classes: classes, K: len(classes)}
		for ni, n := range p.SampleSizes {
			lo := (si*len(p.SampleSizes) + ni) * p.Runs
			ps := purities[lo : lo+p.Runs]
			series.Points = append(series.Points, PurityPoint{
				X: n, Purity: stats.Mean(ps), SEM: stats.SEM(ps),
			})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Render prints the purity curves.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: K-means cluster purity vs #sampled vectors per class (mean±SEM)\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%s (K=%d):\n", strings.Join(s.Classes, ", "), s.K)
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "  n=%-4d purity=%.4f±%.4f\n", pt.X, pt.Purity, pt.SEM)
		}
	}
	return b.String()
}

// Fig6Series is the purity-vs-K curve for one sample size.
type Fig6Series struct {
	SampleSize int
	Points     []PurityPoint
}

// Fig6Result holds Figure 6: purity against the number of target clusters
// for scp and dbench signatures (2 actual classes).
type Fig6Result struct {
	Series []Fig6Series
}

// RunFig6 regenerates Figure 6: purity converges to 1.0 as K grows past
// the true class count, because a few extra clusters absorb the
// borderline signatures.
func RunFig6(set *SignatureSet, p ClusterParams) (*Fig6Result, error) {
	classes := []string{"scp", "dbench"}
	if len(p.Ks) == 0 {
		return nil, fmt.Errorf("experiments: Fig 6 needs a K sweep")
	}
	cells := len(p.SampleSizes) * len(p.Ks) * p.Runs
	purities, err := parallel.Map(p.Workers, cells, func(t int) (float64, error) {
		run := t % p.Runs
		ki := (t / p.Runs) % len(p.Ks)
		ni := t / (p.Runs * len(p.Ks))
		seed := parallel.SplitSeed(p.Seed, 6, int64(ni), int64(ki), int64(run))
		return purityOfSample(set, classes, p.SampleSizes[ni], p.Ks[ki], p, seed)
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	for ni, n := range p.SampleSizes {
		series := Fig6Series{SampleSize: n}
		for ki, k := range p.Ks {
			lo := (ni*len(p.Ks) + ki) * p.Runs
			ps := purities[lo : lo+p.Runs]
			series.Points = append(series.Points, PurityPoint{
				X: k, Purity: stats.Mean(ps), SEM: stats.SEM(ps),
			})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Render prints the purity-vs-K curves.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: K-means purity vs target clusters K (scp+dbench, 2 true classes)\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%d sampled vectors per class:\n", s.SampleSize)
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "  K=%-3d purity=%.4f±%.4f\n", pt.X, pt.Purity, pt.SEM)
		}
	}
	return b.String()
}
