package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/crossval"
	"repro/internal/driver"
	"repro/internal/parallel"
	"repro/internal/svm"
	"repro/internal/workload"
)

// MLParams sizes the learning experiments. Defaults follow the paper:
// roughly 250 signatures per class collected every 10 seconds, 10-fold
// cross validation for the workload groupings and 8-fold for the driver
// comparisons.
type MLParams struct {
	PerClass int
	Interval time.Duration
	Folds    int
	Seed     int64
	CGrid    []float64
	// Workers bounds the host-side fan-out of corpus collection, the
	// grouping sweep, and cross validation (0 = one per CPU, <0 =
	// sequential). Table results are bit-identical at any worker count.
	Workers int
}

// DefaultMLParams returns the paper-scale parameters.
func DefaultMLParams() MLParams {
	return MLParams{PerClass: 250, Interval: daemonInterval, Folds: 10, Seed: 1, CGrid: crossval.DefaultCGrid()}
}

// QuickMLParams returns a scaled-down variant for tests.
func QuickMLParams() MLParams {
	return MLParams{PerClass: 40, Interval: daemonInterval, Folds: 5, Seed: 1, CGrid: []float64{1, 10}}
}

// daemonInterval is the collection interval of the classification
// experiments ("the Fmeter logging daemon collected the signatures every
// 10 seconds").
const daemonInterval = 10 * time.Second

// SignatureSet is a labeled, unit-ball-normalized signature corpus keyed
// by class label.
type SignatureSet struct {
	Sigs    []core.Signature
	ByLabel map[string][]core.Signature
}

// newSignatureSet indexes signatures by label.
func newSignatureSet(sigs []core.Signature) *SignatureSet {
	set := &SignatureSet{Sigs: sigs, ByLabel: make(map[string][]core.Signature)}
	for _, s := range sigs {
		set.ByLabel[s.Label] = append(set.ByLabel[s.Label], s)
	}
	return set
}

// WorkloadData bundles the raw documents of a collection run with their
// embedded signature set (the ablations need both representations).
type WorkloadData struct {
	Docs []*core.Document
	Dim  int
	Set  *SignatureSet
}

// CollectWorkloadSpecs returns the three-workload specs of §4.2 (scp,
// kcompile, dbench) at the paper's testbed width.
func CollectWorkloadSpecs() []workload.Spec {
	return []workload.Spec{
		workload.Scp(NumCPU),
		workload.Kcompile(NumCPU),
		workload.Dbench(NumCPU),
	}
}

// CollectWorkloadData collects the three-workload corpus of §4.2 (scp,
// kcompile, dbench), keeping both raw documents and embedded signatures.
func CollectWorkloadData(p MLParams) (*WorkloadData, error) {
	specs := CollectWorkloadSpecs()
	docs, dim, err := CollectSignatureCorpusWorkers(specs, p.PerClass, p.Interval, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	sigs, err := SignaturesFromDocs(docs, dim)
	if err != nil {
		return nil, err
	}
	return &WorkloadData{Docs: docs, Dim: dim, Set: newSignatureSet(sigs)}, nil
}

// CollectWorkloadSignatures collects the three-workload corpus and returns
// the embedded signature set.
func CollectWorkloadSignatures(p MLParams) (*SignatureSet, error) {
	data, err := CollectWorkloadData(p)
	if err != nil {
		return nil, err
	}
	return data.Set, nil
}

// CollectDriverSignatures collects the Table 5 corpus: netperf receive
// under the three myri10ge variants.
func CollectDriverSignatures(p MLParams) (*SignatureSet, error) {
	docs, dim, err := CollectDriverCorpusWorkers(driver.Variants(), p.PerClass, p.Interval, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	sigs, err := SignaturesFromDocs(docs, dim)
	if err != nil {
		return nil, err
	}
	return newSignatureSet(sigs), nil
}

// Grouping is one binary classification task: the labels assigned +1 and
// the labels assigned -1.
type Grouping struct {
	Name string
	Pos  []string
	Neg  []string
}

// Table4Groupings returns the paper's six groupings in table order.
func Table4Groupings() []Grouping {
	return []Grouping{
		{"dbench(+1), kcompile(-1)", []string{"dbench"}, []string{"kcompile"}},
		{"scp(+1), kcompile(-1)", []string{"scp"}, []string{"kcompile"}},
		{"scp(+1), dbench(-1)", []string{"scp"}, []string{"dbench"}},
		{"dbench(+1), kcompile+scp(-1)", []string{"dbench"}, []string{"kcompile", "scp"}},
		{"scp(+1), kcompile+dbench(-1)", []string{"scp"}, []string{"kcompile", "dbench"}},
		{"kcompile(+1), scp+dbench(-1)", []string{"kcompile"}, []string{"scp", "dbench"}},
	}
}

// Table5Groupings returns the paper's three driver comparisons.
func Table5Groupings() []Grouping {
	v143, v151, noLRO := driver.V143.String(), driver.V151.String(), driver.V151NoLRO.String()
	return []Grouping{
		{"myri10ge 1.4.3(+1), 1.5.1(-1)", []string{v143}, []string{v151}},
		{"myri10ge 1.5.1(+1), 1.5.1 LRO disabled(-1)", []string{v151}, []string{noLRO}},
		{"myri10ge 1.4.3(+1), 1.5.1 LRO disabled(-1)", []string{v143}, []string{noLRO}},
	}
}

// GroupingResult is one table row: the grouping plus the cross-validated
// test metrics.
type GroupingResult struct {
	Grouping Grouping
	CV       *crossval.Result
}

// MLTableResult is a Table 4 / Table 5 style result.
type MLTableResult struct {
	Title string
	Folds int
	Rows  []GroupingResult
}

// EvaluateGroupings runs the paper's protocol for each grouping over the
// signature set. Groupings are independent tasks — fold splits and SMO
// seeds depend only on the grouping index — so the sweep fans out over
// p.Workers with rows collected in table order; the result is
// bit-identical at any worker count.
func EvaluateGroupings(title string, set *SignatureSet, groupings []Grouping, p MLParams) (*MLTableResult, error) {
	// Fan out at one level only: across groupings when there are several,
	// inside the cross validation otherwise — nesting both would put
	// groupings × folds × grid CPU-bound goroutines on the cores at once.
	innerWorkers := -1
	if len(groupings) == 1 {
		innerWorkers = p.Workers
	}
	rows, err := parallel.Map(p.Workers, len(groupings), func(gi int) (GroupingResult, error) {
		g := groupings[gi]
		var sigs []core.Signature
		var y []float64
		for _, l := range g.Pos {
			cls := set.ByLabel[l]
			if len(cls) == 0 {
				return GroupingResult{}, fmt.Errorf("experiments: no signatures labeled %q", l)
			}
			for _, s := range cls {
				sigs = append(sigs, s)
				y = append(y, 1)
			}
		}
		for _, l := range g.Neg {
			cls := set.ByLabel[l]
			if len(cls) == 0 {
				return GroupingResult{}, fmt.Errorf("experiments: no signatures labeled %q", l)
			}
			for _, s := range cls {
				sigs = append(sigs, s)
				y = append(y, -1)
			}
		}
		// Per-grouping dimension compaction: distances and kernels are
		// unchanged, SVM training gets a ~5x speedup. The compacted
		// sparse forms feed the SVM directly — no dense intermediate.
		compact := CompactDims(sigs)
		x := SparseVecs(compact)
		var pos, neg []int
		for i, yy := range y {
			if yy > 0 {
				pos = append(pos, i)
			} else {
				neg = append(neg, i)
			}
		}
		folds, err := crossval.PaperKFold(pos, neg, p.Folds, p.Seed+int64(gi))
		if err != nil {
			return GroupingResult{}, fmt.Errorf("experiments: grouping %s: %w", g.Name, err)
		}
		cv, err := crossval.EvaluateSVMWorkers(x, y, folds, p.CGrid, svm.DefaultPolynomial(), p.Seed+int64(gi)*17, innerWorkers)
		if err != nil {
			return GroupingResult{}, fmt.Errorf("experiments: grouping %s: %w", g.Name, err)
		}
		return GroupingResult{Grouping: g, CV: cv}, nil
	})
	if err != nil {
		return nil, err
	}
	return &MLTableResult{Title: title, Folds: p.Folds, Rows: rows}, nil
}

// RunTable4 regenerates Table 4: SVM performance distinguishing the scp /
// kcompile / dbench workloads.
func RunTable4(set *SignatureSet, p MLParams) (*MLTableResult, error) {
	return EvaluateGroupings("Table 4: SVM performance on workload signatures", set, Table4Groupings(), p)
}

// RunTable5 regenerates Table 5: SVM performance distinguishing the
// myri10ge driver variants. The paper uses 8 folds here.
func RunTable5(set *SignatureSet, p MLParams) (*MLTableResult, error) {
	return EvaluateGroupings("Table 5: SVM performance on myri10ge driver variants", set, Table5Groupings(), p)
}

// Render prints the result in the paper's table layout: baseline accuracy
// followed by test accuracy/precision/recall as mean ± standard deviation
// over folds, in percent.
func (r *MLTableResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d-fold)\n", r.Title, r.Folds)
	widths := []int{44, 10, 16, 16, 16}
	renderRow(&b, widths, "Signature grouping", "Baseline", "Accuracy (%)", "Precision (%)", "Recall (%)")
	pct := func(mean, std float64) string {
		return fmt.Sprintf("%.2f±%.2f", 100*mean, 100*std)
	}
	for _, row := range r.Rows {
		cv := row.CV
		renderRow(&b, widths,
			row.Grouping.Name,
			fmt.Sprintf("%.3f", 100*cv.Baseline),
			pct(cv.MeanAccuracy, cv.StdAccuracy),
			pct(cv.MeanPrec, cv.StdPrec),
			pct(cv.MeanRecall, cv.StdRecall),
		)
	}
	return b.String()
}
