package experiments

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/stats"
)

// Table2Row is one configuration of the apachebench macro-benchmark:
// completed requests per second (mean ± SEM over trials) and the slowdown
// relative to vanilla.
type Table2Row struct {
	Config      TracerKind
	RPS         stats.Summary
	SlowdownPct float64
	// PaperRPS and PaperSlowdownPct are the published values for the
	// report (14215.2 / 0%, 10793.3 / 24.07%, 5524.93 / 61.13%).
	PaperRPS         float64
	PaperSlowdownPct float64
}

// Table2Result is the apachebench table.
type Table2Result struct {
	Rows []Table2Row
}

// Table 2 parameters: the paper sends 512 concurrent connections, 1000
// times in closed loop (512000 requests), 16 trials per configuration. We
// keep the trial count and scale the per-trial request count down; the
// derived requests/second is load-independent in the simulator.
const (
	table2Trials   = 16
	table2Requests = 3000
)

var table2Paper = map[TracerKind]struct {
	rps  float64
	slow float64
}{
	Vanilla: {14215.2, 0},
	Fmeter:  {10793.3, 24.07},
	Ftrace:  {5524.93, 61.13},
}

// RunTable2 measures HTTP requests/second under the three configurations.
// The benchmark is closed-loop: a fixed request count is served and the
// virtual clock provides the elapsed time; instrumentation overhead
// lengthens each request's kernel path and lowers throughput.
func RunTable2(seed int64) (*Table2Result, error) {
	res := &Table2Result{}
	for _, tracer := range []TracerKind{Vanilla, Fmeter, Ftrace} {
		var rps []float64
		for trial := 0; trial < table2Trials; trial++ {
			sys, err := NewSystem(tracer, seed+int64(trial)*31, -1, -1)
			if err != nil {
				return nil, err
			}
			op, err := sys.Cat.Op(kernel.OpHTTPRequest)
			if err != nil {
				return nil, err
			}
			elapsed, err := sys.Eng.ExecOp(op, table2Requests)
			if err != nil {
				return nil, err
			}
			// Client and server share the machine (the paper runs
			// apachebench locally "to eliminate network-induced
			// artifacts") and the kernel path serializes on shared socket
			// and accept-queue state, so throughput is the inverse of the
			// per-request kernel path cost.
			rps = append(rps, table2Requests/elapsed.Seconds())
		}
		sum, err := stats.Summarize(rps)
		if err != nil {
			return nil, err
		}
		paper := table2Paper[tracer]
		res.Rows = append(res.Rows, Table2Row{
			Config: tracer, RPS: sum,
			PaperRPS: paper.rps, PaperSlowdownPct: paper.slow,
		})
	}
	base := res.Rows[0].RPS.Mean
	if base <= 0 {
		return nil, fmt.Errorf("experiments: zero vanilla throughput")
	}
	for i := range res.Rows {
		res.Rows[i].SlowdownPct = 100 * (1 - res.Rows[i].RPS.Mean/base)
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: apachebench requests per second\n")
	widths := []int{12, 22, 10, 14, 10}
	renderRow(&b, widths, "Config", "Requests/s", "Slowdown", "Paper req/s", "Paper slow")
	for _, row := range r.Rows {
		renderRow(&b, widths,
			row.Config.String(),
			row.RPS.String(),
			fmt.Sprintf("%.2f %%", row.SlowdownPct),
			fmt.Sprintf("%.1f", row.PaperRPS),
			fmt.Sprintf("%.2f %%", row.PaperSlowdownPct),
		)
	}
	return b.String()
}
