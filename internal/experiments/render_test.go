package experiments

import (
	"strings"
	"testing"
	"time"
)

// The Render methods produce the operator-facing reports; these tests pin
// their structure (headers, row counts, paper references).

func TestTable2Render(t *testing.T) {
	res, err := RunTable2(3)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Render()
	for _, want := range []string{"Table 2", "vanilla", "fmeter", "ftrace", "Paper req/s", "14215"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestTable3Render(t *testing.T) {
	res, err := RunTable3(3)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Render()
	for _, want := range []string{"Table 3", "real", "user", "sys", "paper sys", "fmeter"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	// time(1)-style duration formatting.
	if !strings.Contains(s, "m") || !strings.Contains(s, "s") {
		t.Error("durations not formatted like time(1)")
	}
}

func TestTable5Render(t *testing.T) {
	p := QuickMLParams()
	set, err := CollectDriverSignatures(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTable5(set, p)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Render()
	for _, want := range []string{"Table 5", "myri10ge 1.4.3", "LRO disabled", "Precision"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestFigRenders(t *testing.T) {
	data := getQuickData(t)
	cp := QuickClusterParams()
	f5, err := RunFig5(data.Set, cp)
	if err != nil {
		t.Fatal(err)
	}
	if s := f5.Render(); !strings.Contains(s, "Figure 5") || !strings.Contains(s, "scp, kcompile, dbench") {
		t.Errorf("fig5 render:\n%s", s)
	}
	f6, err := RunFig6(data.Set, cp)
	if err != nil {
		t.Fatal(err)
	}
	if s := f6.Render(); !strings.Contains(s, "Figure 6") || !strings.Contains(s, "K=2") {
		t.Errorf("fig6 render:\n%s", s)
	}
}

func TestAblationRenders(t *testing.T) {
	a1, err := RunAblationCounters(2)
	if err != nil {
		t.Fatal(err)
	}
	if s := a1.Render(); !strings.Contains(s, "kprobes breakpoints") {
		t.Errorf("a1 render:\n%s", s)
	}
	a2, err := RunAblationHotCache(2, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if s := a2.Render(); !strings.Contains(s, "HitRate") {
		t.Errorf("a2 render:\n%s", s)
	}
	data := getQuickData(t)
	a3, err := RunAblationWeighting(data, QuickMLParams())
	if err != nil {
		t.Fatal(err)
	}
	if s := a3.Render(); !strings.Contains(s, "tf-idf (paper)") {
		t.Errorf("a3 render:\n%s", s)
	}
	a4, err := RunAblationRings(1000, 64, 500)
	if err != nil {
		t.Fatal(err)
	}
	if s := a4.Render(); !strings.Contains(s, "locked (overwrite)") {
		t.Errorf("a4 render:\n%s", s)
	}
	a5, err := RunAblationInterval(10, 5, 2, []time.Duration{2 * time.Second, 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s := a5.Render(); !strings.Contains(s, "transfer") {
		t.Errorf("a5 render:\n%s", s)
	}
}

func TestTracerKindString(t *testing.T) {
	if Vanilla.String() != "vanilla" || Ftrace.String() != "ftrace" || Fmeter.String() != "fmeter" {
		t.Error("tracer names wrong")
	}
	if !strings.Contains(TracerKind(9).String(), "9") {
		t.Error("unknown tracer should render its value")
	}
}
