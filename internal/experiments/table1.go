package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Table1Row is one lmbench micro-benchmark under the three kernel
// configurations, with measured mean latency ± SEM in microseconds and the
// derived slowdown ratios, matching the paper's Table 1 columns.
type Table1Row struct {
	Test            string
	Baseline        stats.Summary // µs
	Ftrace          stats.Summary // µs
	Fmeter          stats.Summary // µs
	FtraceSlowdown  float64
	FmeterSlowdown  float64
	FtFmRatio       float64 // how much slower Ftrace is than Fmeter
	PaperFtraceSlow float64 // the paper's ratios, for the report
	PaperFmeterSlow float64
}

// Table1Result is the full lmbench table.
type Table1Result struct {
	Rows []Table1Row
	// AvgFmeterSlowdown and AvgFtraceSlowdown are the cross-test averages
	// the paper quotes in prose (1.4x and 6.69x respectively).
	AvgFmeterSlowdown float64
	AvgFtraceSlowdown float64
}

// table1Trials is how many repetitions each (test, config) cell runs; the
// op itself executes in a closed loop inside each trial.
const (
	table1Trials     = 9
	table1LoopLength = 400
)

// RunTable1 executes each of the 23 lmbench operations in a closed loop
// under vanilla, Ftrace, and Fmeter kernels, measuring virtual latency.
func RunTable1(seed int64) (*Table1Result, error) {
	tests := workload.LmbenchTests()
	res := &Table1Result{}
	var fmSum, ftSum float64
	for ti, tt := range tests {
		row := Table1Row{
			Test:            tt.Display,
			PaperFtraceSlow: tt.PaperFtraceUS / tt.PaperBaselineUS,
			PaperFmeterSlow: tt.PaperFmeterUS / tt.PaperBaselineUS,
		}
		sums := map[TracerKind]*[]float64{
			Vanilla: {}, Ftrace: {}, Fmeter: {},
		}
		for _, tracer := range []TracerKind{Vanilla, Ftrace, Fmeter} {
			for trial := 0; trial < table1Trials; trial++ {
				sys, err := NewSystem(tracer, seed+int64(ti*100+trial), -1, -1)
				if err != nil {
					return nil, err
				}
				op, err := sys.Cat.Op(tt.Op)
				if err != nil {
					return nil, err
				}
				elapsed, err := sys.Eng.ExecOp(op, table1LoopLength)
				if err != nil {
					return nil, err
				}
				perOpUS := float64(elapsed) / float64(time.Microsecond) / table1LoopLength
				*sums[tracer] = append(*sums[tracer], perOpUS)
			}
		}
		var err error
		if row.Baseline, err = stats.Summarize(*sums[Vanilla]); err != nil {
			return nil, err
		}
		if row.Ftrace, err = stats.Summarize(*sums[Ftrace]); err != nil {
			return nil, err
		}
		if row.Fmeter, err = stats.Summarize(*sums[Fmeter]); err != nil {
			return nil, err
		}
		if row.Baseline.Mean <= 0 {
			return nil, fmt.Errorf("experiments: zero baseline for %s", tt.Display)
		}
		row.FtraceSlowdown = row.Ftrace.Mean / row.Baseline.Mean
		row.FmeterSlowdown = row.Fmeter.Mean / row.Baseline.Mean
		row.FtFmRatio = row.Ftrace.Mean / row.Fmeter.Mean
		fmSum += row.FmeterSlowdown
		ftSum += row.FtraceSlowdown
		res.Rows = append(res.Rows, row)
	}
	res.AvgFmeterSlowdown = fmSum / float64(len(res.Rows))
	res.AvgFtraceSlowdown = ftSum / float64(len(res.Rows))
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: LMbench latencies (µs), vanilla vs Ftrace vs Fmeter\n")
	widths := []int{30, 18, 20, 18, 8, 8, 7}
	renderRow(&b, widths, "Test", "Baseline", "Ftrace", "Fmeter", "FtSlow", "FmSlow", "Ratio")
	for _, row := range r.Rows {
		renderRow(&b, widths,
			row.Test,
			row.Baseline.String(),
			row.Ftrace.String(),
			row.Fmeter.String(),
			fmt.Sprintf("%.3f", row.FtraceSlowdown),
			fmt.Sprintf("%.3f", row.FmeterSlowdown),
			fmt.Sprintf("%.3f", row.FtFmRatio),
		)
	}
	fmt.Fprintf(&b, "average slowdown: fmeter %.2fx, ftrace %.2fx (paper: 1.4x, 6.69x)\n",
		r.AvgFmeterSlowdown, r.AvgFtraceSlowdown)
	return b.String()
}
