package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/kernel"
)

// Table3Row is one configuration of the kernel-compile macro-benchmark:
// elapsed real, user, and sys time as the time(1) utility reports them.
type Table3Row struct {
	Config TracerKind
	Real   time.Duration
	User   time.Duration
	Sys    time.Duration
	// Paper values for the report.
	PaperReal time.Duration
	PaperUser time.Duration
	PaperSys  time.Duration
}

// Table3Result is the kernel-compile table.
type Table3Result struct {
	Rows []Table3Row
	// SysSlowdownFmeter and SysSlowdownFtrace are the sys-time slowdowns
	// the paper quotes in prose (~22% and ~420%).
	SysSlowdownFmeter float64
	SysSlowdownFtrace float64
}

// Table 3 parameters. The paper's compile is essentially sequential
// (user 47m50s within real 57m09s): real = user + sys + I/O wait.
const (
	// table3Units approximates the number of compilation units in a full
	// 2.6.28 build at the catalog's per-unit kernel cost.
	table3Units = 114000
	// table3UserPerUnit is gcc's user-mode time per unit.
	table3UserPerUnit = 25170 * time.Microsecond
	// table3IOWait is the constant I/O stall not overlapped with CPU.
	table3IOWait = 80 * time.Second
)

var table3Paper = map[TracerKind]struct{ real, user, sys time.Duration }{
	Vanilla: {57*time.Minute + 8961*time.Millisecond, 47*time.Minute + 50175*time.Millisecond, 7*time.Minute + 59642*time.Millisecond},
	Ftrace:  {89*time.Minute + 56821*time.Millisecond, 49*time.Minute + 5492*time.Millisecond, 41*time.Minute + 31300*time.Millisecond},
	Fmeter:  {56*time.Minute + 43264*time.Millisecond, 46*time.Minute + 24890*time.Millisecond, 9*time.Minute + 45817*time.Millisecond},
}

// RunTable3 compiles the simulated kernel under each configuration. User
// time is uninstrumented and constant; sys time grows with the tracer's
// per-call overhead over the compile's ~3.5e10 kernel function calls.
func RunTable3(seed int64) (*Table3Result, error) {
	res := &Table3Result{}
	for _, tracer := range []TracerKind{Vanilla, Ftrace, Fmeter} {
		sys, err := NewSystem(tracer, seed, -1, -1)
		if err != nil {
			return nil, err
		}
		op, err := sys.Cat.Op(kernel.OpCompileUnit)
		if err != nil {
			return nil, err
		}
		if _, err := sys.Eng.ExecOp(op, table3Units); err != nil {
			return nil, err
		}
		if err := sys.Eng.RecordUser(0, table3Units*table3UserPerUnit); err != nil {
			return nil, err
		}
		sysTime := sys.Eng.KernelTime()
		userTime := sys.Eng.UserTime()
		paper := table3Paper[tracer]
		res.Rows = append(res.Rows, Table3Row{
			Config:    tracer,
			Real:      userTime + sysTime + table3IOWait,
			User:      userTime,
			Sys:       sysTime,
			PaperReal: paper.real,
			PaperUser: paper.user,
			PaperSys:  paper.sys,
		})
	}
	base := res.Rows[0].Sys
	if base <= 0 {
		return nil, fmt.Errorf("experiments: zero vanilla sys time")
	}
	for _, row := range res.Rows {
		slow := float64(row.Sys)/float64(base) - 1
		switch row.Config {
		case Fmeter:
			res.SysSlowdownFmeter = slow
		case Ftrace:
			res.SysSlowdownFtrace = slow
		}
	}
	return res, nil
}

// fmtDur renders a duration like time(1): "57m8.961s".
func fmtDur(d time.Duration) string {
	m := int(d / time.Minute)
	s := d - time.Duration(m)*time.Minute
	return fmt.Sprintf("%dm%.3fs", m, s.Seconds())
}

// Render prints the table in the paper's layout.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: Linux kernel compile elapsed time\n")
	widths := []int{10, 14, 14, 14, 14, 14, 14}
	renderRow(&b, widths, "Config", "real", "user", "sys", "paper real", "paper user", "paper sys")
	for _, row := range r.Rows {
		renderRow(&b, widths,
			row.Config.String(),
			fmtDur(row.Real), fmtDur(row.User), fmtDur(row.Sys),
			fmtDur(row.PaperReal), fmtDur(row.PaperUser), fmtDur(row.PaperSys),
		)
	}
	fmt.Fprintf(&b, "sys slowdown: fmeter %.0f%%, ftrace %.0f%% (paper: ~22%%, ~420%%)\n",
		100*r.SysSlowdownFmeter, 100*r.SysSlowdownFtrace)
	return b.String()
}
