package experiments

import (
	"testing"
	"time"
)

func TestAblationIntervalSensitivity(t *testing.T) {
	res, err := RunAblationInterval(20, 5, 1, []time.Duration{2 * time.Second, 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// §5's claim: tf normalization keeps accuracy high at every interval
	// length the daemon supports (2-10 s).
	for _, row := range res.Rows {
		if row.Accuracy < 0.9 {
			t.Errorf("interval %v: accuracy %v; signatures should be interval-insensitive", row.Interval, row.Accuracy)
		}
	}
	// The strong form: a classifier trained on long intervals carries
	// over to short ones because tf cancels run length.
	if res.TransferAccuracy < 0.85 {
		t.Errorf("transfer accuracy %v; tf normalization should make this work", res.TransferAccuracy)
	}
	if res.TransferTrain != 10*time.Second || res.TransferTest != 2*time.Second {
		t.Errorf("transfer direction: %v -> %v", res.TransferTrain, res.TransferTest)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestAblationIntervalValidation(t *testing.T) {
	if _, err := RunAblationInterval(3, 5, 1, nil); err == nil {
		t.Error("perClass < folds should fail")
	}
}
