// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) against the simulated kernel substrate, plus the
// ablations DESIGN.md calls out. Each experiment returns a structured
// result and renders a text report in the paper's layout so runs can be
// compared side by side with the published numbers (EXPERIMENTS.md records
// that comparison).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/debugfs"
	"repro/internal/driver"
	"repro/internal/kernel"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// NumCPU matches the paper's testbed: a dual-socket quad-core Nehalem
// with hyperthreads, 16 logical processors.
const NumCPU = 16

// TracerKind selects the instrumentation configuration of a run.
type TracerKind int

// The paper's three kernel configurations.
const (
	Vanilla TracerKind = iota + 1
	Ftrace
	Fmeter
)

// String names the configuration as the paper's tables do.
func (k TracerKind) String() string {
	switch k {
	case Vanilla:
		return "vanilla"
	case Ftrace:
		return "ftrace"
	case Fmeter:
		return "fmeter"
	default:
		return fmt.Sprintf("tracer(%d)", int(k))
	}
}

// System is one simulated machine: symbol table, op catalog, engine with
// the chosen tracer, and (for Fmeter) the debugfs plumbing and collector.
type System struct {
	ST     *kernel.SymbolTable
	Cat    *kernel.Catalog
	Eng    *kernel.Engine
	FS     *debugfs.FS
	Tracer TracerKind
	Fm     *trace.Fmeter // non-nil iff Tracer == Fmeter
	Ft     *trace.Ftrace // non-nil iff Tracer == Ftrace
	Col    *daemon.Collector
}

// NewSystem boots a simulated machine. Jitter parameters default to the
// values used throughout the evaluation when negative.
func NewSystem(tracer TracerKind, seed int64, countJitter, latencyJitter float64) (*System, error) {
	if countJitter < 0 {
		countJitter = 0.02
	}
	if latencyJitter < 0 {
		latencyJitter = 0.01
	}
	st := kernel.NewSymbolTable()
	cat, err := kernel.NewCatalog(st)
	if err != nil {
		return nil, err
	}
	sys := &System{ST: st, Cat: cat, FS: debugfs.New(), Tracer: tracer}
	var backend kernel.Backend
	switch tracer {
	case Vanilla:
		backend = kernel.NopBackend()
	case Ftrace:
		ft, err := trace.NewFtrace(st, NumCPU, 0)
		if err != nil {
			return nil, err
		}
		if err := ft.RegisterDebugfs(sys.FS); err != nil {
			return nil, err
		}
		sys.Ft = ft
		backend = ft
	case Fmeter:
		fm, err := trace.NewFmeter(st, NumCPU)
		if err != nil {
			return nil, err
		}
		if err := fm.RegisterDebugfs(sys.FS); err != nil {
			return nil, err
		}
		sys.Fm = fm
		backend = fm
	default:
		return nil, fmt.Errorf("experiments: unknown tracer %d", int(tracer))
	}
	eng, err := kernel.NewEngine(cat, kernel.EngineConfig{
		NumCPU:        NumCPU,
		Backend:       backend,
		Seed:          seed,
		CountJitter:   countJitter,
		LatencyJitter: latencyJitter,
	})
	if err != nil {
		return nil, err
	}
	sys.Eng = eng
	if tracer == Fmeter {
		col, err := daemon.NewCollector(sys.FS, st)
		if err != nil {
			return nil, err
		}
		sys.Col = col
	}
	return sys, nil
}

// LoadDriver registers a myri10ge variant with the engine.
func (s *System) LoadDriver(v driver.Variant) error {
	mod, err := driver.New(s.ST, v)
	if err != nil {
		return err
	}
	return s.Eng.RegisterModule(mod)
}

// CollectSignatureCorpus boots a fresh Fmeter system per workload, runs
// the logging daemon for n intervals of the given length, and returns the
// labeled documents. Each workload runs "without interference from
// each-other" (§4.2.1) — on its own system instance — exactly like the
// paper's controlled collection. One worker per CPU; see
// CollectSignatureCorpusWorkers.
func CollectSignatureCorpus(specs []workload.Spec, n int, interval time.Duration, seed int64) ([]*core.Document, int, error) {
	return CollectSignatureCorpusWorkers(specs, n, interval, seed, 0)
}

// CollectSignatureCorpusWorkers is CollectSignatureCorpus with an explicit
// worker bound. Every workload runs on its own simulated machine with a
// seed derived only from its position, so the collections fan out freely;
// batches are concatenated in spec order, making the corpus bit-identical
// at any worker count.
func CollectSignatureCorpusWorkers(specs []workload.Spec, n int, interval time.Duration, seed int64, workers int) ([]*core.Document, int, error) {
	type batch struct {
		docs []*core.Document
		dim  int
	}
	batches, err := parallel.Map(workers, len(specs), func(wi int) (batch, error) {
		spec := specs[wi]
		sys, err := NewSystem(Fmeter, seed+int64(wi)*1000, -1, -1)
		if err != nil {
			return batch{}, err
		}
		run, err := workload.NewRunner(sys.Eng, spec, seed+int64(wi)*1000+1)
		if err != nil {
			return batch{}, err
		}
		body := func(d time.Duration) error {
			_, err := run.RunInterval(d)
			return err
		}
		docs, err := sys.Col.CollectSeries(spec.Name, spec.Name, n, interval, body, nil)
		if err != nil {
			return batch{}, err
		}
		return batch{docs: docs, dim: sys.ST.Len()}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	var docs []*core.Document
	dim := 0
	for _, b := range batches {
		docs = append(docs, b.docs...)
		dim = b.dim
	}
	return docs, dim, nil
}

// CollectDriverCorpus is CollectSignatureCorpus for the netperf workload
// under each myri10ge variant (Table 5's data): one fresh system per
// variant, labels are the variant names.
func CollectDriverCorpus(variants []driver.Variant, n int, interval time.Duration, seed int64) ([]*core.Document, int, error) {
	return CollectDriverCorpusWorkers(variants, n, interval, seed, 0)
}

// CollectDriverCorpusWorkers is CollectDriverCorpus with an explicit
// worker bound, parallel and deterministic exactly like
// CollectSignatureCorpusWorkers.
func CollectDriverCorpusWorkers(variants []driver.Variant, n int, interval time.Duration, seed int64, workers int) ([]*core.Document, int, error) {
	type batch struct {
		docs []*core.Document
		dim  int
	}
	batches, err := parallel.Map(workers, len(variants), func(vi int) (batch, error) {
		v := variants[vi]
		sys, err := NewSystem(Fmeter, seed+int64(vi)*1000, -1, -1)
		if err != nil {
			return batch{}, err
		}
		if err := sys.LoadDriver(v); err != nil {
			return batch{}, err
		}
		run, err := workload.NewRunner(sys.Eng, driver.NetperfRx(NumCPU), seed+int64(vi)*1000+1)
		if err != nil {
			return batch{}, err
		}
		body := func(d time.Duration) error {
			_, err := run.RunInterval(d)
			return err
		}
		docs, err := sys.Col.CollectSeries(v.String(), v.String(), n, interval, body, nil)
		if err != nil {
			return batch{}, err
		}
		return batch{docs: docs, dim: sys.ST.Len()}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	var docs []*core.Document
	dim := 0
	for _, b := range batches {
		docs = append(docs, b.docs...)
		dim = b.dim
	}
	return docs, dim, nil
}

// SignaturesFromDocs builds the tf-idf corpus over all docs, embeds them,
// and L2-normalizes into the unit ball.
func SignaturesFromDocs(docs []*core.Document, dim int) ([]core.Signature, error) {
	corpus, err := core.NewCorpus(dim)
	if err != nil {
		return nil, err
	}
	for _, d := range docs {
		if err := corpus.Add(d); err != nil {
			return nil, err
		}
	}
	sigs, _, err := corpus.Signatures()
	if err != nil {
		return nil, err
	}
	core.Normalize(sigs)
	return sigs, nil
}

// CompactDims projects signatures onto the union of their non-zero
// dimensions, dropping coordinates that are zero everywhere. Distances and
// dot products are unchanged; clustering and kernel computations get a
// ~5x dimensionality cut. The projection is a pure support remap on the
// sparse forms — index order (and hence every accumulation) is preserved,
// so the compacted weights are the originals bit for bit.
func CompactDims(sigs []core.Signature) []core.Signature {
	if len(sigs) == 0 {
		return nil
	}
	dim := sigs[0].Dim()
	used := make([]bool, dim)
	for _, s := range sigs {
		s.W.ForEach(func(i int, _ float64) { used[i] = true })
	}
	old2new := make([]int32, dim)
	compactDim := 0
	for i, u := range used {
		if u {
			old2new[i] = int32(compactDim)
			compactDim++
		}
	}
	out := make([]core.Signature, len(sigs))
	for si, s := range sigs {
		idx := make([]int32, 0, s.W.NNZ())
		val := make([]float64, 0, s.W.NNZ())
		s.W.ForEach(func(i int, x float64) {
			idx = append(idx, old2new[i])
			val = append(val, x)
		})
		w, err := vecmath.SparseFromSorted(compactDim, idx, val)
		if err != nil {
			// The remap is monotonic over validated inputs; failure here
			// is a programming error, not an input condition.
			panic(fmt.Sprintf("experiments: compact remap: %v", err))
		}
		out[si] = core.Signature{DocID: s.DocID, Label: s.Label, W: w}
	}
	return out
}

// Vectors materializes the dense view of each signature (for consumers
// doing per-component arithmetic, e.g. K-means centroid updates).
func Vectors(sigs []core.Signature) []vecmath.Vector {
	out := make([]vecmath.Vector, len(sigs))
	for i, s := range sigs {
		out[i] = s.Dense()
	}
	return out
}

// SparseVecs extracts the canonical sparse forms of signatures (shared,
// not copied).
func SparseVecs(sigs []core.Signature) []*vecmath.Sparse {
	out := make([]*vecmath.Sparse, len(sigs))
	for i, s := range sigs {
		out[i] = s.W
	}
	return out
}

// LabelsOf extracts the label slice of signatures.
func LabelsOf(sigs []core.Signature) []string {
	out := make([]string, len(sigs))
	for i, s := range sigs {
		out[i] = s.Label
	}
	return out
}

// renderRow writes fixed-width columns.
func renderRow(b *strings.Builder, widths []int, cells ...string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(fmt.Sprintf("%-*s", widths[i], c))
	}
	b.WriteByte('\n')
}
