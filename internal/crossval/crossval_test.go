package crossval

import (
	"math/rand"
	"testing"

	"repro/internal/svm"
	"repro/internal/vecmath"
)

func idxRange(lo, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func TestPaperKFoldValidation(t *testing.T) {
	if _, err := PaperKFold(idxRange(0, 10), idxRange(10, 10), 2, 1); err == nil {
		t.Error("k=2 should fail")
	}
	if _, err := PaperKFold(idxRange(0, 2), idxRange(10, 10), 5, 1); err == nil {
		t.Error("too few positives should fail")
	}
}

func TestPaperKFoldStructure(t *testing.T) {
	pos := idxRange(0, 25)
	neg := idxRange(100, 27)
	const k = 10
	folds, err := PaperKFold(pos, neg, k, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != k {
		t.Fatalf("folds = %d", len(folds))
	}
	total := len(pos) + len(neg)
	for fi, f := range folds {
		// Disjointness of train/val/test.
		seen := make(map[int]int)
		for _, i := range f.Train {
			seen[i]++
		}
		for _, i := range f.Val {
			seen[i]++
		}
		for _, i := range f.Test {
			seen[i]++
		}
		if len(seen) != total {
			t.Fatalf("fold %d covers %d of %d examples", fi, len(seen), total)
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("fold %d: example %d appears %d times", fi, i, n)
			}
		}
		// Both classes in test (pos indices < 100, neg >= 100).
		var tp, tn int
		for _, i := range f.Test {
			if i < 100 {
				tp++
			} else {
				tn++
			}
		}
		if tp == 0 || tn == 0 {
			t.Fatalf("fold %d test missing a class: +%d -%d", fi, tp, tn)
		}
	}
	// Validation fold of i is the test fold of (i+1) mod k (same member
	// set).
	asSet := func(xs []int) map[int]bool {
		s := make(map[int]bool, len(xs))
		for _, x := range xs {
			s[x] = true
		}
		return s
	}
	for i := range folds {
		val := asSet(folds[i].Val)
		next := asSet(folds[(i+1)%k].Test)
		if len(val) != len(next) {
			t.Fatalf("fold %d val size %d != next test %d", i, len(val), len(next))
		}
		for x := range val {
			if !next[x] {
				t.Fatalf("fold %d val not equal to fold %d test", i, (i+1)%k)
			}
		}
	}
}

func TestPaperKFoldDeterministic(t *testing.T) {
	a, err := PaperKFold(idxRange(0, 20), idxRange(50, 20), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperKFold(idxRange(0, 20), idxRange(50, 20), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Test {
			if a[i].Test[j] != b[i].Test[j] {
				t.Fatal("folds not deterministic")
			}
		}
	}
}

// separableData builds two separable high-dimensional classes in
// canonical sparse form.
func separableData(n int, seed int64) ([]*vecmath.Sparse, []float64) {
	r := rand.New(rand.NewSource(seed))
	var x []*vecmath.Sparse
	var y []float64
	for i := 0; i < n; i++ {
		v := vecmath.NewVector(40)
		sign := 1.0
		if i%2 == 0 {
			sign = -1
		}
		hot := []int{1, 5, 9}
		if sign < 0 {
			hot = []int{20, 25, 33}
		}
		for _, h := range hot {
			v[h] = 0.5 + 0.05*r.NormFloat64()
		}
		for j := 0; j < 5; j++ {
			v[r.Intn(40)] += 0.02 * r.Float64()
		}
		x = append(x, vecmath.DenseToSparse(v.Normalize()))
		y = append(y, sign)
	}
	return x, y
}

func TestEvaluateSVMPerfectOnSeparable(t *testing.T) {
	x, y := separableData(120, 1)
	var pos, neg []int
	for i, yy := range y {
		if yy > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	folds, err := PaperKFold(pos, neg, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateSVM(x, y, folds, nil, svm.DefaultPolynomial(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAccuracy < 0.99 {
		t.Errorf("accuracy on separable data = %v", res.MeanAccuracy)
	}
	if res.Baseline < 0.49 || res.Baseline > 0.51 {
		t.Errorf("baseline = %v, want ~0.5", res.Baseline)
	}
	if len(res.Folds) != 10 {
		t.Errorf("fold results = %d", len(res.Folds))
	}
	for _, f := range res.Folds {
		if f.BestC == 0 {
			t.Error("fold did not record tuned C")
		}
		if f.NumSV == 0 {
			t.Error("fold model has no support vectors")
		}
	}
}

func TestEvaluateSVMValidation(t *testing.T) {
	x, y := separableData(30, 4)
	if _, err := EvaluateSVM(x, y[:10], nil, nil, nil, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := EvaluateSVM(x, y, nil, nil, nil, 0); err == nil {
		t.Error("no folds should fail")
	}
	bad := []Fold{{Train: []int{999}, Val: []int{0}, Test: []int{1}}}
	if _, err := EvaluateSVM(x, y, bad, nil, nil, 0); err == nil {
		t.Error("out-of-range index should fail")
	}
}
