package crossval

import (
	"testing"

	"repro/internal/svm"
)

// The tentpole guarantee at the protocol layer: the full K-fold × C-grid
// evaluation is bit-identical at any worker count. Under -race this also
// exercises the fold/grid fan-out for data races.
func TestEvaluateSVMDeterministicAcrossWorkers(t *testing.T) {
	x, y := separableData(80, 11)
	var pos, neg []int
	for i, yy := range y {
		if yy > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	folds, err := PaperKFold(pos, neg, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{0.1, 1, 10}
	var ref *Result
	for _, workers := range []int{-1, 1, 2, 8} {
		res, err := EvaluateSVMWorkers(x, y, folds, grid, svm.DefaultPolynomial(), 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.MeanAccuracy != ref.MeanAccuracy || res.StdAccuracy != ref.StdAccuracy ||
			res.MeanPrec != ref.MeanPrec || res.MeanRecall != ref.MeanRecall {
			t.Fatalf("workers=%d: aggregate metrics differ from sequential", workers)
		}
		for fi := range res.Folds {
			if res.Folds[fi] != ref.Folds[fi] {
				t.Fatalf("workers=%d: fold %d = %+v, want %+v", workers, fi, res.Folds[fi], ref.Folds[fi])
			}
		}
	}
}
