// Package crossval implements the paper's K-fold cross-validation protocol
// (§4.2.1): positive and negative signatures are split into K sets of
// equal (modulo K) sizes; fold i merges positive set i with negative set
// i. For each fold i, fold i is the test data, fold (i+1) mod K is the
// validation data, and the remaining folds concatenated are the training
// data. The classifier is tuned (the C parameter grid) on the validation
// data and evaluated exactly once on the test data; metrics are averaged
// over all K folds.
package crossval

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/svm"
	"repro/internal/vecmath"
)

// Fold is one train/validation/test split, as example indices.
type Fold struct {
	Train []int
	Val   []int
	Test  []int
}

// PaperKFold builds the paper's K folds from positive and negative example
// indices. Both classes must contribute at least k examples so every fold
// contains both classes.
func PaperKFold(pos, neg []int, k int, seed int64) ([]Fold, error) {
	if k < 3 {
		// With k=2 the validation fold equals the training remainder's
		// complement and train would be empty; the paper uses 8 and 10.
		return nil, fmt.Errorf("crossval: k=%d must be >= 3", k)
	}
	if len(pos) < k || len(neg) < k {
		return nil, fmt.Errorf("crossval: need >= %d examples per class, have %d/%d", k, len(pos), len(neg))
	}
	rng := rand.New(rand.NewSource(seed))
	p := append([]int(nil), pos...)
	n := append([]int(nil), neg...)
	stats.Shuffle(rng, p)
	stats.Shuffle(rng, n)

	chunk := func(xs []int, i int) []int {
		lo := i * len(xs) / k
		hi := (i + 1) * len(xs) / k
		return xs[lo:hi]
	}
	// fold i = pos chunk i ∪ neg chunk i.
	merged := make([][]int, k)
	for i := 0; i < k; i++ {
		merged[i] = append(append([]int{}, chunk(p, i)...), chunk(n, i)...)
	}
	folds := make([]Fold, k)
	for i := 0; i < k; i++ {
		val := (i + 1) % k
		f := Fold{
			Test: append([]int{}, merged[i]...),
			Val:  append([]int{}, merged[val]...),
		}
		for j := 0; j < k; j++ {
			if j != i && j != val {
				f.Train = append(f.Train, merged[j]...)
			}
		}
		folds[i] = f
	}
	return folds, nil
}

// DefaultCGrid is the C search grid ("we searched the parameter space of
// the trade-off between training error and margin").
func DefaultCGrid() []float64 { return []float64{0.1, 1, 10, 100} }

// FoldResult is the test-set performance of one fold.
type FoldResult struct {
	BestC     float64
	ValAcc    float64
	Accuracy  float64
	Precision float64
	Recall    float64
	NumSV     int
}

// Result aggregates a full cross-validation run. Mean/Std are over folds,
// matching the paper's "average ± standard deviation, over all folds"
// table columns; Baseline is the majority-class accuracy over the whole
// dataset.
type Result struct {
	Folds []FoldResult

	Baseline     float64
	MeanAccuracy float64
	StdAccuracy  float64
	MeanPrec     float64
	StdPrec      float64
	MeanRecall   float64
	StdRecall    float64
}

// EvaluateSVM runs the full protocol: per fold, grid-search C on the
// validation split, then score the selected model once on the test split.
// Labels must be ±1. Signatures arrive in canonical sparse form and
// should already be scaled into the unit ball (core.Normalize), per the
// paper's practice. It fans the fold × C grid out over one worker per
// CPU; use EvaluateSVMWorkers to bound or disable the fan-out — the
// result is bit-identical at any worker count.
func EvaluateSVM(x []*vecmath.Sparse, y []float64, folds []Fold, grid []float64, kernel svm.Kernel, seed int64) (*Result, error) {
	return EvaluateSVMWorkers(x, y, folds, grid, kernel, seed, 0)
}

// gridEval is the outcome of training one (fold, C) grid point.
type gridEval struct {
	model  *svm.Model
	valAcc float64
}

// EvaluateSVMWorkers is EvaluateSVM with an explicit worker bound
// (parallel.Workers semantics: 0 = one per CPU, <0 = sequential).
//
// Every (fold, C) grid point is an independent training task — the SMO
// seed depends only on the fold index, exactly as in the sequential
// protocol — so the tasks fan out freely. The per-fold reduction then
// walks the grid in declaration order and keeps the first C whose
// validation accuracy strictly exceeds the best so far, which reproduces
// the sequential tie-break bit for bit.
func EvaluateSVMWorkers(x []*vecmath.Sparse, y []float64, folds []Fold, grid []float64, kernel svm.Kernel, seed int64, workers int) (*Result, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("crossval: %d examples vs %d labels", len(x), len(y))
	}
	if len(folds) == 0 {
		return nil, errors.New("crossval: no folds")
	}
	if len(grid) == 0 {
		grid = DefaultCGrid()
	}
	baseline, err := metrics.BaselineAccuracy(y)
	if err != nil {
		return nil, err
	}
	gather := func(idx []int) ([]*vecmath.Sparse, []float64, error) {
		xs := make([]*vecmath.Sparse, 0, len(idx))
		ys := make([]float64, 0, len(idx))
		for _, i := range idx {
			if i < 0 || i >= len(x) {
				return nil, nil, fmt.Errorf("crossval: index %d out of range", i)
			}
			xs = append(xs, x[i])
			ys = append(ys, y[i])
		}
		return xs, ys, nil
	}

	type foldData struct {
		trX, vaX, teX []*vecmath.Sparse
		trY, vaY, teY []float64
	}
	fds := make([]foldData, len(folds))
	for fi, fold := range folds {
		var fd foldData
		if fd.trX, fd.trY, err = gather(fold.Train); err != nil {
			return nil, err
		}
		if fd.vaX, fd.vaY, err = gather(fold.Val); err != nil {
			return nil, err
		}
		if fd.teX, fd.teY, err = gather(fold.Test); err != nil {
			return nil, err
		}
		fds[fi] = fd
	}

	// Flatten folds × grid into one task list so a slow fold cannot
	// serialize the sweep. The gram build inside each task stays
	// sequential: the outer fan-out already covers the cores.
	nTasks := len(folds) * len(grid)
	evals, err := parallel.Map(workers, nTasks, func(t int) (gridEval, error) {
		fi, gi := t/len(grid), t%len(grid)
		fd := &fds[fi]
		m, err := svm.TrainSparse(fd.trX, fd.trY, svm.Config{
			C: grid[gi], Kernel: kernel, Seed: seed + int64(fi), Workers: -1,
		})
		if err != nil {
			return gridEval{}, fmt.Errorf("crossval: fold %d C=%v: %w", fi, grid[gi], err)
		}
		acc, err := scoreAccuracy(m, fd.vaX, fd.vaY)
		if err != nil {
			return gridEval{}, err
		}
		return gridEval{model: m, valAcc: acc}, nil
	})
	if err != nil {
		return nil, err
	}

	// Per-fold model selection and test scoring, folds fanned out (each
	// fold writes its own slot), reduced in fold order below.
	frs, err := parallel.Map(workers, len(folds), func(fi int) (FoldResult, error) {
		fd := &fds[fi]
		var bestModel *svm.Model
		bestC, bestVal := 0.0, -1.0
		for gi, c := range grid {
			e := evals[fi*len(grid)+gi]
			if e.valAcc > bestVal {
				bestVal, bestC, bestModel = e.valAcc, c, e.model
			}
		}
		// Batched prediction; the fold fan-out already covers the cores,
		// so the batch itself stays sequential.
		pred := bestModel.PredictBatch(fd.teX, -1)
		conf, err := metrics.NewConfusion(fd.teY, pred)
		if err != nil {
			return FoldResult{}, err
		}
		return FoldResult{
			BestC:     bestC,
			ValAcc:    bestVal,
			Accuracy:  conf.Accuracy(),
			Precision: conf.Precision(),
			Recall:    conf.Recall(),
			NumSV:     bestModel.NumSV(),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Folds: frs, Baseline: baseline}
	var accs, precs, recs []float64
	for _, fr := range frs {
		accs = append(accs, fr.Accuracy)
		precs = append(precs, fr.Precision)
		recs = append(recs, fr.Recall)
	}
	res.MeanAccuracy, res.StdAccuracy = stats.Mean(accs), stats.StdDev(accs)
	res.MeanPrec, res.StdPrec = stats.Mean(precs), stats.StdDev(precs)
	res.MeanRecall, res.StdRecall = stats.Mean(recs), stats.StdDev(recs)
	return res, nil
}

// scoreAccuracy evaluates plain accuracy of m on a labeled set via one
// batched prediction pass.
func scoreAccuracy(m *svm.Model, x []*vecmath.Sparse, y []float64) (float64, error) {
	if len(x) == 0 {
		return 0, errors.New("crossval: empty evaluation split")
	}
	correct := 0
	for i, p := range m.PredictBatch(x, -1) {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x)), nil
}
