package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Backend is the instrumentation hook an engine drives. Implementations
// live in the trace package: a no-op backend (vanilla kernel), the Fmeter
// per-CPU counter backend, and the Ftrace ring-buffer backend.
//
// OnCalls is batched: the engine reports n invocations of fn on cpu at once.
// This is purely a simulation optimization — semantically it is n calls —
// and backends account their per-call costs accordingly via
// PerCallOverheadNS, which the engine charges to the virtual clock for
// every (un-batched) call.
type Backend interface {
	// Name identifies the configuration ("vanilla", "ftrace", "fmeter").
	Name() string
	// OnCalls records n invocations of fn on cpu.
	OnCalls(cpu int, fn FuncID, n uint64)
	// PerCallOverheadNS returns the virtual-time cost the instrumentation
	// adds to a single invocation of fn on cpu.
	PerCallOverheadNS(cpu int, fn FuncID) float64
}

// nopBackend is the vanilla (un-instrumented) configuration: zero overhead,
// no counts. Ftrace and Fmeter both have "virtually zero overhead if not
// enabled" (paper §1); this models all of those states.
type nopBackend struct{}

func (nopBackend) Name() string                          { return "vanilla" }
func (nopBackend) OnCalls(int, FuncID, uint64)           {}
func (nopBackend) PerCallOverheadNS(int, FuncID) float64 { return 0 }

// NopBackend returns the vanilla, un-instrumented backend.
func NopBackend() Backend { return nopBackend{} }

// EngineConfig configures a simulated kernel instance.
type EngineConfig struct {
	// NumCPU is the number of simulated processors (the paper's R710
	// exposes 16). Must be >= 1.
	NumCPU int
	// Backend is the active instrumentation; nil means vanilla.
	Backend Backend
	// Seed drives all stochastic behaviour of this engine instance.
	Seed int64
	// CountJitter is the relative standard deviation applied to each
	// function's per-batch invocation count (models scheduling and cache
	// nondeterminism). 0 disables count noise.
	CountJitter float64
	// LatencyJitter is the relative standard deviation applied to the
	// base (un-instrumented) cost of each op batch. 0 disables.
	LatencyJitter float64
}

// Engine executes kernel operations against a symbol table, driving the
// instrumentation backend and a virtual nanosecond clock. It is not safe
// for concurrent use; the simulated CPUs are a modeling construct, not Go
// concurrency.
type Engine struct {
	st      *SymbolTable
	cat     *Catalog
	backend Backend
	rng     *rand.Rand
	cfg     EngineConfig

	kernelNS   []float64 // per-CPU virtual kernel-mode time
	userNS     []float64 // per-CPU virtual user-mode time
	nextCPU    int
	totalCalls uint64
	modules    map[string]*Module
}

// NewEngine builds an engine over st with the op catalog cat.
func NewEngine(cat *Catalog, cfg EngineConfig) (*Engine, error) {
	if cat == nil {
		return nil, fmt.Errorf("kernel: nil catalog")
	}
	if cfg.NumCPU < 1 {
		return nil, fmt.Errorf("kernel: NumCPU %d must be >= 1", cfg.NumCPU)
	}
	if cfg.CountJitter < 0 || cfg.LatencyJitter < 0 {
		return nil, fmt.Errorf("kernel: jitter must be non-negative")
	}
	b := cfg.Backend
	if b == nil {
		b = NopBackend()
	}
	return &Engine{
		st:       cat.SymbolTable(),
		cat:      cat,
		backend:  b,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cfg:      cfg,
		kernelNS: make([]float64, cfg.NumCPU),
		userNS:   make([]float64, cfg.NumCPU),
		modules:  make(map[string]*Module),
	}, nil
}

// Backend returns the active instrumentation backend.
func (e *Engine) Backend() Backend { return e.backend }

// Catalog returns the engine's op catalog.
func (e *Engine) Catalog() *Catalog { return e.cat }

// SymbolTable returns the engine's symbol table.
func (e *Engine) SymbolTable() *SymbolTable { return e.st }

// NumCPU returns the number of simulated processors.
func (e *Engine) NumCPU() int { return e.cfg.NumCPU }

// pickCPU round-robins batches across simulated CPUs.
func (e *Engine) pickCPU() int {
	cpu := e.nextCPU
	e.nextCPU = (e.nextCPU + 1) % e.cfg.NumCPU
	return cpu
}

// ExecOp executes op `times` times on an engine-chosen CPU and returns the
// virtual elapsed kernel time of the batch.
func (e *Engine) ExecOp(op *Op, times int) (time.Duration, error) {
	return e.ExecOpOn(e.pickCPU(), op, times)
}

// ExecOpName resolves name in the catalog and executes it.
func (e *Engine) ExecOpName(name string, times int) (time.Duration, error) {
	op, err := e.cat.Op(name)
	if err != nil {
		return 0, err
	}
	return e.ExecOp(op, times)
}

// ExecOpOn executes op `times` times on the given simulated CPU. The batch
// cost charged to the virtual clock is
//
//	times*BaseNS*(1±latencyJitter) + Σ_fn calls(fn)*backendOverhead(fn)
//
// where calls(fn) are the (possibly jittered) per-function counts.
// Module-internal calls (op.ModuleCalls) contribute no instrumentation
// overhead and no counts: modules are not instrumented (paper §3).
func (e *Engine) ExecOpOn(cpu int, op *Op, times int) (time.Duration, error) {
	if op == nil {
		return 0, fmt.Errorf("kernel: nil op")
	}
	if cpu < 0 || cpu >= e.cfg.NumCPU {
		return 0, fmt.Errorf("kernel: cpu %d out of range [0,%d)", cpu, e.cfg.NumCPU)
	}
	if times < 0 {
		return 0, fmt.Errorf("kernel: negative times %d", times)
	}
	if times == 0 {
		return 0, nil
	}
	ft := float64(times)
	var actualCalls, overheadNS float64
	for i, fn := range op.Funcs {
		mean := op.MeanCounts[i] * ft
		n := e.sampleCount(mean)
		if n == 0 {
			continue
		}
		e.backend.OnCalls(cpu, fn, n)
		actualCalls += float64(n)
		overheadNS += float64(n) * e.backend.PerCallOverheadNS(cpu, fn)
	}
	e.totalCalls += uint64(actualCalls)

	base := op.BaseNS * ft
	if e.cfg.LatencyJitter > 0 {
		base *= 1 + e.cfg.LatencyJitter*e.rng.NormFloat64()
		if base < 0 {
			base = 0
		}
	}
	elapsed := base + overheadNS
	e.kernelNS[cpu] += elapsed
	return time.Duration(elapsed), nil
}

// sampleCount turns a mean invocation count into an integer sample. With
// jitter disabled it rounds deterministically (fractional remainders are
// resolved by an unbiased coin so long-run totals match the mean).
func (e *Engine) sampleCount(mean float64) uint64 {
	if mean <= 0 {
		return 0
	}
	m := mean
	if e.cfg.CountJitter > 0 {
		m *= 1 + e.cfg.CountJitter*e.rng.NormFloat64()
		if m < 0 {
			m = 0
		}
	}
	floor := math.Floor(m)
	frac := m - floor
	n := uint64(floor)
	if frac > 0 && e.rng.Float64() < frac {
		n++
	}
	return n
}

// InvokeRaw records n invocations of a single function outside any
// operation path, charging perCallNS base cost plus instrumentation
// overhead. It models sporadic kernel events (error paths, rare ioctls,
// background callbacks) that are not part of a workload's steady mix.
func (e *Engine) InvokeRaw(cpu int, fn FuncID, n uint64, perCallNS float64) error {
	if cpu < 0 || cpu >= e.cfg.NumCPU {
		return fmt.Errorf("kernel: cpu %d out of range [0,%d)", cpu, e.cfg.NumCPU)
	}
	if _, err := e.st.Symbol(fn); err != nil {
		return err
	}
	if perCallNS < 0 {
		return fmt.Errorf("kernel: negative per-call cost %v", perCallNS)
	}
	if n == 0 {
		return nil
	}
	e.backend.OnCalls(cpu, fn, n)
	e.totalCalls += n
	e.kernelNS[cpu] += float64(n) * (perCallNS + e.backend.PerCallOverheadNS(cpu, fn))
	return nil
}

// RecordUser charges user-mode virtual time to a CPU. User code is never
// instrumented, so this bypasses the backend entirely.
func (e *Engine) RecordUser(cpu int, d time.Duration) error {
	if cpu < 0 || cpu >= e.cfg.NumCPU {
		return fmt.Errorf("kernel: cpu %d out of range [0,%d)", cpu, e.cfg.NumCPU)
	}
	e.userNS[cpu] += float64(d.Nanoseconds())
	return nil
}

// KernelTime returns the total virtual kernel-mode time across CPUs.
func (e *Engine) KernelTime() time.Duration {
	var s float64
	for _, ns := range e.kernelNS {
		s += ns
	}
	return time.Duration(s)
}

// UserTime returns the total virtual user-mode time across CPUs.
func (e *Engine) UserTime() time.Duration {
	var s float64
	for _, ns := range e.userNS {
		s += ns
	}
	return time.Duration(s)
}

// WallTime estimates the elapsed wall-clock time of everything executed so
// far, assuming the work spread over `parallelism` CPUs (bounded by the
// engine's CPU count). parallelism <= 0 defaults to full width.
func (e *Engine) WallTime(parallelism int) time.Duration {
	if parallelism <= 0 || parallelism > e.cfg.NumCPU {
		parallelism = e.cfg.NumCPU
	}
	total := float64(e.KernelTime()+e.UserTime()) / float64(parallelism)
	return time.Duration(total)
}

// TotalCalls returns the number of instrumentable core-kernel function
// calls executed so far (module-internal calls excluded).
func (e *Engine) TotalCalls() uint64 { return e.totalCalls }

// ResetClock zeroes the virtual clocks and call counter, leaving backend
// state (counters, ring buffers) untouched.
func (e *Engine) ResetClock() {
	for i := range e.kernelNS {
		e.kernelNS[i] = 0
	}
	for i := range e.userNS {
		e.userNS[i] = 0
	}
	e.totalCalls = 0
}

// RegisterModule loads a runtime module into the engine. Module functions
// are not added to the symbol table: they are invisible to instrumentation,
// exactly like the paper's myri10ge driver.
func (e *Engine) RegisterModule(m *Module) error {
	if m == nil {
		return fmt.Errorf("kernel: nil module")
	}
	if _, dup := e.modules[m.Name]; dup {
		return fmt.Errorf("kernel: module %q already loaded", m.Name)
	}
	e.modules[m.Name] = m
	return nil
}

// UnregisterModule unloads a module by name.
func (e *Engine) UnregisterModule(name string) error {
	if _, ok := e.modules[name]; !ok {
		return fmt.Errorf("kernel: module %q not loaded", name)
	}
	delete(e.modules, name)
	return nil
}

// Module returns a loaded module by name.
func (e *Engine) Module(name string) (*Module, error) {
	m, ok := e.modules[name]
	if !ok {
		return nil, fmt.Errorf("kernel: module %q not loaded", name)
	}
	return m, nil
}

// ExecModuleOp executes a module entry point `times` times: the module's
// internal calls cost time but produce no counts, while its calls into the
// core kernel are traced like any other (that is the only way the module
// shows up in signatures).
func (e *Engine) ExecModuleOp(moduleName, opName string, times int) (time.Duration, error) {
	m, err := e.Module(moduleName)
	if err != nil {
		return 0, err
	}
	op, err := m.Op(opName)
	if err != nil {
		return 0, err
	}
	return e.ExecOp(op, times)
}
