package kernel

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func newTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat, err := NewCatalog(NewSymbolTable())
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	return cat
}

func TestSymbolTableSizeMatchesPaper(t *testing.T) {
	st := NewSymbolTable()
	if st.Len() != 3815 {
		t.Errorf("symbol table has %d functions, want 3815 (paper, Fig. 1)", st.Len())
	}
}

func TestSymbolTableDeterministic(t *testing.T) {
	a, b := NewSymbolTable(), NewSymbolTable()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Symbols() {
		sa, sb := a.Symbols()[i], b.Symbols()[i]
		if sa != sb {
			t.Fatalf("symbol %d differs: %+v vs %+v", i, sa, sb)
		}
	}
}

func TestSymbolTableUniqueNamesAndAddrs(t *testing.T) {
	st := NewSymbolTable()
	names := make(map[string]bool, st.Len())
	addrs := make(map[uint64]bool, st.Len())
	for _, s := range st.Symbols() {
		if names[s.Name] {
			t.Fatalf("duplicate name %q", s.Name)
		}
		if addrs[s.Addr] {
			t.Fatalf("duplicate address %#x", s.Addr)
		}
		names[s.Name] = true
		addrs[s.Addr] = true
	}
}

func TestSymbolLookupRoundTrip(t *testing.T) {
	st := NewSymbolTable()
	for _, s := range st.Symbols()[:100] {
		id, err := st.Lookup(s.Name)
		if err != nil || id != s.ID {
			t.Fatalf("Lookup(%q) = %v, %v; want %v", s.Name, id, err, s.ID)
		}
		aid, err := st.LookupAddr(s.Addr)
		if err != nil || aid != s.ID {
			t.Fatalf("LookupAddr(%#x) = %v, %v", s.Addr, aid, err)
		}
	}
	if _, err := st.Lookup("nonexistent_function"); err == nil {
		t.Error("Lookup of unknown name should fail")
	}
	if _, err := st.LookupAddr(0xdead); err == nil {
		t.Error("LookupAddr of unknown address should fail")
	}
	if _, err := st.Symbol(-1); err == nil {
		t.Error("Symbol(-1) should fail")
	}
	if _, err := st.Symbol(FuncID(st.Len())); err == nil {
		t.Error("Symbol(out of range) should fail")
	}
}

func TestAddressesMonotoneAligned(t *testing.T) {
	st := NewSymbolTable()
	var prev uint64
	for _, s := range st.Symbols() {
		if s.Addr <= prev {
			t.Fatalf("addresses not strictly increasing at %q", s.Name)
		}
		if s.Addr%16 != 0 {
			t.Fatalf("address %#x of %q not 16-byte aligned", s.Addr, s.Name)
		}
		prev = s.Addr
	}
}

func TestCatalogCompilesAllOps(t *testing.T) {
	cat := newTestCatalog(t)
	want := []string{
		OpSimpleSyscall, OpSimpleRead, OpSimpleWrite, OpSimpleStat, OpSimpleFstat,
		OpSimpleOpenClose, OpSelect10, OpSelect10TCP, OpSelect100, OpSelect100TCP,
		OpSignalInstall, OpSignalHandle, OpProtFault, OpPipeLatency, OpAFUnixLatency,
		OpFcntlLock, OpSemaphore, OpForkExit, OpForkExecve, OpForkSh, OpMmapFile,
		OpPageFault, OpUnixConnect, OpHTTPRequest, OpDbenchIO, OpScpChunk,
		OpCompileUnit, OpDiskRead, OpDiskWrite, OpFsyncOp, OpCtxSwitch,
		OpTimerTick, OpBgHousekeep, OpDaemonLog, OpBootPhase, OpTCPTxSegment,
	}
	for _, name := range want {
		op, err := cat.Op(name)
		if err != nil {
			t.Errorf("missing op %s: %v", name, err)
			continue
		}
		if len(op.Funcs) == 0 {
			t.Errorf("op %s has empty profile", name)
		}
		if len(op.Funcs) != len(op.MeanCounts) {
			t.Errorf("op %s: funcs/counts length mismatch", name)
		}
	}
	if _, err := cat.Op("no_such_op"); err == nil {
		t.Error("unknown op should fail")
	}
}

func TestOpMeanCountsSumToTotal(t *testing.T) {
	cat := newTestCatalog(t)
	for _, name := range cat.Names() {
		op := cat.MustOp(name)
		var sum float64
		for _, c := range op.MeanCounts {
			sum += c
			if c < 0 {
				t.Errorf("op %s has negative mean count", name)
			}
		}
		// Boot op's floor-at-1 rule inflates its total slightly; its
		// TotalCalls field records the actual sum, so this holds everywhere.
		if math.Abs(sum-op.TotalCalls) > 1e-6*op.TotalCalls {
			t.Errorf("op %s: counts sum %v != TotalCalls %v", name, sum, op.TotalCalls)
		}
	}
}

func TestBootOpCoversWholeTable(t *testing.T) {
	cat := newTestCatalog(t)
	boot := cat.MustOp(OpBootPhase)
	if len(boot.Funcs) != cat.SymbolTable().Len() {
		t.Errorf("boot op touches %d functions, want %d", len(boot.Funcs), cat.SymbolTable().Len())
	}
	for i, c := range boot.MeanCounts {
		if c < 1 {
			t.Errorf("boot mean count for %d is %v, want >= 1", boot.Funcs[i], c)
		}
	}
}

// countingBackend records per-function totals for test assertions.
type countingBackend struct {
	counts     map[FuncID]uint64
	perCallNS  float64
	cpusSeen   map[int]bool
	totalCalls uint64
}

func newCountingBackend(perCallNS float64) *countingBackend {
	return &countingBackend{
		counts:    make(map[FuncID]uint64),
		cpusSeen:  make(map[int]bool),
		perCallNS: perCallNS,
	}
}

func (b *countingBackend) Name() string { return "counting" }
func (b *countingBackend) OnCalls(cpu int, fn FuncID, n uint64) {
	b.counts[fn] += n
	b.totalCalls += n
	b.cpusSeen[cpu] = true
}
func (b *countingBackend) PerCallOverheadNS(int, FuncID) float64 { return b.perCallNS }

func TestEngineValidation(t *testing.T) {
	cat := newTestCatalog(t)
	if _, err := NewEngine(nil, EngineConfig{NumCPU: 1}); err == nil {
		t.Error("nil catalog should fail")
	}
	if _, err := NewEngine(cat, EngineConfig{NumCPU: 0}); err == nil {
		t.Error("0 CPUs should fail")
	}
	if _, err := NewEngine(cat, EngineConfig{NumCPU: 1, CountJitter: -1}); err == nil {
		t.Error("negative jitter should fail")
	}
	e, err := NewEngine(cat, EngineConfig{NumCPU: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecOpOn(5, cat.MustOp(OpSimpleRead), 1); err == nil {
		t.Error("out-of-range CPU should fail")
	}
	if _, err := e.ExecOpOn(0, nil, 1); err == nil {
		t.Error("nil op should fail")
	}
	if _, err := e.ExecOpOn(0, cat.MustOp(OpSimpleRead), -1); err == nil {
		t.Error("negative times should fail")
	}
	if err := e.RecordUser(9, time.Second); err == nil {
		t.Error("RecordUser out-of-range CPU should fail")
	}
}

func TestEngineDeterministicCountsWithoutJitter(t *testing.T) {
	cat := newTestCatalog(t)
	run := func() map[FuncID]uint64 {
		b := newCountingBackend(0)
		e, err := NewEngine(cat, EngineConfig{NumCPU: 4, Backend: b, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.ExecOpName(OpSimpleRead, 1000); err != nil {
			t.Fatal(err)
		}
		return b.counts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("count maps differ in size: %d vs %d", len(a), len(b))
	}
	for fn, n := range a {
		if b[fn] != n {
			t.Fatalf("counts differ for fn %d: %d vs %d", fn, n, b[fn])
		}
	}
}

func TestEngineTotalsMatchOpSpec(t *testing.T) {
	cat := newTestCatalog(t)
	b := newCountingBackend(0)
	e, err := NewEngine(cat, EngineConfig{NumCPU: 4, Backend: b, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	op := cat.MustOp(OpSimpleStat)
	const times = 10000
	if _, err := e.ExecOp(op, times); err != nil {
		t.Fatal(err)
	}
	want := op.TotalCalls * times
	got := float64(b.totalCalls)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("total calls %v, want ~%v", got, want)
	}
	if e.TotalCalls() != b.totalCalls {
		t.Errorf("engine TotalCalls %d != backend %d", e.TotalCalls(), b.totalCalls)
	}
}

func TestEngineVirtualClock(t *testing.T) {
	cat := newTestCatalog(t)
	const overhead = 40.0
	b := newCountingBackend(overhead)
	e, err := NewEngine(cat, EngineConfig{NumCPU: 1, Backend: b, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	op := cat.MustOp(OpSimpleSyscall)
	const times = 100000
	d, err := e.ExecOp(op, times)
	if err != nil {
		t.Fatal(err)
	}
	wantNS := op.BaseNS*times + float64(b.totalCalls)*overhead
	if math.Abs(float64(d)-wantNS) > 1e-3*wantNS {
		t.Errorf("elapsed %v, want ~%vns", d, wantNS)
	}
	if e.KernelTime() != d {
		t.Errorf("KernelTime %v != batch elapsed %v", e.KernelTime(), d)
	}
	if err := e.RecordUser(0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if e.UserTime() != 5*time.Second {
		t.Errorf("UserTime = %v", e.UserTime())
	}
	e.ResetClock()
	if e.KernelTime() != 0 || e.UserTime() != 0 || e.TotalCalls() != 0 {
		t.Error("ResetClock did not zero the clocks")
	}
}

func TestEngineInstrumentationSlowsExecution(t *testing.T) {
	cat := newTestCatalog(t)
	elapsed := func(overhead float64) time.Duration {
		b := newCountingBackend(overhead)
		e, err := NewEngine(cat, EngineConfig{NumCPU: 1, Backend: b, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.ExecOpName(OpSimpleOpenClose, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	vanilla := elapsed(0)
	fmeter := elapsed(3)
	ftrace := elapsed(40)
	if !(vanilla < fmeter && fmeter < ftrace) {
		t.Errorf("expected vanilla < fmeter < ftrace, got %v %v %v", vanilla, fmeter, ftrace)
	}
	// The shape the paper reports: fmeter stays close to vanilla, ftrace
	// is several times slower on call-dense ops.
	if r := float64(fmeter) / float64(vanilla); r > 2.5 {
		t.Errorf("fmeter slowdown %v too large", r)
	}
	if r := float64(ftrace) / float64(vanilla); r < 3 {
		t.Errorf("ftrace slowdown %v too small", r)
	}
}

func TestEngineRoundRobinCPUs(t *testing.T) {
	cat := newTestCatalog(t)
	b := newCountingBackend(0)
	e, err := NewEngine(cat, EngineConfig{NumCPU: 4, Backend: b, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := e.ExecOpName(OpCtxSwitch, 10); err != nil {
			t.Fatal(err)
		}
	}
	if len(b.cpusSeen) != 4 {
		t.Errorf("expected all 4 CPUs used, saw %d", len(b.cpusSeen))
	}
}

func TestModuleLifecycle(t *testing.T) {
	st := NewSymbolTable()
	cat, err := NewCatalog(st)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cat, EngineConfig{NumCPU: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModule(st, "testdrv", "1.0", map[string]string{"lro": "on"}, []ModuleOpSpec{{
		Name: "rx", BaseUS: 1, CoreCalls: 10, ModuleCalls: 5,
		CoreProfile: map[string]float64{"alloc_skb": 1, "netif_receive_skb": 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterModule(mod); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterModule(mod); err == nil {
		t.Error("duplicate registration should fail")
	}
	if _, err := e.ExecModuleOp("testdrv", "rx", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecModuleOp("testdrv", "tx", 1); err == nil {
		t.Error("unknown module op should fail")
	}
	if _, err := e.ExecModuleOp("nodrv", "rx", 1); err == nil {
		t.Error("unknown module should fail")
	}
	if err := e.UnregisterModule("testdrv"); err != nil {
		t.Fatal(err)
	}
	if err := e.UnregisterModule("testdrv"); err == nil {
		t.Error("double unload should fail")
	}
}

func TestModuleValidation(t *testing.T) {
	st := NewSymbolTable()
	if _, err := NewModule(st, "", "1.0", nil, nil); err == nil {
		t.Error("empty module name should fail")
	}
	if _, err := NewModule(st, "m", "1.0", nil, []ModuleOpSpec{{
		Name: "x", BaseUS: 1, CoreCalls: 1,
		CoreProfile: map[string]float64{"no_such_fn": 1},
	}}); err == nil {
		t.Error("unknown core function should fail")
	}
	if _, err := NewModule(st, "m", "1.0", nil, []ModuleOpSpec{
		{Name: "x", BaseUS: 1, CoreCalls: 1, CoreProfile: map[string]float64{"alloc_skb": 1}},
		{Name: "x", BaseUS: 1, CoreCalls: 1, CoreProfile: map[string]float64{"alloc_skb": 1}},
	}); err == nil {
		t.Error("duplicate op name should fail")
	}
}

func TestCompileOpFromCountsDeterministic(t *testing.T) {
	st := NewSymbolTable()
	mk := func() *Op {
		op, err := CompileOpFromCounts(st, "x", 1, 100, 0, map[string]float64{
			"alloc_skb": 1, "kfree_skb": 1, "netif_receive_skb": 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return op
	}
	a, b := mk(), mk()
	for i := range a.Funcs {
		if a.Funcs[i] != b.Funcs[i] || a.MeanCounts[i] != b.MeanCounts[i] {
			t.Fatal("CompileOpFromCounts not deterministic")
		}
	}
}

// Property: with jitter enabled, long-run totals still track the op spec.
// The batch samples each function's count once with relative SD 0.05, so
// the total's relative SD is ~0.05*sqrt(Σ(w_i/W)^2) ≈ 1.6% for this op;
// a 12% bound is ~7σ — effectively impossible to trip unless the sampler
// is actually biased.
func TestPropertyJitteredCountsUnbiased(t *testing.T) {
	cat := newTestCatalog(t)
	f := func(seed int64) bool {
		b := newCountingBackend(0)
		e, err := NewEngine(cat, EngineConfig{
			NumCPU: 2, Backend: b, Seed: seed, CountJitter: 0.05,
		})
		if err != nil {
			return false
		}
		op := cat.MustOp(OpPageFault)
		const times = 5000
		if _, err := e.ExecOp(op, times); err != nil {
			return false
		}
		want := op.TotalCalls * times
		got := float64(b.totalCalls)
		return math.Abs(got-want)/want < 0.12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
	// The mean over many seeds must sit tight around the spec (bias
	// check, as opposed to the per-draw variance check above).
	var sum float64
	const draws = 30
	op := cat.MustOp(OpPageFault)
	for s := int64(0); s < draws; s++ {
		b := newCountingBackend(0)
		e, err := NewEngine(cat, EngineConfig{NumCPU: 2, Backend: b, Seed: s, CountJitter: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.ExecOp(op, 5000); err != nil {
			t.Fatal(err)
		}
		sum += float64(b.totalCalls)
	}
	mean := sum / draws
	want := op.TotalCalls * 5000
	if math.Abs(mean-want)/want > 0.01 {
		t.Errorf("mean over %d seeds = %v, want ~%v (sampler biased)", draws, mean, want)
	}
}

func BenchmarkExecOpSimpleRead(b *testing.B) {
	cat, err := NewCatalog(NewSymbolTable())
	if err != nil {
		b.Fatal(err)
	}
	cb := newCountingBackend(3)
	e, err := NewEngine(cat, EngineConfig{NumCPU: 16, Backend: cb, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecOpName(OpSimpleRead, 100); err != nil {
			b.Fatal(err)
		}
	}
}
