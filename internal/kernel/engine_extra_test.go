package kernel

import (
	"testing"
	"time"
)

func TestInvokeRaw(t *testing.T) {
	cat := newTestCatalog(t)
	b := newCountingBackend(2)
	e, err := NewEngine(cat, EngineConfig{NumCPU: 2, Backend: b, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InvokeRaw(0, 5, 10, 100); err != nil {
		t.Fatal(err)
	}
	if b.counts[5] != 10 {
		t.Errorf("raw counts = %d", b.counts[5])
	}
	// Cost: 10 * (100 base + 2 overhead) = 1020ns.
	if got := e.KernelTime(); got != 1020*time.Nanosecond {
		t.Errorf("KernelTime = %v, want 1020ns", got)
	}
	if e.TotalCalls() != 10 {
		t.Errorf("TotalCalls = %d", e.TotalCalls())
	}
	// n=0 is a no-op.
	if err := e.InvokeRaw(0, 5, 0, 100); err != nil {
		t.Fatal(err)
	}
	if b.counts[5] != 10 {
		t.Error("n=0 should not count")
	}
}

func TestInvokeRawValidation(t *testing.T) {
	cat := newTestCatalog(t)
	e, err := NewEngine(cat, EngineConfig{NumCPU: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InvokeRaw(5, 0, 1, 1); err == nil {
		t.Error("bad cpu should fail")
	}
	if err := e.InvokeRaw(0, -1, 1, 1); err == nil {
		t.Error("bad fn should fail")
	}
	if err := e.InvokeRaw(0, 0, 1, -1); err == nil {
		t.Error("negative cost should fail")
	}
}

func TestWallTime(t *testing.T) {
	cat := newTestCatalog(t)
	e, err := NewEngine(cat, EngineConfig{NumCPU: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RecordUser(0, 8*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := e.WallTime(4); got != 2*time.Second {
		t.Errorf("WallTime(4) = %v", got)
	}
	if got := e.WallTime(0); got != 2*time.Second {
		t.Errorf("WallTime(0) should default to full width: %v", got)
	}
	if got := e.WallTime(100); got != 2*time.Second {
		t.Errorf("WallTime should clamp to NumCPU: %v", got)
	}
	if got := e.WallTime(1); got != 8*time.Second {
		t.Errorf("WallTime(1) = %v", got)
	}
}

func TestSubsystemStrings(t *testing.T) {
	if SubVFS.String() != "vfs" || SubTCP.String() != "tcp" {
		t.Error("subsystem names wrong")
	}
	if Subsystem(99).String() == "" {
		t.Error("unknown subsystem should render")
	}
}

func TestHotColdAccessors(t *testing.T) {
	st := NewSymbolTable()
	hot := st.Hot(SubVFS)
	cold := st.Cold(SubVFS)
	if len(hot) == 0 || len(cold) == 0 {
		t.Fatal("vfs should have hot and cold functions")
	}
	for _, id := range hot {
		sym, err := st.Symbol(id)
		if err != nil || sym.Subsystem != SubVFS {
			t.Fatalf("hot fn %d not in vfs", id)
		}
	}
	names := st.Names()
	if len(names) != st.Len() {
		t.Fatalf("Names length %d", len(names))
	}
	if names[0] == "" {
		t.Error("empty name")
	}
	// Names returns a copy safe to mutate.
	names[0] = "mutated"
	if st.Names()[0] == "mutated" {
		t.Error("Names should return a fresh slice")
	}
}

func TestCatalogNamesSorted(t *testing.T) {
	cat := newTestCatalog(t)
	names := cat.Names()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("catalog names not sorted")
		}
	}
	if len(names) < 30 {
		t.Errorf("catalog has %d ops", len(names))
	}
}

func TestMustOpPanics(t *testing.T) {
	cat := newTestCatalog(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustOp should panic on unknown op")
		}
	}()
	cat.MustOp("no_such_op")
}

func TestMustLookupPanics(t *testing.T) {
	st := NewSymbolTable()
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup should panic on unknown name")
		}
	}()
	st.MustLookup("no_such_function")
}
