package kernel

import (
	"math"
	"testing"
)

// paperFtraceUS maps each Table 1 op to (paper vanilla µs, paper ftrace
// µs). This mirrors workload.LmbenchTests but lives here so the op catalog
// carries its own calibration guard without an import cycle.
var paperLatencies = map[string]struct{ baseUS, ftraceUS float64 }{
	OpAFUnixLatency:   {4.828, 27.749},
	OpFcntlLock:       {1.219, 6.639},
	OpMmapFile:        {206.750, 1800.520},
	OpPageFault:       {0.677, 3.678},
	OpPipeLatency:     {2.492, 12.421},
	OpForkSh:          {1446.800, 6421.000},
	OpForkExecve:      {672.266, 3094.380},
	OpForkExit:        {208.914, 1116.800},
	OpProtFault:       {0.185, 0.607},
	OpSelect10:        {0.231, 1.410},
	OpSelect10TCP:     {0.261, 1.798},
	OpSelect100:       {0.897, 9.809},
	OpSelect100TCP:    {2.189, 26.616},
	OpSemaphore:       {2.890, 6.117},
	OpSignalInstall:   {0.113, 0.280},
	OpSignalHandle:    {0.909, 3.124},
	OpSimpleFstat:     {0.100, 0.852},
	OpSimpleOpenClose: {1.193, 11.222},
	OpSimpleRead:      {0.101, 1.196},
	OpSimpleStat:      {0.721, 7.008},
	OpSimpleSyscall:   {0.041, 0.210},
	OpSimpleWrite:     {0.086, 1.012},
	OpUnixConnect:     {15.328, 81.380},
}

// ftraceCalibrationNS is the global Ftrace per-call cost the catalog was
// fitted against (34 ns record + 0.375 ns/CPU coherency at 16 CPUs; the
// trace package owns the authoritative constants).
const ftraceCalibrationNS = 34.0 + 0.375*16

// TestOpCalibrationAgainstPaper guards the fitted op parameters: each
// lmbench op's BaseNS must equal the paper's vanilla latency and its
// TotalCalls must be the paper's Ftrace delta divided by the global
// per-call cost. If someone retunes an op profile, this pins the
// calibration contract.
func TestOpCalibrationAgainstPaper(t *testing.T) {
	cat := newTestCatalog(t)
	for name, paper := range paperLatencies {
		op := cat.MustOp(name)
		if got, want := op.BaseNS, paper.baseUS*1000; math.Abs(got-want) > 0.5 {
			t.Errorf("%s: BaseNS = %v, want %v (paper vanilla)", name, got, want)
		}
		wantCalls := (paper.ftraceUS - paper.baseUS) * 1000 / ftraceCalibrationNS
		if math.Abs(op.TotalCalls-wantCalls)/wantCalls > 0.05 {
			t.Errorf("%s: TotalCalls = %v, want ~%v (fitted from paper Ftrace delta)", name, op.TotalCalls, wantCalls)
		}
	}
}

// TestCalibrationImpliesPaperSlowdowns sanity-checks that the calibration
// reproduces the paper's Ftrace slowdown per row analytically (before any
// simulation noise): base + calls*cost over base.
func TestCalibrationImpliesPaperSlowdowns(t *testing.T) {
	cat := newTestCatalog(t)
	for name, paper := range paperLatencies {
		op := cat.MustOp(name)
		predicted := (op.BaseNS + op.TotalCalls*ftraceCalibrationNS) / op.BaseNS
		published := paper.ftraceUS / paper.baseUS
		if math.Abs(predicted-published)/published > 0.06 {
			t.Errorf("%s: analytic ftrace slowdown %v vs paper %v", name, predicted, published)
		}
	}
}
