// Package kernel implements the simulated monolithic kernel substrate that
// replaces the patched Linux 2.6.28 of the paper. It provides:
//
//   - a deterministic symbol table of ~3800 core-kernel functions spread
//     across realistic subsystems (the orthonormal basis of the signature
//     vector space);
//   - syscall-level operations whose call paths traverse the symbol table
//     the way real kernel code paths do;
//   - an execution engine with a virtual nanosecond clock, per-CPU contexts,
//     and pluggable instrumentation backends (vanilla / Ftrace / Fmeter);
//   - a loadable-module registry whose functions are deliberately *excluded*
//     from the instrumented symbol table (paper §3): modules are only
//     visible through the core-kernel functions they call.
package kernel

import (
	"fmt"
	"sort"
)

// FuncID identifies a core-kernel function: it is the function's index in
// the symbol table. The paper identifies functions by start address because
// names can collide (duplicate statics); we keep both, and the address is
// derived deterministically so signatures are stable across "reboots" of the
// simulator, mirroring the paper's observation that kernel symbols load at
// the same address across reboots.
type FuncID int32

// InvalidFunc is the zero-value-adjacent sentinel for "no function".
const InvalidFunc FuncID = -1

// Subsystem labels the region of the kernel a function belongs to. It is
// used to build realistic per-workload call profiles and for diagnostics; it
// plays no role in signature construction (signatures see only counts).
type Subsystem int

// Subsystems of the simulated kernel. Start at 1 so the zero value is
// conspicuous.
const (
	SubSched Subsystem = iota + 1
	SubMM
	SubSlab
	SubPageCache
	SubPageFault
	SubVFS
	SubExt3
	SubBlock
	SubNetCore
	SubTCP
	SubIPv4
	SubSocket
	SubSkbuff
	SubNAPI
	SubIRQ
	SubSoftirq
	SubTimer
	SubLocking
	SubSignal
	SubPipe
	SubSelectPoll
	SubIPC
	SubForkExec
	SubCrypto
	SubWorkqueue
	SubTTY
	SubDMA
	SubDebugFS
	SubKmod
	SubMisc

	numSubsystems = int(SubMisc)
)

var subsystemNames = map[Subsystem]string{
	SubSched:      "sched",
	SubMM:         "mm",
	SubSlab:       "slab",
	SubPageCache:  "pagecache",
	SubPageFault:  "pagefault",
	SubVFS:        "vfs",
	SubExt3:       "ext3",
	SubBlock:      "block",
	SubNetCore:    "netcore",
	SubTCP:        "tcp",
	SubIPv4:       "ipv4",
	SubSocket:     "socket",
	SubSkbuff:     "skbuff",
	SubNAPI:       "napi",
	SubIRQ:        "irq",
	SubSoftirq:    "softirq",
	SubTimer:      "timer",
	SubLocking:    "locking",
	SubSignal:     "signal",
	SubPipe:       "pipe",
	SubSelectPoll: "selectpoll",
	SubIPC:        "ipc",
	SubForkExec:   "forkexec",
	SubCrypto:     "crypto",
	SubWorkqueue:  "workqueue",
	SubTTY:        "tty",
	SubDMA:        "dma",
	SubDebugFS:    "debugfs",
	SubKmod:       "kmod",
	SubMisc:       "misc",
}

// String returns the short subsystem name.
func (s Subsystem) String() string {
	if n, ok := subsystemNames[s]; ok {
		return n
	}
	return fmt.Sprintf("subsystem(%d)", int(s))
}

// Symbol describes one core-kernel function.
type Symbol struct {
	ID        FuncID
	Name      string
	Addr      uint64 // deterministic start address, the paper's identifier
	Subsystem Subsystem
}

// textBase is the simulated kernel text segment base; addresses grow from
// here in deterministic 16-byte-aligned increments.
const textBase uint64 = 0xffffffff81000000

// hotFunctions is the curated set of named functions that appear on the
// simulated call paths. They are the "hot set"; the remainder of the table
// is a generated cold tail that only background/boot activity touches.
// Names follow Linux 2.6-era conventions.
var hotFunctions = map[Subsystem][]string{
	SubSched: {
		"schedule", "__schedule", "pick_next_task_fair", "put_prev_task_fair",
		"enqueue_task_fair", "dequeue_task_fair", "update_curr",
		"check_preempt_wakeup", "try_to_wake_up", "wake_up_process",
		"scheduler_tick", "sched_clock", "context_switch", "finish_task_switch",
		"preempt_schedule", "cond_resched", "yield_task_fair", "sched_yield_op",
		"load_balance", "idle_balance", "set_task_cpu", "resched_task",
	},
	SubMM: {
		"do_mmap_pgoff", "mmap_region", "do_munmap", "vma_merge", "split_vma",
		"find_vma", "find_vma_prev", "anon_vma_prepare", "vm_normal_page",
		"get_user_pages", "follow_page", "do_brk", "expand_stack",
		"copy_page_range", "free_pgtables", "unmap_vmas", "zap_pte_range",
		"mprotect_fixup", "vm_stat_account",
	},
	SubSlab: {
		"kmalloc", "__kmalloc", "kfree", "kmem_cache_alloc", "kmem_cache_free",
		"cache_alloc_refill", "cache_flusharray", "slab_destroy",
		"kmem_cache_alloc_node", "kzalloc_op", "__alloc_pages_internal",
		"get_page_from_freelist", "free_hot_cold_page", "buffered_rmqueue",
		"zone_watermark_ok",
	},
	SubPageCache: {
		"find_get_page", "find_lock_page", "add_to_page_cache_lru",
		"page_cache_readahead", "do_generic_file_read", "generic_file_aio_read",
		"generic_file_aio_write", "generic_perform_write", "grab_cache_page",
		"mark_page_accessed", "page_waitqueue", "unlock_page", "lock_page",
		"wait_on_page_bit", "balance_dirty_pages_ratelimited",
		"write_cache_pages", "__set_page_dirty_buffers", "release_pages",
	},
	SubPageFault: {
		"do_page_fault", "handle_mm_fault", "handle_pte_fault", "do_anonymous_page",
		"do_linear_fault", "__do_fault", "do_wp_page", "do_swap_page",
		"pte_alloc_one", "pmd_alloc_op", "flush_tlb_page", "page_add_new_anon_rmap",
		"lru_cache_add_active", "bad_area_nosemaphore",
	},
	SubVFS: {
		"vfs_read", "vfs_write", "vfs_stat", "vfs_fstat", "vfs_lstat",
		"do_sys_open", "do_filp_open", "get_unused_fd_flags", "fd_install",
		"filp_close", "fput", "fget", "fget_light", "sys_read_op", "sys_write_op",
		"rw_verify_area", "do_sync_read", "do_sync_write", "generic_file_llseek",
		"dentry_open", "path_lookup", "do_path_lookup", "__link_path_walk",
		"do_lookup", "d_lookup", "d_alloc", "dput", "mntput_no_expire",
		"cp_new_stat", "generic_fillattr", "vfs_getattr", "touch_atime",
		"file_update_time", "vfs_fsync_op", "do_fsync", "generic_file_open",
		"may_open", "permission_op", "exec_permission_lite", "vfs_unlink_op",
		"vfs_mkdir_op", "vfs_readdir", "filldir64",
	},
	SubExt3: {
		"ext3_readpage", "ext3_writepage", "ext3_write_begin", "ext3_write_end",
		"ext3_get_block", "ext3_get_blocks_handle", "ext3_new_blocks",
		"ext3_free_blocks", "ext3_journal_start_sb", "__ext3_journal_stop",
		"ext3_mark_inode_dirty", "ext3_dirty_inode", "ext3_lookup",
		"ext3_create_op", "ext3_unlink_op", "ext3_mkdir_op", "ext3_readdir",
		"ext3_sync_file", "journal_add_journal_head", "journal_dirty_metadata",
		"journal_commit_transaction", "journal_get_write_access",
		"ext3_block_to_path", "ext3_find_entry", "ext3_add_entry",
	},
	SubBlock: {
		"generic_make_request", "submit_bio", "__make_request", "elv_merge",
		"elv_insert", "blk_plug_device", "blk_unplug_op", "__generic_unplug_device",
		"blk_complete_request", "end_that_request_first", "bio_alloc",
		"bio_put", "bio_endio", "get_request", "blk_rq_map_sg",
		"scsi_dispatch_cmd_op", "scsi_done_op", "disk_stat_add",
	},
	SubNetCore: {
		"dev_queue_xmit", "dev_hard_start_xmit", "netif_receive_skb",
		"netif_rx_op", "net_rx_action", "process_backlog", "__netif_schedule",
		"dev_kfree_skb_any", "eth_type_trans", "neigh_resolve_output",
		"dst_release", "netdev_pick_tx", "qdisc_restart", "pfifo_fast_enqueue",
		"pfifo_fast_dequeue", "net_tx_action", "skb_checksum_help",
	},
	SubTCP: {
		"tcp_sendmsg", "tcp_recvmsg", "tcp_push_op", "tcp_write_xmit",
		"tcp_transmit_skb", "tcp_v4_rcv", "tcp_rcv_established", "tcp_ack",
		"tcp_data_queue", "tcp_send_ack", "tcp_clean_rtx_queue", "tcp_rtt_estimator",
		"tcp_v4_do_rcv", "tcp_prequeue_process", "tcp_rcv_space_adjust",
		"tcp_event_data_recv", "tcp_current_mss", "tcp_init_tso_segs",
		"tcp_v4_connect", "tcp_connect_op", "tcp_close_op", "tcp_fin_op",
		"inet_csk_accept", "tcp_check_req", "tcp_v4_syn_recv_sock",
		"tcp_parse_options", "tcp_urg_op", "tcp_cwnd_validate",
	},
	SubIPv4: {
		"ip_queue_xmit", "ip_output", "ip_finish_output", "ip_local_out_op",
		"ip_rcv", "ip_rcv_finish", "ip_local_deliver", "ip_route_input",
		"ip_route_output_flow", "__ip_route_output_key", "rt_hash_op",
		"ip_fragment_op", "inet_sendmsg", "inet_recvmsg", "ip_cmsg_recv_op",
	},
	SubSocket: {
		"sys_socketcall_op", "sock_sendmsg", "sock_recvmsg", "sockfd_lookup_light",
		"sock_alloc_fd", "sock_map_fd", "sock_create_op", "inet_create_op",
		"sys_connect_op", "sys_accept_op", "sys_bind_op", "sys_listen_op",
		"sock_poll", "sock_close_op", "sock_release", "sock_wfree", "sock_rfree",
		"sk_stream_wait_memory", "release_sock", "lock_sock_nested",
		"sk_reset_timer", "sock_def_readable", "unix_stream_sendmsg",
		"unix_stream_recvmsg", "unix_write_space", "unix_stream_connect",
		"unix_accept_op", "scm_send_op", "scm_recv_op",
	},
	SubSkbuff: {
		"alloc_skb", "__alloc_skb", "kfree_skb", "__kfree_skb", "skb_clone",
		"skb_copy_datagram_iovec", "skb_copy_bits", "pskb_expand_head",
		"skb_put_op", "skb_pull_op", "skb_push_op", "skb_release_data",
		"skb_queue_tail_op", "skb_dequeue_op", "sock_alloc_send_pskb",
		"skb_checksum", "csum_partial_copy_generic_op",
	},
	SubNAPI: {
		"napi_schedule_op", "__napi_schedule", "napi_complete_op",
		"napi_gro_receive", "dev_gro_receive", "napi_gro_flush",
		"gro_pull_from_frag0", "skb_gro_receive", "inet_gro_receive",
		"tcp_gro_receive", "napi_get_frags", "lro_receive_skb_op",
		"lro_flush_all_op",
	},
	SubIRQ: {
		"do_IRQ", "handle_irq_event", "handle_edge_irq", "irq_enter",
		"irq_exit", "ack_apic_edge", "native_apic_mem_write", "handle_fasteoi_irq",
		"note_interrupt", "__do_softirq_wakeup",
	},
	SubSoftirq: {
		"do_softirq", "__do_softirq", "raise_softirq", "raise_softirq_irqoff",
		"local_bh_enable_op", "local_bh_disable_op", "ksoftirqd_op",
		"tasklet_action", "run_timer_softirq",
	},
	SubTimer: {
		"hrtimer_interrupt", "hrtimer_start_op", "hrtimer_cancel_op", "mod_timer",
		"del_timer", "add_timer_on_op", "run_local_timers", "update_process_times",
		"tick_sched_timer", "ktime_get", "getnstimeofday", "do_gettimeofday_op",
		"clockevents_program_event", "tick_program_event",
	},
	SubLocking: {
		"_spin_lock", "_spin_unlock", "_spin_lock_irqsave", "_spin_unlock_irqrestore",
		"_spin_lock_bh", "_spin_unlock_bh", "_read_lock", "_read_unlock",
		"_write_lock", "_write_unlock", "mutex_lock", "mutex_unlock",
		"__mutex_lock_slowpath", "down_read", "up_read", "down_write", "up_write",
		"__down_read_op", "rwsem_wake_op", "atomic_dec_and_lock_op",
	},
	SubSignal: {
		"sys_rt_sigaction_op", "do_sigaction", "sys_rt_sigprocmask_op",
		"get_signal_to_deliver", "dequeue_signal", "send_signal", "__send_signal",
		"complete_signal", "signal_wake_up", "do_notify_resume", "handle_signal",
		"setup_rt_frame", "sys_rt_sigreturn_op", "recalc_sigpending", "sigprocmask_op",
		"force_sig_info", "specific_send_sig_info",
	},
	SubPipe: {
		"pipe_read", "pipe_write", "pipe_poll", "pipe_release_op", "do_pipe_flags",
		"create_write_pipe", "create_read_pipe", "pipe_wait", "pipe_iov_copy_from_user",
		"pipe_iov_copy_to_user", "anon_pipe_buf_release",
	},
	SubSelectPoll: {
		"sys_select_op", "core_sys_select", "do_select", "poll_freewait",
		"poll_initwait", "__pollwait", "select_estimate_accuracy",
		"max_select_fd", "poll_select_copy_remaining", "sys_poll_op", "do_sys_poll",
		"sys_epoll_wait_op", "ep_poll_op",
	},
	SubIPC: {
		"sys_semop_op", "sys_semtimedop_op", "do_semtimedop", "sem_lock_op",
		"try_atomic_semop", "update_queue_op", "ipc_lock_op", "ipcperms_op",
		"sys_shmget_op", "sys_msgsnd_op", "sys_msgrcv_op", "fcntl_setlk",
		"fcntl_getlk", "posix_lock_file", "locks_alloc_lock", "locks_free_lock",
		"flock_lock_file_wait_op",
	},
	SubForkExec: {
		"do_fork", "copy_process", "dup_mm", "dup_task_struct", "alloc_pid",
		"copy_files", "copy_fs_op", "copy_sighand", "copy_signal_op",
		"wake_up_new_task", "do_execve", "search_binary_handler",
		"load_elf_binary", "flush_old_exec", "setup_arg_pages", "copy_strings",
		"open_exec", "do_exit", "exit_mm", "exit_files", "exit_notify",
		"release_task", "wait_task_zombie", "sys_wait4_op", "do_wait",
		"mm_release", "put_task_struct_op", "free_task_op",
	},
	SubCrypto: {
		"crypto_alloc_base_op", "crypto_aes_encrypt_op", "crypto_aes_decrypt_op",
		"sha1_update_op", "sha1_final_op", "md5_update_op", "crypto_cbc_encrypt_op",
		"crypto_cbc_decrypt_op", "crypto_hash_update_op", "scatterwalk_copychunks_op",
	},
	SubWorkqueue: {
		"queue_work", "queue_work_on_op", "__queue_work", "worker_thread_op",
		"run_workqueue", "insert_work", "flush_workqueue_op", "delayed_work_timer_fn",
		"schedule_work_op",
	},
	SubTTY: {
		"tty_read_op", "tty_write_op", "n_tty_read_op", "n_tty_write_op",
		"tty_insert_flip_string_op", "pty_write_op", "tty_ldisc_ref_op",
		"tty_poll_op",
	},
	SubDMA: {
		"dma_map_single_op", "dma_unmap_single_op", "dma_map_page_op",
		"dma_unmap_page_op", "swiotlb_map_single_op", "dma_sync_single_op",
	},
	SubDebugFS: {
		"debugfs_create_file_op", "debugfs_read_op", "debugfs_write_op",
		"simple_read_from_buffer_op", "simple_attr_read_op", "full_proxy_read_op",
	},
	SubKmod: {
		"load_module_op", "sys_init_module_op", "sys_delete_module_op",
		"module_put_op", "try_module_get_op", "resolve_symbol_op",
	},
	SubMisc: {
		"copy_to_user_op", "copy_from_user_op", "strncpy_from_user_op",
		"memset_op", "memcpy_op", "get_user_op", "put_user_op",
		"audit_syscall_entry_op", "audit_syscall_exit_op", "syscall_trace_enter",
		"syscall_trace_leave", "system_call_entry", "system_call_exit",
		"ret_from_fork_op", "native_set_pte_at_op", "prof_tick_op",
		"current_kernel_time_op", "capable_op", "security_file_permission_op",
	},
}

// coldCounts controls the size of the generated cold tail per subsystem; the
// totals are chosen so the full table lands near the paper's 3815 functions.
var coldCounts = map[Subsystem]int{
	SubSched: 120, SubMM: 230, SubSlab: 90, SubPageCache: 110, SubPageFault: 60,
	SubVFS: 300, SubExt3: 230, SubBlock: 180, SubNetCore: 230, SubTCP: 200,
	SubIPv4: 170, SubSocket: 130, SubSkbuff: 80, SubNAPI: 40, SubIRQ: 80,
	SubSoftirq: 40, SubTimer: 100, SubLocking: 60, SubSignal: 80, SubPipe: 30,
	SubSelectPoll: 40, SubIPC: 90, SubForkExec: 130, SubCrypto: 120,
	SubWorkqueue: 40, SubTTY: 90, SubDMA: 40, SubDebugFS: 30, SubKmod: 50,
	SubMisc: 129,
}

// SymbolTable is the immutable table of core-kernel functions. It induces
// the orthonormal basis of the signature space: dimension i of every
// signature corresponds to Symbols()[i].
type SymbolTable struct {
	symbols []Symbol
	byName  map[string]FuncID
	byAddr  map[uint64]FuncID
	hot     map[Subsystem][]FuncID
	cold    map[Subsystem][]FuncID
}

// NewSymbolTable builds the deterministic core-kernel symbol table. Two
// calls always produce identical tables (same names, same addresses), which
// is what makes signatures comparable across runs.
func NewSymbolTable() *SymbolTable {
	st := &SymbolTable{
		byName: make(map[string]FuncID),
		byAddr: make(map[uint64]FuncID),
		hot:    make(map[Subsystem][]FuncID),
		cold:   make(map[Subsystem][]FuncID),
	}
	subs := make([]Subsystem, 0, numSubsystems)
	for s := range subsystemNames {
		subs = append(subs, s)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i] < subs[j] })

	addr := textBase
	add := func(name string, sub Subsystem, hot bool) {
		id := FuncID(len(st.symbols))
		st.symbols = append(st.symbols, Symbol{ID: id, Name: name, Addr: addr, Subsystem: sub})
		st.byName[name] = id
		st.byAddr[addr] = id
		if hot {
			st.hot[sub] = append(st.hot[sub], id)
		} else {
			st.cold[sub] = append(st.cold[sub], id)
		}
		// Function sizes vary; keep 16-byte alignment like the real text
		// segment. The stride is deterministic in the symbol index.
		addr += 16 * (4 + uint64(len(name))%7)
	}
	for _, sub := range subs {
		for _, name := range hotFunctions[sub] {
			add(name, sub, true)
		}
		for i := 0; i < coldCounts[sub]; i++ {
			add(fmt.Sprintf("__%s_aux_%d", sub.String(), i), sub, false)
		}
	}
	return st
}

// Len returns the number of core-kernel functions (the signature dimension).
func (st *SymbolTable) Len() int { return len(st.symbols) }

// Symbols returns the symbol slice indexed by FuncID. Callers must not
// mutate it.
func (st *SymbolTable) Symbols() []Symbol { return st.symbols }

// Symbol returns the symbol for id.
func (st *SymbolTable) Symbol(id FuncID) (Symbol, error) {
	if id < 0 || int(id) >= len(st.symbols) {
		return Symbol{}, fmt.Errorf("kernel: invalid FuncID %d (table size %d)", id, len(st.symbols))
	}
	return st.symbols[id], nil
}

// Lookup resolves a function name to its FuncID.
func (st *SymbolTable) Lookup(name string) (FuncID, error) {
	id, ok := st.byName[name]
	if !ok {
		return InvalidFunc, fmt.Errorf("kernel: unknown function %q", name)
	}
	return id, nil
}

// MustLookup resolves a name known at development time; it panics on a miss
// since that is a programming error in an op definition, not runtime input.
func (st *SymbolTable) MustLookup(name string) FuncID {
	id, ok := st.byName[name]
	if !ok {
		panic(fmt.Sprintf("kernel: unknown function %q in op definition", name))
	}
	return id
}

// LookupAddr resolves a start address to its FuncID, the paper's identifier.
func (st *SymbolTable) LookupAddr(addr uint64) (FuncID, error) {
	id, ok := st.byAddr[addr]
	if !ok {
		return InvalidFunc, fmt.Errorf("kernel: no function at %#x", addr)
	}
	return id, nil
}

// Hot returns the hot (named) function IDs of a subsystem.
func (st *SymbolTable) Hot(sub Subsystem) []FuncID { return st.hot[sub] }

// Cold returns the generated cold-tail function IDs of a subsystem.
func (st *SymbolTable) Cold(sub Subsystem) []FuncID { return st.cold[sub] }

// Names returns the function names indexed by FuncID. The slice is freshly
// allocated.
func (st *SymbolTable) Names() []string {
	names := make([]string, len(st.symbols))
	for i, s := range st.symbols {
		names[i] = s.Name
	}
	return names
}
