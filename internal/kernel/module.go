package kernel

import (
	"fmt"
	"sort"
)

// Module models a runtime-loadable kernel module. The paper deliberately
// does not instrument module functions (§3): module code is relocated at
// load time and even tiny code changes shift all subsequent offsets, so
// Fmeter's signature space covers core-kernel functions only. A module is
// therefore visible to signatures exclusively through the core-kernel
// functions its entry points call.
type Module struct {
	Name    string
	Version string
	// Params are load-time parameters (e.g. the paper's myri10ge
	// lro_disable switch). They are informational; variants encode their
	// behavioural differences directly in their op profiles.
	Params map[string]string

	ops map[string]*Op
}

// ModuleOpSpec declares one module entry point: how many module-internal
// (uninstrumented) calls it performs and which core-kernel functions it
// invokes with what weights, scaled to CoreCalls total traced calls.
type ModuleOpSpec struct {
	Name string
	// BaseUS is the virtual latency of the entry point in microseconds,
	// including the module-internal work.
	BaseUS float64
	// CoreCalls is the mean number of core-kernel calls per execution.
	CoreCalls float64
	// ModuleCalls is the mean number of module-internal calls per
	// execution (cost only, never traced, never counted in signatures).
	ModuleCalls float64
	// CoreProfile maps core-kernel function name to relative weight.
	CoreProfile map[string]float64
}

// NewModule compiles a module against the core-kernel symbol table.
func NewModule(st *SymbolTable, name, version string, params map[string]string, specs []ModuleOpSpec) (*Module, error) {
	if name == "" {
		return nil, fmt.Errorf("kernel: module name must be non-empty")
	}
	m := &Module{
		Name:    name,
		Version: version,
		Params:  make(map[string]string, len(params)),
		ops:     make(map[string]*Op, len(specs)),
	}
	for k, v := range params {
		m.Params[k] = v
	}
	for _, spec := range specs {
		op, err := CompileOpFromCounts(st, spec.Name, spec.BaseUS, spec.CoreCalls, spec.ModuleCalls, spec.CoreProfile)
		if err != nil {
			return nil, fmt.Errorf("kernel: module %s op %s: %w", name, spec.Name, err)
		}
		if _, dup := m.ops[op.Name]; dup {
			return nil, fmt.Errorf("kernel: module %s has duplicate op %s", name, op.Name)
		}
		m.ops[op.Name] = op
	}
	return m, nil
}

// Op returns a module entry point by name.
func (m *Module) Op(name string) (*Op, error) {
	op, ok := m.ops[name]
	if !ok {
		return nil, fmt.Errorf("kernel: module %s has no op %q", m.Name, name)
	}
	return op, nil
}

// OpNames lists the module's entry points in sorted order.
func (m *Module) OpNames() []string {
	names := make([]string, 0, len(m.ops))
	for n := range m.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CompileOpFromCounts compiles an operation from a name→weight map. It is
// the exported construction path for packages (e.g. the driver simulator)
// that define ops outside this package's static catalog.
func CompileOpFromCounts(st *SymbolTable, name string, baseUS, totalCalls, moduleCalls float64, weights map[string]float64) (*Op, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("empty profile for op %s", name)
	}
	profile := make([]callWeight, 0, len(weights))
	fns := make([]string, 0, len(weights))
	for fn := range weights {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		profile = append(profile, callWeight{fn: fn, weight: weights[fn]})
	}
	return compileOp(st, OpSpec{
		Name:        name,
		BaseUS:      baseUS,
		TotalCalls:  totalCalls,
		ModuleCalls: moduleCalls,
		Profile:     profile,
	})
}
