package kernel

import (
	"fmt"
	"math"
	"sort"
)

// callWeight is one entry of an operation's call profile: a core-kernel
// function and its relative weight within the op. Weights are scaled so the
// op's total call count matches TotalCalls.
type callWeight struct {
	fn     string
	weight float64
}

// OpSpec is the declarative definition of a kernel operation (a syscall
// path or kernel event). BaseUS is the virtual latency of the operation on
// an un-instrumented kernel in microseconds; TotalCalls is the mean number
// of core-kernel function invocations the op performs. Both are calibrated
// against the paper's Table 1 where the op appears there, and hand-set from
// kernel-path intuition otherwise.
type OpSpec struct {
	Name        string
	BaseUS      float64
	TotalCalls  float64
	ModuleCalls float64 // calls into uninstrumented module code (cost, no trace)
	Profile     []callWeight
}

// Op is a compiled operation: the profile resolved against a symbol table
// and scaled to per-execution mean call counts.
type Op struct {
	Name        string
	BaseNS      float64
	TotalCalls  float64
	ModuleCalls float64
	Funcs       []FuncID  // parallel to MeanCounts
	MeanCounts  []float64 // mean invocations of Funcs[i] per op execution
}

// p is shorthand for a profile entry.
func p(fn string, w float64) callWeight { return callWeight{fn: fn, weight: w} }

// path returns weight-1 profile entries for a straight-line call path.
func path(fns ...string) []callWeight {
	out := make([]callWeight, len(fns))
	for i, f := range fns {
		out[i] = callWeight{fn: f, weight: 1}
	}
	return out
}

// merge concatenates profile fragments.
func merge(parts ...[]callWeight) []callWeight {
	var out []callWeight
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// syscallEntry is the common entry/exit fragment every syscall path shares.
func syscallEntry() []callWeight {
	return []callWeight{
		p("system_call_entry", 1), p("system_call_exit", 1),
		p("syscall_trace_enter", 0.1), p("syscall_trace_leave", 0.1),
	}
}

// Canonical operation names. Workloads and benchmarks refer to ops by these
// constants; typos become compile errors instead of runtime map misses.
const (
	OpSimpleSyscall   = "simple_syscall"
	OpSimpleRead      = "simple_read"
	OpSimpleWrite     = "simple_write"
	OpSimpleStat      = "simple_stat"
	OpSimpleFstat     = "simple_fstat"
	OpSimpleOpenClose = "simple_open_close"
	OpSelect10        = "select_10fd"
	OpSelect10TCP     = "select_10tcp"
	OpSelect100       = "select_100fd"
	OpSelect100TCP    = "select_100tcp"
	OpSignalInstall   = "signal_install"
	OpSignalHandle    = "signal_handler"
	OpProtFault       = "protection_fault"
	OpPipeLatency     = "pipe_latency"
	OpAFUnixLatency   = "af_unix_latency"
	OpFcntlLock       = "fcntl_lock"
	OpSemaphore       = "semaphore"
	OpForkExit        = "fork_exit"
	OpForkExecve      = "fork_execve"
	OpForkSh          = "fork_sh"
	OpMmapFile        = "mmap_file"
	OpPageFault       = "pagefault"
	OpUnixConnect     = "unix_connect"

	OpHTTPRequest  = "http_request"
	OpDbenchIO     = "dbench_io"
	OpScpChunk     = "scp_chunk"
	OpCompileUnit  = "compile_unit"
	OpDiskRead     = "disk_read"
	OpDiskWrite    = "disk_write"
	OpFsyncOp      = "fsync"
	OpCtxSwitch    = "ctx_switch"
	OpTimerTick    = "timer_tick"
	OpBgHousekeep  = "bg_housekeeping"
	OpDaemonLog    = "daemon_logging"
	OpBootPhase    = "boot_phase"
	OpTCPTxSegment = "tcp_tx_segment"
)

// opSpecs is the operation catalog. The 23 lmbench rows of Table 1 have
// BaseUS taken from the paper's vanilla column and TotalCalls fitted from
// the paper's Ftrace column under the global Ftrace per-call cost (see
// trace package): calls = (ftrace_us - base_us) / 0.040.
var opSpecs = []OpSpec{
	{
		Name: OpSimpleSyscall, BaseUS: 0.041, TotalCalls: 4.2,
		Profile: merge(syscallEntry(), path("getnstimeofday", "current_kernel_time_op")),
	},
	{
		Name: OpSimpleRead, BaseUS: 0.101, TotalCalls: 27.4,
		Profile: merge(syscallEntry(), path(
			"sys_read_op", "fget_light", "vfs_read", "rw_verify_area",
			"security_file_permission_op", "do_sync_read", "generic_file_aio_read",
			"do_generic_file_read", "find_get_page", "mark_page_accessed",
			"copy_to_user_op", "touch_atime", "fput",
		), []callWeight{p("_spin_lock", 3), p("_spin_unlock", 3), p("find_get_page", 1)}),
	},
	{
		Name: OpSimpleWrite, BaseUS: 0.086, TotalCalls: 23.2,
		Profile: merge(syscallEntry(), path(
			"sys_write_op", "fget_light", "vfs_write", "rw_verify_area",
			"security_file_permission_op", "do_sync_write", "generic_file_aio_write",
			"generic_perform_write", "grab_cache_page", "copy_from_user_op",
			"__set_page_dirty_buffers", "balance_dirty_pages_ratelimited",
			"file_update_time", "fput",
		), []callWeight{p("_spin_lock", 2), p("_spin_unlock", 2)}),
	},
	{
		Name: OpSimpleStat, BaseUS: 0.721, TotalCalls: 157.2,
		Profile: merge(syscallEntry(), path(
			"vfs_stat", "vfs_getattr", "generic_fillattr", "cp_new_stat",
			"copy_to_user_op",
		), []callWeight{
			p("path_lookup", 2), p("do_path_lookup", 2), p("__link_path_walk", 6),
			p("do_lookup", 6), p("d_lookup", 8), p("permission_op", 6),
			p("exec_permission_lite", 4), p("dput", 6), p("mntput_no_expire", 2),
			p("_spin_lock", 20), p("_spin_unlock", 20), p("atomic_dec_and_lock_op", 4),
		}),
	},
	{
		Name: OpSimpleFstat, BaseUS: 0.100, TotalCalls: 18.8,
		Profile: merge(syscallEntry(), path(
			"vfs_fstat", "fget_light", "vfs_getattr", "generic_fillattr",
			"cp_new_stat", "copy_to_user_op", "fput",
		), []callWeight{p("_spin_lock", 2), p("_spin_unlock", 2)}),
	},
	{
		Name: OpSimpleOpenClose, BaseUS: 1.193, TotalCalls: 250.7,
		Profile: merge(syscallEntry(), path(
			"do_sys_open", "do_filp_open", "dentry_open", "get_unused_fd_flags",
			"fd_install", "may_open", "generic_file_open", "filp_close", "fput",
		), []callWeight{
			p("path_lookup", 2), p("__link_path_walk", 8), p("do_lookup", 8),
			p("d_lookup", 10), p("permission_op", 8), p("dput", 8),
			p("kmem_cache_alloc", 4), p("kmem_cache_free", 4),
			p("_spin_lock", 30), p("_spin_unlock", 30),
			p("ext3_lookup", 2), p("ext3_find_entry", 2),
		}),
	},
	{
		Name: OpSelect10, BaseUS: 0.231, TotalCalls: 29.5,
		Profile: merge(syscallEntry(), path(
			"sys_select_op", "core_sys_select", "do_select", "poll_initwait",
			"poll_freewait", "select_estimate_accuracy", "max_select_fd",
			"poll_select_copy_remaining", "copy_from_user_op", "copy_to_user_op",
		), []callWeight{p("fget_light", 10), p("pipe_poll", 10), p("__pollwait", 2)}),
	},
	{
		Name: OpSelect10TCP, BaseUS: 0.261, TotalCalls: 38.4,
		Profile: merge(syscallEntry(), path(
			"sys_select_op", "core_sys_select", "do_select", "poll_initwait",
			"poll_freewait", "select_estimate_accuracy", "max_select_fd",
			"poll_select_copy_remaining", "copy_from_user_op", "copy_to_user_op",
		), []callWeight{
			p("fget_light", 10), p("sock_poll", 10), p("lock_sock_nested", 2),
			p("release_sock", 2), p("__pollwait", 2),
		}),
	},
	{
		Name: OpSelect100, BaseUS: 0.897, TotalCalls: 222.8,
		Profile: merge(syscallEntry(), path(
			"sys_select_op", "core_sys_select", "do_select", "poll_initwait",
			"poll_freewait", "select_estimate_accuracy", "max_select_fd",
			"poll_select_copy_remaining", "copy_from_user_op", "copy_to_user_op",
		), []callWeight{p("fget_light", 100), p("pipe_poll", 100), p("__pollwait", 8)}),
	},
	{
		Name: OpSelect100TCP, BaseUS: 2.189, TotalCalls: 610.7,
		Profile: merge(syscallEntry(), path(
			"sys_select_op", "core_sys_select", "do_select", "poll_initwait",
			"poll_freewait", "select_estimate_accuracy", "max_select_fd",
			"poll_select_copy_remaining", "copy_from_user_op", "copy_to_user_op",
		), []callWeight{
			p("fget_light", 100), p("sock_poll", 100), p("lock_sock_nested", 60),
			p("release_sock", 60), p("__pollwait", 8), p("_spin_lock", 80),
			p("_spin_unlock", 80),
		}),
	},
	{
		Name: OpSignalInstall, BaseUS: 0.113, TotalCalls: 4.2,
		Profile: merge(syscallEntry(), path("sys_rt_sigaction_op", "do_sigaction")),
	},
	{
		Name: OpSignalHandle, BaseUS: 0.909, TotalCalls: 55.4,
		Profile: merge(syscallEntry(), path(
			"force_sig_info", "specific_send_sig_info", "__send_signal",
			"complete_signal", "signal_wake_up", "get_signal_to_deliver",
			"dequeue_signal", "recalc_sigpending", "do_notify_resume",
			"handle_signal", "setup_rt_frame", "sys_rt_sigreturn_op",
			"copy_to_user_op", "copy_from_user_op",
		), []callWeight{p("_spin_lock_irqsave", 6), p("_spin_unlock_irqrestore", 6)}),
	},
	{
		Name: OpProtFault, BaseUS: 0.185, TotalCalls: 10.6,
		Profile: merge(path(
			"do_page_fault", "bad_area_nosemaphore", "force_sig_info",
			"__send_signal", "signal_wake_up", "find_vma", "down_read", "up_read",
		)),
	},
	{
		Name: OpPipeLatency, BaseUS: 2.492, TotalCalls: 248.2,
		Profile: merge(syscallEntry(), syscallEntry(), path(
			"pipe_read", "pipe_write", "pipe_wait", "pipe_iov_copy_from_user",
			"pipe_iov_copy_to_user", "anon_pipe_buf_release",
		), []callWeight{
			p("schedule", 2), p("__schedule", 2), p("pick_next_task_fair", 2),
			p("context_switch", 2), p("finish_task_switch", 2),
			p("try_to_wake_up", 2), p("enqueue_task_fair", 2), p("dequeue_task_fair", 2),
			p("update_curr", 4), p("mutex_lock", 4), p("mutex_unlock", 4),
			p("copy_to_user_op", 2), p("copy_from_user_op", 2),
			p("_spin_lock_irqsave", 8), p("_spin_unlock_irqrestore", 8),
		}),
	},
	{
		Name: OpAFUnixLatency, BaseUS: 4.828, TotalCalls: 573.0,
		Profile: merge(syscallEntry(), syscallEntry(), path(
			"unix_stream_sendmsg", "unix_stream_recvmsg", "sock_sendmsg",
			"sock_recvmsg", "sockfd_lookup_light", "unix_write_space",
		), []callWeight{
			p("sock_alloc_send_pskb", 2), p("alloc_skb", 2), p("__alloc_skb", 2),
			p("kfree_skb", 2), p("__kfree_skb", 2), p("skb_release_data", 2),
			p("skb_copy_datagram_iovec", 2), p("skb_queue_tail_op", 2),
			p("skb_dequeue_op", 2), p("sock_def_readable", 2),
			p("schedule", 2), p("__schedule", 2), p("context_switch", 2),
			p("try_to_wake_up", 2), p("kmem_cache_alloc", 4), p("kmem_cache_free", 4),
			p("_spin_lock", 12), p("_spin_unlock", 12),
			p("copy_to_user_op", 2), p("copy_from_user_op", 2),
		}),
	},
	{
		Name: OpFcntlLock, BaseUS: 1.219, TotalCalls: 135.5,
		Profile: merge(syscallEntry(), path(
			"fcntl_setlk", "fcntl_getlk", "posix_lock_file", "locks_alloc_lock",
			"locks_free_lock", "fget_light", "fput",
		), []callWeight{
			p("kmem_cache_alloc", 2), p("kmem_cache_free", 2),
			p("_spin_lock", 8), p("_spin_unlock", 8), p("copy_from_user_op", 1),
		}),
	},
	{
		Name: OpSemaphore, BaseUS: 2.890, TotalCalls: 80.7,
		Profile: merge(syscallEntry(), path(
			"sys_semop_op", "sys_semtimedop_op", "do_semtimedop", "sem_lock_op",
			"try_atomic_semop", "update_queue_op", "ipc_lock_op", "ipcperms_op",
		), []callWeight{
			p("schedule", 1), p("try_to_wake_up", 1),
			p("_spin_lock", 6), p("_spin_unlock", 6), p("copy_from_user_op", 1),
		}),
	},
	{
		Name: OpForkExit, BaseUS: 208.914, TotalCalls: 22697,
		Profile: merge(syscallEntry(), path(
			"do_fork", "copy_process", "dup_task_struct", "alloc_pid",
			"copy_files", "copy_fs_op", "copy_sighand", "copy_signal_op",
			"wake_up_new_task", "ret_from_fork_op", "do_exit", "exit_mm",
			"exit_files", "exit_notify", "release_task", "wait_task_zombie",
			"sys_wait4_op", "do_wait", "mm_release", "put_task_struct_op",
			"free_task_op",
		), []callWeight{
			p("dup_mm", 1), p("copy_page_range", 40),
			p("kmem_cache_alloc", 60), p("kmem_cache_free", 60),
			p("__alloc_pages_internal", 30), p("get_page_from_freelist", 30),
			p("free_hot_cold_page", 30), p("free_pgtables", 8), p("unmap_vmas", 8),
			p("zap_pte_range", 30), p("find_vma", 20), p("anon_vma_prepare", 10),
			p("_spin_lock", 120), p("_spin_unlock", 120),
			p("schedule", 4), p("context_switch", 4), p("try_to_wake_up", 4),
			p("native_set_pte_at_op", 60),
		}),
	},
	{
		Name: OpForkExecve, BaseUS: 672.266, TotalCalls: 60553,
		Profile: merge(syscallEntry(), path(
			"do_fork", "copy_process", "dup_task_struct", "alloc_pid",
			"wake_up_new_task", "ret_from_fork_op", "do_execve",
			"search_binary_handler", "load_elf_binary", "flush_old_exec",
			"setup_arg_pages", "open_exec", "do_exit", "exit_mm", "exit_files",
			"exit_notify", "release_task", "sys_wait4_op", "do_wait",
		), []callWeight{
			p("copy_strings", 8), p("do_mmap_pgoff", 20), p("mmap_region", 20),
			p("find_vma", 40), p("do_page_fault", 60), p("handle_mm_fault", 60),
			p("handle_pte_fault", 60), p("do_anonymous_page", 30), p("__do_fault", 30),
			p("kmem_cache_alloc", 120), p("kmem_cache_free", 120),
			p("__alloc_pages_internal", 80), p("get_page_from_freelist", 80),
			p("copy_page_range", 20), p("zap_pte_range", 60),
			p("path_lookup", 6), p("__link_path_walk", 20), p("d_lookup", 20),
			p("vfs_read", 10), p("find_get_page", 40),
			p("_spin_lock", 260), p("_spin_unlock", 260),
			p("native_set_pte_at_op", 120), p("lru_cache_add_active", 40),
		}),
	},
	{
		Name: OpForkSh, BaseUS: 1446.800, TotalCalls: 124355,
		Profile: merge(syscallEntry(), path(
			"do_fork", "copy_process", "do_execve", "search_binary_handler",
			"load_elf_binary", "flush_old_exec", "setup_arg_pages", "open_exec",
			"do_exit", "exit_mm", "exit_files", "exit_notify", "release_task",
			"sys_wait4_op", "do_wait",
		), []callWeight{
			p("copy_strings", 16), p("do_mmap_pgoff", 50), p("mmap_region", 50),
			p("find_vma", 100), p("do_page_fault", 160), p("handle_mm_fault", 160),
			p("handle_pte_fault", 160), p("do_anonymous_page", 80), p("__do_fault", 80),
			p("kmem_cache_alloc", 260), p("kmem_cache_free", 260),
			p("__alloc_pages_internal", 180), p("get_page_from_freelist", 180),
			p("copy_page_range", 40), p("zap_pte_range", 140),
			p("path_lookup", 20), p("__link_path_walk", 60), p("d_lookup", 70),
			p("do_lookup", 50), p("vfs_read", 40), p("find_get_page", 120),
			p("do_sys_open", 20), p("filp_close", 20),
			p("_spin_lock", 500), p("_spin_unlock", 500),
			p("native_set_pte_at_op", 260), p("lru_cache_add_active", 90),
			p("schedule", 10), p("context_switch", 10),
		}),
	},
	{
		Name: OpMmapFile, BaseUS: 206.750, TotalCalls: 39844,
		Profile: merge(syscallEntry(), path(
			"do_mmap_pgoff", "mmap_region", "do_munmap",
		), []callWeight{
			p("find_vma", 60), p("find_vma_prev", 20), p("vma_merge", 20),
			p("split_vma", 8), p("anon_vma_prepare", 20),
			p("do_page_fault", 400), p("handle_mm_fault", 400),
			p("handle_pte_fault", 400), p("do_linear_fault", 320), p("__do_fault", 320),
			p("find_get_page", 360), p("add_to_page_cache_lru", 120),
			p("page_cache_readahead", 40), p("ext3_readpage", 120),
			p("ext3_get_block", 130), p("mark_page_accessed", 330),
			p("kmem_cache_alloc", 160), p("__alloc_pages_internal", 140),
			p("get_page_from_freelist", 140), p("unmap_vmas", 10),
			p("zap_pte_range", 210), p("free_pgtables", 10),
			p("_spin_lock", 600), p("_spin_unlock", 600),
			p("native_set_pte_at_op", 400), p("lru_cache_add_active", 120),
			p("flush_tlb_page", 100), p("release_pages", 40),
		}),
	},
	{
		Name: OpPageFault, BaseUS: 0.677, TotalCalls: 75.0,
		Profile: merge(path(
			"do_page_fault", "handle_mm_fault", "handle_pte_fault",
			"do_linear_fault", "__do_fault", "find_vma", "down_read", "up_read",
			"find_get_page", "mark_page_accessed", "page_add_new_anon_rmap",
			"native_set_pte_at_op", "flush_tlb_page",
		), []callWeight{p("_spin_lock", 4), p("_spin_unlock", 4)}),
	},
	{
		Name: OpUnixConnect, BaseUS: 15.328, TotalCalls: 1651.3,
		Profile: merge(syscallEntry(), syscallEntry(), path(
			"sys_connect_op", "unix_stream_connect", "sys_accept_op",
			"unix_accept_op", "sock_create_op", "sock_alloc_fd", "sock_map_fd",
			"sock_release", "sock_close_op",
		), []callWeight{
			p("kmem_cache_alloc", 20), p("kmem_cache_free", 12),
			p("alloc_skb", 4), p("__alloc_skb", 4),
			p("d_alloc", 4), p("dput", 4), p("fd_install", 2),
			p("get_unused_fd_flags", 2), p("schedule", 2), p("context_switch", 2),
			p("try_to_wake_up", 2), p("sock_def_readable", 2),
			p("_spin_lock", 40), p("_spin_unlock", 40),
		}),
	},

	// ---- Macro-workload building blocks (not in Table 1) ----
	{
		// One HTTP request served by apache over loopback: accept + reads +
		// writes + sendfile-ish page cache traffic + close. Calls fitted so
		// the apachebench table reproduces its shape (see Table 2 bench).
		Name: OpHTTPRequest, BaseUS: 70.3, TotalCalls: 2768,
		Profile: merge(syscallEntry(), syscallEntry(), path(
			"sys_accept_op", "inet_csk_accept", "sock_alloc_fd", "sock_map_fd",
			"tcp_check_req", "tcp_v4_syn_recv_sock", "sock_close_op", "sock_release",
			"tcp_close_op", "tcp_fin_op",
		), []callWeight{
			p("sock_recvmsg", 3), p("tcp_recvmsg", 3), p("sock_sendmsg", 3),
			p("tcp_sendmsg", 3), p("tcp_push_op", 3), p("tcp_write_xmit", 4),
			p("tcp_transmit_skb", 6), p("tcp_current_mss", 4),
			p("ip_queue_xmit", 6), p("ip_output", 6), p("ip_finish_output", 6),
			p("ip_local_out_op", 6), p("dev_queue_xmit", 6), p("dev_hard_start_xmit", 6),
			p("ip_rcv", 8), p("ip_rcv_finish", 8), p("ip_local_deliver", 8),
			p("ip_route_input", 8), p("tcp_v4_rcv", 8), p("tcp_v4_do_rcv", 8),
			p("tcp_rcv_established", 8), p("tcp_ack", 6), p("tcp_data_queue", 4),
			p("tcp_send_ack", 3), p("tcp_clean_rtx_queue", 4), p("tcp_rtt_estimator", 4),
			p("tcp_event_data_recv", 4), p("alloc_skb", 10), p("__alloc_skb", 10),
			p("kfree_skb", 10), p("__kfree_skb", 10), p("skb_release_data", 10),
			p("skb_clone", 4), p("skb_copy_datagram_iovec", 3),
			p("netif_receive_skb", 8), p("net_rx_action", 4), p("process_backlog", 4),
			p("eth_type_trans", 8), p("do_softirq", 6), p("__do_softirq", 6),
			p("raise_softirq", 6), p("local_bh_enable_op", 10), p("local_bh_disable_op", 10),
			p("fget_light", 8), p("fput", 6), p("find_get_page", 12),
			p("vfs_read", 2), p("do_generic_file_read", 2),
			p("lock_sock_nested", 10), p("release_sock", 10),
			p("sock_poll", 4), p("sk_reset_timer", 4), p("mod_timer", 4),
			p("schedule", 4), p("__schedule", 4), p("context_switch", 4),
			p("try_to_wake_up", 4), p("sock_def_readable", 4),
			p("kmem_cache_alloc", 24), p("kmem_cache_free", 24),
			p("_spin_lock", 60), p("_spin_unlock", 60),
			p("_spin_lock_bh", 20), p("_spin_unlock_bh", 20),
			p("copy_to_user_op", 4), p("copy_from_user_op", 4),
			p("ktime_get", 6), p("csum_partial_copy_generic_op", 6),
		}),
	},
	{
		// One dbench I/O transaction: metadata-heavy mix of creates, writes,
		// reads, unlinks against ext3 through the page cache.
		Name: OpDbenchIO, BaseUS: 38.0, TotalCalls: 2100,
		Profile: merge(syscallEntry(), []callWeight{
			p("do_sys_open", 2), p("do_filp_open", 2), p("dentry_open", 2),
			p("filp_close", 2), p("fput", 4), p("fget_light", 6),
			p("path_lookup", 4), p("__link_path_walk", 12), p("do_lookup", 10),
			p("d_lookup", 14), p("d_alloc", 2), p("dput", 10), p("permission_op", 8),
			p("vfs_write", 4), p("do_sync_write", 4), p("generic_file_aio_write", 4),
			p("generic_perform_write", 6), p("grab_cache_page", 8),
			p("__set_page_dirty_buffers", 8), p("balance_dirty_pages_ratelimited", 4),
			p("vfs_read", 3), p("do_sync_read", 3), p("generic_file_aio_read", 3),
			p("do_generic_file_read", 3), p("find_get_page", 16),
			p("ext3_write_begin", 6), p("ext3_write_end", 6), p("ext3_get_block", 8),
			p("ext3_get_blocks_handle", 8), p("ext3_new_blocks", 3),
			p("ext3_free_blocks", 2), p("ext3_journal_start_sb", 8),
			p("__ext3_journal_stop", 8), p("ext3_mark_inode_dirty", 8),
			p("ext3_dirty_inode", 8), p("journal_add_journal_head", 6),
			p("journal_dirty_metadata", 6), p("journal_get_write_access", 6),
			p("ext3_lookup", 3), p("ext3_find_entry", 4), p("ext3_add_entry", 2),
			p("ext3_create_op", 1), p("ext3_unlink_op", 1), p("ext3_readdir", 1),
			p("vfs_readdir", 1), p("filldir64", 4), p("vfs_unlink_op", 1),
			p("generic_fillattr", 3), p("vfs_getattr", 3), p("cp_new_stat", 3),
			p("file_update_time", 6), p("touch_atime", 4),
			p("kmem_cache_alloc", 30), p("kmem_cache_free", 30),
			p("__alloc_pages_internal", 10), p("get_page_from_freelist", 10),
			p("mark_page_accessed", 12), p("unlock_page", 10), p("lock_page", 10),
			p("_spin_lock", 80), p("_spin_unlock", 80),
			p("mutex_lock", 12), p("mutex_unlock", 12),
			p("copy_from_user_op", 6), p("copy_to_user_op", 5),
		}),
	},
	{
		// One scp chunk (64KB): read from disk, encrypt (user CPU + crypto
		// helpers), send over TCP.
		Name: OpScpChunk, BaseUS: 95.0, TotalCalls: 1750,
		Profile: merge(syscallEntry(), []callWeight{
			p("vfs_read", 2), p("do_sync_read", 2), p("generic_file_aio_read", 2),
			p("do_generic_file_read", 2), p("find_get_page", 18),
			p("page_cache_readahead", 2), p("ext3_readpage", 4), p("ext3_get_block", 5),
			p("mark_page_accessed", 16), p("copy_to_user_op", 6),
			p("crypto_aes_encrypt_op", 18), p("crypto_cbc_encrypt_op", 16),
			p("sha1_update_op", 10), p("crypto_hash_update_op", 10),
			p("scatterwalk_copychunks_op", 8),
			p("sock_sendmsg", 2), p("tcp_sendmsg", 2), p("tcp_push_op", 2),
			p("tcp_write_xmit", 4), p("tcp_transmit_skb", 12), p("tcp_current_mss", 4),
			p("tcp_init_tso_segs", 4), p("tcp_cwnd_validate", 4),
			p("ip_queue_xmit", 12), p("ip_output", 12), p("ip_finish_output", 12),
			p("dev_queue_xmit", 12), p("dev_hard_start_xmit", 12),
			p("qdisc_restart", 6), p("pfifo_fast_enqueue", 12), p("pfifo_fast_dequeue", 12),
			p("tcp_ack", 8), p("tcp_clean_rtx_queue", 8), p("tcp_v4_rcv", 8),
			p("tcp_rcv_established", 8), p("alloc_skb", 14), p("__alloc_skb", 14),
			p("kfree_skb", 14), p("__kfree_skb", 14), p("skb_release_data", 14),
			p("sock_alloc_send_pskb", 8), p("sk_stream_wait_memory", 2),
			p("lock_sock_nested", 6), p("release_sock", 6),
			p("csum_partial_copy_generic_op", 12), p("skb_checksum", 6),
			p("net_rx_action", 4), p("netif_receive_skb", 8), p("process_backlog", 4),
			p("do_softirq", 6), p("__do_softirq", 6),
			p("do_IRQ", 6), p("handle_irq_event", 6), p("irq_enter", 6), p("irq_exit", 6),
			p("kmem_cache_alloc", 24), p("kmem_cache_free", 24),
			p("_spin_lock", 50), p("_spin_unlock", 50),
			p("_spin_lock_bh", 16), p("_spin_unlock_bh", 16),
			p("schedule", 2), p("context_switch", 2), p("try_to_wake_up", 2),
			p("copy_from_user_op", 4),
		}),
	},
	{
		// One compilation unit of the kernel compile: fork/exec of cc1,
		// header stats/opens/reads, mmaps, page faults, object write. The
		// heavy user-mode time is accounted separately by the workload.
		Name: OpCompileUnit, BaseUS: 4200.0, TotalCalls: 310000,
		Profile: merge([]callWeight{
			p("do_fork", 2), p("copy_process", 2), p("do_execve", 2),
			p("search_binary_handler", 2), p("load_elf_binary", 2),
			p("flush_old_exec", 2), p("setup_arg_pages", 2), p("open_exec", 2),
			p("do_exit", 2), p("exit_mm", 2), p("exit_files", 2), p("exit_notify", 2),
			p("release_task", 2), p("sys_wait4_op", 2), p("do_wait", 2),
			p("do_sys_open", 40), p("do_filp_open", 40), p("filp_close", 40),
			p("fget_light", 160), p("fput", 80),
			p("path_lookup", 60), p("__link_path_walk", 200), p("do_lookup", 180),
			p("d_lookup", 260), p("permission_op", 160), p("dput", 160),
			p("vfs_stat", 60), p("vfs_getattr", 60), p("generic_fillattr", 60),
			p("cp_new_stat", 60),
			p("vfs_read", 220), p("do_sync_read", 220), p("generic_file_aio_read", 220),
			p("do_generic_file_read", 220), p("find_get_page", 1400),
			p("mark_page_accessed", 1100), p("page_cache_readahead", 60),
			p("ext3_readpage", 140), p("ext3_get_block", 160), p("ext3_lookup", 40),
			p("ext3_find_entry", 50),
			p("vfs_write", 60), p("do_sync_write", 60), p("generic_perform_write", 90),
			p("grab_cache_page", 120), p("__set_page_dirty_buffers", 120),
			p("ext3_write_begin", 60), p("ext3_write_end", 60),
			p("ext3_journal_start_sb", 70), p("__ext3_journal_stop", 70),
			p("ext3_mark_inode_dirty", 60), p("journal_dirty_metadata", 50),
			p("do_mmap_pgoff", 60), p("mmap_region", 60), p("do_munmap", 40),
			p("find_vma", 700), p("vma_merge", 30), p("anon_vma_prepare", 60),
			p("do_page_fault", 2600), p("handle_mm_fault", 2600),
			p("handle_pte_fault", 2600), p("do_anonymous_page", 1300),
			p("do_linear_fault", 900), p("__do_fault", 900), p("do_wp_page", 300),
			p("page_add_new_anon_rmap", 1300), p("lru_cache_add_active", 1200),
			p("native_set_pte_at_op", 2600), p("flush_tlb_page", 700),
			p("kmem_cache_alloc", 2200), p("kmem_cache_free", 2200),
			p("__alloc_pages_internal", 1500), p("get_page_from_freelist", 1500),
			p("free_hot_cold_page", 1300), p("zap_pte_range", 1200),
			p("free_pgtables", 60), p("unmap_vmas", 60), p("copy_page_range", 80),
			p("_spin_lock", 7000), p("_spin_unlock", 7000),
			p("_spin_lock_irqsave", 1200), p("_spin_unlock_irqrestore", 1200),
			p("down_read", 2600), p("up_read", 2600),
			p("mutex_lock", 400), p("mutex_unlock", 400),
			p("schedule", 120), p("__schedule", 120), p("pick_next_task_fair", 120),
			p("context_switch", 120), p("finish_task_switch", 120),
			p("try_to_wake_up", 120), p("update_curr", 300),
			p("copy_to_user_op", 400), p("copy_from_user_op", 300),
			p("scheduler_tick", 40), p("update_process_times", 40),
		}),
	},
	{
		Name: OpDiskRead, BaseUS: 120.0, TotalCalls: 900,
		Profile: merge(syscallEntry(), []callWeight{
			p("vfs_read", 1), p("do_sync_read", 1), p("generic_file_aio_read", 1),
			p("do_generic_file_read", 1), p("find_get_page", 16),
			p("page_cache_readahead", 2), p("add_to_page_cache_lru", 8),
			p("ext3_readpage", 8), p("ext3_get_block", 9), p("ext3_get_blocks_handle", 9),
			p("ext3_block_to_path", 9), p("generic_make_request", 4), p("submit_bio", 4),
			p("__make_request", 4), p("elv_merge", 4), p("elv_insert", 2),
			p("blk_plug_device", 2), p("__generic_unplug_device", 2),
			p("bio_alloc", 4), p("bio_put", 4), p("bio_endio", 4),
			p("get_request", 4), p("blk_rq_map_sg", 4), p("scsi_dispatch_cmd_op", 4),
			p("scsi_done_op", 4), p("blk_complete_request", 4),
			p("end_that_request_first", 4), p("disk_stat_add", 8),
			p("do_IRQ", 4), p("handle_irq_event", 4), p("irq_enter", 4), p("irq_exit", 4),
			p("do_softirq", 4), p("__do_softirq", 4),
			p("wait_on_page_bit", 4), p("unlock_page", 8), p("lock_page", 8),
			p("mark_page_accessed", 12), p("copy_to_user_op", 8),
			p("kmem_cache_alloc", 12), p("kmem_cache_free", 12),
			p("_spin_lock_irqsave", 20), p("_spin_unlock_irqrestore", 20),
			p("_spin_lock", 24), p("_spin_unlock", 24),
			p("schedule", 2), p("context_switch", 2), p("try_to_wake_up", 2),
		}),
	},
	{
		Name: OpDiskWrite, BaseUS: 90.0, TotalCalls: 850,
		Profile: merge(syscallEntry(), []callWeight{
			p("vfs_write", 1), p("do_sync_write", 1), p("generic_file_aio_write", 1),
			p("generic_perform_write", 2), p("grab_cache_page", 8),
			p("copy_from_user_op", 8), p("__set_page_dirty_buffers", 8),
			p("balance_dirty_pages_ratelimited", 2), p("write_cache_pages", 2),
			p("ext3_write_begin", 8), p("ext3_write_end", 8), p("ext3_writepage", 4),
			p("ext3_get_block", 9), p("ext3_new_blocks", 3),
			p("ext3_journal_start_sb", 9), p("__ext3_journal_stop", 9),
			p("ext3_mark_inode_dirty", 4), p("ext3_dirty_inode", 4),
			p("journal_add_journal_head", 4), p("journal_dirty_metadata", 4),
			p("journal_get_write_access", 4),
			p("generic_make_request", 3), p("submit_bio", 3), p("__make_request", 3),
			p("elv_merge", 3), p("bio_alloc", 3), p("bio_put", 3), p("bio_endio", 3),
			p("file_update_time", 2), p("kmem_cache_alloc", 12), p("kmem_cache_free", 12),
			p("_spin_lock", 28), p("_spin_unlock", 28),
			p("_spin_lock_irqsave", 12), p("_spin_unlock_irqrestore", 12),
			p("mutex_lock", 4), p("mutex_unlock", 4),
		}),
	},
	{
		Name: OpFsyncOp, BaseUS: 450.0, TotalCalls: 600,
		Profile: merge(syscallEntry(), []callWeight{
			p("do_fsync", 1), p("vfs_fsync_op", 1), p("ext3_sync_file", 1),
			p("journal_commit_transaction", 1), p("journal_dirty_metadata", 4),
			p("journal_get_write_access", 4), p("journal_add_journal_head", 4),
			p("write_cache_pages", 4), p("ext3_writepage", 6),
			p("generic_make_request", 6), p("submit_bio", 6), p("__make_request", 6),
			p("bio_alloc", 6), p("bio_endio", 6), p("bio_put", 6),
			p("blk_complete_request", 6), p("end_that_request_first", 6),
			p("scsi_dispatch_cmd_op", 6), p("scsi_done_op", 6),
			p("do_IRQ", 6), p("handle_irq_event", 6), p("irq_enter", 6), p("irq_exit", 6),
			p("wait_on_page_bit", 6), p("unlock_page", 6),
			p("schedule", 4), p("context_switch", 4), p("try_to_wake_up", 4),
			p("_spin_lock_irqsave", 24), p("_spin_unlock_irqrestore", 24),
		}),
	},
	{
		Name: OpCtxSwitch, BaseUS: 1.8, TotalCalls: 42,
		Profile: []callWeight{
			p("schedule", 1), p("__schedule", 1), p("pick_next_task_fair", 1),
			p("put_prev_task_fair", 1), p("enqueue_task_fair", 1),
			p("dequeue_task_fair", 1), p("update_curr", 2), p("check_preempt_wakeup", 1),
			p("context_switch", 1), p("finish_task_switch", 1), p("sched_clock", 2),
			p("try_to_wake_up", 1), p("set_task_cpu", 0.2), p("resched_task", 0.5),
			p("_spin_lock_irqsave", 2), p("_spin_unlock_irqrestore", 2),
		},
	},
	{
		Name: OpTimerTick, BaseUS: 1.1, TotalCalls: 30,
		Profile: []callWeight{
			p("hrtimer_interrupt", 1), p("tick_sched_timer", 1),
			p("update_process_times", 1), p("scheduler_tick", 1), p("run_local_timers", 1),
			p("raise_softirq", 1), p("run_timer_softirq", 1), p("do_softirq", 1),
			p("__do_softirq", 1), p("ktime_get", 2), p("clockevents_program_event", 1),
			p("tick_program_event", 1), p("irq_enter", 1), p("irq_exit", 1),
			p("update_curr", 1), p("prof_tick_op", 1),
			p("_spin_lock_irqsave", 2), p("_spin_unlock_irqrestore", 2),
		},
	},
	{
		// Background housekeeping: kswapd-ish page churn, workqueues, and a
		// sprinkle of the generated cold tail so the full symbol table sees
		// occasional traffic (Fig. 1's long tail). Cold functions are added
		// programmatically in Catalog construction, not here.
		Name: OpBgHousekeep, BaseUS: 22.0, TotalCalls: 480,
		Profile: []callWeight{
			p("queue_work", 2), p("__queue_work", 2), p("run_workqueue", 2),
			p("worker_thread_op", 2), p("insert_work", 2), p("delayed_work_timer_fn", 1),
			p("mod_timer", 3), p("del_timer", 2), p("hrtimer_start_op", 2),
			p("kmem_cache_alloc", 8), p("kmem_cache_free", 8),
			p("cache_alloc_refill", 1), p("cache_flusharray", 1),
			p("free_hot_cold_page", 4), p("__alloc_pages_internal", 4),
			p("get_page_from_freelist", 4), p("zone_watermark_ok", 4),
			p("release_pages", 2), p("schedule", 2), p("__schedule", 2),
			p("context_switch", 2), p("ksoftirqd_op", 1), p("tasklet_action", 1),
			p("_spin_lock", 12), p("_spin_unlock", 12),
			p("_spin_lock_irqsave", 6), p("_spin_unlock_irqrestore", 6),
		},
	},
	{
		// The Fmeter user-space logging daemon's own kernel footprint
		// (paper §5: the measurement perturbs the system uniformly).
		Name: OpDaemonLog, BaseUS: 180.0, TotalCalls: 2400,
		Profile: merge(syscallEntry(), []callWeight{
			p("debugfs_read_op", 2), p("simple_read_from_buffer_op", 2),
			p("full_proxy_read_op", 2), p("vfs_read", 2), p("do_sync_read", 2),
			p("fget_light", 4), p("fput", 2), p("copy_to_user_op", 40),
			p("vfs_write", 2), p("do_sync_write", 2), p("generic_perform_write", 4),
			p("grab_cache_page", 8), p("copy_from_user_op", 8),
			p("__set_page_dirty_buffers", 8), p("ext3_write_begin", 4),
			p("ext3_write_end", 4), p("ext3_journal_start_sb", 4),
			p("__ext3_journal_stop", 4), p("ext3_mark_inode_dirty", 2),
			p("kmem_cache_alloc", 10), p("kmem_cache_free", 10),
			p("_spin_lock", 20), p("_spin_unlock", 20),
			p("find_get_page", 10), p("mark_page_accessed", 8),
		}),
	},
	{
		// One segment of TCP transmit processing (used by netperf-style
		// sender-side paths).
		Name: OpTCPTxSegment, BaseUS: 2.4, TotalCalls: 58,
		Profile: []callWeight{
			p("tcp_sendmsg", 0.2), p("tcp_push_op", 0.2), p("tcp_write_xmit", 1),
			p("tcp_transmit_skb", 1), p("tcp_current_mss", 0.5),
			p("tcp_init_tso_segs", 0.5), p("ip_queue_xmit", 1), p("ip_output", 1),
			p("ip_finish_output", 1), p("ip_local_out_op", 1), p("dev_queue_xmit", 1),
			p("dev_hard_start_xmit", 1), p("qdisc_restart", 0.5),
			p("pfifo_fast_enqueue", 1), p("pfifo_fast_dequeue", 1),
			p("alloc_skb", 1), p("__alloc_skb", 1), p("sock_alloc_send_pskb", 0.5),
			p("skb_put_op", 1), p("csum_partial_copy_generic_op", 1),
			p("kfree_skb", 1), p("__kfree_skb", 1), p("skb_release_data", 1),
			p("tcp_ack", 0.8), p("tcp_clean_rtx_queue", 0.8), p("tcp_rtt_estimator", 0.8),
			p("_spin_lock_bh", 2), p("_spin_unlock_bh", 2),
			p("_spin_lock", 3), p("_spin_unlock", 3),
			p("kmem_cache_alloc", 2), p("kmem_cache_free", 2),
		},
	},
}

// Catalog holds the compiled operation set for a symbol table.
type Catalog struct {
	st  *SymbolTable
	ops map[string]*Op
}

// NewCatalog compiles the operation catalog against st. The boot-phase op is
// synthesized here because it needs programmatic access to the whole table
// (it touches the cold tail with Zipf-distributed weights — Figure 1).
func NewCatalog(st *SymbolTable) (*Catalog, error) {
	c := &Catalog{st: st, ops: make(map[string]*Op, len(opSpecs)+1)}
	for _, spec := range opSpecs {
		op, err := compileOp(st, spec)
		if err != nil {
			return nil, fmt.Errorf("kernel: compiling op %s: %w", spec.Name, err)
		}
		c.ops[op.Name] = op
	}
	c.ops[OpBootPhase] = compileBootOp(st)
	return c, nil
}

// compileOp resolves and scales a spec into an Op. Repeated profile entries
// for the same function are summed before scaling.
func compileOp(st *SymbolTable, spec OpSpec) (*Op, error) {
	if spec.TotalCalls <= 0 {
		return nil, fmt.Errorf("TotalCalls %v must be positive", spec.TotalCalls)
	}
	if len(spec.Profile) == 0 {
		return nil, fmt.Errorf("empty profile")
	}
	byID := make(map[FuncID]float64, len(spec.Profile))
	var wsum float64
	for _, cw := range spec.Profile {
		if cw.weight <= 0 {
			return nil, fmt.Errorf("non-positive weight %v for %s", cw.weight, cw.fn)
		}
		id, err := st.Lookup(cw.fn)
		if err != nil {
			return nil, err
		}
		byID[id] += cw.weight
		wsum += cw.weight
	}
	op := &Op{
		Name:        spec.Name,
		BaseNS:      spec.BaseUS * 1000,
		TotalCalls:  spec.TotalCalls,
		ModuleCalls: spec.ModuleCalls,
	}
	ids := make([]FuncID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	scale := spec.TotalCalls / wsum
	for _, id := range ids {
		op.Funcs = append(op.Funcs, id)
		op.MeanCounts = append(op.MeanCounts, byID[id]*scale)
	}
	return op, nil
}

// compileBootOp builds the boot-phase op: every hot function gets rank-
// weighted traffic and the entire cold tail gets Zipf-tail traffic, so one
// boot run produces the heavy-tailed rank/count curve of Figure 1 over all
// ~3800 functions.
func compileBootOp(st *SymbolTable) *Op {
	n := st.Len()
	op := &Op{Name: OpBootPhase, BaseNS: 2e9} // ~2 virtual seconds of late boot
	var total float64
	// Deterministic rank permutation: order functions by a hash of their
	// address so neighbouring IDs do not share neighbouring ranks.
	rank := make([]int, n)
	for i := range rank {
		rank[i] = i
	}
	sort.Slice(rank, func(a, b int) bool {
		ha := st.symbols[rank[a]].Addr * 2654435761 % 1000003
		hb := st.symbols[rank[b]].Addr * 2654435761 % 1000003
		if ha != hb {
			return ha < hb
		}
		return rank[a] < rank[b]
	})
	// Power-law counts over ranks: count(r) = C / (r+1)^1.1, C tuned so the
	// top function lands near 1e6 calls, matching Figure 1's y-range.
	const c0 = 1.2e6
	const alpha = 1.1
	for r, idx := range rank {
		mean := c0 / math.Pow(float64(r+1), alpha)
		if mean < 1 {
			mean = 1 // every function is invoked at least once during boot
		}
		op.Funcs = append(op.Funcs, FuncID(idx))
		op.MeanCounts = append(op.MeanCounts, mean)
		total += mean
	}
	op.TotalCalls = total
	return op
}

// Op returns the compiled operation by name.
func (c *Catalog) Op(name string) (*Op, error) {
	op, ok := c.ops[name]
	if !ok {
		return nil, fmt.Errorf("kernel: unknown op %q", name)
	}
	return op, nil
}

// MustOp returns the compiled op for a name known at development time.
func (c *Catalog) MustOp(name string) *Op {
	op, ok := c.ops[name]
	if !ok {
		panic(fmt.Sprintf("kernel: unknown op %q", name))
	}
	return op
}

// Names returns all op names in sorted order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.ops))
	for n := range c.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SymbolTable returns the table the catalog was compiled against.
func (c *Catalog) SymbolTable() *SymbolTable { return c.st }
