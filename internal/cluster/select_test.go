package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

func threeBlobs(t *testing.T, seed int64) ([]vecmath.Vector, []int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	var pts []vecmath.Vector
	var truth []int
	centers := []vecmath.Vector{{0, 0}, {8, 0}, {0, 8}}
	for c, center := range centers {
		for _, p := range blob(r, 20, center, 0.4) {
			pts = append(pts, p)
			truth = append(truth, c)
		}
	}
	return pts, truth
}

func TestPlusPlusInitSeparatesBlobs(t *testing.T) {
	pts, _ := threeBlobs(t, 1)
	res, err := KMeans(pts, KMeansConfig{K: 3, Seed: 2, Restarts: 1, Init: InitPlusPlus})
	if err != nil {
		t.Fatal(err)
	}
	// One restart of ++ on well-separated blobs should land near the
	// optimum: every blob in its own cluster.
	for g := 0; g < 3; g++ {
		first := res.Assign[g*20]
		for i := 1; i < 20; i++ {
			if res.Assign[g*20+i] != first {
				t.Fatalf("blob %d split with kmeans++ init", g)
			}
		}
	}
}

func TestPlusPlusNotWorseThanRandom(t *testing.T) {
	pts, _ := threeBlobs(t, 3)
	randRes, err := KMeans(pts, KMeansConfig{K: 3, Seed: 4, Restarts: 1, Init: InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	ppRes, err := KMeans(pts, KMeansConfig{K: 3, Seed: 4, Restarts: 1, Init: InitPlusPlus})
	if err != nil {
		t.Fatal(err)
	}
	if ppRes.Inertia > randRes.Inertia*1.5 {
		t.Errorf("kmeans++ inertia %v much worse than random %v", ppRes.Inertia, randRes.Inertia)
	}
}

func TestPlusPlusDegenerateIdenticalPoints(t *testing.T) {
	pts := []vecmath.Vector{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(pts, KMeansConfig{K: 3, Seed: 1, Init: InitPlusPlus})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("identical points should give zero inertia, got %v", res.Inertia)
	}
}

func TestInitMethodString(t *testing.T) {
	if InitRandom.String() != "random" || InitPlusPlus.String() != "kmeans++" {
		t.Error("init method names wrong")
	}
}

func TestSilhouetteGoodVsBadClustering(t *testing.T) {
	pts, truth := threeBlobs(t, 5)
	good, err := Silhouette(pts, truth)
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.7 {
		t.Errorf("true clustering silhouette = %v, want high", good)
	}
	// A bad clustering: split by index parity, ignoring geometry.
	bad := make([]int, len(pts))
	for i := range bad {
		bad[i] = i % 2
	}
	badScore, err := Silhouette(pts, bad)
	if err != nil {
		t.Fatal(err)
	}
	if badScore >= good {
		t.Errorf("arbitrary clustering (%v) should score below the truth (%v)", badScore, good)
	}
}

func TestSilhouetteValidation(t *testing.T) {
	pts := []vecmath.Vector{{0}, {1}}
	if _, err := Silhouette(nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Silhouette(pts, []int{0}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Silhouette(pts, []int{0, 0}); err == nil {
		t.Error("single cluster should fail")
	}
	if _, err := Silhouette(pts, []int{-1, 0}); err == nil {
		t.Error("negative id should fail")
	}
}

func TestSilhouetteSingletonConvention(t *testing.T) {
	pts := []vecmath.Vector{{0, 0}, {0.1, 0}, {9, 9}}
	s, err := Silhouette(pts, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// The singleton contributes 0; the pair contributes strongly positive.
	if s <= 0 || s > 1 {
		t.Errorf("silhouette = %v", s)
	}
}

func TestChooseKFindsTrueK(t *testing.T) {
	pts, _ := threeBlobs(t, 7)
	sel, err := ChooseK(pts, 6, KMeansConfig{Seed: 8, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if sel.BestK != 3 {
		t.Errorf("BestK = %d, want 3 (scores %v)", sel.BestK, sel.Scores)
	}
	if len(sel.Scores) != 5 || len(sel.Results) != 5 {
		t.Errorf("sweep covered %d Ks, want 5 (2..6)", len(sel.Scores))
	}
	if _, err := ChooseK(pts, 1, KMeansConfig{}); err == nil {
		t.Error("kMax < 2 should fail")
	}
}

func TestChooseKCapsAtN(t *testing.T) {
	pts := []vecmath.Vector{{0, 0}, {1, 0}, {10, 0}}
	sel, err := ChooseK(pts, 10, KMeansConfig{Seed: 1, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sel.Scores[4]; ok {
		t.Error("sweep should cap at n points")
	}
}
