package cluster

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vecmath"
)

// blob generates n points around center with the given spread.
func blob(r *rand.Rand, n int, center vecmath.Vector, spread float64) []vecmath.Vector {
	out := make([]vecmath.Vector, n)
	for i := range out {
		p := center.Clone()
		for j := range p {
			p[j] += spread * r.NormFloat64()
		}
		out[i] = p
	}
	return out
}

func TestKMeansValidation(t *testing.T) {
	pts := []vecmath.Vector{{0, 0}, {1, 1}}
	if _, err := KMeans(pts, KMeansConfig{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := KMeans(pts, KMeansConfig{K: 3}); err == nil {
		t.Error("K > n should fail")
	}
	if _, err := KMeans([]vecmath.Vector{{0}, {1, 1}}, KMeansConfig{K: 1}); err == nil {
		t.Error("inconsistent dims should fail")
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := blob(r, 40, vecmath.Vector{0, 0}, 0.3)
	b := blob(r, 40, vecmath.Vector{10, 10}, 0.3)
	pts := append(append([]vecmath.Vector{}, a...), b...)
	res, err := KMeans(pts, KMeansConfig{K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// All of blob a in one cluster, all of blob b in the other.
	ca := res.Assign[0]
	for i := 1; i < 40; i++ {
		if res.Assign[i] != ca {
			t.Fatalf("blob a split between clusters")
		}
	}
	cb := res.Assign[40]
	if cb == ca {
		t.Fatal("blobs merged")
	}
	for i := 41; i < 80; i++ {
		if res.Assign[i] != cb {
			t.Fatalf("blob b split between clusters")
		}
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids: %d", len(res.Centroids))
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %v", res.Inertia)
	}
}

func TestKMeansK1CentroidIsMean(t *testing.T) {
	pts := []vecmath.Vector{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	res, err := KMeans(pts, KMeansConfig{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Centroids[0].Equal(vecmath.Vector{1, 1}, 1e-9) {
		t.Errorf("centroid = %v", res.Centroids[0])
	}
}

func TestKMeansKEqualsNPerfect(t *testing.T) {
	pts := []vecmath.Vector{{0, 0}, {5, 0}, {0, 5}, {5, 5}}
	res, err := KMeans(pts, KMeansConfig{K: 4, Seed: 2, Restarts: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("K=n should reach zero inertia, got %v", res.Inertia)
	}
	seen := map[int]bool{}
	for _, a := range res.Assign {
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Errorf("K=n should use all clusters: %v", res.Assign)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := append(blob(r, 30, vecmath.Vector{0, 0}, 1), blob(r, 30, vecmath.Vector{4, 4}, 1)...)
	a, err := KMeans(pts, KMeansConfig{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, KMeansConfig{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Error("same seed should reproduce the same clustering")
	}
}

func TestMetaCluster(t *testing.T) {
	if _, err := MetaCluster(nil, KMeansConfig{K: 1}); err == nil {
		t.Error("empty centroid set should fail")
	}
	cents := []vecmath.Vector{{0, 0}, {0.1, 0}, {9, 9}, {9.2, 9.1}}
	res, err := MetaCluster(cents, KMeansConfig{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[2] != res.Assign[3] || res.Assign[0] == res.Assign[2] {
		t.Errorf("meta-clustering wrong: %v", res.Assign)
	}
}

func TestHierarchicalValidation(t *testing.T) {
	if _, err := Hierarchical(nil, SingleLinkage); err == nil {
		t.Error("no points should fail")
	}
	if _, err := Hierarchical([]vecmath.Vector{{1}}, Linkage(9)); err == nil {
		t.Error("bad linkage should fail")
	}
	if _, err := Hierarchical([]vecmath.Vector{{1}, {1, 2}}, SingleLinkage); err == nil {
		t.Error("inconsistent dims should fail")
	}
}

func TestHierarchicalSingleLeaf(t *testing.T) {
	d, err := Hierarchical([]vecmath.Vector{{1, 2}}, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsLeaf() || d.Leaf != 0 || d.Size != 1 {
		t.Errorf("single point tree = %+v", d)
	}
	if d.String() != "0" {
		t.Errorf("String = %q", d.String())
	}
}

func TestHierarchicalPerfectSplit(t *testing.T) {
	// Figure 4's property: with two well-separated classes the root's two
	// children partition the classes exactly.
	r := rand.New(rand.NewSource(7))
	a := blob(r, 10, vecmath.Vector{0, 0}, 0.2)
	b := blob(r, 10, vecmath.Vector{8, 8}, 0.2)
	pts := append(append([]vecmath.Vector{}, a...), b...)
	for _, linkage := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		root, err := Hierarchical(pts, linkage)
		if err != nil {
			t.Fatalf("%s: %v", linkage, err)
		}
		if root.Size != 20 {
			t.Fatalf("%s: root size %d", linkage, root.Size)
		}
		left := root.Left.Leaves()
		inA := 0
		for _, l := range left {
			if l < 10 {
				inA++
			}
		}
		if !(inA == len(left) || inA == 0) {
			t.Errorf("%s: root split mixes classes: left=%v", linkage, left)
		}
	}
}

func TestDendrogramStringNestedParens(t *testing.T) {
	pts := []vecmath.Vector{{0}, {0.1}, {10}}
	root, err := Hierarchical(pts, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	s := root.String()
	// 0 and 1 merge first, then 2 joins: "((0, 1), 2)" or "(2, (0, 1))".
	if !strings.Contains(s, "(0, 1)") && !strings.Contains(s, "(1, 0)") {
		t.Errorf("String = %q; closest pair not merged first", s)
	}
	if strings.Count(s, "(") != 2 {
		t.Errorf("String = %q; want 2 merges", s)
	}
}

func TestCut(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := blob(r, 8, vecmath.Vector{0, 0}, 0.2)
	b := blob(r, 8, vecmath.Vector{5, 5}, 0.2)
	c := blob(r, 8, vecmath.Vector{-5, 5}, 0.2)
	pts := append(append(append([]vecmath.Vector{}, a...), b...), c...)
	root, err := Hierarchical(pts, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := root.Cut(3)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 3; g++ {
		first := assign[g*8]
		for i := 1; i < 8; i++ {
			if assign[g*8+i] != first {
				t.Fatalf("blob %d split: %v", g, assign)
			}
		}
	}
	if _, err := root.Cut(0); err == nil {
		t.Error("Cut(0) should fail")
	}
	if _, err := root.Cut(25); err == nil {
		t.Error("Cut beyond leaves should fail")
	}
	// Cut(n) = every point its own cluster.
	all, err := root.Cut(24)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range all {
		if seen[a] {
			t.Fatal("Cut(n) should give singleton clusters")
		}
		seen[a] = true
	}
}

func TestLinkageStrings(t *testing.T) {
	if SingleLinkage.String() != "single" || CompleteLinkage.String() != "complete" || AverageLinkage.String() != "average" {
		t.Error("linkage names wrong")
	}
}

// Property: dendrogram leaves are a permutation of the input indices.
func TestPropertyDendrogramLeavesComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		pts := blob(r, n, vecmath.Vector{0, 0, 0}, 2)
		root, err := Hierarchical(pts, SingleLinkage)
		if err != nil {
			return false
		}
		leaves := root.Leaves()
		if len(leaves) != n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, l := range leaves {
			if l < 0 || l >= n || seen[l] {
				return false
			}
			seen[l] = true
		}
		return root.Size == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: merge heights are non-decreasing up the tree for single and
// complete linkage (monotone linkages).
func TestPropertyMonotoneMergeHeights(t *testing.T) {
	var check func(d *Dendrogram) bool
	check = func(d *Dendrogram) bool {
		if d.IsLeaf() {
			return true
		}
		for _, ch := range []*Dendrogram{d.Left, d.Right} {
			if !ch.IsLeaf() && ch.Height > d.Height+1e-9 {
				return false
			}
			if !check(ch) {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := blob(r, 3+r.Intn(15), vecmath.Vector{0, 0}, 3)
		for _, l := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
			root, err := Hierarchical(pts, l)
			if err != nil || !check(root) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: K-means inertia never increases when K grows (best of
// restarts, same seed family).
func TestPropertyInertiaDecreasesWithK(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pts := append(blob(r, 30, vecmath.Vector{0, 0}, 1), blob(r, 30, vecmath.Vector{6, 0}, 1)...)
	prev := 0.0
	for k := 1; k <= 6; k++ {
		res, err := KMeans(pts, KMeansConfig{K: k, Seed: 17, Restarts: 12})
		if err != nil {
			t.Fatal(err)
		}
		if k > 1 && res.Inertia > prev*1.05 {
			t.Errorf("inertia rose from %v (K=%d) to %v (K=%d)", prev, k-1, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func BenchmarkKMeans250x3815(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var pts []vecmath.Vector
	for c := 0; c < 3; c++ {
		center := vecmath.NewVector(3815)
		for j := 0; j < 50; j++ {
			center[r.Intn(3815)] = r.Float64()
		}
		pts = append(pts, blob(r, 83, center, 0.01)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(pts, KMeansConfig{K: 3, Seed: int64(i), Restarts: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
