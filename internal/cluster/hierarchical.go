package cluster

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/vecmath"
)

// Linkage selects how inter-cluster distance is computed during
// agglomeration. The paper evaluates all three and reports single linkage
// ("the results for complete- and average-linkage are similar").
type Linkage int

// Linkage flavors.
const (
	SingleLinkage Linkage = iota + 1
	CompleteLinkage
	AverageLinkage
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	default:
		return fmt.Sprintf("linkage(%d)", int(l))
	}
}

// Dendrogram is a node of the agglomeration tree. Leaves carry a point
// index; internal nodes carry their merge distance.
type Dendrogram struct {
	// Leaf is the point index for leaves, -1 for internal nodes.
	Leaf int
	// Left and Right are the merged subtrees (nil for leaves).
	Left, Right *Dendrogram
	// Height is the linkage distance at which the merge happened.
	Height float64
	// Size is the number of leaves under this node.
	Size int
}

// IsLeaf reports whether the node is a leaf.
func (d *Dendrogram) IsLeaf() bool { return d.Leaf >= 0 }

// String renders the tree in the nested-parenthesis form of Figure 4:
// leaves print their index, merges print "(left, right)".
func (d *Dendrogram) String() string {
	var b strings.Builder
	d.render(&b)
	return b.String()
}

func (d *Dendrogram) render(b *strings.Builder) {
	if d.IsLeaf() {
		b.WriteString(strconv.Itoa(d.Leaf))
		return
	}
	b.WriteByte('(')
	d.Left.render(b)
	b.WriteString(", ")
	d.Right.render(b)
	b.WriteByte(')')
}

// Leaves returns the point indices under the node in left-to-right order.
func (d *Dendrogram) Leaves() []int {
	if d.IsLeaf() {
		return []int{d.Leaf}
	}
	return append(d.Left.Leaves(), d.Right.Leaves()...)
}

// Hierarchical performs agglomerative clustering over points with the
// given linkage, using Euclidean distance, and returns the dendrogram
// root. It is O(n^3) in the straightforward Lance-Williams form, which is
// ample for the paper's 20-250 signature experiments.
func Hierarchical(points []vecmath.Vector, linkage Linkage) (*Dendrogram, error) {
	switch linkage {
	case SingleLinkage, CompleteLinkage, AverageLinkage:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %d", int(linkage))
	}
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	dim := points[0].Dim()
	for i, p := range points {
		if p.Dim() != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, p.Dim(), dim)
		}
	}

	// Active cluster set with pairwise distance matrix.
	active := make([]*Dendrogram, n)
	for i := range active {
		active[i] = &Dendrogram{Leaf: i, Size: 1}
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i == j {
				continue
			}
			d, err := vecmath.Euclidean(points[i], points[j])
			if err != nil {
				return nil, err
			}
			dist[i][j] = d
		}
	}

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	for remaining > 1 {
		// Find the closest active pair.
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if dist[i][j] < bd {
					bi, bj, bd = i, j, dist[i][j]
				}
			}
		}
		merged := &Dendrogram{
			Leaf: -1, Left: active[bi], Right: active[bj],
			Height: bd, Size: active[bi].Size + active[bj].Size,
		}
		// Lance-Williams update: slot bi holds the merged cluster.
		for k := 0; k < n; k++ {
			if !alive[k] || k == bi || k == bj {
				continue
			}
			var nd float64
			switch linkage {
			case SingleLinkage:
				nd = math.Min(dist[bi][k], dist[bj][k])
			case CompleteLinkage:
				nd = math.Max(dist[bi][k], dist[bj][k])
			case AverageLinkage:
				si, sj := float64(active[bi].Size), float64(active[bj].Size)
				nd = (si*dist[bi][k] + sj*dist[bj][k]) / (si + sj)
			}
			dist[bi][k] = nd
			dist[k][bi] = nd
		}
		active[bi] = merged
		alive[bj] = false
		remaining--
	}
	for i := range alive {
		if alive[i] {
			return active[i], nil
		}
	}
	return nil, fmt.Errorf("cluster: agglomeration lost the root")
}

// Cut slices the dendrogram into k clusters by undoing the k-1 highest
// merges (the "height cut" the paper calls notoriously hard to choose for
// more than two classes). It returns per-point cluster assignments.
func (d *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: cut k=%d must be >= 1", k)
	}
	if k > d.Size {
		return nil, fmt.Errorf("cluster: cut k=%d exceeds %d leaves", k, d.Size)
	}
	// Repeatedly split the cluster whose merge height is largest.
	clusters := []*Dendrogram{d}
	for len(clusters) < k {
		// Find the internal node with maximum height.
		bi, bh := -1, math.Inf(-1)
		for i, c := range clusters {
			if !c.IsLeaf() && c.Height > bh {
				bi, bh = i, c.Height
			}
		}
		if bi < 0 {
			return nil, fmt.Errorf("cluster: cannot cut into %d clusters", k)
		}
		node := clusters[bi]
		clusters[bi] = node.Left
		clusters = append(clusters, node.Right)
	}
	assign := make([]int, d.Size)
	for c, node := range clusters {
		for _, leaf := range node.Leaves() {
			if leaf < 0 || leaf >= len(assign) {
				return nil, fmt.Errorf("cluster: leaf index %d out of range", leaf)
			}
			assign[leaf] = c
		}
	}
	return assign, nil
}
