package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vecmath"
)

// InitMethod selects the K-means initialization strategy.
type InitMethod int

// Initialization strategies.
const (
	// InitRandom seeds centroids from K distinct random points (the
	// classic Lloyd initialization the paper's era used).
	InitRandom InitMethod = iota
	// InitPlusPlus seeds with the k-means++ D^2 weighting (Arthur &
	// Vassilvitskii 2007), which needs fewer restarts to find good
	// optima.
	InitPlusPlus
)

// String names the method.
func (m InitMethod) String() string {
	switch m {
	case InitRandom:
		return "random"
	case InitPlusPlus:
		return "kmeans++"
	default:
		return fmt.Sprintf("init(%d)", int(m))
	}
}

// plusPlusInit picks k centroids with D^2 sampling.
func plusPlusInit(points []vecmath.Vector, k int, rng *rand.Rand) []vecmath.Vector {
	n := len(points)
	centroids := make([]vecmath.Vector, 0, k)
	centroids = append(centroids, points[rng.Intn(n)].Clone())
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = math.Inf(1)
	}
	for len(centroids) < k {
		last := centroids[len(centroids)-1]
		var total float64
		for i, p := range points {
			d := vecmath.MustEuclidean(p, last)
			if dd := d * d; dd < d2[i] {
				d2[i] = dd
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, points[rng.Intn(n)].Clone())
			continue
		}
		u := rng.Float64() * total
		var acc float64
		pick := n - 1
		for i, w := range d2 {
			acc += w
			if acc >= u {
				pick = i
				break
			}
		}
		centroids = append(centroids, points[pick].Clone())
	}
	return centroids
}

// Silhouette returns the mean silhouette coefficient of a clustering in
// [-1, 1]: how much closer points sit to their own cluster than to the
// nearest other cluster. It penalizes both over- and under-splitting,
// unlike purity (which saturates at K = n, the property Figure 6 exploits).
func Silhouette(points []vecmath.Vector, assign []int) (float64, error) {
	n := len(points)
	if n == 0 {
		return 0, fmt.Errorf("cluster: empty clustering")
	}
	if len(assign) != n {
		return 0, fmt.Errorf("cluster: %d points vs %d assignments", n, len(assign))
	}
	sizes := map[int]int{}
	for _, a := range assign {
		if a < 0 {
			return 0, fmt.Errorf("cluster: negative cluster id")
		}
		sizes[a]++
	}
	if len(sizes) < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs at least two clusters")
	}
	var total float64
	counted := 0
	for i := range points {
		own := assign[i]
		if sizes[own] == 1 {
			// Singleton clusters contribute silhouette 0 by convention.
			counted++
			continue
		}
		// Mean distance to each cluster.
		sums := map[int]float64{}
		for j := range points {
			if i == j {
				continue
			}
			sums[assign[j]] += vecmath.MustEuclidean(points[i], points[j])
		}
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c, s := range sums {
			if c == own {
				continue
			}
			if m := s / float64(sizes[c]); m < b {
				//fmeter:map-order-ok min over the values is the same whatever the visit order
				b = m
			}
		}
		if maxAB := math.Max(a, b); maxAB > 0 {
			total += (b - a) / maxAB
		}
		counted++
	}
	return total / float64(counted), nil
}

// KSelection is the result of a silhouette-guided K sweep.
type KSelection struct {
	// BestK is the K with the highest mean silhouette.
	BestK int
	// Scores maps each swept K to its silhouette.
	Scores map[int]float64
	// Results maps each swept K to its clustering.
	Results map[int]*KMeansResult
}

// ChooseK sweeps K in [2, kMax] and picks the silhouette-optimal
// clustering — a remedy for the paper's noted K-means drawback that "the
// ability to choose the number of resulting clusters ... is also its
// greatest drawback".
func ChooseK(points []vecmath.Vector, kMax int, cfg KMeansConfig) (*KSelection, error) {
	if kMax < 2 {
		return nil, fmt.Errorf("cluster: kMax=%d must be >= 2", kMax)
	}
	if kMax > len(points) {
		kMax = len(points)
	}
	sel := &KSelection{Scores: map[int]float64{}, Results: map[int]*KMeansResult{}}
	best := math.Inf(-1)
	for k := 2; k <= kMax; k++ {
		c := cfg
		c.K = k
		res, err := KMeans(points, c)
		if err != nil {
			return nil, err
		}
		score, err := Silhouette(points, res.Assign)
		if err != nil {
			return nil, err
		}
		sel.Scores[k] = score
		sel.Results[k] = res
		if score > best {
			best = score
			sel.BestK = k
		}
	}
	return sel, nil
}
