package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// The tentpole guarantee: K-means is bit-identical at any worker count —
// restarts draw from independent per-restart streams and the assignment
// fan-out is per-point. Under -race this exercises both fan-out levels.
func TestKMeansDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	pts := append(blob(r, 60, vecmath.Vector{0, 0, 0}, 1), blob(r, 60, vecmath.Vector{5, 5, 5}, 1)...)
	for _, sparse := range []bool{false, true} {
		var ref *KMeansResult
		for _, workers := range []int{-1, 1, 2, 8} {
			res, err := KMeans(pts, KMeansConfig{K: 2, Seed: 9, Restarts: 4, Workers: workers, Sparse: sparse})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.Inertia != ref.Inertia || res.Iterations != ref.Iterations {
				t.Fatalf("sparse=%v workers=%d: inertia %v/%d iters, want %v/%d",
					sparse, workers, res.Inertia, res.Iterations, ref.Inertia, ref.Iterations)
			}
			for i := range res.Assign {
				if res.Assign[i] != ref.Assign[i] {
					t.Fatalf("sparse=%v workers=%d: assignment %d differs", sparse, workers, i)
				}
			}
			for c := range res.Centroids {
				if !res.Centroids[c].Equal(ref.Centroids[c], 0) {
					t.Fatalf("sparse=%v workers=%d: centroid %d differs", sparse, workers, c)
				}
			}
		}
	}
}

// Restarts with a single worker also ensure the single-restart path (where
// the assignment step itself fans out) matches the multi-restart path's
// first stream.
func TestKMeansSingleRestartParallelAssignment(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	pts := append(blob(r, 200, vecmath.Vector{0, 0}, 0.5), blob(r, 200, vecmath.Vector{8, 8}, 0.5)...)
	a, err := KMeans(pts, KMeansConfig{K: 2, Seed: 3, Restarts: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, KMeansConfig{K: 2, Seed: 3, Restarts: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Fatalf("single-restart inertia differs: %v vs %v", a.Inertia, b.Inertia)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs across worker counts", i)
		}
	}
}

// Sparse norm-cached distances must agree with the dense path closely
// enough that well-separated clusterings coincide.
func TestKMeansSparseMatchesDenseOnSeparatedBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	dim := 50
	mkCenter := func(val float64) vecmath.Vector {
		v := vecmath.NewVector(dim)
		for j := 0; j < 5; j++ {
			v[r.Intn(dim)] = val
		}
		return v
	}
	var pts []vecmath.Vector
	for c := 0; c < 3; c++ {
		pts = append(pts, blob(r, 30, mkCenter(5+float64(c)), 0.1)...)
	}
	dense, err := KMeans(pts, KMeansConfig{K: 3, Seed: 11, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := KMeans(pts, KMeansConfig{K: 3, Seed: 11, Restarts: 6, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dense.Inertia-sparse.Inertia) > 1e-6*(1+dense.Inertia) {
		t.Fatalf("inertia diverged: dense %v sparse %v", dense.Inertia, sparse.Inertia)
	}
	for i := range dense.Assign {
		if dense.Assign[i] != sparse.Assign[i] {
			t.Fatalf("assignment %d differs between dense and sparse", i)
		}
	}
}

// BenchmarkKMeansSparse250x3815 mirrors BenchmarkKMeans250x3815 but with
// signature-like sparse points (~150 of 3815 dims active) and the Sparse
// knob on, measuring the O(nnz) assignment-step win.
func BenchmarkKMeansSparse250x3815(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var pts []vecmath.Vector
	for c := 0; c < 3; c++ {
		support := make([]int, 150)
		for j := range support {
			support[j] = r.Intn(3815)
		}
		for p := 0; p < 83; p++ {
			v := vecmath.NewVector(3815)
			for _, idx := range support {
				v[idx] = r.Float64() + 0.01*r.NormFloat64()
			}
			pts = append(pts, v)
		}
	}
	for _, sparse := range []bool{false, true} {
		name := "dense"
		if sparse {
			name = "sparse"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := KMeans(pts, KMeansConfig{K: 3, Seed: int64(i), Restarts: 2, Sparse: sparse}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestKMeansSparseNativeMatchesSparseFlag: the sparse-first entry point
// (canonical sparse points in, no dense input) must reproduce
// KMeans(dense, Sparse: true) exactly — same assignments, same inertia,
// at any worker count.
func TestKMeansSparseNativeMatchesSparseFlag(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	dim := 60
	var pts []vecmath.Vector
	for c := 0; c < 3; c++ {
		center := vecmath.NewVector(dim)
		for j := 0; j < 5; j++ {
			center[r.Intn(dim)] = 4 + float64(c)
		}
		pts = append(pts, blob(r, 25, center, 0.1)...)
	}
	sp := make([]*vecmath.Sparse, len(pts))
	for i := range pts {
		sp[i] = vecmath.DenseToSparse(pts[i])
	}
	want, err := KMeans(pts, KMeansConfig{K: 3, Seed: 13, Restarts: 4, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 2, 0} {
		got, err := KMeansSparse(sp, KMeansConfig{K: 3, Seed: 13, Restarts: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Inertia != want.Inertia || got.Iterations != want.Iterations {
			t.Fatalf("workers=%d: inertia/iters (%v, %d) vs (%v, %d)",
				workers, got.Inertia, got.Iterations, want.Inertia, want.Iterations)
		}
		for i := range want.Assign {
			if got.Assign[i] != want.Assign[i] {
				t.Fatalf("workers=%d: assignment %d differs", workers, i)
			}
		}
		for c := range want.Centroids {
			if !got.Centroids[c].Equal(want.Centroids[c], 0) {
				t.Fatalf("workers=%d: centroid %d differs", workers, c)
			}
		}
	}
	if _, err := KMeansSparse(sp[:2], KMeansConfig{K: 3}); err == nil {
		t.Error("too few points should fail")
	}
}

func TestKMeansSparseNilPoint(t *testing.T) {
	s := vecmath.DenseToSparse(vecmath.Vector{1, 0})
	if _, err := KMeansSparse([]*vecmath.Sparse{s, nil}, KMeansConfig{K: 1}); err == nil {
		t.Error("nil point should return an error, not panic")
	}
}
