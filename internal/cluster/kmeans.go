// Package cluster implements the unsupervised learners of §4.2.2: K-means
// (the paper's primary clustering mechanism) and agglomerative hierarchical
// clustering in single-, complete-, and average-linkage flavors, with the
// Figure 4 dendrogram rendering. Both use the Euclidean (L2-induced)
// distance, the paper's default metric.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vecmath"
)

// KMeansConfig controls Lloyd's algorithm.
type KMeansConfig struct {
	// K is the number of target clusters (the paper's "greatest advantage
	// and greatest drawback" of K-means: it must be chosen).
	K int
	// MaxIter bounds Lloyd iterations per restart (default 100).
	MaxIter int
	// Restarts runs the algorithm multiple times with fresh random
	// initializations and keeps the lowest-inertia result (default 8).
	Restarts int
	// Seed drives initialization.
	Seed int64
	// Init selects the initialization strategy (default InitRandom, the
	// era-appropriate choice; InitPlusPlus converges with fewer restarts).
	Init InitMethod
}

func (c *KMeansConfig) fillDefaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 100
	}
	if c.Restarts == 0 {
		c.Restarts = 8
	}
}

// KMeansResult is a clustering of the input points.
type KMeansResult struct {
	// Assign maps point index to cluster index in [0, K).
	Assign []int
	// Centroids are the cluster means; the paper uses them as behaviour
	// "syndromes" for later similarity lookup and meta-clustering.
	Centroids []vecmath.Vector
	// Inertia is the summed squared distance of points to their
	// centroids (the K-means objective).
	Inertia float64
	// Iterations is the number of Lloyd iterations of the winning
	// restart.
	Iterations int
}

// KMeans clusters points with Lloyd's algorithm and random-point
// initialization, keeping the best of cfg.Restarts runs.
func KMeans(points []vecmath.Vector, cfg KMeansConfig) (*KMeansResult, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("cluster: K=%d must be >= 1", cfg.K)
	}
	if len(points) < cfg.K {
		return nil, fmt.Errorf("cluster: %d points for K=%d", len(points), cfg.K)
	}
	dim := points[0].Dim()
	for i, p := range points {
		if p.Dim() != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, p.Dim(), dim)
		}
	}
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	best := &KMeansResult{Inertia: math.Inf(1)}
	for r := 0; r < cfg.Restarts; r++ {
		res, err := kmeansOnce(points, cfg.K, cfg.MaxIter, cfg.Init, rng)
		if err != nil {
			return nil, err
		}
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// kmeansOnce runs one restart of Lloyd's algorithm.
func kmeansOnce(points []vecmath.Vector, k, maxIter int, init InitMethod, rng *rand.Rand) (*KMeansResult, error) {
	n := len(points)
	dim := points[0].Dim()

	var centroids []vecmath.Vector
	if init == InitPlusPlus {
		centroids = plusPlusInit(points, k, rng)
	} else {
		// Initialize centroids from k distinct random points.
		perm := rng.Perm(n)
		centroids = make([]vecmath.Vector, k)
		for i := 0; i < k; i++ {
			centroids[i] = points[perm[i]].Clone()
		}
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		changed := false
		// Assignment step.
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c := range centroids {
				d, err := vecmath.SquaredEuclidean(p, centroids[c])
				if err != nil {
					return nil, err
				}
				if d < bestD {
					bestC, bestD = c, d
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Update step.
		counts := make([]int, k)
		sums := make([]vecmath.Vector, k)
		for c := range sums {
			sums[c] = vecmath.NewVector(dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, x := range p {
				sums[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: reseed from a random point, the standard
				// Lloyd repair.
				centroids[c] = points[rng.Intn(n)].Clone()
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range sums[c] {
				sums[c][j] *= inv
			}
			centroids[c] = sums[c]
		}
	}

	var inertia float64
	for i, p := range points {
		d, err := vecmath.SquaredEuclidean(p, centroids[assign[i]])
		if err != nil {
			return nil, err
		}
		inertia += d
	}
	return &KMeansResult{Assign: assign, Centroids: centroids, Inertia: inertia, Iterations: iter}, nil
}

// MetaCluster applies K-means recursively to cluster centroids (§2.2/§6:
// determining which entire classes of behaviour are similar, e.g. to
// co-schedule tasks that share kernel code paths on one cache domain).
func MetaCluster(centroids []vecmath.Vector, cfg KMeansConfig) (*KMeansResult, error) {
	if len(centroids) == 0 {
		return nil, errors.New("cluster: no centroids to meta-cluster")
	}
	return KMeans(centroids, cfg)
}
