// Package cluster implements the unsupervised learners of §4.2.2: K-means
// (the paper's primary clustering mechanism) and agglomerative hierarchical
// clustering in single-, complete-, and average-linkage flavors, with the
// Figure 4 dendrogram rendering. Both use the Euclidean (L2-induced)
// distance, the paper's default metric.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/vecmath"
)

// KMeansConfig controls Lloyd's algorithm.
type KMeansConfig struct {
	// K is the number of target clusters (the paper's "greatest advantage
	// and greatest drawback" of K-means: it must be chosen).
	K int
	// MaxIter bounds Lloyd iterations per restart (default 100).
	MaxIter int
	// Restarts runs the algorithm multiple times with fresh random
	// initializations and keeps the lowest-inertia result (default 8).
	Restarts int
	// Seed drives initialization. Each restart derives its own
	// independent stream (parallel.SplitSeed), so the result is
	// bit-identical whether restarts run sequentially or fanned out.
	Seed int64
	// Init selects the initialization strategy (default InitRandom, the
	// era-appropriate choice; InitPlusPlus converges with fewer restarts).
	Init InitMethod
	// Workers bounds the fan-out across restarts (and, for a single
	// restart, across the assignment step): 0 = one per CPU, <0 =
	// sequential. The clustering is identical at any worker count.
	Workers int
	// Sparse scores point-to-centroid distances via sparse forms with
	// cached norms (||p||² - 2p·c + ||c||²) in O(nnz) instead of O(dim).
	// Distances agree with the dense loop to ~1e-9 relative, so cluster
	// assignments can differ from the dense path on near-ties within
	// that error (the run is still bit-identical across worker counts
	// for a fixed Sparse setting).
	Sparse bool
}

func (c *KMeansConfig) fillDefaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 100
	}
	if c.Restarts == 0 {
		c.Restarts = 8
	}
}

// KMeansResult is a clustering of the input points.
type KMeansResult struct {
	// Assign maps point index to cluster index in [0, K).
	Assign []int
	// Centroids are the cluster means; the paper uses them as behaviour
	// "syndromes" for later similarity lookup and meta-clustering.
	Centroids []vecmath.Vector
	// Inertia is the summed squared distance of points to their
	// centroids (the K-means objective).
	Inertia float64
	// Iterations is the number of Lloyd iterations of the winning
	// restart.
	Iterations int
}

// KMeans clusters points with Lloyd's algorithm, keeping the lowest-
// inertia result of cfg.Restarts independently-seeded runs (ties broken
// toward the earliest restart, matching a sequential sweep).
func KMeans(points []vecmath.Vector, cfg KMeansConfig) (*KMeansResult, error) {
	if err := validatePoints(len(points), cfg.K, func(i int) int { return points[i].Dim() }); err != nil {
		return nil, err
	}
	// Sparse forms and cached point norms are shared read-only across
	// restarts; compute them once.
	var sp []*vecmath.Sparse
	if cfg.Sparse {
		sp = make([]*vecmath.Sparse, len(points))
		parallel.Chunks(cfg.Workers, len(points), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sp[i] = vecmath.DenseToSparse(points[i])
			}
		})
	}
	return kmeansRestarts(points, sp, cfg)
}

// KMeansSparse clusters points given in canonical sparse form — the
// native entry point for sparse-first signatures. The assignment step
// scores through the norm-cached sparse identity (cfg.Sparse is implied)
// and the update step accumulates through Sparse.Axpy, so a Lloyd
// iteration costs O(Σnnz), not O(n·dim); dense views are materialized
// only for the few points chosen as initial or reseeded centroids
// (centroid arithmetic stays dense — means are dense, and accumulation
// in point order is the bit-stability contract). Results are identical
// to KMeans(dense views, cfg with Sparse=true).
func KMeansSparse(points []*vecmath.Sparse, cfg KMeansConfig) (*KMeansResult, error) {
	for i, p := range points {
		if p == nil {
			return nil, fmt.Errorf("cluster: point %d is nil", i)
		}
	}
	if err := validatePoints(len(points), cfg.K, func(i int) int { return points[i].Dim() }); err != nil {
		return nil, err
	}
	return kmeansRestarts(nil, points, cfg)
}

// validatePoints checks the K/point-count contract and dimension
// agreement.
func validatePoints(n, k int, dimAt func(int) int) error {
	if k < 1 {
		return fmt.Errorf("cluster: K=%d must be >= 1", k)
	}
	if n < k {
		return fmt.Errorf("cluster: %d points for K=%d", n, k)
	}
	dim := dimAt(0)
	for i := 1; i < n; i++ {
		if d := dimAt(i); d != dim {
			return fmt.Errorf("cluster: point %d has dimension %d, want %d", i, d, dim)
		}
	}
	return nil
}

// kmeansRestarts fans the independently-seeded restarts out over the
// worker pool. sp is nil for the dense assignment path.
func kmeansRestarts(points []vecmath.Vector, sp []*vecmath.Sparse, cfg KMeansConfig) (*KMeansResult, error) {
	cfg.fillDefaults()
	// With several restarts the fan-out lives at the restart level and
	// each run stays sequential inside; a single restart instead spreads
	// its assignment step across the workers.
	innerWorkers := -1
	if cfg.Restarts == 1 {
		innerWorkers = cfg.Workers
	}
	results, err := parallel.Map(cfg.Workers, cfg.Restarts, func(r int) (*KMeansResult, error) {
		rng := rand.New(rand.NewSource(parallel.SplitSeed(cfg.Seed, int64(r))))
		return kmeansOnce(points, sp, cfg.K, cfg.MaxIter, cfg.Init, rng, innerWorkers)
	})
	if err != nil {
		return nil, err
	}
	best := results[0]
	for _, res := range results[1:] {
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// kmeansOnce runs one restart of Lloyd's algorithm. sp, when non-nil,
// holds the sparse forms for norm-cached distance scoring and Axpy
// accumulation; points may then be nil (the sparse-native path), in
// which case dense views are materialized only where a centroid is
// seeded from a point.
func kmeansOnce(points []vecmath.Vector, sp []*vecmath.Sparse, k, maxIter int, init InitMethod, rng *rand.Rand, workers int) (*KMeansResult, error) {
	n := len(points)
	if points == nil {
		n = len(sp)
	}
	// densePoint materializes (or copies) the dense view of point i for
	// centroid seeding; identical values either way.
	densePoint := func(i int) vecmath.Vector {
		if points != nil {
			return points[i].Clone()
		}
		return sp[i].Dense()
	}
	dim := 0
	if points != nil {
		dim = points[0].Dim()
	} else {
		dim = sp[0].Dim()
	}

	var centroids []vecmath.Vector
	if init == InitPlusPlus {
		if points == nil {
			// The ++ seeding walks pairwise point distances densely;
			// materialize once for this rarely-combined configuration.
			points = make([]vecmath.Vector, n)
			for i := range points {
				points[i] = sp[i].Dense()
			}
		}
		centroids = plusPlusInit(points, k, rng)
	} else {
		// Initialize centroids from k distinct random points.
		perm := rng.Perm(n)
		centroids = make([]vecmath.Vector, k)
		for i := 0; i < k; i++ {
			centroids[i] = densePoint(perm[i])
		}
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	// Update-step buffers, reused across iterations instead of
	// reallocating k dense vectors per pass.
	counts := make([]int, k)
	sums := make([]vecmath.Vector, k)
	for c := range sums {
		sums[c] = vecmath.NewVector(dim)
	}
	// Squared centroid norms for the sparse distance identity, refreshed
	// whenever centroids change.
	var cNorm2 []float64
	if sp != nil {
		cNorm2 = make([]float64, k)
	}

	var iter int
	for iter = 0; iter < maxIter; iter++ {
		if sp != nil {
			for c := range centroids {
				cNorm2[c] = vecmath.Norm2Of(centroids[c])
			}
		}
		// Assignment step: every point independently takes its nearest
		// centroid, so the chunked fan-out cannot change the outcome;
		// the changed flag is an order-independent OR.
		var changed atomic.Bool
		parallel.Chunks(workers, n, func(lo, hi int) {
			chunkChanged := false
			for i := lo; i < hi; i++ {
				bestC, bestD := 0, math.Inf(1)
				if sp != nil {
					p := sp[i]
					for c := range centroids {
						if d := p.SquaredDistanceDense(centroids[c], cNorm2[c]); d < bestD {
							bestC, bestD = c, d
						}
					}
				} else {
					p := points[i]
					for c := range centroids {
						if d := vecmath.MustSquaredEuclidean(p, centroids[c]); d < bestD {
							bestC, bestD = c, d
						}
					}
				}
				if assign[i] != bestC {
					assign[i] = bestC
					chunkChanged = true
				}
			}
			if chunkChanged {
				changed.Store(true)
			}
		})
		if !changed.Load() {
			// Assignments are stable, so the centroids recomputed from
			// them would be unchanged too: converged.
			break
		}
		// Update step (sequential: the sums must accumulate in point
		// order for bit-stable centroid arithmetic). The sparse Axpy
		// accumulate is bit-identical to the dense loop — skipped zero
		// components contribute an exact +0 — so both paths feed the
		// same centroids.
		for c := range sums {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		if sp != nil {
			for i, p := range sp {
				c := assign[i]
				counts[c]++
				p.Axpy(1, sums[c])
			}
		} else {
			for i, p := range points {
				c := assign[i]
				counts[c]++
				for j, x := range p {
					sums[c][j] += x
				}
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: reseed from a random point, the standard
				// Lloyd repair.
				centroids[c] = densePoint(rng.Intn(n))
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] * inv
			}
		}
	}

	var inertia float64
	if sp != nil {
		for c := range centroids {
			cNorm2[c] = vecmath.Norm2Of(centroids[c])
		}
		for i := range sp {
			inertia += sp[i].SquaredDistanceDense(centroids[assign[i]], cNorm2[assign[i]])
		}
	} else {
		for i, p := range points {
			inertia += vecmath.MustSquaredEuclidean(p, centroids[assign[i]])
		}
	}
	return &KMeansResult{Assign: assign, Centroids: centroids, Inertia: inertia, Iterations: iter}, nil
}

// MetaCluster applies K-means recursively to cluster centroids (§2.2/§6:
// determining which entire classes of behaviour are similar, e.g. to
// co-schedule tasks that share kernel code paths on one cache domain).
func MetaCluster(centroids []vecmath.Vector, cfg KMeansConfig) (*KMeansResult, error) {
	if len(centroids) == 0 {
		return nil, errors.New("cluster: no centroids to meta-cluster")
	}
	return KMeans(centroids, cfg)
}
