package trace

import (
	"testing"

	"repro/internal/kernel"
)

func TestKprobesCountsMatchFmeter(t *testing.T) {
	st := kernel.NewSymbolTable()
	kp, err := NewKprobes(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := NewFmeter(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		fn := kernel.FuncID(i * 7 % st.Len())
		kp.OnCalls(i%4, fn, uint64(i))
		fm.OnCalls(i%4, fn, uint64(i))
	}
	ks, fs := kp.Snapshot(), fm.Snapshot()
	for i := range ks {
		if ks[i] != fs[i] {
			t.Fatalf("counts diverge at %d: %d vs %d", i, ks[i], fs[i])
		}
	}
}

func TestKprobesCostDwarfsFmeter(t *testing.T) {
	st := kernel.NewSymbolTable()
	kp, err := NewKprobes(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := NewFmeter(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := kp.PerCallOverheadNS(0, 0) / fm.PerCallOverheadNS(0, 0)
	if ratio < 50 {
		t.Errorf("kprobes/fmeter per-call ratio = %v; a trap + single-step is ~100x a stub", ratio)
	}
	// Kprobes is also far above Ftrace — the paper's §3 ranking.
	ft, err := NewFtrace(st, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kp.PerCallOverheadNS(0, 0) <= ft.PerCallOverheadNS(0, 0) {
		t.Error("kprobes should cost more per call than ftrace")
	}
}

func TestKprobesReset(t *testing.T) {
	st := kernel.NewSymbolTable()
	kp, err := NewKprobes(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	kp.OnCalls(0, 3, 9)
	kp.Reset()
	if got := kp.Snapshot()[3]; got != 0 {
		t.Errorf("count after reset = %d", got)
	}
	if kp.Name() != "kprobes" {
		t.Errorf("Name = %q", kp.Name())
	}
	if _, err := NewKprobes(nil, 1); err == nil {
		t.Error("nil table should fail")
	}
}
