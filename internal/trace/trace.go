// Package trace implements the instrumentation backends the paper compares
// (§3, §4.1): the Fmeter per-CPU counter tracer, the Ftrace function tracer
// with its SMP-safe ring buffer, and two ablation backends (a shared
// atomic-counter array and a hot-cache Fmeter variant, §6).
//
// # Cost model
//
// Each backend charges a virtual per-call overhead to the engine clock. The
// constants below are calibrated so the simulated Table 1/2/3 reproduce the
// paper's slowdown shape:
//
//   - An Fmeter stub does preempt_disable, a two-index dereference, a
//     non-atomic per-CPU increment, and preempt_enable: a few nanoseconds,
//     no cross-core traffic.
//   - An Ftrace call formats a 24-byte record and reserves/commits ring
//     buffer space under SMP-safe synchronization, paying lock and
//     cache-coherency costs that grow with the number of processors.
//
// With the defaults and 16 CPUs, Ftrace's per-call cost is ~40 ns versus
// Fmeter's 3 ns — a 13x per-call gap, matching the paper's observed
// slowdown ratios (Ftrace 2.1x-8x slower than Fmeter per Table 1).
package trace

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/debugfs"
	"repro/internal/kernel"
	"repro/internal/percpu"
)

// Cost-model constants (virtual nanoseconds).
const (
	// FmeterStubNS is the cost of one Fmeter stub execution.
	FmeterStubNS = 3.0
	// FtraceRecordNS is the CPU-local cost of formatting and storing one
	// Ftrace function-trace record.
	FtraceRecordNS = 34.0
	// FtraceCoherencyPerCPUNS is the additional per-call cost per online
	// CPU from ring-buffer synchronization (lock and cache-line traffic).
	FtraceCoherencyPerCPUNS = 0.375
	// SharedAtomicBaseNS is the base cost of a lock;inc on a shared
	// counter array (ablation backend).
	SharedAtomicBaseNS = 3.0
	// SharedAtomicCoherencyPerCPUNS is the cache-line bouncing cost per
	// online CPU for shared counters, absent in the per-CPU design.
	SharedAtomicCoherencyPerCPUNS = 1.5
)

// Fmeter is the paper's counting backend: per-CPU pages of 8-byte slots
// addressed by (page, slot) indices embedded in per-function stubs
// (Figure 3). It generates stubs lazily on a function's first invocation,
// like the specialized mcount routine that rewrites each call site once.
type Fmeter struct {
	st     *kernel.SymbolTable
	idx    *percpu.Index
	addrs  []percpu.SlotAddr
	stubs  []bool
	nStubs int
	numCPU int
}

var _ kernel.Backend = (*Fmeter)(nil)

// NewFmeter builds the Fmeter backend for the given symbol table and CPU
// count. The function→slot mapping is allocated up front ("at boot-time,
// right after the kernel introspects itself").
func NewFmeter(st *kernel.SymbolTable, numCPU int) (*Fmeter, error) {
	if st == nil {
		return nil, fmt.Errorf("trace: nil symbol table")
	}
	idx, err := percpu.New(numCPU, st.Len())
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	addrs := make([]percpu.SlotAddr, st.Len())
	for i := range addrs {
		addrs[i] = percpu.AddrOf(i)
	}
	return &Fmeter{
		st:     st,
		idx:    idx,
		addrs:  addrs,
		stubs:  make([]bool, st.Len()),
		numCPU: numCPU,
	}, nil
}

// Name implements kernel.Backend.
func (f *Fmeter) Name() string { return "fmeter" }

// OnCalls implements kernel.Backend: it follows the two embedded indices
// and increments the current CPU's slot.
func (f *Fmeter) OnCalls(cpu int, fn kernel.FuncID, n uint64) {
	if fn < 0 || int(fn) >= len(f.addrs) {
		return // functions outside the instrumented space are invisible
	}
	if !f.stubs[fn] {
		// First invocation: the specialized mcount routine builds the
		// personalized stub and patches the call site.
		f.stubs[fn] = true
		f.nStubs++
	}
	// The engine serializes per-CPU execution, so Inc's validation errors
	// are impossible here by construction; ignore the nil error.
	_ = f.idx.Inc(cpu, f.addrs[fn], n)
}

// PerCallOverheadNS implements kernel.Backend: a flat per-stub cost,
// independent of CPU count (no shared state is touched).
func (f *Fmeter) PerCallOverheadNS(int, kernel.FuncID) float64 { return FmeterStubNS }

// Snapshot returns the per-function invocation totals summed over CPUs.
func (f *Fmeter) Snapshot() []uint64 { return f.idx.Snapshot() }

// Reset zeroes all counters (the stub registry survives, as in the real
// system where call sites stay patched).
func (f *Fmeter) Reset() { f.idx.Reset() }

// StubsCreated returns how many per-function stubs have been generated.
func (f *Fmeter) StubsCreated() int { return f.nStubs }

// Index exposes the underlying per-CPU index (read-mostly; used by tests
// and the debugfs serializer).
func (f *Fmeter) Index() *percpu.Index { return f.idx }

// CountersPath is the debugfs node exporting the counters.
const CountersPath = "fmeter/counters"

// ResetPath is the debugfs node that zeroes the counters on any write.
const ResetPath = "fmeter/reset"

// RegisterDebugfs exposes the backend through fs: CountersPath serializes
// "addr count" lines for every function with a non-zero count, and
// ResetPath zeroes the counters when written.
func (f *Fmeter) RegisterDebugfs(fs *debugfs.FS) error {
	if fs == nil {
		return fmt.Errorf("trace: nil debugfs")
	}
	if err := fs.Create(CountersPath, func() ([]byte, error) {
		return MarshalCounters(f.st, f.Snapshot())
	}, nil); err != nil {
		return err
	}
	return fs.Create(ResetPath, nil, func([]byte) error {
		f.Reset()
		return nil
	})
}

// MarshalCounters serializes a snapshot as "addr count" lines (hexadecimal
// address, decimal count), one per function with a non-zero count. The
// address — not the name — is the identifier, following the paper.
func MarshalCounters(st *kernel.SymbolTable, snap []uint64) ([]byte, error) {
	if len(snap) != st.Len() {
		return nil, fmt.Errorf("trace: snapshot length %d != table size %d", len(snap), st.Len())
	}
	var b strings.Builder
	syms := st.Symbols()
	for i, c := range snap {
		if c == 0 {
			continue
		}
		b.WriteString(strconv.FormatUint(syms[i].Addr, 16))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(c, 10))
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

// UnmarshalCounters parses MarshalCounters output back into a full-length
// count vector for st (zero for absent functions).
func UnmarshalCounters(st *kernel.SymbolTable, data []byte) ([]uint64, error) {
	out := make([]uint64, st.Len())
	for lineNo, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 'addr count', got %q", lineNo+1, line)
		}
		addr, err := strconv.ParseUint(fields[0], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %w", lineNo+1, err)
		}
		count, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad count: %w", lineNo+1, err)
		}
		id, err := st.LookupAddr(addr)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo+1, err)
		}
		out[id] = count
	}
	return out, nil
}
