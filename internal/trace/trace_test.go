package trace

import (
	"strings"
	"testing"

	"repro/internal/debugfs"
	"repro/internal/kernel"
	"repro/internal/ringbuf"
)

func newEngine(t testing.TB, b kernel.Backend, cpus int) *kernel.Engine {
	t.Helper()
	cat, err := kernel.NewCatalog(kernel.NewSymbolTable())
	if err != nil {
		t.Fatal(err)
	}
	e, err := kernel.NewEngine(cat, kernel.EngineConfig{NumCPU: cpus, Backend: b, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFmeterCountsMatchEngine(t *testing.T) {
	st := kernel.NewSymbolTable()
	fm, err := NewFmeter(st, 8)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, fm, 8)
	if _, err := e.ExecOpName(kernel.OpSimpleRead, 500); err != nil {
		t.Fatal(err)
	}
	snap := fm.Snapshot()
	var total uint64
	nonzero := 0
	for _, c := range snap {
		total += c
		if c > 0 {
			nonzero++
		}
	}
	if total != e.TotalCalls() {
		t.Errorf("snapshot total %d != engine calls %d", total, e.TotalCalls())
	}
	if nonzero == 0 {
		t.Error("no functions counted")
	}
	if fm.StubsCreated() != nonzero {
		t.Errorf("stubs %d != distinct functions %d", fm.StubsCreated(), nonzero)
	}
}

func TestFmeterResetKeepsStubs(t *testing.T) {
	st := kernel.NewSymbolTable()
	fm, err := NewFmeter(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	fm.OnCalls(0, 5, 10)
	stubs := fm.StubsCreated()
	fm.Reset()
	if got := fm.Snapshot()[5]; got != 0 {
		t.Errorf("count after reset = %d", got)
	}
	if fm.StubsCreated() != stubs {
		t.Error("reset should not destroy stubs (call sites stay patched)")
	}
}

func TestFmeterIgnoresOutOfRange(t *testing.T) {
	st := kernel.NewSymbolTable()
	fm, err := NewFmeter(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	fm.OnCalls(0, -1, 5)
	fm.OnCalls(0, kernel.FuncID(st.Len()), 5)
	for _, c := range fm.Snapshot() {
		if c != 0 {
			t.Fatal("out-of-range call leaked into counters")
		}
	}
}

func TestMarshalUnmarshalCountersRoundTrip(t *testing.T) {
	st := kernel.NewSymbolTable()
	fm, err := NewFmeter(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	fm.OnCalls(0, 3, 7)
	fm.OnCalls(1, 3, 2)
	fm.OnCalls(2, 100, 1)
	data, err := MarshalCounters(st, fm.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCounters(st, data)
	if err != nil {
		t.Fatal(err)
	}
	if back[3] != 9 || back[100] != 1 {
		t.Errorf("round trip lost counts: %d %d", back[3], back[100])
	}
	var total uint64
	for _, c := range back {
		total += c
	}
	if total != 10 {
		t.Errorf("round trip total = %d", total)
	}
}

func TestUnmarshalCountersErrors(t *testing.T) {
	st := kernel.NewSymbolTable()
	for _, bad := range []string{
		"justonefield\n",
		"zzzz 5\n",             // bad hex
		"ffffffff81000000 x\n", // bad count
		"1234 5\n",             // unknown address
	} {
		if _, err := UnmarshalCounters(st, []byte(bad)); err == nil {
			t.Errorf("UnmarshalCounters(%q) should fail", bad)
		}
	}
	if _, err := MarshalCounters(st, make([]uint64, 3)); err == nil {
		t.Error("MarshalCounters with wrong snapshot length should fail")
	}
}

func TestFmeterDebugfs(t *testing.T) {
	st := kernel.NewSymbolTable()
	fm, err := NewFmeter(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs := debugfs.New()
	if err := fm.RegisterDebugfs(fs); err != nil {
		t.Fatal(err)
	}
	fm.OnCalls(0, 7, 3)
	data, err := fs.ReadFile(CountersPath)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := UnmarshalCounters(st, data)
	if err != nil {
		t.Fatal(err)
	}
	if counts[7] != 3 {
		t.Errorf("debugfs counts[7] = %d", counts[7])
	}
	if err := fs.WriteFile(ResetPath, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if got := fm.Snapshot()[7]; got != 0 {
		t.Errorf("after debugfs reset, count = %d", got)
	}
}

func TestFtraceRecordsAndOverhead(t *testing.T) {
	st := kernel.NewSymbolTable()
	ft, err := NewFtrace(st, 4, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	// Per-call cost grows with CPU count and exceeds Fmeter's by a large
	// factor (the paper's core performance claim).
	fm, err := NewFmeter(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	ftCost := ft.PerCallOverheadNS(0, 0)
	fmCost := fm.PerCallOverheadNS(0, 0)
	if ftCost/fmCost < 8 {
		t.Errorf("ftrace/fmeter per-call ratio = %v, want >= 8", ftCost/fmCost)
	}
	ft.OnCalls(1, 5, 10)
	n := 0
	ft.Drain(func(cpu int, rec ringbuf.Record) {
		if rec.FnAddr == 0 {
			t.Error("record missing function address")
		}
		n++
	})
	if n != 10 {
		t.Errorf("drained %d records, want 10", n)
	}
}

func TestFtraceSyntheticAccounting(t *testing.T) {
	st := kernel.NewSymbolTable()
	ft, err := NewFtrace(st, 1, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	ft.OnCalls(0, 5, n)
	stats := ft.RingStats()
	if stats.Writes != maxMaterializedPerBatch {
		t.Errorf("materialized %d, want %d", stats.Writes, maxMaterializedPerBatch)
	}
	if ft.SyntheticRecords() != n-maxMaterializedPerBatch {
		t.Errorf("synthetic = %d", ft.SyntheticRecords())
	}
}

func TestFtraceDebugfsDrains(t *testing.T) {
	st := kernel.NewSymbolTable()
	ft, err := NewFtrace(st, 2, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	fs := debugfs.New()
	if err := ft.RegisterDebugfs(fs); err != nil {
		t.Fatal(err)
	}
	ft.OnCalls(0, 3, 5)
	data, err := fs.ReadFile(TracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 5 {
		t.Errorf("trace lines = %d, want 5", lines)
	}
	// Reading again: buffer drained, empty.
	data, err = fs.ReadFile(TracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("second read returned %d bytes", len(data))
	}
}

func TestFtraceValidation(t *testing.T) {
	st := kernel.NewSymbolTable()
	if _, err := NewFtrace(nil, 1, 0); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := NewFtrace(st, 0, 0); err == nil {
		t.Error("0 CPUs should fail")
	}
	if _, err := NewFmeter(nil, 1); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := NewSharedAtomic(nil, 1); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := NewSharedAtomic(st, 0); err == nil {
		t.Error("0 CPUs should fail")
	}
}

func TestSharedAtomicCostsMoreThanPerCPU(t *testing.T) {
	st := kernel.NewSymbolTable()
	sa, err := NewSharedAtomic(st, 16)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := NewFmeter(st, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sa.PerCallOverheadNS(0, 0) <= fm.PerCallOverheadNS(0, 0) {
		t.Error("shared atomic counters should cost more than per-CPU slots at 16 CPUs")
	}
	sa.OnCalls(0, 9, 4)
	sa.OnCalls(3, 9, 6)
	if got := sa.Snapshot()[9]; got != 10 {
		t.Errorf("shared count = %d, want 10", got)
	}
	sa.OnCalls(0, -1, 1) // ignored
	sa.OnCalls(0, kernel.FuncID(st.Len()), 1)
}

func TestHotCacheFmeter(t *testing.T) {
	st := kernel.NewSymbolTable()
	hot := []kernel.FuncID{1, 2, 3}
	h, err := NewHotCacheFmeter(st, 4, hot)
	if err != nil {
		t.Fatal(err)
	}
	if h.PerCallOverheadNS(0, 1) >= h.PerCallOverheadNS(0, 50) {
		t.Error("hot function should be cheaper than cold")
	}
	// Hot hit is cheaper than the flat stub; miss is slightly dearer.
	if h.PerCallOverheadNS(0, 1) >= FmeterStubNS {
		t.Error("hot hit should undercut the flat stub cost")
	}
	if h.PerCallOverheadNS(0, 50) <= FmeterStubNS {
		t.Error("miss should exceed the flat stub cost")
	}
	h.OnCalls(0, 1, 30)
	h.OnCalls(0, 50, 70)
	if got := h.HitRate(); got != 0.3 {
		t.Errorf("hit rate = %v, want 0.3", got)
	}
	if got := h.Snapshot()[1]; got != 30 {
		t.Errorf("hot count = %d", got)
	}
	if _, err := NewHotCacheFmeter(st, 4, []kernel.FuncID{-5}); err == nil {
		t.Error("out-of-range hot set should fail")
	}
}

func TestHotCacheEmptyHitRate(t *testing.T) {
	st := kernel.NewSymbolTable()
	h, err := NewHotCacheFmeter(st, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.HitRate() != 0 {
		t.Error("hit rate with no calls should be 0")
	}
}

func BenchmarkFmeterOnCalls(b *testing.B) {
	st := kernel.NewSymbolTable()
	fm, err := NewFmeter(st, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm.OnCalls(i&15, kernel.FuncID(i%3815), 1)
	}
}

func BenchmarkFtraceOnCalls(b *testing.B) {
	st := kernel.NewSymbolTable()
	ft, err := NewFtrace(st, 16, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.OnCalls(i&15, kernel.FuncID(i%3815), 1)
	}
}
