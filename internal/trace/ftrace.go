package trace

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/debugfs"
	"repro/internal/kernel"
	"repro/internal/ringbuf"
)

// DefaultFtraceRingRecords is the default per-CPU ring capacity in records.
// Ftrace's buffers are "large fixed size circular buffers"; 64K 24-byte
// records per CPU is ~1.5 MiB/CPU, in the realistic range.
const DefaultFtraceRingRecords = 1 << 16

// maxMaterializedPerBatch bounds how many records one batched OnCalls
// materializes into the ring. A batch of n calls is semantically n records;
// materializing millions of identical records per batch would only burn
// simulator memory bandwidth, so beyond this bound the backend accounts the
// records arithmetically (they would have been overwritten in the ring
// anyway — the ring only ever retains the newest Cap() records).
const maxMaterializedPerBatch = 512

// Ftrace models the kernel function tracer: every call appends a
// fixed-size record (ip, parent ip, timestamp) to a per-CPU SMP-safe ring
// buffer, which user-space drains through debugfs.
type Ftrace struct {
	st        *kernel.SymbolTable
	rings     []*ringbuf.LockedRing
	numCPU    int
	perCallNS float64
	seq       uint64 // virtual timestamp source for records
	synthetic uint64 // records accounted but not materialized
}

var _ kernel.Backend = (*Ftrace)(nil)

// NewFtrace builds the Ftrace backend with per-CPU LockedRing buffers of
// the given capacity (0 means DefaultFtraceRingRecords).
func NewFtrace(st *kernel.SymbolTable, numCPU, ringRecords int) (*Ftrace, error) {
	if st == nil {
		return nil, fmt.Errorf("trace: nil symbol table")
	}
	if numCPU < 1 {
		return nil, fmt.Errorf("trace: numCPU %d must be >= 1", numCPU)
	}
	if ringRecords == 0 {
		ringRecords = DefaultFtraceRingRecords
	}
	f := &Ftrace{
		st:        st,
		rings:     make([]*ringbuf.LockedRing, numCPU),
		numCPU:    numCPU,
		perCallNS: FtraceRecordNS + FtraceCoherencyPerCPUNS*float64(numCPU),
	}
	for i := range f.rings {
		r, err := ringbuf.NewLocked(ringRecords)
		if err != nil {
			return nil, err
		}
		f.rings[i] = r
	}
	return f, nil
}

// Name implements kernel.Backend.
func (f *Ftrace) Name() string { return "ftrace" }

// OnCalls implements kernel.Backend: each call becomes one trace record in
// the CPU's ring buffer (materialization bounded per batch; see
// maxMaterializedPerBatch).
func (f *Ftrace) OnCalls(cpu int, fn kernel.FuncID, n uint64) {
	if cpu < 0 || cpu >= f.numCPU {
		return
	}
	sym, err := f.st.Symbol(fn)
	if err != nil {
		return // outside the instrumented space
	}
	materialize := n
	if materialize > maxMaterializedPerBatch {
		f.synthetic += n - maxMaterializedPerBatch
		materialize = maxMaterializedPerBatch
	}
	for i := uint64(0); i < materialize; i++ {
		f.seq++
		f.rings[cpu].Write(ringbuf.Record{
			FnAddr:     sym.Addr,
			ParentAddr: sym.Addr ^ 0x5a5a, // simulated caller ip
			TimeNS:     f.seq,
		})
	}
}

// PerCallOverheadNS implements kernel.Backend: record formatting plus ring
// reservation costs that grow with the number of online CPUs.
func (f *Ftrace) PerCallOverheadNS(int, kernel.FuncID) float64 { return f.perCallNS }

// Drain consumes all per-CPU rings in CPU order, invoking fn per record,
// and returns the number of records consumed (materialized records only).
func (f *Ftrace) Drain(fn func(cpu int, rec ringbuf.Record)) int {
	total := 0
	for cpu, r := range f.rings {
		total += r.Drain(func(rec ringbuf.Record) { fn(cpu, rec) })
	}
	return total
}

// RingStats returns the aggregate ring-buffer statistics across CPUs.
func (f *Ftrace) RingStats() ringbuf.Stats {
	var agg ringbuf.Stats
	for _, r := range f.rings {
		s := r.Stats()
		agg.Writes += s.Writes
		agg.Overwrites += s.Overwrites
		agg.Drops += s.Drops
		agg.Drains += s.Drains
	}
	return agg
}

// SyntheticRecords returns how many records were accounted without being
// materialized (they are also absent from RingStats).
func (f *Ftrace) SyntheticRecords() uint64 { return f.synthetic }

// TracePath is the debugfs node exporting (and consuming) the trace.
const TracePath = "tracing/trace"

// RegisterDebugfs exposes the trace through fs: reading TracePath drains
// all per-CPU buffers into the textual format "cpu addr parent ts".
func (f *Ftrace) RegisterDebugfs(fs *debugfs.FS) error {
	if fs == nil {
		return fmt.Errorf("trace: nil debugfs")
	}
	return fs.Create(TracePath, func() ([]byte, error) {
		var b strings.Builder
		f.Drain(func(cpu int, rec ringbuf.Record) {
			b.WriteString(strconv.Itoa(cpu))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(rec.FnAddr, 16))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(rec.ParentAddr, 16))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(rec.TimeNS, 10))
			b.WriteByte('\n')
		})
		return []byte(b.String()), nil
	}, nil)
}
