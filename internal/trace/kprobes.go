package trace

import (
	"fmt"

	"repro/internal/kernel"
)

// Kprobes cost-model constants (virtual nanoseconds). A kprobe fires a
// breakpoint trap, runs the handler, then single-steps the displaced
// instruction — an order of magnitude above an inlined stub.
const (
	// KprobeTrapNS is the int3 trap + exception entry/exit cost.
	KprobeTrapNS = 320.0
	// KprobeHandlerNS is the registered handler body (counter update).
	KprobeHandlerNS = 40.0
	// KprobeSingleStepNS is the single-step of the original instruction.
	KprobeSingleStepNS = 180.0
)

// Kprobes is the instrumentation path the paper rejects in §3: grafting
// breakpoint instructions at runtime via the Kernel Dynamic Probes
// subsystem. It produces exactly the same counts as the Fmeter backend —
// the information content is identical — but every call pays a trap,
// handler dispatch, and single-step, which is why Fmeter builds on the
// mcount machinery instead ("unlike Kprobes which incur runtime
// overhead ... Ftrace shifts most of the overhead to kernel compile
// time").
type Kprobes struct {
	inner     *Fmeter
	perCallNS float64
}

var _ kernel.Backend = (*Kprobes)(nil)

// NewKprobes builds the kprobes-based counting backend.
func NewKprobes(st *kernel.SymbolTable, numCPU int) (*Kprobes, error) {
	inner, err := NewFmeter(st, numCPU)
	if err != nil {
		return nil, fmt.Errorf("trace: kprobes: %w", err)
	}
	return &Kprobes{
		inner:     inner,
		perCallNS: KprobeTrapNS + KprobeHandlerNS + KprobeSingleStepNS,
	}, nil
}

// Name implements kernel.Backend.
func (k *Kprobes) Name() string { return "kprobes" }

// OnCalls implements kernel.Backend; the handler updates the same per-CPU
// counter structure Fmeter uses.
func (k *Kprobes) OnCalls(cpu int, fn kernel.FuncID, n uint64) {
	k.inner.OnCalls(cpu, fn, n)
}

// PerCallOverheadNS implements kernel.Backend: trap + handler +
// single-step on every probed call.
func (k *Kprobes) PerCallOverheadNS(int, kernel.FuncID) float64 { return k.perCallNS }

// Snapshot returns the per-function invocation totals.
func (k *Kprobes) Snapshot() []uint64 { return k.inner.Snapshot() }

// Reset zeroes the counters.
func (k *Kprobes) Reset() { k.inner.Reset() }
