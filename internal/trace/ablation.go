package trace

import (
	"fmt"
	"sync/atomic"

	"repro/internal/kernel"
)

// SharedAtomic is an ablation backend: a single shared counter array
// updated with atomic read-modify-write from every CPU. It produces the
// same counts as Fmeter but pays cross-core cache-coherency traffic on
// every increment — the cost the paper's per-CPU design (Figure 3) exists
// to avoid ("lock-free constructs do not absolve such atomic operations
// from generating expensive cache-coherency traffic").
type SharedAtomic struct {
	counts    []uint64
	numCPU    int
	perCallNS float64
}

var _ kernel.Backend = (*SharedAtomic)(nil)

// NewSharedAtomic builds the shared-counter ablation backend.
func NewSharedAtomic(st *kernel.SymbolTable, numCPU int) (*SharedAtomic, error) {
	if st == nil {
		return nil, fmt.Errorf("trace: nil symbol table")
	}
	if numCPU < 1 {
		return nil, fmt.Errorf("trace: numCPU %d must be >= 1", numCPU)
	}
	return &SharedAtomic{
		counts:    make([]uint64, st.Len()),
		numCPU:    numCPU,
		perCallNS: SharedAtomicBaseNS + SharedAtomicCoherencyPerCPUNS*float64(numCPU),
	}, nil
}

// Name implements kernel.Backend.
func (s *SharedAtomic) Name() string { return "shared-atomic" }

// OnCalls implements kernel.Backend.
func (s *SharedAtomic) OnCalls(_ int, fn kernel.FuncID, n uint64) {
	if fn < 0 || int(fn) >= len(s.counts) {
		return
	}
	atomic.AddUint64(&s.counts[fn], n)
}

// PerCallOverheadNS implements kernel.Backend: base atomic cost plus
// coherency traffic proportional to the number of contending CPUs.
func (s *SharedAtomic) PerCallOverheadNS(int, kernel.FuncID) float64 { return s.perCallNS }

// Snapshot returns the shared counter totals.
func (s *SharedAtomic) Snapshot() []uint64 {
	out := make([]uint64, len(s.counts))
	for i := range s.counts {
		out[i] = atomic.LoadUint64(&s.counts[i])
	}
	return out
}

// HotCacheFmeter is the §6 future-work variant: a small fast cache holds
// the counters of the top-N hottest functions, lowering their stub cost
// (less cache pollution following the two-index map), while misses pay a
// small penalty over the flat Fmeter stub for the extra hot-set check.
type HotCacheFmeter struct {
	*Fmeter
	hot    []bool
	hitNS  float64
	missNS float64
	hits   uint64
	misses uint64
}

var _ kernel.Backend = (*HotCacheFmeter)(nil)

// HotCache cost-model constants (virtual nanoseconds).
const (
	// HotCacheHitNS is the stub cost when the function's counter lives in
	// the hot cache.
	HotCacheHitNS = 1.6
	// HotCacheMissPenaltyNS is added to the flat stub cost on a miss.
	HotCacheMissPenaltyNS = 0.3
)

// NewHotCacheFmeter wraps an Fmeter backend with a hot cache over the given
// function set (typically the top-N of a boot-profile ranking; "the value
// of N can be experimentally chosen based on the size of the processor
// caches").
func NewHotCacheFmeter(st *kernel.SymbolTable, numCPU int, hotSet []kernel.FuncID) (*HotCacheFmeter, error) {
	base, err := NewFmeter(st, numCPU)
	if err != nil {
		return nil, err
	}
	h := &HotCacheFmeter{
		Fmeter: base,
		hot:    make([]bool, st.Len()),
		hitNS:  HotCacheHitNS,
		missNS: FmeterStubNS + HotCacheMissPenaltyNS,
	}
	for _, fn := range hotSet {
		if fn < 0 || int(fn) >= st.Len() {
			return nil, fmt.Errorf("trace: hot-set function %d out of range", fn)
		}
		h.hot[fn] = true
	}
	return h, nil
}

// Name implements kernel.Backend.
func (h *HotCacheFmeter) Name() string { return "fmeter-hotcache" }

// OnCalls implements kernel.Backend, tracking hit/miss statistics.
func (h *HotCacheFmeter) OnCalls(cpu int, fn kernel.FuncID, n uint64) {
	if fn >= 0 && int(fn) < len(h.hot) {
		if h.hot[fn] {
			h.hits += n
		} else {
			h.misses += n
		}
	}
	h.Fmeter.OnCalls(cpu, fn, n)
}

// PerCallOverheadNS implements kernel.Backend with per-function costs.
func (h *HotCacheFmeter) PerCallOverheadNS(_ int, fn kernel.FuncID) float64 {
	if fn >= 0 && int(fn) < len(h.hot) && h.hot[fn] {
		return h.hitNS
	}
	return h.missNS
}

// HitRate returns the fraction of calls served from the hot cache.
func (h *HotCacheFmeter) HitRate() float64 {
	total := h.hits + h.misses
	if total == 0 {
		return 0
	}
	return float64(h.hits) / float64(total)
}
