package daemon

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/debugfs"
	"repro/internal/kernel"
	"repro/internal/percpu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestCounterResetMidIntervalSurfacesWrap: if the counters are zeroed
// between the daemon's two reads (someone echoed into fmeter/reset), the
// after-snapshot is below the before-snapshot and the collector must
// report the wrap instead of producing a bogus huge diff.
func TestCounterResetMidIntervalSurfacesWrap(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 50)
	// Prime some counts so before > 0.
	if _, err := h.run.RunInterval(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	body := func(d time.Duration) error {
		// Workload runs, then the counters get reset mid-interval.
		if _, err := h.run.RunInterval(d); err != nil {
			return err
		}
		h.fm.Reset()
		return nil
	}
	_, err := h.col.CollectInterval("wrap", "scp", 10*time.Second, body)
	if !errors.Is(err, percpu.ErrCounterWrapped) {
		t.Fatalf("want ErrCounterWrapped, got %v", err)
	}
}

// TestIntervalBodyErrorPropagates: a failure inside the monitored interval
// aborts the collection with context.
func TestIntervalBodyErrorPropagates(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 51)
	boom := errors.New("workload crashed")
	_, err := h.col.CollectInterval("x", "scp", time.Second, func(time.Duration) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want workload error, got %v", err)
	}
}

// TestSeriesReturnsPartialResultsOnFailure: CollectSeries hands back the
// documents collected before the failing interval.
func TestSeriesReturnsPartialResultsOnFailure(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 52)
	calls := 0
	body := func(d time.Duration) error {
		calls++
		if calls == 3 {
			return fmt.Errorf("disk full")
		}
		_, err := h.run.RunInterval(d)
		return err
	}
	docs, err := h.col.CollectSeries("p", "scp", 5, time.Second, body, nil)
	if err == nil {
		t.Fatal("expected failure on interval 3")
	}
	if len(docs) != 2 {
		t.Fatalf("partial docs = %d, want 2", len(docs))
	}
}

// TestDebugfsNodeRemovedMidRun: unregistering the counters node between
// intervals produces a clean read error, not a panic.
func TestDebugfsNodeRemovedMidRun(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 53)
	if _, err := h.col.CollectInterval("ok", "scp", time.Second, h.body); err != nil {
		t.Fatal(err)
	}
	if err := h.fs.Remove(trace.CountersPath); err != nil {
		t.Fatal(err)
	}
	_, err := h.col.CollectInterval("gone", "scp", time.Second, h.body)
	if !errors.Is(err, debugfs.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

// TestCorruptCountersExport: a debugfs node serving garbage is reported as
// a parse error.
func TestCorruptCountersExport(t *testing.T) {
	st := kernel.NewSymbolTable()
	fs := debugfs.New()
	err := fs.Create(trace.CountersPath, func() ([]byte, error) {
		return []byte("garbage not counters\n"), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(fs, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.ReadCounters(); err == nil {
		t.Fatal("corrupt export should fail to parse")
	}
}

// TestReadHandlerErrorPropagates: a failing read handler surfaces through
// the collector with context.
func TestReadHandlerErrorPropagates(t *testing.T) {
	st := kernel.NewSymbolTable()
	fs := debugfs.New()
	ioErr := errors.New("simulated EIO")
	err := fs.Create(trace.CountersPath, func() ([]byte, error) {
		return nil, ioErr
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(fs, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.ReadCounters(); !errors.Is(err, ioErr) {
		t.Fatalf("want simulated EIO, got %v", err)
	}
}
