package daemon

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/debugfs"
	"repro/internal/kernel"
	"repro/internal/percpu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestCounterResetMidIntervalSurfacesWrap: if the counters are zeroed
// between the daemon's two reads (someone echoed into fmeter/reset), the
// after-snapshot is below the before-snapshot and the collector must
// report the wrap instead of producing a bogus huge diff.
func TestCounterResetMidIntervalSurfacesWrap(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 50)
	// Prime some counts so before > 0.
	if _, err := h.run.RunInterval(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	body := func(d time.Duration) error {
		// Workload runs, then the counters get reset mid-interval.
		if _, err := h.run.RunInterval(d); err != nil {
			return err
		}
		h.fm.Reset()
		return nil
	}
	_, err := h.col.CollectInterval("wrap", "scp", 10*time.Second, body)
	if !errors.Is(err, percpu.ErrCounterWrapped) {
		t.Fatalf("want ErrCounterWrapped, got %v", err)
	}
}

// TestIntervalBodyErrorPropagates: a failure inside the monitored interval
// aborts the collection with context.
func TestIntervalBodyErrorPropagates(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 51)
	boom := errors.New("workload crashed")
	_, err := h.col.CollectInterval("x", "scp", time.Second, func(time.Duration) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want workload error, got %v", err)
	}
}

// TestSeriesReturnsPartialResultsOnFailure: CollectSeries hands back the
// documents collected before the failing interval.
func TestSeriesReturnsPartialResultsOnFailure(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 52)
	calls := 0
	body := func(d time.Duration) error {
		calls++
		if calls == 3 {
			return fmt.Errorf("disk full")
		}
		_, err := h.run.RunInterval(d)
		return err
	}
	docs, err := h.col.CollectSeries("p", "scp", 5, time.Second, body, nil)
	if err == nil {
		t.Fatal("expected failure on interval 3")
	}
	if len(docs) != 2 {
		t.Fatalf("partial docs = %d, want 2", len(docs))
	}
}

// TestDebugfsNodeRemovedMidRun: unregistering the counters node between
// intervals produces a clean read error, not a panic.
func TestDebugfsNodeRemovedMidRun(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 53)
	if _, err := h.col.CollectInterval("ok", "scp", time.Second, h.body); err != nil {
		t.Fatal(err)
	}
	if err := h.fs.Remove(trace.CountersPath); err != nil {
		t.Fatal(err)
	}
	_, err := h.col.CollectInterval("gone", "scp", time.Second, h.body)
	if !errors.Is(err, debugfs.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

// TestCorruptCountersExport: a debugfs node serving garbage is reported as
// a parse error.
func TestCorruptCountersExport(t *testing.T) {
	st := kernel.NewSymbolTable()
	fs := debugfs.New()
	err := fs.Create(trace.CountersPath, func() ([]byte, error) {
		return []byte("garbage not counters\n"), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(fs, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.ReadCounters(); err == nil {
		t.Fatal("corrupt export should fail to parse")
	}
}

// TestReadHandlerErrorPropagates: a failing read handler surfaces through
// the collector with context.
func TestReadHandlerErrorPropagates(t *testing.T) {
	st := kernel.NewSymbolTable()
	fs := debugfs.New()
	ioErr := errors.New("simulated EIO")
	err := fs.Create(trace.CountersPath, func() ([]byte, error) {
		return nil, ioErr
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(fs, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.ReadCounters(); !errors.Is(err, ioErr) {
		t.Fatalf("want simulated EIO, got %v", err)
	}
}

// TestReadRetryRecoversFromTransientFailure: a read that fails twice and
// then succeeds is retried with the policy's jittered exponential
// backoff and returns counters as if nothing happened; only the retry
// counter betrays the bumps.
func TestReadRetryRecoversFromTransientFailure(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 54)
	ioErr := errors.New("simulated EIO")
	fs2 := debugfs.New()
	readN := 0
	err := fs2.Create(trace.CountersPath, func() ([]byte, error) {
		readN++
		if readN <= 2 {
			return nil, ioErr
		}
		return h.fs.ReadFile(trace.CountersPath)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(fs2, h.st)
	if err != nil {
		t.Fatal(err)
	}
	var delays []time.Duration
	col.sleepFn = func(d time.Duration) { delays = append(delays, d) }
	col.randFn = func() float64 { return 1 } // jitter factor pinned to 1+Jitter
	col.SetRetryPolicy(RetryPolicy{Retries: 3, Backoff: 10 * time.Millisecond, Jitter: 0.5})
	if _, err := col.ReadCounters(); err != nil {
		t.Fatalf("read with transient failures: %v", err)
	}
	if got := col.Stats().Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	want := []time.Duration{15 * time.Millisecond, 30 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("backoff delays = %v, want %v", delays, want)
	}
}

// TestReadRetryExhaustionIsTyped: once the schedule runs out the error
// wraps both the ErrCountersUnavailable sentinel (what the series
// collectors key their skip on) and the underlying cause.
func TestReadRetryExhaustionIsTyped(t *testing.T) {
	st := kernel.NewSymbolTable()
	fs := debugfs.New()
	ioErr := errors.New("simulated EIO")
	if err := fs.Create(trace.CountersPath, func() ([]byte, error) { return nil, ioErr }, nil); err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(fs, st)
	if err != nil {
		t.Fatal(err)
	}
	col.sleepFn = func(time.Duration) {}
	col.SetRetryPolicy(RetryPolicy{Retries: 2, Backoff: time.Millisecond})
	_, err = col.ReadCounters()
	if !errors.Is(err, ErrCountersUnavailable) {
		t.Fatalf("want ErrCountersUnavailable, got %v", err)
	}
	if !errors.Is(err, ioErr) {
		t.Fatalf("exhaustion error %v should wrap the underlying cause", err)
	}
	if got := col.Stats().Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

// TestRetryDoesNotMaskPermanentErrors: a removed node is not transient —
// no retries, no sentinel, the original ErrNotFound surfaces untouched.
func TestRetryDoesNotMaskPermanentErrors(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 55)
	col := h.col
	col.sleepFn = func(d time.Duration) { t.Fatalf("slept %v for a permanent error", d) }
	if err := h.fs.Remove(trace.CountersPath); err != nil {
		t.Fatal(err)
	}
	_, err := col.ReadCounters()
	if !errors.Is(err, debugfs.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if errors.Is(err, ErrCountersUnavailable) {
		t.Fatalf("permanent error wrongly tagged transient: %v", err)
	}
	if got := col.Stats().Retries; got != 0 {
		t.Fatalf("retries = %d, want 0", got)
	}
}

// TestSeriesSkipsUnavailableInterval: when one interval's reads stay
// down through the whole retry schedule, the series drops that interval
// with a counted warning and keeps going — the run survives.
func TestSeriesSkipsUnavailableInterval(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 56)
	ioErr := errors.New("simulated EIO")
	fs2 := debugfs.New()
	readN := 0
	// Reads 1-4 serve intervals 0 and 1; interval 2's before-read and its
	// two retries (reads 5-7) all fail; interval 3 recovers.
	err := fs2.Create(trace.CountersPath, func() ([]byte, error) {
		readN++
		if readN >= 5 && readN <= 7 {
			return nil, ioErr
		}
		return h.fs.ReadFile(trace.CountersPath)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(fs2, h.st)
	if err != nil {
		t.Fatal(err)
	}
	col.sleepFn = func(time.Duration) {}
	col.SetRetryPolicy(RetryPolicy{Retries: 2, Backoff: time.Millisecond})
	warns := 0
	col.SetWarnf(func(string, ...any) { warns++ })
	docs, err := col.CollectSeries("p", "scp", 4, time.Second, h.body, nil)
	if err != nil {
		t.Fatalf("series should survive a skipped interval: %v", err)
	}
	if len(docs) != 3 {
		t.Fatalf("docs = %d, want 3 (one interval skipped)", len(docs))
	}
	if docs[2].ID != "p-0003" {
		t.Fatalf("last doc ID = %q, want p-0003 (interval 2 skipped)", docs[2].ID)
	}
	st := col.Stats()
	if st.SkippedIntervals != 1 {
		t.Fatalf("skipped = %d, want 1", st.SkippedIntervals)
	}
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
	if warns != 3 { // two retry warnings + one skip warning
		t.Fatalf("warnings = %d, want 3", warns)
	}
}

// TestCollectStreamIngestsLiveDB: CollectStream embeds each interval
// through the fitted model and lands it in the DB while a concurrent
// goroutine queries that same DB — the serving posture the epoch-view
// DB exists for.
func TestCollectStreamIngestsLiveDB(t *testing.T) {
	h := newHarness(t, workload.Dbench(16), 57)
	warm, err := h.col.CollectSeries("warm", "dbench", 6, 10*time.Second, h.body, nil)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := core.NewCorpus(h.st.Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range warm {
		if err := corpus.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	sigs, model, err := corpus.Signatures()
	if err != nil {
		t.Fatal(err)
	}
	core.Normalize(sigs)
	db, err := core.NewShardedDB(h.st.Len(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.AddAll(sigs); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { // live queries against the DB being ingested into
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.TopKSparse(sigs[0].W, 3, core.CosineMetric()); err != nil {
				done <- err
				return
			}
		}
	}()
	added, err := h.col.CollectStream("live", "dbench", 5, 10*time.Second, h.body, model, db, nil)
	close(stop)
	if qerr := <-done; qerr != nil {
		t.Fatalf("concurrent query during stream: %v", qerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 {
		t.Fatalf("added = %d, want 5", added)
	}
	if db.Len() != len(sigs)+5 {
		t.Fatalf("db.Len() = %d, want %d", db.Len(), len(sigs)+5)
	}
}

// TestCollectStreamBatchedIngestAmortizesPublishes: with an ingest
// batch configured, an n-interval stream must land the same signatures
// in the DB while publishing far fewer epoch views — one AddAll per
// full batch instead of one Add per signature.
func TestCollectStreamBatchedIngestAmortizesPublishes(t *testing.T) {
	h := newHarness(t, workload.Dbench(16), 61)
	warm, err := h.col.CollectSeries("warm", "dbench", 6, 10*time.Second, h.body, nil)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := core.NewCorpus(h.st.Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range warm {
		if err := corpus.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	_, model, err := corpus.Signatures()
	if err != nil {
		t.Fatal(err)
	}

	const intervals = 8
	stream := func(batch int) (*core.DB, uint64) {
		t.Helper()
		db, err := core.NewShardedDB(h.st.Len(), 2)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		h.col.SetIngestBatch(batch)
		before := db.Publishes()
		added, err := h.col.CollectStream(fmt.Sprintf("b%d", batch), "dbench", intervals, 10*time.Second, h.body, model, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if added != intervals {
			t.Fatalf("batch=%d: added = %d, want %d", batch, added, intervals)
		}
		if db.Len() != intervals {
			t.Fatalf("batch=%d: db.Len() = %d, want %d", batch, db.Len(), intervals)
		}
		return db, db.Publishes() - before
	}

	_, unbatched := stream(1)
	_, batched := stream(4)
	if unbatched != intervals {
		t.Fatalf("unbatched stream cost %d publishes, want %d (one per Add)", unbatched, intervals)
	}
	if want := uint64(intervals / 4); batched != want {
		t.Fatalf("batched stream cost %d publishes, want %d (one per AddAll)", batched, want)
	}
}
