package daemon

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/debugfs"
	"repro/internal/kernel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// harness wires a full monitored system: engine + fmeter backend + debugfs
// + collector + a workload runner.
type harness struct {
	st  *kernel.SymbolTable
	eng *kernel.Engine
	fm  *trace.Fmeter
	fs  *debugfs.FS
	col *Collector
	run *workload.Runner
}

func newHarness(t *testing.T, spec workload.Spec, seed int64) *harness {
	t.Helper()
	st := kernel.NewSymbolTable()
	cat, err := kernel.NewCatalog(st)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := trace.NewFmeter(st, 16)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := kernel.NewEngine(cat, kernel.EngineConfig{
		NumCPU: 16, Backend: fm, Seed: seed, CountJitter: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := debugfs.New()
	if err := fm.RegisterDebugfs(fs); err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(fs, st)
	if err != nil {
		t.Fatal(err)
	}
	run, err := workload.NewRunner(eng, spec, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{st: st, eng: eng, fm: fm, fs: fs, col: col, run: run}
}

func (h *harness) body(d time.Duration) error {
	_, err := h.run.RunInterval(d)
	return err
}

func TestNewCollectorValidation(t *testing.T) {
	st := kernel.NewSymbolTable()
	fs := debugfs.New()
	if _, err := NewCollector(nil, st); err == nil {
		t.Error("nil fs should fail")
	}
	if _, err := NewCollector(fs, nil); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := NewCollector(fs, st); err == nil {
		t.Error("missing counters node should fail")
	}
}

func TestCollectInterval(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 1)
	doc, err := h.col.CollectInterval("scp-0", "scp", 10*time.Second, h.body)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != "scp-0" || doc.Label != "scp" || doc.Duration != 10*time.Second {
		t.Errorf("document metadata: %+v", doc)
	}
	if doc.Total() == 0 {
		t.Fatal("interval document is empty")
	}
	// A second interval diffs from the new baseline, not from zero.
	doc2, err := h.col.CollectInterval("scp-1", "scp", 10*time.Second, h.body)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(doc2.Total()) / float64(doc.Total())
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("second interval total off by %vx; diff baseline broken", ratio)
	}
}

func TestCollectIntervalValidation(t *testing.T) {
	h := newHarness(t, workload.Scp(16), 2)
	if _, err := h.col.CollectInterval("x", "", 0, h.body); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := h.col.CollectInterval("x", "", time.Second, nil); err == nil {
		t.Error("nil body should fail")
	}
}

func TestCollectSeriesLogsJSONL(t *testing.T) {
	h := newHarness(t, workload.Dbench(16), 3)
	var buf bytes.Buffer
	docs, err := h.col.CollectSeries("dbench", "dbench", 5, 10*time.Second, h.body, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("collected %d docs", len(docs))
	}
	back, err := core.ReadDocuments(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("logged %d docs", len(back))
	}
	for i, d := range back {
		if d.Label != "dbench" {
			t.Errorf("doc %d label = %q", i, d.Label)
		}
		if d.Total() == 0 {
			t.Errorf("doc %d empty", i)
		}
	}
	if docs[0].ID == docs[1].ID {
		t.Error("series documents must have distinct IDs")
	}
	if _, err := h.col.CollectSeries("x", "", 0, time.Second, h.body, nil); err == nil {
		t.Error("series length 0 should fail")
	}
}

func TestSeriesDocumentsFeedCorpus(t *testing.T) {
	h := newHarness(t, workload.Kcompile(16), 4)
	docs, err := h.col.CollectSeries("kc", "kcompile", 8, 10*time.Second, h.body, nil)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := core.NewCorpus(h.st.Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := corpus.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	sigs, _, err := corpus.Signatures()
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 8 {
		t.Fatalf("signatures: %d", len(sigs))
	}
	nonzero := 0
	for _, s := range sigs {
		if s.W.NNZ() > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("all signatures are zero vectors; idf collapsed everything")
	}
}
