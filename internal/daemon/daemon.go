// Package daemon implements the user-space logging daemon of §3: it
// periodically reads the kernel function invocation counts through the
// debugfs interface, computes the difference across each collection
// interval, and logs the resulting raw-count documents to disk. The
// tf-idf transformation happens later, "once an entire corpus is
// generated".
package daemon

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/debugfs"
	"repro/internal/kernel"
	"repro/internal/percpu"
	"repro/internal/trace"
)

// DefaultInterval is the default collection interval. The paper's daemon
// retrieves signatures every 2-10 seconds; the classification experiments
// use 10 s.
const DefaultInterval = 10 * time.Second

// Collector reads counters through debugfs and produces interval
// documents.
type Collector struct {
	fs *debugfs.FS
	st *kernel.SymbolTable
}

// NewCollector builds a collector over the debugfs instance where an
// Fmeter backend registered its counters node.
func NewCollector(fs *debugfs.FS, st *kernel.SymbolTable) (*Collector, error) {
	if fs == nil {
		return nil, fmt.Errorf("daemon: nil debugfs")
	}
	if st == nil {
		return nil, fmt.Errorf("daemon: nil symbol table")
	}
	if !fs.Exists(trace.CountersPath) {
		return nil, fmt.Errorf("daemon: %s not present; is the Fmeter backend registered?", trace.CountersPath)
	}
	return &Collector{fs: fs, st: st}, nil
}

// ReadCounters reads and parses the current counter export.
func (c *Collector) ReadCounters() ([]uint64, error) {
	data, err := c.fs.ReadFile(trace.CountersPath)
	if err != nil {
		return nil, fmt.Errorf("daemon: reading counters: %w", err)
	}
	counts, err := trace.UnmarshalCounters(c.st, data)
	if err != nil {
		return nil, fmt.Errorf("daemon: parsing counters: %w", err)
	}
	return counts, nil
}

// CollectInterval reads the counters, runs one monitoring interval via
// run (which should advance the simulated system by d), reads the counters
// again, and returns the difference as a labeled document.
func (c *Collector) CollectInterval(id, label string, d time.Duration, run func(time.Duration) error) (*core.Document, error) {
	if d <= 0 {
		return nil, fmt.Errorf("daemon: non-positive interval %v", d)
	}
	if run == nil {
		return nil, fmt.Errorf("daemon: nil interval body")
	}
	before, err := c.ReadCounters()
	if err != nil {
		return nil, err
	}
	if err := run(d); err != nil {
		return nil, fmt.Errorf("daemon: interval body: %w", err)
	}
	after, err := c.ReadCounters()
	if err != nil {
		return nil, err
	}
	diff, err := percpu.Diff(before, after)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	return core.NewDocument(id, label, d, diff), nil
}

// CollectSeries collects n consecutive intervals, optionally streaming
// each document to w (nil w disables logging). Documents are named
// "<prefix>-<index>".
func (c *Collector) CollectSeries(prefix, label string, n int, d time.Duration, run func(time.Duration) error, w io.Writer) ([]*core.Document, error) {
	if n < 1 {
		return nil, fmt.Errorf("daemon: series length %d must be >= 1", n)
	}
	docs := make([]*core.Document, 0, n)
	for i := 0; i < n; i++ {
		doc, err := c.CollectInterval(fmt.Sprintf("%s-%04d", prefix, i), label, d, run)
		if err != nil {
			return docs, fmt.Errorf("daemon: interval %d: %w", i, err)
		}
		docs = append(docs, doc)
		if w != nil {
			if err := core.WriteDocuments(w, []*core.Document{doc}); err != nil {
				return docs, fmt.Errorf("daemon: logging interval %d: %w", i, err)
			}
		}
	}
	return docs, nil
}
