// Package daemon implements the user-space logging daemon of §3: it
// periodically reads the kernel function invocation counts through the
// debugfs interface, computes the difference across each collection
// interval, and logs the resulting raw-count documents to disk. The
// tf-idf transformation happens later, "once an entire corpus is
// generated".
package daemon

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/debugfs"
	"repro/internal/kernel"
	"repro/internal/percpu"
	"repro/internal/trace"
)

// DefaultInterval is the default collection interval. The paper's daemon
// retrieves signatures every 2-10 seconds; the classification experiments
// use 10 s.
const DefaultInterval = 10 * time.Second

// ErrCountersUnavailable wraps a debugfs read failure that persisted
// through the whole retry schedule. The series collectors treat it as a
// degraded interval — skip and count — rather than a run-ending fault;
// everything else (workload errors, counter wraps, a removed node)
// still aborts.
var ErrCountersUnavailable = errors.New("daemon: counters unavailable")

// RetryPolicy governs how the collector handles transient debugfs read
// failures: each failed read is retried Retries more times, sleeping
// Backoff<<attempt before each retry with the delay jittered uniformly
// in [1-Jitter, 1+Jitter] so a fleet of daemons doesn't re-read in
// lockstep. Retries <= 0 disables retrying (and with it the
// skip-don't-abort behaviour, restoring fail-fast semantics).
type RetryPolicy struct {
	Retries int
	Backoff time.Duration
	Jitter  float64
}

// DefaultRetryPolicy retries three times over ~70ms of jittered
// exponential backoff — long enough to ride out a torn read or a
// transiently busy debugfs, short next to any sane collection interval.
var DefaultRetryPolicy = RetryPolicy{Retries: 3, Backoff: 10 * time.Millisecond, Jitter: 0.5}

// Stats are the collector's degradation counters: how many reads needed
// a retry, and how many intervals were dropped after the retries ran
// out. A long-running daemon exports these instead of dying.
type Stats struct {
	Retries          uint64
	SkippedIntervals uint64
}

// Collector reads counters through debugfs and produces interval
// documents.
type Collector struct {
	fs *debugfs.FS
	st *kernel.SymbolTable

	policy  RetryPolicy
	sleepFn func(time.Duration) // test seam; time.Sleep
	randFn  func() float64      // test seam; rand.Float64
	warnf   func(format string, args ...any)
	retries atomic.Uint64
	skipped atomic.Uint64

	// ingestBatch is how many signatures CollectStream buffers before
	// publishing them in one AddAll; <= 1 keeps per-signature Add.
	ingestBatch int
}

// NewCollector builds a collector over the debugfs instance where an
// Fmeter backend registered its counters node.
func NewCollector(fs *debugfs.FS, st *kernel.SymbolTable) (*Collector, error) {
	if fs == nil {
		return nil, fmt.Errorf("daemon: nil debugfs")
	}
	if st == nil {
		return nil, fmt.Errorf("daemon: nil symbol table")
	}
	if !fs.Exists(trace.CountersPath) {
		return nil, fmt.Errorf("daemon: %s not present; is the Fmeter backend registered?", trace.CountersPath)
	}
	return &Collector{
		fs:      fs,
		st:      st,
		policy:  DefaultRetryPolicy,
		sleepFn: time.Sleep,
		//fmeter:nondeterministic-ok backoff jitter is deliberately unseeded so retrying daemons decorrelate
		randFn: rand.Float64,
	}, nil
}

// SetRetryPolicy replaces the read retry schedule (see RetryPolicy).
func (c *Collector) SetRetryPolicy(p RetryPolicy) {
	if p.Retries < 0 {
		p.Retries = 0
	}
	c.policy = p
}

// SetWarnf installs the sink for the collector's counted warnings
// (retry exhaustion, skipped intervals). nil silences them; a daemon
// typically passes log.Printf.
func (c *Collector) SetWarnf(fn func(format string, args ...any)) { c.warnf = fn }

// SetIngestBatch makes CollectStream buffer up to n embedded signatures
// and publish them with a single AddAll instead of one Add (and thus
// one RCU view publication) per signature — amortizing the writer-lock
// epoch churn that ROADMAP flagged on the live-ingestion path. n <= 1
// restores the per-signature behavior. The stream still flushes the
// partial tail batch at the end and before surfacing any abort error,
// so callers observe exactly the same signatures in the DB either way.
func (c *Collector) SetIngestBatch(n int) { c.ingestBatch = n }

// Stats returns the degradation counters accumulated so far.
func (c *Collector) Stats() Stats {
	return Stats{Retries: c.retries.Load(), SkippedIntervals: c.skipped.Load()}
}

func (c *Collector) warn(format string, args ...any) {
	if c.warnf != nil {
		c.warnf(format, args...)
	}
}

// backoff is the jittered exponential delay before retry attempt k.
func (c *Collector) backoff(attempt int) time.Duration {
	d := c.policy.Backoff << uint(attempt)
	if j := c.policy.Jitter; j > 0 {
		d = time.Duration(float64(d) * (1 + j*(2*c.randFn()-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// readOnce performs one read+parse of the counter export.
func (c *Collector) readOnce() ([]uint64, error) {
	data, err := c.fs.ReadFile(trace.CountersPath)
	if err != nil {
		return nil, fmt.Errorf("daemon: reading counters: %w", err)
	}
	counts, err := trace.UnmarshalCounters(c.st, data)
	if err != nil {
		return nil, fmt.Errorf("daemon: parsing counters: %w", err)
	}
	return counts, nil
}

// ReadCounters reads and parses the current counter export, retrying
// transient failures per the RetryPolicy. A missing or write-only node
// is permanent (the backend unregistered) and fails immediately; any
// other failure is retried, and once the schedule runs out the error
// wraps both ErrCountersUnavailable and the last underlying cause.
func (c *Collector) ReadCounters() ([]uint64, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		counts, err := c.readOnce()
		if err == nil {
			return counts, nil
		}
		if errors.Is(err, debugfs.ErrNotFound) || errors.Is(err, debugfs.ErrNotSupported) {
			return nil, err
		}
		lastErr = err
		if attempt >= c.policy.Retries {
			if c.policy.Retries <= 0 {
				return nil, lastErr
			}
			return nil, fmt.Errorf("%w after %d attempts: %w", ErrCountersUnavailable, attempt+1, lastErr)
		}
		c.retries.Add(1)
		c.warn("daemon: counter read failed (attempt %d/%d), retrying: %v", attempt+1, c.policy.Retries+1, err)
		c.sleepFn(c.backoff(attempt))
	}
}

// CollectInterval reads the counters, runs one monitoring interval via
// run (which should advance the simulated system by d), reads the counters
// again, and returns the difference as a labeled document.
func (c *Collector) CollectInterval(id, label string, d time.Duration, run func(time.Duration) error) (*core.Document, error) {
	if d <= 0 {
		return nil, fmt.Errorf("daemon: non-positive interval %v", d)
	}
	if run == nil {
		return nil, fmt.Errorf("daemon: nil interval body")
	}
	before, err := c.ReadCounters()
	if err != nil {
		return nil, err
	}
	if err := run(d); err != nil {
		return nil, fmt.Errorf("daemon: interval body: %w", err)
	}
	after, err := c.ReadCounters()
	if err != nil {
		return nil, err
	}
	diff, err := percpu.Diff(before, after)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	return core.NewDocument(id, label, d, diff), nil
}

// CollectSeries collects n consecutive intervals, optionally streaming
// each document to w (nil w disables logging). Documents are named
// "<prefix>-<index>". An interval whose counter reads stay unavailable
// through the whole retry schedule is skipped with a counted warning
// (see Stats) instead of aborting the run — a long-lived daemon
// degrades, it does not die — so the result can hold fewer than n
// documents. Any other failure still aborts with the documents
// collected so far.
func (c *Collector) CollectSeries(prefix, label string, n int, d time.Duration, run func(time.Duration) error, w io.Writer) ([]*core.Document, error) {
	if n < 1 {
		return nil, fmt.Errorf("daemon: series length %d must be >= 1", n)
	}
	docs := make([]*core.Document, 0, n)
	for i := 0; i < n; i++ {
		doc, err := c.CollectInterval(fmt.Sprintf("%s-%04d", prefix, i), label, d, run)
		if err != nil {
			if errors.Is(err, ErrCountersUnavailable) {
				c.skipped.Add(1)
				c.warn("daemon: skipping interval %d (%d skipped so far): %v", i, c.skipped.Load(), err)
				continue
			}
			return docs, fmt.Errorf("daemon: interval %d: %w", i, err)
		}
		docs = append(docs, doc)
		if w != nil {
			if err := core.WriteDocuments(w, []*core.Document{doc}); err != nil {
				return docs, fmt.Errorf("daemon: logging interval %d: %w", i, err)
			}
		}
	}
	return docs, nil
}

// CollectStream collects n consecutive intervals and feeds each one
// straight into a live signature database: the interval document is
// embedded through the fitted tf-idf model, L2-normalized, and Added to
// db the moment its interval ends. Under the DB's epoch-view contract
// this ingestion runs safely while other goroutines query db — the
// always-on serving posture of a production daemon. Unavailable-counter
// intervals are retried and then skipped exactly like CollectSeries; a
// non-nil w additionally logs each raw document as JSON Lines. Returns
// the number of signatures added.
func (c *Collector) CollectStream(prefix, label string, n int, d time.Duration, run func(time.Duration) error, model *core.Model, db *core.DB, w io.Writer) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("daemon: series length %d must be >= 1", n)
	}
	if model == nil {
		return 0, fmt.Errorf("daemon: nil model")
	}
	if db == nil {
		return 0, fmt.Errorf("daemon: nil database")
	}
	// With an ingest batch configured, embedded signatures accumulate in
	// buf and publish through one AddAll per flush — one epoch view
	// publication amortized over the whole batch. flush is called on a
	// full buffer, at stream end, and before every abort return, so the
	// DB contents match the per-signature path exactly.
	batch := c.ingestBatch
	var buf []core.Signature
	if batch > 1 {
		buf = make([]core.Signature, 0, batch)
	}
	added := 0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := db.AddAll(buf); err != nil {
			return err
		}
		added += len(buf)
		buf = buf[:0]
		return nil
	}
	for i := 0; i < n; i++ {
		doc, err := c.CollectInterval(fmt.Sprintf("%s-%04d", prefix, i), label, d, run)
		if err != nil {
			if errors.Is(err, ErrCountersUnavailable) {
				c.skipped.Add(1)
				c.warn("daemon: skipping interval %d (%d skipped so far): %v", i, c.skipped.Load(), err)
				continue
			}
			if ferr := flush(); ferr != nil {
				return added, fmt.Errorf("daemon: flushing before abort at interval %d: %w", i, ferr)
			}
			return added, fmt.Errorf("daemon: interval %d: %w", i, err)
		}
		sig, err := model.Transform(doc)
		if err != nil {
			if ferr := flush(); ferr != nil {
				return added, fmt.Errorf("daemon: flushing before abort at interval %d: %w", i, ferr)
			}
			return added, fmt.Errorf("daemon: embedding interval %d: %w", i, err)
		}
		sigs := []core.Signature{sig}
		core.Normalize(sigs)
		if batch > 1 {
			buf = append(buf, sigs[0])
			if len(buf) >= batch {
				if err := flush(); err != nil {
					return added, fmt.Errorf("daemon: ingesting batch at interval %d: %w", i, err)
				}
			}
		} else {
			if err := db.Add(sigs[0]); err != nil {
				return added, fmt.Errorf("daemon: ingesting interval %d: %w", i, err)
			}
			added++
		}
		if w != nil {
			if err := core.WriteDocuments(w, []*core.Document{doc}); err != nil {
				if ferr := flush(); ferr != nil {
					return added, fmt.Errorf("daemon: flushing before abort at interval %d: %w", i, ferr)
				}
				return added, fmt.Errorf("daemon: logging interval %d: %w", i, err)
			}
		}
	}
	if err := flush(); err != nil {
		return added, fmt.Errorf("daemon: ingesting final batch: %w", err)
	}
	return added, nil
}
