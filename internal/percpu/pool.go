package percpu

import "sync"

// Pool is the host-side analogue of the per-CPU counter pages for
// query-time scratch: each worker checks out an exclusive scratch value,
// works on it without any sharing or cross-worker coherency traffic, and
// returns it when done. Unlike sync.Pool it never discards values, so a
// steady-state workload (e.g. a TopK query stream) reaches zero
// allocations per operation once as many scratch values exist as there
// are concurrent workers.
//
// A Pool must be created with NewPool; the zero value has no constructor.
type Pool[T any] struct {
	mu   sync.Mutex
	free []T
	new  func() T
}

// NewPool creates a pool whose Get falls back to newFn when no recycled
// scratch is available.
func NewPool[T any](newFn func() T) *Pool[T] {
	return &Pool[T]{new: newFn}
}

// Get checks out a scratch value: the most recently returned one (warm
// caches) or a fresh one from the constructor.
func (p *Pool[T]) Get() T {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	return p.new()
}

// Put returns a scratch value for reuse. The caller must not touch v
// afterwards.
func (p *Pool[T]) Put(v T) {
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}
