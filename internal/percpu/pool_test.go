package percpu

import (
	"sync"
	"testing"
)

// TestPoolRecycles checks that Put-then-Get hands back the same scratch
// value (LIFO, warm caches) and that an empty pool constructs.
func TestPoolRecycles(t *testing.T) {
	built := 0
	p := NewPool(func() *[]int {
		built++
		v := make([]int, 0, 8)
		return &v
	})
	a := p.Get()
	if built != 1 {
		t.Fatalf("built = %d", built)
	}
	p.Put(a)
	b := p.Get()
	if a != b {
		t.Fatal("pool did not recycle the returned scratch")
	}
	c := p.Get() // pool empty again: constructs
	if built != 2 || c == a {
		t.Fatalf("built = %d, c == a: %v", built, c == a)
	}
}

// TestPoolConcurrent hammers Get/Put from many goroutines; run under
// -race this pins the mutex discipline.
func TestPoolConcurrent(t *testing.T) {
	p := NewPool(func() []byte { return make([]byte, 16) })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := p.Get()
				v[0]++
				p.Put(v)
			}
		}()
	}
	wg.Wait()
}
