package percpu

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddrOfRoundTrip(t *testing.T) {
	for _, fn := range []int{0, 1, SlotsPerPage - 1, SlotsPerPage, SlotsPerPage + 1, 3814} {
		a := AddrOf(fn)
		if got := FuncOf(a); got != fn {
			t.Errorf("FuncOf(AddrOf(%d)) = %d", fn, got)
		}
		if a.Slot < 0 || a.Slot >= SlotsPerPage {
			t.Errorf("AddrOf(%d).Slot = %d out of range", fn, a.Slot)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("numCPU 0 should fail")
	}
	if _, err := New(1, 0); err == nil {
		t.Error("numFuncs 0 should fail")
	}
}

func TestPageCount(t *testing.T) {
	tests := []struct {
		funcs, wantPages int
	}{
		{1, 1}, {SlotsPerPage, 1}, {SlotsPerPage + 1, 2}, {3815, 8},
	}
	for _, tt := range tests {
		ix, err := New(2, tt.funcs)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Pages() != tt.wantPages {
			t.Errorf("Pages(%d funcs) = %d, want %d", tt.funcs, ix.Pages(), tt.wantPages)
		}
	}
}

func TestIncSnapshot(t *testing.T) {
	ix, err := New(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Spread increments of the same function across CPUs; the snapshot
	// must aggregate them.
	for cpu := 0; cpu < 4; cpu++ {
		if err := ix.IncFunc(cpu, 700, uint64(cpu+1)); err != nil {
			t.Fatal(err)
		}
	}
	snap := ix.Snapshot()
	if snap[700] != 1+2+3+4 {
		t.Errorf("snapshot[700] = %d, want 10", snap[700])
	}
	if got, err := ix.Get(2, 700); err != nil || got != 3 {
		t.Errorf("Get(2,700) = %d, %v; want 3", got, err)
	}
	var total uint64
	for _, c := range snap {
		total += c
	}
	if total != 10 {
		t.Errorf("stray counts: total = %d", total)
	}
}

func TestIncValidation(t *testing.T) {
	ix, err := New(2, 600)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.IncFunc(2, 0, 1); err == nil {
		t.Error("cpu out of range should fail")
	}
	if err := ix.IncFunc(0, 600, 1); err == nil {
		t.Error("fn out of range should fail")
	}
	if err := ix.IncFunc(0, -1, 1); err == nil {
		t.Error("negative fn should fail")
	}
	// Address in the last page but beyond numFuncs: page exists (600 needs
	// 2 pages = 1024 slots) but the slot maps past the function space.
	if err := ix.Inc(0, AddrOf(900), 1); err == nil {
		t.Error("address beyond function space should fail")
	}
	if err := ix.Inc(0, SlotAddr{Page: -1, Slot: 0}, 1); err == nil {
		t.Error("negative page should fail")
	}
	if _, err := ix.Get(0, 600); err == nil {
		t.Error("Get beyond range should fail")
	}
	if _, err := ix.Get(5, 0); err == nil {
		t.Error("Get cpu out of range should fail")
	}
}

func TestReset(t *testing.T) {
	ix, err := New(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	for fn := 0; fn < 100; fn++ {
		if err := ix.IncFunc(fn%2, fn, 5); err != nil {
			t.Fatal(err)
		}
	}
	ix.Reset()
	for fn, c := range ix.Snapshot() {
		if c != 0 {
			t.Fatalf("after Reset, snapshot[%d] = %d", fn, c)
		}
	}
}

func TestDiff(t *testing.T) {
	before := []uint64{1, 2, 3}
	after := []uint64{5, 2, 10}
	d, err := Diff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{4, 0, 7}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Diff = %v, want %v", d, want)
		}
	}
	if _, err := Diff([]uint64{1}, []uint64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Diff([]uint64{5}, []uint64{4}); !errors.Is(err, ErrCounterWrapped) {
		t.Errorf("want ErrCounterWrapped, got %v", err)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	ix, err := New(8, 3815)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const perCPU = 10000
	for cpu := 0; cpu < 8; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := 0; i < perCPU; i++ {
				if err := ix.IncFunc(cpu, i%3815, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(cpu)
	}
	wg.Wait()
	var total uint64
	for _, c := range ix.Snapshot() {
		total += c
	}
	if total != 8*perCPU {
		t.Errorf("lost updates: total = %d, want %d", total, 8*perCPU)
	}
}

// Property: snapshot totals equal the sum of all increments regardless of
// the cpu/function pattern.
func TestPropertySnapshotConservation(t *testing.T) {
	f := func(incs []uint16) bool {
		ix, err := New(4, 257) // deliberately not a multiple of SlotsPerPage
		if err != nil {
			return false
		}
		var want uint64
		for i, v := range incs {
			n := uint64(v % 97)
			if err := ix.IncFunc(i%4, (i*31)%257, n); err != nil {
				return false
			}
			want += n
		}
		var got uint64
		for _, c := range ix.Snapshot() {
			got += c
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIncFunc(b *testing.B) {
	ix, err := New(16, 3815)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.IncFunc(i&15, i%3815, 1)
	}
}

func BenchmarkSnapshot3815(b *testing.B) {
	ix, err := New(16, 3815)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Snapshot()
	}
}
