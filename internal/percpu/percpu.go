// Package percpu implements the Fmeter runtime counter structure of the
// paper's Figure 3: a set of per-CPU indices, each mapping a kernel function
// to an 8-byte invocation count. Each per-CPU index is a list of pages, and
// each page holds an array of slots. A function's counter is addressed by
// two small indices — the page index and the slot index within the page —
// which the real Fmeter embeds into the per-function mcount stub.
//
// The per-CPU split is the point of the design: a stub only ever touches the
// current CPU's slot, so increments need no atomic read-modify-write and
// generate no cross-core cache-coherency traffic (the paper contrasts this
// with the lock;inc and compare-and-swap traffic of ring buffers). This Go
// model uses atomic operations because a Go process genuinely shares memory
// between goroutines (the logging daemon snapshots concurrently), but the
// structure — and the cost model the trace package assigns to it — follows
// the per-CPU no-contention design.
package percpu

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// SlotsPerPage is the number of 8-byte counter slots in one 4 KiB page.
const SlotsPerPage = 512

// SlotAddr is the pair of indices embedded in a function's mcount stub: the
// page within the per-CPU page list and the slot within that page.
type SlotAddr struct {
	Page int
	Slot int
}

// AddrOf maps a function index (its FuncID) to its slot address. The
// mapping is fixed at "boot" time exactly once and is the same on every
// CPU, mirroring the paper's boot-time allocation.
func AddrOf(fn int) SlotAddr {
	return SlotAddr{Page: fn / SlotsPerPage, Slot: fn % SlotsPerPage}
}

// FuncOf is the inverse of AddrOf.
func FuncOf(a SlotAddr) int { return a.Page*SlotsPerPage + a.Slot }

// page is one 4 KiB block of counter slots.
type page struct {
	slots [SlotsPerPage]uint64
}

// Index is the full per-CPU counter structure: cpus × pages × slots.
type Index struct {
	numCPU   int
	numFuncs int
	pages    int
	cpus     [][]*page
}

// New allocates the counter index for numCPU simulated processors and
// numFuncs instrumented functions.
func New(numCPU, numFuncs int) (*Index, error) {
	if numCPU < 1 {
		return nil, fmt.Errorf("percpu: numCPU %d must be >= 1", numCPU)
	}
	if numFuncs < 1 {
		return nil, fmt.Errorf("percpu: numFuncs %d must be >= 1", numFuncs)
	}
	npages := (numFuncs + SlotsPerPage - 1) / SlotsPerPage
	ix := &Index{numCPU: numCPU, numFuncs: numFuncs, pages: npages}
	ix.cpus = make([][]*page, numCPU)
	for c := range ix.cpus {
		ix.cpus[c] = make([]*page, npages)
		for p := range ix.cpus[c] {
			ix.cpus[c][p] = &page{}
		}
	}
	return ix, nil
}

// NumCPU returns the number of per-CPU indices.
func (ix *Index) NumCPU() int { return ix.numCPU }

// NumFuncs returns the number of instrumented functions.
func (ix *Index) NumFuncs() int { return ix.numFuncs }

// Pages returns the number of pages in each per-CPU index.
func (ix *Index) Pages() int { return ix.pages }

// Inc adds n to the counter of the function at addr on the given CPU. It is
// the operation the mcount stub performs: disable preemption, follow the
// two indices, increment, re-enable preemption.
func (ix *Index) Inc(cpu int, addr SlotAddr, n uint64) error {
	if cpu < 0 || cpu >= ix.numCPU {
		return fmt.Errorf("percpu: cpu %d out of range [0,%d)", cpu, ix.numCPU)
	}
	if addr.Page < 0 || addr.Page >= ix.pages || addr.Slot < 0 || addr.Slot >= SlotsPerPage {
		return fmt.Errorf("percpu: slot address %+v out of range", addr)
	}
	if FuncOf(addr) >= ix.numFuncs {
		return fmt.Errorf("percpu: slot address %+v beyond function space %d", addr, ix.numFuncs)
	}
	atomic.AddUint64(&ix.cpus[cpu][addr.Page].slots[addr.Slot], n)
	return nil
}

// IncFunc is Inc addressed by function index.
func (ix *Index) IncFunc(cpu, fn int, n uint64) error {
	if fn < 0 || fn >= ix.numFuncs {
		return fmt.Errorf("percpu: function %d out of range [0,%d)", fn, ix.numFuncs)
	}
	return ix.Inc(cpu, AddrOf(fn), n)
}

// Get returns the counter for fn on one CPU.
func (ix *Index) Get(cpu, fn int) (uint64, error) {
	if cpu < 0 || cpu >= ix.numCPU {
		return 0, fmt.Errorf("percpu: cpu %d out of range [0,%d)", cpu, ix.numCPU)
	}
	if fn < 0 || fn >= ix.numFuncs {
		return 0, fmt.Errorf("percpu: function %d out of range [0,%d)", fn, ix.numFuncs)
	}
	a := AddrOf(fn)
	return atomic.LoadUint64(&ix.cpus[cpu][a.Page].slots[a.Slot]), nil
}

// Snapshot sums the per-CPU counters into a per-function total vector of
// length NumFuncs. This is what the debugfs read handler exports to the
// logging daemon.
func (ix *Index) Snapshot() []uint64 {
	out := make([]uint64, ix.numFuncs)
	for c := 0; c < ix.numCPU; c++ {
		fn := 0
		for p := 0; p < ix.pages && fn < ix.numFuncs; p++ {
			pg := ix.cpus[c][p]
			for s := 0; s < SlotsPerPage && fn < ix.numFuncs; s++ {
				out[fn] += atomic.LoadUint64(&pg.slots[s])
				fn++
			}
		}
	}
	return out
}

// Reset zeroes every counter on every CPU.
func (ix *Index) Reset() {
	for c := range ix.cpus {
		for _, pg := range ix.cpus[c] {
			for s := range pg.slots {
				atomic.StoreUint64(&pg.slots[s], 0)
			}
		}
	}
}

// ErrCounterWrapped reports a counter that moved backwards between two
// snapshots, which can only happen if the counters were reset in between.
var ErrCounterWrapped = errors.New("percpu: counter decreased between snapshots")

// Diff returns after-before for two snapshots taken from the same index.
// It is the logging daemon's interval computation ("reads all kernel
// function invocation counts twice and generates the difference").
func Diff(before, after []uint64) ([]uint64, error) {
	if len(before) != len(after) {
		return nil, fmt.Errorf("percpu: snapshot lengths differ: %d vs %d", len(before), len(after))
	}
	out := make([]uint64, len(before))
	for i := range before {
		if after[i] < before[i] {
			return nil, fmt.Errorf("%w: function %d: %d -> %d", ErrCounterWrapped, i, before[i], after[i])
		}
		out[i] = after[i] - before[i]
	}
	return out, nil
}
