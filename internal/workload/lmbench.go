package workload

import "repro/internal/kernel"

// LmbenchTest describes one row of the paper's Table 1: an lmbench
// micro-benchmark, the kernel operation that models it, and the paper's
// measured latencies (µs) for reference in reports.
type LmbenchTest struct {
	// Display is the row label as printed in Table 1.
	Display string
	// Op is the catalog operation exercised in a closed loop.
	Op string
	// PaperBaselineUS, PaperFtraceUS, PaperFmeterUS are the paper's
	// measured mean latencies in microseconds.
	PaperBaselineUS float64
	PaperFtraceUS   float64
	PaperFmeterUS   float64
}

// LmbenchTests returns the 23 rows of Table 1 in the paper's order.
func LmbenchTests() []LmbenchTest {
	return []LmbenchTest{
		{"AF_UNIX sock stream latency", kernel.OpAFUnixLatency, 4.828, 27.749, 7.393},
		{"Fcntl lock latency", kernel.OpFcntlLock, 1.219, 6.639, 3.024},
		{"Memory map linux.tar.bz2", kernel.OpMmapFile, 206.750, 1800.520, 317.125},
		{"Pagefaults on linux.tar.bz2", kernel.OpPageFault, 0.677, 3.678, 0.866},
		{"Pipe latency", kernel.OpPipeLatency, 2.492, 12.421, 3.201},
		{"Process fork+/bin/sh -c", kernel.OpForkSh, 1446.800, 6421.000, 1831.590},
		{"Process fork+execve", kernel.OpForkExecve, 672.266, 3094.380, 847.289},
		{"Process fork+exit", kernel.OpForkExit, 208.914, 1116.800, 268.275},
		{"Protection fault", kernel.OpProtFault, 0.185, 0.607, 0.286},
		{"Select on 10 fd's", kernel.OpSelect10, 0.231, 1.410, 0.277},
		{"Select on 10 tcp fd's", kernel.OpSelect10TCP, 0.261, 1.798, 0.326},
		{"Select on 100 fd's", kernel.OpSelect100, 0.897, 9.809, 1.321},
		{"Select on 100 tcp fd's", kernel.OpSelect100TCP, 2.189, 26.616, 3.308},
		{"Semaphore latency", kernel.OpSemaphore, 2.890, 6.117, 2.084},
		{"Signal handler installation", kernel.OpSignalInstall, 0.113, 0.280, 0.127},
		{"Signal handler overhead", kernel.OpSignalHandle, 0.909, 3.124, 1.072},
		{"Simple fstat", kernel.OpSimpleFstat, 0.100, 0.852, 0.145},
		{"Simple open/close", kernel.OpSimpleOpenClose, 1.193, 11.222, 1.873},
		{"Simple read", kernel.OpSimpleRead, 0.101, 1.196, 0.171},
		{"Simple stat", kernel.OpSimpleStat, 0.721, 7.008, 1.067},
		{"Simple syscall", kernel.OpSimpleSyscall, 0.041, 0.210, 0.053},
		{"Simple write", kernel.OpSimpleWrite, 0.086, 1.012, 0.130},
		{"UNIX connection cost", kernel.OpUnixConnect, 15.328, 81.380, 21.919},
	}
}
