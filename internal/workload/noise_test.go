package workload

import (
	"testing"
	"time"

	"repro/internal/kernel"
)

// collectSnapshots runs n intervals of a spec and returns per-interval
// count diffs.
func collectSnapshots(t *testing.T, spec Spec, n int, seed int64) [][]uint64 {
	t.Helper()
	eng, fm := newEngineWithFmeter(t, 16, seed)
	r, err := NewRunner(eng, spec, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]uint64
	prev := fm.Snapshot()
	for i := 0; i < n; i++ {
		if _, err := r.RunInterval(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		cur := fm.Snapshot()
		diff := make([]uint64, len(cur))
		for j := range cur {
			diff[j] = cur[j] - prev[j]
		}
		out = append(out, diff)
		prev = cur
	}
	return out
}

func TestRareEventsCreatePartialDocumentFrequency(t *testing.T) {
	spec := Scp(16)
	diffs := collectSnapshots(t, spec, 10, 77)
	// Some function must appear in at least one but not all intervals —
	// otherwise idf degenerates to zero within a class.
	partial := 0
	for fn := range diffs[0] {
		present := 0
		for _, d := range diffs {
			if d[fn] > 0 {
				present++
			}
		}
		if present > 0 && present < len(diffs) {
			partial++
		}
	}
	if partial < 10 {
		t.Errorf("only %d functions with partial document frequency; rare events inert", partial)
	}
}

func TestRareEventsDisabled(t *testing.T) {
	spec := Scp(16)
	spec.RareEventsPerInterval = -1
	spec.BurstProb = -1
	spec.DriftSigma = 1e-12
	// With rare events and bursts off, the support (set of functions
	// invoked) should be identical across intervals.
	diffs := collectSnapshots(t, spec, 4, 78)
	support := func(d []uint64) map[int]bool {
		s := make(map[int]bool)
		for fn, c := range d {
			if c > 0 {
				s[fn] = true
			}
		}
		return s
	}
	s0 := support(diffs[0])
	for i := 1; i < len(diffs); i++ {
		si := support(diffs[i])
		extra := 0
		for fn := range si {
			if !s0[fn] {
				extra++
			}
		}
		// Fractional-count stochastic rounding may flip a handful of
		// near-zero functions; anything beyond that means rare events
		// leaked through the off switch.
		if extra > 12 {
			t.Errorf("interval %d grew support by %d functions with rare events disabled", i, extra)
		}
	}
}

func TestBurstsDisabledVsEnabled(t *testing.T) {
	mk := func(burstProb float64, seed int64) []uint64 {
		spec := Scp(16)
		spec.BurstProb = burstProb
		eng, fm := newEngineWithFmeter(t, 16, seed)
		r, err := NewRunner(eng, spec, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		// Many intervals so bursts are near-certain with prob 0.9.
		for i := 0; i < 12; i++ {
			if _, err := r.RunInterval(10 * time.Second); err != nil {
				t.Fatal(err)
			}
		}
		return fm.Snapshot()
	}
	st := kernel.NewSymbolTable()
	journal := st.MustLookup("journal_commit_transaction") // fsync path: burst-only for scp
	off := mk(-1, 300)
	on := mk(0.9, 300)
	if off[journal] > 0 {
		t.Errorf("scp without bursts should never commit journal transactions, got %d", off[journal])
	}
	if on[journal] == 0 {
		t.Error("with bursts near-certain, foreign activity should appear")
	}
}

func TestBootHasNoBursts(t *testing.T) {
	if Boot().BurstProb >= 0 {
		t.Error("boot workload must disable bursts")
	}
}
