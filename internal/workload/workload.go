// Package workload implements the workload generators of the paper's
// evaluation (§4): the three classification workloads (kcompile, scp,
// dbench), the macro-benchmarks (apachebench HTTP serving, netperf TCP
// streaming, Linux kernel compile), the lmbench micro-operations of
// Table 1, and the boot phase of Figure 1.
//
// A workload is a mix of kernel operations with mean rates per virtual
// second. Executing an interval draws per-op counts with two layers of
// seeded noise — a per-interval lognormal jitter and a slow multiplicative
// drift across intervals — so consecutive intervals of the same workload
// produce similar but never identical signatures, which is what makes the
// learning experiments non-trivial.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/kernel"
)

// OpRate is one component of a workload mix.
type OpRate struct {
	// Module is empty for catalog ops; otherwise the loadable module
	// whose entry point Op names.
	Module string
	// Op is the operation name (catalog op, or module op when Module is
	// set).
	Op string
	// PerSec is the mean executions per virtual second.
	PerSec float64
	// Jitter is the lognormal sigma of the per-interval count noise.
	// Zero uses DefaultJitter.
	Jitter float64
}

// DefaultJitter is the per-interval lognormal sigma applied when an OpRate
// does not specify its own.
const DefaultJitter = 0.18

// Spec declares a workload.
type Spec struct {
	// Name labels documents collected under this workload.
	Name string
	// Ops is the operation mix.
	Ops []OpRate
	// UserPerSec is user-mode CPU time consumed per virtual second
	// (uninstrumented; matters for the kernel-compile Table 3).
	UserPerSec time.Duration
	// DriftSigma is the per-interval random-walk sigma of the slow rate
	// drift. Zero uses DefaultDriftSigma.
	DriftSigma float64
	// RareEventsPerInterval is the mean number of sporadic one-off kernel
	// events per interval (error paths, rare ioctls, background
	// callbacks): random functions invoked a handful of times. These are
	// what give terms a document frequency below the corpus size, keeping
	// idf informative even within a single workload class. Negative
	// disables; zero uses DefaultRareEvents.
	RareEventsPerInterval float64
	// BurstProb is the per-interval probability of a contamination
	// burst: a short spell of unrelated foreground activity (a cron job,
	// a log rotation, a stray compile) that bleeds another workload's
	// kernel footprint into this interval. Bursts are what keep the
	// clustering evaluation honest — without them every interval is a
	// textbook member of its class and purity is trivially 1.0. Negative
	// disables; zero uses DefaultBurstProb.
	BurstProb float64
}

// DefaultRareEvents is the default mean number of sporadic events per
// interval.
const DefaultRareEvents = 12

// rareEventCostNS is the base virtual cost of one sporadic invocation.
const rareEventCostNS = 150

// DefaultBurstProb is the default per-interval contamination probability.
const DefaultBurstProb = 0.12

// burstCatalog is the pool of foreground activities a contamination burst
// draws from, with their full-tilt rates; a burst runs one of them at a
// random fraction of that rate for the interval.
var burstCatalog = []OpRate{
	{Op: kernel.OpDbenchIO, PerSec: 700},
	{Op: kernel.OpScpChunk, PerSec: 260},
	{Op: kernel.OpCompileUnit, PerSec: 1.6},
	{Op: kernel.OpHTTPRequest, PerSec: 1800},
	{Op: kernel.OpDiskRead, PerSec: 350},
	{Op: kernel.OpFsyncOp, PerSec: 18},
	{Op: kernel.OpForkSh, PerSec: 25},
	{Op: kernel.OpMmapFile, PerSec: 40},
}

// DefaultDriftSigma is the default slow-drift sigma.
const DefaultDriftSigma = 0.03

// driftClamp bounds the multiplicative drift factor so a long run cannot
// wander into a different workload's regime.
const (
	driftMin = 0.7
	driftMax = 1.4
)

// Runner executes a workload spec against an engine.
type Runner struct {
	eng   *kernel.Engine
	spec  Spec
	rng   *rand.Rand
	drift []float64
}

// NewRunner validates the spec against the engine's catalog and modules
// and returns a runner. The seed isolates this workload's noise stream
// from the engine's.
func NewRunner(eng *kernel.Engine, spec Spec, seed int64) (*Runner, error) {
	if eng == nil {
		return nil, fmt.Errorf("workload: nil engine")
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("workload: spec needs a name")
	}
	if len(spec.Ops) == 0 {
		return nil, fmt.Errorf("workload %s: empty op mix", spec.Name)
	}
	for _, or := range spec.Ops {
		if or.PerSec <= 0 {
			return nil, fmt.Errorf("workload %s: op %s has non-positive rate %v", spec.Name, or.Op, or.PerSec)
		}
		if or.Jitter < 0 {
			return nil, fmt.Errorf("workload %s: op %s has negative jitter", spec.Name, or.Op)
		}
		if or.Module == "" {
			if _, err := eng.Catalog().Op(or.Op); err != nil {
				return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
			}
		} else {
			m, err := eng.Module(or.Module)
			if err != nil {
				return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
			}
			if _, err := m.Op(or.Op); err != nil {
				return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
			}
		}
	}
	drift := make([]float64, len(spec.Ops))
	for i := range drift {
		drift[i] = 1
	}
	return &Runner{
		eng:   eng,
		spec:  spec,
		rng:   rand.New(rand.NewSource(seed)),
		drift: drift,
	}, nil
}

// Spec returns the runner's workload spec.
func (r *Runner) Spec() Spec { return r.spec }

// RunInterval executes one monitoring interval of virtual duration d:
// every op in the mix runs rate×seconds times, modulated by drift and
// jitter, and user-mode time is charged. It returns the total virtual
// kernel time consumed by the interval's batches.
func (r *Runner) RunInterval(d time.Duration) (time.Duration, error) {
	if d <= 0 {
		return 0, fmt.Errorf("workload %s: non-positive interval %v", r.spec.Name, d)
	}
	secs := d.Seconds()
	driftSigma := r.spec.DriftSigma
	if driftSigma == 0 {
		driftSigma = DefaultDriftSigma
	}
	var kernelTime time.Duration
	for i, or := range r.spec.Ops {
		// Slow drift: multiplicative random walk, clamped.
		r.drift[i] *= math.Exp(driftSigma * r.rng.NormFloat64())
		if r.drift[i] < driftMin {
			r.drift[i] = driftMin
		} else if r.drift[i] > driftMax {
			r.drift[i] = driftMax
		}
		sigma := or.Jitter
		if sigma == 0 {
			sigma = DefaultJitter
		}
		// Mean-preserving lognormal: E[exp(sigma*Z - sigma^2/2)] = 1.
		noise := math.Exp(sigma*r.rng.NormFloat64() - sigma*sigma/2)
		times := int(math.Round(or.PerSec * secs * r.drift[i] * noise))
		if times == 0 {
			continue
		}
		var (
			dt  time.Duration
			err error
		)
		if or.Module == "" {
			dt, err = r.eng.ExecOpName(or.Op, times)
		} else {
			dt, err = r.eng.ExecModuleOp(or.Module, or.Op, times)
		}
		if err != nil {
			return kernelTime, fmt.Errorf("workload %s: %w", r.spec.Name, err)
		}
		kernelTime += dt
	}
	if err := r.runRareEvents(secs); err != nil {
		return kernelTime, err
	}
	if err := r.runBurst(secs); err != nil {
		return kernelTime, err
	}
	if r.spec.UserPerSec > 0 {
		user := time.Duration(float64(r.spec.UserPerSec) * secs)
		if err := r.eng.RecordUser(0, user); err != nil {
			return kernelTime, err
		}
	}
	return kernelTime, nil
}

// runRareEvents injects the interval's sporadic one-off invocations.
func (r *Runner) runRareEvents(secs float64) error {
	mean := r.spec.RareEventsPerInterval
	if mean == 0 {
		mean = DefaultRareEvents
	}
	if mean < 0 {
		return nil
	}
	// Scale with interval length relative to the 10 s reference, so short
	// intervals see proportionally fewer sporadic events.
	mean *= secs / 10
	n := int(math.Round(mean * math.Exp(0.4*r.rng.NormFloat64()-0.08)))
	dim := r.eng.SymbolTable().Len()
	for i := 0; i < n; i++ {
		fn := kernel.FuncID(r.rng.Intn(dim))
		count := uint64(1 + r.rng.Intn(12))
		if err := r.eng.InvokeRaw(r.rng.Intn(r.eng.NumCPU()), fn, count, rareEventCostNS); err != nil {
			return fmt.Errorf("workload %s: rare event: %w", r.spec.Name, err)
		}
	}
	return nil
}

// runBurst rolls the contamination dice and, on a hit, runs one random
// burst activity at a random intensity for this interval.
func (r *Runner) runBurst(secs float64) error {
	prob := r.spec.BurstProb
	if prob == 0 {
		prob = DefaultBurstProb
	}
	if prob < 0 || r.rng.Float64() >= prob {
		return nil
	}
	burst := burstCatalog[r.rng.Intn(len(burstCatalog))]
	// Most bursts are mild; a minority are heavy enough to dominate the
	// interval (a backup job or stray build eating the machine).
	intensity := 0.15 + 0.85*r.rng.Float64()
	if r.rng.Float64() < 0.45 {
		intensity = 1.5 + 2.0*r.rng.Float64()
	}
	times := int(math.Round(burst.PerSec * secs * intensity))
	if times == 0 {
		return nil
	}
	if _, err := r.eng.ExecOpName(burst.Op, times); err != nil {
		return fmt.Errorf("workload %s: burst: %w", r.spec.Name, err)
	}
	return nil
}

// Background returns the op mix every monitored system carries regardless
// of the foreground workload: timer ticks, softirq housekeeping, and the
// Fmeter logging daemon's own kernel footprint (§5's measurement
// interference, which idf attenuates). perCPUHz is the tick rate per CPU.
func Background(numCPU int, logIntervalSec float64) []OpRate {
	logRate := 0.1
	if logIntervalSec > 0 {
		logRate = 1 / logIntervalSec
	}
	return []OpRate{
		{Op: kernel.OpTimerTick, PerSec: 250 * float64(numCPU), Jitter: 0.02},
		{Op: kernel.OpBgHousekeep, PerSec: 40, Jitter: 0.10},
		{Op: kernel.OpDaemonLog, PerSec: logRate, Jitter: 0.05},
	}
}

// withBackground appends the standard background mix to ops.
func withBackground(ops []OpRate, numCPU int, logIntervalSec float64) []OpRate {
	return append(append([]OpRate{}, ops...), Background(numCPU, logIntervalSec)...)
}

// Kcompile is the paper's kernel-compile workload: parallel compiler
// processes fork/exec, fault in address spaces, scan headers, and write
// objects; most CPU time is user-mode (gcc itself).
func Kcompile(numCPU int) Spec {
	return Spec{
		Name: "kcompile",
		Ops: withBackground([]OpRate{
			{Op: kernel.OpCompileUnit, PerSec: 8},
			{Op: kernel.OpForkExit, PerSec: 6, Jitter: 0.25},
			{Op: kernel.OpSimpleStat, PerSec: 900, Jitter: 0.22},
			{Op: kernel.OpSimpleOpenClose, PerSec: 350, Jitter: 0.22},
			{Op: kernel.OpSimpleRead, PerSec: 2500, Jitter: 0.20},
			{Op: kernel.OpPageFault, PerSec: 9000, Jitter: 0.20},
			{Op: kernel.OpCtxSwitch, PerSec: 2500, Jitter: 0.15},
			{Op: kernel.OpPipeLatency, PerSec: 120, Jitter: 0.30}, // make jobserver
		}, numCPU, 10),
		UserPerSec: 13 * time.Second, // ~13 user CPU-seconds/s on 16 CPUs (make -j)
	}
}

// Scp is the secure-copy workload: disk reads, AES/SHA crypto, and a
// saturated TCP stream.
func Scp(numCPU int) Spec {
	return Spec{
		Name: "scp",
		Ops: withBackground([]OpRate{
			{Op: kernel.OpScpChunk, PerSec: 1200},
			{Op: kernel.OpSelect10TCP, PerSec: 600, Jitter: 0.20},
			{Op: kernel.OpCtxSwitch, PerSec: 3200, Jitter: 0.15},
			{Op: kernel.OpSimpleRead, PerSec: 300, Jitter: 0.25},
			{Op: kernel.OpSignalHandle, PerSec: 4, Jitter: 0.4},
		}, numCPU, 10),
		UserPerSec: 1800 * time.Millisecond, // ssh's cipher work
	}
}

// Dbench is the disk-throughput benchmark workload: a metadata-heavy
// filesystem transaction mix with periodic fsyncs.
func Dbench(numCPU int) Spec {
	return Spec{
		Name: "dbench",
		Ops: withBackground([]OpRate{
			{Op: kernel.OpDbenchIO, PerSec: 3500},
			{Op: kernel.OpFsyncOp, PerSec: 45, Jitter: 0.30},
			{Op: kernel.OpDiskWrite, PerSec: 900, Jitter: 0.22},
			{Op: kernel.OpDiskRead, PerSec: 500, Jitter: 0.22},
			{Op: kernel.OpCtxSwitch, PerSec: 4200, Jitter: 0.15},
			{Op: kernel.OpSimpleStat, PerSec: 700, Jitter: 0.25},
		}, numCPU, 10),
		UserPerSec: 400 * time.Millisecond,
	}
}

// Apachebench is the closed-loop HTTP macro-benchmark of Table 2: the
// request rate is not an input — the experiment executes a fixed request
// count and derives requests/second from the virtual clock.
func Apachebench(numCPU int) Spec {
	return Spec{
		Name: "apachebench",
		Ops: withBackground([]OpRate{
			{Op: kernel.OpHTTPRequest, PerSec: 14000},
			{Op: kernel.OpCtxSwitch, PerSec: 9000, Jitter: 0.15},
		}, numCPU, 10),
		UserPerSec: 2500 * time.Millisecond,
	}
}

// Boot is the Figure 1 workload: one execution of the boot-phase op,
// touching the entire symbol table with power-law weights.
func Boot() Spec {
	return Spec{
		Name:       "boot",
		Ops:        []OpRate{{Op: kernel.OpBootPhase, PerSec: 0.5, Jitter: 0.01}},
		DriftSigma: 1e-9, // effectively no drift in a single boot
		BurstProb:  -1,   // nothing else runs during boot
	}
}
