package workload

import (
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/trace"
)

func newEngineWithFmeter(t testing.TB, cpus int, seed int64) (*kernel.Engine, *trace.Fmeter) {
	t.Helper()
	st := kernel.NewSymbolTable()
	cat, err := kernel.NewCatalog(st)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := trace.NewFmeter(st, cpus)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := kernel.NewEngine(cat, kernel.EngineConfig{
		NumCPU: cpus, Backend: fm, Seed: seed, CountJitter: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, fm
}

func TestNewRunnerValidation(t *testing.T) {
	eng, _ := newEngineWithFmeter(t, 4, 1)
	if _, err := NewRunner(nil, Kcompile(4), 1); err == nil {
		t.Error("nil engine should fail")
	}
	if _, err := NewRunner(eng, Spec{}, 1); err == nil {
		t.Error("unnamed spec should fail")
	}
	if _, err := NewRunner(eng, Spec{Name: "x"}, 1); err == nil {
		t.Error("empty mix should fail")
	}
	if _, err := NewRunner(eng, Spec{Name: "x", Ops: []OpRate{{Op: "nope", PerSec: 1}}}, 1); err == nil {
		t.Error("unknown op should fail")
	}
	if _, err := NewRunner(eng, Spec{Name: "x", Ops: []OpRate{{Op: kernel.OpSimpleRead, PerSec: 0}}}, 1); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewRunner(eng, Spec{Name: "x", Ops: []OpRate{{Op: kernel.OpSimpleRead, PerSec: 1, Jitter: -1}}}, 1); err == nil {
		t.Error("negative jitter should fail")
	}
	if _, err := NewRunner(eng, Spec{Name: "x", Ops: []OpRate{{Module: "ghost", Op: "rx", PerSec: 1}}}, 1); err == nil {
		t.Error("unknown module should fail")
	}
}

func TestRunIntervalProducesCounts(t *testing.T) {
	eng, fm := newEngineWithFmeter(t, 16, 7)
	r, err := NewRunner(eng, Scp(16), 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInterval(0); err == nil {
		t.Error("zero interval should fail")
	}
	kt, err := r.RunInterval(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if kt <= 0 {
		t.Error("interval consumed no kernel time")
	}
	snap := fm.Snapshot()
	nonzero := 0
	for _, c := range snap {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < 50 {
		t.Errorf("only %d functions invoked; mix too narrow", nonzero)
	}
}

func TestIntervalsDifferButResemble(t *testing.T) {
	eng, fm := newEngineWithFmeter(t, 16, 3)
	r, err := NewRunner(eng, Dbench(16), 5)
	if err != nil {
		t.Fatal(err)
	}
	var prev []uint64
	intervals := make([][]uint64, 0, 3)
	for i := 0; i < 3; i++ {
		before := fm.Snapshot()
		if _, err := r.RunInterval(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		after := fm.Snapshot()
		diff := make([]uint64, len(after))
		for j := range after {
			diff[j] = after[j] - before[j]
		}
		intervals = append(intervals, diff)
		prev = diff
	}
	_ = prev
	// Distinct: intervals are not bit-identical.
	same := true
	for j := range intervals[0] {
		if intervals[0][j] != intervals[1][j] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive intervals identical; noise model inert")
	}
	// Similar: totals within a factor of 2.
	tot := func(v []uint64) (s float64) {
		for _, c := range v {
			s += float64(c)
		}
		return s
	}
	if r := tot(intervals[0]) / tot(intervals[1]); r < 0.5 || r > 2 {
		t.Errorf("interval totals diverge wildly: ratio %v", r)
	}
}

func TestWorkloadsAreDistinguishableInRawCounts(t *testing.T) {
	// The three classification workloads must differ grossly in their raw
	// footprints; fine separation is the ML evaluation's job.
	collect := func(spec Spec, seed int64) []uint64 {
		eng, fm := newEngineWithFmeter(t, 16, seed)
		r, err := NewRunner(eng, spec, seed+100)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunInterval(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		return fm.Snapshot()
	}
	st := kernel.NewSymbolTable()
	scp := collect(Scp(16), 1)
	kc := collect(Kcompile(16), 2)
	db := collect(Dbench(16), 3)

	crypto := st.MustLookup("crypto_aes_encrypt_op")
	journal := st.MustLookup("journal_dirty_metadata")
	fault := st.MustLookup("handle_mm_fault")

	if scp[crypto] == 0 || scp[crypto] < db[crypto]*10 {
		t.Errorf("scp should dominate crypto calls: scp=%d dbench=%d", scp[crypto], db[crypto])
	}
	if db[journal] < scp[journal]*5 {
		t.Errorf("dbench should dominate journal calls: dbench=%d scp=%d", db[journal], scp[journal])
	}
	if kc[fault] < scp[fault]*5 {
		t.Errorf("kcompile should dominate page faults: kcompile=%d scp=%d", kc[fault], scp[fault])
	}
}

func TestBackgroundIncludedEverywhere(t *testing.T) {
	for _, spec := range []Spec{Kcompile(16), Scp(16), Dbench(16), Apachebench(16)} {
		found := false
		for _, or := range spec.Ops {
			if or.Op == kernel.OpDaemonLog {
				found = true
			}
		}
		if !found {
			t.Errorf("workload %s lacks daemon-logging background (§5 interference)", spec.Name)
		}
	}
}

func TestBackgroundLogRate(t *testing.T) {
	bg := Background(4, 2)
	var logRate float64
	for _, or := range bg {
		if or.Op == kernel.OpDaemonLog {
			logRate = or.PerSec
		}
	}
	if logRate != 0.5 {
		t.Errorf("log rate for 2s interval = %v, want 0.5", logRate)
	}
	bg = Background(4, 0)
	for _, or := range bg {
		if or.Op == kernel.OpDaemonLog && or.PerSec != 0.1 {
			t.Errorf("default log rate = %v, want 0.1", or.PerSec)
		}
	}
}

func TestBootTouchesWholeTable(t *testing.T) {
	eng, fm := newEngineWithFmeter(t, 16, 42)
	r, err := NewRunner(eng, Boot(), 43)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInterval(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap := fm.Snapshot()
	zero := 0
	for _, c := range snap {
		if c == 0 {
			zero++
		}
	}
	if zero > len(snap)/100 {
		t.Errorf("%d of %d functions never called during boot", zero, len(snap))
	}
}

func TestLmbenchTableComplete(t *testing.T) {
	tests := LmbenchTests()
	if len(tests) != 23 {
		t.Fatalf("Table 1 has %d rows, want 23", len(tests))
	}
	st := kernel.NewSymbolTable()
	cat, err := kernel.NewCatalog(st)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, tt := range tests {
		if seen[tt.Display] {
			t.Errorf("duplicate row %q", tt.Display)
		}
		seen[tt.Display] = true
		if _, err := cat.Op(tt.Op); err != nil {
			t.Errorf("row %q references unknown op: %v", tt.Display, err)
		}
		if !(tt.PaperBaselineUS < tt.PaperFmeterUS || tt.Display == "Semaphore latency") {
			t.Errorf("row %q: paper fmeter %v should exceed baseline %v", tt.Display, tt.PaperFmeterUS, tt.PaperBaselineUS)
		}
		if tt.PaperFmeterUS >= tt.PaperFtraceUS {
			t.Errorf("row %q: paper fmeter should beat ftrace", tt.Display)
		}
	}
}

func TestRunnerDeterministicGivenSeeds(t *testing.T) {
	run := func() []uint64 {
		eng, fm := newEngineWithFmeter(t, 8, 21)
		r, err := NewRunner(eng, Scp(8), 22)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := r.RunInterval(5 * time.Second); err != nil {
				t.Fatal(err)
			}
		}
		return fm.Snapshot()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("snapshots diverge at fn %d: %d vs %d", i, a[i], b[i])
		}
	}
}
