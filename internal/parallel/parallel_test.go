package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got != 1 {
		t.Errorf("Workers(-3) = %d, want 1", got)
	}
}

func TestForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		err := For(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	if err := For(8, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Error(err)
	}
	ran := false
	if err := For(8, 1, func(i int) error { ran = true; return nil }); err != nil || !ran {
		t.Error("single task should run")
	}
}

func TestForLowestIndexError(t *testing.T) {
	// Multiple tasks fail; the reported error must be the lowest-index one
	// among those that ran, and with 1 worker that is exactly index 3.
	mkErr := func(i int) error { return fmt.Errorf("task %d", i) }
	for _, workers := range []int{1, 4} {
		err := For(workers, 100, func(i int) error {
			if i >= 3 {
				return mkErr(i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want error", workers)
		}
		if workers == 1 && err.Error() != "task 3" {
			t.Errorf("sequential error = %v, want task 3", err)
		}
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out, err := Map(workers, 500, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Error("Map should return nil results on error")
	}
}

func TestChunksCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 64} {
		const n = 777
		hit := make([]atomic.Int32, n)
		Chunks(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hit[i].Add(1)
			}
		})
		for i := range hit {
			if c := hit[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

// The core determinism claim: a seeded computation fanned out over any
// worker count produces bit-identical ordered results.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	task := func(i int) (float64, error) {
		rng := rand.New(rand.NewSource(SplitSeed(42, int64(i))))
		var s float64
		for j := 0; j < 100; j++ {
			s += rng.NormFloat64()
		}
		return s, nil
	}
	ref, err := Map(1, 64, task)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Map(workers, 64, task)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestSplitSeedDistinctAndStable(t *testing.T) {
	seen := make(map[int64]bool)
	for i := int64(0); i < 1000; i++ {
		s := SplitSeed(7, i)
		if s < 0 {
			t.Fatalf("SplitSeed negative: %d", s)
		}
		if seen[s] {
			t.Fatalf("collision at %d", i)
		}
		seen[s] = true
	}
	if SplitSeed(7, 3, 4) != SplitSeed(7, 3, 4) {
		t.Error("SplitSeed not stable")
	}
	if SplitSeed(7, 3, 4) == SplitSeed(7, 4, 3) {
		t.Error("SplitSeed should be order-sensitive")
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Error("different master seeds should diverge")
	}
}
