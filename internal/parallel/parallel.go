// Package parallel is the repo's deterministic worker-pool helper: bounded
// fan-out over an index space, ordered result collection, and first-error
// (lowest index) propagation.
//
// Determinism contract: every helper produces results that are bit-identical
// regardless of the worker count, provided each task i depends only on its
// index (and on state derived from SplitSeed or equivalent per-index
// seeding), never on execution order. Reductions over task results must be
// performed by the caller in index order; the helpers only guarantee that
// out[i] holds task i's result. DESIGN-PERF.md documents the full model.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n > 0 is used as-is, n == 0 means
// one worker per available CPU (GOMAXPROCS), and n < 0 forces sequential
// execution. Every Workers/For/Map knob in this repo shares this convention.
func Workers(n int) int {
	switch {
	case n > 0:
		return n
	case n == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// For runs fn(0..n-1) on up to workers goroutines. Tasks are claimed from a
// shared atomic counter, so scheduling is dynamic, but each task writes only
// its own state. If any task fails, no new tasks are started and the error
// with the lowest index is returned (a deterministic choice: the same
// failing input yields the same reported error at any worker count, even
// though which later tasks were skipped may vary).
func For(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(0..n-1) on up to workers goroutines and collects the results
// in index order. On error the lowest-index error is returned and the
// result slice is nil.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := For(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chunks splits [0, n) into contiguous ranges and runs body(lo, hi) on up
// to workers goroutines. It is meant for per-element writes into
// caller-owned slices (e.g. a K-means assignment step): each element is
// computed independently, so the worker count cannot affect the result.
// Callers that reduce across elements must not fold inside body unless the
// fold is order-independent (boolean OR, max with deterministic tie-break);
// floating-point sums belong in an index-ordered pass after Chunks returns.
func Chunks(workers, n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// SplitSeed derives an independent, well-mixed child seed from a master
// seed and a task coordinate path (restart index, fold index, run index,
// ...). It is the repo's seed discipline for parallel loops: instead of
// threading one *rand.Rand through a loop (which makes results depend on
// execution order), each task builds its own rand.New(rand.NewSource(
// SplitSeed(seed, coords...))). The mixing is SplitMix64 (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators"), so adjacent seeds and
// coordinates land in unrelated streams.
func SplitSeed(seed int64, coords ...int64) int64 {
	x := uint64(seed)
	for _, c := range coords {
		x += 0x9e3779b97f4a7c15 * (uint64(c) + 0x632be59bd9b4e019)
		x = mix64(x)
	}
	// Keep the result non-negative so it is safe for APIs that treat
	// negative seeds as sentinels.
	return int64(mix64(x) >> 1)
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
