// Package lint is fmeter's repo-specific static-analysis suite: four
// analyzers that machine-check the contracts DESIGN-PERF.md states and
// the property tests only sample — determinism (no wall-clock or
// unseeded randomness in result paths, no map-iteration order leaking
// into results), view-pinning (every pinView is unpinned on every
// path), typed errors (snapshot/config failures surface as
// *SnapshotError/*ConfigError), and no-alloc zones (the batched query
// paths stay allocation-free).
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) but is built on the standard
// library alone: packages are enumerated and compiled with
// `go list -export`, type-checked with go/types against the compiler's
// export data, and diagnostics carry the violated contract's name so
// `make lint` failures read as contract violations, not style nits.
// If x/tools ever lands in the module, the analyzers port over by
// changing only this file and load.go.
//
// # Annotation grammar
//
// Analyzers are scoped and suppressed with `//fmeter:` directives.
// Every suppression requires a reason — the allowlist doubles as
// documentation. A directive's scope depends on where it appears:
//
//   - inside a function body: it covers the statement it trails or the
//     statement immediately below it (line scope);
//   - in a function's doc comment: it covers the whole function;
//   - anywhere else in a file (including above `package`): it covers
//     the whole file.
//
// Directives:
//
//	//fmeter:nondeterministic-ok <reason>   allow time.Now / global math/rand here
//	//fmeter:map-order-ok <reason>          allow an order-sensitive write under a map range
//	//fmeter:deterministic                  opt a file into the map-range check
//	//fmeter:errdomain snapshot|config      function/file must return typed errors
//	//fmeter:errdomain none                 leaf helper opt-out inside an errdomain file
//	//fmeter:untyped-ok <reason>            allow one untyped error site in an errdomain
//	//fmeter:noalloc                        function must not allocate
//	//fmeter:alloc-ok <reason>              allow one allocation site in a noalloc zone
//	//fmeter:pin-ok <reason>                allow a pinView the checker cannot prove released
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one contract checker.
type Analyzer struct {
	// Name is the analyzer's short name (`fmeter-vet -run` matches it).
	Name string
	// Contract names the repo contract a diagnostic violates; it is
	// printed with every finding.
	Contract string
	// Doc is a one-paragraph description.
	Doc string
	// Run reports diagnostics for one package.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path (testdata packages use their directory
	// name).
	PkgPath string
	// Dirs indexes the package's //fmeter: directives.
	Dirs *Directives

	diags *[]Diagnostic
}

// A Diagnostic is one contract violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Contract string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s (fmeter-vet/%s)",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Contract, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Contract: p.Analyzer.Contract,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DirectivePrefix is the comment prefix all lint annotations share.
const DirectivePrefix = "//fmeter:"

// Scope classifies where a directive applies.
type Scope int

const (
	// LineScope covers the statement the directive trails or precedes.
	LineScope Scope = iota
	// FuncScope covers the function whose doc comment holds the directive.
	FuncScope
	// FileScope covers the whole file.
	FileScope
)

// A Directive is one parsed //fmeter: annotation.
type Directive struct {
	Name  string // e.g. "nondeterministic-ok"
	Args  string // remainder of the line, TrimSpace'd
	Scope Scope
	Pos   token.Pos
	// start/end delimit the source range the directive covers.
	start, end token.Pos
}

// Directives indexes a package's annotations for coverage queries.
type Directives struct {
	fset *token.FileSet
	all  []*Directive
}

// parseDirectives extracts every //fmeter: comment from the files and
// resolves its scope.
func parseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset}
	for _, f := range files {
		// Collect the function declarations once per file so line-scope
		// attachment and doc-comment scoping can be resolved by position.
		var funcs []*ast.FuncDecl
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				funcs = append(funcs, fd)
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, DirectivePrefix)
				name, args, _ := strings.Cut(body, " ")
				dir := &Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()}
				d.resolveScope(dir, c, f, funcs)
				d.all = append(d.all, dir)
			}
		}
	}
	sort.Slice(d.all, func(i, j int) bool { return d.all[i].Pos < d.all[j].Pos })
	return d
}

// resolveScope decides what source range dir covers.
func (d *Directives) resolveScope(dir *Directive, c *ast.Comment, f *ast.File, funcs []*ast.FuncDecl) {
	for _, fd := range funcs {
		// Doc comment → function scope.
		if fd.Doc != nil && c.Pos() >= fd.Doc.Pos() && c.End() <= fd.Doc.End() {
			dir.Scope = FuncScope
			dir.start, dir.end = fd.Pos(), fd.End()
			return
		}
		// Inside a body → line scope: the directive covers the statement
		// it shares a line with, or the next statement below it.
		if fd.Body != nil && c.Pos() > fd.Body.Lbrace && c.End() < fd.Body.Rbrace {
			dir.Scope = LineScope
			dir.start, dir.end = c.Pos(), c.End()
			dline := d.fset.Position(c.Pos()).Line
			var attach ast.Stmt
			// A directive written inside an expression (a multi-line
			// composite literal or argument list) covers the whole
			// enclosing statement.
			inExpr := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok && e.Pos() <= c.Pos() && c.End() <= e.End() {
					inExpr = true
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				st, ok := n.(ast.Stmt)
				if !ok {
					return true
				}
				if _, isBlock := st.(*ast.BlockStmt); isBlock {
					return true
				}
				sl := d.fset.Position(st.Pos()).Line
				el := d.fset.Position(st.End()).Line
				if inExpr && st.Pos() <= c.Pos() && c.End() <= st.End() {
					// Innermost non-block statement containing the
					// directive (Inspect visits outer before inner).
					attach = st
				}
				if sl <= dline && dline <= el && st.End() <= c.Pos() {
					// Trailing comment on the statement's line(s).
					attach = st
				}
				if (sl == dline+1) && st.Pos() > c.End() && attach == nil {
					attach = st
				}
				return true
			})
			if attach != nil {
				if attach.Pos() < dir.start {
					dir.start = attach.Pos()
				}
				if attach.End() > dir.end {
					dir.end = attach.End()
				}
			}
			return
		}
	}
	// Anywhere else (package doc, between declarations, above a type or
	// var) → file scope.
	dir.Scope = FileScope
	dir.start, dir.end = f.Pos(), f.End()
	// A file-scope directive may sit above `package` and therefore
	// before f.Pos(); widen so it covers itself too.
	if c.Pos() < dir.start {
		dir.start = c.Pos()
	}
}

// At returns the innermost directive named name covering pos, or nil.
func (ds *Directives) At(name string, pos token.Pos) *Directive {
	var best *Directive
	for _, dir := range ds.all {
		if dir.Name != name || pos < dir.start || pos >= dir.end {
			continue
		}
		if best == nil || (dir.end-dir.start) < (best.end-best.start) {
			best = dir
		}
	}
	return best
}

// InFile reports whether a file-scope directive named name exists in
// the file containing pos.
func (ds *Directives) InFile(name string, pos token.Pos) *Directive {
	file := ds.fset.File(pos)
	if file == nil {
		return nil
	}
	for _, dir := range ds.all {
		if dir.Name == name && dir.Scope == FileScope && ds.fset.File(dir.Pos) == file {
			return dir
		}
	}
	return nil
}

// Suppressed reports whether a suppression directive covers pos; if the
// directive is present but has no reason, it reports a finding of its
// own so allowlists stay documented.
func (p *Pass) Suppressed(name string, pos token.Pos) bool {
	dir := p.Dirs.At(name, pos)
	if dir == nil {
		return false
	}
	if dir.Args == "" {
		p.Reportf(dir.Pos, "%s%s needs a reason: the allowlist is documentation", DirectivePrefix, name)
	}
	return true
}

// enclosingFunc returns the innermost function declaration containing
// pos, or nil.
func enclosingFunc(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pos >= fd.Pos() && pos < fd.End() {
				return fd
			}
		}
	}
	return nil
}
