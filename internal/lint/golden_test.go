package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden suites mirror x/tools' analysistest: each
// testdata/src/<analyzer> package carries `// want "regexp"` comments on
// the lines where a diagnostic must fire (several wants on one line for
// several diagnostics), and every diagnostic must be claimed by a want.
// The testdata packages declare their own pinView/unpinView and
// SnapshotError/ConfigError — the analyzers match those contracts by
// name, so the suites run without importing the real core package.

func TestGoldenDeterminism(t *testing.T) { runGolden(t, Determinism, "determinism") }
func TestGoldenPinPair(t *testing.T)     { runGolden(t, PinPair, "pinpair") }
func TestGoldenTypedErr(t *testing.T)    { runGolden(t, TypedErr, "typederr") }
func TestGoldenNoAllocZone(t *testing.T) { runGolden(t, NoAllocZone, "noalloczone") }

// A suppression directive with no reason is itself a diagnostic; it is
// reported at the directive's own line, where no want comment can sit,
// so it gets a dedicated package asserted by message instead.
func TestGoldenSuppressionNeedsReason(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "noreason"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{Determinism})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "needs a reason") {
		t.Errorf("diagnostic %q does not demand a reason", diags[0].Message)
	}
}

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWants extracts `// want "re" ["re" ...]` comments, keyed by
// file and line.
func parseWants(t *testing.T, pkg *Package) map[string]map[int][]*want {
	t.Helper()
	wants := map[string]map[int][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantQuoted.FindAllString(rest, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = map[int][]*want{}
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &want{re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

func runGolden(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, pkg)
	for _, d := range Run([]*Package{pkg}, []*Analyzer{a}) {
		matched := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	var unmatched []string
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					unmatched = append(unmatched, fmt.Sprintf("%s:%d: want %q", file, line, w.raw))
				}
			}
		}
	}
	for _, u := range unmatched {
		t.Errorf("no diagnostic matched %s", u)
	}
}
