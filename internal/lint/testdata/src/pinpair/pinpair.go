// Package pinpair is the golden suite for the view-pinning analyzer.
// It declares its own pinView/unpinView pair — the analyzer matches the
// method names, so the suite runs without the real core package.
package pinpair

import "errors"

type view struct{ epoch int }

type db struct{ pins int }

func (d *db) pinView() *view { d.pins++; return &view{} }

func (d *db) unpinView(v *view) { d.pins-- }

var errBoom = errors.New("boom")

// The canonical shape: defer right after the pin covers every path.
func deferred(d *db, bad bool) error {
	v := d.pinView()
	defer d.unpinView(v)
	if bad {
		return errBoom
	}
	_ = v.epoch
	return nil
}

// Explicit release on every path also proves out.
func explicit(d *db, bad bool) error {
	v := d.pinView()
	if bad {
		d.unpinView(v)
		return errBoom
	}
	d.unpinView(v)
	return nil
}

// The ISSUE's seeded violation: an early error return that skips the
// release.
func earlyReturnLeak(d *db, bad bool) error {
	v := d.pinView()
	if bad {
		return errBoom // want "return leaks pinned view v"
	}
	d.unpinView(v)
	return nil
}

func fallThroughLeak(d *db) { // kept: the finding lands on the pin below
	v := d.pinView() // want "not released on the fall-through path"
	_ = v.epoch
}

func discarded(d *db) {
	d.pinView() // want "result discarded"
}

func blankAssigned(d *db) {
	_ = d.pinView() // want "assigned to _ or a non-local"
}

func multiAssigned(d *db) {
	v, w := d.pinView(), d.pinView() // want "multi-assignment" "multi-assignment"
	d.unpinView(v)
	d.unpinView(w)
}

func repin(d *db) {
	v := d.pinView()
	v = d.pinView() // want "overwrites an unreleased pinned view"
	d.unpinView(v)
}

// Both arms of a branch releasing merges to released.
func branches(d *db, cond bool) {
	v := d.pinView()
	if cond {
		d.unpinView(v)
	} else {
		d.unpinView(v)
	}
}

// A pin per loop iteration, released inside the iteration.
func pinPerIteration(d *db) {
	for i := 0; i < 3; i++ {
		v := d.pinView()
		d.unpinView(v)
	}
}

// A deferred closure releasing the pin counts as a release.
func deferredClosure(d *db) {
	v := d.pinView()
	defer func() {
		d.unpinView(v)
	}()
	_ = v.epoch
}

// Ownership transfer the checker cannot prove, documented instead.
func handedOff(d *db) *view {
	//fmeter:pin-ok ownership moves to the caller, which unpins via view.done
	v := d.pinView()
	return v
}
