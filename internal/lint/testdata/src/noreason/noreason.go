// Package noreason holds the one case the want-comment format cannot
// express: a suppression directive with no reason is reported at the
// directive's own line.
package noreason

import "time"

func stamped() time.Time {
	//fmeter:nondeterministic-ok
	return time.Now()
}
