// Package typederr is the golden suite for the typed-error analyzer.
// It declares its own SnapshotError/ConfigError — the analyzer matches
// the type names, so the suite runs without the real core package.
package typederr

import (
	"errors"
	"fmt"
)

type SnapshotError struct {
	Path string
	Err  error
}

func (e *SnapshotError) Error() string { return "snapshot " + e.Path }
func (e *SnapshotError) Unwrap() error { return e.Err }

type ConfigError struct {
	Param string
	Msg   string
}

func (e *ConfigError) Error() string { return "config " + e.Param }

type plainErr struct{ msg string }

func (e *plainErr) Error() string { return e.msg }

//fmeter:errdomain snapshot
func bareNew() error {
	return errors.New("boom") // want "bare errors.New"
}

//fmeter:errdomain snapshot
func noWrapVerb(err error) error {
	return fmt.Errorf("loading: %v", err) // want "without %w"
}

//fmeter:errdomain snapshot
func wrapsTyped(path string, err error) error {
	return fmt.Errorf("while loading: %w", &SnapshotError{Path: path, Err: err})
}

//fmeter:errdomain snapshot
func constructs(path string) error {
	return &SnapshotError{Path: path}
}

// Propagating an errdomain sibling is trusted: its returns are checked
// where they are written.
//
//fmeter:errdomain snapshot
func propagates(path string) error {
	if err := constructs(path); err != nil {
		return err
	}
	return nil
}

func unannotatedHelper() error { return errors.New("io failure") }

//fmeter:errdomain snapshot
func rawPropagation() error {
	return unannotatedHelper() // want "escapes an errdomain function untyped"
}

//fmeter:errdomain config
func untypedComposite() error {
	return &plainErr{msg: "x"} // want "untyped error composite"
}

//fmeter:errdomain config
func namedResult() (err error) {
	err = errors.New("named") // want "bare errors.New"
	return
}

// Leaf helpers a wrapping caller owns opt out explicitly.
//
//fmeter:errdomain none
func leafOptOut() error {
	return errors.New("leaf: callers wrap")
}

//fmeter:errdomain config
func suppressedSite() error {
	//fmeter:untyped-ok bridging a legacy error until the typed wrapper lands
	return errors.New("legacy")
}

// The fail-closure idiom: a local closure that wraps covers every call.
//
//fmeter:errdomain snapshot
func closureWrap(path string) error {
	fail := func(err error) error {
		return &SnapshotError{Path: path, Err: err}
	}
	return fail(errors.New("inner"))
}

// A pass-through closure shifts the proof to its arguments.
//
//fmeter:errdomain snapshot
func closurePassThrough() error {
	fail := func(err error) error {
		return err
	}
	return fail(errors.New("inner")) // want "bare errors.New"
}
