// Package determinism is the golden suite for the determinism analyzer.
// The file-scope directive below opts it into the map-range check the
// way result-affecting repro packages are by import path.
//
//fmeter:deterministic
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since"
}

func globalRand() int {
	return rand.Intn(10) // want "global-source rand.Intn"
}

// Seed discipline: constructing a seeded generator is the fix, not a
// violation.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func allowedTimestamp() time.Time {
	//fmeter:nondeterministic-ok timestamps label log lines only, never results
	return time.Now()
}

func floatAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "order-sensitive accumulation"
	}
	return sum
}

func appendCollect(m map[int]string) []string {
	var out []string
	for _, s := range m {
		out = append(out, s) // want "append to outer slice"
	}
	return out
}

// Commutative integer accumulation is order-insensitive.
func intCount(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Writes indexed by the range key land in a distinct slot per
// iteration, whatever the element type.
func keyed(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] = v
	}
}

// The sorted-support idiom: collecting keys under an annotation, then
// iterating deterministically.
func sortedKeys(m map[int]float64) []float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		//fmeter:map-order-ok the keys are sorted right below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]float64, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
