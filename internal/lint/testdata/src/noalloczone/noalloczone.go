// Package noalloczone is the golden suite for the no-alloc analyzer:
// only functions annotated //fmeter:noalloc are checked, and every
// allocation shape a benchmark's allocs/op would count is a finding.
package noalloczone

type point struct{ x, y int }

type heap struct{ idx []int }

var drainCh = make(chan int, 1)

//fmeter:noalloc
func makes(n int) []int {
	return make([]int, n) // want "make in a noalloc zone"
}

//fmeter:noalloc
func news() *point {
	return new(point) // want "new in a noalloc zone"
}

//fmeter:noalloc
func appends(dst []int, x int) []int {
	return append(dst, x) // want "append in a noalloc zone"
}

//fmeter:noalloc
func sliceLit() []int {
	return []int{1, 2, 3} // want "slice literal in a noalloc zone"
}

//fmeter:noalloc
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want "map literal in a noalloc zone"
}

//fmeter:noalloc
func ptrLit() *point {
	return &point{x: 1} // want "&composite literal in a noalloc zone"
}

//fmeter:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation in a noalloc zone"
}

//fmeter:noalloc
func toBytes(s string) []byte {
	return []byte(s) // want "string-to-slice conversion"
}

func sink(v any) any { return v }

//fmeter:noalloc
func boxes(x int) any {
	return sink(x) // want "interface boxing of int value"
}

func drain() { <-drainCh }

//fmeter:noalloc
func goStmt() {
	go drain() // want "go statement in a noalloc zone"
}

// The ISSUE's seeded violation: a closure capturing locals allocates
// its context.
//
//fmeter:noalloc
func closureCapture(target int) func(int) bool {
	return func(x int) bool { return x == target } // want "capturing func literal"
}

// A capture-free literal is static data: no allocation, no finding.
//
//fmeter:noalloc
func freeClosure() func(int) bool {
	return func(x int) bool { return x > 0 }
}

// Amortized growth is allowed when documented: the heap grows to k once
// and the scratch pool reuses it.
//
//fmeter:noalloc
func amortized(h *heap, x int) {
	//fmeter:alloc-ok grows once to capacity, reused across queries by the scratch pool
	h.idx = append(h.idx, x)
}

// Unannotated functions are out of zone: allocation is fine.
func unannotated() []int {
	return make([]int, 8)
}
