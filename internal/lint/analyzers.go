package lint

// All returns the full fmeter-vet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, PinPair, TypedErr, NoAllocZone}
}
