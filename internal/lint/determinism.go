package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the bit-identical-results contract from
// DESIGN-PERF.md: result-affecting code may not read wall-clock time or
// the global math/rand source (seed discipline: randomness flows from
// rand.New(rand.NewSource(seed))), and may not let map-iteration order
// leak into returned or accumulated state.
var Determinism = &Analyzer{
	Name:     "determinism",
	Contract: "determinism",
	Doc: `flag time.Now / global math/rand uses outside //fmeter:nondeterministic-ok
annotations (everywhere), and range-over-map loops whose bodies perform
order-sensitive writes to state that outlives the loop (in the
result-affecting packages and //fmeter:deterministic files)`,
	Run: runDeterminism,
}

// resultAffecting lists the packages whose outputs the determinism
// property tests sweep; the map-range check runs only there (and in
// files opted in with //fmeter:deterministic).
var resultAffecting = map[string]bool{
	"repro/internal/core":        true,
	"repro/internal/vecmath":     true,
	"repro/internal/svm":         true,
	"repro/internal/cluster":     true,
	"repro/internal/crossval":    true,
	"repro/internal/experiments": true,
	"repro/internal/parallel":    true,
}

// seededRandFuncs are the math/rand package-level functions that do NOT
// draw from the global source: constructing a seeded generator is the
// seed discipline, not a violation.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// wallClockFuncs are the time package functions that read the wall
// clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		mapCheck := resultAffecting[pass.PkgPath] || pass.Dirs.InFile("deterministic", f.Pos()) != nil
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkNondetUse(pass, n)
			case *ast.RangeStmt:
				if mapCheck {
					checkMapRange(pass, n)
				}
			}
			return true
		})
	}
}

// checkNondetUse flags any reference (call or value) to time.Now-family
// or global-source math/rand package functions.
func checkNondetUse(pass *Pass, sel *ast.SelectorExpr) {
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // method, not a package-level function
	}
	var what string
	switch obj.Pkg().Path() {
	case "time":
		if wallClockFuncs[obj.Name()] {
			what = "wall-clock read time." + obj.Name()
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[obj.Name()] {
			what = "global-source rand." + obj.Name()
		}
	}
	if what == "" || pass.Suppressed("nondeterministic-ok", sel.Pos()) {
		return
	}
	pass.Reportf(sel.Pos(),
		"%s breaks seed discipline: results must be reproducible from the seed; thread a *rand.Rand from rand.New(rand.NewSource(seed)) or annotate %snondeterministic-ok <reason>",
		what, DirectivePrefix)
}

// checkMapRange flags order-sensitive writes under `range m` where m is
// a map: iteration order is randomized per run, so any write whose
// final value depends on visit order makes results irreproducible.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	body := rng.Body
	report := func(pos token.Pos, form string) {
		if pass.Suppressed("map-order-ok", pos) {
			return
		}
		pass.Reportf(pos,
			"%s under range over map %s: map iteration order is randomized, so this result depends on visit order; iterate sorted keys or annotate %smap-order-ok <reason>",
			form, exprString(rng.X), DirectivePrefix)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope; writes there run later
		case *ast.SendStmt:
			report(n.Pos(), "channel send")
		case *ast.IncDecStmt:
			if keyedByRangeKey(pass, rng, n.X) {
				break
			}
			if outer, elem := outerWrite(pass, body, n.X); outer && !orderInsensitiveCompound(n.Tok, elem) {
				report(n.Pos(), "increment of outer state")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				// Writes indexed by the range key land in a distinct slot
				// per iteration, so the final state is visit-order
				// independent whatever the element type.
				if keyedByRangeKey(pass, rng, lhs) {
					continue
				}
				outer, elem := outerWrite(pass, body, lhs)
				if !outer {
					continue
				}
				switch {
				case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
					if idx, ok := lhs.(*ast.IndexExpr); ok {
						if mt := pass.Info.TypeOf(idx.X); mt != nil {
							if _, isMap := mt.Underlying().(*types.Map); isMap {
								// m[k] = v keyed writes land independently of
								// visit order (same-key overwrites excepted,
								// which keyed-by-range-key loops never do).
								continue
							}
						}
					}
					if isAppendTo(pass, n, lhs) {
						report(n.Pos(), "append to outer slice")
						continue
					}
					report(n.Pos(), "assignment to outer state")
				default: // compound: +=, -=, *=, |=, ...
					if !orderInsensitiveCompound(n.Tok, elem) {
						report(n.Pos(), "order-sensitive accumulation")
					}
				}
			}
		}
		return true
	})
}

// keyedByRangeKey reports whether lhs is an index expression whose
// index is the loop's range key (directly or through a conversion like
// int(k)): each iteration then writes a distinct slot.
func keyedByRangeKey(pass *Pass, rng *ast.RangeStmt, lhs ast.Expr) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := pass.Info.Defs[keyID]
	if keyObj == nil {
		keyObj = pass.Info.Uses[keyID]
	}
	if keyObj == nil {
		return false
	}
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	e := ast.Unparen(idx.Index)
	if call, isCall := e.(*ast.CallExpr); isCall && len(call.Args) == 1 {
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			e = ast.Unparen(call.Args[0])
		}
	}
	id, ok := e.(*ast.Ident)
	return ok && pass.Info.Uses[id] == keyObj
}

// outerWrite reports whether lhs writes through a variable declared
// outside the loop body (so the write survives the loop), along with
// the written element's type for commutativity checks.
func outerWrite(pass *Pass, body *ast.BlockStmt, lhs ast.Expr) (bool, types.Type) {
	root := lhs
	for {
		switch e := root.(type) {
		case *ast.IndexExpr:
			root = e.X
			continue
		case *ast.SelectorExpr:
			root = e.X
			continue
		case *ast.StarExpr:
			// Writing through a pointer: treat as outer — the pointee
			// outlives the loop unless proven otherwise.
			if id, ok := e.X.(*ast.Ident); ok {
				root = id
				break
			}
			return true, pass.Info.TypeOf(lhs)
		case *ast.ParenExpr:
			root = e.X
			continue
		}
		break
	}
	id, ok := root.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false, nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false, nil
	}
	if obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
		return false, nil // declared inside the loop body
	}
	return true, pass.Info.TypeOf(lhs)
}

// orderInsensitiveCompound reports whether a compound write with tok on
// an element of type t yields the same final value under any visit
// order: commutative+associative integer ops qualify; float arithmetic
// (rounding is order-dependent), strings, shifts, and division do not.
func orderInsensitiveCompound(tok token.Token, t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.INC, token.DEC:
		return true
	}
	return false
}

// isAppendTo reports whether assign is `lhs = append(lhs, ...)`.
func isAppendTo(pass *Pass, assign *ast.AssignStmt, lhs ast.Expr) bool {
	for _, rhs := range assign.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if obj, ok := pass.Info.Uses[id]; ok {
				if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	}
	return false
}

// exprString renders a short source-ish form of e for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "expression"
}
