package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked unit ready for analysis.
type Package struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	PkgPath string
	Dirs    *Directives
}

// Run applies each analyzer to each package and returns the combined
// diagnostics in file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				PkgPath:  pkg.PkgPath,
				Dirs:     pkg.Dirs,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir over patterns and
// decodes the package stream. -export makes the toolchain compile each
// package (build-cached) and report its export-data file, which is what
// lets go/types resolve imports without golang.org/x/tools.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := []string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types import resolution from the export
// files `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// check parses the named files and type-checks them as one package.
func check(fset *token.FileSet, pkgPath string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		Fset:    fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
		PkgPath: pkgPath,
		Dirs:    parseDirectives(fset, files),
	}, nil
}

// LoadPatterns loads the non-test compilation of every package the
// patterns name (relative to dir), type-checked against export data.
// Dependencies are resolved but only the named packages are returned
// for analysis.
func LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(p.GoFiles))
		for i, gf := range p.GoFiles {
			filenames[i] = filepath.Join(p.Dir, gf)
		}
		pkg, err := check(fset, p.ImportPath, filenames, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads every .go file directly under dir as one package whose
// imports may only be standard-library packages. This is the testdata
// loader: golden-suite packages sit outside the module, so their
// imports are resolved by asking the toolchain for stdlib export data.
func LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	// Discover the import set first so one `go list` resolves exactly
	// the stdlib closure the package needs.
	seen := map[string]bool{}
	fset := token.NewFileSet()
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range f.Imports {
			seen[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	exports := map[string]string{}
	if len(seen) > 0 {
		paths := make([]string, 0, len(seen))
		for p := range seen {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset = token.NewFileSet()
	return check(fset, filepath.Base(dir), filenames, exportImporter(fset, exports))
}
