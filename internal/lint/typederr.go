package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// TypedErr enforces the typed-error contract on snapshot/config I/O
// paths: a function annotated //fmeter:errdomain snapshot (or config)
// promises every error it returns is a *SnapshotError (*ConfigError)
// or wraps one with %w, so callers can always errors.As from the
// facade. The analyzer proves it per return: typed constructions and
// calls into other errdomain functions are trusted; bare errors.New,
// fmt.Errorf without a typed/propagated %w cause, and raw propagation
// of an unannotated callee's error are findings.
var TypedErr = &Analyzer{
	Name:     "typederr",
	Contract: "typed-error",
	Doc: `in //fmeter:errdomain snapshot|config functions (or whole files), every
returned error must construct or %w-wrap *SnapshotError/*ConfigError;
leaf helpers whose callers wrap are opted out with errdomain none`,
	Run: runTypedErr,
}

// typedErrNames are the typed error structs the contract is stated in
// terms of. Matched by type name so the golden suites can declare their
// own copies.
var typedErrNames = map[string]bool{
	"SnapshotError": true,
	"ConfigError":   true,
}

func runTypedErr(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			domain := errDomainOf(pass, f, fd)
			if domain == "" || domain == "none" {
				continue
			}
			checkErrDomainFunc(pass, fd)
		}
	}
}

// errDomainOf resolves the errdomain annotation for fd: a function-doc
// directive wins over a file-scope one; "none" opts a leaf helper out.
func errDomainOf(pass *Pass, f *ast.File, fd *ast.FuncDecl) string {
	if dir := pass.Dirs.At("errdomain", fd.Pos()); dir != nil && dir.Scope == FuncScope {
		return dir.Args
	}
	if dir := pass.Dirs.InFile("errdomain", f.Pos()); dir != nil {
		return dir.Args
	}
	return ""
}

// checkErrDomainFunc verifies every error-typed return operand in fd.
func checkErrDomainFunc(pass *Pass, fd *ast.FuncDecl) {
	// Named results let `return` be bare; map result names to their
	// fields so bare returns check the named error variable. The
	// flattened declared result types also classify return operands —
	// a concrete error struct returned AS error has a non-interface
	// static type, and only the declaration reveals the error position.
	var namedErrs []*ast.Ident
	var errResult []bool
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			isErr := false
			if t := pass.Info.TypeOf(field.Type); t != nil && isErrorType(t) {
				isErr = true
			}
			n := len(field.Names)
			if n == 0 {
				n = 1 // anonymous result
			}
			for i := 0; i < n; i++ {
				errResult = append(errResult, isErr)
			}
			for _, name := range field.Names {
				if isErr {
					namedErrs = append(namedErrs, name)
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures have their own (unannotated) contract
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			for _, ne := range namedErrs {
				checkErrValue(pass, fd, ne, ret.Pos(), 0)
			}
			return true
		}
		for i, res := range ret.Results {
			declaredErr := len(ret.Results) == len(errResult) && errResult[i]
			if !declaredErr {
				if t := pass.Info.TypeOf(res); t == nil || !isErrorType(t) {
					continue
				}
			}
			checkErrValue(pass, fd, res, ret.Pos(), 0)
		}
		return true
	})
}

// isErrorType reports whether t is the error interface or a pointer to
// one of the typed error structs.
func isErrorType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		// Only the error interface itself, not arbitrary interfaces.
		return iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
	}
	return isTypedErrPtr(t)
}

// deref strips one level of pointer from t.
func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// isTypedErrPtr reports whether t is *SnapshotError / *ConfigError.
func isTypedErrPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && typedErrNames[named.Obj().Name()]
}

const maxErrDepth = 8

// checkErrValue proves one error expression is typed (or wraps typed /
// propagates a trusted callee) and reports the offending site if not.
func checkErrValue(pass *Pass, fd *ast.FuncDecl, e ast.Expr, retPos token.Pos, depth int) {
	if depth > maxErrDepth {
		return
	}
	e = ast.Unparen(e)
	if t := pass.Info.TypeOf(e); t != nil && isTypedErrPtr(t) {
		return // a typed construction or a helper that returns the typed pointer
	}
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return
		}
		obj := pass.Info.Uses[e]
		if obj == nil {
			// Named results checked at a bare return reach here as their
			// declaration idents, which live in Defs.
			obj = pass.Info.Defs[e]
		}
		if obj == nil {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		if fld, ok := obj.(*types.Var); ok && fld.IsField() {
			return
		}
		// Parameters are the caller's responsibility.
		if isParamOf(fd, pass, obj) {
			return
		}
		// Flow-insensitive reaching definitions, refined: the idiomatic
		// `x, err := f(); if err != nil { return err }` re-uses one err
		// object across a function, so when definitions precede the
		// return, only the nearest one can be the value returned here.
		defs := errDefs(pass, fd, obj)
		var nearest ast.Expr
		for _, def := range defs {
			if def.Pos() < retPos && (nearest == nil || def.Pos() > nearest.Pos()) {
				nearest = def
			}
		}
		if nearest != nil {
			checkErrValue(pass, fd, nearest, retPos, depth+1)
			return
		}
		for _, def := range defs {
			checkErrValue(pass, fd, def, retPos, depth+1)
		}
	case *ast.CallExpr:
		checkErrCall(pass, fd, e, retPos, depth)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			checkErrValue(pass, fd, e.X, retPos, depth+1)
		}
	case *ast.CompositeLit:
		if named, ok := deref(pass.Info.TypeOf(e)).(*types.Named); ok && typedErrNames[named.Obj().Name()] {
			return
		}
		report(pass, e.Pos(), "untyped error composite escapes an errdomain function")
	case *ast.SelectorExpr:
		// Struct fields holding errors (db.orphanErr): assume stores
		// upheld the contract where they were assigned.
		return
	case *ast.IndexExpr, *ast.TypeAssertExpr:
		return
	}
}

// checkErrCall classifies a call expression used as an error value.
func checkErrCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, retPos token.Pos, depth int) {
	callee := calleeObj(pass, call)
	if callee == nil {
		// Local error-wrapping closures (the fail := func(err error)
		// pattern) are resolved to their FuncLit and checked like inline
		// errdomain functions; other indirect calls are trusted.
		if lit := closureLit(pass, fd, call); lit != nil {
			checkClosureCall(pass, fd, call, lit, retPos, depth)
		}
		return
	}
	pkgPath := ""
	if callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
	}
	switch {
	case pkgPath == "errors" && callee.Name() == "New":
		report(pass, call.Pos(), "bare errors.New on a snapshot/config path: construct *SnapshotError/*ConfigError (or %%w-wrap one) so errors.As works from the facade")
	case pkgPath == "fmt" && callee.Name() == "Errorf":
		checkErrorf(pass, fd, call, retPos, depth)
	case pkgPath == "errors" && (callee.Name() == "Join"):
		for _, arg := range call.Args {
			checkErrValue(pass, fd, arg, retPos, depth+1)
		}
	default:
		// A call into another errdomain-annotated function in this
		// package is trusted: its own returns are checked. Everything
		// else produces an untyped error that must be wrapped here.
		if samePkgErrDomain(pass, callee) {
			return
		}
		if ret := pass.Info.TypeOf(call); ret != nil && isTypedErrPtr(ret) {
			return
		}
		report(pass, call.Pos(), "error from %s escapes an errdomain function untyped: wrap it in *SnapshotError/*ConfigError", callee.Name())
	}
}

// closureLit resolves a call through a local variable to the FuncLit
// assigned to it inside fd, or nil.
func closureLit(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) *ast.FuncLit {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	var lit *ast.FuncLit
	for _, def := range errDefs(pass, fd, obj) {
		if fl, ok := def.(*ast.FuncLit); ok {
			lit = fl
		}
	}
	return lit
}

// checkClosureCall checks the error results a closure returns. A typed
// construction inside the closure covers every call; a pass-through of
// one of the closure's own parameters shifts the proof obligation to the
// corresponding argument at this call site.
func checkClosureCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, lit *ast.FuncLit, retPos token.Pos, depth int) {
	if depth > maxErrDepth {
		return
	}
	// Closure parameters, in declaration order, for arg mapping.
	var params []types.Object
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, name := range f.Names {
				params = append(params, pass.Info.Defs[name])
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			t := pass.Info.TypeOf(res)
			if t == nil || !isErrorType(t) {
				continue
			}
			res = ast.Unparen(res)
			if id, ok := res.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					for pi, p := range params {
						if p == obj && pi < len(call.Args) {
							checkErrValue(pass, fd, call.Args[pi], retPos, depth+1)
							obj = nil
							break
						}
					}
					if obj == nil {
						continue
					}
				}
			}
			checkErrValue(pass, fd, res, retPos, depth+1)
		}
		return true
	})
}

// checkErrorf verifies fmt.Errorf has a %w verb whose argument is
// itself typed/trusted; %w-less Errorf severs the errors.As chain.
func checkErrorf(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, retPos token.Pos, depth int) {
	if len(call.Args) == 0 {
		return
	}
	format, ok := stringConst(pass, call.Args[0])
	if !ok {
		report(pass, call.Pos(), "fmt.Errorf with a non-constant format on a snapshot/config path: the checker cannot prove a %%w wrap")
		return
	}
	wraps := wrapArgIndexes(format)
	if len(wraps) == 0 {
		report(pass, call.Pos(), "fmt.Errorf without %%w on a snapshot/config path: the error cannot carry *SnapshotError/*ConfigError for errors.As")
		return
	}
	for _, idx := range wraps {
		ai := 1 + idx
		if ai < len(call.Args) {
			checkErrValue(pass, fd, call.Args[ai], retPos, depth+1)
		}
	}
}

// wrapArgIndexes returns the 0-based operand indexes consumed by %w
// verbs in format (no explicit-index support; the codebase doesn't use
// %[n]w).
func wrapArgIndexes(format string) []int {
	var out []int
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Skip flags/width/precision.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.*", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == 'w' {
			out = append(out, arg)
		}
		arg++
	}
	return out
}

// stringConst evaluates e as a constant string.
func stringConst(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s := tv.Value.ExactString()
	unq, err := strconv.Unquote(s)
	if err != nil {
		return "", false
	}
	return unq, true
}

// errDefs collects the RHS expressions assigned to obj anywhere in fd
// (flow-insensitive reaching definitions).
func errDefs(pass *Pass, fd *ast.FuncDecl, obj types.Object) []ast.Expr {
	var defs []ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			lobj := pass.Info.Defs[id]
			if lobj == nil {
				lobj = pass.Info.Uses[id]
			}
			if lobj != obj {
				continue
			}
			if len(assign.Rhs) == len(assign.Lhs) {
				defs = append(defs, assign.Rhs[i])
			} else if len(assign.Rhs) == 1 {
				// x, err := f(): the error position shares the call.
				defs = append(defs, assign.Rhs[0])
			}
		}
		return true
	})
	return defs
}

// isParamOf reports whether obj is one of fd's parameters or receiver.
func isParamOf(fd *ast.FuncDecl, pass *Pass, obj types.Object) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if pass.Info.Defs[name] == obj {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}

// calleeObj resolves a call's static callee, or nil for indirect calls
// and builtins.
func calleeObj(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[fun]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if obj := pass.Info.Uses[fun.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

// samePkgErrDomain reports whether callee is a function in the package
// under analysis that carries its own errdomain annotation (and so
// checks its own returns).
func samePkgErrDomain(pass *Pass, callee types.Object) bool {
	if callee.Pkg() == nil || callee.Pkg() != pass.Pkg {
		return false
	}
	fd := enclosingFunc(pass.Files, callee.Pos())
	if fd == nil {
		return false
	}
	for _, f := range pass.Files {
		if callee.Pos() >= f.Pos() && callee.Pos() < f.End() {
			d := errDomainOf(pass, f, fd)
			return d != "" && d != "none"
		}
	}
	return false
}

// report emits unless the site carries //fmeter:untyped-ok <reason>.
func report(pass *Pass, pos token.Pos, format string, args ...any) {
	if pass.Suppressed("untyped-ok", pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}
