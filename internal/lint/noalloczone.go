package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAllocZone enforces the 0-alloc contract on the batched query paths:
// a function annotated //fmeter:noalloc promises its steady-state body
// performs no heap allocation (the property the
// BenchmarkDBTopKBatch/ClassifyBatch 0 allocs/op records pin down). The
// analyzer flags the allocation sites a benchmark would count: make /
// new, slice and map literals, growing appends, capturing closures,
// string building, go statements, and interface boxing at call sites
// and assignments. Sites that are provably cold or amortized (error
// paths, one-time pool growth) carry //fmeter:alloc-ok <reason>.
var NoAllocZone = &Analyzer{
	Name:     "noalloczone",
	Contract: "no-alloc",
	Doc: `//fmeter:noalloc functions may not contain allocation sites: make/new,
slice/map/pointer composite literals, append growth, capturing func
literals, string concatenation or conversions, go statements, or
interface boxing; suppress cold sites with //fmeter:alloc-ok <reason>`,
	Run: runNoAllocZone,
}

func runNoAllocZone(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if dir := pass.Dirs.At("noalloc", fd.Pos()); dir == nil || dir.Scope != FuncScope {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	flag := func(pos token.Pos, format string, args ...any) {
		if pass.Suppressed("alloc-ok", pos) {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			flag(n.Pos(), "go statement in a noalloc zone allocates a goroutine")
		case *ast.FuncLit:
			if captures(pass, n) {
				flag(n.Pos(), "capturing func literal in a noalloc zone allocates its closure context")
			}
			return false // the literal's own body runs elsewhere
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				flag(n.Pos(), "slice literal in a noalloc zone allocates its backing array")
			case *types.Map:
				flag(n.Pos(), "map literal in a noalloc zone allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					flag(n.Pos(), "&composite literal in a noalloc zone escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.Info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						flag(n.Pos(), "string concatenation in a noalloc zone allocates")
					}
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, n, flag)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				checkBoxing(pass, pass.Info.TypeOf(lhs), n.Rhs[i], flag)
			}
		}
		return true
	})
}

// checkNoAllocCall classifies one call inside a noalloc zone.
func checkNoAllocCall(pass *Pass, call *ast.CallExpr, flag func(token.Pos, string, ...any)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch obj.Name() {
			case "make":
				flag(call.Pos(), "make in a noalloc zone allocates; use pooled or caller-provided scratch")
			case "new":
				flag(call.Pos(), "new in a noalloc zone allocates")
			case "append":
				flag(call.Pos(), "append in a noalloc zone may grow its backing array; append into preallocated capacity and annotate, or size the scratch up front")
			}
			return
		}
	}
	// Conversions: string([]byte), []byte(string), []rune(string).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := pass.Info.TypeOf(call.Args[0])
		if from == nil {
			return
		}
		fromB, fromIsBasic := from.Underlying().(*types.Basic)
		switch to := to.(type) {
		case *types.Basic:
			if to.Info()&types.IsString != 0 && !fromIsBasic {
				flag(call.Pos(), "string conversion in a noalloc zone copies and allocates")
			}
		case *types.Slice:
			if fromIsBasic && fromB.Info()&types.IsString != 0 {
				flag(call.Pos(), "string-to-slice conversion in a noalloc zone copies and allocates")
			}
		case *types.Interface:
			checkBoxing(pass, tv.Type, call.Args[0], flag)
		}
		return
	}
	// Interface boxing at argument positions.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		checkBoxing(pass, pt, arg, flag)
	}
}

// checkBoxing flags a concrete non-pointer value converted to an
// interface: the conversion boxes the value on the heap (pointers and
// previously-boxed interfaces convert for free).
func checkBoxing(pass *Pass, to types.Type, val ast.Expr, flag func(token.Pos, string, ...any)) {
	if to == nil {
		return
	}
	if _, isIface := to.Underlying().(*types.Interface); !isIface {
		return
	}
	vt := pass.Info.TypeOf(val)
	if vt == nil {
		return
	}
	tv, hasTV := pass.Info.Types[val]
	if hasTV && (tv.IsNil() || tv.Value != nil) {
		return // nil or a constant: constants box to static data
	}
	switch vt.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return
	}
	flag(val.Pos(), "interface boxing of %s value in a noalloc zone allocates", vt.String())
}

// captures reports whether fl references any variable declared outside
// its own body (package-level objects excluded — they need no context).
func captures(pass *Pass, fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := pass.Info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		if v.Parent() == types.Universe || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
			return true // package-level
		}
		if v.Pos() < fl.Pos() || v.Pos() >= fl.End() {
			found = true
		}
		return !found
	})
	return found
}
