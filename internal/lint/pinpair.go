package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinPair enforces the PR-8 epoch-view contract: every view a reader
// pins with pinView() must be released with unpinView(v) on every path
// out of the function — including early error returns — or the view
// never drains and retired segments/mmaps are never reclaimed.
var PinPair = &Analyzer{
	Name:     "pinpair",
	Contract: "view-pinning",
	Doc: `prove every pinView() result is unpinned on all paths: the pin must be
assigned to a local, and either deferred-unpinned or explicitly unpinned
before every return and at function exit`,
	Run: runPinPair,
}

const (
	pinName   = "pinView"
	unpinName = "unpinView"
)

func runPinPair(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// pinView's own body loads and releases views through the
			// epoch pointer; the pairing contract applies to its callers.
			if fd.Name.Name == pinName || fd.Name.Name == unpinName {
				continue
			}
			checkPins(pass, fd)
			// Function literals get the same treatment, each as its own
			// scope: a pin taken inside a closure must be released on the
			// closure's paths.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkPinBlock(pass, fl.Body)
				}
				return true
			})
		}
	}
}

func checkPins(pass *Pass, fd *ast.FuncDecl) {
	checkPinBlock(pass, fd.Body)
}

// checkPinBlock finds each pin in one function scope (skipping nested
// function literals, which are scanned separately) and proves release.
func checkPinBlock(pass *Pass, body *ast.BlockStmt) {
	var walkStmts func(stmts []ast.Stmt)
	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if isPinCall(pass, s.X) != nil {
				pass.Reportf(s.Pos(), "pinView() result discarded: the pin can never be released; assign it to a local and unpin it")
			}
		case *ast.AssignStmt:
			if v, call := pinAssign(pass, s); call != nil {
				if v == nil {
					pass.Reportf(s.Pos(), "pinView() result assigned to _ or a non-local: the checker cannot prove release; use a local variable")
					return
				}
				checkRelease(pass, s, v, enclosingStmts(body, s))
			} else {
				for _, rhs := range s.Rhs {
					if isPinCall(pass, rhs) != nil && len(s.Rhs) > 1 {
						pass.Reportf(s.Pos(), "pinView() in a multi-assignment: the checker cannot prove release; pin on its own line")
					}
				}
			}
		case *ast.BlockStmt:
			walkStmts(s.List)
		case *ast.IfStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			walkStmts(s.Body.List)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.ForStmt:
			walkStmts(s.Body.List)
		case *ast.RangeStmt:
			walkStmts(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				walkStmts(c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				walkStmts(c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				walkStmts(c.(*ast.CommClause).Body)
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt)
		}
	}
	walkStmts = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			walkStmt(s)
		}
	}
	walkStmts(body.List)
}

// pinAssign matches `v := x.pinView()` (or `v = ...`), returning the
// pinned variable's object and the call. A nil object with a non-nil
// call means the result went to _ .
func pinAssign(pass *Pass, s *ast.AssignStmt) (types.Object, *ast.CallExpr) {
	if len(s.Rhs) != 1 || len(s.Lhs) != 1 {
		return nil, nil
	}
	call := isPinCall(pass, s.Rhs[0])
	if call == nil {
		return nil, nil
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, call
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	if obj == nil {
		return nil, call
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil, call
	}
	return obj, call
}

// isPinCall returns e as a call to a method named pinView, else nil.
func isPinCall(pass *Pass, e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != pinName {
		return nil
	}
	return call
}

// enclosingStmts returns the statement list that directly contains
// target, so release checking starts right after the pin.
func enclosingStmts(body *ast.BlockStmt, target ast.Stmt) []ast.Stmt {
	var found []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for _, s := range list {
			if s == target {
				found = list
				return false
			}
		}
		return true
	})
	return found
}

// checkRelease proves v is unpinned on every path after pinStmt. The
// walk is structural rather than a full CFG: it understands sequencing,
// defer, if/else, for/range, switch/select, and returns — the shapes
// the codebase uses. Anything it cannot prove is a finding; exotic but
// correct shapes carry //fmeter:pin-ok <reason>.
func checkRelease(pass *Pass, pinStmt *ast.AssignStmt, v types.Object, stmts []ast.Stmt) {
	if stmts == nil {
		return
	}
	if pass.Suppressed("pin-ok", pinStmt.Pos()) {
		return
	}
	// Slice off everything up to and including the pin.
	rest := stmts
	for i, s := range stmts {
		if s == pinStmt {
			rest = stmts[i+1:]
			break
		}
	}
	leaks := make(map[token.Pos]string)
	exitReleased := walkRelease(pass, rest, v, false, leaks)
	if !exitReleased {
		leaks[pinStmt.Pos()] = "pinned view " + v.Name() + " is not released on the fall-through path to function exit"
	}
	// Report in source order for stable output.
	var poss []token.Pos
	for p := range leaks {
		poss = append(poss, p)
	}
	sortPos(poss)
	for _, p := range poss {
		pass.Reportf(p, "%s; release with `defer %s(%s)` right after the pin or unpin on every path", leaks[p], unpinName, v.Name())
	}
}

func sortPos(p []token.Pos) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j] < p[j-1]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

// walkRelease walks one statement list with entry state released,
// recording leaky returns, and returns whether v is provably released
// when (if) control falls off the end of the list.
func walkRelease(pass *Pass, stmts []ast.Stmt, v types.Object, released bool, leaks map[token.Pos]string) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.DeferStmt:
			if deferReleases(pass, s, v) {
				released = true
			}
		case *ast.ExprStmt:
			if isUnpinCallOf(pass, s.X, v) {
				released = true
			}
		case *ast.ReturnStmt:
			if !released {
				leaks[s.Pos()] = "return leaks pinned view " + v.Name()
			}
			return released
		case *ast.BranchStmt:
			// break/continue/goto: leave the list; releases on this path
			// beyond here are the target's business. Conservatively treat
			// like fall-through end.
			return released
		case *ast.BlockStmt:
			released = walkRelease(pass, s.List, v, released, leaks)
		case *ast.IfStmt:
			released = walkIfRelease(pass, s, v, released, leaks)
		case *ast.ForStmt:
			walkRelease(pass, s.Body.List, v, released, leaks)
		case *ast.RangeStmt:
			walkRelease(pass, s.Body.List, v, released, leaks)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var clauses []ast.Stmt
			switch sw := s.(type) {
			case *ast.SwitchStmt:
				clauses = sw.Body.List
			case *ast.TypeSwitchStmt:
				clauses = sw.Body.List
			case *ast.SelectStmt:
				clauses = sw.Body.List
			}
			hasDefault := false
			allReleased := true
			for _, c := range clauses {
				var body []ast.Stmt
				switch c := c.(type) {
				case *ast.CaseClause:
					body = c.Body
					if c.List == nil {
						hasDefault = true
					}
				case *ast.CommClause:
					body = c.Body
					if c.Comm == nil {
						hasDefault = true
					}
				}
				br := walkRelease(pass, body, v, released, leaks)
				if !br {
					allReleased = false
				}
			}
			if _, isSelect := s.(*ast.SelectStmt); isSelect {
				hasDefault = true // select always takes some clause
			}
			if allReleased && hasDefault && len(clauses) > 0 {
				released = true
			}
		case *ast.LabeledStmt:
			released = walkRelease(pass, []ast.Stmt{s.Stmt}, v, released, leaks)
		case *ast.AssignStmt:
			// Re-pinning into the same variable before release loses the
			// first pin.
			if v2, call := pinAssign(pass, s); call != nil && v2 == v && !released {
				leaks[s.Pos()] = "re-pinning into " + v.Name() + " overwrites an unreleased pinned view"
			}
		}
	}
	return released
}

// walkIfRelease merges an if/else: the statement releases v for the
// code after it only when every branch that can fall through has
// released it.
func walkIfRelease(pass *Pass, s *ast.IfStmt, v types.Object, released bool, leaks map[token.Pos]string) bool {
	thenReleased := walkRelease(pass, s.Body.List, v, released, leaks)
	elseReleased := released
	if s.Else != nil {
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseReleased = walkRelease(pass, e.List, v, released, leaks)
		case *ast.IfStmt:
			elseReleased = walkIfRelease(pass, e, v, released, leaks)
		}
	}
	// A branch ending in return doesn't fall through; its released
	// state was already checked at the return. For the merge, a
	// terminated branch imposes no constraint.
	thenFalls := fallsThrough(s.Body.List)
	elseFalls := true
	if s.Else != nil {
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseFalls = fallsThrough(e.List)
		case *ast.IfStmt:
			elseFalls = true // approximated; nested merge already handled
		}
	} else {
		elseReleased = released
	}
	out := true
	if thenFalls && !thenReleased {
		out = false
	}
	if elseFalls && !elseReleased {
		out = false
	}
	// If neither branch falls through, code below is unreachable; keep
	// the entry state.
	if !thenFalls && (s.Else != nil && !elseFalls) {
		return released
	}
	return out
}

// fallsThrough reports whether a statement list can reach its end
// (i.e., does not end in return or panic).
func fallsThrough(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return true
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
	case *ast.BranchStmt:
		return false // break/continue/goto leave the list
	}
	return true
}

// deferReleases reports whether d is `defer x.unpinView(v)` or a
// deferred closure that (somewhere) calls unpinView(v).
func deferReleases(pass *Pass, d *ast.DeferStmt, v types.Object) bool {
	if isUnpinCallOf(pass, d.Call, v) {
		return true
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && isUnpinCallOf(pass, e, v) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// isUnpinCallOf matches `x.unpinView(v)` for the pinned object v.
func isUnpinCallOf(pass *Pass, e ast.Expr, v types.Object) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != unpinName || len(call.Args) != 1 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	return pass.Info.Uses[id] == v
}
