package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vecmath"
)

const testDim = 48

// testSigs builds n deterministic signatures in testDim dimensions.
func testSigs(seed int64, n, nnz int) []core.Signature {
	r := rand.New(rand.NewSource(seed))
	out := make([]core.Signature, n)
	for i := range out {
		v := vecmath.NewVector(testDim)
		for j := 0; j < nnz; j++ {
			v[r.Intn(testDim)] = r.Float64()
		}
		out[i] = core.SignatureFromDense(fmt.Sprintf("d%d", i), fmt.Sprintf("l%d", i%3), v)
	}
	return out
}

// newTestServer builds a server over a fresh 2-shard DB seeded with n
// signatures. Callers own shutdown.
func newTestServer(t *testing.T, cfg Config, n int) (*Server, []core.Signature) {
	t.Helper()
	db, err := core.NewShardedDB(testDim, 2)
	if err != nil {
		t.Fatal(err)
	}
	sigs := testSigs(1, n, 8)
	if err := db.AddAll(sigs); err != nil {
		t.Fatal(err)
	}
	s, err := New(db, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, sigs
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewBufferString(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeErrorKind(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var p errorPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("error body is not an errorPayload: %v (body %q)", err, rec.Body.String())
	}
	if p.Error.Kind == "" {
		t.Fatalf("error payload has empty kind: %q", rec.Body.String())
	}
	return p.Error.Kind
}

// wireFromSparse renders a query vector into the wire's parallel-array
// form.
func wireFromSparse(sp *vecmath.Sparse) wireQuery {
	var q wireQuery
	sp.ForEach(func(i int, v float64) {
		q.Idx = append(q.Idx, int32(i))
		q.Val = append(q.Val, v)
	})
	return q
}

func TestHandlerBadRequests(t *testing.T) {
	s, sigs := newTestServer(t, Config{}, 50)
	defer s.Shutdown(t.Context())
	h := s.Handler()

	cases := []struct {
		name     string
		path     string
		body     string
		status   int
		kind     string
		hasRetry bool
	}{
		{"malformed json", "/v1/topk", `{"queries": [`, http.StatusBadRequest, "bad_request", false},
		{"unknown field", "/v1/topk", `{"nope": 1}`, http.StatusBadRequest, "bad_request", false},
		{"no queries", "/v1/topk", `{"queries": []}`, http.StatusBadRequest, "bad_request", false},
		{"dim mismatch", "/v1/topk", `{"dim": 7, "queries": [{"idx":[0],"val":[1]}]}`, http.StatusBadRequest, "dimension", false},
		{"index out of range", "/v1/topk", fmt.Sprintf(`{"queries": [{"idx":[%d],"val":[1]}]}`, testDim), http.StatusBadRequest, "dimension", false},
		{"unsorted indices", "/v1/topk", `{"queries": [{"idx":[3,1],"val":[1,1]}]}`, http.StatusBadRequest, "dimension", false},
		{"bad k", "/v1/topk", `{"k": -2, "queries": [{"idx":[0],"val":[1]}]}`, http.StatusBadRequest, "config", false},
		{"k over limit", "/v1/topk", `{"k": 1000, "queries": [{"idx":[0],"val":[1]}]}`, http.StatusBadRequest, "config", false},
		{"bad metric", "/v1/classify", `{"metric": "manhattan", "queries": [{"idx":[0],"val":[1]}]}`, http.StatusBadRequest, "config", false},
		{"malformed ingest", "/v1/ingest", `{]`, http.StatusBadRequest, "bad_request", false},
		{"no model", "/v1/ingest", `{"documents": [{"ID":"x","Counts":{"0":1}}]}`, http.StatusServiceUnavailable, "unavailable", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(t, h, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d (body %q)", rec.Code, tc.status, rec.Body.String())
			}
			if kind := decodeErrorKind(t, rec); kind != tc.kind {
				t.Fatalf("error kind %q, want %q", kind, tc.kind)
			}
		})
	}
	_ = sigs

	// Wrong method on a POST route gets the mux's 405.
	req := httptest.NewRequest("GET", "/v1/topk", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/topk: status %d, want 405", rec.Code)
	}
}

// TestCoalescedBitIdentical proves the coalesced path returns exactly
// what per-request TopKSparse/ClassifySparse return: same doc ids, same
// labels, same float bits. Many goroutines submit concurrently so the
// dispatcher actually forms multi-task batches.
func TestCoalescedBitIdentical(t *testing.T) {
	s, sigs := newTestServer(t, Config{MaxBatch: 16, MaxWait: 2 * time.Millisecond, MaxQueue: 256}, 120)
	defer s.Shutdown(t.Context())
	db := s.db
	const k = 5

	queries := make([]*vecmath.Sparse, 24)
	for i := range queries {
		queries[i] = sigs[i*3].W
	}
	type want struct {
		hits  []core.SearchResult
		label string
	}
	wants := make([]want, len(queries))
	for i, q := range queries {
		hits, err := db.TopKSparse(q, k, core.CosineMetric())
		if err != nil {
			t.Fatal(err)
		}
		label, err := db.ClassifySparse(q, k, core.CosineMetric())
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want{hits: hits, label: label}
	}

	done := make(chan error, 2*len(queries))
	for i, q := range queries {
		go func(i int, q *vecmath.Sparse) {
			hits, err := s.TopK([]*vecmath.Sparse{q}, k, core.CosineMetric())
			if err != nil {
				done <- fmt.Errorf("TopK %d: %v", i, err)
				return
			}
			got := hits[0]
			wantHits := wants[i].hits
			if len(got) != len(wantHits) {
				done <- fmt.Errorf("query %d: %d hits, want %d", i, len(got), len(wantHits))
				return
			}
			for j := range got {
				if got[j].Signature.DocID != wantHits[j].Signature.DocID ||
					got[j].Signature.Label != wantHits[j].Signature.Label ||
					got[j].Score != wantHits[j].Score {
					done <- fmt.Errorf("query %d hit %d: got (%s,%s,%v) want (%s,%s,%v)",
						i, j, got[j].Signature.DocID, got[j].Signature.Label, got[j].Score,
						wantHits[j].Signature.DocID, wantHits[j].Signature.Label, wantHits[j].Score)
					return
				}
			}
			done <- nil
		}(i, q)
		go func(i int, q *vecmath.Sparse) {
			labels, err := s.Classify([]*vecmath.Sparse{q}, k, core.CosineMetric())
			if err != nil {
				done <- fmt.Errorf("Classify %d: %v", i, err)
				return
			}
			if labels[0] != wants[i].label {
				done <- fmt.Errorf("query %d: label %q, want %q", i, labels[0], wants[i].label)
				return
			}
			done <- nil
		}(i, q)
	}
	for range 2 * len(queries) {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}

	// The dispatcher must have coalesced at least once: fewer batched
	// kernel calls than queries answered.
	m := s.Metrics()
	if m.Queries < uint64(2*len(queries)) {
		t.Fatalf("metrics count %d queries, want >= %d", m.Queries, 2*len(queries))
	}
	t.Logf("queries=%d batches=%d mean batch=%.2f", m.Queries, m.Batches, m.MeanBatchSize)
}

// TestHandlerBitIdenticalHTTP drives the full HTTP path and compares
// wire results against direct DB calls.
func TestHandlerBitIdenticalHTTP(t *testing.T) {
	s, sigs := newTestServer(t, Config{}, 80)
	defer s.Shutdown(t.Context())
	h := s.Handler()
	const k = 4

	q := sigs[7].W
	wantHits, err := s.db.TopKSparse(q, k, core.EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(queryRequest{Queries: []wireQuery{wireFromSparse(q)}, K: k, Metric: "euclidean"})
	rec := postJSON(t, h, "/v1/topk", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp topkResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0]) != len(wantHits) {
		t.Fatalf("got %v, want %d hits", resp.Results, len(wantHits))
	}
	for j, hit := range resp.Results[0] {
		if hit.DocID != wantHits[j].Signature.DocID || hit.Score != wantHits[j].Score {
			t.Fatalf("hit %d: got (%s,%v) want (%s,%v)", j, hit.DocID, hit.Score,
				wantHits[j].Signature.DocID, wantHits[j].Score)
		}
	}
}

// TestOverload429 fills the queue with slow-to-drain work and asserts
// rejected submissions get 429 plus a positive integer Retry-After.
func TestOverload429(t *testing.T) {
	// MaxQueue 1 with a dispatcher stalled by an in-flight batch makes
	// overload deterministic: park one task in the kernel, one in the
	// queue, and the next submission must bounce.
	s, sigs := newTestServer(t, Config{MaxBatch: 2, MaxWait: time.Microsecond, MaxQueue: 1}, 4000)
	defer s.Shutdown(t.Context())
	h := s.Handler()

	body, _ := json.Marshal(queryRequest{Queries: []wireQuery{wireFromSparse(sigs[0].W)}, K: 50})
	var saw429 bool
	results := make(chan *httptest.ResponseRecorder, 64)
	for i := 0; i < 64; i++ {
		go func() { results <- postJSON(t, h, "/v1/topk", string(body)) }()
	}
	for i := 0; i < 64; i++ {
		rec := <-results
		switch rec.Code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			saw429 = true
			if kind := decodeErrorKind(t, rec); kind != "overload" {
				t.Fatalf("429 kind %q, want overload", kind)
			}
			ra := rec.Header().Get("Retry-After")
			secs, err := strconv.Atoi(ra)
			if err != nil || secs < 1 {
				t.Fatalf("Retry-After %q, want a positive integer", ra)
			}
		default:
			t.Fatalf("unexpected status %d: %s", rec.Code, rec.Body.String())
		}
	}
	if !saw429 {
		t.Skip("queue never filled on this run (scheduler got every task through); overload path covered by TestSubmitOverloadDirect")
	}
	if got := s.Metrics().Rejected; got == 0 {
		t.Fatal("metrics show zero rejected requests after a 429")
	}
}

// TestSubmitOverloadDirect asserts the batcher-level overload error
// deterministically: with no dispatcher draining (we stall it with a
// closed-over kernel call), a full channel must reject.
func TestSubmitOverloadDirect(t *testing.T) {
	db, err := core.NewShardedDB(testDim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(testSigs(3, 10, 4)); err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	met := newMetrics()
	// Hand-build a batcher whose dispatcher never runs: the queue fills
	// and rejects synchronously.
	b := &batcher{db: db, cfg: Config{MaxBatch: 4, MaxQueue: 2}.withDefaults(), met: met, done: make(chan struct{})}
	b.queue = make(chan *task, 2)

	q := testSigs(4, 1, 4)[0].W
	mk := func() *task {
		return &task{kind: kindTopK, queries: []*vecmath.Sparse{q}, k: 1, metric: core.CosineMetric(), done: make(chan struct{})}
	}
	// Fill the queue without a dispatcher; the third submission bounces.
	b.queue <- mk()
	b.queue <- mk()
	err = b.submit(mk())
	var oe *OverloadError
	if !asOverload(err, &oe) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %v, want >= 1s", oe.RetryAfter)
	}
	if oe.Depth != 2 {
		t.Fatalf("Depth %d, want 2", oe.Depth)
	}
}

func asOverload(err error, target **OverloadError) bool {
	oe, ok := err.(*OverloadError)
	if ok {
		*target = oe
	}
	return ok
}

// TestShutdownDrainsInFlight submits work, begins shutdown concurrently,
// and asserts every accepted task completes with results (never a lost
// done channel) and late submissions fail 503, with the final DB close
// being clean.
func TestShutdownDrainsInFlight(t *testing.T) {
	s, sigs := newTestServer(t, Config{MaxBatch: 8, MaxWait: time.Millisecond, MaxQueue: 512}, 200)
	const inFlight = 64
	results := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		go func(i int) {
			hits, err := s.TopK([]*vecmath.Sparse{sigs[i].W}, 3, core.CosineMetric())
			if err != nil {
				results <- err
				return
			}
			if len(hits) != 1 || len(hits[0]) == 0 {
				results <- fmt.Errorf("request %d: empty hits", i)
				return
			}
			results <- nil
		}(i)
	}
	// Wait until work is genuinely in flight — queued or already
	// answered — so the drain has something to drain (on a single-P
	// scheduler the shutdown could otherwise win every race).
	for s.bat.depth() == 0 && s.met.queries.Load() == 0 {
		runtime.Gosched()
	}
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	accepted, drained := 0, 0
	for i := 0; i < inFlight; i++ {
		err := <-results
		switch {
		case err == nil:
			accepted++
			drained++
		case err == errDraining:
			// Submitted after intake closed — the contractually allowed
			// rejection.
		default:
			t.Fatalf("in-flight request failed with %v, want success or draining", err)
		}
	}
	if drained == 0 {
		t.Fatal("no request completed before shutdown — drain untested")
	}
	// Post-shutdown traffic is a typed 503.
	if _, err := s.TopK([]*vecmath.Sparse{sigs[0].W}, 3, core.CosineMetric()); err != errDraining {
		t.Fatalf("post-shutdown TopK err = %v, want draining", err)
	}
	rec := postJSON(t, s.Handler(), "/v1/topk", `{"queries":[{"idx":[0],"val":[1]}]}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown HTTP status %d, want 503", rec.Code)
	}
	t.Logf("accepted %d/%d before drain", accepted, inFlight)
}

// TestIngestSinglePublish proves the ingest handler amortizes the RCU
// publish: one request body with N documents moves the publish counter
// by exactly one.
func TestIngestSinglePublish(t *testing.T) {
	dim := testDim
	corpus, err := core.NewCorpus(dim)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	mkdoc := func(id string) *core.Document {
		counts := make(map[int]uint64)
		for j := 0; j < 6; j++ {
			counts[r.Intn(dim)] = uint64(1 + r.Intn(9))
		}
		return &core.Document{ID: id, Label: "l", Counts: counts}
	}
	for i := 0; i < 20; i++ {
		if err := corpus.Add(mkdoc(fmt.Sprintf("seed%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	model, err := corpus.Fit()
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.NewShardedDB(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(t.Context())

	docs := make([]*core.Document, 16)
	for i := range docs {
		docs[i] = mkdoc(fmt.Sprintf("live%d", i))
	}
	body, _ := json.Marshal(ingestRequest{Documents: docs})
	before := db.Publishes()
	rec := postJSON(t, s.Handler(), "/v1/ingest", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Added != len(docs) {
		t.Fatalf("added %d, want %d", resp.Added, len(docs))
	}
	if got := db.Publishes() - before; got != 1 {
		t.Fatalf("ingest of %d documents cost %d publishes, want 1", len(docs), got)
	}
	if db.Len() != len(docs) {
		t.Fatalf("db has %d signatures, want %d", db.Len(), len(docs))
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, sigs := newTestServer(t, Config{}, 30)
	h := s.Handler()

	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}

	body, _ := json.Marshal(queryRequest{Queries: []wireQuery{wireFromSparse(sigs[0].W)}})
	if rec := postJSON(t, h, "/v1/topk", string(body)); rec.Code != http.StatusOK {
		t.Fatalf("topk status %d: %s", rec.Code, rec.Body.String())
	}

	req = httptest.NewRequest("GET", "/metrics", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics body: %v", err)
	}
	if m.TopKRequests != 1 || m.Queries != 1 || m.DBSignatures != 30 {
		t.Fatalf("metrics = %+v, want 1 topk request / 1 query / 30 signatures", m)
	}
	if m.QueueCapacity == 0 || m.LatencyP50US <= 0 {
		t.Fatalf("metrics missing queue capacity or latency: %+v", m)
	}

	// After shutdown, healthz reports draining.
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest("GET", "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown healthz status %d, want 503", rec.Code)
	}
}
