// Package serve is the HTTP/JSON serving layer over the fmeter DB: a
// query + ingest API whose performance heart is an adaptive micro-batch
// coalescer (coalesce.go) draining a bounded request queue into the
// 0-alloc batched kernels. The production shape follows the batched
// translation services the Marian line of work converged on: bounded
// queues, backpressure with Retry-After instead of unbounded
// goroutines, health and metrics endpoints, and graceful shutdown that
// drains in-flight batches before closing the store.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/vecmath"
)

// Config tunes the server. The zero value is usable: every field below
// has a default applied by withDefaults.
type Config struct {
	// MaxBatch is the largest query count one batched kernel call may
	// coalesce. <= 1 disables coalescing entirely (direct mode — the
	// batch-size-1 baseline). Default 64.
	MaxBatch int
	// MaxWait bounds how long a loaded dispatcher waits to fill a batch
	// beyond the tasks already queued. Default 500µs.
	MaxWait time.Duration
	// MaxQueue bounds the request queue; a full queue rejects with 429 +
	// Retry-After. Default 1024.
	MaxQueue int
	// MaxK bounds the per-request k. Default 100.
	MaxK int
	// MaxQueriesPerRequest bounds the queries one request body may
	// carry. Default 256.
	MaxQueriesPerRequest int
	// MaxBodyBytes bounds request bodies. Default 8MB.
	MaxBodyBytes int64
	// SnapshotDir, when non-empty, enables the periodic incremental
	// SaveDir loop: every SnapshotEvery the server checks the sealed
	// segment count and snapshots when it has advanced past the last
	// saved watermark.
	SnapshotDir string
	// SnapshotEvery is the watermark poll interval. Default 2s.
	SnapshotEvery time.Duration
	// PruneSampleEvery samples PruneStats from every Nth batched TopK
	// call for /metrics aggregates; 0 keeps the default 32, negative
	// disables sampling.
	PruneSampleEvery int
	// Warnf, when non-nil, receives operational warnings (snapshot
	// failures). Default drops them.
	Warnf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait == 0 {
		c.MaxWait = 500 * time.Microsecond
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 1024
	}
	if c.MaxK == 0 {
		c.MaxK = 100
	}
	if c.MaxQueriesPerRequest == 0 {
		c.MaxQueriesPerRequest = 256
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 2 * time.Second
	}
	if c.PruneSampleEvery == 0 {
		c.PruneSampleEvery = 32
	}
	if c.PruneSampleEvery < 0 {
		c.PruneSampleEvery = 0
	}
	if c.Warnf == nil {
		c.Warnf = func(string, ...any) {}
	}
	return c
}

// Server is the HTTP serving layer. Create with New, mount via Handler
// (or pass directly to http.Server), stop with Shutdown.
type Server struct {
	db    *core.DB
	model *core.Model
	cfg   Config
	met   *metrics
	bat   *batcher
	mux   *http.ServeMux

	// ingestMu serializes ingest bodies so each body's Transform →
	// Normalize → AddAll runs as one unit (one RCU publish per body).
	ingestMu sync.Mutex

	shutdown   atomic.Bool
	snapStop   chan struct{}
	snapDone   chan struct{}
	lastSealed int
}

// New builds a Server over db. model may be nil, in which case
// /v1/ingest answers 503 (query-only deployments serving a prebuilt
// snapshot).
func New(db *core.DB, model *core.Model, cfg Config) (*Server, error) {
	if db == nil {
		return nil, &core.ConfigError{Param: "database", Msg: "serve.New requires a non-nil DB"}
	}
	cfg = cfg.withDefaults()
	s := &Server{
		db:       db,
		model:    model,
		cfg:      cfg,
		met:      newMetrics(),
		snapStop: make(chan struct{}),
		snapDone: make(chan struct{}),
	}
	s.bat = newBatcher(db, cfg, s.met)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/topk", s.handleTopK)
	s.mux.HandleFunc("POST /v1/classify", s.handleClassify)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.SnapshotDir != "" {
		go s.snapshotLoop()
	} else {
		close(s.snapDone)
	}
	return s, nil
}

// Handler returns the root handler (method-routed mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns a point-in-time snapshot of the server counters.
func (s *Server) Metrics() MetricsSnapshot {
	return s.met.snapshot(s.db, s.bat.depth(), s.cfg.MaxQueue)
}

// Shutdown stops intake, drains in-flight batches, takes a final
// snapshot when configured, and closes the DB. ctx bounds the wait; on
// expiry the drain keeps running in the background but Shutdown returns
// ctx.Err(). Idempotent: later calls return the DB's typed closed
// error.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.shutdown.CompareAndSwap(false, true) {
		return s.db.Close()
	}
	done := make(chan error, 1)
	go func() {
		s.bat.close() // stop intake, drain queued tasks
		close(s.snapStop)
		<-s.snapDone
		if s.cfg.SnapshotDir != "" {
			if err := s.db.SaveDir(s.cfg.SnapshotDir); err != nil {
				s.met.snapshotErrors.Add(1)
				s.cfg.Warnf("serve: final snapshot: %v", err)
			} else {
				s.met.snapshots.Add(1)
			}
		}
		done <- s.db.Close()
	}()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TopK is the programmatic entry to the coalescer: identical semantics
// to POST /v1/topk but skipping HTTP. The serve bench drives this to
// measure coalescing without connection overhead; embedders get a
// batched query path with backpressure for free.
func (s *Server) TopK(queries []*vecmath.Sparse, k int, metric core.Metric) ([][]core.SearchResult, error) {
	if s.shutdown.Load() {
		return nil, errDraining
	}
	t := &task{kind: kindTopK, queries: queries, k: k, metric: metric, done: make(chan struct{})}
	if err := s.bat.submit(t); err != nil {
		return nil, err
	}
	return t.hits, nil
}

// Classify is the programmatic classify twin of TopK.
func (s *Server) Classify(queries []*vecmath.Sparse, k int, metric core.Metric) ([]string, error) {
	if s.shutdown.Load() {
		return nil, errDraining
	}
	t := &task{kind: kindClassify, queries: queries, k: k, metric: metric, done: make(chan struct{})}
	if err := s.bat.submit(t); err != nil {
		return nil, err
	}
	return t.labels, nil
}

// snapshotLoop polls the sealed-segment watermark and snapshots
// incrementally when it advances — SaveDir only rewrites dirty
// segments, so a quiet store costs one stat-like check per tick.
func (s *Server) snapshotLoop() {
	defer close(s.snapDone)
	ticker := time.NewTicker(s.cfg.SnapshotEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-ticker.C:
			sealed := s.db.SealedSegments()
			if sealed == s.lastSealed {
				continue
			}
			if err := s.db.SaveDir(s.cfg.SnapshotDir); err != nil {
				s.met.snapshotErrors.Add(1)
				s.cfg.Warnf("serve: snapshot: %v", err)
				continue
			}
			s.lastSealed = sealed
			s.met.snapshots.Add(1)
		}
	}
}

// --- wire types ---

// wireQuery is one sparse query vector on the wire: parallel arrays of
// strictly ascending in-range indices and their non-zero values.
type wireQuery struct {
	Idx []int32   `json:"idx"`
	Val []float64 `json:"val"`
}

// queryRequest is the POST /v1/topk and /v1/classify body.
type queryRequest struct {
	Queries []wireQuery `json:"queries"`
	K       int         `json:"k,omitempty"`      // default 10
	Metric  string      `json:"metric,omitempty"` // "cosine" (default) | "euclidean"
	Dim     int         `json:"dim,omitempty"`    // optional cross-check against the store
}

// wireHit is one TopK result on the wire.
type wireHit struct {
	DocID string  `json:"doc_id"`
	Label string  `json:"label,omitempty"`
	Score float64 `json:"score"`
}

type topkResponse struct {
	Results [][]wireHit `json:"results"`
}

type classifyResponse struct {
	Labels []string `json:"labels"`
}

// ingestRequest is the POST /v1/ingest body: raw documents the server
// embeds with its fitted model and publishes in one AddAll.
type ingestRequest struct {
	Documents []*core.Document `json:"documents"`
}

type ingestResponse struct {
	Added int `json:"added"`
}

// errorPayload is every non-2xx body: a machine-readable kind plus the
// human message.
type errorPayload struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// --- handlers ---

//fmeter:nondeterministic-ok serving telemetry: request latency measurement is wall-clock by definition
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.topkRequests.Add(1)
	queries, k, metric, ok := s.decodeQueryRequest(w, r)
	if !ok {
		return
	}
	hits, err := s.TopK(queries, k, metric)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := topkResponse{Results: make([][]wireHit, len(hits))}
	for i, hs := range hits {
		row := make([]wireHit, len(hs))
		for j, h := range hs {
			row[j] = wireHit{DocID: h.Signature.DocID, Label: h.Signature.Label, Score: h.Score}
		}
		resp.Results[i] = row
	}
	s.writeJSON(w, http.StatusOK, resp)
	s.met.observeLatency(time.Since(start))
}

//fmeter:nondeterministic-ok serving telemetry: request latency measurement is wall-clock by definition
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.classifyRequests.Add(1)
	queries, k, metric, ok := s.decodeQueryRequest(w, r)
	if !ok {
		return
	}
	labels, err := s.Classify(queries, k, metric)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, classifyResponse{Labels: labels})
	s.met.observeLatency(time.Since(start))
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.met.ingestRequests.Add(1)
	if s.shutdown.Load() {
		s.writeError(w, errDraining)
		return
	}
	var req ingestRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Documents) == 0 {
		s.writeTyped(w, http.StatusBadRequest, "bad_request", "ingest body carries no documents")
		return
	}
	if s.model == nil {
		s.writeTyped(w, http.StatusServiceUnavailable, "unavailable", "server has no fitted model; ingest is disabled")
		return
	}
	sigs := make([]core.Signature, 0, len(req.Documents))
	for i, doc := range req.Documents {
		sig, err := s.model.Transform(doc)
		if err != nil {
			s.writeError(w, fmt.Errorf("document %d: %w", i, err))
			return
		}
		sigs = append(sigs, sig)
	}
	core.Normalize(sigs)
	// One publish for the whole body — the batched-ingest amortization.
	s.ingestMu.Lock()
	err := s.db.AddAll(sigs)
	s.ingestMu.Unlock()
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.met.docsIngested.Add(uint64(len(sigs)))
	s.writeJSON(w, http.StatusOK, ingestResponse{Added: len(sigs)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.shutdown.Load() {
		s.writeTyped(w, http.StatusServiceUnavailable, "unavailable", "server is draining")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"signatures": s.db.Len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Metrics())
}

// --- request decoding ---

// decodeBody strictly decodes one JSON body into dst, mapping failures
// to 400 bad_request. The body is size-capped and must contain exactly
// one JSON value.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.writeTyped(w, http.StatusBadRequest, "bad_request", "malformed JSON body: "+err.Error())
		return false
	}
	if dec.More() {
		s.writeTyped(w, http.StatusBadRequest, "bad_request", "trailing data after JSON body")
		return false
	}
	return true
}

// decodeQueryRequest decodes and validates a topk/classify body into
// kernel inputs. On failure it has already written the error response.
func (s *Server) decodeQueryRequest(w http.ResponseWriter, r *http.Request) ([]*vecmath.Sparse, int, core.Metric, bool) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return nil, 0, core.Metric{}, false
	}
	if len(req.Queries) == 0 {
		s.writeTyped(w, http.StatusBadRequest, "bad_request", "request carries no queries")
		return nil, 0, core.Metric{}, false
	}
	if len(req.Queries) > s.cfg.MaxQueriesPerRequest {
		s.writeTyped(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("request carries %d queries, limit %d", len(req.Queries), s.cfg.MaxQueriesPerRequest))
		return nil, 0, core.Metric{}, false
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k < 1 || k > s.cfg.MaxK {
		s.writeTyped(w, http.StatusBadRequest, "config",
			fmt.Sprintf("k=%d outside [1, %d]", k, s.cfg.MaxK))
		return nil, 0, core.Metric{}, false
	}
	var metric core.Metric
	switch req.Metric {
	case "", "cosine":
		metric = core.CosineMetric()
	case "euclidean":
		metric = core.EuclideanMetric()
	default:
		s.writeTyped(w, http.StatusBadRequest, "config",
			fmt.Sprintf("unknown metric %q (want cosine or euclidean)", req.Metric))
		return nil, 0, core.Metric{}, false
	}
	dim := s.db.Dim()
	if req.Dim != 0 && req.Dim != dim {
		s.writeError(w, &core.DimensionError{What: "request", Got: req.Dim, Want: dim})
		return nil, 0, core.Metric{}, false
	}
	queries := make([]*vecmath.Sparse, len(req.Queries))
	for i, q := range req.Queries {
		sp, err := vecmath.SparseFromSorted(dim, q.Idx, q.Val)
		if err != nil {
			// Out-of-range or unsorted indices are dimension-class
			// errors on the wire: the query doesn't fit the store's
			// vector space.
			s.writeTyped(w, http.StatusBadRequest, "dimension",
				fmt.Sprintf("query %d: %v", i, err))
			return nil, 0, core.Metric{}, false
		}
		queries[i] = sp
	}
	return queries, k, metric, true
}

// --- response writing ---

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeTyped writes an errorPayload with the given kind, counting it in
// the right error class.
func (s *Server) writeTyped(w http.ResponseWriter, status int, kind, msg string) {
	switch {
	case status == http.StatusTooManyRequests:
		s.met.rejected.Add(1)
	case status >= 500:
		s.met.serverErrors.Add(1)
	case status >= 400:
		s.met.clientErrors.Add(1)
	}
	s.writeJSON(w, status, errorPayload{Error: errorBody{Kind: kind, Message: msg}})
}

// writeError maps the repo's typed errors onto wire payloads:
//
//	*DimensionError          → 400 kind=dimension
//	*OverloadError           → 429 kind=overload + Retry-After
//	draining / closed DB     → 503 kind=unavailable
//	*ConfigError (other)     → 400 kind=config
//	ErrEmptyDB               → 409 kind=empty_db
//	anything else            → 500 kind=internal
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var de *core.DimensionError
	var oe *OverloadError
	var ce *core.ConfigError
	switch {
	case errors.As(err, &de):
		s.writeTyped(w, http.StatusBadRequest, "dimension", de.Error())
	case errors.As(err, &oe):
		w.Header().Set("Retry-After", strconv.Itoa(int(oe.RetryAfter.Seconds())))
		s.writeTyped(w, http.StatusTooManyRequests, "overload", oe.Error())
	case errors.As(err, &ce):
		if ce.Param == "database" || ce.Param == "server" {
			// Closed DB or draining server: the store is going away,
			// not a bad request.
			s.writeTyped(w, http.StatusServiceUnavailable, "unavailable", ce.Error())
			return
		}
		s.writeTyped(w, http.StatusBadRequest, "config", ce.Error())
	case errors.Is(err, core.ErrEmptyDB):
		s.writeTyped(w, http.StatusConflict, "empty_db", err.Error())
	default:
		s.writeTyped(w, http.StatusInternalServerError, "internal", err.Error())
	}
}
