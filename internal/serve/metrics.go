package serve

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// latBuckets is the request-latency histogram width: bucket i holds
// latencies in [2^i, 2^(i+1)) microseconds, so 26 buckets span 1µs to
// ~67s — more than any sane request lifetime.
const latBuckets = 26

// batchBuckets is the batch-size histogram width: bucket i holds
// batched kernel calls that coalesced [2^i, 2^(i+1)) queries, so 10
// buckets span a single query to 512+.
const batchBuckets = 10

// metrics is the server's observability state. Everything on the hot
// path is a plain atomic so handlers and the dispatcher never take a
// lock to count; the mutex guards only the /metrics scrape window.
type metrics struct {
	start time.Time

	topkRequests     atomic.Uint64
	classifyRequests atomic.Uint64
	ingestRequests   atomic.Uint64
	queries          atomic.Uint64 // queries answered through the coalescer
	batches          atomic.Uint64 // batched kernel calls issued
	rejected         atomic.Uint64 // 429s (bounded queue full)
	clientErrors     atomic.Uint64 // 4xx other than overload
	serverErrors     atomic.Uint64 // 5xx
	docsIngested     atomic.Uint64
	snapshots        atomic.Uint64
	snapshotErrors   atomic.Uint64

	batchHist [batchBuckets]atomic.Uint64
	latHist   [latBuckets]atomic.Uint64
	latCount  atomic.Uint64
	latSumUS  atomic.Uint64

	// Sampled PruneStats aggregates: every PruneSampleEvery-th batched
	// TopK call re-runs its first query through TopKSparseStats (results
	// are bit-identical, only the counters are extra) and accumulates
	// the per-query counters here.
	pruneSamples          atomic.Uint64
	pruneSegments         atomic.Int64
	pruneSegmentsPruned   atomic.Int64
	pruneCandidates       atomic.Int64
	pruneCandidatesScored atomic.Int64
	pruneDimsConsidered   atomic.Int64
	pruneDimsSkipped      atomic.Int64
	pruneBlocksConsidered atomic.Int64
	pruneBlocksSkipped    atomic.Int64

	// scrapeMu guards the previous-scrape water marks the windowed QPS
	// is computed from.
	scrapeMu    sync.Mutex
	lastScrape  time.Time
	lastScrapeQ uint64
}

//fmeter:nondeterministic-ok serving telemetry: uptime is anchored to the wall clock by definition
func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// observeLatency records one query-path request's wall-clock latency.
func (m *metrics) observeLatency(d time.Duration) {
	us := uint64(d.Microseconds())
	if us < 1 {
		us = 1
	}
	b := bits.Len64(us) - 1 // floor(log2 us)
	if b >= latBuckets {
		b = latBuckets - 1
	}
	m.latHist[b].Add(1)
	m.latCount.Add(1)
	m.latSumUS.Add(us)
}

// observeBatch records one batched kernel call coalescing n queries.
func (m *metrics) observeBatch(n int) {
	m.batches.Add(1)
	m.queries.Add(uint64(n))
	if n < 1 {
		n = 1
	}
	b := bits.Len64(uint64(n)) - 1
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	m.batchHist[b].Add(1)
}

// observePrune accumulates one sampled query's pruning counters.
func (m *metrics) observePrune(st core.PruneStats) {
	m.pruneSamples.Add(1)
	m.pruneSegments.Add(st.Segments)
	m.pruneSegmentsPruned.Add(st.SegmentsPruned)
	m.pruneCandidates.Add(st.Candidates)
	m.pruneCandidatesScored.Add(st.CandidatesScored)
	m.pruneDimsConsidered.Add(st.DimsConsidered)
	m.pruneDimsSkipped.Add(st.DimsSkipped)
	m.pruneBlocksConsidered.Add(st.BlocksConsidered)
	m.pruneBlocksSkipped.Add(st.BlocksSkipped)
}

// latencyQuantile estimates the q-quantile (0 < q <= 1) of the request
// latency distribution from the log2 histogram, reporting the upper
// bound of the bucket the quantile falls in — a conservative (never
// optimistic) estimate with power-of-two resolution.
func (m *metrics) latencyQuantile(q float64) float64 {
	total := m.latCount.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < latBuckets; i++ {
		seen += m.latHist[i].Load()
		if seen >= rank {
			return float64(uint64(1) << (i + 1)) // bucket upper bound, µs
		}
	}
	return float64(uint64(1) << latBuckets)
}

// MetricsSnapshot is the GET /metrics payload: a point-in-time JSON
// rendering of every counter, the batch-size histogram, conservative
// latency quantiles, and the sampled PruneStats aggregates.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_s"`

	// Store shape at scrape time.
	DBSignatures     int    `json:"db_signatures"`
	DBSegments       int    `json:"db_segments"`
	DBSealedSegments int    `json:"db_sealed_segments"`
	DBPublishes      uint64 `json:"db_publishes"`

	// Request counters.
	TopKRequests     uint64 `json:"topk_requests"`
	ClassifyRequests uint64 `json:"classify_requests"`
	IngestRequests   uint64 `json:"ingest_requests"`
	Rejected         uint64 `json:"rejected_429"`
	ClientErrors     uint64 `json:"client_errors_4xx"`
	ServerErrors     uint64 `json:"server_errors_5xx"`
	DocsIngested     uint64 `json:"docs_ingested"`
	Snapshots        uint64 `json:"snapshots"`
	SnapshotErrors   uint64 `json:"snapshot_errors"`

	// Coalescer state.
	Queries        uint64    `json:"queries"`
	Batches        uint64    `json:"batches"`
	MeanBatchSize  float64   `json:"mean_batch_size"`
	BatchSizeHist  []uint64  `json:"batch_size_hist_pow2"`
	QueueDepth     int       `json:"queue_depth"`
	QueueCapacity  int       `json:"queue_capacity"`
	QPSSinceStart  float64   `json:"qps_since_start"`
	QPSSinceScrape float64   `json:"qps_since_scrape"`
	LatencyMeanUS  float64   `json:"latency_mean_us"`
	LatencyP50US   float64   `json:"latency_p50_us"`
	LatencyP99US   float64   `json:"latency_p99_us"`
	LatencyHist    []uint64  `json:"latency_hist_pow2_us"`
	Prune          PruneAggr `json:"prune_sampled"`
}

// PruneAggr is the sampled PruneStats aggregate in MetricsSnapshot.
type PruneAggr struct {
	Samples          uint64 `json:"samples"`
	Segments         int64  `json:"segments"`
	SegmentsPruned   int64  `json:"segments_pruned"`
	Candidates       int64  `json:"candidates"`
	CandidatesScored int64  `json:"candidates_scored"`
	DimsConsidered   int64  `json:"dims_considered"`
	DimsSkipped      int64  `json:"dims_skipped"`
	BlocksConsidered int64  `json:"blocks_considered"`
	BlocksSkipped    int64  `json:"blocks_skipped"`
}

// snapshot renders the current counters. The windowed QPS compares
// against the previous snapshot call, so a scraper polling /metrics
// every N seconds reads the recent rate, not the lifetime average.
//
//fmeter:nondeterministic-ok serving telemetry: QPS and uptime are wall-clock rates by definition
func (m *metrics) snapshot(db *core.DB, queueDepth, queueCap int) MetricsSnapshot {
	now := time.Now()
	queries := m.queries.Load()

	m.scrapeMu.Lock()
	windowQPS := 0.0
	if !m.lastScrape.IsZero() {
		if dt := now.Sub(m.lastScrape).Seconds(); dt > 0 {
			windowQPS = float64(queries-m.lastScrapeQ) / dt
		}
	}
	m.lastScrape = now
	m.lastScrapeQ = queries
	m.scrapeMu.Unlock()

	uptime := now.Sub(m.start).Seconds()
	batches := m.batches.Load()
	snap := MetricsSnapshot{
		UptimeSeconds:    uptime,
		DBSignatures:     db.Len(),
		DBSegments:       db.Segments(),
		DBSealedSegments: db.SealedSegments(),
		DBPublishes:      db.Publishes(),
		TopKRequests:     m.topkRequests.Load(),
		ClassifyRequests: m.classifyRequests.Load(),
		IngestRequests:   m.ingestRequests.Load(),
		Rejected:         m.rejected.Load(),
		ClientErrors:     m.clientErrors.Load(),
		ServerErrors:     m.serverErrors.Load(),
		DocsIngested:     m.docsIngested.Load(),
		Snapshots:        m.snapshots.Load(),
		SnapshotErrors:   m.snapshotErrors.Load(),
		Queries:          queries,
		Batches:          batches,
		QueueDepth:       queueDepth,
		QueueCapacity:    queueCap,
		QPSSinceScrape:   windowQPS,
		LatencyP50US:     m.latencyQuantile(0.50),
		LatencyP99US:     m.latencyQuantile(0.99),
		Prune: PruneAggr{
			Samples:          m.pruneSamples.Load(),
			Segments:         m.pruneSegments.Load(),
			SegmentsPruned:   m.pruneSegmentsPruned.Load(),
			Candidates:       m.pruneCandidates.Load(),
			CandidatesScored: m.pruneCandidatesScored.Load(),
			DimsConsidered:   m.pruneDimsConsidered.Load(),
			DimsSkipped:      m.pruneDimsSkipped.Load(),
			BlocksConsidered: m.pruneBlocksConsidered.Load(),
			BlocksSkipped:    m.pruneBlocksSkipped.Load(),
		},
	}
	if batches > 0 {
		snap.MeanBatchSize = float64(queries) / float64(batches)
	}
	if uptime > 0 {
		snap.QPSSinceStart = float64(queries) / uptime
	}
	if n := m.latCount.Load(); n > 0 {
		snap.LatencyMeanUS = float64(m.latSumUS.Load()) / float64(n)
	}
	snap.BatchSizeHist = make([]uint64, batchBuckets)
	for i := range snap.BatchSizeHist {
		snap.BatchSizeHist[i] = m.batchHist[i].Load()
	}
	snap.LatencyHist = make([]uint64, latBuckets)
	for i := range snap.LatencyHist {
		snap.LatencyHist[i] = m.latHist[i].Load()
	}
	return snap
}
