package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/vecmath"
)

// reqKind selects which batched kernel a task rides.
type reqKind uint8

const (
	kindTopK reqKind = iota
	kindClassify
)

// task is one request's unit of work in the coalescer queue. The
// handler fills the input fields, Submit enqueues it, the dispatcher
// closes done after writing either the outputs or err.
type task struct {
	kind    reqKind
	queries []*vecmath.Sparse
	k       int
	metric  core.Metric

	hits   [][]core.SearchResult // kindTopK output
	labels []string              // kindClassify output
	err    error
	done   chan struct{}
}

// OverloadError is returned by Submit when the bounded queue is full.
// It maps to HTTP 429 with a Retry-After derived from the dispatcher's
// recent batch-drain rate.
type OverloadError struct {
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
	// Depth is the queue depth observed at rejection time.
	Depth int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: queue full (depth %d), retry after %s", e.Depth, e.RetryAfter)
}

// ErrDraining is the error tasks and submissions see once the batcher
// has begun shutdown; handlers map it to 503.
var errDraining = &core.ConfigError{Param: "server", Msg: "server is draining"}

// batcher is the adaptive micro-batch coalescer: a bounded queue of
// tasks drained by a single dispatcher goroutine into the DB's batched
// kernels.
//
// The adaptive rule: the dispatcher blocks for the first task, then
// greedily drains whatever else is already queued (no waiting). Only if
// the server is loaded — the greedy drain found company, or the
// previous flush did (one flush of hysteresis, since a channel handoff
// can wake the dispatcher after a single enqueue even mid-burst) —
// does it arm a MaxWait timer to fill the batch toward MaxBatch. A
// lone request on an idle server therefore flushes immediately and
// sees near-zero added latency, while under load per-query overhead
// (view pin, scratch checkout, goroutine wakeups) is amortized across
// up to MaxBatch queries through the 0-alloc batched path. The one
// request that pays the full MaxWait is the first lone arrival after a
// burst ends — bounded by construction at MaxWait.
//
// Results are bit-identical to unbatched calls because the batched
// kernels themselves guarantee it (TopKBatchInto pins one view and runs
// the same per-query code as TopKSparse); the coalescer only
// concatenates inputs and scatters outputs, never reorders within a
// task or mixes k/metric across a kernel call.
type batcher struct {
	db  *core.DB
	cfg Config
	met *metrics

	queue chan *task

	// mu guards closed: Submit holds it shared around the channel send
	// so close() (which takes it exclusively before closing the channel)
	// can never race a send-on-closed-channel panic.
	mu     sync.RWMutex
	closed bool

	// done is closed when the dispatcher has drained every queued task
	// and exited.
	done chan struct{}

	// ewmaBatchNS tracks the recent wall-clock cost of one drained
	// batch, feeding the Retry-After estimate.
	ewmaBatchNS atomic.Int64

	// sampleTick counts batched TopK kernel calls for PruneStats
	// sampling.
	sampleTick atomic.Uint64

	// Dispatcher-private scratch, reused across flushes. allOut entries
	// handed to tasks are nil-ed so the kernels never recycle a backing
	// array an HTTP response still aliases.
	allQ   []*vecmath.Sparse
	allOut [][]core.SearchResult
	allLab []string
}

// newBatcher starts the dispatcher unless cfg.MaxBatch <= 1, in which
// case the batcher runs in direct mode: Submit executes the task
// synchronously on the caller's goroutine — the exact batch-size-1
// baseline the bench ladder compares against.
func newBatcher(db *core.DB, cfg Config, met *metrics) *batcher {
	b := &batcher{db: db, cfg: cfg, met: met, done: make(chan struct{})}
	if cfg.MaxBatch > 1 {
		b.queue = make(chan *task, cfg.MaxQueue)
		go b.dispatch()
	} else {
		close(b.done) // no dispatcher to wait for
	}
	return b
}

// depth reports the current queue depth (0 in direct mode).
func (b *batcher) depth() int {
	if b.queue == nil {
		return 0
	}
	return len(b.queue)
}

// submit enqueues t and blocks until the dispatcher completes it.
// Returns t.err (nil on success). A full queue fails fast with
// *OverloadError; a draining batcher fails with the typed 503 error.
func (b *batcher) submit(t *task) error {
	if b.queue == nil {
		b.execDirect(t)
		return t.err
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return errDraining
	}
	select {
	case b.queue <- t:
		b.mu.RUnlock()
	default:
		depth := len(b.queue)
		b.mu.RUnlock()
		return &OverloadError{RetryAfter: b.retryAfter(depth), Depth: depth}
	}
	<-t.done
	return t.err
}

// retryAfter estimates when the backlog will have drained: queue depth
// over MaxBatch gives the batches ahead, times the recent per-batch
// cost, clamped to [1s, 60s] (whole seconds — HTTP Retry-After has no
// finer grain).
func (b *batcher) retryAfter(depth int) time.Duration {
	per := b.ewmaBatchNS.Load()
	if per <= 0 {
		per = int64(time.Millisecond)
	}
	batches := depth/b.cfg.MaxBatch + 1
	est := time.Duration(int64(batches) * per)
	secs := math.Ceil(est.Seconds())
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// close stops intake and waits for the dispatcher to drain every
// already-queued task. Safe to call once.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	if b.queue != nil {
		// No sender can be mid-send: Submit checks closed under the
		// read lock we now hold exclusively.
		close(b.queue)
	}
	b.mu.Unlock()
	<-b.done
}

// dispatch is the coalescing loop. Receiving from the closed queue
// yields the remaining buffered tasks first and ok=false only once
// empty, so shutdown naturally drains in-flight work.
func (b *batcher) dispatch() {
	defer close(b.done)
	var timer *time.Timer
	loaded := false // did the previous flush have company?
	pending := make([]*task, 0, b.cfg.MaxBatch)
	for {
		t, ok := <-b.queue
		if !ok {
			return
		}
		pending = append(pending[:0], t)

		// Greedy drain: take whatever is already waiting, no timer yet.
		closed := false
	greedy:
		for b.pendingQueries(pending) < b.cfg.MaxBatch {
			select {
			case t, ok := <-b.queue:
				if !ok {
					closed = true
					break greedy
				}
				pending = append(pending, t)
			default:
				break greedy
			}
		}

		// Adaptive fill: only a loaded server — company in this drain or
		// the previous flush — waits up to MaxWait for more; a lone
		// request on an idle server flushes immediately.
		if !closed && (len(pending) > 1 || loaded) && b.pendingQueries(pending) < b.cfg.MaxBatch {
			if timer == nil {
				timer = time.NewTimer(b.cfg.MaxWait)
			} else {
				timer.Reset(b.cfg.MaxWait)
			}
		fill:
			for b.pendingQueries(pending) < b.cfg.MaxBatch {
				select {
				case t, ok := <-b.queue:
					if !ok {
						break fill
					}
					pending = append(pending, t)
				case <-timer.C:
					break fill
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}

		b.flush(pending)
		loaded = len(pending) > 1
	}
}

// pendingQueries sums the queries across pending tasks — batches close
// on query count, not task count, since one request may carry several.
func (b *batcher) pendingQueries(pending []*task) int {
	n := 0
	for _, t := range pending {
		n += len(t.queries)
	}
	return n
}

// execDirect runs one task synchronously — the MaxBatch<=1 baseline
// path. Same kernels, no queue, no coalescing.
func (b *batcher) execDirect(t *task) {
	switch t.kind {
	case kindTopK:
		out := make([][]core.SearchResult, len(t.queries))
		if err := b.db.TopKBatchInto(t.queries, t.k, t.metric, out); err != nil {
			t.err = err
			return
		}
		t.hits = out
		b.met.observeBatch(len(t.queries))
	case kindClassify:
		lab := make([]string, len(t.queries))
		if err := b.db.ClassifyBatchInto(t.queries, t.k, t.metric, lab); err != nil {
			t.err = err
			return
		}
		t.labels = lab
		b.met.observeBatch(len(t.queries))
	}
}

// groupKey partitions pending tasks into kernel calls: tasks sharing
// kind, k, and metric coalesce into one batched call.
type groupKey struct {
	kind  reqKind
	k     int
	mname string
}

// flush executes the pending tasks. Tasks are grouped by (kind, k,
// metric); each group becomes one batched kernel call whose outputs are
// scattered back to the owning tasks. Every task's done channel is
// closed exactly once, success or error.
//
//fmeter:nondeterministic-ok serving telemetry: per-batch wall-clock feeds the Retry-After EWMA
func (b *batcher) flush(pending []*task) {
	start := time.Now()
	first := groupKey{kind: pending[0].kind, k: pending[0].k, mname: pending[0].metric.Name}
	uniform := true
	for _, t := range pending[1:] {
		if (groupKey{kind: t.kind, k: t.k, mname: t.metric.Name}) != first {
			uniform = false
			break
		}
	}
	if uniform {
		// The common case — every task wants the same kernel call — skips
		// the grouping map entirely; flushes happen tens of thousands of
		// times a second and the map allocation is measurable there.
		b.runGroup(first, pending)
	} else {
		// Group in first-seen order: stable, no map iteration over results.
		var keys []groupKey
		groups := make(map[groupKey][]*task, 2)
		for _, t := range pending {
			k := groupKey{kind: t.kind, k: t.k, mname: t.metric.Name}
			if _, seen := groups[k]; !seen {
				keys = append(keys, k)
			}
			groups[k] = append(groups[k], t)
		}
		for _, key := range keys {
			b.runGroup(key, groups[key])
		}
	}
	for _, t := range pending {
		close(t.done)
	}

	// EWMA (alpha 1/4) of per-batch wall time → Retry-After estimates.
	elapsed := time.Since(start).Nanoseconds()
	old := b.ewmaBatchNS.Load()
	if old == 0 {
		b.ewmaBatchNS.Store(elapsed)
	} else {
		b.ewmaBatchNS.Store(old + (elapsed-old)/4)
	}
}

// runGroup executes one batched kernel call for tasks sharing a group
// key and scatters the outputs back to the owning tasks. Does not close
// done channels — flush owns that.
func (b *batcher) runGroup(key groupKey, tasks []*task) {
	b.allQ = b.allQ[:0]
	for _, t := range tasks {
		b.allQ = append(b.allQ, t.queries...)
	}
	n := len(b.allQ)
	switch key.kind {
	case kindTopK:
		for len(b.allOut) < n {
			b.allOut = append(b.allOut, nil)
		}
		out := b.allOut[:n]
		err := b.db.TopKBatchInto(b.allQ, key.k, tasks[0].metric, out)
		off := 0
		for _, t := range tasks {
			if err != nil {
				t.err = err
			} else {
				t.hits = make([][]core.SearchResult, len(t.queries))
				copy(t.hits, out[off:off+len(t.queries)])
			}
			off += len(t.queries)
		}
		if err == nil {
			// The kernels reuse out[i] capacity on the next call;
			// the slice headers now belong to task responses, so
			// drop them from the scratch.
			for i := range out {
				out[i] = nil
			}
			b.samplePrune(b.allQ[0], key.k, tasks[0].metric)
		}
	case kindClassify:
		for len(b.allLab) < n {
			b.allLab = append(b.allLab, "")
		}
		lab := b.allLab[:n]
		err := b.db.ClassifyBatchInto(b.allQ, key.k, tasks[0].metric, lab)
		off := 0
		for _, t := range tasks {
			if err != nil {
				t.err = err
			} else {
				t.labels = make([]string, len(t.queries))
				copy(t.labels, lab[off:off+len(t.queries)])
			}
			off += len(t.queries)
		}
	}
	if n > 0 {
		b.met.observeBatch(n)
	}
}

// samplePrune re-runs one query of every PruneSampleEvery-th batched
// TopK call through TopKSparseStats to harvest pruning counters for
// /metrics. Results are bit-identical by the stats API's contract; only
// the counters are kept.
func (b *batcher) samplePrune(q *vecmath.Sparse, k int, metric core.Metric) {
	every := uint64(b.cfg.PruneSampleEvery)
	if every == 0 {
		return
	}
	if b.sampleTick.Add(1)%every != 0 {
		return
	}
	if _, st, err := b.db.TopKSparseStats(q, k, metric); err == nil {
		b.met.observePrune(st)
	}
}
