package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	wantSD := math.Sqrt(2.5)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, wantSD)
	}
	wantSEM := wantSD / math.Sqrt(5)
	if math.Abs(s.SEM-wantSEM) > 1e-12 {
		t.Errorf("SEM = %v, want %v", s.SEM, wantSEM)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("want error for empty sample")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.StdDev != 0 || s.SEM != 0 || s.Mean != 7 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestMeanStdDevSEM(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v", got)
	}
	if got := SEM(xs); math.Abs(got-StdDev(xs)/math.Sqrt(8)) > 1e-12 {
		t.Errorf("SEM = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || SEM(nil) != 0 {
		t.Error("empty-slice statistics should be 0")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty Median = %v", got)
	}
	// input not modified
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median modified its input")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tt := range []struct{ p, want float64 }{{0, 1}, {50, 3}, {100, 5}, {25, 2}} {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("want error for p > 100")
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1, 0); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewZipf(10, 0, 0); err == nil {
		t.Error("want error for s=0")
	}
	if _, err := NewZipf(10, 1, -1); err == nil {
		t.Error("want error for q<0")
	}
}

func TestZipfWeightsDecreaseAndSumToOne(t *testing.T) {
	z, err := NewZipf(100, 1.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	prev := math.Inf(1)
	for k := 0; k < 100; k++ {
		w := z.Weight(k)
		if w <= 0 {
			t.Fatalf("Weight(%d) = %v, want positive", k, w)
		}
		if w > prev+1e-15 {
			t.Fatalf("weights not monotone at rank %d: %v > %v", k, w, prev)
		}
		prev = w
		total += w
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", total)
	}
	if z.Weight(-1) != 0 || z.Weight(100) != 0 {
		t.Error("out-of-range weights should be 0")
	}
}

func TestZipfSamplingSkew(t *testing.T) {
	z, err := NewZipf(1000, 1.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	// Top rank should dominate: in a Zipf(1.1) over 1000 items, rank 0 has
	// far more mass than rank 100.
	if counts[0] < 10*counts[100] {
		t.Errorf("expected heavy skew: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	// Generate an exact power law count series: c * rank^-alpha.
	const alpha = 1.5
	counts := make([]float64, 500)
	for i := range counts {
		counts[i] = 1e6 * math.Pow(float64(i+1), -alpha)
	}
	fit, err := FitPowerLaw(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 1e-9 {
		t.Errorf("Alpha = %v, want %v", fit.Alpha, alpha)
	}
	if fit.R2 < 0.9999 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]float64{0, 0}); err == nil {
		t.Error("want error with no positive counts")
	}
	if _, err := FitPowerLaw([]float64{5}); err == nil {
		t.Error("want error with one point")
	}
}

func TestHistogram(t *testing.T) {
	bins, width, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if width != 1.8 {
		t.Errorf("width = %v", width)
	}
	total := 0
	for _, b := range bins {
		total += b
	}
	if total != 10 {
		t.Errorf("histogram lost samples: %v", bins)
	}
	// constant data lands in bin 0
	bins, _, err = Histogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bins[0] != 3 {
		t.Errorf("constant-data bins = %v", bins)
	}
	if _, _, err := Histogram(nil, 0); err == nil {
		t.Error("want error for 0 bins")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	Shuffle(r, idx)
	seen := make(map[int]bool)
	for _, i := range idx {
		seen[i] = true
	}
	if len(seen) != 8 {
		t.Errorf("Shuffle lost elements: %v", idx)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s, err := SampleWithoutReplacement(r, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	seen := make(map[int]bool)
	for _, i := range s {
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	if _, err := SampleWithoutReplacement(r, 3, 4); err == nil {
		t.Error("want error for k > n")
	}
}

// Property: SEM decreases as sample size grows (for iid noise).
func TestPropertySEMShrinks(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	small := make([]float64, 20)
	big := make([]float64, 2000)
	for i := range small {
		small[i] = r.NormFloat64()
	}
	for i := range big {
		big[i] = r.NormFloat64()
	}
	if SEM(big) >= SEM(small) {
		t.Errorf("SEM(big)=%v should be < SEM(small)=%v", SEM(big), SEM(small))
	}
}

// Property: summarize bounds hold — min <= mean <= max, sem <= stddev.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		xs := make([]float64, 2+rr.Intn(100))
		for i := range xs {
			xs[i] = rr.NormFloat64() * 100
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.SEM <= s.StdDev+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rr.Intn(50))
		for i := range xs {
			xs[i] = rr.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
