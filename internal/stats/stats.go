// Package stats provides the small statistical toolkit the reproduction
// relies on: summary statistics with standard error of the mean (every table
// in the paper reports mean ± SEM), Zipf/power-law sampling for the kernel
// function invocation distribution of Figure 1, and a least-squares
// power-law fit used to verify that simulated boot traces are heavy-tailed.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Summary holds the summary statistics reported throughout the paper's
// evaluation tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	SEM    float64 // standard error of the mean
	Min    float64
	Max    float64
}

// Summarize computes summary statistics over xs. It returns an error for an
// empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
		s.SEM = s.StdDev / math.Sqrt(float64(len(xs)))
	}
	return s, nil
}

// String renders the summary as "mean±sem" the way the paper's tables do.
func (s Summary) String() string {
	return fmt.Sprintf("%.3f±%.3f", s.Mean, s.SEM)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 when len < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// SEM returns the standard error of the mean of xs.
func SEM(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Median returns the median of xs (0 for an empty slice). The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0], nil
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo], nil
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// Zipf draws ranks from a Zipf-Mandelbrot-like distribution over n items
// with exponent s > 0: P(rank k) proportional to 1 / (k+q)^s. It is used to
// assign baseline invocation frequencies to simulated kernel functions,
// reproducing the heavy-tailed shape of Figure 1.
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf builds the sampler for n items, exponent s, and shift q (q >= 0).
func NewZipf(n int, s, q float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: Zipf n=%d must be positive", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("stats: Zipf exponent s=%v must be positive", s)
	}
	if q < 0 {
		return nil, fmt.Errorf("stats: Zipf shift q=%v must be non-negative", q)
	}
	z := &Zipf{n: n, cdf: make([]float64, n)}
	var total float64
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1)+q, s)
		z.cdf[k] = total
	}
	for k := range z.cdf {
		z.cdf[k] /= total
	}
	return z, nil
}

// Sample draws one rank in [0, n) using r.
func (z *Zipf) Sample(r *rand.Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.n {
		i = z.n - 1
	}
	return i
}

// Weight returns the (normalized) probability mass at rank k.
func (z *Zipf) Weight(k int) float64 {
	if k < 0 || k >= z.n {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// PowerLawFit is a least-squares fit of log(count) = log(c) - alpha*log(rank)
// over a rank/count series.
type PowerLawFit struct {
	Alpha float64 // fitted exponent (positive for a decaying power law)
	LogC  float64 // fitted intercept in log space
	R2    float64 // coefficient of determination in log-log space
}

// FitPowerLaw fits a power law to counts indexed by rank (rank = index + 1).
// Zero counts are skipped (log undefined). At least two positive counts are
// required.
func FitPowerLaw(counts []float64) (PowerLawFit, error) {
	var xs, ys []float64
	for i, c := range counts {
		if c > 0 {
			xs = append(xs, math.Log(float64(i+1)))
			ys = append(ys, math.Log(c))
		}
	}
	if len(xs) < 2 {
		return PowerLawFit{}, errors.New("stats: need at least two positive counts to fit a power law")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return PowerLawFit{}, errors.New("stats: degenerate rank axis")
	}
	slope := sxy / sxx
	fit := PowerLawFit{Alpha: -slope, LogC: my - slope*mx}
	if syy > 0 {
		// R^2 = 1 - SS_res / SS_tot.
		var ssRes float64
		for i := range xs {
			pred := fit.LogC + slope*xs[i]
			d := ys[i] - pred
			ssRes += d * d
		}
		fit.R2 = 1 - ssRes/syy
	}
	return fit, nil
}

// Histogram buckets xs into n equal-width bins over [min, max] and returns
// bin counts plus the bin width. Useful for inspecting signature weight
// distributions.
func Histogram(xs []float64, n int) (bins []int, width float64, err error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("stats: histogram bins n=%d must be positive", n)
	}
	if len(xs) == 0 {
		return make([]int, n), 0, nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	bins = make([]int, n)
	if hi == lo {
		bins[0] = len(xs)
		return bins, 0, nil
	}
	width = (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins, width, nil
}

// Shuffle permutes idx in place using r (Fisher-Yates). It exists so every
// permutation in the pipeline flows from an explicit seed.
func Shuffle(r *rand.Rand, idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// SampleWithoutReplacement returns k distinct indices drawn from [0, n)
// using r. It returns an error if k > n.
func SampleWithoutReplacement(r *rand.Rand, n, k int) ([]int, error) {
	if k > n {
		return nil, fmt.Errorf("stats: cannot sample %d from %d without replacement", k, n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	Shuffle(r, idx)
	return idx[:k], nil
}
