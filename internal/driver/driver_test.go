package driver

import (
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestVariantMetadata(t *testing.T) {
	if V151.Version() != "1.5.1" || V143.Version() != "1.4.3" || V151NoLRO.Version() != "1.5.1" {
		t.Error("version strings wrong")
	}
	if V151NoLRO.Params()["lro_disable"] != "1" {
		t.Error("LRO-disabled scenario must carry the load-time parameter")
	}
	if len(V151.Params()) != 0 {
		t.Error("default scenario should have no parameters")
	}
	if len(Variants()) != 3 {
		t.Error("Table 5 needs three scenarios")
	}
	if V151.String() == V151NoLRO.String() {
		t.Error("scenario labels must differ")
	}
}

func TestNewValidatesVariant(t *testing.T) {
	st := kernel.NewSymbolTable()
	if _, err := New(st, Variant(99)); err == nil {
		t.Error("unknown variant should fail")
	}
	for _, v := range Variants() {
		m, err := New(st, v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if m.Name != ModuleName {
			t.Errorf("module name = %s", m.Name)
		}
		if _, err := m.Op(OpRxMB); err != nil {
			t.Errorf("%s: missing rx op: %v", v, err)
		}
		if _, err := m.Op(OpTxMB); err != nil {
			t.Errorf("%s: missing tx op: %v", v, err)
		}
	}
}

// collectRx runs one netperf interval under a variant and returns the
// Fmeter snapshot.
func collectRx(t *testing.T, v Variant, seed int64) []uint64 {
	t.Helper()
	st := kernel.NewSymbolTable()
	cat, err := kernel.NewCatalog(st)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := trace.NewFmeter(st, 16)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := kernel.NewEngine(cat, kernel.EngineConfig{
		NumCPU: 16, Backend: fm, Seed: seed, CountJitter: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := New(st, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterModule(mod); err != nil {
		t.Fatal(err)
	}
	r, err := workload.NewRunner(eng, NetperfRx(16), seed+7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInterval(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return fm.Snapshot()
}

func TestVariantsShareSkeletonButDiffer(t *testing.T) {
	st := kernel.NewSymbolTable()
	lro := collectRx(t, V151, 1)
	nolro := collectRx(t, V151NoLRO, 2)
	old := collectRx(t, V143, 3)

	alloc := st.MustLookup("alloc_skb")
	if lro[alloc] == 0 || nolro[alloc] == 0 || old[alloc] == 0 {
		t.Fatal("per-segment skb allocation missing in some variant")
	}

	// LRO on: far fewer per-packet stack entries than LRO off.
	rcv := st.MustLookup("tcp_v4_rcv")
	if nolro[rcv] < lro[rcv]*5 {
		t.Errorf("LRO-off should multiply tcp_v4_rcv: lro=%d nolro=%d", lro[rcv], nolro[rcv])
	}
	// LRO helpers only appear with LRO on.
	lroFn := st.MustLookup("lro_receive_skb_op")
	if lro[lroFn] == 0 {
		t.Error("LRO path should call lro_receive_skb")
	}
	if nolro[lroFn] != 0 || old[lroFn] != 0 {
		t.Error("non-LRO variants must not call lro_receive_skb")
	}
	// Legacy driver: netif_rx + per-segment checksum, absent elsewhere.
	legacy := st.MustLookup("netif_rx_op")
	if old[legacy] == 0 {
		t.Error("1.4.3 should use the legacy netif_rx path")
	}
	if lro[legacy] != 0 || nolro[legacy] != 0 {
		t.Error("1.5.1 variants must not use netif_rx")
	}
	cksum := st.MustLookup("skb_checksum")
	if old[cksum] < nolro[cksum] {
		t.Error("1.4.3 should checksum more than 1.5.1")
	}
}

func TestNetperfSpecIncludesDriverAndBackground(t *testing.T) {
	spec := NetperfRx(16)
	var hasModule, hasDaemon bool
	for _, or := range spec.Ops {
		if or.Module == ModuleName && or.Op == OpRxMB {
			hasModule = true
		}
		if or.Op == kernel.OpDaemonLog {
			hasDaemon = true
		}
	}
	if !hasModule {
		t.Error("netperf workload must drive the driver module")
	}
	if !hasDaemon {
		t.Error("netperf workload must include the logging daemon background")
	}
}
