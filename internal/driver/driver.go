// Package driver simulates the myri10ge Myri-10G NIC driver used in the
// paper's subtle-behaviour experiment (§4.2.1, Table 5). The driver lives
// in a runtime-loadable module, which Fmeter does not instrument: none of
// the driver's own functions exist in the signature space, and the three
// variants are distinguishable only through the core-kernel functions
// their receive paths invoke.
//
// The three monitored scenarios match the paper:
//
//   - version 1.5.1, default parameters (LRO on) — the "normal" baseline;
//   - version 1.4.3, default parameters — an older driver (24 functions
//     altered, one removed, 11 added per the paper's objdump diff), whose
//     receive path uses the older netif_rx interface and per-packet
//     checksumming;
//   - version 1.5.1 with large receive offload disabled — the same code
//     delivering every packet individually to the stack, the paper's
//     stand-in for a maliciously loaded module that increases DDoS
//     propensity.
package driver

import (
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/workload"
)

// ModuleName is the loadable module's name.
const ModuleName = "myri10ge"

// Module entry points.
const (
	// OpRxMB is the receive path for 1 MB of TCP stream traffic
	// (~690 MTU-sized segments), including interrupt and NAPI work.
	OpRxMB = "rx_mb"
	// OpTxMB is the transmit path for 1 MB (used by bidirectional tests).
	OpTxMB = "tx_mb"
)

// Variant selects one of the paper's three monitored driver scenarios.
type Variant int

// The three scenarios of Table 5.
const (
	V151      Variant = iota + 1 // 1.5.1, default parameters (LRO on)
	V143                         // 1.4.3, default parameters
	V151NoLRO                    // 1.5.1, load-time parameter lro_disable=1
)

// String returns the scenario label used in Table 5.
func (v Variant) String() string {
	switch v {
	case V151:
		return "myri10ge 1.5.1"
	case V143:
		return "myri10ge 1.4.3"
	case V151NoLRO:
		return "myri10ge 1.5.1 LRO disabled"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Version returns the driver version string.
func (v Variant) Version() string {
	if v == V143 {
		return "1.4.3"
	}
	return "1.5.1"
}

// Params returns the load-time parameters of the scenario.
func (v Variant) Params() map[string]string {
	if v == V151NoLRO {
		return map[string]string{"lro_disable": "1"}
	}
	return map[string]string{}
}

// Variants lists all three scenarios in Table 5 order.
func Variants() []Variant { return []Variant{V143, V151, V151NoLRO} }

// Per-MB traffic constants: ~690 MTU segments per MB, LRO aggregating ~10
// segments into one super-packet.
const (
	segmentsPerMB = 690
	lroAggregate  = 10
)

// rxProfile builds the per-MB core-kernel call profile of a variant's
// receive path. The shared skeleton (skb allocation, DMA unmap, IRQ/NAPI
// dispatch, socket delivery) is identical across variants; the stack entry
// path differs:
//
//   - V151 delivers lroAggregate-merged super-packets through the LRO
//     helpers, so per-packet stack calls collapse by ~10x;
//   - V151NoLRO delivers every segment through netif_receive_skb;
//   - V143 also delivers per segment but through the legacy netif_rx
//     path with software checksumming and occasional head expansion.
func rxProfile(v Variant) (map[string]float64, float64) {
	segs := float64(segmentsPerMB)
	prof := map[string]float64{
		// Per-segment work common to all variants.
		"alloc_skb":           segs,
		"__alloc_skb":         segs,
		"eth_type_trans":      segs,
		"dma_unmap_single_op": segs,
		"skb_put_op":          segs,
		"kfree_skb":           segs,
		"__kfree_skb":         segs,
		"skb_release_data":    segs,
		"kmem_cache_alloc":    segs * 1.2,
		"kmem_cache_free":     segs * 1.2,
		// Interrupt/NAPI dispatch: interrupt coalescing at ~8 IRQs/MB.
		"do_IRQ":               90,
		"handle_irq_event":     90,
		"irq_enter":            90,
		"irq_exit":             90,
		"__napi_schedule":      90,
		"napi_schedule_op":     90,
		"napi_complete_op":     90,
		"net_rx_action":        90,
		"do_softirq":           90,
		"__do_softirq":         90,
		"raise_softirq_irqoff": 90,
		// Socket delivery to the netserver process.
		"sock_recvmsg":            40,
		"tcp_recvmsg":             40,
		"skb_copy_datagram_iovec": 70,
		"copy_to_user_op":         260,
		"lock_sock_nested":        80,
		"release_sock":            80,
		"sock_def_readable":       70,
		"tcp_rcv_space_adjust":    40,
		"schedule":                60,
		"__schedule":              60,
		"context_switch":          60,
		"try_to_wake_up":          60,
		"_spin_lock":              segs * 0.8,
		"_spin_unlock":            segs * 0.8,
		"_spin_lock_irqsave":      180,
		"_spin_unlock_irqrestore": 180,
		"_spin_lock_bh":           120,
		"_spin_unlock_bh":         120,
		"ktime_get":               90,
	}
	addStack := func(perPkt float64) {
		prof["ip_rcv"] += perPkt
		prof["ip_rcv_finish"] += perPkt
		prof["ip_local_deliver"] += perPkt
		prof["ip_route_input"] += perPkt * 0.1
		prof["tcp_v4_rcv"] += perPkt
		prof["tcp_v4_do_rcv"] += perPkt
		prof["tcp_rcv_established"] += perPkt
		prof["tcp_event_data_recv"] += perPkt
		prof["tcp_data_queue"] += perPkt * 0.6
		prof["tcp_ack"] += perPkt * 0.5
		prof["tcp_send_ack"] += perPkt * 0.5
		prof["tcp_parse_options"] += perPkt
	}
	switch v {
	case V151:
		// LRO path: per-segment LRO helpers, per-aggregate stack entry.
		aggs := segs / lroAggregate
		prof["lro_receive_skb_op"] = segs
		prof["lro_flush_all_op"] = 25
		prof["skb_gro_receive"] = segs - aggs // merge operations
		prof["netif_receive_skb"] = aggs
		prof["pskb_expand_head"] = aggs * 0.2
		addStack(aggs)
	case V151NoLRO:
		// Same driver, LRO disabled: every segment enters the stack.
		prof["netif_receive_skb"] = segs
		addStack(segs)
	case V143:
		// Legacy path: netif_rx + backlog softirq, software checksum on
		// every segment, occasional header reassembly.
		prof["netif_rx_op"] = segs
		prof["process_backlog"] = segs
		prof["netif_receive_skb"] = segs // backlog delivers via the same entry
		prof["skb_checksum"] = segs
		prof["csum_partial_copy_generic_op"] = segs * 0.4
		prof["pskb_expand_head"] = segs * 0.15
		prof["skb_pull_op"] = segs
		addStack(segs)
	}
	var total float64
	for _, w := range prof {
		total += w
	}
	return prof, total
}

// txProfile is the transmit-side per-MB profile, shared by all variants
// (the paper's experiment only varies the receive path).
func txProfile() (map[string]float64, float64) {
	prof := map[string]float64{
		"tcp_sendmsg":                  45,
		"tcp_write_xmit":               700,
		"tcp_transmit_skb":             700,
		"ip_queue_xmit":                700,
		"ip_output":                    700,
		"ip_finish_output":             700,
		"dev_queue_xmit":               700,
		"dev_hard_start_xmit":          700,
		"alloc_skb":                    700,
		"__alloc_skb":                  700,
		"kfree_skb":                    700,
		"__kfree_skb":                  700,
		"dma_map_single_op":            700,
		"csum_partial_copy_generic_op": 700,
		"_spin_lock_bh":                200,
		"_spin_unlock_bh":              200,
		"kmem_cache_alloc":             800,
		"kmem_cache_free":              800,
	}
	var total float64
	for _, w := range prof {
		total += w
	}
	return prof, total
}

// New compiles the driver module for a scenario against the core-kernel
// symbol table. The module's own call count (ModuleCalls) is the
// per-segment driver-internal work — poll loop, descriptor recycling,
// (for 1.5.1) myri10ge_select_queue — which costs time but is invisible to
// the tracer.
func New(st *kernel.SymbolTable, v Variant) (*kernel.Module, error) {
	switch v {
	case V151, V143, V151NoLRO:
	default:
		return nil, fmt.Errorf("driver: unknown variant %d", int(v))
	}
	rxProf, rxCalls := rxProfile(v)
	txProf, txCalls := txProfile()
	moduleCallsPerMB := float64(segmentsPerMB) * 4 // poll/refill/cleanup per segment
	if v == V143 {
		moduleCallsPerMB = float64(segmentsPerMB) * 4.5 // extra frag-header handling
	}
	// At 10 Gbps line rate 1 MB passes in ~0.84 ms; the rx path's kernel
	// cost must fit inside it on the vanilla kernel.
	specs := []kernel.ModuleOpSpec{
		{
			Name: OpRxMB, BaseUS: 520, CoreCalls: rxCalls,
			ModuleCalls: moduleCallsPerMB, CoreProfile: rxProf,
		},
		{
			Name: OpTxMB, BaseUS: 300, CoreCalls: txCalls,
			ModuleCalls: moduleCallsPerMB * 0.5, CoreProfile: txProf,
		},
	}
	return kernel.NewModule(st, ModuleName, v.Version(), v.Params(), specs)
}

// NetperfRx is the paper's Netperf TCP stream workload on the receiver
// machine: the instrumented kernel receives a 10 Gbps stream (~1250 MB/s)
// through the loaded driver variant. The variant is implicit — it is
// whatever module instance is registered with the engine.
func NetperfRx(numCPU int) workload.Spec {
	return workload.Spec{
		Name: "netperf",
		Ops: append([]workload.OpRate{
			{Module: ModuleName, Op: OpRxMB, PerSec: 1250},
			{Op: kernel.OpTCPTxSegment, PerSec: 6000, Jitter: 0.15}, // ACK stream
			{Op: kernel.OpSelect10TCP, PerSec: 300, Jitter: 0.25},
			{Op: kernel.OpCtxSwitch, PerSec: 2000, Jitter: 0.15},
		}, workload.Background(numCPU, 10)...),
		UserPerSec: 300 * time.Millisecond, // netserver's modest user time
	}
}
