package svm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/vecmath"
)

// MultiClass is a one-vs-rest ensemble of binary SVMs: one classifier per
// class, prediction by highest decision score. The paper's experiments are
// binary groupings ("our classifier expects only two distinct classes");
// this is the standard reduction for the three-workload setting the paper
// enumerates pairwise.
type MultiClass struct {
	classes []string
	models  []*Model
}

// TrainOneVsRest fits one binary SVM per distinct label (that label +1,
// the rest -1). Labels must contain at least two distinct classes.
func TrainOneVsRest(x []vecmath.Vector, labels []string, cfg Config) (*MultiClass, error) {
	if len(x) != len(labels) {
		return nil, fmt.Errorf("svm: %d examples vs %d labels", len(x), len(labels))
	}
	if len(x) == 0 {
		return nil, errors.New("svm: empty training set")
	}
	seen := make(map[string]bool)
	var classes []string
	for _, l := range labels {
		if l == "" {
			return nil, errors.New("svm: empty label in training set")
		}
		if !seen[l] {
			seen[l] = true
			classes = append(classes, l)
		}
	}
	sort.Strings(classes)
	if len(classes) < 2 {
		return nil, fmt.Errorf("svm: need >= 2 classes, have %d", len(classes))
	}
	// The per-class problems share one training set; for dot-product
	// kernels convert it to sparse once up front instead of once per
	// class (bit-identical models either way — Train is TrainSparse
	// after the same conversion).
	kern := cfg.Kernel
	if kern == nil {
		kern = DefaultPolynomial()
	}
	var sx []*vecmath.Sparse
	if _, ok := kern.(DotKernel); ok {
		sx = make([]*vecmath.Sparse, len(x))
		parallel.Chunks(cfg.Workers, len(x), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sx[i] = vecmath.DenseToSparse(x[i])
			}
		})
	}
	// One independent binary problem per class: each carries its own seed
	// (cfg.Seed + class index), so the ensemble is identical whether the
	// per-class trainings run sequentially or fanned out. The fan-out
	// lives at the class level; each training's gram build stays
	// sequential so the goroutine count is bounded by the class count.
	models, err := parallel.Map(cfg.Workers, len(classes), func(ci int) (*Model, error) {
		cls := classes[ci]
		y := make([]float64, len(labels))
		for i, l := range labels {
			if l == cls {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		c := cfg
		c.Kernel = kern
		c.Seed = cfg.Seed + int64(ci)
		c.Workers = -1
		var m *Model
		var err error
		if sx != nil {
			m, err = TrainSparse(sx, y, c)
		} else {
			m, err = Train(x, y, c)
		}
		if err != nil {
			return nil, fmt.Errorf("svm: class %q: %w", cls, err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	return &MultiClass{classes: classes, models: models}, nil
}

// Classes returns the class labels in training order (sorted).
func (mc *MultiClass) Classes() []string {
	out := make([]string, len(mc.classes))
	copy(out, mc.classes)
	return out
}

// queryOf sparsifies a query once for scoring against every class model
// (all models share the kernel, so either all or none want the sparse
// form).
func (mc *MultiClass) queryOf(x vecmath.Vector) *vecmath.Sparse {
	if mc.models[0].dotK != nil && mc.models[0].svSparse != nil {
		return vecmath.DenseToSparse(x)
	}
	return nil
}

// Decisions returns each class's decision score for x, parallel to
// Classes(). The query is sparsified once, not once per class model.
func (mc *MultiClass) Decisions(x vecmath.Vector) []float64 {
	q := mc.queryOf(x)
	out := make([]float64, len(mc.models))
	for i, m := range mc.models {
		if q != nil {
			out[i] = m.DecisionSparse(q)
		} else {
			out[i] = m.Decision(x)
		}
	}
	return out
}

// Predict returns the class with the highest decision score.
func (mc *MultiClass) Predict(x vecmath.Vector) string {
	scores := mc.Decisions(x)
	best := 0
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[best] {
			best = i
		}
	}
	return mc.classes[best]
}

// Accuracy scores the ensemble on a labeled set.
func (mc *MultiClass) Accuracy(x []vecmath.Vector, labels []string) (float64, error) {
	if len(x) != len(labels) {
		return 0, fmt.Errorf("svm: %d examples vs %d labels", len(x), len(labels))
	}
	if len(x) == 0 {
		return 0, errors.New("svm: empty evaluation set")
	}
	correct := 0
	for i := range x {
		if mc.Predict(x[i]) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x)), nil
}
