package svm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/vecmath"
)

// MultiClass is a one-vs-rest ensemble of binary SVMs: one classifier per
// class, prediction by highest decision score. The paper's experiments are
// binary groupings ("our classifier expects only two distinct classes");
// this is the standard reduction for the three-workload setting the paper
// enumerates pairwise.
type MultiClass struct {
	classes []string
	models  []*Model
}

// TrainOneVsRest fits one binary SVM per distinct label (that label +1,
// the rest -1). Labels must contain at least two distinct classes.
func TrainOneVsRest(x []vecmath.Vector, labels []string, cfg Config) (*MultiClass, error) {
	if len(x) != len(labels) {
		return nil, fmt.Errorf("svm: %d examples vs %d labels", len(x), len(labels))
	}
	if len(x) == 0 {
		return nil, errors.New("svm: empty training set")
	}
	seen := make(map[string]bool)
	var classes []string
	for _, l := range labels {
		if l == "" {
			return nil, errors.New("svm: empty label in training set")
		}
		if !seen[l] {
			seen[l] = true
			classes = append(classes, l)
		}
	}
	sort.Strings(classes)
	if len(classes) < 2 {
		return nil, fmt.Errorf("svm: need >= 2 classes, have %d", len(classes))
	}
	// One independent binary problem per class: each carries its own seed
	// (cfg.Seed + class index), so the ensemble is identical whether the
	// per-class trainings run sequentially or fanned out. The fan-out
	// lives at the class level; each training's gram build stays
	// sequential so the goroutine count is bounded by the class count.
	models, err := parallel.Map(cfg.Workers, len(classes), func(ci int) (*Model, error) {
		cls := classes[ci]
		y := make([]float64, len(labels))
		for i, l := range labels {
			if l == cls {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		c := cfg
		c.Seed = cfg.Seed + int64(ci)
		c.Workers = -1
		m, err := Train(x, y, c)
		if err != nil {
			return nil, fmt.Errorf("svm: class %q: %w", cls, err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	return &MultiClass{classes: classes, models: models}, nil
}

// Classes returns the class labels in training order (sorted).
func (mc *MultiClass) Classes() []string {
	out := make([]string, len(mc.classes))
	copy(out, mc.classes)
	return out
}

// Decisions returns each class's decision score for x, parallel to
// Classes().
func (mc *MultiClass) Decisions(x vecmath.Vector) []float64 {
	out := make([]float64, len(mc.models))
	for i, m := range mc.models {
		out[i] = m.Decision(x)
	}
	return out
}

// Predict returns the class with the highest decision score.
func (mc *MultiClass) Predict(x vecmath.Vector) string {
	best, bestScore := 0, mc.models[0].Decision(x)
	for i := 1; i < len(mc.models); i++ {
		if s := mc.models[i].Decision(x); s > bestScore {
			best, bestScore = i, s
		}
	}
	return mc.classes[best]
}

// Accuracy scores the ensemble on a labeled set.
func (mc *MultiClass) Accuracy(x []vecmath.Vector, labels []string) (float64, error) {
	if len(x) != len(labels) {
		return 0, fmt.Errorf("svm: %d examples vs %d labels", len(x), len(labels))
	}
	if len(x) == 0 {
		return 0, errors.New("svm: empty evaluation set")
	}
	correct := 0
	for i := range x {
		if mc.Predict(x[i]) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x)), nil
}
