package svm

import (
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// threeClassData builds three separable clouds in 10 dims.
func threeClassData(n int, seed int64) ([]vecmath.Vector, []string) {
	r := rand.New(rand.NewSource(seed))
	centers := map[string][]int{"scp": {0, 1}, "kcompile": {4, 5}, "dbench": {8, 9}}
	var x []vecmath.Vector
	var labels []string
	names := []string{"scp", "kcompile", "dbench"}
	for i := 0; i < n; i++ {
		cls := names[i%3]
		v := vecmath.NewVector(10)
		for _, h := range centers[cls] {
			v[h] = 0.7 + 0.05*r.NormFloat64()
		}
		v[r.Intn(10)] += 0.05 * r.Float64()
		x = append(x, v.Normalize())
		labels = append(labels, cls)
	}
	return x, labels
}

func TestOneVsRestValidation(t *testing.T) {
	x, labels := threeClassData(9, 1)
	if _, err := TrainOneVsRest(x, labels[:3], Config{C: 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := TrainOneVsRest(nil, nil, Config{C: 1}); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := TrainOneVsRest(x[:3], []string{"a", "a", "a"}, Config{C: 1}); err == nil {
		t.Error("single class should fail")
	}
	if _, err := TrainOneVsRest(x[:2], []string{"a", ""}, Config{C: 1}); err == nil {
		t.Error("empty label should fail")
	}
}

func TestOneVsRestSeparatesThreeClasses(t *testing.T) {
	x, labels := threeClassData(90, 2)
	mc, err := TrainOneVsRest(x, labels, Config{C: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := mc.Accuracy(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("training accuracy = %v", acc)
	}
	classes := mc.Classes()
	if len(classes) != 3 || classes[0] != "dbench" || classes[1] != "kcompile" || classes[2] != "scp" {
		t.Errorf("Classes = %v (want sorted)", classes)
	}
	if len(mc.Decisions(x[0])) != 3 {
		t.Error("Decisions should be parallel to Classes")
	}
}

func TestOneVsRestGeneralizes(t *testing.T) {
	trainX, trainL := threeClassData(120, 4)
	testX, testL := threeClassData(30, 5)
	mc, err := TrainOneVsRest(trainX, trainL, Config{C: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := mc.Accuracy(testX, testL)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("held-out accuracy = %v", acc)
	}
	if _, err := mc.Accuracy(testX, testL[:2]); err == nil {
		t.Error("accuracy length mismatch should fail")
	}
	if _, err := mc.Accuracy(nil, nil); err == nil {
		t.Error("empty evaluation should fail")
	}
}
