// Package svm implements a soft-margin support vector machine trained with
// sequential minimal optimization (SMO). It is the supervised learner of
// the paper's §4.2.1 evaluation, standing in for SVM^light (Joachims):
// Vapnik's SVM with a polynomial kernel by default and the training-error/
// margin trade-off exposed as the C parameter, which the paper tunes on
// the validation folds.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/vecmath"
)

// Kernel is an SVM kernel function (not to be confused with the operating
// system kernel whose functions Fmeter counts — the paper makes the same
// disclaimer).
type Kernel interface {
	// Name identifies the kernel in reports.
	Name() string
	// Eval computes K(x, y).
	Eval(x, y vecmath.Vector) float64
}

// DotKernel is a kernel that is a pure function of the inner product
// x·y. Training and prediction exploit this: the dot product is computed
// from the sparse signature forms in O(nnz), and EvalDot is bit-identical
// to Eval because the sparse dot accumulates in the same index order as
// the dense loop. Linear and Polynomial implement it; RBF does not (it
// depends on the distance, whose sparse form is not bit-exact).
type DotKernel interface {
	Kernel
	// EvalDot computes K(x, y) given dot = x·y.
	EvalDot(dot float64) float64
}

// Linear is the linear kernel K(x,y) = x·y.
type Linear struct{}

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// Eval implements Kernel.
func (Linear) Eval(x, y vecmath.Vector) float64 { return x.MustDot(y) }

// EvalDot implements DotKernel.
func (Linear) EvalDot(dot float64) float64 { return dot }

// Polynomial is K(x,y) = (gamma*x·y + coef0)^degree — SVM^light's default
// kernel family ("we simply set the SVM's kernel parameter to the default
// polynomial function").
type Polynomial struct {
	Degree int
	Gamma  float64
	Coef0  float64
}

// DefaultPolynomial returns the degree-3 polynomial kernel with gamma=1,
// coef0=1, mirroring SVM^light's -t 1 defaults.
func DefaultPolynomial() Polynomial {
	return Polynomial{Degree: 3, Gamma: 1, Coef0: 1}
}

// Name implements Kernel.
func (p Polynomial) Name() string {
	return fmt.Sprintf("poly(d=%d,g=%g,c=%g)", p.Degree, p.Gamma, p.Coef0)
}

// Eval implements Kernel.
func (p Polynomial) Eval(x, y vecmath.Vector) float64 {
	return p.EvalDot(x.MustDot(y))
}

// EvalDot implements DotKernel.
func (p Polynomial) EvalDot(dot float64) float64 {
	base := p.Gamma*dot + p.Coef0
	out := 1.0
	for i := 0; i < p.Degree; i++ {
		out *= base
	}
	return out
}

// RBF is the Gaussian kernel K(x,y) = exp(-gamma*||x-y||^2).
type RBF struct {
	Gamma float64
}

// Name implements Kernel.
func (r RBF) Name() string { return fmt.Sprintf("rbf(g=%g)", r.Gamma) }

// Eval implements Kernel.
func (r RBF) Eval(x, y vecmath.Vector) float64 {
	var d2 float64
	for i := range x {
		d := x[i] - y[i]
		d2 += d * d
	}
	return math.Exp(-r.Gamma * d2)
}

// Config controls training.
type Config struct {
	// C is the soft-margin trade-off between training error and margin.
	C float64
	// Kernel defaults to DefaultPolynomial when nil.
	Kernel Kernel
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of consecutive full passes without an
	// update before SMO declares convergence (default 5).
	MaxPasses int
	// MaxIter caps total passes as a safety valve (default 1000).
	MaxIter int
	// Seed drives the SMO partner-selection randomness.
	Seed int64
	// Workers bounds the fan-out of the kernel-matrix build (0 = one per
	// CPU, <0 = sequential). The gram matrix is identical at any worker
	// count: each row is an independent pure computation.
	Workers int
}

func (c *Config) fillDefaults() {
	if c.Kernel == nil {
		c.Kernel = DefaultPolynomial()
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 5
	}
	if c.MaxIter == 0 {
		c.MaxIter = 1000
	}
}

// Model is a trained SVM.
type Model struct {
	kernel   Kernel
	dotK     DotKernel         // non-nil iff kernel is dot-product based
	svs      []vecmath.Vector  // support vectors; nil for sparse-trained dot-kernel models
	svSparse []*vecmath.Sparse // sparse forms, kept when dotK != nil
	svCoef   []float64         // alpha_i * y_i for each support vector
	b        float64
	trained  int // training set size, for reporting
}

// validateTraining checks the shared training contract of Train and
// TrainSparse — non-empty set, ±1 labels with both classes present,
// positive C, and dimension agreement (dimAt returning a negative value
// marks a nil example).
func validateTraining(n int, y []float64, c float64, dimAt func(int) int) error {
	if n == 0 {
		return errors.New("svm: empty training set")
	}
	if n != len(y) {
		return fmt.Errorf("svm: %d examples but %d labels", n, len(y))
	}
	if c <= 0 {
		return fmt.Errorf("svm: C=%v must be positive", c)
	}
	var hasPos, hasNeg bool
	for i, yy := range y {
		switch yy {
		case 1:
			hasPos = true
		case -1:
			hasNeg = true
		default:
			return fmt.Errorf("svm: label %v at %d; want +1 or -1", yy, i)
		}
	}
	if !hasPos || !hasNeg {
		return errors.New("svm: training set needs both classes")
	}
	dim := dimAt(0)
	for i := 0; i < n; i++ {
		switch d := dimAt(i); {
		case d < 0:
			return fmt.Errorf("svm: example %d is nil", i)
		case d != dim:
			return fmt.Errorf("svm: example %d has dimension %d, want %d", i, d, dim)
		}
	}
	return nil
}

// Train fits a binary SVM on dense examples x with labels y in {+1, -1}
// using SMO (Platt 1998, in the simplified variant with random
// second-choice heuristics and a full kernel cache). For dot-product
// kernels the examples are sparsified once and training proceeds exactly
// as TrainSparse — the two entry points produce bit-identical models for
// equal inputs.
func Train(x []vecmath.Vector, y []float64, cfg Config) (*Model, error) {
	if err := validateTraining(len(x), y, cfg.C, func(i int) int { return x[i].Dim() }); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	dotK, _ := cfg.Kernel.(DotKernel)
	var sx []*vecmath.Sparse
	if dotK != nil {
		sx = make([]*vecmath.Sparse, len(x))
		parallel.Chunks(cfg.Workers, len(x), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sx[i] = vecmath.DenseToSparse(x[i])
			}
		})
	}
	return train(x, sx, y, cfg, dotK)
}

// TrainSparse fits a binary SVM directly on canonical sparse signatures —
// the native path for sparse-first callers. Dot-product kernels (the
// paper's default) never materialize a dense vector; other kernels
// materialize dense views once up front.
func TrainSparse(sx []*vecmath.Sparse, y []float64, cfg Config) (*Model, error) {
	err := validateTraining(len(sx), y, cfg.C, func(i int) int {
		if sx[i] == nil {
			return -1
		}
		return sx[i].Dim()
	})
	if err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	dotK, _ := cfg.Kernel.(DotKernel)
	var x []vecmath.Vector
	if dotK == nil {
		x = make([]vecmath.Vector, len(sx))
		parallel.Chunks(cfg.Workers, len(sx), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[i] = sx[i].Dense()
			}
		})
	}
	return train(x, sx, y, cfg, dotK)
}

// train runs SMO over whichever representation the kernel needs: sx for
// dot-product kernels (x may be nil), x otherwise.
func train(x []vecmath.Vector, sx []*vecmath.Sparse, y []float64, cfg Config, dotK DotKernel) (*Model, error) {
	n := len(y)
	// Full kernel matrix cache: the paper's corpora are a few hundred
	// signatures, so O(n^2) memory is the right trade. Rows are filled in
	// parallel (each goroutine writes only its own rows) and, for
	// dot-product kernels, entries come from sparse dots — both identical
	// to the sequential dense build bit for bit.
	kmat := make([][]float64, n)
	for i := range kmat {
		kmat[i] = make([]float64, n)
	}
	_ = parallel.For(cfg.Workers, n, func(i int) error {
		if dotK != nil {
			for j := i; j < n; j++ {
				kmat[i][j] = dotK.EvalDot(sx[i].Dot(sx[j]))
			}
		} else {
			for j := i; j < n; j++ {
				kmat[i][j] = cfg.Kernel.Eval(x[i], x[j])
			}
		}
		return nil
	})
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			kmat[i][j] = kmat[j][i]
		}
	}

	alpha := make([]float64, n)
	b := 0.0
	rng := rand.New(rand.NewSource(cfg.Seed))

	// decision(i) - y_i using current alphas.
	errFor := func(i int) float64 {
		s := -b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * y[j] * kmat[i][j]
			}
		}
		return s - y[i]
	}

	passes, iter := 0, 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		changed := 0
		for i := 0; i < n; i++ {
			ei := errFor(i)
			if !((y[i]*ei < -cfg.Tol && alpha[i] < cfg.C) || (y[i]*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := errFor(j)

			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cfg.C)
				hi = math.Min(cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*kmat[i][j] - kmat[i][i] - kmat[j][j]
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-7 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)
			alpha[i], alpha[j] = aiNew, ajNew

			b1 := b + ei + y[i]*(aiNew-ai)*kmat[i][i] + y[j]*(ajNew-aj)*kmat[i][j]
			b2 := b + ej + y[i]*(aiNew-ai)*kmat[i][j] + y[j]*(ajNew-aj)*kmat[j][j]
			switch {
			case aiNew > 0 && aiNew < cfg.C:
				b = b1
			case ajNew > 0 && ajNew < cfg.C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
		iter++
	}

	m := &Model{kernel: cfg.Kernel, dotK: dotK, b: b, trained: n}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-10 {
			if x != nil {
				m.svs = append(m.svs, x[i])
			}
			m.svCoef = append(m.svCoef, alpha[i]*y[i])
			if dotK != nil {
				m.svSparse = append(m.svSparse, sx[i])
			}
		}
	}
	if len(m.svCoef) == 0 {
		return nil, errors.New("svm: optimization produced no support vectors")
	}
	return m, nil
}

// Decision returns the signed distance-like score Σ α_i y_i K(sv_i, x) - b.
// For dot-product kernels the query is sparsified once and scored against
// the cached sparse support vectors in O(dim + Σ nnz) instead of
// O(|SV| × dim); the sparse dots are bit-identical to the dense ones.
func (m *Model) Decision(x vecmath.Vector) float64 {
	if m.dotK != nil && m.svSparse != nil {
		return m.DecisionSparse(vecmath.DenseToSparse(x))
	}
	s := -m.b
	for i, sv := range m.svs {
		s += m.svCoef[i] * m.kernel.Eval(sv, x)
	}
	return s
}

// DecisionSparse scores a query already in canonical sparse form — the
// native path for sparse-first signatures, skipping the per-query
// sparsification Decision pays. Bit-identical to Decision of the
// equivalent dense vector.
func (m *Model) DecisionSparse(q *vecmath.Sparse) float64 {
	if m.dotK == nil || m.svSparse == nil {
		return m.Decision(q.Dense())
	}
	s := -m.b
	for i, sv := range m.svSparse {
		s += m.svCoef[i] * m.dotK.EvalDot(sv.Dot(q))
	}
	return s
}

// Predict returns +1 or -1 for x (0 decision scores map to +1).
func (m *Model) Predict(x vecmath.Vector) float64 {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// PredictSparse is Predict for a query in canonical sparse form.
func (m *Model) PredictSparse(q *vecmath.Sparse) float64 {
	if m.DecisionSparse(q) >= 0 {
		return 1
	}
	return -1
}

// DecisionBatch scores a batch of sparse queries, fanning the per-query
// kernel-row computations out over the worker pool (parallel.Workers
// semantics). Each query's score is an independent pure computation, so
// the result is bit-identical at any worker count, and equals calling
// DecisionSparse per query.
func (m *Model) DecisionBatch(qs []*vecmath.Sparse, workers int) []float64 {
	out := make([]float64, len(qs))
	parallel.Chunks(workers, len(qs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.DecisionSparse(qs[i])
		}
	})
	return out
}

// PredictBatch labels a batch of sparse queries (+1/-1), batching like
// DecisionBatch.
func (m *Model) PredictBatch(qs []*vecmath.Sparse, workers int) []float64 {
	out := m.DecisionBatch(qs, workers)
	for i, s := range out {
		if s >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// PredictBatchDense is PredictBatch for dense queries: sparsification is
// folded into the same fan-out, so a caller holding dense vectors still
// amortizes the conversion across workers.
func (m *Model) PredictBatchDense(xs []vecmath.Vector, workers int) []float64 {
	out := make([]float64, len(xs))
	parallel.Chunks(workers, len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Predict(xs[i])
		}
	})
	return out
}

// NumSV returns the number of support vectors.
func (m *Model) NumSV() int { return len(m.svCoef) }

// TrainingSize returns the size of the training set the model was fit on.
func (m *Model) TrainingSize() int { return m.trained }
