package svm

import (
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// twoClassData builds a linearly-separable-ish sparse dataset.
func twoClassData(n, dim int, seed int64) ([]vecmath.Vector, []float64, []string) {
	r := rand.New(rand.NewSource(seed))
	x := make([]vecmath.Vector, n)
	y := make([]float64, n)
	labels := make([]string, n)
	for i := range x {
		v := vecmath.NewVector(dim)
		base := 0
		if i%2 == 0 {
			base = dim / 2
		}
		for j := 0; j < 12; j++ {
			v[base+r.Intn(dim/2)] = 0.3 + 0.1*r.Float64()
		}
		x[i] = v.Normalize()
		if i%2 == 0 {
			y[i], labels[i] = -1, "neg"
		} else {
			y[i], labels[i] = 1, "pos"
		}
	}
	return x, y, labels
}

// The tentpole determinism guarantee at the SVM layer: training is
// bit-identical at any worker count, for both the binary SMO (parallel
// sparse gram build) and the one-vs-rest ensemble (parallel per-class
// training). Run under -race this also proves the fan-out is data-race
// free.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	x, y, _ := twoClassData(80, 60, 1)
	test, _, _ := twoClassData(40, 60, 2)
	var ref []float64
	for _, workers := range []int{-1, 1, 2, 8} {
		m, err := Train(x, y, Config{C: 10, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		scores := make([]float64, len(test))
		for i, tv := range test {
			scores[i] = m.Decision(tv)
		}
		if ref == nil {
			ref = scores
			continue
		}
		for i := range scores {
			if scores[i] != ref[i] {
				t.Fatalf("workers=%d: decision[%d] = %v, want %v (bit-identical)", workers, i, scores[i], ref[i])
			}
		}
	}
}

func TestOneVsRestDeterministicAcrossWorkers(t *testing.T) {
	x, _, labels := twoClassData(60, 40, 4)
	test, _, _ := twoClassData(30, 40, 5)
	var ref [][]float64
	for _, workers := range []int{1, 4} {
		mc, err := TrainOneVsRest(x, labels, Config{C: 5, Seed: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		all := make([][]float64, len(test))
		for i, tv := range test {
			all[i] = mc.Decisions(tv)
		}
		if ref == nil {
			ref = all
			continue
		}
		for i := range all {
			for j := range all[i] {
				if all[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: decisions[%d][%d] differ", workers, i, j)
				}
			}
		}
	}
}

// The sparse gram build must agree bit for bit with a dense Eval build for
// dot-product kernels; RBF takes the dense path untouched.
func TestSparseGramMatchesDenseEval(t *testing.T) {
	x, y, _ := twoClassData(50, 80, 7)
	poly := DefaultPolynomial()
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			sx, sy := vecmath.DenseToSparse(x[i]), vecmath.DenseToSparse(x[j])
			if got, want := poly.EvalDot(sx.Dot(sy)), poly.Eval(x[i], x[j]); got != want {
				t.Fatalf("gram[%d][%d]: sparse %v != dense %v", i, j, got, want)
			}
		}
	}
	// RBF kernels still train (no DotKernel fast path).
	m, err := Train(x, y, Config{C: 10, Kernel: RBF{Gamma: 1}, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSV() == 0 {
		t.Fatal("rbf model has no support vectors")
	}
}
