package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

func TestTrainValidation(t *testing.T) {
	x := []vecmath.Vector{{0, 0}, {1, 1}}
	y := []float64{1, -1}
	if _, err := Train(nil, nil, Config{C: 1}); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := Train(x, y[:1], Config{C: 1}); err == nil {
		t.Error("label length mismatch should fail")
	}
	if _, err := Train(x, y, Config{C: 0}); err == nil {
		t.Error("C=0 should fail")
	}
	if _, err := Train(x, []float64{1, 2}, Config{C: 1}); err == nil {
		t.Error("non ±1 label should fail")
	}
	if _, err := Train(x, []float64{1, 1}, Config{C: 1}); err == nil {
		t.Error("single class should fail")
	}
	if _, err := Train([]vecmath.Vector{{0}, {1, 1}}, y, Config{C: 1}); err == nil {
		t.Error("inconsistent dimensions should fail")
	}
}

func TestKernels(t *testing.T) {
	x := vecmath.Vector{1, 2}
	y := vecmath.Vector{3, 4}
	if got := (Linear{}).Eval(x, y); got != 11 {
		t.Errorf("linear = %v", got)
	}
	p := Polynomial{Degree: 2, Gamma: 1, Coef0: 1}
	if got := p.Eval(x, y); got != 144 {
		t.Errorf("poly = %v, want (11+1)^2", got)
	}
	r := RBF{Gamma: 0.5}
	want := math.Exp(-0.5 * 8) // ||x-y||^2 = 8
	if got := r.Eval(x, y); math.Abs(got-want) > 1e-12 {
		t.Errorf("rbf = %v, want %v", got, want)
	}
	if (Linear{}).Name() == "" || p.Name() == "" || r.Name() == "" {
		t.Error("kernels must have names")
	}
	d := DefaultPolynomial()
	if d.Degree != 3 || d.Gamma != 1 || d.Coef0 != 1 {
		t.Errorf("default poly = %+v", d)
	}
}

func TestLinearlySeparable2D(t *testing.T) {
	// Two clouds separated by x0 + x1 = 0.
	r := rand.New(rand.NewSource(1))
	var x []vecmath.Vector
	var y []float64
	for i := 0; i < 60; i++ {
		sign := 1.0
		if i%2 == 0 {
			sign = -1
		}
		x = append(x, vecmath.Vector{sign*2 + 0.5*r.NormFloat64(), sign*2 + 0.5*r.NormFloat64()})
		y = append(y, sign)
	}
	for _, k := range []Kernel{Linear{}, DefaultPolynomial(), RBF{Gamma: 1}} {
		m, err := Train(x, y, Config{C: 10, Kernel: k, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		errs := 0
		for i := range x {
			if m.Predict(x[i]) != y[i] {
				errs++
			}
		}
		if errs > 1 {
			t.Errorf("%s: %d training errors on separable data", k.Name(), errs)
		}
		if m.NumSV() == 0 || m.NumSV() > len(x) {
			t.Errorf("%s: NumSV = %d", k.Name(), m.NumSV())
		}
		if m.TrainingSize() != len(x) {
			t.Errorf("TrainingSize = %d", m.TrainingSize())
		}
	}
}

func TestXORNeedsNonlinearKernel(t *testing.T) {
	// XOR: not linearly separable; polynomial and RBF kernels solve it.
	x := []vecmath.Vector{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []float64{-1, 1, 1, -1}
	for _, k := range []Kernel{DefaultPolynomial(), RBF{Gamma: 2}} {
		m, err := Train(x, y, Config{C: 100, Kernel: k, Seed: 3, MaxPasses: 20})
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		for i := range x {
			if m.Predict(x[i]) != y[i] {
				t.Errorf("%s: xor(%v) misclassified", k.Name(), x[i])
			}
		}
	}
}

func TestSoftMarginToleratesOutliers(t *testing.T) {
	// Separable clouds plus one mislabeled point; small C should still
	// produce a reasonable boundary rather than memorizing the outlier.
	r := rand.New(rand.NewSource(5))
	var x []vecmath.Vector
	var y []float64
	for i := 0; i < 40; i++ {
		sign := 1.0
		if i%2 == 0 {
			sign = -1
		}
		x = append(x, vecmath.Vector{sign * (1 + r.Float64()), sign * (1 + r.Float64())})
		y = append(y, sign)
	}
	x = append(x, vecmath.Vector{2, 2}) // deep in +1 territory
	y = append(y, -1)                   // mislabeled
	m, err := Train(x, y, Config{C: 0.5, Kernel: Linear{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := 0; i < 40; i++ {
		if m.Predict(x[i]) != y[i] {
			errs++
		}
	}
	if errs > 2 {
		t.Errorf("%d errors on the clean points; outlier dominated", errs)
	}
}

func TestDecisionConsistentWithPredict(t *testing.T) {
	x := []vecmath.Vector{{-1, 0}, {-2, 1}, {1, 0}, {2, -1}}
	y := []float64{-1, -1, 1, 1}
	m, err := Train(x, y, Config{C: 1, Kernel: Linear{}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []vecmath.Vector{{3, 0}, {-3, 0}, {0.5, 0.5}} {
		d := m.Decision(q)
		p := m.Predict(q)
		if (d >= 0) != (p == 1) {
			t.Errorf("Decision %v inconsistent with Predict %v", d, p)
		}
	}
}

func TestHighDimensionalSparseSignatures(t *testing.T) {
	// Signatures live in ~3800 dims with small support. Verify the SVM
	// separates two synthetic "workloads" that differ on a few dims.
	const dim = 500
	r := rand.New(rand.NewSource(9))
	mk := func(hot []int) vecmath.Vector {
		v := vecmath.NewVector(dim)
		for _, h := range hot {
			v[h] = 0.5 + 0.1*r.NormFloat64()
		}
		for i := 0; i < 20; i++ {
			v[r.Intn(dim)] += 0.05 * r.Float64()
		}
		return v.Normalize()
	}
	var x []vecmath.Vector
	var y []float64
	for i := 0; i < 50; i++ {
		x = append(x, mk([]int{3, 70, 111}))
		y = append(y, 1)
		x = append(x, mk([]int{9, 200, 412}))
		y = append(y, -1)
	}
	m, err := Train(x, y, Config{C: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range x {
		if m.Predict(x[i]) != y[i] {
			errs++
		}
	}
	if errs != 0 {
		t.Errorf("%d errors on well-separated high-dim data", errs)
	}
}

func TestTrainDeterministicGivenSeed(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var x []vecmath.Vector
	var y []float64
	for i := 0; i < 30; i++ {
		s := 1.0
		if i%2 == 0 {
			s = -1
		}
		x = append(x, vecmath.Vector{s + 0.3*r.NormFloat64(), s + 0.3*r.NormFloat64()})
		y = append(y, s)
	}
	m1, err := Train(x, y, Config{C: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(x, y, Config{C: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	q := vecmath.Vector{0.2, -0.1}
	if m1.Decision(q) != m2.Decision(q) {
		t.Error("training not deterministic for fixed seed")
	}
}

func BenchmarkTrain200x100(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var x []vecmath.Vector
	var y []float64
	for i := 0; i < 200; i++ {
		s := 1.0
		if i%2 == 0 {
			s = -1
		}
		v := vecmath.NewVector(100)
		for j := range v {
			v[j] = s*0.1 + 0.3*r.NormFloat64()
		}
		x = append(x, v)
		y = append(y, s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, Config{C: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// sparseOf converts a dense training set to canonical sparse form.
func sparseOf(x []vecmath.Vector) []*vecmath.Sparse {
	out := make([]*vecmath.Sparse, len(x))
	for i := range x {
		out[i] = vecmath.DenseToSparse(x[i])
	}
	return out
}

// TestTrainSparseMatchesTrain: the sparse-first entry point must produce
// a bit-identical model to the dense one — same SV count, same decision
// scores — for both dot-product and non-dot kernels.
func TestTrainSparseMatchesTrain(t *testing.T) {
	const dim = 200
	r := rand.New(rand.NewSource(17))
	var x []vecmath.Vector
	var y []float64
	for i := 0; i < 40; i++ {
		v := vecmath.NewVector(dim)
		hot := []int{2, 40, 77}
		sign := 1.0
		if i%2 == 0 {
			hot = []int{9, 120, 180}
			sign = -1
		}
		for _, h := range hot {
			v[h] = 0.4 + 0.1*r.NormFloat64()
		}
		x = append(x, v.Normalize())
		y = append(y, sign)
	}
	sx := sparseOf(x)
	for _, kernel := range []Kernel{DefaultPolynomial(), Linear{}, RBF{Gamma: 1}} {
		dm, err := Train(x, y, Config{C: 5, Seed: 3, Kernel: kernel})
		if err != nil {
			t.Fatalf("%s: %v", kernel.Name(), err)
		}
		sm, err := TrainSparse(sx, y, Config{C: 5, Seed: 3, Kernel: kernel})
		if err != nil {
			t.Fatalf("%s: %v", kernel.Name(), err)
		}
		if dm.NumSV() != sm.NumSV() {
			t.Fatalf("%s: SV count %d vs %d", kernel.Name(), dm.NumSV(), sm.NumSV())
		}
		for i := range x {
			if d, s := dm.Decision(x[i]), sm.DecisionSparse(sx[i]); d != s {
				t.Fatalf("%s: decision %d: dense-trained %v vs sparse-trained %v", kernel.Name(), i, d, s)
			}
			// Cross-representation queries agree too.
			if d, s := sm.Decision(x[i]), sm.DecisionSparse(sx[i]); d != s {
				t.Fatalf("%s: decision %d: dense query %v vs sparse query %v", kernel.Name(), i, d, s)
			}
		}
	}
}

func TestTrainSparseValidation(t *testing.T) {
	ok := sparseOf([]vecmath.Vector{{0, 1}, {1, 0}})
	y := []float64{1, -1}
	if _, err := TrainSparse(nil, nil, Config{C: 1}); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := TrainSparse(ok, y, Config{C: 0}); err == nil {
		t.Error("C=0 should fail")
	}
	if _, err := TrainSparse([]*vecmath.Sparse{ok[0], nil}, y, Config{C: 1}); err == nil {
		t.Error("nil example should fail")
	}
	bad := sparseOf([]vecmath.Vector{{0, 1}, {1, 0, 0}})
	if _, err := TrainSparse(bad, y, Config{C: 1}); err == nil {
		t.Error("inconsistent dimensions should fail")
	}
}

// TestPredictBatchMatchesSequential: batched prediction is a pure
// fan-out — identical to per-query calls at every worker count.
func TestPredictBatchMatchesSequential(t *testing.T) {
	x, y := func() ([]vecmath.Vector, []float64) {
		r := rand.New(rand.NewSource(31))
		var x []vecmath.Vector
		var y []float64
		for i := 0; i < 60; i++ {
			v := vecmath.NewVector(80)
			sign := 1.0
			hot := 5
			if i%2 == 0 {
				sign, hot = -1, 60
			}
			v[hot] = 1
			v[r.Intn(80)] += 0.3 * r.Float64()
			x = append(x, v.Normalize())
			y = append(y, sign)
		}
		return x, y
	}()
	sx := sparseOf(x)
	m, err := TrainSparse(sx[:40], y[:40], Config{C: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	queries := sx[40:]
	wantDec := make([]float64, len(queries))
	wantPred := make([]float64, len(queries))
	for i, q := range queries {
		wantDec[i] = m.DecisionSparse(q)
		wantPred[i] = m.PredictSparse(q)
	}
	for _, workers := range []int{-1, 1, 2, 0} {
		dec := m.DecisionBatch(queries, workers)
		pred := m.PredictBatch(queries, workers)
		predDense := m.PredictBatchDense(x[40:], workers)
		for i := range queries {
			if dec[i] != wantDec[i] || pred[i] != wantPred[i] || predDense[i] != wantPred[i] {
				t.Fatalf("workers=%d query %d: batch (%v, %v, %v) vs sequential (%v, %v)",
					workers, i, dec[i], pred[i], predDense[i], wantDec[i], wantPred[i])
			}
		}
	}
	if got := m.DecisionBatch(nil, 0); len(got) != 0 {
		t.Error("empty batch should return empty slice")
	}
}
