package ringbuf

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewLocked(0); err == nil {
		t.Error("NewLocked(0) should fail")
	}
	if _, err := NewCAS(0); err == nil {
		t.Error("NewCAS(0) should fail")
	}
}

func TestLockedFIFO(t *testing.T) {
	r, err := NewLocked(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		if !r.Write(Record{FnAddr: i}) {
			t.Fatal("Write returned false in overwrite mode")
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	var got []uint64
	n := r.Drain(func(rec Record) { got = append(got, rec.FnAddr) })
	if n != 5 {
		t.Fatalf("Drain = %d, want 5", n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order broken: %v", got)
		}
	}
	if r.Len() != 0 {
		t.Errorf("Len after drain = %d", r.Len())
	}
}

func TestLockedOverwriteKeepsNewest(t *testing.T) {
	r, err := NewLocked(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		r.Write(Record{FnAddr: i})
	}
	var got []uint64
	r.Drain(func(rec Record) { got = append(got, rec.FnAddr) })
	want := []uint64{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	st := r.Stats()
	if st.Writes != 10 || st.Overwrites != 6 || st.Drains != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCASFIFOAndDropOnFull(t *testing.T) {
	r, err := NewCAS(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	for i := uint64(0); i < 4; i++ {
		if !r.Write(Record{FnAddr: i}) {
			t.Fatalf("Write %d rejected before full", i)
		}
	}
	if r.Write(Record{FnAddr: 99}) {
		t.Error("Write on full ring should drop")
	}
	st := r.Stats()
	if st.Drops != 1 || st.Writes != 4 {
		t.Errorf("stats = %+v", st)
	}
	var got []uint64
	r.Drain(func(rec Record) { got = append(got, rec.FnAddr) })
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order broken: %v", got)
		}
	}
	// After drain the slots are reusable.
	if !r.Write(Record{FnAddr: 100}) {
		t.Error("Write after drain should succeed")
	}
}

func TestCASCapacityRoundsToPowerOfTwo(t *testing.T) {
	r, err := NewCAS(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 {
		t.Errorf("Cap = %d, want 8", r.Cap())
	}
}

func TestLockedConcurrentWriters(t *testing.T) {
	r, err := NewLocked(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, per = 8, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Write(Record{FnAddr: uint64(w)})
			}
		}(w)
	}
	wg.Wait()
	if got := r.Len(); got != writers*per {
		t.Errorf("Len = %d, want %d", got, writers*per)
	}
}

func TestCASConcurrentWritersNoLoss(t *testing.T) {
	r, err := NewCAS(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, per = 8, 2000
	var accepted atomic64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if r.Write(Record{FnAddr: uint64(w*per + i)}) {
					accepted.inc()
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	n := r.Drain(func(rec Record) {
		if seen[rec.FnAddr] {
			t.Errorf("duplicate record %d", rec.FnAddr)
		}
		seen[rec.FnAddr] = true
	})
	if uint64(n) != accepted.get() {
		t.Errorf("drained %d, accepted %d", n, accepted.get())
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) inc() {
	a.mu.Lock()
	a.v++
	a.mu.Unlock()
}
func (a *atomic64) get() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

// Property: for any write/drain interleaving on a single goroutine, a
// LockedRing drains records in write order and never exceeds capacity.
func TestPropertyLockedOrderAndBound(t *testing.T) {
	f := func(ops []uint8) bool {
		r, err := NewLocked(16)
		if err != nil {
			return false
		}
		var next, expect uint64
		for _, op := range ops {
			if op%4 == 0 {
				ok := true
				r.Drain(func(rec Record) {
					if rec.FnAddr < expect {
						ok = false
					}
					expect = rec.FnAddr + 1
				})
				if !ok {
					return false
				}
			} else {
				r.Write(Record{FnAddr: next})
				next++
			}
			if r.Len() > r.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CASRing conserves records — writes accepted == drained when
// fully drained, for any single-threaded interleaving.
func TestPropertyCASConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		r, err := NewCAS(8)
		if err != nil {
			return false
		}
		var written, drained int
		for _, op := range ops {
			if op%3 == 0 {
				drained += r.Drain(func(Record) {})
			} else if r.Write(Record{}) {
				written++
			}
		}
		drained += r.Drain(func(Record) {})
		return written == drained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLockedWrite(b *testing.B) {
	r, err := NewLocked(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(Record{FnAddr: uint64(i)})
	}
}

func BenchmarkCASWrite(b *testing.B) {
	r, err := NewCAS(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Write(Record{FnAddr: uint64(i)}) {
			r.Drain(func(Record) {})
		}
	}
}

func BenchmarkLockedWriteParallel(b *testing.B) {
	r, err := NewLocked(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Write(Record{})
		}
	})
}

func BenchmarkCASWriteParallel(b *testing.B) {
	r, err := NewCAS(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !r.Write(Record{}) {
				mu.Lock()
				r.Drain(func(Record) {})
				mu.Unlock()
			}
		}
	})
}
