// Package ringbuf implements the Ftrace-style trace buffers the paper
// compares Fmeter against (§3): large fixed-size circular buffers that must
// be accessed in an SMP-safe fashion because the kernel executes
// concurrently on all processors.
//
// Two variants are provided:
//
//   - LockedRing: a mutex-protected ring with overwrite semantics, modeling
//     the "somewhat lock-heavy" buffer of Linux 2.6.28's Ftrace.
//   - CASRing: a compare-and-swap reservation ring modeling the proposed
//     wait-free replacements (LWN: "A lockless ring-buffer", "One ring
//     buffer to rule them all?"). It drops on full rather than overwriting,
//     because lock-free overwrite is exactly the subtle-race territory the
//     paper notes kept these designs out of mainline.
//
// Both variants record the fixed-size per-call record Ftrace's function
// tracer emits (function address, parent address, timestamp).
package ringbuf

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Record is one function-trace entry: 24 bytes like Ftrace's function
// tracer record (ip, parent ip, timestamp).
type Record struct {
	FnAddr     uint64
	ParentAddr uint64
	TimeNS     uint64
}

// Stats summarizes ring activity.
type Stats struct {
	Writes     uint64 // successfully stored records
	Overwrites uint64 // old records destroyed to make room (LockedRing)
	Drops      uint64 // records rejected on full (CASRing)
	Drains     uint64 // records handed to consumers
}

// Ring is the common interface of both buffer variants.
type Ring interface {
	// Write stores a record, returning false if it was dropped.
	Write(Record) bool
	// Drain hands all currently buffered records to fn in order and
	// removes them, returning how many were consumed.
	Drain(fn func(Record)) int
	// Len returns the number of buffered records.
	Len() int
	// Cap returns the buffer capacity in records.
	Cap() int
	// Stats returns activity counters.
	Stats() Stats
}

// LockedRing is the lock-protected overwriting ring buffer. When full, the
// oldest record is overwritten, which is Ftrace's default producer policy.
type LockedRing struct {
	mu    sync.Mutex
	buf   []Record
	head  int // next write position
	size  int // number of valid records
	stats Stats
}

var _ Ring = (*LockedRing)(nil)

// NewLocked returns a LockedRing with the given capacity.
func NewLocked(capacity int) (*LockedRing, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("ringbuf: capacity %d must be >= 1", capacity)
	}
	return &LockedRing{buf: make([]Record, capacity)}, nil
}

// Write stores r, overwriting the oldest record when full. It always
// succeeds (overwrite mode never rejects).
func (r *LockedRing) Write(rec Record) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.head] = rec
	r.head = (r.head + 1) % len(r.buf)
	if r.size == len(r.buf) {
		r.stats.Overwrites++
	} else {
		r.size++
	}
	r.stats.Writes++
	return true
}

// Drain consumes all buffered records in FIFO order.
func (r *LockedRing) Drain(fn func(Record)) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.size
	start := (r.head - r.size + len(r.buf)) % len(r.buf)
	for i := 0; i < n; i++ {
		fn(r.buf[(start+i)%len(r.buf)])
	}
	r.size = 0
	r.stats.Drains += uint64(n)
	return n
}

// Len returns the number of buffered records.
func (r *LockedRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Cap returns the capacity in records.
func (r *LockedRing) Cap() int { return len(r.buf) }

// Stats returns a copy of the activity counters.
func (r *LockedRing) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// casSlot pairs a record with a sequence number for the CAS ring's
// slot-state protocol (a bounded MPMC queue in the style of Vyukov).
type casSlot struct {
	seq atomic.Uint64
	rec Record
}

// CASRing is a bounded lock-free ring using per-slot sequence numbers and
// CAS reservations. Producers drop on full; a single consumer drains.
type CASRing struct {
	mask  uint64
	slots []casSlot
	head  atomic.Uint64 // producer reservation cursor
	tail  atomic.Uint64 // consumer cursor

	writes atomic.Uint64
	drops  atomic.Uint64
	drains atomic.Uint64
}

var _ Ring = (*CASRing)(nil)

// NewCAS returns a CASRing whose capacity is rounded up to a power of two.
func NewCAS(capacity int) (*CASRing, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("ringbuf: capacity %d must be >= 1", capacity)
	}
	capPow := 1
	for capPow < capacity {
		capPow <<= 1
	}
	r := &CASRing{mask: uint64(capPow - 1), slots: make([]casSlot, capPow)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r, nil
}

// Write reserves a slot via CAS and stores rec; it returns false (drop)
// when the ring is full.
func (r *CASRing) Write(rec Record) bool {
	for {
		head := r.head.Load()
		slot := &r.slots[head&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == head:
			// Slot free for this generation; try to claim it.
			if r.head.CompareAndSwap(head, head+1) {
				slot.rec = rec
				slot.seq.Store(head + 1) // publish
				r.writes.Add(1)
				return true
			}
		case seq < head:
			// Slot still holds an unconsumed record one generation back:
			// the ring is full.
			r.drops.Add(1)
			return false
		default:
			// Another producer advanced head; retry with fresh cursor.
		}
	}
}

// Drain consumes all published records. It must be called from a single
// consumer at a time (the tracing daemon), matching Ftrace's reader model.
func (r *CASRing) Drain(fn func(Record)) int {
	n := 0
	for {
		tail := r.tail.Load()
		slot := &r.slots[tail&r.mask]
		seq := slot.seq.Load()
		if seq != tail+1 {
			break // next record not yet published
		}
		rec := slot.rec
		// Release the slot for the producer's next generation.
		slot.seq.Store(tail + uint64(len(r.slots)))
		r.tail.Store(tail + 1)
		fn(rec)
		n++
	}
	r.drains.Add(uint64(n))
	return n
}

// Len returns the number of published-but-unconsumed records.
func (r *CASRing) Len() int {
	h, t := r.head.Load(), r.tail.Load()
	if h < t {
		return 0
	}
	return int(h - t)
}

// Cap returns the (power-of-two) capacity.
func (r *CASRing) Cap() int { return len(r.slots) }

// Stats returns the activity counters.
func (r *CASRing) Stats() Stats {
	return Stats{
		Writes: r.writes.Load(),
		Drops:  r.drops.Load(),
		Drains: r.drains.Load(),
	}
}
