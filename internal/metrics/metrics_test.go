package metrics

import (
	"math"
	"testing"
)

func TestConfusionBasics(t *testing.T) {
	truth := []float64{1, 1, 1, -1, -1, -1}
	pred := []float64{1, 1, -1, -1, -1, 1}
	c, err := NewConfusion(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 2 || c.FN != 1 || c.TN != 2 || c.FP != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if got := c.Accuracy(); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Recall = %v", got)
	}
	if got := c.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v", got)
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestConfusionValidation(t *testing.T) {
	if _, err := NewConfusion([]float64{1}, []float64{1, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewConfusion([]float64{0}, []float64{1}); err == nil {
		t.Error("non ±1 truth should fail")
	}
	if _, err := NewConfusion([]float64{1}, []float64{2}); err == nil {
		t.Error("non ±1 pred should fail")
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("vacuous precision/recall should be 1")
	}
	all := Confusion{TN: 5}
	if all.Precision() != 1 || all.Recall() != 1 {
		t.Error("no positives anywhere: vacuous 1")
	}
}

func TestBaselineAccuracy(t *testing.T) {
	// The paper's worked example: 100 of +1, 150 of -1 -> 0.6.
	truth := make([]float64, 0, 250)
	for i := 0; i < 100; i++ {
		truth = append(truth, 1)
	}
	for i := 0; i < 150; i++ {
		truth = append(truth, -1)
	}
	got, err := BaselineAccuracy(truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.6) > 1e-12 {
		t.Errorf("baseline = %v, want 0.6", got)
	}
	if _, err := BaselineAccuracy(nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := BaselineAccuracy([]float64{3}); err == nil {
		t.Error("bad label should fail")
	}
}

func perfectClustering() ([]int, []string) {
	return []int{0, 0, 0, 1, 1, 1}, []string{"a", "a", "a", "b", "b", "b"}
}

func TestPurity(t *testing.T) {
	assign, labels := perfectClustering()
	p, err := Purity(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("perfect purity = %v", p)
	}
	// One mistake: a "b" lands in cluster 0 -> 6/7 correct.
	assign = append(assign, 0)
	labels = append(labels, "b")
	p, err = Purity(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-6.0/7) > 1e-12 {
		t.Errorf("purity = %v, want 6/7", p)
	}
}

func TestPuritySingletonGaming(t *testing.T) {
	// Purity is trivially 1.0 with as many clusters as points — the
	// property Figure 6 leverages.
	assign := []int{0, 1, 2, 3}
	labels := []string{"a", "a", "b", "b"}
	p, err := Purity(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("singleton purity = %v", p)
	}
	// NMI does not fall for it.
	nmi, err := NMI(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if nmi >= 1 {
		t.Errorf("singleton NMI = %v, should be < 1", nmi)
	}
}

func TestNMIPerfect(t *testing.T) {
	assign, labels := perfectClustering()
	nmi, err := NMI(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nmi-1) > 1e-12 {
		t.Errorf("perfect NMI = %v", nmi)
	}
}

func TestNMIIndependent(t *testing.T) {
	// Clustering orthogonal to labels: each cluster has the same class
	// mix -> MI 0.
	assign := []int{0, 0, 1, 1}
	labels := []string{"a", "b", "a", "b"}
	nmi, err := NMI(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nmi) > 1e-12 {
		t.Errorf("independent NMI = %v", nmi)
	}
}

func TestNMISingleClusterSingleClass(t *testing.T) {
	nmi, err := NMI([]int{0, 0}, []string{"a", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if nmi != 1 {
		t.Errorf("trivial NMI = %v", nmi)
	}
}

func TestRandIndex(t *testing.T) {
	assign, labels := perfectClustering()
	ri, err := RandIndex(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Errorf("perfect Rand = %v", ri)
	}
	ri, err = RandIndex([]int{0}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Errorf("single-point Rand = %v", ri)
	}
	// Anti-clustering: same-label pairs split, different-label pairs
	// joined.
	ri, err = RandIndex([]int{0, 1, 0, 1}, []string{"a", "a", "b", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if ri > 0.5 {
		t.Errorf("anti-clustering Rand = %v", ri)
	}
}

func TestFMeasure(t *testing.T) {
	assign, labels := perfectClustering()
	f, err := FMeasure(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Errorf("perfect F = %v", f)
	}
	// All singletons with multi-point classes: tp=0, fn>0 -> 0.
	f, err = FMeasure([]int{0, 1}, []string{"a", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("singleton F = %v", f)
	}
	// Single point: vacuous perfect.
	f, err = FMeasure([]int{0}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Errorf("single-point F = %v", f)
	}
}

func TestClusteringValidation(t *testing.T) {
	for _, fn := range []func([]int, []string) (float64, error){Purity, NMI, RandIndex, FMeasure} {
		if _, err := fn(nil, nil); err == nil {
			t.Error("empty clustering should fail")
		}
		if _, err := fn([]int{0}, []string{"a", "b"}); err == nil {
			t.Error("length mismatch should fail")
		}
		if _, err := fn([]int{-1}, []string{"a"}); err == nil {
			t.Error("negative cluster should fail")
		}
	}
}
