// Package metrics implements the evaluation measures of §4.2: binary
// classification accuracy/precision/recall (Tables 4-5, including the
// majority-class baseline accuracy), and the clustering quality measures —
// purity (the paper's choice, "simple and transparent"), normalized mutual
// information, the Rand index, and the clustering F-measure, which the
// paper lists as alternatives.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// Confusion is a binary confusion matrix over the paper's +1/-1 labeling.
type Confusion struct {
	TP, FP, TN, FN int
}

// NewConfusion tallies predictions against truth; labels must be ±1.
func NewConfusion(truth, pred []float64) (Confusion, error) {
	if len(truth) != len(pred) {
		return Confusion{}, fmt.Errorf("metrics: %d truths vs %d predictions", len(truth), len(pred))
	}
	var c Confusion
	for i := range truth {
		t, p := truth[i], pred[i]
		if (t != 1 && t != -1) || (p != 1 && p != -1) {
			return Confusion{}, fmt.Errorf("metrics: labels must be ±1, got truth=%v pred=%v at %d", t, p, i)
		}
		switch {
		case t == 1 && p == 1:
			c.TP++
		case t == -1 && p == 1:
			c.FP++
		case t == -1 && p == -1:
			c.TN++
		default:
			c.FN++
		}
	}
	return c, nil
}

// Total returns the number of tallied examples.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// Precision is TP/(TP+FP); 1 when no positives were predicted (vacuous).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN); 1 when no positives exist (vacuous).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// BaselineAccuracy is the accuracy of the pseudo-classifier that always
// answers with the majority class (the paper reports it alongside every
// grouping: "if a dataset contains 100 of class +1 and 150 of class -1,
// the baseline accuracy is 0.6").
func BaselineAccuracy(truth []float64) (float64, error) {
	if len(truth) == 0 {
		return 0, errors.New("metrics: empty truth")
	}
	pos := 0
	for _, t := range truth {
		switch t {
		case 1:
			pos++
		case -1:
		default:
			return 0, fmt.Errorf("metrics: labels must be ±1, got %v", t)
		}
	}
	maj := pos
	if n := len(truth) - pos; n > maj {
		maj = n
	}
	return float64(maj) / float64(len(truth)), nil
}

// validateClustering checks parallel assignment/label slices.
func validateClustering(assign []int, labels []string) error {
	if len(assign) == 0 {
		return errors.New("metrics: empty clustering")
	}
	if len(assign) != len(labels) {
		return fmt.Errorf("metrics: %d assignments vs %d labels", len(assign), len(labels))
	}
	for i, a := range assign {
		if a < 0 {
			return fmt.Errorf("metrics: negative cluster id at %d", i)
		}
	}
	return nil
}

// contingency builds the cluster x class count table.
func contingency(assign []int, labels []string) (map[int]map[string]int, map[int]int, map[string]int) {
	table := make(map[int]map[string]int)
	csize := make(map[int]int)
	lsize := make(map[string]int)
	for i, a := range assign {
		if table[a] == nil {
			table[a] = make(map[string]int)
		}
		table[a][labels[i]]++
		csize[a]++
		lsize[labels[i]]++
	}
	return table, csize, lsize
}

// Purity assigns each cluster to its most frequent class and returns the
// fraction of correctly assigned points (§4.2.2). Purity 1.0 is trivially
// reachable with as many clusters as points — the property Figure 6
// exploits deliberately.
func Purity(assign []int, labels []string) (float64, error) {
	if err := validateClustering(assign, labels); err != nil {
		return 0, err
	}
	table, _, _ := contingency(assign, labels)
	correct := 0
	for _, classes := range table {
		max := 0
		for _, n := range classes {
			if n > max {
				max = n
			}
		}
		correct += max
	}
	return float64(correct) / float64(len(assign)), nil
}

// NMI returns the normalized mutual information between the clustering and
// the class labels, NMI = 2 I(C;L) / (H(C) + H(L)), in [0, 1]. A perfect
// clustering with K equal to the class count scores 1; it penalizes the
// many-cluster gaming that purity permits.
func NMI(assign []int, labels []string) (float64, error) {
	if err := validateClustering(assign, labels); err != nil {
		return 0, err
	}
	table, cs, ls := contingency(assign, labels)
	n := float64(len(assign))
	var mi, hc, hl float64
	for c, classes := range table {
		for l, nij := range classes {
			pij := float64(nij) / n
			pc := float64(cs[c]) / n
			pl := float64(ls[l]) / n
			if pij > 0 {
				mi += pij * math.Log(pij/(pc*pl))
			}
		}
	}
	for _, cn := range cs {
		p := float64(cn) / n
		hc -= p * math.Log(p)
	}
	for _, ln := range ls {
		p := float64(ln) / n
		hl -= p * math.Log(p)
	}
	if hc+hl == 0 {
		return 1, nil // single cluster and single class: perfect trivially
	}
	return 2 * mi / (hc + hl), nil
}

// RandIndex is the fraction of point pairs on which the clustering and
// the labels agree (same/same or different/different).
func RandIndex(assign []int, labels []string) (float64, error) {
	if err := validateClustering(assign, labels); err != nil {
		return 0, err
	}
	n := len(assign)
	if n < 2 {
		return 1, nil
	}
	agree, pairs := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameC := assign[i] == assign[j]
			sameL := labels[i] == labels[j]
			if sameC == sameL {
				agree++
			}
			pairs++
		}
	}
	return float64(agree) / float64(pairs), nil
}

// FMeasure is the pairwise F1 over co-clustered pairs: precision is the
// fraction of same-cluster pairs that share a label, recall the fraction
// of same-label pairs that share a cluster.
func FMeasure(assign []int, labels []string) (float64, error) {
	if err := validateClustering(assign, labels); err != nil {
		return 0, err
	}
	n := len(assign)
	var tp, fp, fn int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameC := assign[i] == assign[j]
			sameL := labels[i] == labels[j]
			switch {
			case sameC && sameL:
				tp++
			case sameC && !sameL:
				fp++
			case !sameC && sameL:
				fn++
			}
		}
	}
	if tp == 0 {
		if fp == 0 && fn == 0 {
			return 1, nil
		}
		return 0, nil
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r), nil
}
