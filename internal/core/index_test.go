package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/vecmath"
)

// TestIndexBasics pins the Index unit contract: construction validation,
// posting-list growth, local-id assignment, and exact dots.
func TestIndexBasics(t *testing.T) {
	if _, err := NewIndex(0); err == nil {
		t.Fatal("NewIndex(0) should fail")
	}
	ix, err := NewIndex(6)
	if err != nil {
		t.Fatal(err)
	}
	a := vecmath.DenseToSparse(vecmath.Vector{1, 0, 2, 0, 0, 0})
	b := vecmath.DenseToSparse(vecmath.Vector{0, 0, 3, 0, 4, 0})
	if id := ix.Add(a); id != 0 {
		t.Fatalf("first id = %d", id)
	}
	if id := ix.Add(b); id != 1 {
		t.Fatalf("second id = %d", id)
	}
	if ix.Len() != 2 || ix.Dim() != 6 {
		t.Fatalf("Len=%d Dim=%d", ix.Len(), ix.Dim())
	}
	if ix.Postings(2) != 2 || ix.Postings(0) != 1 || ix.Postings(1) != 0 {
		t.Fatalf("postings: %d %d %d", ix.Postings(2), ix.Postings(0), ix.Postings(1))
	}
	q := vecmath.DenseToSparse(vecmath.Vector{5, 0, 1, 0, 1, 0})
	var acc vecmath.Accumulator
	ix.Dots(q, &acc)
	if got, want := acc.Get(0), q.Dot(a); got != want {
		t.Fatalf("dot a = %v, want %v", got, want)
	}
	if got, want := acc.Get(1), q.Dot(b); got != want {
		t.Fatalf("dot b = %v, want %v", got, want)
	}
}

// TestIndexDimensionPanics pins the pre-validated-op discipline: Add and
// Dots panic on mis-sized vectors (the DB validates before reaching the
// index).
func TestIndexDimensionPanics(t *testing.T) {
	ix, err := NewIndex(4)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s with wrong dimension should panic", name)
			}
		}()
		fn()
	}
	bad := vecmath.DenseToSparse(vecmath.Vector{1, 2})
	mustPanic("Add", func() { ix.Add(bad) })
	var acc vecmath.Accumulator
	mustPanic("Dots", func() { ix.Dots(bad, &acc) })
}

// scanResults evaluates TopKSparse with the index disabled, restoring
// the previous routing afterwards.
func scanResults(t *testing.T, db *DB, q *vecmath.Sparse, k int, m Metric) []SearchResult {
	t.Helper()
	prev := db.Indexed()
	db.SetIndexed(false)
	defer db.SetIndexed(prev)
	res, err := db.TopKSparse(q, k, m)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameResults asserts bit-for-bit equality of two result lists: same
// documents in the same order with `==`-equal scores.
func sameResults(t *testing.T, tag string, got, want []SearchResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i].Signature.DocID != want[i].Signature.DocID || got[i].Score != want[i].Score {
			t.Fatalf("%s: hit %d = (%s, %v), want (%s, %v)",
				tag, i, got[i].Signature.DocID, got[i].Score, want[i].Signature.DocID, want[i].Score)
		}
	}
}

// TestTopKIndexedMatchesScan is the randomized equivalence property the
// index is built on: over random corpora (seeds 1..5), shard counts
// {1,3,4}, and worker counts {1,4}, the indexed TopK must be
// bit-identical to the exhaustive scan for the indexable metrics
// (cosine, euclidean) and trivially for the scan-fallback Minkowski
// orders — and every configuration must match the single-shard
// sequential scan, the simplest reference.
func TestTopKIndexedMatchesScan(t *testing.T) {
	metrics := []Metric{CosineMetric(), EuclideanMetric(), MinkowskiMetric(1), MinkowskiMetric(3)}
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		dim := 80 + r.Intn(120)
		n := 60 + r.Intn(200)
		nnz := 5 + r.Intn(25)
		sigs := randSigs(r, n, dim, nnz)
		// Duplicate a few signatures so equal scores exercise the
		// insertion-index tie-break on both paths.
		for d := 0; d < 3; d++ {
			dup := sigs[r.Intn(len(sigs))]
			dup.DocID = fmt.Sprintf("dup-%d", d)
			sigs = append(sigs, dup)
		}
		query := randSigs(r, 1, dim, nnz)[0].W
		k := 1 + r.Intn(n)

		ref, err := NewDB(dim)
		if err != nil {
			t.Fatal(err)
		}
		ref.SetWorkers(-1)
		ref.SetIndexed(false)
		if err := ref.AddAll(sigs); err != nil {
			t.Fatal(err)
		}

		for _, shards := range []int{1, 3, 4} {
			for _, workers := range []int{1, 4} {
				db, err := NewShardedDB(dim, shards)
				if err != nil {
					t.Fatal(err)
				}
				db.SetWorkers(workers)
				if err := db.AddAll(sigs); err != nil {
					t.Fatal(err)
				}
				for _, m := range metrics {
					tag := fmt.Sprintf("seed=%d shards=%d workers=%d %s k=%d", seed, shards, workers, m.Name, k)
					indexed, err := db.TopKSparse(query, k, m)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, tag+" indexed-vs-scan", indexed, scanResults(t, db, query, k, m))
					want, err := ref.TopKSparse(query, k, m)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, tag+" vs-single-shard-ref", indexed, want)
				}
			}
		}
	}
}

// TestTopKBatchMatchesPerQuery checks that the batched path is a pure
// fan-out: TopKBatch output is bit-identical to per-query TopKSparse at
// several worker counts, and ClassifyBatch to per-query ClassifySparse.
func TestTopKBatchMatchesPerQuery(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const dim, n, nnz, k = 150, 220, 20, 7
	sigs := randSigs(r, n, dim, nnz)
	queries := make([]*vecmath.Sparse, 40)
	for i := range queries {
		queries[i] = randSigs(r, 1, dim, nnz)[0].W
	}
	for _, shards := range []int{1, 4} {
		db, err := NewShardedDB(dim, shards)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddAll(sigs); err != nil {
			t.Fatal(err)
		}
		for _, m := range []Metric{EuclideanMetric(), CosineMetric(), MinkowskiMetric(1)} {
			for _, workers := range []int{-1, 1, 4} {
				db.SetWorkers(workers)
				batch, err := db.TopKBatch(queries, k, m)
				if err != nil {
					t.Fatal(err)
				}
				labels, err := db.ClassifyBatch(queries, k, m)
				if err != nil {
					t.Fatal(err)
				}
				for qi, q := range queries {
					want, err := db.TopKSparse(q, k, m)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, fmt.Sprintf("shards=%d workers=%d %s q=%d", shards, workers, m.Name, qi), batch[qi], want)
					wantLabel, err := db.ClassifySparse(q, k, m)
					if err != nil {
						t.Fatal(err)
					}
					if labels[qi] != wantLabel {
						t.Fatalf("ClassifyBatch[%d] = %q, want %q", qi, labels[qi], wantLabel)
					}
				}
			}
		}
	}
}

// TestTopKBatchIntoReuses checks the zero-alloc contract's mechanics:
// result slices with warm capacity are reused in place.
func TestTopKBatchIntoReuses(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const dim, n, nnz, k = 100, 80, 15, 5
	db, err := NewShardedDB(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(randSigs(r, n, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	queries := []*vecmath.Sparse{randSigs(r, 1, dim, nnz)[0].W, randSigs(r, 1, dim, nnz)[0].W}
	out := make([][]SearchResult, len(queries))
	if err := db.TopKBatchInto(queries, k, EuclideanMetric(), out); err != nil {
		t.Fatal(err)
	}
	first := make([][]SearchResult, len(out))
	copy(first, out)
	if err := db.TopKBatchInto(queries, k, EuclideanMetric(), out); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if len(out[i]) != k {
			t.Fatalf("query %d: %d hits, want %d", i, len(out[i]), k)
		}
		if &out[i][0] != &first[i][0] {
			t.Fatalf("query %d: result slice was reallocated despite warm capacity", i)
		}
	}
	if err := db.TopKBatchInto(queries, k, EuclideanMetric(), make([][]SearchResult, 1)); err == nil {
		t.Fatal("mismatched out length should fail")
	}
}

// TestIndexMaintenance covers the incremental-maintenance corners: Add
// after a query, interleaved AddAll batches, and re-queries — with the
// indexed results checked against the scan after every mutation.
func TestIndexMaintenance(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const dim, nnz, k = 90, 12, 9
	db, err := NewShardedDB(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	query := randSigs(r, 1, dim, nnz)[0].W
	metrics := []Metric{EuclideanMetric(), CosineMetric()}
	check := func(stage string) {
		for _, m := range metrics {
			got, err := db.TopKSparse(query, k, m)
			if err != nil {
				t.Fatalf("%s %s: %v", stage, m.Name, err)
			}
			sameResults(t, stage+" "+m.Name, got, scanResults(t, db, query, k, m))
		}
	}
	if err := db.AddAll(randSigs(r, 20, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	check("after first AddAll")
	// Single Add between queries must appear in the next result set.
	probe := query.Dense()
	nearest := SignatureFromDense("planted-nearest", "planted", probe)
	if err := db.Add(nearest); err != nil {
		t.Fatal(err)
	}
	check("after planted Add")
	got, err := db.TopKSparse(query, 1, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Signature.DocID != "planted-nearest" {
		t.Fatalf("freshly added exact match not retrieved: got %s", got[0].Signature.DocID)
	}
	// Interleave more AddAll batches with queries.
	for round := 0; round < 3; round++ {
		if err := db.AddAll(randSigs(r, 15, dim, nnz)); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("after interleaved AddAll %d", round))
	}
}

// TestIndexedTypedErrors asserts the indexed path (and the batch API)
// fail with the same typed errors as the scan path: *DimensionError
// before any scoring work, ErrEmptyDB on an empty store, and the
// vecmath validation error for duplicate-dimension queries.
func TestIndexedTypedErrors(t *testing.T) {
	db, err := NewShardedDB(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	var dimErr *DimensionError
	short := vecmath.DenseToSparse(vecmath.Vector{1, 2})
	ok := vecmath.DenseToSparse(vecmath.Vector{1, 0, 0, 2, 0, 0, 0, 3})

	// Empty DB: both entry points, both routings.
	for _, indexed := range []bool{true, false} {
		db.SetIndexed(indexed)
		if _, err := db.TopKSparse(ok, 1, EuclideanMetric()); !errors.Is(err, ErrEmptyDB) {
			t.Fatalf("indexed=%v empty-db error = %v, want ErrEmptyDB", indexed, err)
		}
		if _, err := db.TopKBatch([]*vecmath.Sparse{ok}, 1, EuclideanMetric()); !errors.Is(err, ErrEmptyDB) {
			t.Fatalf("indexed=%v batch empty-db error = %v, want ErrEmptyDB", indexed, err)
		}
	}
	db.SetIndexed(true)

	// Dimension mismatch: typed, and batch errors name the query index.
	if err := db.AddAll(randSigs(rand.New(rand.NewSource(1)), 6, 8, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.TopKSparse(short, 1, EuclideanMetric()); !errors.As(err, &dimErr) {
		t.Fatalf("TopKSparse wrong-dim error = %v, want *DimensionError", err)
	}
	if _, err := db.TopKBatch([]*vecmath.Sparse{ok, short}, 1, EuclideanMetric()); !errors.As(err, &dimErr) {
		t.Fatalf("TopKBatch wrong-dim error = %v, want *DimensionError", err)
	} else if dimErr.What != "query 1" || dimErr.Got != 2 || dimErr.Want != 8 {
		t.Fatalf("TopKBatch DimensionError = %+v", dimErr)
	}
	if _, err := db.TopKBatch([]*vecmath.Sparse{ok, nil}, 1, EuclideanMetric()); err == nil {
		t.Fatal("nil query should fail")
	}
	if _, err := db.TopKBatch([]*vecmath.Sparse{ok}, 0, EuclideanMetric()); err == nil {
		t.Fatal("k=0 should fail")
	}

	// Duplicate dimensions cannot enter the index: the canonical sparse
	// constructor rejects them before any DB call.
	if _, err := vecmath.SparseFromSorted(8, []int32{2, 2}, []float64{1, 1}); err == nil {
		t.Fatal("duplicate-dimension sparse should fail construction")
	}

	// Empty query is valid (it scores everything at dot 0) and identical
	// on both paths.
	empty, err := vecmath.SparseFromSorted(8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{EuclideanMetric(), CosineMetric()} {
		got, err := db.TopKSparse(empty, 3, m)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "empty query "+m.Name, got, scanResults(t, db, empty, 3, m))
	}
}

// TestTopKConcurrentReaders hammers a quiescent DB with concurrent
// single and batched queries; under -race this pins the scratch-pool
// guard (each reader checks out its own scratch).
func TestTopKConcurrentReaders(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const dim, n, nnz, k = 200, 300, 25, 10
	db, err := NewShardedDB(dim, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(randSigs(r, n, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	queries := make([]*vecmath.Sparse, 16)
	for i := range queries {
		queries[i] = randSigs(r, 1, dim, nnz)[0].W
	}
	want, err := db.TopKBatch(queries, k, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w%2 == 0 {
					got, err := db.TopKBatch(queries, k, EuclideanMetric())
					if err != nil {
						t.Error(err)
						return
					}
					for qi := range got {
						if got[qi][0].Score != want[qi][0].Score {
							t.Errorf("concurrent batch diverged on query %d", qi)
							return
						}
					}
				} else {
					q := queries[i%len(queries)]
					got, err := db.TopKSparse(q, k, EuclideanMetric())
					if err != nil {
						t.Error(err)
						return
					}
					if got[0].Score != want[i%len(queries)][0].Score {
						t.Errorf("concurrent single query diverged")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestIndexSurvivesSnapshotRoundTrip checks the persistence story: the
// index is rebuilt incrementally on snapshot load (no format change),
// and a reloaded DB answers indexed queries bit-identically at a
// different shard count.
func TestIndexSurvivesSnapshotRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	const dim, n, nnz, k = 120, 90, 14, 8
	db, err := NewShardedDB(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(randSigs(r, n, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	query := randSigs(r, 1, dim, nnz)[0].W
	want, err := db.TopKSparse(query, k, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Indexed() {
		t.Fatal("restored DB should route through the index by default")
	}
	got, err := restored.TopKSparse(query, k, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "post-reload indexed", got, want)
	sameResults(t, "post-reload scan", got, scanResults(t, restored, query, k, EuclideanMetric()))
}
