package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Snapshot format v2: a directory instead of a single file, so a
// long-lived operator database saves in O(new data) instead of O(total).
// Layout:
//
//	<dir>/MANIFEST.json   — format marker, dim/shards/count, and the
//	                        ordered per-shard segment lists (file name,
//	                        record count, CRC32 of the file body)
//	<dir>/seg-<id>.fms    — one file per segment:
//	  magic   "FMSG"                      (4 bytes)
//	  version uint16                      (currently 1)
//	  dim     uint32
//	  count   uint32
//	  count × signature records           (same encoding as v1, in
//	                                       shard-local insertion order)
//	  crc32   uint32                      (IEEE, over all preceding bytes)
//
// SaveDir writes only segments dirtied since the last save; every file
// lands via temp + fsync + rename, and the manifest is renamed last, so
// a crash at any point leaves the previous save fully loadable (new
// segment files without a manifest referencing them are orphans,
// removed by the next successful save). LoadDir verifies each segment
// file's CRC against both its footer and the manifest before parsing a
// single record, and any mismatch, truncation, or missing file yields a
// *SnapshotError naming the file — never a partial DB.
//
// Global insertion indices are not stored: segment k's records occupy
// the shard-local range right after segment k-1's, and shard-local
// position j in shard s maps to gid j·shards + s (the round-robin
// inverse), so a reload reconstructs the exact (score, insertion index)
// total order and answers TopK bit-identically.
const (
	manifestName    = "MANIFEST.json"
	manifestFormat  = "fmdb-dir"
	manifestVersion = 2
	segMagic        = "FMSG"
	segVersion      = 1
	// segHeaderSize is the fixed segment prefix: magic + version + dim +
	// count.
	segHeaderSize = 4 + 2 + 4 + 4
)

// segmentFileName names segment id's file inside a snapshot directory.
func segmentFileName(id uint64) string { return fmt.Sprintf("seg-%08d.fms", id) }

// SnapshotError reports a corrupt, missing, or unreadable piece of a v2
// snapshot directory. It is typed so callers can tell storage corruption
// from API misuse, and it always names the offending file.
type SnapshotError struct {
	// Path is the file that failed (a segment file or the manifest).
	Path string
	// Err is the underlying cause (CRC mismatch, truncation, fs error).
	Err error
}

// Error implements error.
func (e *SnapshotError) Error() string {
	return fmt.Sprintf("core: snapshot file %s: %v", e.Path, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *SnapshotError) Unwrap() error { return e.Err }

// manifestJSON is the on-disk manifest.
type manifestJSON struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Dim     int    `json:"dim"`
	Shards  int    `json:"shards"`
	Count   int    `json:"count"`
	NextSeg uint64 `json:"next_segment"`
	// Segments lists each shard's segments in shard-local record order.
	Segments [][]manifestSegment `json:"segments"`
}

// manifestSegment is one segment's manifest entry.
type manifestSegment struct {
	ID      uint64 `json:"id"`
	File    string `json:"file"`
	Records int    `json:"records"`
	CRC32   uint32 `json:"crc32"`
}

// SaveDir persists the database into the v2 snapshot directory at path,
// creating it if needed. Only segments dirtied since the last SaveDir to
// the same path are rewritten (newly added or compacted data — the
// active segments plus any compaction outputs); a steady append workload
// therefore saves in O(new data). Every file is written to a temp name,
// fsynced, and renamed; the manifest goes last, so a crash mid-save
// never corrupts the previous snapshot. Files from replaced segments
// (compaction inputs) and abandoned temp files are removed after the new
// manifest is durable.
func (db *DB) SaveDir(path string) error {
	if db.dim > maxSnapshotDim {
		return fmt.Errorf("core: dimension %d exceeds snapshot format bound %d", db.dim, maxSnapshotDim)
	}
	if len(db.shards) > maxSnapshotShards {
		return fmt.Errorf("core: shard count %d exceeds snapshot format bound %d", len(db.shards), maxSnapshotShards)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return &SnapshotError{Path: path, Err: err}
	}
	if db.saveDir != path {
		// A different target directory knows nothing of this DB: every
		// segment must land there.
		for si := range db.shards {
			for _, sg := range db.shards[si].segs {
				sg.dirty = true
			}
		}
	}
	wrote := false
	for si := range db.shards {
		sh := &db.shards[si]
		for _, sg := range sh.segs {
			if !sg.dirty {
				continue
			}
			if sg.saved {
				// This segment's file is (or may be) referenced by a
				// durable manifest — a grown active segment being
				// re-saved, or a save into a fresh directory. Write
				// under a fresh id and let the old file live as an
				// orphan until the new manifest is durable, so a crash
				// anywhere in this save leaves the previous snapshot
				// loadable.
				sg.id = db.nextSeg
				db.nextSeg++
			}
			crc, err := db.writeSegmentFile(path, sh, sg)
			if err != nil {
				return err
			}
			sg.crc = crc
			sg.dirty = false
			sg.saved = true
			wrote = true
		}
	}
	// Make the segment renames durable before the manifest can name
	// them: without this ordering a crash could persist the new manifest
	// but not a segment file's directory entry.
	if wrote {
		if err := syncDir(path); err != nil {
			return &SnapshotError{Path: path, Err: err}
		}
	}
	m := manifestJSON{
		Format:   manifestFormat,
		Version:  manifestVersion,
		Dim:      db.dim,
		Shards:   len(db.shards),
		Count:    db.total,
		NextSeg:  db.nextSeg,
		Segments: make([][]manifestSegment, len(db.shards)),
	}
	live := map[string]bool{manifestName: true}
	for si := range db.shards {
		entries := []manifestSegment{}
		for _, sg := range db.shards[si].segs {
			name := segmentFileName(sg.id)
			entries = append(entries, manifestSegment{ID: sg.id, File: name, Records: sg.len(), CRC32: sg.crc})
			live[name] = true
		}
		m.Segments[si] = entries
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding manifest: %w", err)
	}
	mpath := filepath.Join(path, manifestName)
	if err := writeFileAtomic(mpath, append(buf, '\n')); err != nil {
		return &SnapshotError{Path: mpath, Err: err}
	}
	if err := syncDir(path); err != nil {
		return &SnapshotError{Path: path, Err: err}
	}
	db.saveDir = path
	return removeOrphans(path, live)
}

// removeOrphans deletes segment and temp files the manifest no longer
// references: compaction inputs, crash leftovers. Safe only after the
// new manifest is durable.
func removeOrphans(dir string, live map[string]bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return &SnapshotError{Path: dir, Err: err}
	}
	for _, e := range entries {
		name := e.Name()
		stale := strings.HasPrefix(name, ".tmp-") ||
			(strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".fms") && !live[name])
		if !stale {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return &SnapshotError{Path: filepath.Join(dir, name), Err: err}
		}
	}
	return nil
}

// writeSegmentFile writes one segment's file atomically and returns the
// CRC32 of its body (everything before the footer).
func (db *DB) writeSegmentFile(dir string, sh *dbShard, sg *segment) (uint32, error) {
	final := filepath.Join(dir, segmentFileName(sg.id))
	f, err := os.CreateTemp(dir, ".tmp-seg-*")
	if err != nil {
		return 0, &SnapshotError{Path: final, Err: err}
	}
	tmp := f.Name()
	fail := func(err error) (uint32, error) {
		f.Close()
		os.Remove(tmp)
		return 0, &SnapshotError{Path: final, Err: err}
	}
	h := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(f, h))
	le := binary.LittleEndian
	var hdr [segHeaderSize]byte
	copy(hdr[:4], segMagic)
	le.PutUint16(hdr[4:6], segVersion)
	le.PutUint32(hdr[6:10], uint32(db.dim))
	le.PutUint32(hdr[10:14], uint32(sg.len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fail(err)
	}
	for j := sg.start; j < sg.end; j++ {
		if err := writeSigRecord(bw, sh.sigs[j]); err != nil {
			return fail(fmt.Errorf("record %d: %w", j-sg.start, err))
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	crc := h.Sum32()
	var foot [4]byte
	le.PutUint32(foot[:], crc)
	if _, err := f.Write(foot[:]); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, &SnapshotError{Path: final, Err: err}
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, &SnapshotError{Path: final, Err: err}
	}
	return crc, nil
}

// writeFileAtomic writes data to path via temp + fsync + rename: readers
// only ever observe the old content or the new, never a torn write.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, ".tmp-"+base+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadDir loads a v2 snapshot directory written by SaveDir. Every
// segment file's CRC is verified against both its own footer and the
// manifest before any record is parsed; corruption, truncation, or a
// missing file yields a *SnapshotError naming the file, never a
// partially loaded database. All loaded segments are sealed — the next
// Add opens a fresh active segment — and the DB remembers the directory,
// so an immediate SaveDir back to it rewrites nothing but the manifest.
func LoadDir(path string) (*DB, error) {
	mpath := filepath.Join(path, manifestName)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		return nil, &SnapshotError{Path: mpath, Err: err}
	}
	var m manifestJSON
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, &SnapshotError{Path: mpath, Err: err}
	}
	if m.Format != manifestFormat {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("format %q, want %q", m.Format, manifestFormat)}
	}
	if m.Version != manifestVersion {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("unsupported version %d (have %d)", m.Version, manifestVersion)}
	}
	if m.Dim < 1 || m.Dim > maxSnapshotDim {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("dimension %d outside [1, %d]", m.Dim, maxSnapshotDim)}
	}
	if m.Shards < 1 || m.Shards > maxSnapshotShards {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("shard count %d outside [1, %d]", m.Shards, maxSnapshotShards)}
	}
	if m.Count < 0 || len(m.Segments) != m.Shards {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("count %d / %d shard segment lists inconsistent with %d shards", m.Count, len(m.Segments), m.Shards)}
	}
	db, err := NewShardedDB(m.Dim, m.Shards)
	if err != nil {
		return nil, err
	}
	seen := make(map[uint64]bool)
	for si, list := range m.Segments {
		sh := &db.shards[si]
		for _, ent := range list {
			if seen[ent.ID] {
				return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("segment id %d listed twice", ent.ID)}
			}
			seen[ent.ID] = true
			if ent.ID >= m.NextSeg {
				return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("segment id %d >= next_segment %d", ent.ID, m.NextSeg)}
			}
			if ent.File != segmentFileName(ent.ID) {
				return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("segment %d file %q, want %q", ent.ID, ent.File, segmentFileName(ent.ID))}
			}
			if err := db.loadSegmentFile(path, si, sh, ent); err != nil {
				return nil, err
			}
		}
		// The round-robin inverse: shard si must hold exactly the gids
		// congruent to si mod shards below count.
		want := 0
		if m.Count > si {
			want = (m.Count - si + m.Shards - 1) / m.Shards
		}
		if len(sh.sigs) != want {
			return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("shard %d holds %d records, want %d of %d total", si, len(sh.sigs), want, m.Count)}
		}
	}
	db.total = m.Count
	db.nextSeg = m.NextSeg
	db.saveDir = path
	return db, nil
}

// loadSegmentFile verifies and parses one segment file, appending its
// records to shard si as a sealed segment.
func (db *DB) loadSegmentFile(dir string, si int, sh *dbShard, ent manifestSegment) error {
	path := filepath.Join(dir, ent.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		return &SnapshotError{Path: path, Err: err}
	}
	if len(raw) < segHeaderSize+4 {
		return &SnapshotError{Path: path, Err: fmt.Errorf("truncated: %d bytes, need at least %d", len(raw), segHeaderSize+4)}
	}
	body, foot := raw[:len(raw)-4], raw[len(raw)-4:]
	le := binary.LittleEndian
	crc := crc32.ChecksumIEEE(body)
	if got := le.Uint32(foot); got != crc {
		return &SnapshotError{Path: path, Err: fmt.Errorf("CRC mismatch: footer %08x, body computes %08x", got, crc)}
	}
	if crc != ent.CRC32 {
		return &SnapshotError{Path: path, Err: fmt.Errorf("CRC %08x does not match manifest's %08x", crc, ent.CRC32)}
	}
	if string(body[:4]) != segMagic {
		return &SnapshotError{Path: path, Err: fmt.Errorf("bad segment magic %q", body[:4])}
	}
	if v := le.Uint16(body[4:6]); v != segVersion {
		return &SnapshotError{Path: path, Err: fmt.Errorf("unsupported segment version %d (have %d)", v, segVersion)}
	}
	if d := le.Uint32(body[6:10]); int(d) != db.dim {
		return &SnapshotError{Path: path, Err: fmt.Errorf("dimension %d, manifest says %d", d, db.dim)}
	}
	count := le.Uint32(body[10:14])
	if int(count) != ent.Records {
		return &SnapshotError{Path: path, Err: fmt.Errorf("record count %d, manifest says %d", count, ent.Records)}
	}
	// A record is at least 6 bytes (two empty strings + nnz), so a count
	// beyond this bound cannot be satisfied by the body — reject before
	// looping.
	if int64(count) > int64(len(body)-segHeaderSize)/6 {
		return &SnapshotError{Path: path, Err: fmt.Errorf("record count %d exceeds file capacity", count)}
	}
	ix, err := NewIndex(db.dim)
	if err != nil {
		return err
	}
	sg := &segment{id: ent.ID, start: len(sh.sigs), end: len(sh.sigs), index: ix, sealed: true, crc: crc, saved: true}
	br := bytes.NewReader(body[segHeaderSize:])
	for i := 0; i < int(count); i++ {
		sig, err := readSigRecord(br, db.dim)
		if err != nil {
			return &SnapshotError{Path: path, Err: fmt.Errorf("record %d: %w", i, err)}
		}
		sh.gids = append(sh.gids, len(sh.sigs)*len(db.shards)+si)
		sh.sigs = append(sh.sigs, sig)
		sh.norms = append(sh.norms, sig.W.Norm2())
		sg.index.Add(sig.W)
		sg.end++
	}
	if br.Len() != 0 {
		return &SnapshotError{Path: path, Err: fmt.Errorf("%d trailing bytes after record %d", br.Len(), count)}
	}
	sh.segs = append(sh.segs, sg)
	return nil
}
