package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Snapshot format v2: a directory instead of a single file, so a
// long-lived operator database saves in O(new data) instead of O(total).
// Layout:
//
//	<dir>/MANIFEST.json   — format marker, dim/shards/count, and the
//	                        ordered per-shard segment lists (file name,
//	                        record count, CRC32 of the file body)
//	<dir>/seg-<id>.fms    — one file per segment:
//	  magic   "FMSG"                      (4 bytes)
//	  version uint16                      (1 or 2)
//	  dim     uint32
//	  count   uint32
//	  <version-specific body>
//	  crc32   uint32                      (IEEE, over all preceding bytes)
//
// A version-1 body (the original v2 directory format, still read) is
// count signature records in the v1 snapshot encoding. A version-2 body
// (the "v2.1" record) is:
//
//	flags   uint8                         (bit 0: postings section present)
//	count × signature records             (v2.1 encoding: uvarint-gap
//	                                       support indices, raw float64
//	                                       weights — see writeSigRecordV2)
//	postings section (iff flags&1):       the sealed segment's
//	                                       block-compressed posting lists
//	                                       (see writePostingsSection) so a
//	                                       load maps them directly instead
//	                                       of rebuilding the inverted
//	                                       index posting by posting
//
// Both bodies decode to bit-identical signatures; the v2.1 record is
// smaller (gap-encoded support indices) even though it additionally
// carries the postings. Loading validates the postings section fully:
// every posting's (dimension, id, ordinal) must name exactly its
// signature's support entry, ids must ascend, and the total must equal
// the summed support sizes — a bijection check, so a crafted postings
// section can never make queries disagree with the stored signatures.
//
// SaveDir writes only segments dirtied since the last save; every file
// lands via temp + fsync + rename, and the manifest is renamed last, so
// a crash at any point leaves the previous save fully loadable (new
// segment files without a manifest referencing them are orphans,
// removed by the next successful save). LoadDir verifies each segment
// file's CRC against both its footer and the manifest before parsing a
// single record, and any mismatch, truncation, or missing file yields a
// *SnapshotError naming the file — never a partial DB.
//
// Global insertion indices are not stored: segment k's records occupy
// the shard-local range right after segment k-1's, and shard-local
// position j in shard s maps to gid j·shards + s (the round-robin
// inverse), so a reload reconstructs the exact (score, insertion index)
// total order and answers TopK bit-identically.
const (
	manifestName    = "MANIFEST.json"
	manifestFormat  = "fmdb-dir"
	manifestVersion = 2
	segMagic        = "FMSG"
	// segVersion is the original record body (v1 signature records, no
	// postings); still read, no longer written.
	segVersion = 1
	// segVersionBlocks is the v2.1 record body: gap-encoded signature
	// records plus the sealed segment's compressed posting blocks.
	segVersionBlocks = 2
	// segFlagPostings marks a v2.1 record carrying a postings section.
	segFlagPostings = 0x01
	// segHeaderSize is the fixed segment prefix: magic + version + dim +
	// count.
	segHeaderSize = 4 + 2 + 4 + 4
)

// segmentFileName names segment id's file inside a snapshot directory.
func segmentFileName(id uint64) string { return fmt.Sprintf("seg-%08d.fms", id) }

// SnapshotError reports a corrupt, missing, or unreadable piece of a
// snapshot — a v2 directory file, or the v1/model byte streams. It is
// typed so callers can tell storage corruption from API misuse, and it
// names the offending file when the snapshot has one.
type SnapshotError struct {
	// Path is the file that failed (a segment file or the manifest).
	// Empty for stream snapshots (WriteSnapshot/ReadSnapshot and the
	// model codecs), which read whatever the caller handed them.
	Path string
	// Err is the underlying cause (CRC mismatch, truncation, fs error).
	Err error
}

// Error implements error.
func (e *SnapshotError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("core: snapshot: %v", e.Err)
	}
	return fmt.Sprintf("core: snapshot file %s: %v", e.Path, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *SnapshotError) Unwrap() error { return e.Err }

// manifestJSON is the on-disk manifest.
type manifestJSON struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Dim     int    `json:"dim"`
	Shards  int    `json:"shards"`
	Count   int    `json:"count"`
	NextSeg uint64 `json:"next_segment"`
	// Segments lists each shard's segments in shard-local record order.
	Segments [][]manifestSegment `json:"segments"`
}

// manifestSegment is one segment's manifest entry.
type manifestSegment struct {
	ID      uint64 `json:"id"`
	File    string `json:"file"`
	Records int    `json:"records"`
	CRC32   uint32 `json:"crc32"`
}

// SaveDir persists the database into the v2 snapshot directory at path,
// creating it if needed. Only segments dirtied since the last SaveDir to
// the same path are rewritten (newly added or compacted data — the
// active segments plus any compaction outputs); a steady append workload
// therefore saves in O(new data). Every file is written to a temp name,
// fsynced, and renamed; the manifest goes last, so a crash mid-save
// never corrupts the previous snapshot. Files from replaced segments
// (compaction inputs) and abandoned temp files are removed after the new
// manifest is durable — except files a pinned epoch view may still be
// reading (spliced-away mapped segments), whose removal is deferred
// until the last such view drains; a deferred removal's failure
// surfaces from the next SaveDir that reaches a quiescent store.
//
// SaveDir serializes with Add/Seal/Compact (one writer side) but never
// blocks queries, which keep scoring their pinned views throughout.
// Every failure is a typed *SnapshotError (or *ConfigError for misuse
// of a closed database).
//
//fmeter:errdomain snapshot
func (db *DB) SaveDir(path string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed()
	}
	if db.dim > maxSnapshotDim {
		return &SnapshotError{Path: path, Err: fmt.Errorf("dimension %d exceeds snapshot format bound %d", db.dim, maxSnapshotDim)}
	}
	if len(db.shards) > maxSnapshotShards {
		return &SnapshotError{Path: path, Err: fmt.Errorf("shard count %d exceeds snapshot format bound %d", len(db.shards), maxSnapshotShards)}
	}
	if err := fsMkdirAll(path, 0o755); err != nil {
		return &SnapshotError{Path: path, Err: err}
	}
	if db.saveDir != path {
		// A different target directory knows nothing of this DB: every
		// segment must land there.
		for si := range db.shards {
			for _, sg := range db.shards[si].segs {
				sg.dirty = true
			}
		}
	}
	wrote := false
	for si := range db.shards {
		sh := &db.shards[si]
		for _, sg := range sh.segs {
			if !sg.dirty {
				continue
			}
			if sg.saved {
				// This segment's file is (or may be) referenced by a
				// durable manifest — a grown active segment being
				// re-saved, or a save into a fresh directory. Write
				// under a fresh id and let the old file live as an
				// orphan until the new manifest is durable, so a crash
				// anywhere in this save leaves the previous snapshot
				// loadable.
				sg.id = db.nextSeg
				db.nextSeg++
			}
			crc, err := db.writeSegmentFile(path, sh, sg)
			if err != nil {
				return err
			}
			sg.crc = crc
			sg.dirty = false
			sg.saved = true
			wrote = true
		}
	}
	// Make the segment renames durable before the manifest can name
	// them: without this ordering a crash could persist the new manifest
	// but not a segment file's directory entry.
	if wrote {
		if err := syncDir(path); err != nil {
			return &SnapshotError{Path: path, Err: err}
		}
	}
	m := manifestJSON{
		Format:   manifestFormat,
		Version:  manifestVersion,
		Dim:      db.dim,
		Shards:   len(db.shards),
		Count:    db.total,
		NextSeg:  db.nextSeg,
		Segments: make([][]manifestSegment, len(db.shards)),
	}
	live := map[string]bool{manifestName: true}
	for si := range db.shards {
		entries := []manifestSegment{}
		for _, sg := range db.shards[si].segs {
			name := segmentFileName(sg.id)
			entries = append(entries, manifestSegment{ID: sg.id, File: name, Records: sg.len(), CRC32: sg.crc})
			live[name] = true
		}
		m.Segments[si] = entries
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return &SnapshotError{Path: path, Err: fmt.Errorf("encoding manifest: %w", err)}
	}
	mpath := filepath.Join(path, manifestName)
	if err := writeFileAtomic(mpath, append(buf, '\n')); err != nil {
		return &SnapshotError{Path: mpath, Err: err}
	}
	if err := syncDir(path); err != nil {
		return &SnapshotError{Path: path, Err: err}
	}
	db.saveDir = path
	// The replaced files are garbage now that the manifest is durable,
	// but a pinned view may still be scoring a mapped blob in one of
	// them — so list the orphans NOW (a later listing could catch a
	// subsequent save's fresh temp files) and remove the named files
	// only when every view predating this save has drained.
	stale, err := listOrphans(path, live)
	if err != nil {
		return err
	}
	if len(stale) > 0 {
		db.publishLocked(func() {
			for _, name := range stale {
				fp := filepath.Join(path, name)
				// Two overlapping saves can both list the same orphan
				// (the first's removal was still deferred when the
				// second scanned), so an already-gone file is success.
				if err := fsRemove(fp); err != nil && !os.IsNotExist(err) && db.orphanErr == nil {
					db.orphanErr = &SnapshotError{Path: fp, Err: err}
				}
			}
		})
	}
	// With no concurrent readers the publish drained synchronously, so a
	// removal failure surfaces here — the quiescent-caller contract. A
	// failure during a genuinely deferred removal is reported by the
	// next SaveDir to find the store quiescent.
	db.reclMu.Lock()
	defer db.reclMu.Unlock()
	if len(db.pendingViews) == 0 {
		err := db.orphanErr
		db.orphanErr = nil
		return err
	}
	return nil
}

// listOrphans names segment and temp files the manifest no longer
// references: compaction inputs, crash leftovers. Valid only after the
// new manifest is durable.
//
//fmeter:errdomain snapshot
func listOrphans(dir string, live map[string]bool) ([]string, error) {
	entries, err := fsReadDir(dir)
	if err != nil {
		return nil, &SnapshotError{Path: dir, Err: err}
	}
	var stale []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp-") ||
			(strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".fms") && !live[name]) {
			stale = append(stale, name)
		}
	}
	return stale, nil
}

// writeSegmentFile writes one segment's file atomically and returns the
// CRC32 of its body (everything before the footer).
//
//fmeter:errdomain snapshot
func (db *DB) writeSegmentFile(dir string, sh *dbShard, sg *segment) (uint32, error) {
	final := filepath.Join(dir, segmentFileName(sg.id))
	f, err := fsCreateTemp(dir, ".tmp-seg-*")
	if err != nil {
		return 0, &SnapshotError{Path: final, Err: err}
	}
	tmp := f.Name()
	fail := func(err error) (uint32, error) {
		f.Close()
		fsRemove(tmp)
		return 0, &SnapshotError{Path: final, Err: err}
	}
	h := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(faultFile{f}, h))
	le := binary.LittleEndian
	var hdr [segHeaderSize]byte
	copy(hdr[:4], segMagic)
	le.PutUint16(hdr[4:6], segVersionBlocks)
	le.PutUint32(hdr[6:10], uint32(db.dim))
	le.PutUint32(hdr[10:14], uint32(sg.len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fail(err)
	}
	var flags byte
	if sg.blocks != nil {
		flags |= segFlagPostings
	}
	if err := bw.WriteByte(flags); err != nil {
		return fail(err)
	}
	for j := sg.start; j < sg.end; j++ {
		if err := writeSigRecordV2(bw, sh.sigs[j]); err != nil {
			return fail(fmt.Errorf("record %d: %w", j-sg.start, err))
		}
	}
	if sg.blocks != nil {
		if err := writePostingsSection(bw, sg.blocks); err != nil {
			return fail(fmt.Errorf("postings: %w", err))
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	crc := h.Sum32()
	var foot [4]byte
	le.PutUint32(foot[:], crc)
	if _, err := fsWrite(f, foot[:]); err != nil {
		return fail(err)
	}
	if err := fsSync(f); err != nil {
		return fail(err)
	}
	if err := fsClose(f); err != nil {
		fsRemove(tmp)
		return 0, &SnapshotError{Path: final, Err: err}
	}
	if err := fsRename(tmp, final); err != nil {
		fsRemove(tmp)
		return 0, &SnapshotError{Path: final, Err: err}
	}
	return crc, nil
}

// writeFileAtomic writes data to path via temp + fsync + rename: readers
// only ever observe the old content or the new, never a torn write.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	f, err := fsCreateTemp(dir, ".tmp-"+base+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := fsWrite(f, data); err != nil {
		f.Close()
		fsRemove(tmp)
		return err
	}
	if err := fsSync(f); err != nil {
		f.Close()
		fsRemove(tmp)
		return err
	}
	if err := fsClose(f); err != nil {
		fsRemove(tmp)
		return err
	}
	if err := fsRename(tmp, path); err != nil {
		fsRemove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(path string) error {
	if err := fsCheck(opSyncDir, path); err != nil {
		return err
	}
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadOptions tunes how LoadDirOpts materializes a snapshot directory.
type LoadOptions struct {
	// MapPostings serves sealed segments' postings blobs out of
	// read-only memory mappings of their segment files instead of heap
	// copies: cold opens stop copying postings bytes, resident heap
	// drops to signature rows plus descriptors, and the OS pages cold
	// posting blocks in and out on demand — the larger-than-RAM-corpus
	// mode. Validation is unchanged (CRC, manifest cross-check, and the
	// full postings bijection all run against the mapped bytes before
	// any query can see them), and queries are bit-identical to a heap
	// load. On platforms without mmap support, or when a mapping fails,
	// the load silently degrades to the heap read path segment by
	// segment. A mapped DB must be released with Close; mutating the
	// mapped files (or their filesystem) behind a live mapping is
	// undefined, so keep the snapshot directory owned by the DB.
	MapPostings bool
}

// LoadDir loads a v2 snapshot directory written by SaveDir. Every
// segment file's CRC is verified against both its own footer and the
// manifest before any record is parsed; corruption, truncation, or a
// missing file yields a *SnapshotError naming the file, never a
// partially loaded database. All loaded segments are sealed — the next
// Add opens a fresh active segment — and the DB remembers the directory,
// so an immediate SaveDir back to it rewrites nothing but the manifest.
func LoadDir(path string) (*DB, error) { return LoadDirOpts(path, LoadOptions{}) }

// LoadDirMapped is LoadDir with MapPostings: sealed postings are served
// off read-only mappings of the segment files (see LoadOptions).
func LoadDirMapped(path string) (*DB, error) {
	return LoadDirOpts(path, LoadOptions{MapPostings: true})
}

// LoadDirOpts is LoadDir under explicit options.
//
//fmeter:errdomain snapshot
func LoadDirOpts(path string, opts LoadOptions) (*DB, error) {
	mpath := filepath.Join(path, manifestName)
	raw, err := fsReadFile(mpath)
	if err != nil {
		return nil, &SnapshotError{Path: mpath, Err: err}
	}
	var m manifestJSON
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, &SnapshotError{Path: mpath, Err: err}
	}
	if m.Format != manifestFormat {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("format %q, want %q", m.Format, manifestFormat)}
	}
	if m.Version != manifestVersion {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("unsupported version %d (have %d)", m.Version, manifestVersion)}
	}
	if m.Dim < 1 || m.Dim > maxSnapshotDim {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("dimension %d outside [1, %d]", m.Dim, maxSnapshotDim)}
	}
	if m.Shards < 1 || m.Shards > maxSnapshotShards {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("shard count %d outside [1, %d]", m.Shards, maxSnapshotShards)}
	}
	if m.Count < 0 || len(m.Segments) != m.Shards {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("count %d / %d shard segment lists inconsistent with %d shards", m.Count, len(m.Segments), m.Shards)}
	}
	db, err := NewShardedDB(m.Dim, m.Shards)
	if err != nil {
		return nil, err
	}
	// From here on the DB may hold live segment mappings; every failure
	// path must release them (Close) before discarding it.
	fail := func(err error) (*DB, error) {
		db.Close()
		return nil, err
	}
	seen := make(map[uint64]bool)
	for si, list := range m.Segments {
		sh := &db.shards[si]
		for _, ent := range list {
			if seen[ent.ID] {
				return fail(&SnapshotError{Path: mpath, Err: fmt.Errorf("segment id %d listed twice", ent.ID)})
			}
			seen[ent.ID] = true
			if ent.ID >= m.NextSeg {
				return fail(&SnapshotError{Path: mpath, Err: fmt.Errorf("segment id %d >= next_segment %d", ent.ID, m.NextSeg)})
			}
			if ent.File != segmentFileName(ent.ID) {
				return fail(&SnapshotError{Path: mpath, Err: fmt.Errorf("segment %d file %q, want %q", ent.ID, ent.File, segmentFileName(ent.ID))})
			}
			if err := db.loadSegmentFile(path, si, sh, ent, opts); err != nil {
				return fail(err)
			}
		}
		// The round-robin inverse: shard si must hold exactly the gids
		// congruent to si mod shards below count.
		want := 0
		if m.Count > si {
			want = (m.Count - si + m.Shards - 1) / m.Shards
		}
		if len(sh.sigs) != want {
			return fail(&SnapshotError{Path: mpath, Err: fmt.Errorf("shard %d holds %d records, want %d of %d total", si, len(sh.sigs), want, m.Count)})
		}
	}
	db.total = m.Count
	db.nextSeg = m.NextSeg
	db.saveDir = path
	// The DB is still private to this goroutine; refresh the published
	// view to cover the loaded segments before anyone can pin it.
	db.cur.Store(db.buildViewLocked())
	return db, nil
}

// loadSegmentFile verifies and parses one segment file, appending its
// records to shard si as a sealed segment. With opts.MapPostings the
// file is memory-mapped instead of read: every validation below runs
// against the mapped bytes, signature rows are still decoded onto the
// heap (they outlive any one segment layout), but the postings blob is
// aliased straight into the read-only mapping — the segment keeps the
// mapping handle and owns its lifetime (released by Close, or by
// Compact when the blob is spliced into a heap copy). A failed mapping
// silently falls back to the heap read path.
//
//fmeter:errdomain snapshot
func (db *DB) loadSegmentFile(dir string, si int, sh *dbShard, ent manifestSegment, opts LoadOptions) error {
	path := filepath.Join(dir, ent.File)
	var mf *mapFile
	var raw []byte
	if opts.MapPostings {
		if m, err := mapOpen(path); err == nil {
			mf = m
			raw = m.bytes()
		}
	}
	if raw == nil {
		r, err := fsReadFile(path)
		if err != nil {
			return &SnapshotError{Path: path, Err: err}
		}
		raw = r
	}
	// Any failure below discards the whole load: release the mapping
	// before the error can orphan it.
	fail := func(err error) error {
		mf.close()
		return &SnapshotError{Path: path, Err: err}
	}
	if len(raw) < segHeaderSize+4 {
		return fail(fmt.Errorf("truncated: %d bytes, need at least %d", len(raw), segHeaderSize+4))
	}
	body, foot := raw[:len(raw)-4], raw[len(raw)-4:]
	le := binary.LittleEndian
	crc := crc32.ChecksumIEEE(body)
	if got := le.Uint32(foot); got != crc {
		return fail(fmt.Errorf("CRC mismatch: footer %08x, body computes %08x", got, crc))
	}
	if crc != ent.CRC32 {
		return fail(fmt.Errorf("CRC %08x does not match manifest's %08x", crc, ent.CRC32))
	}
	if string(body[:4]) != segMagic {
		return fail(fmt.Errorf("bad segment magic %q", body[:4]))
	}
	version := le.Uint16(body[4:6])
	if version != segVersion && version != segVersionBlocks {
		return fail(fmt.Errorf("unsupported segment version %d (have %d and %d)", version, segVersion, segVersionBlocks))
	}
	if d := le.Uint32(body[6:10]); int(d) != db.dim {
		return fail(fmt.Errorf("dimension %d, manifest says %d", d, db.dim))
	}
	count := le.Uint32(body[10:14])
	if int(count) != ent.Records {
		return fail(fmt.Errorf("record count %d, manifest says %d", count, ent.Records))
	}
	// A v1 record is at least 6 bytes (two empty strings + uint32 nnz), a
	// v2.1 record at least 3 (three uvarints), so a count beyond this
	// bound cannot be satisfied by the body — reject before looping.
	minRecord := int64(6)
	if version == segVersionBlocks {
		minRecord = 3
	}
	if int64(count) > int64(len(body)-segHeaderSize)/minRecord {
		return fail(fmt.Errorf("record count %d exceeds file capacity", count))
	}
	sg := &segment{id: ent.ID, start: len(sh.sigs), end: len(sh.sigs), sealed: true, crc: crc, saved: true}
	if version == segVersion {
		// v1 record body: the original stream encoding, decoded through
		// the same reader the v1 snapshot path uses. No postings section
		// exists, so a mapping buys nothing — fall through to the heap
		// rebuild below and release it.
		br := bytes.NewReader(body[segHeaderSize:])
		for i := 0; i < int(count); i++ {
			sig, err := readSigRecord(br, db.dim)
			if err != nil {
				return fail(fmt.Errorf("record %d: %w", i, err))
			}
			sh.gids = append(sh.gids, len(sh.sigs)*len(db.shards)+si)
			sh.sigs = append(sh.sigs, sig)
			sh.norms = append(sh.norms, sig.W.Norm2())
			sg.end++
		}
		if br.Len() != 0 {
			return fail(fmt.Errorf("%d trailing bytes after record %d", br.Len(), count))
		}
		if err := db.rebuildSegmentPostings(sh, sg); err != nil {
			mf.close()
			return err
		}
		mf.close()
		sh.segs = append(sh.segs, sg)
		return nil
	}
	// v2.1 record body, decoded with the direct byte cursor (no reader
	// indirection on the half-million-uvarint hot path of a cold open).
	cur := byteCursor{b: body[segHeaderSize:]}
	flags, err := cur.byte()
	if err != nil {
		return fail(fmt.Errorf("flags: %w", err))
	}
	if flags&^segFlagPostings != 0 {
		return fail(fmt.Errorf("unknown segment flags %#02x", flags))
	}
	var arena sigArena
	for i := 0; i < int(count); i++ {
		sig, err := readSigRecordV2(&cur, db.dim, &arena)
		if err != nil {
			return fail(fmt.Errorf("record %d: %w", i, err))
		}
		sh.gids = append(sh.gids, len(sh.sigs)*len(db.shards)+si)
		sh.sigs = append(sh.sigs, sig)
		sh.norms = append(sh.norms, sig.W.Norm2())
		sg.end++
	}
	rows := sh.sigs[sg.start:sg.end]
	if flags&segFlagPostings != 0 {
		bp, err := readPostingsSection(&cur, rows, db.dim, mf != nil)
		if err != nil {
			return fail(fmt.Errorf("postings: %w", err))
		}
		sg.blocks = bp
	} else {
		if err := db.rebuildSegmentPostings(sh, sg); err != nil {
			mf.close()
			return err
		}
	}
	if rest := len(cur.b) - cur.pos; rest != 0 {
		return fail(fmt.Errorf("%d trailing bytes after record %d", rest, count))
	}
	if sg.blocks != nil && sg.blocks.blobMapped {
		// The blob aliases the mapping: the segment owns the handle from
		// here (Close/Compact release it). Without a kept alias the
		// mapping has served its purpose — drop it now.
		sg.mf = mf
	} else {
		mf.close()
	}
	sh.segs = append(sh.segs, sg)
	return nil
}

// rebuildSegmentPostings rebuilds a loaded segment's posting lists from
// its rows and compresses them — the path for bodies that carry no
// postings section (v1 files, or segments saved while still active),
// the one load that still pays the posting-by-posting rebuild.
//
//fmeter:errdomain config
func (db *DB) rebuildSegmentPostings(sh *dbShard, sg *segment) error {
	ix, err := NewIndex(db.dim)
	if err != nil {
		return err
	}
	rows := sh.sigs[sg.start:sg.end]
	for _, sig := range rows {
		ix.Add(sig.W)
	}
	sg.blocks = compressIndex(ix, rows)
	return nil
}

// writePostingsSection appends a sealed segment's compressed posting
// lists: the posting total and blob length (both cross-checked on
// load), then for each dimension holding postings its uvarint gap from
// the previous such dimension, its block count, and each block's
// (firstID, count) pair, then the raw block byte streams. Block blob
// offsets and the per-block max-|weight| are not stored — the load-time
// validation pass recomputes both while it walks the blob once.
func writePostingsSection(bw *bufio.Writer, bp *blockPostings) error {
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := put(uint64(bp.nPostings)); err != nil {
		return err
	}
	if err := put(uint64(len(bp.blob))); err != nil {
		return err
	}
	nDims := 0
	for d := 0; d < bp.dim; d++ {
		if bp.dir[d] != bp.dir[d+1] {
			nDims++
		}
	}
	if err := put(uint64(nDims)); err != nil {
		return err
	}
	prevD := -1
	for d := 0; d < bp.dim; d++ {
		lo, hi := bp.dir[d], bp.dir[d+1]
		if lo == hi {
			continue
		}
		if err := put(uint64(d-prevD) - 1); err != nil {
			return err
		}
		prevD = d
		if err := put(uint64(hi - lo)); err != nil {
			return err
		}
		for bi := lo; bi < hi; bi++ {
			if err := put(uint64(bp.blocks[bi].firstID)); err != nil {
				return err
			}
			if err := put(uint64(bp.blocks[bi].count)); err != nil {
				return err
			}
			if err := put(uint64(bp.blocks[bi].ordW)); err != nil {
				return err
			}
		}
	}
	_, err := bw.Write(bp.blob)
	return err
}

// byteCursor is a direct cursor over a CRC-verified segment body — the
// allocation-free, indirection-free reader of the cold-open hot path
// (half a million uvarints decode through it on the benchmark corpus).
// Truncation surfaces as io.ErrUnexpectedEOF, like the stream readers.
type byteCursor struct {
	b   []byte
	pos int
}

// byte consumes one byte.
func (c *byteCursor) byte() (byte, error) {
	if c.pos >= len(c.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := c.b[c.pos]
	c.pos++
	return v, nil
}

// uvarint consumes one unsigned varint.
func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("varint overflows a 64-bit integer")
	}
	c.pos += n
	return v, nil
}

// take consumes n bytes, returning them as a capacity-clamped alias of
// the underlying body (callers copy what they keep — unless the body is
// a mapping they own, the mapped-postings case).
func (c *byteCursor) take(n int) ([]byte, error) {
	if n > len(c.b)-c.pos {
		return nil, io.ErrUnexpectedEOF
	}
	s := c.b[c.pos : c.pos+n : c.pos+n]
	c.pos += n
	return s, nil
}

// rem returns the unconsumed byte count.
func (c *byteCursor) rem() int { return len(c.b) - c.pos }

// readPostingsSection parses and fully validates a postings section
// against the already-decoded rows. Structural damage (bad varint,
// truncated blob, out-of-range ids or ordinals, a posting that names a
// dimension its signature does not hold, a count that is not exactly
// the summed support size) is reported as a plain error the caller
// wraps into a *SnapshotError. On success the returned blockPostings is
// provably the transpose of rows: with the total matching the summed
// support sizes, every posting mapping to a distinct in-range
// (id, ordinal) whose support entry names the posting's dimension, the
// section is a bijection onto the signatures' non-zeros.
//
// With aliasBlob the blob is not copied: it aliases the cursor's bytes
// (a read-only mapping whose lifetime the caller manages), and the
// returned blockPostings is marked blobMapped. Validation is identical
// either way — it runs against the very bytes queries will read.
func readPostingsSection(cur *byteCursor, rows []Signature, dim int, aliasBlob bool) (*blockPostings, error) {
	n := len(rows)
	sup := make([][]int32, n)
	vals := make([][]float64, n)
	var totalNNZ int64
	for j, s := range rows {
		sup[j] = s.W.Support()
		vals[j] = s.W.Values()
		totalNNZ += int64(s.W.NNZ())
	}
	nPost, err := cur.uvarint()
	if err != nil {
		return nil, fmt.Errorf("posting count: %w", err)
	}
	if int64(nPost) != totalNNZ {
		return nil, fmt.Errorf("posting count %d, signatures hold %d non-zeros", nPost, totalNNZ)
	}
	blobLen, err := cur.uvarint()
	if err != nil {
		return nil, fmt.Errorf("blob length: %w", err)
	}
	if blobLen > uint64(cur.rem()) {
		return nil, fmt.Errorf("blob length %d exceeds remaining %d bytes", blobLen, cur.rem())
	}
	nDims, err := cur.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dimension count: %w", err)
	}
	if nDims > uint64(dim) {
		return nil, fmt.Errorf("%d posting dimensions exceed dimension %d", nDims, dim)
	}
	bp := &blockPostings{dim: dim, n: n, nPostings: int64(nPost), vals: vals}
	bp.dir = make([]int32, dim+1)
	var blockDims []int32
	d := -1
	for t := uint64(0); t < nDims; t++ {
		gap, err := cur.uvarint()
		if err != nil {
			return nil, fmt.Errorf("dimension gap: %w", err)
		}
		if gap >= uint64(dim) {
			return nil, fmt.Errorf("posting dimension gap %d outside dimension %d", gap, dim)
		}
		nd := int64(d) + 1 + int64(gap)
		if nd >= int64(dim) {
			return nil, fmt.Errorf("posting dimension %d outside dimension %d", nd, dim)
		}
		d = int(nd)
		bc, err := cur.uvarint()
		if err != nil {
			return nil, fmt.Errorf("dimension %d block count: %w", d, err)
		}
		if bc == 0 || bc > nPost {
			return nil, fmt.Errorf("dimension %d lists %d blocks", d, bc)
		}
		for b := uint64(0); b < bc; b++ {
			first, err := cur.uvarint()
			if err != nil {
				return nil, fmt.Errorf("dimension %d block %d first id: %w", d, b, err)
			}
			if first >= uint64(n) {
				return nil, fmt.Errorf("dimension %d block %d first id %d outside segment of %d", d, b, first, n)
			}
			cnt, err := cur.uvarint()
			if err != nil {
				return nil, fmt.Errorf("dimension %d block %d count: %w", d, b, err)
			}
			if cnt < 1 || cnt > postingBlockSize {
				return nil, fmt.Errorf("dimension %d block %d count %d outside [1, %d]", d, b, cnt, postingBlockSize)
			}
			ow, err := cur.uvarint()
			if err != nil {
				return nil, fmt.Errorf("dimension %d block %d ordinal width: %w", d, b, err)
			}
			if ow != 1 && ow != 2 && ow != 4 {
				return nil, fmt.Errorf("dimension %d block %d ordinal width %d not 1, 2, or 4", d, b, ow)
			}
			bp.blocks = append(bp.blocks, blockDesc{firstID: int32(first), count: uint16(cnt), ordW: uint8(ow)})
			blockDims = append(blockDims, int32(d))
		}
	}
	// Fill the directory from the ascending block dimensions.
	bi := 0
	for x := 0; x <= dim; x++ {
		for bi < len(blockDims) && int(blockDims[bi]) < x {
			bi++
		}
		bp.dir[x] = int32(bi)
	}
	blob, err := cur.take(int(blobLen))
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	if aliasBlob {
		bp.blob = blob
		bp.blobMapped = true
	} else {
		bp.blob = append(make([]byte, 0, len(blob)), blob...)
	}
	if err := bp.validate(sup, blockDims); err != nil {
		return nil, err
	}
	// validate just recomputed every block's maxAbsW; derive the pruning
	// bounds from them (and the rows' cached norms) exactly as seal-time
	// compression would, so a loaded segment prunes like a freshly sealed
	// one.
	bp.buildDimBound()
	bp.setNormBounds(rows)
	return bp, nil
}

// validate walks the blob once, assigning each block's offset while
// checking every posting: varints must decode inside the blob, ids must
// stay in range and strictly ascend within a dimension (across its
// blocks too), and each ordinal must point at the support entry of
// exactly this dimension. The blob must be consumed exactly, and every
// support entry must be referenced exactly once. A second sequential
// pass then fills each block's max-|weight|.
//
// The per-posting check exploits the format's dual sort order: blocks
// sweep dimensions ascending, supports are dimension-sorted, and a
// signature holds at most one posting per dimension — so a valid file
// consumes each signature's support entries in ascending ordinal order.
// Staging each signature's next expected (ordinal, dimension, weight)
// in compact arrays turns the two random per-posting lookups into
// L1-resident reads plus one sequential per-signature advance; this is
// equivalent to checking sup[sid][ord] == d posting by posting (either
// both accept a file or both reject it) and is what makes cold opens
// fast enough to serve mapped segments on demand.
func (bp *blockPostings) validate(sup [][]int32, blockDims []int32) error {
	n := bp.n
	cur := make([]int32, n)     // next expected ordinal per signature
	nextDim := make([]int32, n) // sup[sid][cur[sid]], -1 when exhausted
	for j := 0; j < n; j++ {
		if len(sup[j]) > 0 {
			nextDim[j] = sup[j][0]
		} else {
			nextDim[j] = -1
		}
	}
	blob := bp.blob
	pos := 0
	var ids [postingBlockSize]int32
	var ordv [postingBlockSize]uint32
	prevDim := int32(-1)
	lastID := int64(-1)
	var total int64
	for bi := range bp.blocks {
		bd := &bp.blocks[bi]
		d := blockDims[bi]
		if d != prevDim {
			prevDim, lastID = d, -1
		}
		bd.off = uint32(pos)
		id := int64(bd.firstID)
		if id <= lastID {
			return fmt.Errorf("dimension %d block first id %d not ascending (previous %d)", d, id, lastID)
		}
		cnt := int(bd.count)
		ids[0] = int32(id)
		for k := 1; k < cnt; k++ {
			var gap uint64
			if pos < len(blob) && blob[pos] < 0x80 {
				gap = uint64(blob[pos])
				pos++
			} else {
				v, m := binary.Uvarint(blob[pos:])
				if m <= 0 {
					return fmt.Errorf("bad varint at postings blob byte %d", pos)
				}
				gap, pos = v, pos+m
			}
			// Bound the gap before accumulating: a 64-bit uvarint must
			// not wrap the id sum past the range check below.
			if gap >= uint64(n) {
				return fmt.Errorf("dimension %d posting id gap %d outside segment of %d", d, gap, n)
			}
			id += 1 + int64(gap)
			if id >= int64(n) {
				return fmt.Errorf("dimension %d posting id %d outside segment of %d", d, id, n)
			}
			ids[k] = int32(id)
		}
		bd.idLen = uint16(pos - int(bd.off))
		lastID = id
		if pos+cnt*int(bd.ordW) > len(blob) {
			return fmt.Errorf("dimension %d ordinal stream truncated at blob byte %d", d, pos)
		}
		// Decode the fixed-width ordinal stream into a scratch array with
		// per-width loops, hoisting the width switch and blob bounds
		// checks out of the per-posting check loop below.
		ords := blob[pos : pos+cnt*int(bd.ordW)]
		pos += len(ords)
		switch bd.ordW {
		case 1:
			for k := 0; k < cnt; k++ {
				ordv[k] = uint32(ords[k])
			}
		case 2:
			for k := 0; k < cnt; k++ {
				ordv[k] = uint32(ords[2*k]) | uint32(ords[2*k+1])<<8
			}
		default:
			for k := 0; k < cnt; k++ {
				ordv[k] = uint32(ords[4*k]) | uint32(ords[4*k+1])<<8 | uint32(ords[4*k+2])<<16 | uint32(ords[4*k+3])<<24
			}
		}
		for k := 0; k < cnt; k++ {
			ord := uint64(ordv[k])
			sid := ids[k]
			o := cur[sid]
			if ord != uint64(o) {
				if ord >= uint64(len(sup[sid])) {
					return fmt.Errorf("dimension %d posting for id %d ordinal %d outside support of %d", d, sid, ord, len(sup[sid]))
				}
				return fmt.Errorf("dimension %d posting for id %d ordinal %d out of order (expected %d)", d, sid, ord, o)
			}
			if nextDim[sid] != d {
				return fmt.Errorf("posting (dimension %d, id %d) ordinal %d names dimension %d", d, sid, ord, nextDim[sid])
			}
			o++
			cur[sid] = o
			if int(o) < len(sup[sid]) {
				nextDim[sid] = sup[sid][o]
			} else {
				nextDim[sid] = -1
			}
		}
		total += int64(cnt)
	}
	if pos != len(blob) {
		return fmt.Errorf("%d trailing bytes in postings blob", len(blob)-pos)
	}
	if total != bp.nPostings {
		return fmt.Errorf("blocks hold %d postings, header says %d", total, bp.nPostings)
	}
	for j := 0; j < n; j++ {
		if int(cur[j]) != len(sup[j]) {
			return fmt.Errorf("signature %d: %d of %d support entries referenced by postings", j, cur[j], len(sup[j]))
		}
	}
	// Second pass: block max-|weight|, folded signature-major so the
	// support/value reads stream sequentially and the directory probes
	// ascend (supports are dimension-sorted). The bijection just proven
	// maps each (signature, ordinal) to the unique posting block of that
	// dimension covering the id, so this folds exactly the multiset of
	// weights the posting walk visits — and max is order-independent, so
	// the result matches folding per posting in walk order bit for bit.
	for j := 0; j < n; j++ {
		sj := sup[j]
		vj := bp.vals[j]
		for o := range sj {
			d := sj[o]
			bi := int(bp.dir[d])
			hi := int(bp.dir[d+1])
			for bi+1 < hi && int32(j) >= bp.blocks[bi+1].firstID {
				bi++
			}
			if a := math.Abs(vj[o]); a > bp.blocks[bi].maxAbsW {
				bp.blocks[bi].maxAbsW = a
			}
		}
	}
	return nil
}
