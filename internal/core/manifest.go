package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Snapshot format v2: a directory instead of a single file, so a
// long-lived operator database saves in O(new data) instead of O(total).
// Layout:
//
//	<dir>/MANIFEST.json   — format marker, dim/shards/count, and the
//	                        ordered per-shard segment lists (file name,
//	                        record count, CRC32 of the file body)
//	<dir>/seg-<id>.fms    — one file per segment:
//	  magic   "FMSG"                      (4 bytes)
//	  version uint16                      (1 or 2)
//	  dim     uint32
//	  count   uint32
//	  <version-specific body>
//	  crc32   uint32                      (IEEE, over all preceding bytes)
//
// A version-1 body (the original v2 directory format, still read) is
// count signature records in the v1 snapshot encoding. A version-2 body
// (the "v2.1" record) is:
//
//	flags   uint8                         (bit 0: postings section present)
//	count × signature records             (v2.1 encoding: uvarint-gap
//	                                       support indices, raw float64
//	                                       weights — see writeSigRecordV2)
//	postings section (iff flags&1):       the sealed segment's
//	                                       block-compressed posting lists
//	                                       (see writePostingsSection) so a
//	                                       load maps them directly instead
//	                                       of rebuilding the inverted
//	                                       index posting by posting
//
// Both bodies decode to bit-identical signatures; the v2.1 record is
// smaller (gap-encoded support indices) even though it additionally
// carries the postings. Loading validates the postings section fully:
// every posting's (dimension, id, ordinal) must name exactly its
// signature's support entry, ids must ascend, and the total must equal
// the summed support sizes — a bijection check, so a crafted postings
// section can never make queries disagree with the stored signatures.
//
// SaveDir writes only segments dirtied since the last save; every file
// lands via temp + fsync + rename, and the manifest is renamed last, so
// a crash at any point leaves the previous save fully loadable (new
// segment files without a manifest referencing them are orphans,
// removed by the next successful save). LoadDir verifies each segment
// file's CRC against both its footer and the manifest before parsing a
// single record, and any mismatch, truncation, or missing file yields a
// *SnapshotError naming the file — never a partial DB.
//
// Global insertion indices are not stored: segment k's records occupy
// the shard-local range right after segment k-1's, and shard-local
// position j in shard s maps to gid j·shards + s (the round-robin
// inverse), so a reload reconstructs the exact (score, insertion index)
// total order and answers TopK bit-identically.
const (
	manifestName    = "MANIFEST.json"
	manifestFormat  = "fmdb-dir"
	manifestVersion = 2
	segMagic        = "FMSG"
	// segVersion is the original record body (v1 signature records, no
	// postings); still read, no longer written.
	segVersion = 1
	// segVersionBlocks is the v2.1 record body: gap-encoded signature
	// records plus the sealed segment's compressed posting blocks.
	segVersionBlocks = 2
	// segFlagPostings marks a v2.1 record carrying a postings section.
	segFlagPostings = 0x01
	// segHeaderSize is the fixed segment prefix: magic + version + dim +
	// count.
	segHeaderSize = 4 + 2 + 4 + 4
)

// segmentFileName names segment id's file inside a snapshot directory.
func segmentFileName(id uint64) string { return fmt.Sprintf("seg-%08d.fms", id) }

// SnapshotError reports a corrupt, missing, or unreadable piece of a v2
// snapshot directory. It is typed so callers can tell storage corruption
// from API misuse, and it always names the offending file.
type SnapshotError struct {
	// Path is the file that failed (a segment file or the manifest).
	Path string
	// Err is the underlying cause (CRC mismatch, truncation, fs error).
	Err error
}

// Error implements error.
func (e *SnapshotError) Error() string {
	return fmt.Sprintf("core: snapshot file %s: %v", e.Path, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *SnapshotError) Unwrap() error { return e.Err }

// manifestJSON is the on-disk manifest.
type manifestJSON struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Dim     int    `json:"dim"`
	Shards  int    `json:"shards"`
	Count   int    `json:"count"`
	NextSeg uint64 `json:"next_segment"`
	// Segments lists each shard's segments in shard-local record order.
	Segments [][]manifestSegment `json:"segments"`
}

// manifestSegment is one segment's manifest entry.
type manifestSegment struct {
	ID      uint64 `json:"id"`
	File    string `json:"file"`
	Records int    `json:"records"`
	CRC32   uint32 `json:"crc32"`
}

// SaveDir persists the database into the v2 snapshot directory at path,
// creating it if needed. Only segments dirtied since the last SaveDir to
// the same path are rewritten (newly added or compacted data — the
// active segments plus any compaction outputs); a steady append workload
// therefore saves in O(new data). Every file is written to a temp name,
// fsynced, and renamed; the manifest goes last, so a crash mid-save
// never corrupts the previous snapshot. Files from replaced segments
// (compaction inputs) and abandoned temp files are removed after the new
// manifest is durable.
func (db *DB) SaveDir(path string) error {
	if db.dim > maxSnapshotDim {
		return fmt.Errorf("core: dimension %d exceeds snapshot format bound %d", db.dim, maxSnapshotDim)
	}
	if len(db.shards) > maxSnapshotShards {
		return fmt.Errorf("core: shard count %d exceeds snapshot format bound %d", len(db.shards), maxSnapshotShards)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return &SnapshotError{Path: path, Err: err}
	}
	if db.saveDir != path {
		// A different target directory knows nothing of this DB: every
		// segment must land there.
		for si := range db.shards {
			for _, sg := range db.shards[si].segs {
				sg.dirty = true
			}
		}
	}
	wrote := false
	for si := range db.shards {
		sh := &db.shards[si]
		for _, sg := range sh.segs {
			if !sg.dirty {
				continue
			}
			if sg.saved {
				// This segment's file is (or may be) referenced by a
				// durable manifest — a grown active segment being
				// re-saved, or a save into a fresh directory. Write
				// under a fresh id and let the old file live as an
				// orphan until the new manifest is durable, so a crash
				// anywhere in this save leaves the previous snapshot
				// loadable.
				sg.id = db.nextSeg
				db.nextSeg++
			}
			crc, err := db.writeSegmentFile(path, sh, sg)
			if err != nil {
				return err
			}
			sg.crc = crc
			sg.dirty = false
			sg.saved = true
			wrote = true
		}
	}
	// Make the segment renames durable before the manifest can name
	// them: without this ordering a crash could persist the new manifest
	// but not a segment file's directory entry.
	if wrote {
		if err := syncDir(path); err != nil {
			return &SnapshotError{Path: path, Err: err}
		}
	}
	m := manifestJSON{
		Format:   manifestFormat,
		Version:  manifestVersion,
		Dim:      db.dim,
		Shards:   len(db.shards),
		Count:    db.total,
		NextSeg:  db.nextSeg,
		Segments: make([][]manifestSegment, len(db.shards)),
	}
	live := map[string]bool{manifestName: true}
	for si := range db.shards {
		entries := []manifestSegment{}
		for _, sg := range db.shards[si].segs {
			name := segmentFileName(sg.id)
			entries = append(entries, manifestSegment{ID: sg.id, File: name, Records: sg.len(), CRC32: sg.crc})
			live[name] = true
		}
		m.Segments[si] = entries
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding manifest: %w", err)
	}
	mpath := filepath.Join(path, manifestName)
	if err := writeFileAtomic(mpath, append(buf, '\n')); err != nil {
		return &SnapshotError{Path: mpath, Err: err}
	}
	if err := syncDir(path); err != nil {
		return &SnapshotError{Path: path, Err: err}
	}
	db.saveDir = path
	return removeOrphans(path, live)
}

// removeOrphans deletes segment and temp files the manifest no longer
// references: compaction inputs, crash leftovers. Safe only after the
// new manifest is durable.
func removeOrphans(dir string, live map[string]bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return &SnapshotError{Path: dir, Err: err}
	}
	for _, e := range entries {
		name := e.Name()
		stale := strings.HasPrefix(name, ".tmp-") ||
			(strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".fms") && !live[name])
		if !stale {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return &SnapshotError{Path: filepath.Join(dir, name), Err: err}
		}
	}
	return nil
}

// writeSegmentFile writes one segment's file atomically and returns the
// CRC32 of its body (everything before the footer).
func (db *DB) writeSegmentFile(dir string, sh *dbShard, sg *segment) (uint32, error) {
	final := filepath.Join(dir, segmentFileName(sg.id))
	f, err := os.CreateTemp(dir, ".tmp-seg-*")
	if err != nil {
		return 0, &SnapshotError{Path: final, Err: err}
	}
	tmp := f.Name()
	fail := func(err error) (uint32, error) {
		f.Close()
		os.Remove(tmp)
		return 0, &SnapshotError{Path: final, Err: err}
	}
	h := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(f, h))
	le := binary.LittleEndian
	var hdr [segHeaderSize]byte
	copy(hdr[:4], segMagic)
	le.PutUint16(hdr[4:6], segVersionBlocks)
	le.PutUint32(hdr[6:10], uint32(db.dim))
	le.PutUint32(hdr[10:14], uint32(sg.len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fail(err)
	}
	var flags byte
	if sg.blocks != nil {
		flags |= segFlagPostings
	}
	if err := bw.WriteByte(flags); err != nil {
		return fail(err)
	}
	for j := sg.start; j < sg.end; j++ {
		if err := writeSigRecordV2(bw, sh.sigs[j]); err != nil {
			return fail(fmt.Errorf("record %d: %w", j-sg.start, err))
		}
	}
	if sg.blocks != nil {
		if err := writePostingsSection(bw, sg.blocks); err != nil {
			return fail(fmt.Errorf("postings: %w", err))
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	crc := h.Sum32()
	var foot [4]byte
	le.PutUint32(foot[:], crc)
	if _, err := f.Write(foot[:]); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, &SnapshotError{Path: final, Err: err}
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, &SnapshotError{Path: final, Err: err}
	}
	return crc, nil
}

// writeFileAtomic writes data to path via temp + fsync + rename: readers
// only ever observe the old content or the new, never a torn write.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, ".tmp-"+base+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadDir loads a v2 snapshot directory written by SaveDir. Every
// segment file's CRC is verified against both its own footer and the
// manifest before any record is parsed; corruption, truncation, or a
// missing file yields a *SnapshotError naming the file, never a
// partially loaded database. All loaded segments are sealed — the next
// Add opens a fresh active segment — and the DB remembers the directory,
// so an immediate SaveDir back to it rewrites nothing but the manifest.
func LoadDir(path string) (*DB, error) {
	mpath := filepath.Join(path, manifestName)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		return nil, &SnapshotError{Path: mpath, Err: err}
	}
	var m manifestJSON
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, &SnapshotError{Path: mpath, Err: err}
	}
	if m.Format != manifestFormat {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("format %q, want %q", m.Format, manifestFormat)}
	}
	if m.Version != manifestVersion {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("unsupported version %d (have %d)", m.Version, manifestVersion)}
	}
	if m.Dim < 1 || m.Dim > maxSnapshotDim {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("dimension %d outside [1, %d]", m.Dim, maxSnapshotDim)}
	}
	if m.Shards < 1 || m.Shards > maxSnapshotShards {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("shard count %d outside [1, %d]", m.Shards, maxSnapshotShards)}
	}
	if m.Count < 0 || len(m.Segments) != m.Shards {
		return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("count %d / %d shard segment lists inconsistent with %d shards", m.Count, len(m.Segments), m.Shards)}
	}
	db, err := NewShardedDB(m.Dim, m.Shards)
	if err != nil {
		return nil, err
	}
	seen := make(map[uint64]bool)
	for si, list := range m.Segments {
		sh := &db.shards[si]
		for _, ent := range list {
			if seen[ent.ID] {
				return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("segment id %d listed twice", ent.ID)}
			}
			seen[ent.ID] = true
			if ent.ID >= m.NextSeg {
				return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("segment id %d >= next_segment %d", ent.ID, m.NextSeg)}
			}
			if ent.File != segmentFileName(ent.ID) {
				return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("segment %d file %q, want %q", ent.ID, ent.File, segmentFileName(ent.ID))}
			}
			if err := db.loadSegmentFile(path, si, sh, ent); err != nil {
				return nil, err
			}
		}
		// The round-robin inverse: shard si must hold exactly the gids
		// congruent to si mod shards below count.
		want := 0
		if m.Count > si {
			want = (m.Count - si + m.Shards - 1) / m.Shards
		}
		if len(sh.sigs) != want {
			return nil, &SnapshotError{Path: mpath, Err: fmt.Errorf("shard %d holds %d records, want %d of %d total", si, len(sh.sigs), want, m.Count)}
		}
	}
	db.total = m.Count
	db.nextSeg = m.NextSeg
	db.saveDir = path
	return db, nil
}

// loadSegmentFile verifies and parses one segment file, appending its
// records to shard si as a sealed segment.
func (db *DB) loadSegmentFile(dir string, si int, sh *dbShard, ent manifestSegment) error {
	path := filepath.Join(dir, ent.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		return &SnapshotError{Path: path, Err: err}
	}
	if len(raw) < segHeaderSize+4 {
		return &SnapshotError{Path: path, Err: fmt.Errorf("truncated: %d bytes, need at least %d", len(raw), segHeaderSize+4)}
	}
	body, foot := raw[:len(raw)-4], raw[len(raw)-4:]
	le := binary.LittleEndian
	crc := crc32.ChecksumIEEE(body)
	if got := le.Uint32(foot); got != crc {
		return &SnapshotError{Path: path, Err: fmt.Errorf("CRC mismatch: footer %08x, body computes %08x", got, crc)}
	}
	if crc != ent.CRC32 {
		return &SnapshotError{Path: path, Err: fmt.Errorf("CRC %08x does not match manifest's %08x", crc, ent.CRC32)}
	}
	if string(body[:4]) != segMagic {
		return &SnapshotError{Path: path, Err: fmt.Errorf("bad segment magic %q", body[:4])}
	}
	version := le.Uint16(body[4:6])
	if version != segVersion && version != segVersionBlocks {
		return &SnapshotError{Path: path, Err: fmt.Errorf("unsupported segment version %d (have %d and %d)", version, segVersion, segVersionBlocks)}
	}
	if d := le.Uint32(body[6:10]); int(d) != db.dim {
		return &SnapshotError{Path: path, Err: fmt.Errorf("dimension %d, manifest says %d", d, db.dim)}
	}
	count := le.Uint32(body[10:14])
	if int(count) != ent.Records {
		return &SnapshotError{Path: path, Err: fmt.Errorf("record count %d, manifest says %d", count, ent.Records)}
	}
	// A v1 record is at least 6 bytes (two empty strings + uint32 nnz), a
	// v2.1 record at least 3 (three uvarints), so a count beyond this
	// bound cannot be satisfied by the body — reject before looping.
	minRecord := int64(6)
	if version == segVersionBlocks {
		minRecord = 3
	}
	if int64(count) > int64(len(body)-segHeaderSize)/minRecord {
		return &SnapshotError{Path: path, Err: fmt.Errorf("record count %d exceeds file capacity", count)}
	}
	sg := &segment{id: ent.ID, start: len(sh.sigs), end: len(sh.sigs), sealed: true, crc: crc, saved: true}
	br := bytes.NewReader(body[segHeaderSize:])
	var flags byte
	if version == segVersionBlocks {
		b, err := br.ReadByte()
		if err != nil {
			return &SnapshotError{Path: path, Err: fmt.Errorf("flags: %w", noEOF(err))}
		}
		flags = b
		if flags&^segFlagPostings != 0 {
			return &SnapshotError{Path: path, Err: fmt.Errorf("unknown segment flags %#02x", flags)}
		}
	}
	for i := 0; i < int(count); i++ {
		var sig Signature
		var err error
		if version == segVersionBlocks {
			sig, err = readSigRecordV2(br, db.dim)
		} else {
			sig, err = readSigRecord(br, db.dim)
		}
		if err != nil {
			return &SnapshotError{Path: path, Err: fmt.Errorf("record %d: %w", i, err)}
		}
		sh.gids = append(sh.gids, len(sh.sigs)*len(db.shards)+si)
		sh.sigs = append(sh.sigs, sig)
		sh.norms = append(sh.norms, sig.W.Norm2())
		sg.end++
	}
	rows := sh.sigs[sg.start:sg.end]
	if flags&segFlagPostings != 0 {
		bp, err := readPostingsSection(br, rows, db.dim)
		if err != nil {
			return &SnapshotError{Path: path, Err: fmt.Errorf("postings: %w", err)}
		}
		sg.blocks = bp
	} else {
		// No persisted postings (a v1 file, or a segment saved while
		// still active): rebuild the inverted index from the rows and
		// compress it — the one path that still pays the posting-by-
		// posting rebuild.
		ix, err := NewIndex(db.dim)
		if err != nil {
			return err
		}
		for _, sig := range rows {
			ix.Add(sig.W)
		}
		sg.blocks = compressIndex(ix, rows)
	}
	if br.Len() != 0 {
		return &SnapshotError{Path: path, Err: fmt.Errorf("%d trailing bytes after record %d", br.Len(), count)}
	}
	sh.segs = append(sh.segs, sg)
	return nil
}

// writePostingsSection appends a sealed segment's compressed posting
// lists: the posting total and blob length (both cross-checked on
// load), then for each dimension holding postings its uvarint gap from
// the previous such dimension, its block count, and each block's
// (firstID, count) pair, then the raw block byte streams. Block blob
// offsets and the per-block max-|weight| are not stored — the load-time
// validation pass recomputes both while it walks the blob once.
func writePostingsSection(bw *bufio.Writer, bp *blockPostings) error {
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := put(uint64(bp.nPostings)); err != nil {
		return err
	}
	if err := put(uint64(len(bp.blob))); err != nil {
		return err
	}
	nDims := 0
	for d := 0; d < bp.dim; d++ {
		if bp.dir[d] != bp.dir[d+1] {
			nDims++
		}
	}
	if err := put(uint64(nDims)); err != nil {
		return err
	}
	prevD := -1
	for d := 0; d < bp.dim; d++ {
		lo, hi := bp.dir[d], bp.dir[d+1]
		if lo == hi {
			continue
		}
		if err := put(uint64(d-prevD) - 1); err != nil {
			return err
		}
		prevD = d
		if err := put(uint64(hi - lo)); err != nil {
			return err
		}
		for bi := lo; bi < hi; bi++ {
			if err := put(uint64(bp.blocks[bi].firstID)); err != nil {
				return err
			}
			if err := put(uint64(bp.blocks[bi].count)); err != nil {
				return err
			}
			if err := put(uint64(bp.blocks[bi].ordW)); err != nil {
				return err
			}
		}
	}
	_, err := bw.Write(bp.blob)
	return err
}

// readPostingsSection parses and fully validates a postings section
// against the already-decoded rows. Structural damage (bad varint,
// truncated blob, out-of-range ids or ordinals, a posting that names a
// dimension its signature does not hold, a count that is not exactly
// the summed support size) is reported as a plain error the caller
// wraps into a *SnapshotError. On success the returned blockPostings is
// provably the transpose of rows: with the total matching the summed
// support sizes, every posting mapping to a distinct in-range
// (id, ordinal) whose support entry names the posting's dimension, the
// section is a bijection onto the signatures' non-zeros.
func readPostingsSection(br *bytes.Reader, rows []Signature, dim int) (*blockPostings, error) {
	n := len(rows)
	sup := make([][]int32, n)
	vals := make([][]float64, n)
	var totalNNZ int64
	for j, s := range rows {
		sup[j] = s.W.Support()
		vals[j] = s.W.Values()
		totalNNZ += int64(s.W.NNZ())
	}
	nPost, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("posting count: %w", noEOF(err))
	}
	if int64(nPost) != totalNNZ {
		return nil, fmt.Errorf("posting count %d, signatures hold %d non-zeros", nPost, totalNNZ)
	}
	blobLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("blob length: %w", noEOF(err))
	}
	if blobLen > uint64(br.Len()) {
		return nil, fmt.Errorf("blob length %d exceeds remaining %d bytes", blobLen, br.Len())
	}
	nDims, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("dimension count: %w", noEOF(err))
	}
	if nDims > uint64(dim) {
		return nil, fmt.Errorf("%d posting dimensions exceed dimension %d", nDims, dim)
	}
	bp := &blockPostings{dim: dim, n: n, nPostings: int64(nPost), vals: vals}
	bp.dir = make([]int32, dim+1)
	var blockDims []int32
	d := -1
	for t := uint64(0); t < nDims; t++ {
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("dimension gap: %w", noEOF(err))
		}
		if gap >= uint64(dim) {
			return nil, fmt.Errorf("posting dimension gap %d outside dimension %d", gap, dim)
		}
		nd := int64(d) + 1 + int64(gap)
		if nd >= int64(dim) {
			return nil, fmt.Errorf("posting dimension %d outside dimension %d", nd, dim)
		}
		d = int(nd)
		bc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("dimension %d block count: %w", d, noEOF(err))
		}
		if bc == 0 || bc > nPost {
			return nil, fmt.Errorf("dimension %d lists %d blocks", d, bc)
		}
		for b := uint64(0); b < bc; b++ {
			first, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("dimension %d block %d first id: %w", d, b, noEOF(err))
			}
			if first >= uint64(n) {
				return nil, fmt.Errorf("dimension %d block %d first id %d outside segment of %d", d, b, first, n)
			}
			cnt, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("dimension %d block %d count: %w", d, b, noEOF(err))
			}
			if cnt < 1 || cnt > postingBlockSize {
				return nil, fmt.Errorf("dimension %d block %d count %d outside [1, %d]", d, b, cnt, postingBlockSize)
			}
			ow, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("dimension %d block %d ordinal width: %w", d, b, noEOF(err))
			}
			if ow != 1 && ow != 2 && ow != 4 {
				return nil, fmt.Errorf("dimension %d block %d ordinal width %d not 1, 2, or 4", d, b, ow)
			}
			bp.blocks = append(bp.blocks, blockDesc{firstID: int32(first), count: uint16(cnt), ordW: uint8(ow)})
			blockDims = append(blockDims, int32(d))
		}
	}
	// Fill the directory from the ascending block dimensions.
	bi := 0
	for x := 0; x <= dim; x++ {
		for bi < len(blockDims) && int(blockDims[bi]) < x {
			bi++
		}
		bp.dir[x] = int32(bi)
	}
	bp.blob = make([]byte, blobLen)
	if _, err := io.ReadFull(br, bp.blob); err != nil {
		return nil, fmt.Errorf("blob: %w", noEOF(err))
	}
	if err := bp.validate(sup, blockDims); err != nil {
		return nil, err
	}
	// validate just recomputed every block's maxAbsW; derive the pruning
	// bounds from them (and the rows' cached norms) exactly as seal-time
	// compression would, so a loaded segment prunes like a freshly sealed
	// one.
	bp.buildDimBound()
	bp.setNormBounds(rows)
	return bp, nil
}

// validate walks the blob once, assigning each block's offset and
// max-|weight| while checking every posting: varints must decode inside
// the blob, ids must stay in range and strictly ascend within a
// dimension (across its blocks too), and each ordinal must point at the
// support entry of exactly this dimension. The blob must be consumed
// exactly.
func (bp *blockPostings) validate(sup [][]int32, blockDims []int32) error {
	pos := 0
	uv := func() (uint64, error) {
		v, m := binary.Uvarint(bp.blob[pos:])
		if m <= 0 {
			return 0, fmt.Errorf("bad varint at postings blob byte %d", pos)
		}
		pos += m
		return v, nil
	}
	var ids [postingBlockSize]int32
	prevDim := int32(-1)
	lastID := int64(-1)
	var total int64
	for bi := range bp.blocks {
		bd := &bp.blocks[bi]
		d := blockDims[bi]
		if d != prevDim {
			prevDim, lastID = d, -1
		}
		bd.off = uint32(pos)
		id := int64(bd.firstID)
		if id <= lastID {
			return fmt.Errorf("dimension %d block first id %d not ascending (previous %d)", d, id, lastID)
		}
		cnt := int(bd.count)
		ids[0] = int32(id)
		for k := 1; k < cnt; k++ {
			gap, err := uv()
			if err != nil {
				return err
			}
			// Bound the gap before accumulating: a 64-bit uvarint must
			// not wrap the id sum past the range check below.
			if gap >= uint64(bp.n) {
				return fmt.Errorf("dimension %d posting id gap %d outside segment of %d", d, gap, bp.n)
			}
			id += 1 + int64(gap)
			if id >= int64(bp.n) {
				return fmt.Errorf("dimension %d posting id %d outside segment of %d", d, id, bp.n)
			}
			ids[k] = int32(id)
		}
		bd.idLen = uint16(pos - int(bd.off))
		lastID = id
		if pos+cnt*int(bd.ordW) > len(bp.blob) {
			return fmt.Errorf("dimension %d ordinal stream truncated at blob byte %d", d, pos)
		}
		maxW := 0.0
		for k := 0; k < cnt; k++ {
			var ord uint64
			switch bd.ordW {
			case 1:
				ord = uint64(bp.blob[pos])
			case 2:
				ord = uint64(bp.blob[pos]) | uint64(bp.blob[pos+1])<<8
			default:
				ord = uint64(bp.blob[pos]) | uint64(bp.blob[pos+1])<<8 | uint64(bp.blob[pos+2])<<16 | uint64(bp.blob[pos+3])<<24
			}
			pos += int(bd.ordW)
			sid := ids[k]
			if ord >= uint64(len(sup[sid])) {
				return fmt.Errorf("dimension %d posting for id %d ordinal %d outside support of %d", d, sid, ord, len(sup[sid]))
			}
			if sup[sid][ord] != d {
				return fmt.Errorf("posting (dimension %d, id %d) ordinal %d names dimension %d", d, sid, ord, sup[sid][ord])
			}
			if a := math.Abs(bp.vals[sid][ord]); a > maxW {
				maxW = a
			}
		}
		bd.maxAbsW = maxW
		total += int64(cnt)
	}
	if pos != len(bp.blob) {
		return fmt.Errorf("%d trailing bytes in postings blob", len(bp.blob)-pos)
	}
	if total != bp.nPostings {
		return fmt.Errorf("blocks hold %d postings, header says %d", total, bp.nPostings)
	}
	return nil
}
