package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// errInjected is the sentinel every injected fault wraps, so the
// matrices can tell an injected failure from a real one.
var errInjected = errors.New("injected fault")

// faultPlan fails the step-th filesystem operation (transient), or
// every operation from the step-th on (crash: the process "dies" and
// even cleanup stops succeeding).
type faultPlan struct {
	step  int
	crash bool
	n     int
	fired bool
}

func (p *faultPlan) hook(op fsOp, path string) error {
	i := p.n
	p.n++
	if (p.crash && i >= p.step) || (!p.crash && i == p.step) {
		p.fired = true
		return fmt.Errorf("%s %s: %w", op, filepath.Base(path), errInjected)
	}
	return nil
}

// buildFaultCorpus makes a fresh snapshot directory holding nOld
// signatures (snapshot A), then mutates the live DB — more adds, a
// seal, a compaction — so the next SaveDir has real work at every
// operation class: new segment files, a manifest rewrite, and orphan
// removals. Returns the DB, the directory, and the old/new counts.
func buildFaultCorpus(t *testing.T) (*DB, string, int, int) {
	t.Helper()
	const dim, nnz = 24, 6
	r := rand.New(rand.NewSource(29))
	sigs := randSigs(r, 150, dim, nnz)
	db, err := NewShardedDB(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	db.SetSegmentSize(16)
	if err := db.AddAll(sigs[:100]); err != nil {
		t.Fatal(err)
	}
	db.Seal()
	dir := t.TempDir()
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := db.AddAll(sigs[100:]); err != nil {
		t.Fatal(err)
	}
	db.Seal()
	db.Compact() // merges small sealed segments: the next save orphans their files
	return db, dir, 100, 150
}

// verifyLoadable proves the directory is a complete snapshot: it loads
// without error and holds one of the two legal counts — the previous
// snapshot (fault before the manifest landed) or the new one (fault
// after). Anything else is a partial directory.
func verifyLoadable(t *testing.T, dir string, step int, mode string, oldN, newN int) int {
	t.Helper()
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("%s step %d: directory unloadable after fault: %v", mode, step, err)
	}
	defer got.Close()
	if n := got.Len(); n != oldN && n != newN {
		t.Fatalf("%s step %d: loaded %d signatures, want %d (previous) or %d (new)", mode, step, n, oldN, newN)
	}
	return got.Len()
}

// TestSaveDirTransientFaultMatrix fails each filesystem operation of a
// SaveDir exactly once — every create, write, fsync, close, rename,
// remove, and directory sync, one per matrix step. At every step the
// failure must surface as a typed *SnapshotError wrapping the injected
// cause, the directory must remain fully loadable (previous snapshot
// before the manifest rename, new snapshot after), and a retry with
// the fault cleared must succeed and load as the new snapshot.
func TestSaveDirTransientFaultMatrix(t *testing.T) {
	defer func() { fsFault = nil }()
	for step := 0; ; step++ {
		db, dir, oldN, newN := buildFaultCorpus(t)
		plan := &faultPlan{step: step}
		fsFault = plan.hook
		err := db.SaveDir(dir)
		fsFault = nil
		if !plan.fired {
			if err != nil {
				t.Fatalf("step %d: fault never fired yet SaveDir failed: %v", step, err)
			}
			t.Logf("transient matrix covered %d operation steps", step)
			db.Close()
			return
		}
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("step %d: SaveDir error %v (%T), want *SnapshotError", step, err, err)
		}
		if !errors.Is(err, errInjected) {
			t.Fatalf("step %d: SaveDir error %v does not wrap the injected fault", step, err)
		}
		verifyLoadable(t, dir, step, "transient", oldN, newN)
		// Transient means transient: the very next save must succeed and
		// commit the full new state.
		if err := db.SaveDir(dir); err != nil {
			t.Fatalf("step %d: retry SaveDir after transient fault: %v", step, err)
		}
		if n := verifyLoadable(t, dir, step, "transient-retry", newN, newN); n != newN {
			t.Fatalf("step %d: retried save loads %d signatures, want %d", step, n, newN)
		}
		db.Close()
	}
}

// TestSaveDirCrashMatrix simulates a crash at every point of a SaveDir:
// from the step-th filesystem operation on, nothing succeeds — not even
// cleanup, exactly like a killed process — and the DB is abandoned. The
// directory must still load (previous or new snapshot, never partial),
// and a recovery sequence — load, append, save — must converge to a
// clean directory with no temp-file or orphan leftovers.
func TestSaveDirCrashMatrix(t *testing.T) {
	defer func() { fsFault = nil }()
	const dim, nnz = 24, 6
	r := rand.New(rand.NewSource(31))
	extra := randSigs(r, 10, dim, nnz)
	for i := range extra {
		extra[i].DocID = fmt.Sprintf("extra-%d", i)
	}
	for step := 0; ; step++ {
		db, dir, oldN, newN := buildFaultCorpus(t)
		plan := &faultPlan{step: step, crash: true}
		fsFault = plan.hook
		err := db.SaveDir(dir)
		fsFault = nil
		if !plan.fired {
			if err != nil {
				t.Fatalf("step %d: crash never fired yet SaveDir failed: %v", step, err)
			}
			t.Logf("crash matrix covered %d operation steps", step)
			db.Close()
			return
		}
		if err == nil {
			// The crash hit only the post-manifest cleanup: the save
			// itself may legitimately have committed. Either way the
			// invariants below must hold.
			_ = err
		} else {
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("step %d: SaveDir error %v (%T), want *SnapshotError", step, err, err)
			}
		}
		// The process is "dead": abandon db without Close, like a crash
		// would. The directory left behind must be a complete snapshot.
		verifyLoadable(t, dir, step, "crash", oldN, newN)

		// Recovery: reopen, append, save. The recovered directory must be
		// clean — manifest plus exactly the referenced segment files, no
		// temp leftovers from the crashed save.
		re, err := LoadDir(dir)
		if err != nil {
			t.Fatalf("step %d: recovery load: %v", step, err)
		}
		if err := re.AddAll(extra); err != nil {
			t.Fatalf("step %d: recovery append: %v", step, err)
		}
		if err := re.SaveDir(dir); err != nil {
			t.Fatalf("step %d: recovery save: %v", step, err)
		}
		wantN := re.Len()
		re.Close()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".tmp-") {
				t.Fatalf("step %d: temp file %s survives the recovery save", step, e.Name())
			}
		}
		if n := verifyLoadable(t, dir, step, "recovery", wantN, wantN); n != wantN {
			t.Fatalf("step %d: recovered directory loads %d signatures, want %d", step, n, wantN)
		}
	}
}

// TestLoadDirFaultMatrix fails each read a LoadDir performs (manifest,
// then every segment file) and demands a typed *SnapshotError wrapping
// the injected cause — never a partial DB — and a clean load once the
// fault passes.
func TestLoadDirFaultMatrix(t *testing.T) {
	defer func() { fsFault = nil }()
	db, dir, _, newN := buildFaultCorpus(t)
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	db.Close()
	for step := 0; ; step++ {
		plan := &faultPlan{step: step}
		fsFault = plan.hook
		got, err := LoadDir(dir)
		fsFault = nil
		if !plan.fired {
			if err != nil {
				t.Fatalf("step %d: fault never fired yet LoadDir failed: %v", step, err)
			}
			if got.Len() != newN {
				t.Fatalf("step %d: clean load holds %d signatures, want %d", step, got.Len(), newN)
			}
			got.Close()
			t.Logf("load matrix covered %d operation steps", step)
			return
		}
		if err == nil {
			got.Close()
			t.Fatalf("step %d: LoadDir succeeded despite injected read fault", step)
		}
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("step %d: LoadDir error %v (%T), want *SnapshotError", step, err, err)
		}
		if !errors.Is(err, errInjected) {
			t.Fatalf("step %d: LoadDir error %v does not wrap the injected fault", step, err)
		}
	}
}

// TestSaveDirDeferredOrphanRemoval pins a view across a compaction and
// a save, proving the replaced segment files are NOT removed while the
// view can still reach them, and ARE removed (exactly the named ones)
// once the last pin drops and a quiescent SaveDir drains the queue.
func TestSaveDirDeferredOrphanRemoval(t *testing.T) {
	db, dir, _, _ := buildFaultCorpus(t)
	defer db.Close()

	before, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Pin a view, then commit the compacted layout: the compaction
	// inputs' files become orphans of the new manifest, but the pinned
	// view predates the save, so removal must wait for it.
	v := db.pinView()
	if err := db.SaveDir(dir); err != nil {
		t.Fatalf("SaveDir under pin: %v", err)
	}
	after, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) < len(before) {
		t.Fatalf("files removed while a pinned view could reach them: %d -> %d", len(before), len(after))
	}

	// Drop the pin: the deferred removal runs. A follow-up quiescent
	// SaveDir both surfaces any deferred failure and proves the
	// directory converged (manifest + live segments only).
	db.unpinView(v)
	if err := db.SaveDir(dir); err != nil {
		t.Fatalf("quiescent SaveDir after drain: %v", err)
	}
	final, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]bool{manifestName: true}
	db.mu.Lock()
	for si := range db.shards {
		for _, sg := range db.shards[si].segs {
			live[segmentFileName(sg.id)] = true
		}
	}
	db.mu.Unlock()
	for _, e := range final {
		if !live[e.Name()] {
			t.Fatalf("orphan %s survives the post-drain save", e.Name())
		}
	}
	if _, err := LoadDir(dir); err != nil {
		t.Fatalf("converged directory unloadable: %v", err)
	}
}
