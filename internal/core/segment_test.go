package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// TestTopKSegmentedMatchesUnsegmented is the equivalence property the
// segment re-architecture rests on: over random corpora, every
// combination of seal points (segment sizes, explicit Seal calls),
// compactions, shard counts, and worker counts must answer TopK —
// indexed and scan — and ClassifyBatch bit-identically to the
// unsegmented single-shard sequential reference.
func TestTopKSegmentedMatchesUnsegmented(t *testing.T) {
	metrics := []Metric{EuclideanMetric(), CosineMetric(), MinkowskiMetric(1)}
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		dim := 60 + r.Intn(100)
		n := 50 + r.Intn(150)
		nnz := 5 + r.Intn(20)
		sigs := randSigs(r, n, dim, nnz)
		// Duplicates exercise the (score, insertion index) tie-break
		// across segment boundaries.
		for d := 0; d < 3; d++ {
			dup := sigs[r.Intn(len(sigs))]
			dup.DocID = fmt.Sprintf("dup-%d", d)
			sigs = append(sigs, dup)
		}
		queries := make([]*vecmath.Sparse, 8)
		for i := range queries {
			queries[i] = randSigs(r, 1, dim, nnz)[0].W
		}
		k := 1 + r.Intn(n)

		// Reference: one shard, one giant segment, sequential.
		ref, err := NewDB(dim)
		if err != nil {
			t.Fatal(err)
		}
		ref.SetWorkers(-1)
		if err := ref.AddAll(sigs); err != nil {
			t.Fatal(err)
		}
		if got := ref.Segments(); got != 1 {
			t.Fatalf("reference DB should hold one segment, has %d", got)
		}

		for _, segSize := range []int{1, 3, 16, DefaultSegmentSize} {
			for _, shards := range []int{1, 3} {
				for _, workers := range []int{1, 4} {
					for _, compact := range []bool{false, true} {
						db, err := NewShardedDB(dim, shards)
						if err != nil {
							t.Fatal(err)
						}
						db.SetSegmentSize(segSize)
						db.SetWorkers(workers)
						// Interleave Adds with explicit seal points so
						// segment boundaries land mid-stream, not only at
						// size multiples.
						for i, s := range sigs {
							if err := db.Add(s); err != nil {
								t.Fatal(err)
							}
							if i%37 == 36 {
								db.Seal()
							}
						}
						if compact {
							db.Seal()
							db.Compact()
						}
						tag := fmt.Sprintf("seed=%d segsize=%d shards=%d workers=%d compact=%v segs=%d",
							seed, segSize, shards, workers, compact, db.Segments())
						for _, m := range metrics {
							want, err := ref.TopKSparse(queries[0], k, m)
							if err != nil {
								t.Fatal(err)
							}
							got, err := db.TopKSparse(queries[0], k, m)
							if err != nil {
								t.Fatal(err)
							}
							sameResults(t, tag+" "+m.Name+" indexed", got, want)
							sameResults(t, tag+" "+m.Name+" scan", scanResults(t, db, queries[0], k, m), want)
						}
						wantLabels, err := ref.ClassifyBatch(queries, 5, EuclideanMetric())
						if err != nil {
							t.Fatal(err)
						}
						gotLabels, err := db.ClassifyBatch(queries, 5, EuclideanMetric())
						if err != nil {
							t.Fatal(err)
						}
						for qi := range wantLabels {
							if gotLabels[qi] != wantLabels[qi] {
								t.Fatalf("%s: ClassifyBatch[%d] = %q, want %q", tag, qi, gotLabels[qi], wantLabels[qi])
							}
						}
					}
				}
			}
		}
	}
}

// TestSegmentLifecycle pins the seal/roll/compact mechanics: size-
// threshold rolling, explicit Seal, Add-after-Seal opening a fresh
// active segment, Compact merging only small sealed runs, and the dirty
// accounting SaveDir's incrementality rests on.
func TestSegmentLifecycle(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	const dim, nnz = 40, 6
	db, err := NewDB(dim)
	if err != nil {
		t.Fatal(err)
	}
	db.SetSegmentSize(10)
	if got := db.SegmentSize(); got != 10 {
		t.Fatalf("SegmentSize = %d", got)
	}
	// 25 signatures at segment size 10: two sealed segments + one active
	// of 5.
	if err := db.AddAll(randSigs(r, 25, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	if got := db.Segments(); got != 3 {
		t.Fatalf("after 25 adds at size 10: %d segments, want 3", got)
	}
	if got := db.DirtySegments(); got != 3 {
		t.Fatalf("never-saved DB: %d dirty, want 3", got)
	}
	// Sealing the 5-record active segment then adding again must open a
	// fourth segment.
	db.Seal()
	if err := db.Add(randSigs(r, 1, dim, nnz)[0]); err != nil {
		t.Fatal(err)
	}
	if got := db.Segments(); got != 4 {
		t.Fatalf("after Seal+Add: %d segments, want 4", got)
	}
	// Compact: the three sealed segments (10, 10, 5) are all below the
	// huge threshold once we raise it, so they merge into one; the
	// 1-record active segment stays.
	db.SetSegmentSize(100)
	db.Compact()
	if got := db.Segments(); got != 2 {
		t.Fatalf("after Compact: %d segments, want 2 (merged + active)", got)
	}
	// Full-size sealed segments are left alone.
	db2, err := NewDB(dim)
	if err != nil {
		t.Fatal(err)
	}
	db2.SetSegmentSize(5)
	if err := db2.AddAll(randSigs(r, 20, dim, nnz)); err != nil {
		t.Fatal(err)
	}
	before := db2.Segments()
	db2.Compact() // every sealed segment is exactly the threshold: no-op
	if got := db2.Segments(); got != before {
		t.Fatalf("Compact merged full segments: %d -> %d", before, got)
	}
	// SetSegmentSize(0) restores the default.
	db2.SetSegmentSize(0)
	if got := db2.SegmentSize(); got != DefaultSegmentSize {
		t.Fatalf("SegmentSize after reset = %d, want %d", got, DefaultSegmentSize)
	}
}
