package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vecmath"
)

func doc(id, label string, counts map[int]uint64) *Document {
	return &Document{ID: id, Label: label, Duration: 10 * time.Second, Counts: counts}
}

func TestNewDocumentSparsifies(t *testing.T) {
	d := NewDocument("x", "l", time.Second, []uint64{0, 5, 0, 3})
	if len(d.Counts) != 2 || d.Counts[1] != 5 || d.Counts[3] != 3 {
		t.Errorf("Counts = %v", d.Counts)
	}
	if d.Total() != 8 {
		t.Errorf("Total = %d", d.Total())
	}
}

func TestTF(t *testing.T) {
	d := doc("x", "", map[int]uint64{0: 3, 2: 1})
	tf := d.TF()
	if got := tf.Get(0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("tf[0] = %v", got)
	}
	if got := tf.Get(2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("tf[2] = %v", got)
	}
	empty := doc("e", "", nil)
	if empty.TF().NNZ() != 0 {
		t.Error("empty doc should have empty tf")
	}
}

func TestCorpusValidation(t *testing.T) {
	if _, err := NewCorpus(0); err == nil {
		t.Error("dim 0 should fail")
	}
	c, err := NewCorpus(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(nil); err == nil {
		t.Error("nil doc should fail")
	}
	if err := c.Add(doc("x", "", map[int]uint64{7: 1})); err == nil {
		t.Error("out-of-range term should fail")
	}
	if _, err := c.Fit(); err == nil {
		t.Error("Fit on empty corpus should fail")
	}
}

func TestIDFMatchesDefinition(t *testing.T) {
	c, err := NewCorpus(3)
	if err != nil {
		t.Fatal(err)
	}
	// Term 0 in all 4 docs; term 1 in 2 docs; term 2 in none.
	for i := 0; i < 4; i++ {
		counts := map[int]uint64{0: 10}
		if i < 2 {
			counts[1] = 5
		}
		if err := c.Add(doc("d", "", counts)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Fit()
	if err != nil {
		t.Fatal(err)
	}
	idf := m.IDF()
	if math.Abs(idf[0]-0) > 1e-12 {
		t.Errorf("idf of ubiquitous term = %v, want 0 (log 4/4)", idf[0])
	}
	if math.Abs(idf[1]-math.Log(2)) > 1e-12 {
		t.Errorf("idf[1] = %v, want log 2", idf[1])
	}
	if idf[2] != 0 {
		t.Errorf("idf of absent term = %v, want 0", idf[2])
	}
}

func TestTransformComputesTFIDF(t *testing.T) {
	c, err := NewCorpus(2)
	if err != nil {
		t.Fatal(err)
	}
	d1 := doc("d1", "a", map[int]uint64{0: 3, 1: 1})
	d2 := doc("d2", "b", map[int]uint64{0: 2})
	if err := c.Add(d1); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(d2); err != nil {
		t.Fatal(err)
	}
	sigs, m, err := c.Signatures()
	if err != nil {
		t.Fatal(err)
	}
	// idf: term0 in both docs -> log(2/2)=0; term1 in one -> log 2.
	want1 := vecmath.Vector{0, 0.25 * math.Log(2)}
	if !sigs[0].Dense().Equal(want1, 1e-12) {
		t.Errorf("sig d1 = %v, want %v", sigs[0].Dense(), want1)
	}
	if sigs[1].W.NNZ() != 0 || sigs[1].Dim() != 2 {
		t.Errorf("sig d2 = %v, want empty support over dim 2", sigs[1].Dense())
	}
	// The zero-idf term is dropped from the sparse support entirely.
	if sigs[0].W.NNZ() != 1 {
		t.Errorf("sig d1 support = %d, want 1 (zero weights dropped)", sigs[0].W.NNZ())
	}
	if sigs[0].Label != "a" || sigs[0].DocID != "d1" {
		t.Error("signature provenance lost")
	}
	// Transform validates term range.
	if _, err := m.Transform(doc("bad", "", map[int]uint64{9: 1})); err == nil {
		t.Error("Transform with out-of-range term should fail")
	}
	if _, err := m.Transform(nil); err == nil {
		t.Error("Transform(nil) should fail")
	}
}

func TestUbiquitousTermVanishes(t *testing.T) {
	// The paper's point: functions appearing in every interval (daemon
	// interference, multiplexed entry points) get idf = 0 and stop
	// influencing signatures.
	c, err := NewCorpus(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		counts := map[int]uint64{0: uint64(1000 + i*37)} // huge, everywhere
		if i%2 == 0 {
			counts[1] = 5
		} else {
			counts[2] = 5
		}
		if err := c.Add(doc("d", "", counts)); err != nil {
			t.Fatal(err)
		}
	}
	sigs, _, err := c.Signatures()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sigs {
		if s.W.Get(0) != 0 {
			t.Fatalf("ubiquitous term has weight %v, want 0", s.W.Get(0))
		}
	}
}

func TestLabelsAndByLabel(t *testing.T) {
	c, err := NewCorpus(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"scp", "kcompile", "scp", "", "dbench"} {
		if err := c.Add(doc("d", l, map[int]uint64{0: 1})); err != nil {
			t.Fatal(err)
		}
	}
	labels := c.Labels()
	want := []string{"scp", "kcompile", "dbench"}
	if len(labels) != len(want) {
		t.Fatalf("Labels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", labels, want)
		}
	}
	if got := len(c.ByLabel("scp")); got != 2 {
		t.Errorf("ByLabel(scp) = %d docs", got)
	}
}

func TestNormalize(t *testing.T) {
	sigs := []Signature{
		SignatureFromDense("a", "", vecmath.Vector{3, 4}),
		SignatureFromDense("b", "", vecmath.Vector{0, 0}),
	}
	Normalize(sigs)
	if math.Abs(sigs[0].W.L2()-1) > 1e-12 {
		t.Errorf("normalized L2 = %v", sigs[0].W.L2())
	}
	if sigs[1].W.NNZ() != 0 {
		t.Error("zero signature should stay zero")
	}
}

func TestDBTopKAndClassify(t *testing.T) {
	db, err := NewDB(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDB(0); err == nil {
		t.Error("dim 0 should fail")
	}
	train := []Signature{
		SignatureFromDense("s1", "scp", vecmath.Vector{1, 0}),
		SignatureFromDense("s2", "scp", vecmath.Vector{0.9, 0.1}),
		SignatureFromDense("k1", "kcompile", vecmath.Vector{0, 1}),
		SignatureFromDense("k2", "kcompile", vecmath.Vector{0.1, 0.9}),
	}
	if err := db.AddAll(train); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(SignatureFromDense("bad", "", vecmath.Vector{1})); err == nil {
		t.Error("wrong-dimension signature should fail")
	}

	query := vecmath.Vector{0.95, 0.05}
	for _, metric := range []Metric{EuclideanMetric(), CosineMetric(), MinkowskiMetric(1)} {
		hits, err := db.TopK(query, 2, metric)
		if err != nil {
			t.Fatalf("%s: %v", metric.Name, err)
		}
		if hits[0].Signature.Label != "scp" {
			t.Errorf("%s: nearest = %s, want scp", metric.Name, hits[0].Signature.DocID)
		}
		label, err := db.Classify(query, 3, metric)
		if err != nil {
			t.Fatal(err)
		}
		if label != "scp" {
			t.Errorf("%s: Classify = %s, want scp", metric.Name, label)
		}
	}

	if _, err := db.TopK(vecmath.Vector{1}, 1, EuclideanMetric()); err == nil {
		t.Error("wrong-dimension query should fail")
	}
	if _, err := db.TopK(query, 0, EuclideanMetric()); err == nil {
		t.Error("k=0 should fail")
	}
	// k beyond size returns all
	hits, err := db.TopK(query, 100, EuclideanMetric())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 {
		t.Errorf("TopK(100) = %d hits", len(hits))
	}
	empty, err := NewDB(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.TopK(query, 1, EuclideanMetric()); err == nil {
		t.Error("TopK on empty db should fail")
	}
}

func TestDocumentsRoundTrip(t *testing.T) {
	docs := []*Document{
		doc("a", "scp", map[int]uint64{1: 5, 99: 2}),
		doc("b", "", map[int]uint64{}),
	}
	var buf bytes.Buffer
	if err := WriteDocuments(&buf, docs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDocuments(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d docs", len(back))
	}
	if back[0].ID != "a" || back[0].Label != "scp" || back[0].Counts[99] != 2 {
		t.Errorf("doc a mangled: %+v", back[0])
	}
	if back[0].Duration != 10*time.Second {
		t.Errorf("duration = %v", back[0].Duration)
	}
	if back[1].Counts == nil {
		t.Error("nil counts map after read")
	}
}

func TestReadDocumentsErrors(t *testing.T) {
	if _, err := ReadDocuments(bytes.NewBufferString("{bad json\n")); err == nil {
		t.Error("bad JSON should fail")
	}
	if err := WriteDocuments(&bytes.Buffer{}, []*Document{nil}); err == nil {
		t.Error("nil document should fail")
	}
}

func TestSignaturesRoundTrip(t *testing.T) {
	sigs := []Signature{
		SignatureFromDense("a", "x", vecmath.Vector{0, 1.5, 0, -2}),
		SignatureFromDense("b", "", vecmath.Vector{0, 0, 0, 0}),
	}
	var buf bytes.Buffer
	if err := WriteSignatures(&buf, sigs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSignatures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d signatures", len(back))
	}
	if !back[0].Dense().Equal(sigs[0].Dense(), 0) || back[0].Label != "x" {
		t.Errorf("signature a mangled: %+v", back[0])
	}
	if back[1].Dim() != 4 || back[1].W.NNZ() != 0 {
		t.Errorf("zero signature dim = %d nnz = %d", back[1].Dim(), back[1].W.NNZ())
	}
}

func TestReadSignaturesErrors(t *testing.T) {
	if _, err := ReadSignatures(bytes.NewBufferString("{bad\n")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := ReadSignatures(bytes.NewBufferString(`{"doc_id":"x","dim":0,"weights":{}}` + "\n")); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := ReadSignatures(bytes.NewBufferString(`{"doc_id":"x","dim":2,"weights":{"5":1}}` + "\n")); err == nil {
		t.Error("out-of-range weight index should fail")
	}
}

// Property: tf vectors are probability distributions (sum to 1) for any
// non-empty document.
func TestPropertyTFSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		counts := make(map[int]uint64)
		for i := 0; i < 1+r.Intn(30); i++ {
			counts[r.Intn(100)] = uint64(1 + r.Intn(1000))
		}
		d := doc("x", "", counts)
		return math.Abs(d.TF().Sum()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all counts of a document by a constant leaves its
// signature unchanged (the tf normalization's whole purpose: longer runs
// are not biased).
func TestPropertySignatureScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 20
		c, err := NewCorpus(dim)
		if err != nil {
			return false
		}
		base := make(map[int]uint64)
		for i := 0; i < 1+r.Intn(10); i++ {
			base[r.Intn(dim)] = uint64(1 + r.Intn(50))
		}
		scaled := make(map[int]uint64, len(base))
		k := uint64(2 + r.Intn(9))
		for i, v := range base {
			scaled[i] = v * k
		}
		// Context docs so idf is non-trivial.
		for i := 0; i < 5; i++ {
			if err := c.Add(doc("ctx", "", map[int]uint64{r.Intn(dim): 1})); err != nil {
				return false
			}
		}
		if err := c.Add(doc("base", "", base)); err != nil {
			return false
		}
		if err := c.Add(doc("scaled", "", scaled)); err != nil {
			return false
		}
		sigs, _, err := c.Signatures()
		if err != nil {
			return false
		}
		a, b := sigs[len(sigs)-2].Dense(), sigs[len(sigs)-1].Dense()
		return a.Equal(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: persistence round trip preserves documents exactly.
func TestPropertyDocumentRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var docs []*Document
		for i := 0; i < r.Intn(5); i++ {
			counts := make(map[int]uint64)
			for j := 0; j < r.Intn(20); j++ {
				counts[r.Intn(3815)] = uint64(r.Intn(1 << 30))
			}
			docs = append(docs, doc("d", "lbl", counts))
		}
		var buf bytes.Buffer
		if err := WriteDocuments(&buf, docs); err != nil {
			return false
		}
		back, err := ReadDocuments(&buf)
		if err != nil || len(back) != len(docs) {
			return false
		}
		for i := range docs {
			if len(back[i].Counts) != len(docs[i].Counts) {
				return false
			}
			for k, v := range docs[i].Counts {
				if back[i].Counts[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTransform3815(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	c, err := NewCorpus(3815)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		counts := make(map[int]uint64)
		for j := 0; j < 400; j++ {
			counts[r.Intn(3815)] = uint64(1 + r.Intn(100000))
		}
		if err := c.Add(doc("d", "", counts)); err != nil {
			b.Fatal(err)
		}
	}
	m, err := c.Fit()
	if err != nil {
		b.Fatal(err)
	}
	target := c.Docs()[0]
	// The sparse sub-benchmark is the production path: O(nnz) work and
	// allocation. The dense-view sub-benchmark adds the O(dim)
	// materialization the old representation paid on every embedding.
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Transform(target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense-view", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sig, err := m.Transform(target)
			if err != nil {
				b.Fatal(err)
			}
			_ = sig.Dense()
		}
	})
}

// TestNilWeightSignatureHandling: exported entry points treat a
// zero-value Signature (nil W) consistently — skipped or a typed error,
// never a panic.
func TestNilWeightSignatureHandling(t *testing.T) {
	nilSig := Signature{DocID: "empty"}
	Normalize([]Signature{nilSig}) // must not panic
	if err := WriteSignatures(&bytes.Buffer{}, []Signature{nilSig}); err == nil {
		t.Error("WriteSignatures with nil W should fail")
	}
	if _, err := TopTerms(nilSig, 1, nil); err == nil {
		t.Error("TopTerms with nil W should fail")
	}
	ok := SignatureFromDense("ok", "", vecmath.Vector{1})
	if _, err := Contrast(nilSig, ok, 1, nil); err == nil {
		t.Error("Contrast with nil W should fail")
	}
	if _, err := Contrast(ok, nilSig, 1, nil); err == nil {
		t.Error("Contrast with nil W (right side) should fail")
	}
}
