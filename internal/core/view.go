package core

import (
	"sync/atomic"
)

// Epoch-pinned views: the concurrency backbone of the DB.
//
// Every query runs against a dbView — an immutable snapshot of the
// reader-visible state: the frozen per-shard prefixes of the backing
// arrays, the segment list (sealed segments by their compressed
// postings, the active segment by its frozen prefix bounds), and the
// query configuration. The current view is published through an atomic
// pointer; readers pin it with a refcount for the duration of one
// query (or one batch), writers mutate the writer-private structures
// under db.mu and publish a fresh view when the mutation completes.
//
// Why this is safe without a reader lock:
//
//   - Sealed segments are immutable (segment.go): their blockPostings
//     never change after seal, so any view may score them freely.
//   - The shard backing arrays (gids/sigs/norms) are append-only. A
//     view captures length-clamped slices, so a writer's append — even
//     one that reallocates the backing array — never changes a byte a
//     reader can reach: appends beyond the captured length touch
//     distinct addresses, and a reallocation leaves the reader's old
//     slice header aliasing the old array.
//   - The active segment's mutable flat Index stays writer-private:
//     a view scores its frozen prefix with the canonical sparse dot
//     (bit-identical to the indexed accumulation, see topkShard).
//   - Publication is an atomic pointer swap after the mutation is
//     complete, so a reader either sees the whole mutation or none of
//     it. The pin protocol (increment, then revalidate the pointer)
//     guarantees a validated pin was taken while the view was current,
//     and the view's current-pin reference keeps its refcount above
//     zero until the writer retires it — a validated pin therefore
//     always holds a view whose resources are still live.
//
// Deferred reclamation: resources that must outlive the views that can
// reach them — mmap'd posting blobs spliced away by Compact, snapshot
// files orphaned by SaveDir — are attached to the superseded view as
// reclaim actions. Retired views queue FIFO, and actions run only when
// a view and every older view have drained (refcount zero), preserving
// publication order; with no concurrent readers this happens
// synchronously inside the publish, so quiescent callers observe the
// exact pre-epoch behavior.
type dbView struct {
	// closed marks the terminal view Close publishes: every query
	// against it fails with the typed closed error before touching any
	// (released) segment state.
	closed bool
	// total is the store size this view froze — the (score, insertion
	// index) universe of every query that pins it.
	total int
	// cfg snapshots the query configuration, so setters never race
	// in-flight queries.
	cfg viewCfg
	// shards are the frozen per-shard prefixes.
	shards []viewShard
	// refs counts pins: 1 for being the current view (dropped on
	// retirement) plus 1 per in-flight reader.
	refs atomic.Int64
	// reclaim runs when this view and all older ones have drained;
	// set at retirement, executed exactly once under db.reclMu.
	reclaim []func()
}

// viewCfg is the query configuration frozen into a view. Values are
// normalized (theta in (0,1], floor >= 1) so query paths never consult
// the live DB fields.
type viewCfg struct {
	workers    int
	noIndex    bool
	noPrune    bool
	pruneTheta float64
	pruneFloor int
}

// viewShard is one shard's frozen prefix: length-clamped aliases of the
// shard's append-only backing arrays plus the frozen segment list.
type viewShard struct {
	gids  []int
	sigs  []Signature
	norms []float64
	segs  []viewSegment
}

// viewSegment is one segment as a view sees it. blocks is the sealed
// segment's immutable compressed postings; nil marks the active
// segment's frozen prefix [start, end), scored canonically.
type viewSegment struct {
	start, end int
	blocks     *blockPostings
}

// at returns the signature with the given global insertion index, which
// must be below the view's total.
func (v *dbView) at(gid int) Signature {
	return v.shards[gid%len(v.shards)].sigs[gid/len(v.shards)]
}

// pinView returns the current view with a reader pin held. The
// increment-then-revalidate loop makes the pin race-free against
// publication: a pin that lands on a just-superseded view fails the
// revalidation (the view pointer moved) and retries — it never
// dereferences the stale view beyond its refcount, so reclamation
// already in flight is harmless.
func (db *DB) pinView() *dbView {
	for {
		v := db.cur.Load()
		v.refs.Add(1)
		if db.cur.Load() == v {
			return v
		}
		db.unpinView(v)
	}
}

// unpinView drops one pin; the last pin off a retired view triggers
// reclamation.
func (db *DB) unpinView(v *dbView) {
	if v.refs.Add(-1) == 0 {
		db.tryReclaim()
	}
}

// buildViewLocked assembles a fresh view from the writer state. Caller
// holds db.mu. The view starts with one reference — the current-pin —
// dropped when a later publish retires it.
func (db *DB) buildViewLocked() *dbView {
	nv := &dbView{
		closed: db.closed,
		total:  db.total,
		cfg: viewCfg{
			workers:    db.workers,
			noIndex:    db.noIndex,
			noPrune:    db.noPrune,
			pruneTheta: db.pruneThetaLocked(),
			pruneFloor: db.pruneRowFloorLocked(),
		},
		shards: make([]viewShard, len(db.shards)),
	}
	nv.refs.Store(1)
	for si := range db.shards {
		db.freezeShardLocked(si, &nv.shards[si])
	}
	return nv
}

// freezeShardLocked captures shard si's frozen prefix into vs:
// length-clamped array aliases (a later append can never write through
// them) and value copies of the segment bounds (seal and merge mutate
// segment structs in place, so views must never hold *segment).
func (db *DB) freezeShardLocked(si int, vs *viewShard) {
	sh := &db.shards[si]
	n := len(sh.sigs)
	vs.gids = sh.gids[:n:n]
	vs.sigs = sh.sigs[:n:n]
	vs.norms = sh.norms[:n:n]
	vs.segs = make([]viewSegment, len(sh.segs))
	for i, sg := range sh.segs {
		b := sg.blocks
		if !sg.sealed {
			// The active segment's flat index is writer-private; its
			// frozen prefix is scored canonically (blocks == nil).
			b = nil
		}
		vs.segs[i] = viewSegment{start: sg.start, end: sg.end, blocks: b}
	}
}

// publishLocked swaps in a freshly built view and retires the old one,
// attaching actions to run when it (and every older view) drains.
// Caller holds db.mu.
func (db *DB) publishLocked(actions ...func()) {
	db.publishViewLocked(db.buildViewLocked(), actions)
}

// publishAddLocked is the incremental publish after an Add that did not
// change segment structure: every other shard's frozen state is shared
// with the previous view, only shard si is refrozen. Caller holds
// db.mu.
func (db *DB) publishAddLocked(si int) {
	old := db.cur.Load()
	nv := &dbView{total: db.total, cfg: old.cfg, shards: make([]viewShard, len(old.shards))}
	nv.refs.Store(1)
	copy(nv.shards, old.shards)
	db.freezeShardLocked(si, &nv.shards[si])
	db.publishViewLocked(nv, nil)
}

// publishViewLocked installs nv as the current view and queues the old
// one for in-order reclamation. Caller holds db.mu.
func (db *DB) publishViewLocked(nv *dbView, actions []func()) {
	old := db.cur.Swap(nv)
	db.publishes.Add(1)
	db.reclMu.Lock()
	old.reclaim = actions
	db.pendingViews = append(db.pendingViews, old)
	db.reclMu.Unlock()
	// Drop the current-pin. With no concurrent readers this drains the
	// queue synchronously, so quiescent callers see deferred work (map
	// releases, orphan removal) complete before their call returns.
	db.unpinView(old)
}

// tryReclaim pops drained views off the head of the retirement queue in
// FIFO order and runs their reclaim actions. A view is popped before
// its actions run and the queue is walked under db.reclMu, so each
// action runs exactly once; younger drained views wait for older pinned
// ones, preserving publication order (a Compact's map release always
// precedes a later Close's).
func (db *DB) tryReclaim() {
	db.reclMu.Lock()
	for len(db.pendingViews) > 0 && db.pendingViews[0].refs.Load() == 0 {
		v := db.pendingViews[0]
		db.pendingViews[0] = nil
		db.pendingViews = db.pendingViews[1:]
		for _, f := range v.reclaim {
			f()
		}
	}
	if len(db.pendingViews) == 0 {
		db.reclCond.Broadcast()
	}
	db.reclMu.Unlock()
}

// waitReclaimed blocks until every retired view has drained and its
// reclaim actions have run, then returns (and clears) the first
// recorded reclaim error. Close uses it to guarantee all mappings are
// released before it returns.
func (db *DB) waitReclaimed() error {
	db.reclMu.Lock()
	for len(db.pendingViews) > 0 {
		db.reclCond.Wait()
	}
	err := db.closeErr
	db.closeErr = nil
	db.reclMu.Unlock()
	return err
}
