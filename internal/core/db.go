package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/percpu"
	"repro/internal/vecmath"
)

// Metric scores the similarity or dissimilarity of two signature vectors.
type Metric struct {
	// Name identifies the metric in reports.
	Name string
	// Score computes the metric value for two dense vectors of equal
	// dimension. It is the fallback path: DB scans use SparseScore when
	// available; for metrics without one every stored signature is
	// materialized dense per query — an O(n·dim) cost custom metrics
	// should avoid by providing SparseScore.
	Score func(x, y vecmath.Vector) (float64, error)
	// SparseScore, when non-nil, computes the same metric from the
	// canonical sparse forms in O(nnz) instead of O(dim). All three paper
	// metrics provide it.
	SparseScore func(x, y *vecmath.Sparse) float64
	// HigherIsCloser is true for similarities (cosine) and false for
	// distances (Euclidean, Minkowski).
	HigherIsCloser bool
	// dotScore, when non-nil, recovers the metric value from the
	// query–signature dot product and the two cached squared norms —
	// the contract that lets TopK route through the inverted index,
	// scoring only posting lists in the query's support. It must be
	// bit-identical to SparseScore given a bit-identical dot (the index
	// guarantees that; see Index). Only the package constructors can set
	// it, so custom metrics always take the exhaustive scan.
	dotScore func(dot, qNorm2, sNorm2 float64) float64
	// kind tags the two built-in indexable metrics so the hot scoring
	// loop can call their dot-score formulas directly instead of through
	// the function value; the formulas are the same package functions
	// dotScore holds, so both routes are trivially identical.
	kind metricKind
}

// metricKind discriminates the built-in indexable metrics.
type metricKind uint8

const (
	metricKindOther metricKind = iota
	metricKindCosine
	metricKindEuclidean
)

// cosineDotScore mirrors Sparse.Cosine exactly: same zero-norm guard,
// same divisor association, same clamp.
func cosineDotScore(dot, qNorm2, sNorm2 float64) float64 {
	if qNorm2 == 0 || sNorm2 == 0 {
		return 0
	}
	c := dot / (math.Sqrt(qNorm2) * math.Sqrt(sNorm2))
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// euclideanDotScore mirrors Sparse.Euclidean/SquaredDistance exactly:
// same evaluation order, same negative clamp, same sqrt.
func euclideanDotScore(dot, qNorm2, sNorm2 float64) float64 {
	d2 := qNorm2 - 2*dot + sNorm2
	if d2 < 0 {
		d2 = 0
	}
	return math.Sqrt(d2)
}

// indexable reports whether the metric can ride the inverted index.
func (m *Metric) indexable() bool { return m.dotScore != nil }

// CosineMetric is the cosine similarity of §2.1. Its sparse path is
// bit-identical to the dense one (both accumulate in index order), and
// its indexed path is bit-identical to the sparse one (same dot, same
// norm algebra).
func CosineMetric() Metric {
	return Metric{
		Name:           "cosine",
		Score:          vecmath.Cosine,
		SparseScore:    func(x, y *vecmath.Sparse) float64 { return x.Cosine(y) },
		HigherIsCloser: true,
		dotScore:       cosineDotScore,
		kind:           metricKindCosine,
	}
}

// EuclideanMetric is the L2-induced distance, the paper's default. The
// sparse path uses the cached-norm identity ||x||²-2x·y+||y||², which
// agrees with the dense loop to ~1e-9 relative but is not bit-identical.
// The indexed path evaluates the very same identity from the very same
// dot, so indexed and scan results are bit-identical.
func EuclideanMetric() Metric {
	return Metric{
		Name:           "euclidean",
		Score:          vecmath.Euclidean,
		SparseScore:    func(x, y *vecmath.Sparse) float64 { return x.Euclidean(y) },
		HigherIsCloser: false,
		dotScore:       euclideanDotScore,
		kind:           metricKindEuclidean,
	}
}

// MinkowskiMetric is the Lp-induced distance for p >= 1. The sparse path
// merges the support union in ascending index order, so it scores in
// O(nnz) and is bit-identical to the dense loop for every p. Orders
// below 1 get no sparse path so the dense validation reports the error.
//
// Minkowski metrics never ride the inverted index — not even p=2. Their
// scan path is the union merge walk, which is bit-distinct from the
// cached-norm identity the index recovers distances with, and the DB
// promises indexed results bit-identical to the scan. Callers that want
// indexed L2 retrieval use EuclideanMetric, whose scan path already is
// the norm identity.
func MinkowskiMetric(p float64) Metric {
	m := Metric{
		Name: fmt.Sprintf("minkowski(p=%g)", p),
		Score: func(x, y vecmath.Vector) (float64, error) {
			return vecmath.Minkowski(x, y, p)
		},
		HigherIsCloser: false,
	}
	if p >= 1 || math.IsInf(p, 1) {
		m.SparseScore = func(x, y *vecmath.Sparse) float64 {
			d, err := x.Minkowski(y, p)
			if err != nil {
				// p was validated at construction, so only a dimension
				// mismatch reaches here; panic like the other
				// pre-validated sparse hot-loop ops (Dot, DotDense)
				// rather than silently scoring a mis-sized vector as
				// distance 0.
				panic(err)
			}
			return d
		}
	}
	return m
}

// DimensionError reports a signature or query whose dimension does not
// match the database's term space. It is a typed error so callers can
// distinguish a mis-sized input from scan-time failures.
type DimensionError struct {
	// What identifies the offending input ("query", "signature <id>").
	What string
	// Got and Want are the mismatched dimensions.
	Got, Want int
}

// Error implements error.
func (e *DimensionError) Error() string {
	return fmt.Sprintf("core: %s has dimension %d, want %d", e.What, e.Got, e.Want)
}

// ConfigError reports a construction or configuration parameter outside
// its accepted range (a non-positive dimension or shard count, a
// compaction fan-out below 2). It is a typed error so callers can
// distinguish a bad knob from runtime failures.
type ConfigError struct {
	// Param names the offending parameter ("dimension", "shard count")
	// or, for usage errors, the misused object ("database").
	Param string
	// Value is the rejected value.
	Value int
	// Min is the smallest accepted value.
	Min int
	// Msg, when non-empty, replaces the range text: the error is a
	// usage violation (an operation on a closed database) rather than
	// an out-of-range knob.
	Msg string
	// Err, when non-nil, is the underlying cause (a malformed weight
	// vector rejected by vecmath, say) exposed through Unwrap.
	Err error
}

// Error implements error.
func (e *ConfigError) Error() string {
	switch {
	case e.Msg != "" && e.Err != nil:
		return fmt.Sprintf("core: %s: %v", e.Msg, e.Err)
	case e.Msg != "":
		return "core: " + e.Msg
	case e.Err != nil:
		return fmt.Sprintf("core: %s: %v", e.Param, e.Err)
	}
	return fmt.Sprintf("core: %s %d must be >= %d", e.Param, e.Value, e.Min)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *ConfigError) Unwrap() error { return e.Err }

// errClosed is the typed error every operation on a closed DB returns.
//
//fmeter:errdomain config
func errClosed() error {
	return &ConfigError{Param: "database", Msg: "operation on closed database"}
}

// ErrEmptyDB is returned by similarity queries against a database with no
// stored signatures.
var ErrEmptyDB = errors.New("core: empty database")

// SearchResult is one hit of a similarity query.
type SearchResult struct {
	Signature Signature
	// Score is the metric value against the query.
	Score float64
}

// DB is the labeled signature database the paper envisions operators
// maintaining (§2.2): signatures of forensically identified behaviours,
// stored for later retrieval, comparison, and classifier training.
//
// Storage is sparse-first, sharded, and segmented: signatures are
// distributed round-robin over N shards by insertion order, and inside
// each shard they live in a run of append-only segments — Add appends
// to the shard's mutable active segment, which Seal (or the segment
// size threshold) rolls into an immutable sealed segment carrying its
// own posting lists and cached norms, and Compact merges small sealed
// segments by splicing their posting lists (see segment.go). Queries
// walk the segments in order; the per-shard top-k survivors merge
// through a global heap keyed on (score, insertion index). For the
// built-in cosine and Euclidean metrics a query accumulates dot
// products down only the posting lists in its support; other metrics
// take the exhaustive per-shard scan. Both paths order candidates by
// the same total order, so TopK returns identical results at every
// shard, segment, and worker count, indexed or not.
//
// Persistence is two-format: WriteSnapshot/ReadSnapshot stream the
// whole store as a single v1 file, while SaveDir/LoadDir keep a v2
// snapshot directory (manifest + one CRC-checked file per segment)
// where a save rewrites only the segments dirtied since the last save.
//
// Query-time working state (heaps, score accumulators, merge buffers,
// vote counters) lives in a pool of per-worker scratch, so steady-state
// queries do not allocate.
//
// Concurrency contract (epoch-pinned views, see view.go): queries
// (TopK*, Classify*, Len, All, WriteSnapshot, the *Stats variants) may
// run concurrently with each other AND with mutations. Each query pins
// the current immutable view — the sealed segments plus a frozen
// prefix of each shard's active segment — and computes exactly the
// result a quiescent DB holding that view's signatures would return;
// batch calls pin one view for the whole batch. Mutations (Add,
// AddAll, Seal, Compact, SaveDir, Close, and every Set*) remain
// single-writer: they serialize on an internal mutex, so concurrent
// mutators are safe but take turns, and each publishes a new view
// atomically when it completes. Resources a superseded view can still
// reach (mmap'd posting blobs spliced by Compact, snapshot files
// orphaned by SaveDir) are reclaimed only after the last reader of
// that view drains; Close publishes a terminal view, waits for every
// in-flight query to drain, releases all mappings exactly once, and
// fails late arrivals with a typed *ConfigError.
type DB struct {
	dim     int
	workers int
	total   int
	noIndex bool
	// noPrune forces the plain indexed walk; pruneTheta (0 meaning 1)
	// is the approximate-mode relaxation; pruneFloor (0 meaning
	// pruneMinRows) is the shard-size floor below which pruning is not
	// attempted — see prune.go.
	noPrune    bool
	pruneTheta float64
	pruneFloor int
	// policy, when enabled, keeps sealed-segment counts bounded by
	// merging same-tier runs on every seal — see segment.go.
	policy  CompactionPolicy
	segSize int
	nextSeg uint64
	// saveDir is the directory the last SaveDir wrote to; segment dirty
	// bits are relative to it (saving elsewhere rewrites everything).
	saveDir string
	// closed marks a DB whose Close ran: segment mappings are released
	// and every query or mutation returns a typed *ConfigError.
	closed  bool
	shards  []dbShard
	scratch *percpu.Pool[*dbScratch]

	// mu serializes every mutation (and the writer-side accessors that
	// read segment persistence state); queries never take it — they pin
	// views (view.go).
	mu sync.Mutex
	// cur is the published view every query pins.
	cur atomic.Pointer[dbView]
	// publishes counts view publications (every Add/AddAll/Seal/Compact/
	// SaveDir/setter that swapped cur) — the currency batched ingest
	// saves, observable via Publishes().
	publishes atomic.Uint64
	// reclMu guards the retirement queue, its condition variable, and
	// the deferred-reclaim error; reclaim actions run under it.
	reclMu       sync.Mutex
	reclCond     *sync.Cond
	pendingViews []*dbView
	// closeErr records the first error out of a deferred mapping
	// release, surfaced by Close after the drain.
	closeErr error
	// orphanErr records the first error out of a deferred orphan-file
	// removal, surfaced by the next SaveDir that drains synchronously.
	orphanErr error
	// staleMaps collects segments whose mmap'd blobs a compaction
	// spliced away; the next publish attaches their release as a
	// reclaim action. Guarded by mu.
	staleMaps []*segment
}

// dbShard holds the signatures routed to one shard alongside their
// global insertion indices (the TopK tie-break key) and cached squared
// norms. The backing arrays are append-only; segs partitions them into
// the shard's segment run (each segment owns the posting lists of its
// range — see segment.go).
type dbShard struct {
	gids  []int
	sigs  []Signature
	norms []float64
	segs  []*segment
}

// NewDB creates an empty single-shard database for signatures of the
// given dimension.
func NewDB(dim int) (*DB, error) { return NewShardedDB(dim, 1) }

// NewShardedDB creates an empty database with the given shard count.
// Shards bound the fan-out of TopK scans; the query results are
// identical at any shard count.
//
//fmeter:errdomain config
func NewShardedDB(dim, shards int) (*DB, error) {
	if dim < 1 {
		return nil, &ConfigError{Param: "dimension", Value: dim, Min: 1}
	}
	if shards < 1 {
		return nil, &ConfigError{Param: "shard count", Value: shards, Min: 1}
	}
	db := &DB{dim: dim, shards: make([]dbShard, shards)}
	db.scratch = percpu.NewPool(func() *dbScratch {
		return &dbScratch{shards: make([]shardScratch, len(db.shards))}
	})
	db.reclCond = sync.NewCond(&db.reclMu)
	db.cur.Store(db.buildViewLocked())
	return db, nil
}

// SetWorkers bounds the worker-pool fan-out of TopK scans across shards
// — and of TopKBatch across queries (parallel.Workers semantics: 0 =
// one per CPU, <0 = sequential). The effective single-query parallelism
// is min(workers, shards). In-flight queries keep the setting they
// pinned.
func (db *DB) SetWorkers(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.workers = n
	db.publishLocked()
}

// SetIndexed routes queries through the inverted index (the default) or
// forces the exhaustive scan, for A/B comparison; results are identical
// either way. The index itself is always maintained, so flipping back
// is free. In-flight queries keep the setting they pinned.
func (db *DB) SetIndexed(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.noIndex = !on
	db.publishLocked()
}

// Indexed reports whether queries ride the inverted index.
func (db *DB) Indexed() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return !db.noIndex
}

// Shards returns the shard count.
func (db *DB) Shards() int { return len(db.shards) }

// Len returns the number of stored signatures in the current view.
func (db *DB) Len() int {
	v := db.pinView()
	n := v.total
	db.unpinView(v)
	return n
}

// Dim returns the signature dimension.
func (db *DB) Dim() int { return db.dim }

// Publishes returns how many view publications the DB has performed —
// one per completed mutation (Add, AddAll, Seal, Compact, SaveDir,
// setters). Batched ingest exists to keep this number small: AddAll
// publishes once for the whole batch where per-signature Add publishes
// once per signature.
func (db *DB) Publishes() uint64 { return db.publishes.Load() }

// Add stores a signature, routing it to the next shard round-robin and
// appending it to that shard's active segment (weights into the
// segment's posting lists, squared norm into the shard's norm cache).
// An active segment that reaches the segment size is sealed and the
// next Add opens a fresh one. Add is safe to call concurrently with
// queries (which keep the view they pinned) and with other mutators
// (which serialize); the new signature is visible to every query that
// starts after Add returns.
func (db *DB) Add(sig Signature) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed()
	}
	if sig.W == nil {
		return &ConfigError{Param: "signature", Msg: fmt.Sprintf("signature %s has no weight vector", sig.DocID)}
	}
	if sig.Dim() != db.dim {
		return &DimensionError{What: fmt.Sprintf("signature %s", sig.DocID), Got: sig.Dim(), Want: db.dim}
	}
	si, resealed, err := db.addLocked(sig)
	if err != nil {
		return err
	}
	if resealed {
		db.publishLocked(db.takeStaleActionsLocked()...)
	} else {
		db.publishAddLocked(si)
	}
	return nil
}

// addLocked appends one validated signature without publishing,
// reporting the target shard and whether a seal (and possibly a policy
// compaction) changed the segment structure. Caller holds db.mu and
// publishes afterwards.
func (db *DB) addLocked(sig Signature) (si int, resealed bool, err error) {
	si = db.total % len(db.shards)
	sh := &db.shards[si]
	sg := sh.activeSegment()
	if sg == nil {
		if sg, err = db.appendSegment(sh); err != nil {
			return 0, false, err
		}
	}
	sh.gids = append(sh.gids, db.total)
	sh.sigs = append(sh.sigs, sig)
	sh.norms = append(sh.norms, sig.W.Norm2())
	sg.index.Add(sig.W)
	sg.end++
	sg.dirty = true
	if sg.len() >= db.segSizeLocked() {
		sg.seal(sh)
		// A roll is the compaction policy's trigger: merging here (not on
		// a timer, not manually) keeps the sealed count bounded at every
		// point of a continuous ingestion stream.
		db.policyCompact(sh)
		resealed = true
	}
	db.total++
	return si, resealed, nil
}

// takeStaleActionsLocked wraps the segments whose mapped blobs were
// spliced away since the last publish into one reclaim action: release
// the mappings once no pinned view can reach the blobs. Caller holds
// db.mu; the action runs under db.reclMu (see tryReclaim), where it may
// record the first failure for Close to surface.
func (db *DB) takeStaleActionsLocked() []func() {
	if len(db.staleMaps) == 0 {
		return nil
	}
	stale := db.staleMaps
	db.staleMaps = nil
	return []func(){func() {
		for _, sg := range stale {
			if err := sg.releaseMap(); err != nil && db.closeErr == nil {
				db.closeErr = err
			}
		}
	}}
}

// IndexBytes returns the resident heap footprint of every segment's
// posting structure — flat arrays for active segments, compressed
// blocks for sealed ones. It is the number BENCH_postings.json tracks:
// sealing a store shrinks it by the id-compression and weight-sharing
// factor while queries stay bit-identical. Blobs served off segment
// file mappings (LoadDirMapped) are not heap and not counted here —
// see MappedBytes.
func (db *DB) IndexBytes() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0
	}
	var b int64
	for si := range db.shards {
		for _, sg := range db.shards[si].segs {
			b += sg.postings().memBytes()
		}
	}
	return b
}

// MappedBytes returns how many posting-blob bytes are served off
// read-only segment-file mappings (page cache, not heap) — non-zero
// only after LoadDirMapped, and shrinking as Compact splices mapped
// segments into heap copies. IndexBytes + MappedBytes is the full
// posting footprint; the split is the mapped-mode residency headline.
func (db *DB) MappedBytes() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0
	}
	var b int64
	for si := range db.shards {
		for _, sg := range db.shards[si].segs {
			b += sg.postings().mappedBytes()
		}
	}
	return b
}

// Close marks the database closed, waits for every in-flight query to
// drain off its pinned view, then releases every segment-file mapping
// exactly once: any query or mutation arriving after Close begins
// returns a typed *ConfigError instead of touching released memory,
// while queries already in flight complete normally against the views
// they pinned. Closing a never-mapped DB just marks it closed and
// drains. Close is idempotent, safe to call concurrently with queries
// and mutators, and returns the first release error (the DB is marked
// closed regardless).
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		// A concurrent first Close may still be draining — wait with it
		// so every caller returns only after the mappings are released.
		return db.waitReclaimed()
	}
	db.closed = true
	// Releases run as reclaim actions behind every already-queued one
	// (a Compact's deferred splice release always precedes), once no
	// pinned view can reach the mapped blobs.
	rel := db.takeStaleActionsLocked()
	for si := range db.shards {
		for _, sg := range db.shards[si].segs {
			if sg.mf != nil {
				sg := sg
				rel = append(rel, func() {
					if err := sg.releaseMap(); err != nil && db.closeErr == nil {
						db.closeErr = err
					}
				})
			}
			// Drop the posting structures from the writer state: a
			// mapped blob must never be reachable once its mapping is
			// gone, and the terminal view below carries no segments.
			sg.blocks = nil
			sg.index = nil
		}
	}
	// The terminal view keeps the signature rows (heap copies — Len and
	// All still answer) but no segments, and fails every query with the
	// typed closed error before it can walk anything.
	nv := db.buildViewLocked()
	for si := range nv.shards {
		nv.shards[si].segs = nil
	}
	db.publishViewLocked(nv, rel)
	db.mu.Unlock()
	return db.waitReclaimed()
}

// IndexPostings returns the total posting-entry count across all
// segments (one entry per stored non-zero weight).
func (db *DB) IndexPostings() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0
	}
	var n int64
	for si := range db.shards {
		for _, sg := range db.shards[si].segs {
			n += sg.postings().postingCount()
		}
	}
	return n
}

// AddAll stores a batch of signatures, validating each, and publishes
// them as one atomic step: a concurrent query sees either none of the
// batch or a full prefix ending at the offending signature. On error
// the database retains (and publishes) the signatures added before it.
func (db *DB) AddAll(sigs []Signature) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed()
	}
	for _, s := range sigs {
		if s.W == nil {
			return &ConfigError{Param: "signature", Msg: fmt.Sprintf("signature %s has no weight vector", s.DocID)}
		}
		if s.Dim() != db.dim {
			return &DimensionError{What: fmt.Sprintf("signature %s", s.DocID), Got: s.Dim(), Want: db.dim}
		}
	}
	var err error
	for _, s := range sigs {
		if _, _, err = db.addLocked(s); err != nil {
			break
		}
	}
	db.publishLocked(db.takeStaleActionsLocked()...)
	return err
}

// All returns the stored signatures of the current view in insertion
// order. The slice is freshly assembled; the signatures share storage
// with the database and must not be mutated.
func (db *DB) All() []Signature {
	v := db.pinView()
	defer db.unpinView(v)
	out := make([]Signature, v.total)
	for si := range v.shards {
		vs := &v.shards[si]
		for j, gid := range vs.gids {
			out[gid] = vs.sigs[j]
		}
	}
	return out
}

// dbScratch is the per-worker working state of one query evaluation:
// per-shard bounded heaps and score accumulators, the global merge
// heap, the dense-fallback buffer, and the classification vote state
// (a reused label-count map plus a hit buffer, so Classify* steady
// state allocates nothing). A scratch is checked out of the DB's pool
// for the duration of one query, so concurrent readers never share one
// and a steady query stream allocates nothing.
type dbScratch struct {
	shards []shardScratch
	merged topkHeap
	votes  map[string]int
	hits   []SearchResult
}

// shardScratch is one shard's slice of the query working state.
type shardScratch struct {
	heap  topkHeap
	acc   vecmath.Accumulator
	dense vecmath.Vector
	prune pruneScratch
	// stats collects this shard's pruning counters for the current query
	// (reset by topkShard); the *Stats entry points sum them.
	stats PruneStats
}

// topkHeap is a bounded binary heap holding the k best candidates seen so
// far, worst at the root. "Worse" means farther under the metric, ties
// broken toward the larger insertion index — (score, index) is a total
// order, which is what makes the result independent of scan and merge
// order and hence of the shard and worker counts.
type topkHeap struct {
	idx    []int
	score  []float64
	higher bool // metric.HigherIsCloser
}

// reset empties the heap for a new query, keeping its capacity.
//
//fmeter:noalloc
func (h *topkHeap) reset(higher bool) {
	h.idx = h.idx[:0]
	h.score = h.score[:0]
	h.higher = higher
}

// worseAt reports whether the candidate at position a ranks strictly
// worse than the one at position b.
//
//fmeter:noalloc
func (h *topkHeap) worseAt(a, b int) bool {
	if h.score[a] != h.score[b] {
		if h.higher {
			return h.score[a] < h.score[b]
		}
		return h.score[a] > h.score[b]
	}
	return h.idx[a] > h.idx[b]
}

//fmeter:noalloc
func (h *topkHeap) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.score[a], h.score[b] = h.score[b], h.score[a]
}

//fmeter:noalloc
func (h *topkHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worseAt(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

//fmeter:noalloc
func (h *topkHeap) down(i int) {
	n := len(h.idx)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.worseAt(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.worseAt(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h.swap(i, worst)
		i = worst
	}
}

// offer considers candidate (i, score); once the heap holds k entries it
// displaces the root only when the root ranks strictly worse under the
// (score, index) total order. Candidates may arrive in any order — the
// kept set is always the k best overall.
//
//fmeter:noalloc
func (h *topkHeap) offer(k int, i int, score float64) {
	//fmeter:alloc-ok the heap grows to k once; the scratch pool reuses it across queries
	if len(h.idx) < k {
		h.idx = append(h.idx, i)
		h.score = append(h.score, score)
		h.up(len(h.idx) - 1)
		return
	}
	rootWorse := false
	if h.score[0] != score {
		if h.higher {
			rootWorse = h.score[0] < score
		} else {
			rootWorse = h.score[0] > score
		}
	} else {
		rootWorse = h.idx[0] > i
	}
	if !rootWorse {
		return
	}
	h.idx[0], h.score[0] = i, score
	h.down(0)
}

// pop removes and returns the worst remaining candidate. Draining the
// heap therefore yields candidates in worst-to-best (score, index)
// order — the allocation-free replacement for sorting the survivors.
//
//fmeter:noalloc
func (h *topkHeap) pop() (int, float64) {
	gid, score := h.idx[0], h.score[0]
	last := len(h.idx) - 1
	h.idx[0], h.score[0] = h.idx[last], h.score[last]
	h.idx, h.score = h.idx[:last], h.score[:last]
	h.down(0)
	return gid, score
}

// TopK returns the k stored signatures closest to query under metric,
// best first. k larger than the database returns everything. The query
// is sparsified once; see TopKSparse for the allocation-free path when
// the caller already holds the sparse form.
func (db *DB) TopK(query vecmath.Vector, k int, metric Metric) ([]SearchResult, error) {
	if query.Dim() != db.dim {
		return nil, &DimensionError{What: "query", Got: query.Dim(), Want: db.dim}
	}
	v := db.pinView()
	defer db.unpinView(v)
	return db.topk(v, vecmath.DenseToSparse(query), query, k, metric, v.cfg.workers, nil)
}

// TopKSparse is TopK for a query already in canonical sparse form — the
// native path for signatures produced by Model.Transform.
func (db *DB) TopKSparse(query *vecmath.Sparse, k int, metric Metric) ([]SearchResult, error) {
	if query.Dim() != db.dim {
		return nil, &DimensionError{What: "query", Got: query.Dim(), Want: db.dim}
	}
	v := db.pinView()
	defer db.unpinView(v)
	return db.topk(v, query, nil, k, metric, v.cfg.workers, nil)
}

// TopKBatch answers many queries in one call, fanning them over the
// worker pool (SetWorkers) with one checked-out scratch per worker.
// out[i] is query i's TopK result; results are bit-identical to calling
// TopKSparse per query, at any worker count. Allocation is dominated by
// the result slices — see TopKBatchInto to reuse them.
func (db *DB) TopKBatch(queries []*vecmath.Sparse, k int, metric Metric) ([][]SearchResult, error) {
	out := make([][]SearchResult, len(queries))
	if err := db.TopKBatchInto(queries, k, metric, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TopKBatchInto is TopKBatch writing into caller-owned result slices:
// out[i] is overwritten (reusing its capacity) with query i's hits. With
// warm capacity a steady-state batch allocates nothing. len(out) must
// equal len(queries). On error out holds a mix of old and new results
// and must not be interpreted. The whole batch pins one view, so every
// result reflects the same store prefix even under concurrent writes.
func (db *DB) TopKBatchInto(queries []*vecmath.Sparse, k int, metric Metric, out [][]SearchResult) error {
	if len(out) != len(queries) {
		return &ConfigError{Param: "out", Msg: fmt.Sprintf("TopKBatchInto: %d result slots for %d queries", len(out), len(queries))}
	}
	v := db.pinView()
	defer db.unpinView(v)
	if parallel.Workers(v.cfg.workers) == 1 {
		// Sequential batch: direct calls keep the steady state at zero
		// allocations (no closure, no worker bookkeeping).
		for qi := range queries {
			if err := db.batchQuery(v, qi, queries, k, metric, out); err != nil {
				return err
			}
		}
		return nil
	}
	return db.batchQueriesParallel(v, queries, k, metric, out)
}

// batchQueriesParallel fans batchQuery over the worker pool; split out
// of TopKBatchInto so the closure exists only on the parallel path.
func (db *DB) batchQueriesParallel(v *dbView, queries []*vecmath.Sparse, k int, metric Metric, out [][]SearchResult) error {
	return parallel.For(v.cfg.workers, len(queries), func(qi int) error {
		return db.batchQuery(v, qi, queries, k, metric, out)
	})
}

// batchQuery answers query qi into out[qi], reusing its capacity.
// Shards are walked sequentially inside each query; the batch
// parallelism is the query fan-out.
func (db *DB) batchQuery(v *dbView, qi int, queries []*vecmath.Sparse, k int, metric Metric, out [][]SearchResult) error {
	q := queries[qi]
	if q == nil {
		return &ConfigError{Param: "query", Msg: fmt.Sprintf("query %d is nil", qi)}
	}
	if q.Dim() != db.dim {
		return &DimensionError{What: fmt.Sprintf("query %d", qi), Got: q.Dim(), Want: db.dim}
	}
	res, err := db.topk(v, q, nil, k, metric, -1, out[qi][:0])
	if err != nil {
		return err
	}
	out[qi] = res
	return nil
}

// topk evaluates one query against a pinned view: per-shard candidate
// scoring (inverted index when the metric supports it, bounded-heap
// scan otherwise) fanned over the worker pool, then a global
// (score, index) merge. denseQuery may be nil; it is materialized only
// when the metric lacks a sparse path. Results are appended to out[:0]
// when it has capacity.
func (db *DB) topk(v *dbView, query *vecmath.Sparse, denseQuery vecmath.Vector, k int, metric Metric, workers int, out []SearchResult) ([]SearchResult, error) {
	sc := db.scratch.Get()
	defer db.scratch.Put(sc)
	return db.topkWith(v, sc, query, denseQuery, k, metric, workers, out)
}

// topkWith is topk running on a caller-held scratch, so callers that
// need scratch state around the query (the classify paths, which keep
// hits and votes there) check out exactly one scratch for the whole
// operation. It touches only the pinned view, never the live writer
// state — that is the whole serialized-equivalence argument: the result
// is exactly what a quiescent DB holding the view's signatures returns.
func (db *DB) topkWith(v *dbView, sc *dbScratch, query *vecmath.Sparse, denseQuery vecmath.Vector, k int, metric Metric, workers int, out []SearchResult) ([]SearchResult, error) {
	if v.closed {
		// Closed means the segment mappings are gone (or going): fail
		// with the typed usage error instead of walking released state.
		return nil, errClosed()
	}
	if k < 1 {
		return nil, &ConfigError{Param: "k", Value: k, Min: 1}
	}
	if v.total == 0 {
		return nil, ErrEmptyDB
	}
	if k > v.total {
		k = v.total
	}
	if metric.SparseScore == nil && metric.dotScore == nil && denseQuery == nil {
		denseQuery = query.Dense()
	}
	useIndex := !v.cfg.noIndex && metric.indexable()
	qNorm2 := query.Norm2()
	if parallel.Workers(workers) == 1 || len(v.shards) == 1 {
		// Sequential shard walk: direct calls, so the hot batched path
		// (queries fan out, shards stay sequential) builds no closure
		// and stays allocation-free.
		for si := range v.shards {
			if err := topkShard(v, si, &sc.shards[si], query, denseQuery, k, metric, useIndex, qNorm2); err != nil {
				return nil, err
			}
		}
	} else if err := topkShardsParallel(v, workers, sc, query, denseQuery, k, metric, useIndex, qNorm2); err != nil {
		return nil, err
	}
	merged := &sc.shards[0].heap
	if len(v.shards) > 1 {
		merged = &sc.merged
		merged.reset(metric.HigherIsCloser)
		for si := range v.shards {
			h := &sc.shards[si].heap
			for j := range h.idx {
				merged.offer(k, h.idx[j], h.score[j])
			}
		}
	}
	// Drain the merge heap worst-first into the tail of out, leaving the
	// hits best-first. The (score, index) total order makes this the
	// exact sequence a stable sort of all scores would produce.
	n := len(merged.idx)
	if cap(out) < n {
		out = make([]SearchResult, n)
	}
	out = out[:n]
	for j := n - 1; j >= 0; j-- {
		gid, score := merged.pop()
		out[j] = SearchResult{Signature: v.at(gid), Score: score}
	}
	return out, nil
}

// topkShardsParallel fans the per-shard scoring over the worker pool.
// It lives apart from topk so the closure (and the captures it boxes)
// exists only on the parallel path; the sequential path stays
// allocation-free.
func topkShardsParallel(v *dbView, workers int, sc *dbScratch, query *vecmath.Sparse, denseQuery vecmath.Vector, k int, metric Metric, useIndex bool, qNorm2 float64) error {
	return parallel.For(workers, len(v.shards), func(si int) error {
		return topkShard(v, si, &sc.shards[si], query, denseQuery, k, metric, useIndex, qNorm2)
	})
}

// topkShard scores one shard's signatures against the query into the
// shard's scratch heap, walking the shard's segments in order: the
// inverted-index accumulate when useIndex, the sparse merge-walk scan
// when the metric has a sparse path, the dense-materializing scan
// otherwise. Segment boundaries never change a score — each candidate's
// arithmetic is per-signature — and the heap's (score, insertion index)
// total order never depends on arrival order, so results are
// bit-identical at any segment layout.
func topkShard(v *dbView, si int, ss *shardScratch, query *vecmath.Sparse, denseQuery vecmath.Vector, k int, metric Metric, useIndex bool, qNorm2 float64) error {
	vs := &v.shards[si]
	h := &ss.heap
	h.reset(metric.HigherIsCloser)
	ss.stats = PruneStats{}
	if len(vs.sigs) == 0 {
		// More shards than signatures: nothing stored here yet (and no
		// segments to walk).
		return nil
	}
	switch {
	case useIndex:
		// Inverted-index path, one segment at a time: dot products
		// accumulate down the posting lists of the query's support only
		// (decoded blocks for sealed segments); every signature in the
		// segment is then scored from its (possibly zero) dot in O(1)
		// via the cached norms. Per-candidate accumulation order inside
		// a segment equals the pre-segment whole-shard walk (ascending
		// query dims, each candidate sees exactly its intersection
		// terms), so dots are bit-identical. The active segment's frozen
		// prefix is scored with the canonical merge-walk dot instead —
		// its flat index is writer-private under the epoch-view contract
		// — which is the very same float sequence (Sparse.Dot visits the
		// intersection terms in the same ascending order the posting
		// accumulation does), so results stay bit-identical.
		//
		// With pruning on (the default) and sealed segments present, a
		// strided sample of min(k, len) candidates is scored canonically
		// up front so the heap holds a displacement threshold before any
		// segment is walked; sealed segments then take the threshold-
		// pruned walk (prune.go) and the seed sample is excluded from
		// every later offer loop. The seed scores, the pruned walk's
		// rescoring, and the plain walk all produce the canonical
		// per-candidate score, and the heap's (score, index) total order
		// is arrival-independent — results stay bit-identical with
		// pruning on or off.
		prune := !v.cfg.noPrune && metric.kind != metricKindOther && vs.segs[0].blocks != nil &&
			len(vs.sigs) >= v.cfg.pruneFloor
		var seeds []int32
		if prune {
			seeds = seedHeap(vs, &ss.prune, h, k, query, metric, qNorm2)
			prune = len(h.idx) == k
		}
		if prune {
			seeds = probeSeed(vs, &ss.prune, h, k, query, metric, qNorm2)
		}
		theta := v.cfg.pruneTheta
		for _, sg := range vs.segs {
			ss.stats.Segments++
			if sg.blocks == nil {
				// Active-segment frozen prefix: canonical dots, with the
				// seed rows excluded like every other offer loop.
				offerCanonical(h, k, vs, sg, query, metric, qNorm2, seeds)
				continue
			}
			if prune && prunedSegment(vs, sg, ss, h, k, query, metric, qNorm2, theta, seeds) {
				continue
			}
			sg.blocks.dots(query, &ss.acc)
			// Score every candidate from its accumulated dot. The two
			// built-in metrics take devirtualized loops (their formulas
			// called directly, plus a heap-root pre-filter that rejects
			// exactly the candidates offer would reject); other indexable
			// metrics go through the function value. Same formula, same
			// (score, index) decisions — identical results, fewer
			// indirect calls on the hot path. (seeds is empty unless the
			// seed pass ran, and metricKindOther never seeds.)
			switch metric.kind {
			case metricKindEuclidean:
				offerEuclidean(h, k, vs, sg, &ss.acc, qNorm2, seeds)
			case metricKindCosine:
				offerCosine(h, k, vs, sg, &ss.acc, qNorm2, seeds)
			default:
				for j := sg.start; j < sg.end; j++ {
					h.offer(k, vs.gids[j], metric.dotScore(ss.acc.Get(j-sg.start), qNorm2, vs.norms[j]))
				}
			}
		}
	case metric.SparseScore != nil:
		for _, sg := range vs.segs {
			for j := sg.start; j < sg.end; j++ {
				h.offer(k, vs.gids[j], metric.SparseScore(query, vs.sigs[j].W))
			}
		}
	default:
		// One scratch buffer per shard keeps the dense-fallback scan at
		// O(1) allocation instead of one materialization per stored
		// signature.
		if len(ss.dense) != query.Dim() {
			ss.dense = vecmath.NewVector(query.Dim())
		}
		for _, sg := range vs.segs {
			for j := sg.start; j < sg.end; j++ {
				score, err := metric.Score(denseQuery, vs.sigs[j].W.DenseInto(ss.dense))
				if err != nil {
					return err
				}
				h.offer(k, vs.gids[j], score)
			}
		}
	}
	return nil
}

// offerCanonical scores one segment range with the canonical per-
// candidate dot (query.Dot, the exact float sequence the indexed
// accumulation produces) and offers the results, skipping the shard
// rows in seeds like the other offer loops. It is the indexed path's
// kernel for the active segment's frozen prefix, whose flat posting
// index belongs to the writer.
//
//fmeter:noalloc
func offerCanonical(h *topkHeap, k int, vs *viewShard, sg viewSegment, query *vecmath.Sparse, metric Metric, qNorm2 float64, seeds []int32) {
	si := 0
	for j := sg.start; j < sg.end; j++ {
		for si < len(seeds) && int(seeds[si]) < j {
			si++
		}
		if si < len(seeds) && int(seeds[si]) == j {
			continue
		}
		dot := query.Dot(vs.sigs[j].W)
		var score float64
		switch metric.kind {
		case metricKindEuclidean:
			score = euclideanDotScore(dot, qNorm2, vs.norms[j])
		case metricKindCosine:
			score = cosineDotScore(dot, qNorm2, vs.norms[j])
		default:
			score = metric.dotScore(dot, qNorm2, vs.norms[j])
		}
		h.offer(k, vs.gids[j], score)
	}
}

// offerEuclidean scores one segment's candidates under the Euclidean
// metric and offers them to the shard heap, skipping the shard rows in
// seeds (ascending; already offered by the pruning seed pass — a
// single merge cursor excludes them in O(1) amortized). Once the heap
// is full, a candidate is pre-filtered against the root with exactly
// offer's displacement predicate (farther, or equal and a larger
// insertion index, never displaces), so the kept set is identical to
// calling offer for every candidate — the fast path only skips calls
// that would have returned without mutating the heap.
//
//fmeter:noalloc
func offerEuclidean(h *topkHeap, k int, vs *viewShard, sg viewSegment, acc *vecmath.Accumulator, qNorm2 float64, seeds []int32) {
	full := len(h.idx) == k
	var rs float64
	var ri int
	if full {
		rs, ri = h.score[0], h.idx[0]
	}
	si := 0
	for j := sg.start; j < sg.end; j++ {
		for si < len(seeds) && int(seeds[si]) < j {
			si++
		}
		if si < len(seeds) && int(seeds[si]) == j {
			continue
		}
		score := euclideanDotScore(acc.Get(j-sg.start), qNorm2, vs.norms[j])
		gid := vs.gids[j]
		if full && (score > rs || (score == rs && gid > ri)) {
			continue
		}
		h.offer(k, gid, score)
		if len(h.idx) == k {
			full = true
			rs, ri = h.score[0], h.idx[0]
		}
	}
}

// offerCosine is offerEuclidean for the cosine similarity (higher is
// closer, so the root pre-filter flips).
//
//fmeter:noalloc
func offerCosine(h *topkHeap, k int, vs *viewShard, sg viewSegment, acc *vecmath.Accumulator, qNorm2 float64, seeds []int32) {
	full := len(h.idx) == k
	var rs float64
	var ri int
	if full {
		rs, ri = h.score[0], h.idx[0]
	}
	si := 0
	for j := sg.start; j < sg.end; j++ {
		for si < len(seeds) && int(seeds[si]) < j {
			si++
		}
		if si < len(seeds) && int(seeds[si]) == j {
			continue
		}
		score := cosineDotScore(acc.Get(j-sg.start), qNorm2, vs.norms[j])
		gid := vs.gids[j]
		if full && (score < rs || (score == rs && gid > ri)) {
			continue
		}
		h.offer(k, gid, score)
		if len(h.idx) == k {
			full = true
			rs, ri = h.score[0], h.idx[0]
		}
	}
}

// Classify labels a query by majority vote among its k nearest stored
// signatures (ties broken toward the nearest). It is the similarity-based
// retrieval use case of §2.2 in its simplest form.
func (db *DB) Classify(query vecmath.Vector, k int, metric Metric) (string, error) {
	if query.Dim() != db.dim {
		return "", &DimensionError{What: "query", Got: query.Dim(), Want: db.dim}
	}
	return db.classify(vecmath.DenseToSparse(query), query, k, metric)
}

// ClassifySparse is Classify for a query already in sparse form.
func (db *DB) ClassifySparse(query *vecmath.Sparse, k int, metric Metric) (string, error) {
	if query.Dim() != db.dim {
		return "", &DimensionError{What: "query", Got: query.Dim(), Want: db.dim}
	}
	return db.classify(query, nil, k, metric)
}

// classify retrieves into the pooled hit buffer and votes in the pooled
// counter, so the whole k-NN labeling path shares TopK's zero-alloc
// steady state.
func (db *DB) classify(query *vecmath.Sparse, denseQuery vecmath.Vector, k int, metric Metric) (string, error) {
	v := db.pinView()
	defer db.unpinView(v)
	sc := db.scratch.Get()
	defer db.scratch.Put(sc)
	hits, err := db.topkWith(v, sc, query, denseQuery, k, metric, v.cfg.workers, sc.hits[:0])
	if err != nil {
		return "", err
	}
	sc.hits = hits
	return voteLabel(hits, sc.voteMap()), nil
}

// ClassifyBatch labels many queries in one batched pass over the worker
// pool; out[i] is bit-identical to ClassifySparse(queries[i], ...) at
// any worker count. See ClassifyBatchInto for the allocation-free path.
func (db *DB) ClassifyBatch(queries []*vecmath.Sparse, k int, metric Metric) ([]string, error) {
	out := make([]string, len(queries))
	if err := db.ClassifyBatchInto(queries, k, metric, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ClassifyBatchInto is ClassifyBatch writing into a caller-owned label
// slice: out[i] is overwritten with query i's label. Hits and vote
// counts live entirely in pooled per-worker scratch, so a steady-state
// batch allocates nothing. len(out) must equal len(queries). On error
// out holds a mix of old and new labels and must not be interpreted.
func (db *DB) ClassifyBatchInto(queries []*vecmath.Sparse, k int, metric Metric, out []string) error {
	if len(out) != len(queries) {
		return &ConfigError{Param: "out", Msg: fmt.Sprintf("ClassifyBatchInto: %d result slots for %d queries", len(out), len(queries))}
	}
	// One pinned view for the whole batch: every query in the batch
	// labels against the same frozen store state.
	v := db.pinView()
	defer db.unpinView(v)
	if parallel.Workers(v.cfg.workers) == 1 {
		// Sequential batch: direct calls keep the steady state at zero
		// allocations (no closure, no worker bookkeeping).
		for qi := range queries {
			if err := db.classifyQuery(v, qi, queries, k, metric, out); err != nil {
				return err
			}
		}
		return nil
	}
	return db.classifyQueriesParallel(v, queries, k, metric, out)
}

// classifyQueriesParallel fans classifyQuery over the worker pool; split
// out of ClassifyBatchInto so the closure exists only on the parallel
// path.
func (db *DB) classifyQueriesParallel(v *dbView, queries []*vecmath.Sparse, k int, metric Metric, out []string) error {
	return parallel.For(v.cfg.workers, len(queries), func(qi int) error {
		return db.classifyQuery(v, qi, queries, k, metric, out)
	})
}

// classifyQuery labels query qi into out[qi] via the pooled scratch.
func (db *DB) classifyQuery(v *dbView, qi int, queries []*vecmath.Sparse, k int, metric Metric, out []string) error {
	q := queries[qi]
	if q == nil {
		return &ConfigError{Param: "query", Msg: fmt.Sprintf("query %d is nil", qi)}
	}
	if q.Dim() != db.dim {
		return &DimensionError{What: fmt.Sprintf("query %d", qi), Got: q.Dim(), Want: db.dim}
	}
	sc := db.scratch.Get()
	defer db.scratch.Put(sc)
	hits, err := db.topkWith(v, sc, q, nil, k, metric, -1, sc.hits[:0])
	if err != nil {
		return err
	}
	sc.hits = hits
	out[qi] = voteLabel(hits, sc.voteMap())
	return nil
}

// voteMap returns the scratch's vote counter, cleared for a new query
// (clearing keeps the map's buckets, so steady state allocates nothing).
func (sc *dbScratch) voteMap() map[string]int {
	if sc.votes == nil {
		sc.votes = make(map[string]int)
	}
	clear(sc.votes)
	return sc.votes
}

// voteLabel majority-votes over hits, nearest-first tie-break, counting
// into votes (which the caller supplies empty).
func voteLabel(hits []SearchResult, votes map[string]int) string {
	for _, h := range hits {
		votes[h.Signature.Label]++
	}
	best, bestN := "", -1
	for _, h := range hits { // iterate hits (nearest first) for tie-breaks
		if n := votes[h.Signature.Label]; n > bestN {
			best, bestN = h.Signature.Label, n
		}
	}
	return best
}
