package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/vecmath"
)

// Metric scores the similarity or dissimilarity of two signature vectors.
type Metric struct {
	// Name identifies the metric in reports.
	Name string
	// Score computes the metric value for two dense vectors of equal
	// dimension. It is the fallback path: DB scans use SparseScore when
	// available; for metrics without one every stored signature is
	// materialized dense per query — an O(n·dim) cost custom metrics
	// should avoid by providing SparseScore.
	Score func(x, y vecmath.Vector) (float64, error)
	// SparseScore, when non-nil, computes the same metric from the
	// canonical sparse forms in O(nnz) instead of O(dim). All three paper
	// metrics provide it.
	SparseScore func(x, y *vecmath.Sparse) float64
	// HigherIsCloser is true for similarities (cosine) and false for
	// distances (Euclidean, Minkowski).
	HigherIsCloser bool
}

// CosineMetric is the cosine similarity of §2.1. Its sparse path is
// bit-identical to the dense one (both accumulate in index order).
func CosineMetric() Metric {
	return Metric{
		Name:           "cosine",
		Score:          vecmath.Cosine,
		SparseScore:    func(x, y *vecmath.Sparse) float64 { return x.Cosine(y) },
		HigherIsCloser: true,
	}
}

// EuclideanMetric is the L2-induced distance, the paper's default. The
// sparse path uses the cached-norm identity ||x||²-2x·y+||y||², which
// agrees with the dense loop to ~1e-9 relative but is not bit-identical.
func EuclideanMetric() Metric {
	return Metric{
		Name:           "euclidean",
		Score:          vecmath.Euclidean,
		SparseScore:    func(x, y *vecmath.Sparse) float64 { return x.Euclidean(y) },
		HigherIsCloser: false,
	}
}

// MinkowskiMetric is the Lp-induced distance for p >= 1. The sparse path
// merges the support union in ascending index order, so it scores in
// O(nnz) and is bit-identical to the dense loop for every p. Orders
// below 1 get no sparse path so the dense validation reports the error.
func MinkowskiMetric(p float64) Metric {
	m := Metric{
		Name: fmt.Sprintf("minkowski(p=%g)", p),
		Score: func(x, y vecmath.Vector) (float64, error) {
			return vecmath.Minkowski(x, y, p)
		},
		HigherIsCloser: false,
	}
	if p >= 1 || math.IsInf(p, 1) {
		m.SparseScore = func(x, y *vecmath.Sparse) float64 {
			d, err := x.Minkowski(y, p)
			if err != nil {
				// p was validated at construction, so only a dimension
				// mismatch reaches here; panic like the other
				// pre-validated sparse hot-loop ops (Dot, DotDense)
				// rather than silently scoring a mis-sized vector as
				// distance 0.
				panic(err)
			}
			return d
		}
	}
	return m
}

// DimensionError reports a signature or query whose dimension does not
// match the database's term space. It is a typed error so callers can
// distinguish a mis-sized input from scan-time failures.
type DimensionError struct {
	// What identifies the offending input ("query", "signature <id>").
	What string
	// Got and Want are the mismatched dimensions.
	Got, Want int
}

// Error implements error.
func (e *DimensionError) Error() string {
	return fmt.Sprintf("core: %s has dimension %d, want %d", e.What, e.Got, e.Want)
}

// ErrEmptyDB is returned by similarity queries against a database with no
// stored signatures.
var ErrEmptyDB = errors.New("core: empty database")

// SearchResult is one hit of a similarity query.
type SearchResult struct {
	Signature Signature
	// Score is the metric value against the query.
	Score float64
}

// DB is the labeled signature database the paper envisions operators
// maintaining (§2.2): signatures of forensically identified behaviours,
// stored for later retrieval, comparison, and classifier training.
//
// Storage is sparse-first and sharded: signatures are distributed
// round-robin over N shards by insertion order, each shard is scanned
// with its own bounded top-k heap, and the per-shard survivors merge
// through a global heap keyed on (score, insertion index). Because that
// key is a total order independent of scan order, TopK returns identical
// results at every shard and worker count. A DB is not safe for
// concurrent mutation; concurrent TopK queries against a quiescent DB
// are safe.
type DB struct {
	dim     int
	workers int
	total   int
	shards  []dbShard
}

// dbShard holds the signatures routed to one shard alongside their
// global insertion indices (the TopK tie-break key).
type dbShard struct {
	gids []int
	sigs []Signature
}

// NewDB creates an empty single-shard database for signatures of the
// given dimension.
func NewDB(dim int) (*DB, error) { return NewShardedDB(dim, 1) }

// NewShardedDB creates an empty database with the given shard count.
// Shards bound the fan-out of TopK scans; the query results are
// identical at any shard count.
func NewShardedDB(dim, shards int) (*DB, error) {
	if dim < 1 {
		return nil, fmt.Errorf("core: dimension %d must be >= 1", dim)
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: shard count %d must be >= 1", shards)
	}
	return &DB{dim: dim, shards: make([]dbShard, shards)}, nil
}

// SetWorkers bounds the worker-pool fan-out of TopK scans across shards
// (parallel.Workers semantics: 0 = one per CPU, <0 = sequential). The
// effective parallelism is min(workers, shards).
func (db *DB) SetWorkers(n int) { db.workers = n }

// Shards returns the shard count.
func (db *DB) Shards() int { return len(db.shards) }

// Len returns the number of stored signatures.
func (db *DB) Len() int { return db.total }

// Dim returns the signature dimension.
func (db *DB) Dim() int { return db.dim }

// Add stores a signature, routing it to the next shard round-robin.
func (db *DB) Add(sig Signature) error {
	if sig.W == nil {
		return fmt.Errorf("core: signature %s has no weight vector", sig.DocID)
	}
	if sig.Dim() != db.dim {
		return &DimensionError{What: fmt.Sprintf("signature %s", sig.DocID), Got: sig.Dim(), Want: db.dim}
	}
	sh := &db.shards[db.total%len(db.shards)]
	sh.gids = append(sh.gids, db.total)
	sh.sigs = append(sh.sigs, sig)
	db.total++
	return nil
}

// AddAll stores a batch of signatures, validating each. On error the
// database retains the signatures added before the offending one.
func (db *DB) AddAll(sigs []Signature) error {
	for _, s := range sigs {
		if err := db.Add(s); err != nil {
			return err
		}
	}
	return nil
}

// All returns the stored signatures in insertion order. The slice is
// freshly assembled from the shards; the signatures share storage with
// the database and must not be mutated.
func (db *DB) All() []Signature {
	out := make([]Signature, db.total)
	for si := range db.shards {
		sh := &db.shards[si]
		for j, gid := range sh.gids {
			out[gid] = sh.sigs[j]
		}
	}
	return out
}

// at returns the signature with the given global insertion index.
func (db *DB) at(gid int) Signature {
	return db.shards[gid%len(db.shards)].sigs[gid/len(db.shards)]
}

// topkHeap is a bounded binary heap holding the k best candidates seen so
// far, worst at the root. "Worse" means farther under the metric, ties
// broken toward the larger insertion index — (score, index) is a total
// order, which is what makes the result independent of scan and merge
// order and hence of the shard and worker counts.
type topkHeap struct {
	idx    []int
	score  []float64
	higher bool // metric.HigherIsCloser
}

// worseAt reports whether the candidate at position a ranks strictly
// worse than the one at position b.
func (h *topkHeap) worseAt(a, b int) bool {
	if h.score[a] != h.score[b] {
		if h.higher {
			return h.score[a] < h.score[b]
		}
		return h.score[a] > h.score[b]
	}
	return h.idx[a] > h.idx[b]
}

func (h *topkHeap) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.score[a], h.score[b] = h.score[b], h.score[a]
}

func (h *topkHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worseAt(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *topkHeap) down(i int) {
	n := len(h.idx)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.worseAt(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.worseAt(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h.swap(i, worst)
		i = worst
	}
}

// offer considers candidate (i, score); once the heap holds k entries it
// displaces the root only when the root ranks strictly worse under the
// (score, index) total order. Candidates may arrive in any order — the
// kept set is always the k best overall.
func (h *topkHeap) offer(k int, i int, score float64) {
	if len(h.idx) < k {
		h.idx = append(h.idx, i)
		h.score = append(h.score, score)
		h.up(len(h.idx) - 1)
		return
	}
	rootWorse := false
	if h.score[0] != score {
		if h.higher {
			rootWorse = h.score[0] < score
		} else {
			rootWorse = h.score[0] > score
		}
	} else {
		rootWorse = h.idx[0] > i
	}
	if !rootWorse {
		return
	}
	h.idx[0], h.score[0] = i, score
	h.down(0)
}

// sorted returns the heap's candidates best first.
func (h *topkHeap) sorted() (idx []int, score []float64) {
	order := make([]int, len(h.idx))
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return h.worseAt(order[b], order[a]) })
	idx = make([]int, len(order))
	score = make([]float64, len(order))
	for j, o := range order {
		idx[j], score[j] = h.idx[o], h.score[o]
	}
	return idx, score
}

// TopK returns the k stored signatures closest to query under metric,
// best first. k larger than the database returns everything. The query
// is sparsified once; see TopKSparse for the allocation-free path when
// the caller already holds the sparse form.
func (db *DB) TopK(query vecmath.Vector, k int, metric Metric) ([]SearchResult, error) {
	if query.Dim() != db.dim {
		return nil, &DimensionError{What: "query", Got: query.Dim(), Want: db.dim}
	}
	return db.topk(vecmath.DenseToSparse(query), query, k, metric)
}

// TopKSparse is TopK for a query already in canonical sparse form — the
// native path for signatures produced by Model.Transform.
func (db *DB) TopKSparse(query *vecmath.Sparse, k int, metric Metric) ([]SearchResult, error) {
	if query.Dim() != db.dim {
		return nil, &DimensionError{What: "query", Got: query.Dim(), Want: db.dim}
	}
	return db.topk(query, nil, k, metric)
}

// topk fans per-shard bounded-heap scans out over the worker pool and
// merges the per-shard survivors into the global top k. denseQuery may be
// nil; it is materialized only when the metric lacks a sparse path.
func (db *DB) topk(query *vecmath.Sparse, denseQuery vecmath.Vector, k int, metric Metric) ([]SearchResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k %d must be >= 1", k)
	}
	if db.total == 0 {
		return nil, ErrEmptyDB
	}
	if k > db.total {
		k = db.total
	}
	if metric.SparseScore == nil && denseQuery == nil {
		denseQuery = query.Dense()
	}
	heaps, err := parallel.Map(db.workers, len(db.shards), func(si int) (*topkHeap, error) {
		sh := &db.shards[si]
		hcap := k
		if len(sh.sigs) < hcap {
			hcap = len(sh.sigs)
		}
		h := &topkHeap{idx: make([]int, 0, hcap), score: make([]float64, 0, hcap), higher: metric.HigherIsCloser}
		if metric.SparseScore != nil {
			for j, s := range sh.sigs {
				h.offer(k, sh.gids[j], metric.SparseScore(query, s.W))
			}
		} else {
			// One scratch buffer per shard keeps the dense-fallback scan
			// at O(1) allocation instead of one materialization per
			// stored signature.
			scratch := vecmath.NewVector(db.dim)
			for j, s := range sh.sigs {
				score, err := metric.Score(denseQuery, s.W.DenseInto(scratch))
				if err != nil {
					return nil, err
				}
				h.offer(k, sh.gids[j], score)
			}
		}
		return h, nil
	})
	if err != nil {
		return nil, err
	}
	merged := heaps[0]
	if len(heaps) > 1 {
		merged = &topkHeap{idx: make([]int, 0, k), score: make([]float64, 0, k), higher: metric.HigherIsCloser}
		for _, h := range heaps {
			for j := range h.idx {
				merged.offer(k, h.idx[j], h.score[j])
			}
		}
	}
	gids, scores := merged.sorted()
	out := make([]SearchResult, len(gids))
	for j := range gids {
		out[j] = SearchResult{Signature: db.at(gids[j]), Score: scores[j]}
	}
	return out, nil
}

// Classify labels a query by majority vote among its k nearest stored
// signatures (ties broken toward the nearest). It is the similarity-based
// retrieval use case of §2.2 in its simplest form.
func (db *DB) Classify(query vecmath.Vector, k int, metric Metric) (string, error) {
	hits, err := db.TopK(query, k, metric)
	if err != nil {
		return "", err
	}
	return voteLabel(hits), nil
}

// ClassifySparse is Classify for a query already in sparse form.
func (db *DB) ClassifySparse(query *vecmath.Sparse, k int, metric Metric) (string, error) {
	hits, err := db.TopKSparse(query, k, metric)
	if err != nil {
		return "", err
	}
	return voteLabel(hits), nil
}

// voteLabel majority-votes over hits, nearest-first tie-break.
func voteLabel(hits []SearchResult) string {
	votes := make(map[string]int)
	for _, h := range hits {
		votes[h.Signature.Label]++
	}
	best, bestN := "", -1
	for _, h := range hits { // iterate hits (nearest first) for tie-breaks
		if n := votes[h.Signature.Label]; n > bestN {
			best, bestN = h.Signature.Label, n
		}
	}
	return best
}
