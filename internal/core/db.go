package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/vecmath"
)

// Metric scores the similarity or dissimilarity of two signature vectors.
type Metric struct {
	// Name identifies the metric in reports.
	Name string
	// Score computes the metric value for two vectors of equal dimension.
	Score func(x, y vecmath.Vector) (float64, error)
	// SparseScore, when non-nil, computes the same metric from the sparse
	// forms in O(nnz) instead of O(dim). DB.TopK uses it for every stored
	// signature once UseSparse is enabled.
	SparseScore func(x, y *vecmath.Sparse) float64
	// HigherIsCloser is true for similarities (cosine) and false for
	// distances (Euclidean, Minkowski).
	HigherIsCloser bool
}

// CosineMetric is the cosine similarity of §2.1. Its sparse path is
// bit-identical to the dense one (both accumulate in index order).
func CosineMetric() Metric {
	return Metric{
		Name:           "cosine",
		Score:          vecmath.Cosine,
		SparseScore:    func(x, y *vecmath.Sparse) float64 { return x.Cosine(y) },
		HigherIsCloser: true,
	}
}

// EuclideanMetric is the L2-induced distance, the paper's default. The
// sparse path uses the cached-norm identity ||x||²-2x·y+||y||², which
// agrees with the dense loop to ~1e-9 relative but is not bit-identical.
func EuclideanMetric() Metric {
	return Metric{
		Name:           "euclidean",
		Score:          vecmath.Euclidean,
		SparseScore:    func(x, y *vecmath.Sparse) float64 { return x.Euclidean(y) },
		HigherIsCloser: false,
	}
}

// MinkowskiMetric is the Lp-induced distance for p >= 1. Only p=2 has a
// sparse fast path (the general form needs |x_i - y_i|^p over the support
// union, which the dense loop already does at the same asymptotic cost
// once vectors are compacted).
func MinkowskiMetric(p float64) Metric {
	m := Metric{
		Name: fmt.Sprintf("minkowski(p=%g)", p),
		Score: func(x, y vecmath.Vector) (float64, error) {
			return vecmath.Minkowski(x, y, p)
		},
		HigherIsCloser: false,
	}
	if p == 2 {
		m.SparseScore = func(x, y *vecmath.Sparse) float64 { return x.Euclidean(y) }
	}
	return m
}

// SearchResult is one hit of a similarity query.
type SearchResult struct {
	Signature Signature
	// Score is the metric value against the query.
	Score float64
}

// DB is the labeled signature database the paper envisions operators
// maintaining (§2.2): signatures of forensically identified behaviours,
// stored for later retrieval, comparison, and classifier training.
type DB struct {
	dim       int
	sigs      []Signature
	sparse    []*vecmath.Sparse // parallel to sigs; populated iff useSparse
	useSparse bool
}

// NewDB creates an empty database for signatures of the given dimension.
func NewDB(dim int) (*DB, error) {
	if dim < 1 {
		return nil, fmt.Errorf("core: dimension %d must be >= 1", dim)
	}
	return &DB{dim: dim}, nil
}

// UseSparse toggles the sparse index: stored signatures keep a sorted
// index/value form with cached norms, and TopK scans score in O(nnz) for
// metrics that provide a SparseScore. Enabling it on a populated database
// indexes the existing signatures.
func (db *DB) UseSparse(on bool) {
	if on == db.useSparse {
		return
	}
	db.useSparse = on
	if !on {
		db.sparse = nil
		return
	}
	db.sparse = make([]*vecmath.Sparse, len(db.sigs))
	for i, s := range db.sigs {
		db.sparse[i] = vecmath.DenseToSparse(s.V)
	}
}

// Len returns the number of stored signatures.
func (db *DB) Len() int { return len(db.sigs) }

// Dim returns the signature dimension.
func (db *DB) Dim() int { return db.dim }

// Add stores a signature.
func (db *DB) Add(sig Signature) error {
	if sig.V.Dim() != db.dim {
		return fmt.Errorf("core: signature %s has dimension %d, want %d", sig.DocID, sig.V.Dim(), db.dim)
	}
	db.sigs = append(db.sigs, sig)
	if db.useSparse {
		db.sparse = append(db.sparse, vecmath.DenseToSparse(sig.V))
	}
	return nil
}

// AddAll stores a batch of signatures.
func (db *DB) AddAll(sigs []Signature) error {
	for _, s := range sigs {
		if err := db.Add(s); err != nil {
			return err
		}
	}
	return nil
}

// All returns the stored signatures. Callers must not mutate the slice.
func (db *DB) All() []Signature { return db.sigs }

// topkHeap is a bounded binary heap holding the k best candidates seen so
// far, worst at the root. "Worse" means farther under the metric, ties
// broken toward the larger insertion index, which reproduces the ordering
// of a stable sort over the full result set.
type topkHeap struct {
	idx    []int
	score  []float64
	higher bool // metric.HigherIsCloser
}

// worse reports whether candidate a (index ia, score sa) ranks strictly
// worse than candidate b.
func (h *topkHeap) worseAt(a, b int) bool {
	if h.score[a] != h.score[b] {
		if h.higher {
			return h.score[a] < h.score[b]
		}
		return h.score[a] > h.score[b]
	}
	return h.idx[a] > h.idx[b]
}

func (h *topkHeap) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.score[a], h.score[b] = h.score[b], h.score[a]
}

func (h *topkHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worseAt(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *topkHeap) down(i int) {
	n := len(h.idx)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.worseAt(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.worseAt(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h.swap(i, worst)
		i = worst
	}
}

// offer considers candidate (i, score); it displaces the root only when
// strictly better than the current worst. Equal scores never displace —
// the earlier index was seen first, matching stable-sort semantics.
func (h *topkHeap) offer(k int, i int, score float64) {
	if len(h.idx) < k {
		h.idx = append(h.idx, i)
		h.score = append(h.score, score)
		h.up(len(h.idx) - 1)
		return
	}
	// The new candidate is better than the root iff the root is worse
	// than it; emulate by comparing against a virtual entry.
	rootWorse := false
	if h.score[0] != score {
		if h.higher {
			rootWorse = h.score[0] < score
		} else {
			rootWorse = h.score[0] > score
		}
	} // equal scores: root has the smaller index, so it is not worse
	if !rootWorse {
		return
	}
	h.idx[0], h.score[0] = i, score
	h.down(0)
}

// TopK returns the k stored signatures closest to query under metric,
// best first. k larger than the database returns everything. The scan
// keeps a bounded heap, so the cost is O(n log k) rather than the
// O(n log n) of sorting every candidate.
func (db *DB) TopK(query vecmath.Vector, k int, metric Metric) ([]SearchResult, error) {
	if query.Dim() != db.dim {
		return nil, fmt.Errorf("core: query dimension %d, want %d", query.Dim(), db.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k %d must be >= 1", k)
	}
	if len(db.sigs) == 0 {
		return nil, errors.New("core: empty database")
	}
	if k > len(db.sigs) {
		k = len(db.sigs)
	}
	h := &topkHeap{idx: make([]int, 0, k), score: make([]float64, 0, k), higher: metric.HigherIsCloser}
	if db.useSparse && metric.SparseScore != nil {
		sq := vecmath.DenseToSparse(query)
		for i, sp := range db.sparse {
			h.offer(k, i, metric.SparseScore(sq, sp))
		}
	} else {
		for i, s := range db.sigs {
			score, err := metric.Score(query, s.V)
			if err != nil {
				return nil, err
			}
			h.offer(k, i, score)
		}
	}
	// Order the surviving k candidates best first; worseAt already
	// encodes the metric direction and the insertion-index tie-break.
	order := make([]int, len(h.idx))
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return h.worseAt(order[b], order[a]) })
	out := make([]SearchResult, len(order))
	for j, o := range order {
		out[j] = SearchResult{Signature: db.sigs[h.idx[o]], Score: h.score[o]}
	}
	return out, nil
}

// Classify labels a query by majority vote among its k nearest stored
// signatures (ties broken toward the nearest). It is the similarity-based
// retrieval use case of §2.2 in its simplest form.
func (db *DB) Classify(query vecmath.Vector, k int, metric Metric) (string, error) {
	hits, err := db.TopK(query, k, metric)
	if err != nil {
		return "", err
	}
	votes := make(map[string]int)
	for _, h := range hits {
		votes[h.Signature.Label]++
	}
	best, bestN := "", -1
	for _, h := range hits { // iterate hits (nearest first) for tie-breaks
		if n := votes[h.Signature.Label]; n > bestN {
			best, bestN = h.Signature.Label, n
		}
	}
	return best, nil
}
