package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/vecmath"
)

// Metric scores the similarity or dissimilarity of two signature vectors.
type Metric struct {
	// Name identifies the metric in reports.
	Name string
	// Score computes the metric value for two vectors of equal dimension.
	Score func(x, y vecmath.Vector) (float64, error)
	// HigherIsCloser is true for similarities (cosine) and false for
	// distances (Euclidean, Minkowski).
	HigherIsCloser bool
}

// CosineMetric is the cosine similarity of §2.1.
func CosineMetric() Metric {
	return Metric{Name: "cosine", Score: vecmath.Cosine, HigherIsCloser: true}
}

// EuclideanMetric is the L2-induced distance, the paper's default.
func EuclideanMetric() Metric {
	return Metric{Name: "euclidean", Score: vecmath.Euclidean, HigherIsCloser: false}
}

// MinkowskiMetric is the Lp-induced distance for p >= 1.
func MinkowskiMetric(p float64) Metric {
	return Metric{
		Name: fmt.Sprintf("minkowski(p=%g)", p),
		Score: func(x, y vecmath.Vector) (float64, error) {
			return vecmath.Minkowski(x, y, p)
		},
		HigherIsCloser: false,
	}
}

// SearchResult is one hit of a similarity query.
type SearchResult struct {
	Signature Signature
	// Score is the metric value against the query.
	Score float64
}

// DB is the labeled signature database the paper envisions operators
// maintaining (§2.2): signatures of forensically identified behaviours,
// stored for later retrieval, comparison, and classifier training.
type DB struct {
	dim  int
	sigs []Signature
}

// NewDB creates an empty database for signatures of the given dimension.
func NewDB(dim int) (*DB, error) {
	if dim < 1 {
		return nil, fmt.Errorf("core: dimension %d must be >= 1", dim)
	}
	return &DB{dim: dim}, nil
}

// Len returns the number of stored signatures.
func (db *DB) Len() int { return len(db.sigs) }

// Dim returns the signature dimension.
func (db *DB) Dim() int { return db.dim }

// Add stores a signature.
func (db *DB) Add(sig Signature) error {
	if sig.V.Dim() != db.dim {
		return fmt.Errorf("core: signature %s has dimension %d, want %d", sig.DocID, sig.V.Dim(), db.dim)
	}
	db.sigs = append(db.sigs, sig)
	return nil
}

// AddAll stores a batch of signatures.
func (db *DB) AddAll(sigs []Signature) error {
	for _, s := range sigs {
		if err := db.Add(s); err != nil {
			return err
		}
	}
	return nil
}

// All returns the stored signatures. Callers must not mutate the slice.
func (db *DB) All() []Signature { return db.sigs }

// TopK returns the k stored signatures closest to query under metric,
// best first. k larger than the database returns everything.
func (db *DB) TopK(query vecmath.Vector, k int, metric Metric) ([]SearchResult, error) {
	if query.Dim() != db.dim {
		return nil, fmt.Errorf("core: query dimension %d, want %d", query.Dim(), db.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k %d must be >= 1", k)
	}
	if len(db.sigs) == 0 {
		return nil, errors.New("core: empty database")
	}
	results := make([]SearchResult, 0, len(db.sigs))
	for _, s := range db.sigs {
		score, err := metric.Score(query, s.V)
		if err != nil {
			return nil, err
		}
		results = append(results, SearchResult{Signature: s, Score: score})
	}
	sort.SliceStable(results, func(i, j int) bool {
		if metric.HigherIsCloser {
			return results[i].Score > results[j].Score
		}
		return results[i].Score < results[j].Score
	})
	if k > len(results) {
		k = len(results)
	}
	return results[:k], nil
}

// Classify labels a query by majority vote among its k nearest stored
// signatures (ties broken toward the nearest). It is the similarity-based
// retrieval use case of §2.2 in its simplest form.
func (db *DB) Classify(query vecmath.Vector, k int, metric Metric) (string, error) {
	hits, err := db.TopK(query, k, metric)
	if err != nil {
		return "", err
	}
	votes := make(map[string]int)
	for _, h := range hits {
		votes[h.Signature.Label]++
	}
	best, bestN := "", -1
	for _, h := range hits { // iterate hits (nearest first) for tie-breaks
		if n := votes[h.Signature.Label]; n > bestN {
			best, bestN = h.Signature.Label, n
		}
	}
	return best, nil
}
