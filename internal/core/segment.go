package core

import "sync/atomic"

// Segmented storage: each shard's signatures live in a run of
// append-only segments. A segment is a view over a contiguous range of
// the shard's backing arrays (gids/sigs/norms, which only ever append —
// the in-memory analogue of a log-structured store) plus the segment's
// own inverted index over segment-local ids and its persistence state.
//
// The last segment of a shard may be *active*: DB.Add appends into it
// until it reaches the segment size, at which point it is sealed and the
// next Add opens a fresh active segment. Sealed segments are immutable:
// their record range, posting lists, and cached norms never change
// again, which is what lets SaveDir persist each one exactly once
// (temp + fsync + rename) and skip it on every later save — and what
// lets sealing re-encode the posting lists into the block-compressed
// form (postings.go), several times smaller resident with bit-identical
// query results.
//
// Compact merges runs of small adjacent sealed segments by *splicing*
// their compressed posting lists (spliceBlockPostings rebases block
// descriptors by the range offset and concatenates the byte streams
// verbatim — no re-scoring, no re-sort, not even a varint decode; lists
// stay ascending because adjacent segments cover adjacent id ranges).
// Because a merged segment covers exactly the concatenated range of its
// inputs, every query walk visits the same signatures in the same order
// with the same per-candidate arithmetic, so TopK stays bit-identical
// across any seal/compaction history (see DESIGN-PERF.md Layers 5–6).
type segment struct {
	// id names the segment on disk (seg-<id>.fms); ids are DB-unique and
	// monotonically increasing, so compaction outputs never collide with
	// the files they replace.
	id uint64
	// start/end delimit the shard-local record range [start, end).
	start, end int
	// index holds the active segment's flat posting lists over
	// segment-local ids (shard-local j maps to segment-local j-start).
	// nil once sealed.
	index *Index
	// blocks holds the sealed segment's block-compressed posting lists
	// (see postings.go); nil while the segment is active.
	blocks *blockPostings
	// sealed marks the segment immutable; only the last segment of a
	// shard may be unsealed.
	sealed bool
	// dirty marks the segment as not yet persisted to the DB's current
	// save directory. Cleared by SaveDir, set by Add and Compact.
	dirty bool
	// saved marks that a file named after this segment's id exists on
	// disk (and may be referenced by a durable manifest). Rewriting a
	// saved segment must take a fresh id so the old file survives until
	// the new manifest lands — never rename over a file the previous
	// snapshot still depends on.
	saved bool
	// crc is the CRC32 of the segment's file body, valid once saved
	// (recorded in the manifest so a tampered file is caught even when
	// its own footer was recomputed).
	crc uint32
	// mf is the read-only mapping of the segment's file when the
	// postings blob was mapped rather than copied (LoadDirMapped):
	// blocks.blob aliases it. The segment owns the handle — it is
	// released when the blob stops being served from it (a compaction
	// splice copies the bytes to the heap) or when the DB closes. Nil
	// for heap-backed segments.
	mf *mapFile
}

// mapReleaseCount counts segment-file mapping releases DB-wide; tests
// assert mappings are released exactly once across close/compact races.
var mapReleaseCount atomic.Int64

// releaseMap releases the segment's file mapping, if any. The caller
// must guarantee the mapped blob is no longer reachable from queries
// (the segment was spliced away and the views that could reach it have
// drained, or the DB is closing). Idempotent.
func (sg *segment) releaseMap() error {
	if sg.mf == nil {
		return nil
	}
	err := sg.mf.close()
	sg.mf = nil
	mapReleaseCount.Add(1)
	return err
}

// len returns the segment's record count.
func (sg *segment) len() int { return sg.end - sg.start }

// postings returns the segment's posting store: the flat index while
// active, the block-compressed form once sealed.
func (sg *segment) postings() postings {
	if sg.blocks != nil {
		return sg.blocks
	}
	return sg.index
}

// seal makes the segment immutable, re-encoding its flat posting lists
// into the block-compressed form (delta-varint ids, weights referenced
// from the signatures themselves) and dropping the flat arrays. Query
// results are bit-identical before and after — both forms feed the same
// accumulator kernel with the same weights in the same order. Sealing a
// sealed segment is a no-op.
func (sg *segment) seal(sh *dbShard) {
	if sg.sealed {
		return
	}
	sg.blocks = compressIndex(sg.index, sh.sigs[sg.start:sg.end])
	sg.index = nil
	sg.sealed = true
}

// DefaultSegmentSize is the seal threshold when SetSegmentSize was not
// called: an active segment rolls into an immutable sealed segment once
// it holds this many signatures.
const DefaultSegmentSize = 4096

// SetSegmentSize sets the per-shard seal threshold: an active segment is
// sealed as soon as it reaches n signatures (n < 1 restores
// DefaultSegmentSize). Only future seals are affected; existing segment
// boundaries never move except through Compact. Query results are
// bit-identical at any segment size.
func (db *DB) SetSegmentSize(n int) {
	if n < 1 {
		n = DefaultSegmentSize
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.segSize = n
}

// SegmentSize returns the active seal threshold.
func (db *DB) SegmentSize() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.segSizeLocked()
}

// segSizeLocked is SegmentSize for callers already holding db.mu.
func (db *DB) segSizeLocked() int {
	if db.segSize < 1 {
		return DefaultSegmentSize
	}
	return db.segSize
}

// Segments returns the total segment count across all shards
// (introspection for tests, benchmarks, and operators sizing Compact).
func (db *DB) Segments() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for si := range db.shards {
		n += len(db.shards[si].segs)
	}
	return n
}

// SealedSegments returns the sealed segment count across all shards —
// the number the compaction policy bounds under continuous ingestion
// (Segments minus SealedSegments is the active-segment count, at most
// one per shard).
func (db *DB) SealedSegments() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for si := range db.shards {
		for _, sg := range db.shards[si].segs {
			if sg.sealed {
				n++
			}
		}
	}
	return n
}

// DirtySegments returns how many segments would be rewritten by the next
// SaveDir to the current save directory — the incremental-save cost in
// segments. A DB never saved (or saved to a different directory) counts
// every segment.
func (db *DB) DirtySegments() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for si := range db.shards {
		for _, sg := range db.shards[si].segs {
			if sg.dirty {
				n++
			}
		}
	}
	return n
}

// activeSegment returns the shard's unsealed tail segment, or nil when
// the shard is empty or its tail is sealed.
func (sh *dbShard) activeSegment() *segment {
	if n := len(sh.segs); n > 0 && !sh.segs[n-1].sealed {
		return sh.segs[n-1]
	}
	return nil
}

// appendSegment opens a fresh active segment at the shard's tail.
func (db *DB) appendSegment(sh *dbShard) (*segment, error) {
	ix, err := NewIndex(db.dim)
	if err != nil {
		return nil, err
	}
	sg := &segment{id: db.nextSeg, start: len(sh.sigs), end: len(sh.sigs), index: ix, dirty: true}
	db.nextSeg++
	sh.segs = append(sh.segs, sg)
	return sg, nil
}

// Seal seals every shard's active segment, making the whole store
// immutable until the next Add (which opens fresh active segments) and
// re-encoding each sealed segment's posting lists into the
// block-compressed form. Sealing is what lets SaveDir stop rewriting a
// segment: a sealed, saved segment costs nothing on later saves. An
// empty active segment is left alone — sealing it would push a
// zero-length sealed segment into the manifest and every later
// compaction run for no data at all.
//
// Concurrent queries keep the view they pinned: the new segment lists
// are published atomically afterward, and any mapping a policy merge
// spliced away is released only once every older view drains.
func (db *DB) Seal() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	for si := range db.shards {
		sh := &db.shards[si]
		if sg := sh.activeSegment(); sg != nil && sg.len() > 0 {
			sg.seal(sh)
			db.policyCompact(sh)
		}
	}
	db.publishLocked(db.takeStaleActionsLocked()...)
}

// Compact merges runs of adjacent small sealed segments (each below the
// segment size) by splicing their posting lists — local ids are remapped
// by the range offset, weights are copied verbatim, nothing is
// re-scored. Active segments and full-sized sealed segments are left
// alone. Query results are bit-identical before and after; the merged
// segments are rewritten by the next SaveDir and their old files
// removed. In-flight queries keep scoring the pre-merge segments from
// the view they pinned; spliced-away file mappings are released only
// once the last such view drains.
func (db *DB) Compact() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	for si := range db.shards {
		db.compactShard(&db.shards[si])
	}
	db.publishLocked(db.takeStaleActionsLocked()...)
}

// compactShard merges each maximal run of >= 2 adjacent sealed
// small segments into one sealed segment.
func (db *DB) compactShard(sh *dbShard) {
	small := func(sg *segment) bool { return sg.sealed && sg.len() < db.segSizeLocked() }
	out := sh.segs[:0]
	for i := 0; i < len(sh.segs); {
		if !small(sh.segs[i]) {
			out = append(out, sh.segs[i])
			i++
			continue
		}
		j := i + 1
		for j < len(sh.segs) && small(sh.segs[j]) {
			j++
		}
		if j-i == 1 {
			out = append(out, sh.segs[i])
			i++
			continue
		}
		out = append(out, db.mergeRun(sh, i, j))
		i = j
	}
	// Drop the tail references so merged-away segments can be collected.
	for k := len(out); k < len(sh.segs); k++ {
		sh.segs[k] = nil
	}
	sh.segs = out
}

// mergeRun splices the adjacent sealed segments sh.segs[i:j) into one,
// reusing sh.segs[i] as the merged segment and returning it; the caller
// rebuilds the shard's segment slice. Adjacent segments cover adjacent
// id ranges, so rebasing each part's blocks by its range offset keeps
// every posting list ascending — descriptor edits plus byte-stream
// copies, no varint is decoded and nothing is re-scored. The merged
// segment takes a fresh id so its file never collides with the ones it
// replaces, and it is fully built (postings, bounds, range) before the
// caller links it into the segment run — a query never sees a
// half-merged segment.
func (db *DB) mergeRun(sh *dbShard, i, j int) *segment {
	merged := sh.segs[i]
	parts := make([]*blockPostings, 0, j-i)
	offsets := make([]int32, 0, j-i)
	for _, sg := range sh.segs[i:j] {
		parts = append(parts, sg.blocks)
		offsets = append(offsets, int32(sg.start-merged.start))
		merged.end = sg.end
	}
	merged.blocks = spliceBlockPostings(db.dim, parts, offsets)
	// The splice copied every part's blob bytes onto the heap, but a
	// pinned view may still be scoring an input segment's mapped blob —
	// queue the mappings for release when the last view that could reach
	// them drains (takeStaleActionsLocked attaches them to the publish).
	for _, sg := range sh.segs[i:j] {
		if sg.mf != nil {
			db.staleMaps = append(db.staleMaps, sg)
		}
	}
	merged.id = db.nextSeg
	db.nextSeg++
	merged.dirty = true
	return merged
}

// CompactionPolicy configures background size-tiered compaction: with
// TierFanout F >= 2, a segment of length n sits in tier
// floor(log_F(max(1, n / segmentSize))), and whenever F adjacent sealed
// segments of one tier accumulate they are merged into (at most) one
// segment of the next. Triggered on every seal (the segment-size roll
// in Add, or an explicit Seal), the policy keeps each shard's sealed
// count at O(F · log_F(N / segmentSize)) under continuous ingestion —
// no manual Compact calls — which also keeps the pruned walk's
// per-segment directory bounds over few, large segments instead of many
// loose ones. The zero value (TierFanout 0) disables the policy.
type CompactionPolicy struct {
	// TierFanout is F above: how many same-tier segments trigger a
	// merge, and the tier width ratio. 0 disables; 1 is rejected
	// (single-segment "merges" would loop); >= 2 enables.
	TierFanout int
}

// SetCompactionPolicy installs (or, with the zero value, removes) the
// background compaction policy. Merging only ever splices sealed
// posting lists — query results are bit-identical with any policy.
func (db *DB) SetCompactionPolicy(p CompactionPolicy) error {
	if p.TierFanout != 0 && p.TierFanout < 2 {
		return &ConfigError{Param: "compaction tier fan-out", Value: p.TierFanout, Min: 2}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.policy = p
	return nil
}

// CompactionPolicy returns the active policy (zero value = disabled).
func (db *DB) CompactionPolicy() CompactionPolicy {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.policy
}

// tierOf returns the size tier of a segment of n records under fan-out
// f: tier t spans [segSize·f^t, segSize·f^(t+1)).
func (db *DB) tierOf(n, f int) int {
	t := 0
	for bound := db.segSizeLocked() * f; n >= bound; bound *= f {
		t++
	}
	return t
}

// policyCompact enforces the tier policy on one shard after a seal:
// while any run of TierFanout adjacent same-tier sealed segments
// exists, merge its leftmost TierFanout members and rescan — a merge
// can promote its output a tier and complete a run there, so the loop
// cascades until every tier holds fewer than TierFanout adjacent
// segments. Each iteration shrinks the segment count, so it terminates.
func (db *DB) policyCompact(sh *dbShard) {
	f := db.policy.TierFanout
	if f < 2 {
		return
	}
	for {
		i, j := db.findTierRun(sh, f)
		if i < 0 {
			return
		}
		db.mergeRun(sh, i, j)
		// Close the gap [i+1, j) left by the merged-away segments,
		// dropping the tail references so they can be collected.
		copy(sh.segs[i+1:], sh.segs[j:])
		n := len(sh.segs) - (j - i - 1)
		for x := n; x < len(sh.segs); x++ {
			sh.segs[x] = nil
		}
		sh.segs = sh.segs[:n]
	}
}

// findTierRun returns the leftmost [i, i+F) window of adjacent sealed
// segments sharing a size tier, or (-1, -1) when none exists. Only the
// sealed prefix is scanned — an active tail never merges.
func (db *DB) findTierRun(sh *dbShard, f int) (int, int) {
	for i := 0; i < len(sh.segs) && sh.segs[i].sealed; {
		t := db.tierOf(sh.segs[i].len(), f)
		j := i + 1
		for j < len(sh.segs) && sh.segs[j].sealed && db.tierOf(sh.segs[j].len(), f) == t {
			j++
		}
		if j-i >= f {
			return i, i + f
		}
		i = j
	}
	return -1, -1
}
