//go:build !linux

package core

import "errors"

// errNoMmap makes mapOpen fail on platforms without a memory-mapping
// implementation, which is exactly the silent-degradation contract:
// LoadDirOpts{MapPostings: true} falls back to the heap read path and
// the DB behaves identically, just without the page-cache residency win.
var errNoMmap = errors.New("core: memory-mapped segments unsupported on this platform")

// mapFile is the portable stand-in for the Linux mmap handle; it is
// never constructed on these platforms (mapOpen always fails).
type mapFile struct {
	data []byte
}

// mapOpen reports memory mapping as unsupported.
func mapOpen(path string) (*mapFile, error) { return nil, errNoMmap }

// bytes returns the mapped contents (never reached: no mapFile exists).
func (m *mapFile) bytes() []byte { return m.data }

// close is a no-op on platforms without mappings.
func (m *mapFile) close() error { return nil }
